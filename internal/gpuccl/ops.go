package gpuccl

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/machine"
	"repro/internal/sim"
)

// Collective and point-to-point operations. All are stream-ordered and
// asynchronous with respect to the host: completion is observed by
// synchronizing the stream (or an event recorded after the op).

// AllReduce reduces sendBuf elementwise across ranks into recvBuf on every
// rank (in-place allowed). Ring algorithm: reduce-scatter then allgather,
// 2(n-1) lockstep chunk steps.
func (c *Comm) AllReduce(p *sim.Proc, s *gpu.Stream, sendBuf, recvBuf gpu.View, opr gpu.ReduceOp) {
	key := c.opKey("allreduce")
	n := c.Size()
	count := sendBuf.Len()
	c.submit(p, s, op{label: "allreduce", run: func(sp *sim.Proc) {
		inst := c.instanceFor(key)
		inst.arrive(sp, c, sendBuf, recvBuf, key, func(inst *instance) {
			acc := inst.sends[0].Clone()
			for r := 1; r < n; r++ {
				gpu.Reduce(acc, inst.sends[r], count, opr)
			}
			for r := 0; r < n; r++ {
				gpu.Copy(inst.recvs[r], acc, count)
			}
			acc.Release()
		})
		if sendBuf.Bytes() <= allReduceTreeMax {
			// Latency-bound: recursive-doubling exchange (the library's
			// LL/tree path), log2(n) full-size rounds.
			c.runExchange(sp, inst, log2Ceil(n),
				func(r int) int { return c.rank ^ (1 << r) }, sendBuf.Bytes())
			return
		}
		starts := chunkSizes(count, n)
		es := int64(sendBuf.ElemSize())
		plan := make([]ringStep, 0, 2*(n-1))
		for step := 0; step < n-1; step++ { // reduce-scatter
			idx := ((c.rank-step)%n + n) % n
			plan = append(plan, ringStep{send: true, bytes: int64(starts[idx+1]-starts[idx]) * es})
		}
		for step := 0; step < n-1; step++ { // allgather
			idx := ((c.rank+1-step)%n + n) % n
			plan = append(plan, ringStep{send: true, bytes: int64(starts[idx+1]-starts[idx]) * es})
		}
		c.runRing(sp, inst, plan)
	}})
}

// Reduce combines sendBuf across ranks into recvBuf on root (ring pipeline
// toward the root).
func (c *Comm) Reduce(p *sim.Proc, s *gpu.Stream, sendBuf, recvBuf gpu.View, opr gpu.ReduceOp, root int) {
	key := c.opKey("reduce")
	n := c.Size()
	count := sendBuf.Len()
	c.submit(p, s, op{label: "reduce", run: func(sp *sim.Proc) {
		inst := c.instanceFor(key)
		inst.arrive(sp, c, sendBuf, recvBuf, key, func(inst *instance) {
			acc := inst.sends[0].Clone()
			for r := 1; r < n; r++ {
				gpu.Reduce(acc, inst.sends[r], count, opr)
			}
			if !inst.recvs[root].IsZero() {
				gpu.Copy(inst.recvs[root], acc, count)
			}
			acc.Release()
		})
		c.runRing(sp, inst, c.pipelinePlan(sendBuf.Bytes(), root, false))
	}})
}

// Broadcast sends root's buf to all ranks (chunked ring pipeline from the
// root).
func (c *Comm) Broadcast(p *sim.Proc, s *gpu.Stream, buf gpu.View, root int) {
	key := c.opKey("broadcast")
	c.submit(p, s, op{label: "broadcast", run: func(sp *sim.Proc) {
		inst := c.instanceFor(key)
		inst.arrive(sp, c, buf, buf, key, func(inst *instance) {
			src := inst.sends[root]
			for r := range inst.recvs {
				if r != root {
					gpu.Copy(inst.recvs[r], src, src.Len())
				}
			}
		})
		c.runRing(sp, inst, c.pipelinePlan(buf.Bytes(), root, true))
	}})
}

// AllGather concatenates every rank's sendBuf into recvBuf on all ranks
// (recvBuf holds Size()*sendBuf.Len() elements; ring, n-1 steps).
func (c *Comm) AllGather(p *sim.Proc, s *gpu.Stream, sendBuf, recvBuf gpu.View) {
	key := c.opKey("allgather")
	n := c.Size()
	count := sendBuf.Len()
	c.submit(p, s, op{label: "allgather", run: func(sp *sim.Proc) {
		inst := c.instanceFor(key)
		inst.arrive(sp, c, sendBuf, recvBuf, key, func(inst *instance) {
			for r := 0; r < n; r++ {
				for dst := 0; dst < n; dst++ {
					gpu.Copy(inst.recvs[dst].Slice(r*count, count), inst.sends[r], count)
				}
			}
		})
		plan := make([]ringStep, n-1)
		bytes := sendBuf.Bytes()
		for i := range plan {
			plan[i] = ringStep{send: true, bytes: bytes}
		}
		c.runRing(sp, inst, plan)
	}})
}

// ReduceScatter reduces across ranks and leaves rank r with chunk r of the
// result in recvBuf (sendBuf holds Size()*recvBuf.Len() elements).
func (c *Comm) ReduceScatter(p *sim.Proc, s *gpu.Stream, sendBuf, recvBuf gpu.View, opr gpu.ReduceOp) {
	key := c.opKey("reducescatter")
	n := c.Size()
	count := recvBuf.Len()
	c.submit(p, s, op{label: "reducescatter", run: func(sp *sim.Proc) {
		inst := c.instanceFor(key)
		inst.arrive(sp, c, sendBuf, recvBuf, key, func(inst *instance) {
			for r := 0; r < n; r++ {
				acc := inst.sends[0].Slice(r*count, count).Clone()
				for src := 1; src < n; src++ {
					gpu.Reduce(acc, inst.sends[src].Slice(r*count, count), count, opr)
				}
				gpu.Copy(inst.recvs[r], acc, count)
				acc.Release()
			}
		})
		plan := make([]ringStep, n-1)
		bytes := recvBuf.Bytes()
		for i := range plan {
			plan[i] = ringStep{send: true, bytes: bytes}
		}
		c.runRing(sp, inst, plan)
	}})
}

// pipelinePlan builds the per-rank send plan of a chunked store-and-forward
// ring rooted at root. Data flows root → root+1 → …; with k chunks the
// pipeline takes (n-2)+k steps. For the reverse (reduce) direction the flow
// is toward the root and the plan mirrors.
func (c *Comm) pipelinePlan(totalBytes int64, root int, fromRoot bool) []ringStep {
	n := c.Size()
	if n == 1 {
		return nil
	}
	k := int(totalBytes / (512 << 10))
	if k < 1 {
		k = 1
	}
	if k > 8 {
		k = 8
	}
	chunk := (totalBytes + int64(k) - 1) / int64(k)
	steps := (n - 2) + k
	plan := make([]ringStep, steps)
	// Distance from the root along the flow direction.
	var dist int
	if fromRoot {
		dist = ((c.rank-root)%n + n) % n
	} else {
		dist = ((root-c.rank)%n + n) % n
		// For reduce, "sending" means forwarding the partial toward the
		// root; a rank at distance d sends during steps [n-1-d … n-1-d+k).
		dist = n - 1 - dist
	}
	for st := 0; st < steps; st++ {
		chunkIdx := st - dist
		if fromRoot {
			// Rank at distance d forwards chunk c at step d+c; the last
			// rank in the ring receives but never forwards.
			if dist < n-1 && chunkIdx >= 0 && chunkIdx < k {
				plan[st] = ringStep{send: true, bytes: chunk}
			}
		} else {
			if dist >= 0 && chunkIdx >= 0 && chunkIdx < k && c.rank != root {
				plan[st] = ringStep{send: true, bytes: chunk}
			}
		}
	}
	return plan
}

// pairFIFO matches Send and Recv calls per (src, dst) pair in issue order.
type pairFIFO struct {
	nextSend, nextRecv uint64
	msgs               map[uint64]*p2pMsg
}

type p2pMsg struct {
	src, dst  int
	srcView   gpu.View
	dstView   gpu.View
	haveSrc   bool
	haveDst   bool
	bothReady *sim.Gate
	delivered *sim.Gate
}

func (w *World) pairFIFO(comm uint64, src, dst int) *pairFIFO {
	k := pairKey{comm, src, dst}
	f := w.shared.pairs[k]
	if f == nil {
		f = &pairFIFO{msgs: map[uint64]*p2pMsg{}}
		w.shared.pairs[k] = f
	}
	return f
}

func (f *pairFIFO) msg(seq uint64, src, dst int) *p2pMsg {
	m := f.msgs[seq]
	if m == nil {
		m = &p2pMsg{
			src: src, dst: dst,
			bothReady: sim.NewGate(fmt.Sprintf("ccl-p2p-ready-%d-%d-%d", src, dst, seq)),
			delivered: sim.NewGate(fmt.Sprintf("ccl-p2p-done-%d-%d-%d", src, dst, seq)),
		}
		f.msgs[seq] = m
	}
	return m
}

// Send transmits buf to peer, matching the peer's Recv issued in the same
// relative order (ncclSend). Deadlock-free only inside a group when
// exchanging with mutual peers, exactly like NCCL.
func (c *Comm) Send(p *sim.Proc, s *gpu.Stream, buf gpu.View, peer int) {
	f := c.w.pairFIFO(c.commID, c.rank, peer)
	seq := f.nextSend
	f.nextSend++
	c.submit(p, s, op{label: fmt.Sprintf("send->%d", peer), run: func(sp *sim.Proc) {
		m := f.msg(seq, c.rank, peer)
		m.srcView = buf
		m.haveSrc = true
		if m.haveDst {
			m.bothReady.Fire(sp.Engine())
		}
		m.bothReady.Wait(sp)
		// Both kernels running: move the bytes.
		fab := c.w.cluster.Fabric
		bytes := buf.Bytes()
		srcW, dstW := c.myWorld(), c.worldOf(peer)
		cost := c.w.cluster.Cost(machine.LibGPUCCL, machine.APIHost, fab.PathBetween(srcW, dstW), bytes)
		end := fab.Transfer(sp.Now(), srcW, dstW, bytes, cost)
		eng := sp.Engine()
		eng.After(end.Sub(eng.Now()), func() {
			gpu.Copy(m.dstView, m.srcView, m.srcView.Len())
			m.delivered.Fire(eng)
		})
		m.delivered.Wait(sp)
		delete(f.msgs, seq)
	}})
}

// Recv receives into buf from peer, matching the peer's Send (ncclRecv).
func (c *Comm) Recv(p *sim.Proc, s *gpu.Stream, buf gpu.View, peer int) {
	f := c.w.pairFIFO(c.commID, peer, c.rank)
	seq := f.nextRecv
	f.nextRecv++
	c.submit(p, s, op{label: fmt.Sprintf("recv<-%d", peer), run: func(sp *sim.Proc) {
		m := f.msg(seq, peer, c.rank)
		m.dstView = buf
		m.haveDst = true
		if m.haveSrc {
			m.bothReady.Fire(sp.Engine())
		}
		m.delivered.Wait(sp)
	}})
}
