package gpuccl

// Communicator splitting, mirroring ncclCommSplit (NCCL ≥ 2.18): a blocking
// collective over the parent communicator that partitions its ranks by
// color, ordering each child communicator by (key, parent rank). A negative
// color returns nil (the rank joins no child, like NCCL_SPLIT_NOCOLOR).

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// splitInst coordinates one collective Split call across the parent's
// ranks.
type splitInst struct {
	entries map[int][2]int // parent rank -> (color, key)
	rdv     *sim.Rendezvous
	ids     map[int]uint64 // color -> child commID
}

// Split partitions the communicator. Every rank of the parent must call it
// (with its own color/key) in the same relative order as other Split calls.
func (c *Comm) Split(p *sim.Proc, color, key int) *Comm {
	w := c.w
	c.splitSeq++
	skey := instKey{comm: c.commID, seq: c.splitSeq, kind: "comm-split"}
	si := w.shared.splits[skey]
	if si == nil {
		si = &splitInst{
			entries: map[int][2]int{},
			rdv:     sim.NewRendezvous(fmt.Sprintf("ccl-split-%d-%d", c.commID, c.splitSeq), c.Size()),
			ids:     map[int]uint64{},
		}
		w.shared.splits[skey] = si
	}
	si.entries[c.rank] = [2]int{color, key}
	// The split performs a bootstrap exchange: charge a small host-side
	// collective cost and synchronize all parent ranks.
	p.Advance(c.profile().CallOverhead * sim.Duration(4))
	si.rdv.Arrive(p)
	if color < 0 {
		return nil
	}
	type ent struct{ parentRank, key int }
	var group []ent
	for r := 0; r < c.Size(); r++ {
		e := si.entries[r]
		if e[0] == color {
			group = append(group, ent{parentRank: r, key: e[1]})
		}
	}
	sort.Slice(group, func(i, j int) bool {
		if group[i].key != group[j].key {
			return group[i].key < group[j].key
		}
		return group[i].parentRank < group[j].parentRank
	})
	if _, ok := si.ids[color]; !ok {
		w.shared.nextCommID++
		si.ids[color] = w.shared.nextCommID
	}
	child := &Comm{w: w, dev: c.dev, commID: si.ids[color], rank: -1}
	for i, e := range group {
		child.members = append(child.members, c.worldOf(e.parentRank))
		if e.parentRank == c.rank {
			child.rank = i
		}
	}
	if child.rank < 0 {
		panic("gpuccl: split lost the calling rank")
	}
	return child
}
