package gpuccl

import (
	"testing"
	"testing/quick"

	"repro/internal/gpu"
	"repro/internal/machine"
	"repro/internal/sim"
)

// planComm builds a throwaway world just to exercise plan computation.
func planComm(t *testing.T, n int) (*Comm, func()) {
	t.Helper()
	eng := sim.NewEngine()
	cl := gpu.NewCluster(eng, machine.Perlmutter(), n)
	w := NewWorld(cl)
	return w.Comm(0), eng.Close
}

func TestChunkSizesPartition(t *testing.T) {
	f := func(count uint16, ranks uint8) bool {
		n := int(ranks)%12 + 1
		c := int(count)
		starts := chunkSizes(c, n)
		if starts[0] != 0 || starts[n] != c {
			return false
		}
		for i := 0; i < n; i++ {
			if starts[i] > starts[i+1] {
				return false
			}
			// Balanced within one element.
			if starts[i+1]-starts[i] > c/n+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPipelinePlanConservation(t *testing.T) {
	// Across all ranks, a root-broadcast pipeline must forward exactly
	// (n-1) copies of the payload in total: each non-terminal ring
	// position forwards every chunk once.
	for _, n := range []int{2, 3, 4, 8} {
		for _, root := range []int{0, 1, n - 1} {
			for _, bytes := range []int64{1 << 10, 3 << 20} {
				eng := sim.NewEngine()
				cl := gpu.NewCluster(eng, machine.Perlmutter(), n)
				w := NewWorld(cl)
				var totalSent int64
				steps := -1
				for r := 0; r < n; r++ {
					plan := w.Comm(r).pipelinePlan(bytes, root, true)
					if steps == -1 {
						steps = len(plan)
					} else if steps != len(plan) {
						t.Fatalf("n=%d: rank %d plan length %d != %d", n, r, len(plan), steps)
					}
					for _, st := range plan {
						if st.send {
							totalSent += st.bytes
						}
					}
				}
				// Each of the n-1 forwarding positions sends the whole
				// payload once (chunked, possibly with rounding slack).
				min := bytes * int64(n-1)
				max := min + int64(n)*(512<<10) // chunk rounding slack
				if totalSent < min || totalSent > max {
					t.Fatalf("n=%d root=%d bytes=%d: forwarded %d, want in [%d,%d]",
						n, root, bytes, totalSent, min, max)
				}
				eng.Close()
			}
		}
	}
}

func TestPipelinePlanReduceMirrors(t *testing.T) {
	// For the reduce direction, the root never sends and every other rank
	// sends the payload exactly once.
	const n = 5
	eng := sim.NewEngine()
	defer eng.Close()
	cl := gpu.NewCluster(eng, machine.Perlmutter(), n)
	w := NewWorld(cl)
	const bytes = 1 << 20
	for root := 0; root < n; root++ {
		for r := 0; r < n; r++ {
			plan := w.Comm(r).pipelinePlan(bytes, root, false)
			var sent int64
			for _, st := range plan {
				if st.send {
					sent += st.bytes
				}
			}
			if r == root && sent != 0 {
				t.Fatalf("root %d sends %d bytes in reduce plan", root, sent)
			}
			if r != root && (sent < bytes || sent > bytes+(512<<10)) {
				t.Fatalf("rank %d (root %d) sends %d bytes, want ≈%d", r, root, sent, bytes)
			}
		}
	}
}

func TestSplitSubCommunicator(t *testing.T) {
	// Direct backend-level split: collectives stay inside the child.
	const n = 4
	eng := sim.NewEngine()
	defer eng.Close()
	cl := gpu.NewCluster(eng, machine.Perlmutter(), n)
	w := NewWorld(cl)
	results := make([]float64, n)
	for r := 0; r < n; r++ {
		c := w.Comm(r)
		eng.Spawn("rank", func(p *sim.Proc) {
			sub := c.Split(p, c.Rank()%2, c.Rank())
			if sub.Size() != 2 {
				t.Errorf("sub size = %d", sub.Size())
			}
			buf := gpu.AllocBuffer[float64](c.Device(), 1)
			buf.Data()[0] = float64(c.Rank())
			s := c.Device().DefaultStream()
			sub.AllReduce(p, s, buf.Whole(), buf.Whole(), gpu.ReduceSum)
			s.Synchronize(p)
			results[c.Rank()] = buf.Data()[0]
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Evens sum 0+2, odds 1+3.
	want := []float64{2, 4, 2, 4}
	for r, v := range results {
		if v != want[r] {
			t.Fatalf("rank %d: %v, want %v", r, v, want[r])
		}
	}
}

func TestGroupScopeSpansCommunicators(t *testing.T) {
	// A group opened on one handle must aggregate operations submitted
	// through a sub-communicator handle of the same rank (NCCL's
	// per-thread group semantics).
	const n = 2
	eng := sim.NewEngine()
	defer eng.Close()
	cl := gpu.NewCluster(eng, machine.Perlmutter(), n)
	w := NewWorld(cl)
	ok := make([]bool, n)
	for r := 0; r < n; r++ {
		c := w.Comm(r)
		eng.Spawn("rank", func(p *sim.Proc) {
			sub := c.Split(p, 0, c.Rank()) // sub == world membership
			s := c.Device().DefaultStream()
			a := gpu.AllocBuffer[float64](c.Device(), 8)
			b := gpu.AllocBuffer[float64](c.Device(), 8)
			peer := 1 - sub.Rank()
			// Bidirectional exchange grouped via the PARENT handle but
			// submitted through the CHILD: must not deadlock.
			c.GroupStart()
			sub.Send(p, s, a.Whole(), peer)
			sub.Recv(p, s, b.Whole(), peer)
			c.GroupEnd(p, s)
			s.Synchronize(p)
			ok[c.Rank()] = true
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for r, v := range ok {
		if !v {
			t.Fatalf("rank %d did not finish", r)
		}
	}
}
