package gpuccl

import (
	"fmt"
	"testing"

	"repro/internal/gpu"
	"repro/internal/machine"
	"repro/internal/sim"
)

// runRanks runs one process per rank; each gets its comm and its device's
// default stream.
func runRanks(t *testing.T, model *machine.Model, n int, body func(p *sim.Proc, c *Comm, s *gpu.Stream)) {
	t.Helper()
	eng := sim.NewEngine()
	defer eng.Close()
	cl := gpu.NewCluster(eng, model, n)
	w := NewWorld(cl)
	for r := 0; r < n; r++ {
		c := w.Comm(r)
		eng.Spawn(fmt.Sprintf("rank%d", r), func(p *sim.Proc) {
			body(p, c, c.Device().DefaultStream())
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestAllReduceSum(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8} {
		n := n
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			runRanks(t, machine.Perlmutter(), n, func(p *sim.Proc, c *Comm, s *gpu.Stream) {
				const count = 100
				send := gpu.AllocBuffer[float64](c.Device(), count)
				recv := gpu.AllocBuffer[float64](c.Device(), count)
				for i := range send.Data() {
					send.Data()[i] = float64(c.Rank() + i)
				}
				c.AllReduce(p, s, send.Whole(), recv.Whole(), gpu.ReduceSum)
				s.Synchronize(p)
				for _, i := range []int{0, count / 2, count - 1} {
					want := 0.0
					for r := 0; r < n; r++ {
						want += float64(r + i)
					}
					if recv.Data()[i] != want {
						t.Errorf("rank %d recv[%d] = %v, want %v", c.Rank(), i, recv.Data()[i], want)
					}
				}
			})
		})
	}
}

func TestAllReduceInPlace(t *testing.T) {
	runRanks(t, machine.LUMI(), 4, func(p *sim.Proc, c *Comm, s *gpu.Stream) {
		b := gpu.AllocBuffer[float64](c.Device(), 8)
		for i := range b.Data() {
			b.Data()[i] = float64(c.Rank())
		}
		c.AllReduce(p, s, b.Whole(), b.Whole(), gpu.ReduceMax)
		s.Synchronize(p)
		for i := range b.Data() {
			if b.Data()[i] != 3 {
				t.Fatalf("in-place max = %v", b.Data())
			}
		}
	})
}

func TestBroadcast(t *testing.T) {
	for _, root := range []int{0, 2} {
		root := root
		t.Run(fmt.Sprintf("root%d", root), func(t *testing.T) {
			runRanks(t, machine.Perlmutter(), 4, func(p *sim.Proc, c *Comm, s *gpu.Stream) {
				b := gpu.AllocBuffer[float32](c.Device(), 16)
				if c.Rank() == root {
					for i := range b.Data() {
						b.Data()[i] = float32(i) * 1.5
					}
				}
				c.Broadcast(p, s, b.Whole(), root)
				s.Synchronize(p)
				for i, v := range b.Data() {
					if v != float32(i)*1.5 {
						t.Errorf("rank %d b[%d] = %v", c.Rank(), i, v)
					}
				}
			})
		})
	}
}

func TestReduceToRoot(t *testing.T) {
	runRanks(t, machine.Perlmutter(), 5, func(p *sim.Proc, c *Comm, s *gpu.Stream) {
		send := gpu.AllocBuffer[int64](c.Device(), 3)
		for i := range send.Data() {
			send.Data()[i] = int64(c.Rank() + 1)
		}
		recv := gpu.AllocBuffer[int64](c.Device(), 3)
		c.Reduce(p, s, send.Whole(), recv.Whole(), gpu.ReduceSum, 2)
		s.Synchronize(p)
		if c.Rank() == 2 {
			for _, v := range recv.Data() {
				if v != 15 {
					t.Fatalf("reduce at root = %v", recv.Data())
				}
			}
		}
	})
}

func TestAllGather(t *testing.T) {
	const n, count = 4, 5
	runRanks(t, machine.Perlmutter(), n, func(p *sim.Proc, c *Comm, s *gpu.Stream) {
		send := gpu.AllocBuffer[float64](c.Device(), count)
		for i := range send.Data() {
			send.Data()[i] = float64(10*c.Rank() + i)
		}
		recv := gpu.AllocBuffer[float64](c.Device(), n*count)
		c.AllGather(p, s, send.Whole(), recv.Whole())
		s.Synchronize(p)
		for r := 0; r < n; r++ {
			for i := 0; i < count; i++ {
				if got := recv.Data()[r*count+i]; got != float64(10*r+i) {
					t.Errorf("rank %d recv[%d] = %v", c.Rank(), r*count+i, got)
				}
			}
		}
	})
}

func TestReduceScatter(t *testing.T) {
	const n, count = 4, 3
	runRanks(t, machine.Perlmutter(), n, func(p *sim.Proc, c *Comm, s *gpu.Stream) {
		send := gpu.AllocBuffer[float64](c.Device(), n*count)
		for i := range send.Data() {
			send.Data()[i] = float64(c.Rank()*n*count + i)
		}
		recv := gpu.AllocBuffer[float64](c.Device(), count)
		c.ReduceScatter(p, s, send.Whole(), recv.Whole(), gpu.ReduceSum)
		s.Synchronize(p)
		for i := 0; i < count; i++ {
			want := 0.0
			for r := 0; r < n; r++ {
				want += float64(r*n*count + c.Rank()*count + i)
			}
			if recv.Data()[i] != want {
				t.Errorf("rank %d recv[%d] = %v, want %v", c.Rank(), i, recv.Data()[i], want)
			}
		}
	})
}

func TestGroupedSendRecvExchange(t *testing.T) {
	// The Fig. 1 Listing 2 pattern: grouped send/recv halo exchange.
	runRanks(t, machine.Perlmutter(), 4, func(p *sim.Proc, c *Comm, s *gpu.Stream) {
		n := c.Size()
		right, left := (c.Rank()+1)%n, (c.Rank()-1+n)%n
		send := gpu.AllocBuffer[float64](c.Device(), 4)
		for i := range send.Data() {
			send.Data()[i] = float64(100*c.Rank() + i)
		}
		fromLeft := gpu.AllocBuffer[float64](c.Device(), 4)
		fromRight := gpu.AllocBuffer[float64](c.Device(), 4)
		c.GroupStart()
		c.Send(p, s, send.Whole(), right)
		c.Send(p, s, send.Whole(), left)
		c.Recv(p, s, fromLeft.Whole(), left)
		c.Recv(p, s, fromRight.Whole(), right)
		c.GroupEnd(p, s)
		s.Synchronize(p)
		if fromLeft.Data()[1] != float64(100*left+1) {
			t.Errorf("rank %d fromLeft = %v", c.Rank(), fromLeft.Data())
		}
		if fromRight.Data()[2] != float64(100*right+2) {
			t.Errorf("rank %d fromRight = %v", c.Rank(), fromRight.Data())
		}
	})
}

func TestGroupFusionAmortizesLaunch(t *testing.T) {
	// Two grouped ops must take less virtual time than two ungrouped ops:
	// one launch overhead instead of two.
	elapsed := func(grouped bool) sim.Duration {
		var d sim.Duration
		eng := sim.NewEngine()
		defer eng.Close()
		cl := gpu.NewCluster(eng, machine.Perlmutter(), 2)
		w := NewWorld(cl)
		for r := 0; r < 2; r++ {
			c := w.Comm(r)
			eng.Spawn(fmt.Sprintf("rank%d", r), func(p *sim.Proc) {
				s := c.Device().DefaultStream()
				a := gpu.AllocBuffer[float64](c.Device(), 8)
				b := gpu.AllocBuffer[float64](c.Device(), 8)
				peer := 1 - c.Rank()
				start := p.Now()
				if grouped {
					c.GroupStart()
				}
				if c.Rank() == 0 {
					c.Send(p, s, a.Whole(), peer)
					c.Send(p, s, b.Whole(), peer)
				} else {
					c.Recv(p, s, a.Whole(), peer)
					c.Recv(p, s, b.Whole(), peer)
				}
				if grouped {
					c.GroupEnd(p, s)
				}
				s.Synchronize(p)
				if c.Rank() == 0 {
					d = p.Now().Sub(start)
				}
			})
		}
		if err := eng.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return d
	}
	g, ug := elapsed(true), elapsed(false)
	prof := machine.Perlmutter().Profile(machine.LibGPUCCL, machine.APIHost)
	if ug-g < sim.Duration(float64(prof.LaunchOverhead)*3/4) {
		t.Fatalf("grouping saved only %v (grouped %v, ungrouped %v)", ug-g, g, ug)
	}
}

func TestSmallAllReduceDominatedByLaunch(t *testing.T) {
	var d sim.Duration
	eng := sim.NewEngine()
	defer eng.Close()
	cl := gpu.NewCluster(eng, machine.Perlmutter(), 2)
	w := NewWorld(cl)
	for r := 0; r < 2; r++ {
		c := w.Comm(r)
		eng.Spawn(fmt.Sprintf("rank%d", r), func(p *sim.Proc) {
			s := c.Device().DefaultStream()
			b := gpu.AllocBuffer[float64](c.Device(), 1)
			start := p.Now()
			c.AllReduce(p, s, b.Whole(), b.Whole(), gpu.ReduceSum)
			s.Synchronize(p)
			if c.Rank() == 0 {
				d = p.Now().Sub(start)
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	launch := machine.Perlmutter().Profile(machine.LibGPUCCL, machine.APIHost).LaunchOverhead
	if d < launch {
		t.Fatalf("tiny allreduce took %v, below launch overhead %v", d, launch)
	}
	if d > 20*launch {
		t.Fatalf("tiny allreduce took %v, unreasonably above launch overhead %v", d, launch)
	}
}

func TestUngroupedBidirectionalDeadlocks(t *testing.T) {
	// NCCL semantics: an ungrouped Send and Recv between mutual peers,
	// each enqueued Send-first on both ranks, deadlocks — each rank's
	// send kernel waits for the peer's recv kernel, which sits behind the
	// peer's own blocked send. The simulator must reproduce (and detect)
	// this, which is exactly why the paper's Listing 2 uses groups.
	eng := sim.NewEngine()
	defer eng.Close()
	cl := gpu.NewCluster(eng, machine.Perlmutter(), 2)
	w := NewWorld(cl)
	for r := 0; r < 2; r++ {
		c := w.Comm(r)
		eng.Spawn(fmt.Sprintf("rank%d", r), func(p *sim.Proc) {
			s := c.Device().DefaultStream()
			buf := gpu.AllocBuffer[float64](c.Device(), 4)
			peer := 1 - c.Rank()
			c.Send(p, s, buf.Whole(), peer) // both send first: deadlock
			c.Recv(p, s, buf.Whole(), peer)
			s.Synchronize(p)
		})
	}
	err := eng.Run()
	if _, ok := err.(*sim.DeadlockError); !ok {
		t.Fatalf("expected DeadlockError, got %v", err)
	}
}

func TestStreamOrderingAcrossOps(t *testing.T) {
	// A kernel enqueued after a collective must observe its results.
	runRanks(t, machine.Perlmutter(), 2, func(p *sim.Proc, c *Comm, s *gpu.Stream) {
		b := gpu.AllocBuffer[float64](c.Device(), 1)
		b.Data()[0] = 1
		c.AllReduce(p, s, b.Whole(), b.Whole(), gpu.ReduceSum)
		var seen float64
		s.Launch(p, &gpu.Kernel{Name: "check", Body: func(k *gpu.KernelCtx) {
			seen = b.Data()[0]
		}}, nil)
		s.Synchronize(p)
		if seen != 2 {
			t.Fatalf("kernel after allreduce saw %v, want 2", seen)
		}
	})
}
