package gpuccl

// Abort-and-reinit recovery, mirroring how real NCCL applications survive a
// rank failure: ncclCommAbort tears down the broken communicator (its
// matching state is discarded) and a fresh communicator is bootstrapped
// over the survivors. Shrink fuses both steps into one collective call made
// by every survivor.

import (
	"fmt"

	"repro/internal/sim"
)

// shrinkInst coordinates one collective Shrink across the survivors.
type shrinkInst struct {
	rdv *sim.Rendezvous
	id  uint64
}

// Shrink builds a dense communicator over the members of c not in dead,
// preserving relative rank order. All survivors must call it with the same
// dead set and generation (gen is bumped once per failure epoch by the
// caller); the call blocks until every survivor has arrived, like the
// bootstrap phase of ncclCommInitRank. The parent communicator's matching
// state is discarded (abort semantics): stale collectives of the old
// communicator can never pair with new traffic.
func (c *Comm) Shrink(p *sim.Proc, dead map[int]bool, gen int) *Comm {
	w := c.w
	var members []int
	myNew := -1
	for r := 0; r < c.Size(); r++ {
		wr := c.worldOf(r)
		if dead[wr] {
			continue
		}
		if r == c.rank {
			myNew = len(members)
		}
		members = append(members, wr)
	}
	if myNew < 0 {
		panic(fmt.Sprintf("gpuccl: rank %d shrinking a communicator it failed in", c.rank))
	}
	skey := instKey{comm: c.commID, seq: uint64(gen), kind: "comm-shrink"}
	si := w.shared.shrinks[skey]
	if si == nil {
		// First survivor in: abort the parent (drop its matching state) and
		// allocate the child communicator identity.
		for k := range w.shared.insts {
			if k.comm == c.commID {
				delete(w.shared.insts, k)
			}
		}
		for k := range w.shared.pairs {
			if k.comm == c.commID {
				delete(w.shared.pairs, k)
			}
		}
		w.shared.nextCommID++
		si = &shrinkInst{
			rdv: sim.NewRendezvous(fmt.Sprintf("ccl-shrink-%d-%d", c.commID, gen), len(members)),
			id:  w.shared.nextCommID,
		}
		w.shared.shrinks[skey] = si
	}
	// Teardown plus bootstrap exchange cost, then all survivors synchronize
	// before the child communicator is usable.
	p.Advance(c.profile().CallOverhead * sim.Duration(8))
	si.rdv.Arrive(p)
	return &Comm{w: w, dev: c.dev, commID: si.id, members: members, rank: myNew}
}
