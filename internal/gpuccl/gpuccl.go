// Package gpuccl implements a GPU collective communication library in the
// mold of NCCL/RCCL: stream-ordered collectives and point-to-point
// operations that execute as GPU kernels, group semantics that fuse multiple
// operations into a single kernel launch, and ring algorithms whose steps
// move across the simulated fabric.
//
// Key behaviours reproduced from the real library family:
//
//   - Every operation (or group of operations) is one kernel on the caller's
//     stream; it pays a fixed launch overhead, which dominates small-message
//     latency (the reason GPUCCL loses to MPI/GPUSHMEM at small sizes).
//   - A collective kernel cannot make progress until the matching kernel of
//     every peer is running; ranks then proceed in lockstep through the ring
//     steps, so the slowest link paces everyone.
//   - GroupStart/GroupEnd aggregate point-to-point operations (and
//     collectives) into one launch, amortizing the overhead — the mechanism
//     UNICONN leans on for halo exchanges and emulated collectives.
package gpuccl

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// World is one GPUCCL job: a clique of communicators over all devices.
type World struct {
	cluster *gpu.Cluster
	shared  *shared
	comms   []*Comm
	// groups holds each rank's group-aggregation context. Like real NCCL,
	// ncclGroupStart/End scope is per thread (here: per rank), not per
	// communicator handle, so operations on sub-communicators fuse into
	// the same group.
	groups []*groupCtx

	// mColl holds per-operation-class virtual-time histograms
	// ("gpuccl.coll.<class>", in ns), resolved at construction from the
	// cluster's registry; nil (disabled) when no registry is installed.
	mColl map[string]*metrics.Histogram
}

// opClasses are the known operation labels, reduced to their leading
// letters ("send->3" and "recv<-1" class as "send"/"recv").
var opClasses = []string{
	"allreduce", "reduce", "broadcast", "allgather", "reducescatter", "send", "recv",
}

// opClass reduces an op label to its class: the leading lowercase-letter run.
func opClass(label string) string {
	for i := 0; i < len(label); i++ {
		if label[i] < 'a' || label[i] > 'z' {
			return label[:i]
		}
	}
	return label
}

// collHist resolves the timing histogram for one op label, nil when metrics
// are disabled (or the class is unknown).
func (w *World) collHist(label string) *metrics.Histogram {
	if w.mColl == nil {
		return nil
	}
	return w.mColl[opClass(label)]
}

// groupCtx is one rank's group-aggregation state.
type groupCtx struct {
	depth   int
	pending []pendingOp
}

// pendingOp is an aggregated operation together with the stream it targets.
type pendingOp struct {
	o op
	s *gpu.Stream
}

// shared is cross-rank matching state.
type shared struct {
	insts      map[instKey]*instance
	pairs      map[pairKey]*pairFIFO
	splits     map[instKey]*splitInst
	shrinks    map[instKey]*shrinkInst
	nextCommID uint64
}

type instKey struct {
	comm uint64 // communicator identity (0 = world)
	seq  uint64 // per-rank operation sequence (identical across ranks)
	kind string
}

// pairKey scopes point-to-point matching to one communicator; src/dst are
// communicator-local ranks.
type pairKey struct {
	comm     uint64
	src, dst int
}

// NewWorld bootstraps communicators on every device of the cluster
// (the paper's applications bootstrap NCCL over MPI; the setup cost is
// charged by the UNICONN Environment).
func NewWorld(cluster *gpu.Cluster) *World {
	w := &World{
		cluster: cluster,
		shared: &shared{
			insts:   map[instKey]*instance{},
			pairs:   map[pairKey]*pairFIFO{},
			splits:  map[instKey]*splitInst{},
			shrinks: map[instKey]*shrinkInst{},
		},
	}
	for i, dev := range cluster.Devices {
		w.comms = append(w.comms, &Comm{w: w, rank: i, dev: dev})
		w.groups = append(w.groups, &groupCtx{})
	}
	if r := cluster.Metrics; r != nil {
		w.mColl = make(map[string]*metrics.Histogram, len(opClasses))
		for _, class := range opClasses {
			w.mColl[class] = r.Histogram("gpuccl.coll." + class)
		}
	}
	return w
}

// Size reports the number of ranks.
func (w *World) Size() int { return len(w.comms) }

// Comm returns rank r's communicator handle.
func (w *World) Comm(r int) *Comm { return w.comms[r] }

// Comm is one rank's communicator handle (an ncclComm_t). Sub-communicators
// created by Split carry a member table translating communicator-local
// ranks to world (device) ids.
type Comm struct {
	w      *World
	rank   int // communicator-local rank
	dev    *gpu.Device
	commID uint64
	// members maps communicator rank -> world rank; nil for the world
	// communicator, where the mapping is the identity.
	members []int

	opSeq    uint64
	splitSeq uint64
}

// Rank reports the calling rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size reports the communicator size.
func (c *Comm) Size() int {
	if c.members != nil {
		return len(c.members)
	}
	return len(c.w.comms)
}

// worldOf translates a communicator rank to a world (device) id.
func (c *Comm) worldOf(r int) int {
	if c.members != nil {
		return c.members[r]
	}
	return r
}

// myWorld is the calling rank's world id.
func (c *Comm) myWorld() int { return c.worldOf(c.rank) }

// Device reports the owning device.
func (c *Comm) Device() *gpu.Device { return c.dev }

func (c *Comm) model() *machine.Model { return c.w.cluster.Model }

func (c *Comm) profile() machine.LibProfile {
	return c.model().Profile(machine.LibGPUCCL, machine.APIHost)
}

// op is one queued operation; run executes it on the stream process inside
// the (possibly fused) kernel.
type op struct {
	label string
	run   func(p *sim.Proc)
}

// group returns the calling rank's aggregation context (group scope is per
// rank, like NCCL's per-thread ncclGroupStart/End — operations on any
// communicator of this rank join the open group).
func (c *Comm) group() *groupCtx { return c.w.groups[c.myWorld()] }

// GroupStart begins operation aggregation for this rank, mirroring
// ncclGroupStart. Groups may be nested; only the outermost GroupEnd
// launches.
func (c *Comm) GroupStart() { c.group().depth++ }

// GroupEnd launches all aggregated operations, mirroring ncclGroupEnd:
// one fused kernel per target stream.
func (c *Comm) GroupEnd(p *sim.Proc, s *gpu.Stream) {
	g := c.group()
	if g.depth == 0 {
		panic("gpuccl: GroupEnd without GroupStart")
	}
	g.depth--
	if g.depth > 0 {
		return
	}
	pend := g.pending
	g.pending = nil
	// Fuse per stream, preserving submission order.
	for len(pend) > 0 {
		stream := pend[0].s
		var ops []op
		var rest []pendingOp
		for _, po := range pend {
			if po.s == stream {
				ops = append(ops, po.o)
			} else {
				rest = append(rest, po)
			}
		}
		c.launch(p, stream, ops)
		pend = rest
	}
}

// submit runs one op immediately (implicit group of one) or defers it to
// GroupEnd.
func (c *Comm) submit(p *sim.Proc, s *gpu.Stream, o op) {
	p.Advance(c.profile().CallOverhead)
	if h := c.w.collHist(o.label); h != nil {
		run := o.run
		o.run = func(sp *sim.Proc) {
			start := sp.Now()
			run(sp)
			h.Observe(int64(sp.Now().Sub(start)))
		}
	}
	if g := c.group(); g.depth > 0 {
		g.pending = append(g.pending, pendingOp{o: o, s: s})
		return
	}
	c.launch(p, s, []op{o})
}

// launch enqueues one fused communication kernel executing ops. The
// individual ops run concurrently: each op gets its own sub-process and the
// kernel completes when all have finished, mirroring how a fused NCCL
// kernel drives all its channels in parallel.
func (c *Comm) launch(p *sim.Proc, s *gpu.Stream, ops []op) {
	if len(ops) == 0 {
		return
	}
	prof := c.profile()
	s.Enqueue(fmt.Sprintf("ccl-kernel[%d]", len(ops)), func(sp *sim.Proc) {
		sp.Advance(prof.LaunchOverhead)
		if len(ops) == 1 {
			ops[0].run(sp)
			return
		}
		eng := sp.Engine()
		done := sim.NewCounter("ccl-fused", 0)
		// Sub-processes catch their own aborts (a rank failure poisoning one
		// channel) so a revoked fused kernel still completes bookkeeping; the
		// first failure is re-raised on the stream process after the join,
		// where Stream.run records it.
		var aborted error
		for _, o := range ops {
			o := o
			eng.Spawn(fmt.Sprintf("%s.%s", s.Name(), o.label), func(op *sim.Proc) {
				if err := sim.Protect(func() { o.run(op) }); err != nil && aborted == nil {
					aborted = err
				}
				done.Add(eng, 1)
			})
		}
		done.WaitGE(sp, uint64(len(ops)))
		if aborted != nil {
			sim.Abort(aborted)
		}
	})
}

// nextSeq advances this rank's operation sequence; all ranks of the
// communicator must issue the same operations in the same order (an NCCL
// usage requirement).
func (c *Comm) nextSeq() uint64 {
	c.opSeq++
	return c.opSeq
}

// opKey builds the cross-rank instance key for one collective call.
func (c *Comm) opKey(kind string) instKey {
	return instKey{comm: c.commID, seq: c.nextSeq(), kind: kind}
}

// instance is the cross-rank state of one collective call.
type instance struct {
	arrived int
	ready   *sim.Gate
	stepRdv *sim.Rendezvous
	sends   []gpu.View
	recvs   []gpu.View
}

func (c *Comm) instanceFor(key instKey) *instance {
	inst := c.w.shared.insts[key]
	if inst == nil {
		n := c.Size()
		inst = &instance{
			ready:   sim.NewGate(fmt.Sprintf("ccl-%s-%d", key.kind, key.seq)),
			stepRdv: sim.NewRendezvous(fmt.Sprintf("ccl-step-%s-%d", key.kind, key.seq), n),
			sends:   make([]gpu.View, n),
			recvs:   make([]gpu.View, n),
		}
		c.w.shared.insts[key] = inst
	}
	return inst
}

// arrive registers this rank at the instance; the last arrival fires ready
// (and is the rank on which dataFn runs, once, with all views registered).
func (inst *instance) arrive(p *sim.Proc, c *Comm, send, recv gpu.View, key instKey, dataFn func(inst *instance)) {
	inst.sends[c.rank] = send
	inst.recvs[c.rank] = recv
	inst.arrived++
	if inst.arrived == c.Size() {
		if dataFn != nil {
			dataFn(inst)
		}
		delete(c.w.shared.insts, key) // instance complete once all run the steps
		inst.ready.Fire(p.Engine())
		return
	}
	inst.ready.Wait(p)
}

// ringStep describes what one rank sends to its right neighbour in one
// lockstep ring step.
type ringStep struct {
	send  bool
	bytes int64
}

// runRing executes a per-rank plan of lockstep ring steps. Every rank
// participates in every step's rendezvous so the slowest transfer paces the
// ring, as in a real bandwidth-bound NCCL ring.
func (c *Comm) runRing(p *sim.Proc, inst *instance, plan []ringStep) {
	n := c.Size()
	me := c.myWorld()
	right := c.worldOf((c.rank + 1) % n)
	fab := c.w.cluster.Fabric
	cl := c.w.cluster
	for _, st := range plan {
		inst.stepRdv.Arrive(p)
		if st.send && st.bytes > 0 {
			path := fab.PathBetween(me, right)
			cost := cl.Cost(machine.LibGPUCCL, machine.APIHost, path, st.bytes)
			end := fab.Transfer(p.Now(), me, right, st.bytes, cost)
			p.AdvanceTo(end)
		}
	}
	// Final rendezvous so no rank exits before the last step completes.
	inst.stepRdv.Arrive(p)
}

// chunkSizes splits count elements into n contiguous chunks (standard ring
// partition, chunk i covers [starts[i], starts[i+1])).
func chunkSizes(count, n int) []int {
	starts := make([]int, n+1)
	for i := 0; i <= n; i++ {
		starts[i] = i * count / n
	}
	return starts
}

// runExchange executes lockstep rounds where each rank sends to a derived
// peer — the timing skeleton of the tree/recursive-doubling algorithms the
// library uses for latency-bound (small) collectives.
func (c *Comm) runExchange(p *sim.Proc, inst *instance, rounds int, peerOf func(r int) int, bytes int64) {
	fab := c.w.cluster.Fabric
	cl := c.w.cluster
	me := c.myWorld()
	for r := 0; r < rounds; r++ {
		inst.stepRdv.Arrive(p)
		peer := peerOf(r)
		if peer >= 0 && peer != c.rank && peer < c.Size() {
			dst := c.worldOf(peer)
			path := fab.PathBetween(me, dst)
			cost := cl.Cost(machine.LibGPUCCL, machine.APIHost, path, bytes)
			end := fab.Transfer(p.Now(), me, dst, bytes, cost)
			p.AdvanceTo(end)
		}
	}
	inst.stepRdv.Arrive(p)
}

// allReduceTreeMax is the byte size up to which AllReduce uses the
// low-latency recursive-doubling exchange instead of the bandwidth-optimal
// ring (mirroring NCCL's LL/tree protocols for small messages).
const allReduceTreeMax = 64 << 10

func log2Ceil(n int) int {
	r := 0
	for v := 1; v < n; v <<= 1 {
		r++
	}
	return r
}
