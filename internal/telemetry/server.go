package telemetry

// The live HTTP plane. Endpoints:
//
//	/metrics       Prometheus text exposition of the tracker's merged
//	               snapshot (?format=json for the JSON form; ?delta=1 for
//	               the interval delta since the previous delta scrape)
//	/healthz       liveness JSON: status, uptime, run counts
//	/debug/runs    sweep progress JSON: cells done/total, per-worker
//	               current cell, ETA from completed-cell wall times
//	/debug/flight  text dump of the flight recorders of in-flight cells
//
// The server only ever reads the tracker (mutex-guarded samples) and writes
// only to HTTP responses, so serving a scrape cannot perturb a running
// sweep or its stdout.

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Server serves the live endpoints for one tracker.
type Server struct {
	t   *Tracker
	mux *http.ServeMux

	mu      sync.Mutex
	prev    map[string]metrics.Snapshot // per-client-key delta baselines
	ln      net.Listener
	httpSrv *http.Server
}

// NewServer returns a server for t (which may be nil: the endpoints then
// serve empty progress and metrics, still useful as a liveness check).
func NewServer(t *Tracker) *Server {
	s := &Server{t: t, prev: map[string]metrics.Snapshot{}}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/debug/runs", s.handleRuns)
	mux.HandleFunc("/debug/flight", s.handleFlight)
	s.mux = mux
	return s
}

// Handler exposes the endpoint mux (for httptest and for embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (host:port; :0 picks a free port) and serves in a
// background goroutine until Close. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: s.mux}
	s.mu.Lock()
	s.ln, s.httpSrv = ln, srv
	s.mu.Unlock()
	go srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return ln.Addr().String(), nil
}

// Close stops the listener. Safe to call without Start.
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.httpSrv
	s.httpSrv, s.ln = nil, nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

// handleMetrics serves the merged snapshot: Prometheus text by default,
// ?format=json for the registry JSON, ?delta=1 for the interval since the
// previous ?delta=1 scrape (per remote address, so one scraper's cadence
// does not disturb another's).
func (s *Server) handleMetrics(w http.ResponseWriter, req *http.Request) {
	snap := s.t.MetricsSnapshot()
	if req.URL.Query().Get("delta") == "1" {
		key := req.RemoteAddr
		if host, _, err := net.SplitHostPort(req.RemoteAddr); err == nil {
			key = host
		}
		s.mu.Lock()
		prev := s.prev[key]
		s.prev[key] = snap
		s.mu.Unlock()
		snap = snap.Delta(prev)
	}
	if req.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		snap.WriteJSON(w) //nolint:errcheck // client went away
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	snap.WritePrometheus(w) //nolint:errcheck // client went away
}

// handleHealthz serves a liveness document.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	runs := s.t.Runs()
	active := 0
	for _, r := range runs {
		if !r.Ended {
			active++
		}
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\n  \"status\": \"ok\",\n  \"uptime_seconds\": %.3f,\n  \"runs_total\": %d,\n  \"runs_active\": %d\n}\n",
		s.t.Uptime().Seconds(), len(runs), active)
}

// handleRuns serves the sweep progress document.
func (s *Server) handleRuns(w http.ResponseWriter, _ *http.Request) {
	runs := s.t.Runs()
	if runs == nil {
		runs = []RunStatus{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		SampledAt string      `json:"sampled_at"`
		Runs      []RunStatus `json:"runs"`
	}{time.Now().UTC().Format(time.RFC3339Nano), runs}) //nolint:errcheck
}

// handleFlight serves the flight board as text.
func (s *Server) handleFlight(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.t.Flight().Dump(w) //nolint:errcheck // client went away
}

// StartLive is the CLIs' one-call live plane: a fresh tracker served on addr
// (host:port; :0 picks a free port), with the endpoint list announced on
// stderr — never stdout, which belongs to the deterministic run output.
// Close the returned server when the CLI exits.
func StartLive(addr string) (*Tracker, *Server, error) {
	t := NewTracker()
	s := NewServer(t)
	bound, err := s.Start(addr)
	if err != nil {
		return nil, nil, fmt.Errorf("telemetry: listen on %s: %w", addr, err)
	}
	fmt.Fprintf(os.Stderr, "live telemetry on http://%s  (/metrics /healthz /debug/runs /debug/flight)\n", bound)
	return t, s, nil
}

// WriteProgress renders a one-line-per-run progress summary — what a CLI
// prints to stderr when a sweep is cut short. Nil-safe.
func (t *Tracker) WriteProgress(w io.Writer) {
	for _, st := range t.Runs() {
		state := "running"
		if st.Ended {
			state = "done"
		}
		fmt.Fprintf(w, "run %q: %d/%d cells (%s, %.1fs elapsed)\n",
			st.Label, st.Done, st.Total, state, st.ElapsedSeconds)
	}
}
