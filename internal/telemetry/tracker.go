// Package telemetry is the live observation plane: a Tracker that sweep
// runners feed with run progress and per-cell metrics snapshots, a
// FlightBoard collecting the flight recorders of in-flight cells, and an
// HTTP server (server.go) exposing both while a sweep runs.
//
// Everything here is read-only with respect to the simulation: the tracker
// is sampled by HTTP handlers under its own mutex, never by the virtual-time
// hot path, and nothing it produces reaches run stdout — a sweep's output is
// byte-identical with live telemetry enabled or disabled. Wall-clock time
// appears only in telemetry output (uptime, ETA), never in run results.
//
// All entry points are nil-safe: a nil *Tracker hands out nil *LiveRuns
// whose methods no-op, so the bench runner calls the hooks unconditionally
// and pays a single nil check when live telemetry is off.
package telemetry

import (
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Tracker accumulates sweep progress and merged workload metrics for the
// live endpoints. One tracker serves one CLI process; zero value unusable —
// use NewTracker.
type Tracker struct {
	mu      sync.Mutex
	started time.Time
	merged  metrics.Snapshot // workload metrics of completed cells, merged
	runs    []*LiveRun       // all runs this process started, oldest first
	reg     *metrics.Registry
	board   *FlightBoard
}

// NewTracker returns a tracker with an empty flight board and its own
// self-metrics registry (telemetry.* names).
func NewTracker() *Tracker {
	return &Tracker{
		started: time.Now(),
		reg:     metrics.New(),
		board:   NewFlightBoard(0),
	}
}

// Flight reports the tracker's flight board (nil on a nil tracker).
func (t *Tracker) Flight() *FlightBoard {
	if t == nil {
		return nil
	}
	return t.board
}

// Registry exposes the tracker's self-metrics registry so embedding servers
// (the what-if service's cache and batcher counters) surface on the same
// /metrics endpoint as the telemetry.* instruments. Nil on a nil tracker.
func (t *Tracker) Registry() *metrics.Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// AddSnapshot merges one completed cell's metrics snapshot into the live
// aggregate. Merge is order-insensitive (counters sum, gauges take maxima,
// histograms sum), so cells may report in completion order without making
// /metrics content depend on worker scheduling.
func (t *Tracker) AddSnapshot(s metrics.Snapshot) {
	if t == nil || s.Empty() {
		return
	}
	t.mu.Lock()
	t.merged = metrics.Merge(t.merged, s)
	t.mu.Unlock()
}

// MetricsSnapshot reports the merged workload metrics plus the tracker's own
// telemetry.* instruments, as one snapshot. Empty on a nil tracker.
func (t *Tracker) MetricsSnapshot() metrics.Snapshot {
	if t == nil {
		return metrics.Snapshot{}
	}
	t.mu.Lock()
	merged := t.merged
	t.mu.Unlock()
	return metrics.Merge(merged, t.reg.Snapshot())
}

// StartRun registers a sweep of total cells executed by workers goroutines
// and returns its live handle. A nil tracker returns a nil handle whose
// methods no-op.
func (t *Tracker) StartRun(label string, total, workers int) *LiveRun {
	if t == nil {
		return nil
	}
	r := &LiveRun{
		t: t, label: label, total: total, workers: workers,
		started: time.Now(),
		current: make(map[int]cellRef, workers),
	}
	t.mu.Lock()
	t.runs = append(t.runs, r)
	t.mu.Unlock()
	t.reg.Counter("telemetry.runs.started").Inc()
	return r
}

// cellRef is one worker's in-flight cell.
type cellRef struct {
	cell  int
	label string
	since time.Time
}

// LiveRun is the mutable progress record of one sweep.
type LiveRun struct {
	t       *Tracker
	label   string
	total   int
	workers int
	started time.Time

	mu      sync.Mutex
	done    int
	current map[int]cellRef
	ended   bool
}

// CellStart records that worker picked up cell. Nil-safe.
func (r *LiveRun) CellStart(worker, cell int, label string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.current[worker] = cellRef{cell: cell, label: label, since: time.Now()}
	r.mu.Unlock()
	r.t.reg.Counter("telemetry.cells.started").Inc()
}

// CellDone records that worker finished cell. Nil-safe.
func (r *LiveRun) CellDone(worker, cell int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if ref, ok := r.current[worker]; ok && ref.cell == cell {
		delete(r.current, worker)
		r.t.reg.Histogram("telemetry.cell.wall_ms").Observe(int64(time.Since(ref.since) / time.Millisecond))
	}
	r.done++
	r.mu.Unlock()
	r.t.reg.Counter("telemetry.cells.done").Inc()
}

// End marks the sweep finished. Nil-safe.
func (r *LiveRun) End() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.ended = true
	r.current = map[int]cellRef{}
	r.mu.Unlock()
	r.t.reg.Counter("telemetry.runs.ended").Inc()
}

// WorkerStatus is one worker's in-flight cell in a RunStatus.
type WorkerStatus struct {
	Worker         int     `json:"worker"`
	Cell           int     `json:"cell"`
	Label          string  `json:"label"`
	RunningSeconds float64 `json:"running_seconds"`
}

// RunStatus is the point-in-time progress of one sweep, as served by
// /debug/runs.
type RunStatus struct {
	Label          string         `json:"label"`
	Total          int            `json:"total"`
	Done           int            `json:"done"`
	Workers        int            `json:"workers"`
	Ended          bool           `json:"ended"`
	ElapsedSeconds float64        `json:"elapsed_seconds"`
	// ETASeconds extrapolates the remaining cells from the mean wall time
	// of the completed ones; negative when no cell has finished yet (no
	// basis for a rate).
	ETASeconds float64        `json:"eta_seconds"`
	Current    []WorkerStatus `json:"current,omitempty"`
}

// status samples the run at wall-clock instant now.
func (r *LiveRun) status(now time.Time) RunStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := RunStatus{
		Label: r.label, Total: r.total, Done: r.done, Workers: r.workers,
		Ended:          r.ended,
		ElapsedSeconds: now.Sub(r.started).Seconds(),
		ETASeconds:     -1,
	}
	if r.ended {
		st.ETASeconds = 0
	} else if r.done > 0 && st.ElapsedSeconds > 0 {
		rate := float64(r.done) / st.ElapsedSeconds
		st.ETASeconds = float64(r.total-r.done) / rate
	}
	for w, ref := range r.current {
		st.Current = append(st.Current, WorkerStatus{
			Worker: w, Cell: ref.cell, Label: ref.label,
			RunningSeconds: now.Sub(ref.since).Seconds(),
		})
	}
	sort.Slice(st.Current, func(i, j int) bool { return st.Current[i].Worker < st.Current[j].Worker })
	return st
}

// Runs samples every run the tracker has seen, oldest first. Empty on a nil
// tracker.
func (t *Tracker) Runs() []RunStatus {
	if t == nil {
		return nil
	}
	now := time.Now()
	t.mu.Lock()
	runs := append([]*LiveRun(nil), t.runs...)
	t.mu.Unlock()
	out := make([]RunStatus, 0, len(runs))
	for _, r := range runs {
		out = append(out, r.status(now))
	}
	return out
}

// Uptime reports the wall time since the tracker was created (0 on nil).
func (t *Tracker) Uptime() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.started)
}
