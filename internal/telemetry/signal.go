package telemetry

import (
	"os"
	"os/signal"
	"sync"
	"syscall"
)

var interruptOnce sync.Once

// OnInterrupt installs a SIGINT/SIGTERM handler that runs fn once and exits
// with the conventional interrupted status (130). The sweep CLIs use it to
// flush partial benchmark results and a final metrics snapshot when a long
// run is cut short. The first registration wins; a second signal while fn
// runs kills the process immediately (signal.Stop restores the default
// disposition before fn starts).
func OnInterrupt(fn func()) {
	interruptOnce.Do(func() {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-ch
			signal.Stop(ch)
			fn()
			os.Exit(130)
		}()
	})
}
