package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

type runsDoc struct {
	Runs []RunStatus `json:"runs"`
}

func TestRunsEndpointTracksProgress(t *testing.T) {
	tr := NewTracker()
	srv := httptest.NewServer(NewServer(tr).Handler())
	defer srv.Close()

	run := tr.StartRun("chaos", 10, 2)
	run.CellStart(0, 0, "cell-0")
	run.CellStart(1, 1, "cell-1")

	var doc runsDoc
	_, body := get(t, srv, "/debug/runs")
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("invalid /debug/runs JSON: %v\n%s", err, body)
	}
	if len(doc.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(doc.Runs))
	}
	st := doc.Runs[0]
	if st.Label != "chaos" || st.Total != 10 || st.Done != 0 || st.Workers != 2 {
		t.Fatalf("run status wrong: %+v", st)
	}
	if len(st.Current) != 2 || st.Current[0].Worker != 0 || st.Current[1].Label != "cell-1" {
		t.Fatalf("current cells wrong: %+v", st.Current)
	}
	if st.ETASeconds >= 0 {
		t.Fatalf("ETA with no completed cells = %v, want negative (unknown)", st.ETASeconds)
	}

	run.CellDone(0, 0)
	run.CellDone(1, 1)
	_, body = get(t, srv, "/debug/runs")
	doc = runsDoc{} // a reused doc would keep omitempty fields from the last decode
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	st = doc.Runs[0]
	if st.Done != 2 || len(st.Current) != 0 {
		t.Fatalf("after completion: %+v", st)
	}
	if st.ETASeconds < 0 {
		t.Fatalf("ETA with completed cells = %v, want >= 0", st.ETASeconds)
	}

	run.End()
	_, body = get(t, srv, "/debug/runs")
	doc = runsDoc{}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	if st = doc.Runs[0]; !st.Ended || st.ETASeconds != 0 {
		t.Fatalf("ended run status: %+v", st)
	}
}

func TestMetricsEndpointFormatsAndDelta(t *testing.T) {
	tr := NewTracker()
	srv := httptest.NewServer(NewServer(tr).Handler())
	defer srv.Close()

	r := metrics.New()
	r.Counter("sim.events").Add(7)
	r.Gauge("fabric.occupancy.max").Set(0.5)
	tr.AddSnapshot(r.Snapshot())
	run := tr.StartRun("bench", 1, 1)
	run.CellStart(0, 0, "c")
	run.CellDone(0, 0)

	_, prom := get(t, srv, "/metrics")
	for _, want := range []string{
		"# TYPE sim_events counter\nsim_events 7\n",
		"fabric_occupancy_max 0.5",
		"telemetry_cells_done 1",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("/metrics missing %q:\n%s", want, prom)
		}
	}

	_, js := get(t, srv, "/metrics?format=json")
	var snap metrics.Snapshot
	if err := json.Unmarshal([]byte(js), &snap); err != nil {
		t.Fatalf("invalid /metrics?format=json: %v\n%s", err, js)
	}

	// First delta scrape sees everything; a second with no activity between
	// sees no counters.
	get(t, srv, "/metrics?delta=1")
	_, d2 := get(t, srv, "/metrics?delta=1")
	if strings.Contains(d2, "sim_events") {
		t.Errorf("idle delta still reports counters:\n%s", d2)
	}
	r.Counter("sim.events").Add(3)
	tr.AddSnapshot(metrics.Snapshot{Counters: []metrics.CounterValue{{Name: "sim.events", Value: 3}}})
	_, d3 := get(t, srv, "/metrics?delta=1")
	if !strings.Contains(d3, "sim_events 3\n") {
		t.Errorf("delta after +3 wrong:\n%s", d3)
	}
}

func TestHealthz(t *testing.T) {
	tr := NewTracker()
	srv := httptest.NewServer(NewServer(tr).Handler())
	defer srv.Close()
	tr.StartRun("x", 4, 1)
	code, body := get(t, srv, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var doc struct {
		Status     string  `json:"status"`
		Uptime     float64 `json:"uptime_seconds"`
		RunsTotal  int     `json:"runs_total"`
		RunsActive int     `json:"runs_active"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("invalid healthz JSON: %v\n%s", err, body)
	}
	if doc.Status != "ok" || doc.RunsTotal != 1 || doc.RunsActive != 1 {
		t.Fatalf("healthz wrong: %+v", doc)
	}
}

func TestFlightEndpoint(t *testing.T) {
	tr := NewTracker()
	srv := httptest.NewServer(NewServer(tr).Handler())
	defer srv.Close()

	_, body := get(t, srv, "/debug/flight")
	if !strings.Contains(body, "no flight recorders attached") {
		t.Fatalf("empty board rendering wrong:\n%s", body)
	}

	// Attach a recorder the way core.Launch would, run a simulation, scrape.
	attach := tr.Flight().Attacher("cell[0]")
	e := sim.NewEngine()
	defer e.Close()
	fr := sim.NewFlightRecorder(16)
	e.SetFlightRecorder(fr)
	attach(0, fr)
	e.Spawn("p", func(p *sim.Proc) { p.Advance(5) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	_, body = get(t, srv, "/debug/flight")
	for _, want := range []string{"== cell[0] shard 0 ==", "flight recorder:", "spawn"} {
		if !strings.Contains(body, want) {
			t.Errorf("/debug/flight missing %q:\n%s", want, body)
		}
	}
}

// TestNilTrackerSafety pins the disabled path: a nil tracker hands out
// no-op run handles, and a server over a nil tracker still answers every
// endpoint.
func TestNilTrackerSafety(t *testing.T) {
	var tr *Tracker
	run := tr.StartRun("x", 1, 1)
	run.CellStart(0, 0, "c")
	run.CellDone(0, 0)
	run.End()
	tr.AddSnapshot(metrics.Snapshot{})
	if !tr.MetricsSnapshot().Empty() {
		t.Fatal("nil tracker snapshot not empty")
	}
	if tr.Flight().Attacher("x") != nil {
		t.Fatal("nil board must hand out a nil attach hook")
	}

	srv := httptest.NewServer(NewServer(nil).Handler())
	defer srv.Close()
	for _, path := range []string{"/metrics", "/metrics?format=json", "/healthz", "/debug/runs", "/debug/flight"} {
		if code, _ := get(t, srv, path); code != http.StatusOK {
			t.Errorf("%s over nil tracker: status %d", path, code)
		}
	}
}

func TestServerStartClose(t *testing.T) {
	s := NewServer(NewTracker())
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("server still serving after Close")
	}
}
