package telemetry

// FlightBoard: the live side of the flight recorders. A sweep cell's
// core.FlightConfig.Attach hook registers each shard's recorder here as the
// cell launches, and /debug/flight renders the most recent registrations
// mid-run. The board is bounded (a chaos sweep attaches one recorder per
// cell per shard) and keeps the newest entries, which are the ones a live
// observer cares about.

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/sim"
)

// DefaultBoardDepth is the registration capacity used when a non-positive
// depth is requested.
const DefaultBoardDepth = 64

// boardSlot is one registered recorder.
type boardSlot struct {
	label string
	shard int
	fr    *sim.FlightRecorder
}

// FlightBoard is a bounded ring of recently attached flight recorders.
type FlightBoard struct {
	mu  sync.Mutex
	buf []boardSlot
	n   uint64
}

// NewFlightBoard returns a board retaining the last depth registrations
// (DefaultBoardDepth when depth <= 0).
func NewFlightBoard(depth int) *FlightBoard {
	if depth <= 0 {
		depth = DefaultBoardDepth
	}
	return &FlightBoard{buf: make([]boardSlot, depth)}
}

// Attacher returns a core.FlightConfig.Attach-shaped hook registering the
// labelled cell's recorders on the board. Nil-safe: a nil board returns a
// nil hook (which core treats as no live attachment).
func (b *FlightBoard) Attacher(label string) func(shard int, fr *sim.FlightRecorder) {
	if b == nil {
		return nil
	}
	return func(shard int, fr *sim.FlightRecorder) {
		b.mu.Lock()
		b.buf[b.n%uint64(len(b.buf))] = boardSlot{label: label, shard: shard, fr: fr}
		b.n++
		b.mu.Unlock()
	}
}

// snapshot copies the retained slots, oldest first.
func (b *FlightBoard) snapshot() []boardSlot {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	depth := uint64(len(b.buf))
	count := b.n
	if count > depth {
		count = depth
	}
	out := make([]boardSlot, 0, count)
	for i := b.n - count; i < b.n; i++ {
		out = append(out, b.buf[i%depth])
	}
	return out
}

// Dump renders every retained recorder as text: a per-cell header, then
// the recorder's own dump. Safe to call mid-run; each recorder is sampled
// under its own lock.
func (b *FlightBoard) Dump(w io.Writer) error {
	slots := b.snapshot()
	var sb strings.Builder
	if len(slots) == 0 {
		sb.WriteString("no flight recorders attached\n")
	}
	for _, s := range slots {
		fmt.Fprintf(&sb, "== %s shard %d ==\n", s.label, s.shard)
		s.fr.Dump(&sb)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
