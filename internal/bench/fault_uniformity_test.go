package bench

// Cross-backend fault uniformity: every backend routes its transfers through
// the same fabric.LinkFault hook, so the same traffic pattern under the same
// plan must observe the same set of fault windows. The test runs one ring
// allreduce workload (large enough that GPUCCL picks its ring algorithm) on
// all three backends, with the plan's Observe hook recording which link
// faults each transfer hit, and asserts the observed window set matches.

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/gpu"
	"repro/internal/machine"
	"repro/internal/sim"
)

// uniformityPlan degrades intra-node traffic over two disjoint windows of
// the horizon. The indices 0 and 1 are the fault-window identities the test
// compares across backends.
func uniformityPlan(horizon sim.Duration) *faults.Plan {
	win := func(lo, hi float64) faults.Window {
		return faults.Window{
			Start: sim.Time(lo * float64(horizon)),
			End:   sim.Time(hi * float64(horizon)),
		}
	}
	return &faults.Plan{
		Links: []faults.LinkFault{
			{Src: faults.Any, Dst: faults.Any, Path: fabric.PathIntra,
				Window: win(0.15, 0.4), LatencyFactor: 3, BandwidthFactor: 0.5},
			{Src: faults.Any, Dst: faults.Any, Path: fabric.PathIntra,
				Window: win(0.6, 0.85), LatencyFactor: 2, BandwidthFactor: 0.7},
		},
		Watchdog: 100 * horizon,
	}
}

func TestFaultWindowsUniformAcrossBackends(t *testing.T) {
	m := machine.Perlmutter()
	const (
		nGPUs   = 4 // one node: all traffic intra, matching the plan's path
		iters   = 24
		count   = 16 << 10 // 128 KiB of float64 — past GPUCCL's tree cutoff
		horizon = 2 * sim.Millisecond
	)
	observed := map[string][]int{}
	for _, backend := range []core.BackendID{core.MPIBackend, core.GpucclBackend, core.GpushmemBackend} {
		plan := uniformityPlan(horizon)
		hits := map[int]bool{}
		plan.Observe = func(at sim.Time, src, dst int, path fabric.Path, active []int) {
			for _, i := range active {
				hits[i] = true
			}
		}
		_, err := core.Launch(core.Config{Model: m, NGPUs: nGPUs, Backend: backend, Faults: plan},
			func(env *core.Env) {
				env.SetDevice(env.NodeRank())
				comm := core.NewCommunicator(env)
				s := env.NewStream("uniformity")
				coord := core.NewCoordinator(env, core.PureHost, s)
				in := core.Alloc[float64](env, count)
				out := core.Alloc[float64](env, count)
				pace := horizon / sim.Duration(iters)
				for it := 0; it < iters; it++ {
					env.Proc().Advance(pace)
					core.AllReduce(coord, gpu.ReduceSum, in.Base(), out.Base(), count, comm)
					env.StreamSynchronize(s)
				}
			})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		var idx []int
		for i := range hits {
			idx = append(idx, i)
		}
		sort.Ints(idx)
		observed[backend.String()] = idx
	}
	// Every backend's paced traffic spans both windows; the degraded-cell
	// set must be identical everywhere.
	want := fmt.Sprint([]int{0, 1})
	for b, idx := range observed {
		if fmt.Sprint(idx) != want {
			t.Errorf("%s observed fault windows %v, want %s (all: %v)", b, idx, want, observed)
		}
	}
}
