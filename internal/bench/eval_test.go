package bench

import (
	"bytes"
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/spec"
)

// evalTestSpecs is a small mixed batch: both net workloads, an allreduce,
// a topology override, a fault plan, and a second machine.
func evalTestSpecs() []spec.Spec {
	return []spec.Spec{
		{Workload: spec.WorkloadNetLatency, Bytes: 4096},
		{Workload: spec.WorkloadNetLatency, Bytes: 4096, Inter: true},
		{Workload: spec.WorkloadNetBandwidth, Bytes: 1 << 16, Inter: true},
		{Workload: spec.WorkloadAllreduce, Ranks: 8, Bytes: 1 << 16},
		{Workload: spec.WorkloadAllreduce, Ranks: 16, Bytes: 4096, Topology: "fattree:4", Alg: "hierarchical"},
		{Workload: spec.WorkloadNetLatency, Bytes: 8192, Machine: "LUMI"},
		{Workload: spec.WorkloadNetLatency, Bytes: 4096, FaultMode: spec.FaultDegrade, Severity: 0.5, Inter: true},
	}
}

// evalAll evaluates the batch at a fixed worker count and returns the bodies.
func evalAll(t *testing.T, specs []spec.Spec, c *cache.Cache, workers int) [][]byte {
	t.Helper()
	old, had := os.LookupEnv(WorkersEnv)
	os.Setenv(WorkersEnv, strconv.Itoa(workers))
	defer func() {
		if had {
			os.Setenv(WorkersEnv, old)
		} else {
			os.Unsetenv(WorkersEnv)
		}
	}()
	evals := EvalSpecs(specs, c)
	bodies := make([][]byte, len(evals))
	for i, ev := range evals {
		if ev.Err != nil {
			t.Fatalf("spec %d: %v", i, ev.Err)
		}
		bodies[i] = ev.Body
	}
	return bodies
}

// TestEvalCacheHitByteIdentical is the load-bearing determinism test: the
// same batch evaluated cache-cold at workers=1, cache-cold at workers=8, and
// cache-warm must produce byte-identical documents per spec. Run under -race
// in CI.
func TestEvalCacheHitByteIdentical(t *testing.T) {
	specs := evalTestSpecs()

	cold1 := evalAll(t, specs, cache.New(cache.Options{}), 1)

	c8 := cache.New(cache.Options{})
	cold8 := evalAll(t, specs, c8, 8)
	warm8 := evalAll(t, specs, c8, 8)

	for i := range specs {
		if !bytes.Equal(cold1[i], cold8[i]) {
			t.Errorf("spec %d: workers=1 and workers=8 cold runs differ:\n%s\n%s",
				i, cold1[i], cold8[i])
		}
		if !bytes.Equal(cold8[i], warm8[i]) {
			t.Errorf("spec %d: cache hit differs from the cold run:\n%s\n%s",
				i, cold8[i], warm8[i])
		}
	}

	st := c8.Stats()
	if st.Misses != int64(len(specs)) || st.Hits < int64(len(specs)) {
		t.Errorf("cache stats = %+v, want %d misses then >= %d hits", st, len(specs), len(specs))
	}
}

// TestEvalSpecReportsHitFlag pins the hit flag and the decode round trip.
func TestEvalSpecReportsHitFlag(t *testing.T) {
	c := cache.New(cache.Options{})
	s := spec.Spec{Workload: spec.WorkloadAllreduce, Ranks: 8, Bytes: 4096}
	body1, hit1, err := EvalSpec(s, EvalOptions{Cache: c})
	if err != nil || hit1 {
		t.Fatalf("first eval: hit=%v err=%v, want miss", hit1, err)
	}
	body2, hit2, err := EvalSpec(s, EvalOptions{Cache: c})
	if err != nil || !hit2 {
		t.Fatalf("second eval: hit=%v err=%v, want hit", hit2, err)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("hit body differs from cold body")
	}
	res, err := DecodeResult(body1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hash != s.Hash() || res.Unit != "ns" || res.Value <= 0 {
		t.Errorf("decoded result %+v inconsistent with spec %s", res, s)
	}
	if res.Critical.EndNs <= 0 || res.Comm == nil || res.Comm.Ranks != 8 {
		t.Errorf("result lacks critical path / comm matrix: %+v", res)
	}
	sum := res.Critical.ComputeNs + res.Critical.IntraNs + res.Critical.InterNs + res.Critical.BlockedNs
	if sum != res.Critical.EndNs {
		t.Errorf("critical-path attribution %d != end %d", sum, res.Critical.EndNs)
	}
}

// TestEvalSerialIgnoresShardsEnv pins the env-independence rule: a spec with
// Shards 0 must evaluate on the serial engine even when the process has
// UNICONN_SHARDS set (core.Config.Shards 0 would consult it; EvalSpec must
// not, or the same content address would map to two different results).
func TestEvalSerialIgnoresShardsEnv(t *testing.T) {
	s := spec.Spec{Workload: spec.WorkloadAllreduce, Ranks: 8, Bytes: 4096}
	clean, _, err := EvalSpec(s, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Setenv("UNICONN_SHARDS", "4")
	dirty, _, err := EvalSpec(s, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(clean, dirty) {
		t.Fatal("UNICONN_SHARDS leaked into a content-addressed evaluation")
	}
	// And the windowed protocol is genuinely different — the reason shards
	// participate in the hash as a bit.
	sw := s
	sw.Shards = 2
	windowed, _, err := EvalSpec(sw, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(clean, windowed) {
		t.Log("serial and windowed happen to agree for this cell (allowed, not guaranteed)")
	}
	if s.Hash() == sw.Hash() {
		t.Fatal("serial and windowed specs must have distinct hashes")
	}
}

// TestEvalSpecsPerItemErrors: one broken spec must not poison its batch.
func TestEvalSpecsPerItemErrors(t *testing.T) {
	specs := []spec.Spec{
		{Workload: spec.WorkloadNetLatency, Bytes: 4096},
		{Workload: "nope", Bytes: 8},
		{Workload: spec.WorkloadNetLatency, Bytes: 8192},
	}
	evals := EvalSpecs(specs, nil)
	if evals[0].Err != nil || evals[2].Err != nil {
		t.Fatalf("healthy specs errored: %v / %v", evals[0].Err, evals[2].Err)
	}
	if evals[1].Err == nil || !strings.Contains(evals[1].Err.Error(), "unknown workload") {
		t.Fatalf("broken spec error = %v, want unknown workload", evals[1].Err)
	}
	if evals[0].Body == nil || evals[2].Body == nil {
		t.Fatal("healthy specs returned no body")
	}
}

// TestEvalCommMatrixCap: above MaxCommRanks the dense matrices are omitted
// but the totals stay.
func TestEvalCommMatrixCap(t *testing.T) {
	s := spec.Spec{Workload: spec.WorkloadAllreduce, Ranks: 256, Bytes: 8, Iters: 1}
	body, _, err := EvalSpec(s, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := DecodeResult(body)
	if err != nil {
		t.Fatal(err)
	}
	if res.Comm == nil || res.Comm.Ranks != 256 {
		t.Fatalf("comm summary missing: %+v", res.Comm)
	}
	if res.Comm.Bytes != nil || res.Comm.Count != nil {
		t.Error("dense matrices should be omitted above MaxCommRanks")
	}
	if res.Comm.TotalBytes <= 0 || res.Comm.Transfers <= 0 {
		t.Errorf("traffic totals should survive the cap: %+v", res.Comm)
	}
}
