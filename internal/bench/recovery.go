package bench

// Recovery-aware chaos benchmarking: run a fixed-length iterative allreduce
// workload under a hard-fault plan (rank crashes, dead links) and measure
// whether the survivors complete by revoking and shrinking the communicator,
// and how long the recovery takes. This is the measurement core of
// cmd/uniconn-chaos -recover.

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/gpu"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// RecoveryConfig describes one recovery chaos run: an NGPUs-rank job that
// iterates compute + allreduce under the plan, recovering from declared rank
// failures with Revoke + Shrink.
type RecoveryConfig struct {
	Model   *machine.Model
	Backend core.BackendID
	// NGPUs is the rank count (default 8).
	NGPUs int
	// Plan is the injected fault scenario (typically faults.GenerateHard).
	// When its Watchdog is zero, a generous one is armed so a genuinely
	// stuck run still fails with sim.TimeoutError instead of hanging.
	Plan *faults.Plan
	// Iters is the fixed iteration count every rank runs (default 48). The
	// loop condition is an iteration count, never virtual time: survivors
	// must agree on when the workload ends even after a recovery skews
	// their clocks.
	Iters int
	// Count is the allreduce element count (default 1024 float64s = 8 KiB).
	Count int
	// Horizon paces the compute phase: each iteration advances
	// Horizon/Iters before communicating (default 4 ms), which also scales
	// the generated plan's fault windows.
	Horizon sim.Duration
	// Topology overrides the model's inter-node topology for this run
	// (core.Config.Topology); the zero value keeps the model's own setting.
	Topology fabric.TopologyConfig
	// Shards selects parallel-in-virtual-time execution (core.Config.Shards):
	// 0 consults UNICONN_SHARDS or runs serial; any positive count runs the
	// windowed protocol, bit-identical at every shard count >= 1 — hard-fault
	// plans included, since the failure timetable is shard-invariant.
	Shards int
	// Metrics, when non-nil, collects the run's counters (one registry per
	// run — the sweep ownership rule of runner.go).
	Metrics *metrics.Registry
	// FlightDepth, when positive, installs a flight recorder of that depth
	// on every engine and captures the post-mortem dump (written on abort,
	// watchdog timeout, or a hard fault) into RecoveryPoint.FlightDump.
	FlightDepth int
	// FlightAttach, when non-nil, receives each shard's recorder as the run
	// launches (core.FlightConfig.Attach) — live telemetry's /debug/flight
	// hook. On its own it does not populate FlightDump, so enabling live
	// observation never changes the sweep's recorded results.
	FlightAttach func(shard int, fr *sim.FlightRecorder)
}

// RecoveryPoint is one measurement of a recovery sweep.
type RecoveryPoint struct {
	Backend  string
	Severity float64
	// Topology is the run's resolved inter-node topology
	// (fabric.TopologyConfig.Describe: "flat", "fattree(k=4)", ...).
	Topology string
	// Crashes is the number of distinct ranks the run declared failed;
	// Survivors is the rest.
	Crashes   int
	Survivors int
	// Completed reports whether every survivor finished all iterations
	// without an unexpected error.
	Completed bool
	// Recoveries is the maximum number of Revoke+Shrink rounds any
	// survivor ran.
	Recoveries int
	// DetectLatency is the failure detector's delay for the earliest
	// crash: declaration time minus crash time (in [lease/2, lease)).
	DetectLatency sim.Duration
	// Failovers counts transfers the fabric redirected onto fallback routes
	// or steered around dead switches/inter-switch links; on a switched
	// topology with an injected switch crash it must be positive.
	Failovers int
	// RecoveryLatency is the longest Revoke+Shrink+realign span measured
	// on any survivor, from catching the failure to resuming iterations.
	RecoveryLatency sim.Duration
	// End is the virtual completion time of the run.
	End sim.Time
	// Checksum is the lowest-rank survivor's final allreduce result sum,
	// the value the determinism tests compare across worker counts.
	Checksum float64
	// Err records a run-level failure (timeout, unexpected abort); empty
	// on success.
	Err string
	// FlightDump is the flight recorder post-mortem (empty unless the run
	// both enabled recording via RecoveryConfig.FlightDepth and hit a hard
	// fault or run-level error). Deterministic: the dump derives entirely
	// from virtual time.
	FlightDump string `json:"flight_dump,omitempty"`
}

// recoveryRank is one rank's slot of the shared result table. The simulation
// engine is cooperatively scheduled, so plain writes are race-free.
type recoveryRank struct {
	iters      int
	recoveries int
	recLat     sim.Duration
	checksum   float64
	err        error
}

// RunRecovery executes one recovery chaos run and reports what happened.
// Run-level failures are reported in the point's Err field, not the error
// (so sweeps record broken cells instead of aborting); the error is reserved
// for configuration mistakes.
func RunRecovery(cfg RecoveryConfig) (RecoveryPoint, error) {
	if cfg.NGPUs <= 0 {
		cfg.NGPUs = 8
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 48
	}
	if cfg.Count <= 0 {
		cfg.Count = 1024
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 4 * sim.Millisecond
	}
	pt := RecoveryPoint{Backend: cfg.Backend.String()}

	plan := cfg.Plan
	if plan != nil && plan.Watchdog == 0 {
		wp := *plan
		wp.Watchdog = 200 * cfg.Horizon
		plan = &wp
	}

	ranks := make([]recoveryRank, cfg.NGPUs)
	pace := cfg.Horizon / sim.Duration(cfg.Iters)
	iters, count := cfg.Iters, cfg.Count

	main := func(env *core.Env) {
		rank := env.WorldRank()
		st := &ranks[rank]
		env.SetDevice(env.NodeRank())
		world := core.NewCommunicator(env)
		comm := world
		s := env.NewStream("recovery")
		coord := core.NewCoordinator(env, core.PureHost, s)
		p := env.Proc()
		in := core.Alloc[float64](env, count)
		out := core.Alloc[float64](env, count)
		for i := range in.Data() {
			in.Data()[i] = float64(rank + i%7)
		}
		next := core.Alloc[uint64](env, 1)
		align := core.Alloc[uint64](env, 1)

		for it := 0; it < iters; {
			err := env.Try(func() {
				p.Advance(pace) // the compute phase
				core.AllReduce(coord, gpu.ReduceSum, in.Base(), out.Base(), count, comm)
				env.StreamSynchronize(s)
			})
			if err == nil {
				it++
				st.iters = it
				continue
			}
			var rf *sim.RankFailedError
			if !errors.As(err, &rf) {
				st.err = err
				return
			}
			// Recovery: revoke the broken handle, shrink from the stable
			// world communicator, clear the stream's error state, and agree
			// on the next iteration (survivors may have been interrupted at
			// different points). A second failure mid-recovery aborts the
			// whole sequence out of Try and retries at the new epoch.
			recStart := p.Now()
			for {
				rerr := env.Try(func() {
					comm.Revoke()
					comm = world.Shrink()
					env.ResetStream(s)
					next.Data()[0] = uint64(it)
					core.AllReduce(coord, gpu.ReduceMax, next.Base(), align.Base(), 1, comm)
					env.StreamSynchronize(s)
				})
				if rerr == nil {
					break
				}
				if !errors.As(rerr, &rf) {
					st.err = rerr
					return
				}
			}
			it = int(align.Data()[0])
			st.iters = it
			st.recoveries++
			if d := p.Now().Sub(recStart); d > st.recLat {
				st.recLat = d
			}
		}
		sum := 0.0
		for _, v := range out.Data() {
			sum += v
		}
		st.checksum = sum
	}

	// Flight recording: an explicit FlightDepth captures the post-mortem
	// into the point; a live Attach hook alone observes without recording,
	// so -live never changes the sweep's results.
	var flightBuf bytes.Buffer
	var flight *core.FlightConfig
	if cfg.FlightDepth > 0 {
		flight = &core.FlightConfig{Depth: cfg.FlightDepth, Sink: &flightBuf, Attach: cfg.FlightAttach}
	} else if cfg.FlightAttach != nil {
		flight = &core.FlightConfig{Attach: cfg.FlightAttach}
	}

	rep, err := core.Launch(core.Config{
		Model: cfg.Model, NGPUs: cfg.NGPUs, Backend: cfg.Backend, Faults: plan,
		Topology: cfg.Topology, Shards: cfg.Shards,
		Metrics: cfg.Metrics, Flight: flight,
	}, main)
	pt.FlightDump = flightBuf.String()
	if err != nil {
		pt.Err = err.Error()
		return pt, nil
	}
	pt.End = rep.End

	// Fault accounting comes from the report — the run's own record of who
	// crashed, when the detector declared it, and how often the fabric
	// rerouted — instead of re-deriving it from the plan.
	pt.Topology = rep.Topology.Describe()
	dead := map[int]bool{}
	for _, r := range rep.Faults.CrashedRanks {
		dead[r] = true
	}
	pt.Crashes = len(rep.Faults.CrashedRanks)
	pt.Survivors = cfg.NGPUs - pt.Crashes
	pt.DetectLatency = rep.Faults.FirstDetectLatency
	pt.Failovers = rep.Faults.Failovers

	completed := true
	for r := 0; r < cfg.NGPUs; r++ {
		if dead[r] {
			continue
		}
		st := &ranks[r]
		if st.err != nil && pt.Err == "" {
			pt.Err = fmt.Sprintf("rank %d: %v", r, st.err)
		}
		if st.iters < cfg.Iters {
			completed = false
		}
		if st.recoveries > pt.Recoveries {
			pt.Recoveries = st.recoveries
		}
		if st.recLat > pt.RecoveryLatency {
			pt.RecoveryLatency = st.recLat
		}
	}
	pt.Completed = completed && pt.Err == ""
	for r := 0; r < cfg.NGPUs; r++ {
		if !dead[r] {
			pt.Checksum = ranks[r].checksum
			break
		}
	}
	return pt, nil
}

// RecoverySweep measures one backend's recovery behaviour across a severity
// ramp: each severity builds its hard-fault plan with faults.GenerateHard
// (crashes appear from severity 0.5, a dead link from 0.75; on a switched
// topology — carried by m.Topology — also a crashed aggregation switch or
// dead global channel for adaptive routing to steer around) and runs
// RunRecovery. Cells fan out over the deterministic sweep runner; results
// are bit-identical at any worker count. Broken cells are reported in their
// point's Err field rather than aborting the sweep.
func RecoverySweep(m *machine.Model, backend core.BackendID, nGPUs int, severities []float64, seed uint64) ([]RecoveryPoint, error) {
	return RecoverySweepOpts(m, backend, nGPUs, severities, seed, RecoveryOpts{})
}

// RecoveryOpts are the observability add-ons of a recovery sweep.
type RecoveryOpts struct {
	// FlightDepth, when positive, enables per-cell flight recording; a
	// cell's post-mortem lands in its point's FlightDump.
	FlightDepth int
	// Live, when non-nil, attaches each cell's recorders to the tracker's
	// flight board and feeds each cell's metrics snapshot into the live
	// aggregate. Cells get a private registry each (the sweep ownership
	// rule) and snapshots merge order-insensitively, so /metrics content is
	// worker-count-independent — and the sweep's own results are untouched.
	Live *telemetry.Tracker
}

// RecoverySweepOpts is RecoverySweep with live-telemetry and flight-recorder
// options. Points are bit-identical to RecoverySweep's except for FlightDump
// (populated only when opts.FlightDepth > 0).
func RecoverySweepOpts(m *machine.Model, backend core.BackendID, nGPUs int, severities []float64, seed uint64, opts RecoveryOpts) ([]RecoveryPoint, error) {
	horizon := 4 * sim.Millisecond
	fc := m.FabricConfig(m.NodesFor(nGPUs))
	return Sweep(len(severities), func(i int) (RecoveryPoint, error) {
		sev := severities[i]
		plan := faults.GenerateHard(seed, sev, fc, horizon)
		rc := RecoveryConfig{
			Model: m, Backend: backend, NGPUs: nGPUs, Plan: plan, Horizon: horizon,
			FlightDepth: opts.FlightDepth,
		}
		if opts.Live != nil {
			rc.FlightAttach = opts.Live.Flight().Attacher(
				fmt.Sprintf("%s sev=%.2f", backend, sev))
			rc.Metrics = metrics.New()
		}
		pt, err := RunRecovery(rc)
		if opts.Live != nil {
			opts.Live.AddSnapshot(rc.Metrics.Snapshot())
		}
		if err != nil {
			return pt, err
		}
		pt.Severity = sev
		return pt, nil
	})
}
