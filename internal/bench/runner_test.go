package bench

// Tests for the deterministic parallel sweep runner: unit tests for the
// pool mechanics (index ordering, lowest-index error, env resolution), and
// end-to-end determinism tests asserting that a full figure sweep and a
// chaos severity sweep render byte-identically at workers=1 and workers=8.

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/faults"
)

func TestRunnerSerialOrder(t *testing.T) {
	r := NewRunner(1)
	var order []int
	if err := r.Run(8, func(i int) error {
		order = append(order, i)
		return nil
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order = %v, want ascending", order)
		}
	}
}

func TestRunnerCoversAllCells(t *testing.T) {
	const n = 100
	r := NewRunner(8)
	var mu sync.Mutex
	seen := make(map[int]int, n)
	if err := r.Run(n, func(i int) error {
		mu.Lock()
		seen[i]++
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(seen) != n {
		t.Fatalf("covered %d cells, want %d", len(seen), n)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("cell %d ran %d times", i, c)
		}
	}
}

func TestRunnerReturnsLowestIndexError(t *testing.T) {
	errLow := errors.New("low")
	for trial := 0; trial < 20; trial++ {
		r := NewRunner(8)
		err := r.Run(64, func(i int) error {
			switch i {
			case 7:
				return errLow
			case 9, 23, 41:
				return fmt.Errorf("higher %d", i)
			}
			return nil
		})
		if err != errLow {
			t.Fatalf("trial %d: err = %v, want %v", trial, err, errLow)
		}
	}
}

func TestRunnerSkipsAfterFailure(t *testing.T) {
	// With one worker a failure stops the sweep immediately; later cells
	// must never run.
	r := NewRunner(1)
	var ran atomic.Int64
	err := r.Run(10, func(i int) error {
		ran.Add(1)
		if i == 3 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil || ran.Load() != 4 {
		t.Fatalf("ran %d cells (err=%v), want 4", ran.Load(), err)
	}
}

func TestRunnerEmptySweep(t *testing.T) {
	if err := NewRunner(4).Run(0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatalf("empty sweep: %v", err)
	}
}

func TestWorkersEnvResolution(t *testing.T) {
	t.Setenv(WorkersEnv, "3")
	if got := Workers(); got != 3 {
		t.Fatalf("Workers() with %s=3: %d", WorkersEnv, got)
	}
	if got := NewRunner(0).Workers(); got != 3 {
		t.Fatalf("NewRunner(0) with %s=3: %d workers", WorkersEnv, got)
	}
	for _, bad := range []string{"0", "-2", "many"} {
		t.Setenv(WorkersEnv, bad)
		if got := Workers(); got < 1 {
			t.Fatalf("Workers() with %s=%q: %d, want GOMAXPROCS fallback", WorkersEnv, bad, got)
		}
	}
}

func TestSweepCollectsByIndex(t *testing.T) {
	got, err := SweepWith(NewRunner(8), 50, func(i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatalf("SweepWith: %v", err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// TestFigureSweepDeterministic renders a full paper figure at workers=1 and
// workers=8 and asserts the outputs are byte-identical. Fig 6 (CG solver
// scaling) is the cheapest figure that still exercises machine models,
// backends, and the sparse solver end to end.
func TestFigureSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second figure sweep")
	}
	render := func(workers string) string {
		t.Setenv(WorkersEnv, workers)
		figs, err := RunFig6(Quick)
		if err != nil {
			t.Fatalf("RunFig6(workers=%s): %v", workers, err)
		}
		var sb strings.Builder
		for _, f := range figs {
			sb.WriteString(f.Render())
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	serial := render("1")
	parallel := render("8")
	if serial != parallel {
		t.Fatalf("figure output diverged between workers=1 and workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

// TestChaosSweepDeterministic runs a severity ramp at workers=1 and
// workers=8 and asserts identical points.
func TestChaosSweepDeterministic(t *testing.T) {
	cfg := chaosConfig(chaosBackends[0].backend)
	severities := []float64{0, 0.25, 0.5, 0.75, 1}
	sweep := func(workers string) []ChaosPoint {
		t.Setenv(WorkersEnv, workers)
		pts, err := ChaosSweep(cfg, severities, nil)
		if err != nil {
			t.Fatalf("ChaosSweep(workers=%s): %v", workers, err)
		}
		return pts
	}
	serial := sweep("1")
	parallel := sweep("8")
	if len(serial) != len(parallel) {
		t.Fatalf("point counts diverged: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("point %d diverged: serial %+v, parallel %+v", i, serial[i], parallel[i])
		}
	}
}

// TestChaosSweepParallelErrorMatchesSerial injects a failure mid-ramp and
// checks that the parallel sweep reports the same first error and the same
// preceding points as the serial one.
func TestChaosSweepParallelErrorMatchesSerial(t *testing.T) {
	cfg := chaosConfig(chaosBackends[0].backend)
	severities := []float64{0, 0.5, 2.5, 3}
	planFor := func(s float64) *faults.Plan {
		p := faults.Degrade(cfg.FaultedPath(), s)
		if s > 2 {
			// Arm a 1ns virtual-time watchdog: the run trips it
			// immediately, giving a deterministic mid-sweep failure.
			p.Watchdog = 1
		}
		return p
	}
	run := func(workers string) ([]ChaosPoint, error) {
		t.Setenv(WorkersEnv, workers)
		return ChaosSweep(cfg, severities, planFor)
	}
	sPts, sErr := run("1")
	pPts, pErr := run("8")
	if (sErr == nil) != (pErr == nil) || (sErr != nil && sErr.Error() != pErr.Error()) {
		t.Fatalf("errors diverged: serial %v, parallel %v", sErr, pErr)
	}
	if len(sPts) != len(pPts) {
		t.Fatalf("prefix lengths diverged: %d vs %d", len(sPts), len(pPts))
	}
	for i := range sPts {
		if sPts[i] != pPts[i] {
			t.Fatalf("prefix point %d diverged: %+v vs %+v", i, sPts[i], pPts[i])
		}
	}
}
