package bench

// Per-worker model/cost-cache reuse for sweeps. Every cell of a sweep that
// shares a machine used to rebuild that machine's cost world from scratch:
// a fresh machine.CostCache per cluster means every cell re-evaluates the
// same cost curves for the same few (lib, api, path, bytes) tuples its
// predecessors already resolved. A ModelPool holds one immutable model and
// one CostCache per sweep worker; cells pass their worker's cache through
// core.Config.Costs (via NetConfig/ScaleConfig Costs) and start warm.
//
// Per worker, not per sweep: a single shared cache would be correct (it is
// mutex-guarded, and memoization is invisible to virtual time) but would
// serialize workers on its lock; per-worker caches cost a few redundant
// warm-ups and contend on nothing. Worker-keyed reuse is sound precisely
// because the cache contents never influence results — see
// gpu.Cluster.UseCosts — so which cells share a worker remains unobservable.

import "repro/internal/machine"

// ModelPool is one immutable machine model plus a warmed cost cache per
// sweep worker.
type ModelPool struct {
	model *machine.Model
	costs []*machine.CostCache
}

// NewModelPool builds a pool for the model with one cost cache per worker;
// workers <= 0 sizes for the default runner (Workers()).
func NewModelPool(model *machine.Model, workers int) *ModelPool {
	if workers <= 0 {
		workers = Workers()
	}
	p := &ModelPool{model: model, costs: make([]*machine.CostCache, workers)}
	for i := range p.costs {
		p.costs[i] = machine.NewCostCache(model)
	}
	return p
}

// Model returns the pool's shared immutable model. Callers needing a
// topology or inter-view variant clone it (spec.WithTopology, NetConfig's
// inter view); Model.Cost ignores the cloned fields, so the pool's caches
// stay valid for every variant.
func (p *ModelPool) Model() *machine.Model { return p.model }

// Costs returns the given worker's cost cache (nil for out-of-range
// workers, which disables sharing rather than failing).
func (p *ModelPool) Costs(worker int) *machine.CostCache {
	if p == nil || worker < 0 || worker >= len(p.costs) {
		return nil
	}
	return p.costs[worker]
}
