package bench

// UNICONN latency and bandwidth benchmarks: one Post/Acknowledge
// implementation covering every backend (host API), and one DevPost/
// DevAcknowledge kernel for the device API — the portability the paper
// stresses in §VI-B.

import (
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/sim"
)

func latencyUniconnHost(cfg NetConfig, env *core.Env, iters, warmup int) sim.Duration {
	comm := core.NewCommunicator(env)
	s := env.NewStream("net")
	coord := core.NewCoordinator(env, core.PureHost, s)
	p := env.Proc()
	n := int(cfg.Bytes / 8)
	data := core.Alloc[float64](env, n)
	sync := core.Alloc[uint64](env, 2)
	me, peer := env.WorldRank(), 1-env.WorldRank()

	var start sim.Time
	for it := 1; it <= warmup+iters; it++ {
		if it == warmup+1 {
			env.StreamSynchronize(s)
			comm.HostBarrier()
			start = p.Now()
		}
		v := uint64(it)
		if me == 0 {
			core.Post(coord, data.Base(), data.Base(), n, core.Sig(sync, 0), v, peer, comm)
			core.Acknowledge(coord, data.Base(), n, core.Sig(sync, 1), v, peer, comm)
		} else {
			core.Acknowledge(coord, data.Base(), n, core.Sig(sync, 0), v, peer, comm)
			core.Post(coord, data.Base(), data.Base(), n, core.Sig(sync, 1), v, peer, comm)
		}
		env.StreamSynchronize(s)
	}
	return p.Now().Sub(start)
}

func bandwidthUniconnHost(cfg NetConfig, env *core.Env, iters, warmup, window int) sim.Duration {
	comm := core.NewCommunicator(env)
	s := env.NewStream("net")
	coord := core.NewCoordinator(env, core.PureHost, s)
	p := env.Proc()
	n := int(cfg.Bytes / 8)
	data := core.Alloc[float64](env, n*window)
	sync := core.Alloc[uint64](env, 1)
	me, peer := env.WorldRank(), 1-env.WorldRank()

	var start sim.Time
	val := uint64(0)
	for it := 0; it < warmup+iters; it++ {
		if it == warmup {
			env.StreamSynchronize(s)
			comm.HostBarrier()
			start = p.Now()
		}
		coord.CommStart()
		for w := 0; w < window; w++ {
			val++
			if me == 0 {
				core.Post(coord, data.At(w*n), data.At(w*n), n, core.Sig(sync, 0), val, peer, comm)
			} else {
				core.Acknowledge(coord, data.At(w*n), n, core.Sig(sync, 0), val, peer, comm)
			}
		}
		coord.CommEnd()
		env.StreamSynchronize(s)
		comm.HostBarrier()
	}
	return p.Now().Sub(start)
}

func latencyUniconnDevice(cfg NetConfig, env *core.Env, iters, warmup int) sim.Duration {
	comm := core.NewCommunicator(env)
	s := env.NewStream("net")
	coord := core.NewCoordinator(env, core.PureDevice, s)
	dc := comm.ToDevice()
	n := int(cfg.Bytes / 8)
	data := core.Alloc[float64](env, n)
	sync := core.Alloc[uint64](env, 2)
	me, peer := env.WorldRank(), 1-env.WorldRank()

	var elapsed sim.Duration
	k := &gpu.Kernel{Name: "uniconn-pingpong", Body: func(kc *gpu.KernelCtx) {
		var start sim.Time
		for it := 1; it <= warmup+iters; it++ {
			if it == warmup+1 {
				core.DevBarrier(kc, dc)
				start = kc.P.Now()
			}
			v := uint64(it)
			if me == 0 {
				core.DevPost(kc, core.Block, data.Base(), data.Base(), n, core.Sig(sync, 0), v, peer, dc)
				core.DevAcknowledge(kc, core.Sig(sync, 1), v, dc)
			} else {
				core.DevAcknowledge(kc, core.Sig(sync, 0), v, dc)
				core.DevPost(kc, core.Block, data.Base(), data.Base(), n, core.Sig(sync, 1), v, peer, dc)
			}
		}
		elapsed = kc.P.Now().Sub(start)
	}}
	coord.BindKernel(core.PureDevice, k, nil)
	coord.LaunchKernel()
	env.StreamSynchronize(s)
	return elapsed
}

func bandwidthUniconnDevice(cfg NetConfig, env *core.Env, iters, warmup, window int) sim.Duration {
	comm := core.NewCommunicator(env)
	s := env.NewStream("net")
	coord := core.NewCoordinator(env, core.PureDevice, s)
	dc := comm.ToDevice()
	n := int(cfg.Bytes / 8)
	data := core.Alloc[float64](env, n*window)
	me, peer := env.WorldRank(), 1-env.WorldRank()

	var elapsed sim.Duration
	val := uint64(0)
	k := &gpu.Kernel{Name: "uniconn-bw", Body: func(kc *gpu.KernelCtx) {
		var start sim.Time
		for it := 0; it < warmup+iters; it++ {
			if it == warmup {
				core.DevBarrier(kc, dc)
				start = kc.P.Now()
			}
			if me == 0 {
				for w := 0; w < window; w++ {
					val++
					core.DevPost(kc, core.Block, data.At(w*n), data.At(w*n), n,
						core.Signal{}, 0, peer, dc)
				}
				core.DevQuiet(kc, dc)
			}
			core.DevBarrier(kc, dc)
		}
		elapsed = kc.P.Now().Sub(start)
	}}
	coord.BindKernel(core.PureDevice, k, nil)
	coord.LaunchKernel()
	env.StreamSynchronize(s)
	return elapsed
}
