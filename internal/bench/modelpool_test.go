package bench

import (
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sim"
)

func TestModelPoolPerWorkerCaches(t *testing.T) {
	m := machine.Perlmutter()
	p := NewModelPool(m, 3)
	if p.Model() != m {
		t.Fatal("pool should hand back the shared model")
	}
	c0, c1 := p.Costs(0), p.Costs(1)
	if c0 == nil || c1 == nil {
		t.Fatal("in-range workers should have caches")
	}
	if c0 == c1 {
		t.Fatal("workers must not share a cache (lock contention)")
	}
	if c0.Model() != m {
		t.Fatal("cache should be bound to the pool's model")
	}
	if p.Costs(-1) != nil || p.Costs(3) != nil {
		t.Fatal("out-of-range workers should get nil (sharing disabled)")
	}
	var nilPool *ModelPool
	if nilPool.Costs(0) != nil {
		t.Fatal("nil pool should be safe and return nil")
	}
}

func TestModelPoolDefaultSizing(t *testing.T) {
	p := NewModelPool(machine.LUMI(), 0)
	if got := Workers(); p.Costs(got-1) == nil {
		t.Fatalf("pool sized for %d default workers should cover them all", got)
	}
}

// TestSharedCostsPreserveResults is the soundness check for the hoist: the
// same sweep with and without pooled cost caches must produce identical
// virtual-time results.
func TestSharedCostsPreserveResults(t *testing.T) {
	m := machine.Perlmutter()
	sizes := []int64{8, 4096, 1 << 20}
	cold := make([]sim.Duration, len(sizes))
	for i, b := range sizes {
		lat, err := Latency(NetConfig{Model: m, Backend: core.MPIBackend, Native: true, Inter: true, Bytes: b})
		if err != nil {
			t.Fatal(err)
		}
		cold[i] = lat
	}
	pool := NewModelPool(m, 1)
	for i, b := range sizes {
		lat, err := Latency(NetConfig{Model: m, Backend: core.MPIBackend, Native: true, Inter: true, Bytes: b,
			Costs: pool.Costs(0)})
		if err != nil {
			t.Fatal(err)
		}
		if lat != cold[i] {
			t.Errorf("bytes=%d: pooled cache changed the result: %v != %v", b, lat, cold[i])
		}
	}
	if pool.Costs(0).Len() == 0 {
		t.Error("the pooled cache should have been warmed by the sweep")
	}
}

// BenchmarkLatencyCellPrivateCosts and BenchmarkLatencyCellPooledCosts
// measure the per-cell setup saving of the ModelPool hoist: the same 4 KiB
// inter-node latency cell with a fresh cost cache per cell (the old sweep
// behaviour) versus a reused warmed cache. The delta is the rebuilt-world
// overhead EvalSpecs and the netbench sweep no longer pay per cell.
func BenchmarkLatencyCellPrivateCosts(b *testing.B) {
	m := machine.Perlmutter()
	cfg := NetConfig{Model: m, Backend: core.MPIBackend, Native: true, Inter: true, Bytes: 4096}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Latency(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLatencyCellPooledCosts(b *testing.B) {
	m := machine.Perlmutter()
	pool := NewModelPool(m, 1)
	cfg := NetConfig{Model: m, Backend: core.MPIBackend, Native: true, Inter: true, Bytes: 4096,
		Costs: pool.Costs(0)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Latency(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
