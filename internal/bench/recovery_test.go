package bench

import (
	"os"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/sim"
)

// crashPlan kills rank 3 of 8 one millisecond in, mid-allreduce, with a
// generous watchdog so a hang would surface as a TimeoutError.
func crashPlan() *faults.Plan {
	return &faults.Plan{
		Crashes:  []faults.RankCrash{{Rank: 3, At: sim.Time(sim.Millisecond)}},
		Lease:    sim.Millisecond,
		Watchdog: sim.Second,
	}
}

// TestRecoveryCrashMidAllreduce is the acceptance scenario: one of eight
// ranks dies mid-run and the survivors complete via Revoke + Shrink on every
// backend, with no timeout.
func TestRecoveryCrashMidAllreduce(t *testing.T) {
	m := machine.Perlmutter()
	for _, backend := range []core.BackendID{core.MPIBackend, core.GpucclBackend, core.GpushmemBackend} {
		t.Run(backend.String(), func(t *testing.T) {
			pt, err := RunRecovery(RecoveryConfig{
				Model: m, Backend: backend, NGPUs: 8, Plan: crashPlan(),
			})
			if err != nil {
				t.Fatal(err)
			}
			if pt.Err != "" {
				t.Fatalf("run failed: %s", pt.Err)
			}
			if !pt.Completed {
				t.Fatalf("survivors did not complete: %+v", pt)
			}
			if pt.Recoveries < 1 {
				t.Fatalf("expected at least one recovery, got %+v", pt)
			}
			if pt.Survivors != 7 || pt.Crashes != 1 {
				t.Fatalf("wrong survivor accounting: %+v", pt)
			}
			// Detection latency must respect the lease bounds [lease/2, lease).
			if pt.DetectLatency < sim.Millisecond/2 || pt.DetectLatency >= sim.Millisecond {
				t.Fatalf("detect latency %v outside [lease/2, lease)", pt.DetectLatency)
			}
			if pt.RecoveryLatency <= 0 {
				t.Fatalf("no recovery latency measured: %+v", pt)
			}
		})
	}
}

// TestRecoverySweepDeterministicAcrossWorkers runs the same recovery sweep
// serially and with eight workers; every field of every point must match
// bit for bit.
func TestRecoverySweepDeterministicAcrossWorkers(t *testing.T) {
	m := machine.Perlmutter()
	severities := []float64{0, 0.5, 0.75, 1}
	run := func(workers string) []RecoveryPoint {
		t.Helper()
		old, had := os.LookupEnv(WorkersEnv)
		os.Setenv(WorkersEnv, workers)
		defer func() {
			if had {
				os.Setenv(WorkersEnv, old)
			} else {
				os.Unsetenv(WorkersEnv)
			}
		}()
		pts, err := RecoverySweep(m, core.GpucclBackend, 8, severities, 7)
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}
	serial := run("1")
	parallel := run("8")
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("sweep differs across worker counts:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	for _, pt := range serial {
		if pt.Err != "" {
			t.Fatalf("severity %g failed: %s", pt.Severity, pt.Err)
		}
		if !pt.Completed {
			t.Fatalf("severity %g did not complete: %+v", pt.Severity, pt)
		}
		if pt.Severity >= 0.5 && pt.Recoveries < 1 {
			t.Fatalf("severity %g crashed ranks but recovered zero times: %+v", pt.Severity, pt)
		}
	}
}

// TestRecoveryHealthyRunUntouched checks severity-0 behaviour: no crashes,
// no recoveries, full completion.
func TestRecoveryHealthyRunUntouched(t *testing.T) {
	pt, err := RunRecovery(RecoveryConfig{
		Model: machine.Perlmutter(), Backend: core.MPIBackend, NGPUs: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !pt.Completed || pt.Recoveries != 0 || pt.Crashes != 0 {
		t.Fatalf("healthy run misbehaved: %+v", pt)
	}
}
