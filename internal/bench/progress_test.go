package bench

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/telemetry"
)

// TestRunnerReportsProgress wires a tracker into the runner and checks both
// execution paths (serial and pooled) report run and cell progress.
func TestRunnerReportsProgress(t *testing.T) {
	tr := telemetry.NewTracker()
	SetProgress(tr)
	SetProgressLabel("progress-test")
	defer SetProgress(nil)

	for _, workers := range []int{1, 4} {
		if err := NewRunner(workers).Run(6, func(i int) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	runs := tr.Runs()
	if len(runs) != 2 {
		t.Fatalf("tracked %d runs, want 2", len(runs))
	}
	for i, st := range runs {
		if st.Label != "progress-test" || st.Total != 6 || st.Done != 6 || !st.Ended {
			t.Errorf("run %d status wrong: %+v", i, st)
		}
		if len(st.Current) != 0 {
			t.Errorf("run %d still has in-flight cells: %+v", i, st.Current)
		}
	}
	if runs[0].Workers != 1 || runs[1].Workers != 4 {
		t.Errorf("worker counts = %d, %d; want 1, 4", runs[0].Workers, runs[1].Workers)
	}
}

// TestRecoverySweepOptsObservability checks the observability add-ons: a
// positive FlightDepth captures the post-mortem of faulted cells into their
// points, a live tracker accumulates per-cell metrics — and neither changes
// the sweep's measurements relative to plain RecoverySweep.
func TestRecoverySweepOptsObservability(t *testing.T) {
	m := machine.Perlmutter()
	sevs := []float64{0, 0.75} // 0.75 generates a crash and a dead link
	const seed = 7

	plain, err := RecoverySweep(m, core.MPIBackend, 8, sevs, seed)
	if err != nil {
		t.Fatal(err)
	}
	tr := telemetry.NewTracker()
	live, err := RecoverySweepOpts(m, core.MPIBackend, 8, sevs, seed,
		RecoveryOpts{FlightDepth: 64, Live: tr})
	if err != nil {
		t.Fatal(err)
	}

	if len(live) != len(plain) {
		t.Fatalf("point counts differ: %d vs %d", len(live), len(plain))
	}
	for i := range live {
		got, want := live[i], plain[i]
		got.FlightDump = ""
		if got != want {
			t.Errorf("severity %v: observed point differs from plain sweep:\n got %+v\nwant %+v",
				sevs[i], got, want)
		}
	}
	if live[0].FlightDump != "" {
		t.Errorf("fault-free cell dumped a post-mortem:\n%s", live[0].FlightDump)
	}
	if !strings.Contains(live[1].FlightDump, "flight recorder:") {
		t.Errorf("faulted cell missing post-mortem, dump: %q", live[1].FlightDump)
	}
	if live[1].Crashes == 0 {
		t.Fatalf("severity 0.75 crashed nobody: %+v", live[1])
	}

	snap := tr.MetricsSnapshot()
	if snap.Empty() {
		t.Fatal("live tracker accumulated no metrics")
	}
	var sawCrash bool
	for _, c := range snap.Counters {
		if c.Name == "core.crashes" && c.Value > 0 {
			sawCrash = true
		}
	}
	if !sawCrash {
		t.Errorf("live metrics missing core.crashes, counters: %+v", snap.Counters)
	}
	var board strings.Builder
	if err := tr.Flight().Dump(&board); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(board.String(), "MPI sev=0.75") {
		t.Errorf("flight board missing the faulted cell:\n%s", board.String())
	}
}
