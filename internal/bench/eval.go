package bench

// Spec-driven evaluation: the bridge between the canonical experiment spec
// (internal/spec), the content-addressed result cache (internal/cache), and
// the workload implementations in this package. EvalSpec answers the
// what-if question one spec poses — predicted time, critical path, traffic
// matrix — as a canonically encoded JSON document; EvalSpecs fans a batch
// out over the sweep runner with per-worker cost caches.
//
// Caching contract: the cache stores the *encoded bytes* under the spec's
// content hash, and a hit returns those bytes verbatim, so a cached answer
// is byte-identical to a fresh one by construction (the simulator is
// bit-deterministic per spec; eval_test.go pins this under -race at
// workers 1 vs 8). Everything inside a Result is virtual-time data —
// no wall clock, no host facts — which is what makes the bytes a pure
// function of the spec.

import (
	"encoding/json"
	"fmt"

	"repro/internal/cache"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/trace"
)

// MaxCommRanks caps the rank count above which Result omits the dense
// rank-to-rank matrices (totals stay): a 4096-rank sweep would otherwise
// embed two 4096x4096 matrices in every response.
const MaxCommRanks = 128

// CritSummary is the critical-path breakdown of a run, in nanoseconds of
// virtual time (trace.CriticalPath; Compute+Intra+Inter+Blocked == End).
type CritSummary struct {
	Spans     int   `json:"spans"`
	LenNs     int64 `json:"len_ns"`
	EndNs     int64 `json:"end_ns"`
	ComputeNs int64 `json:"compute_ns"`
	IntraNs   int64 `json:"intra_ns"`
	InterNs   int64 `json:"inter_ns"`
	BlockedNs int64 `json:"blocked_ns"`
}

// CommSummary is the rank-to-rank traffic of a run. The dense matrices are
// omitted above MaxCommRanks; the totals always hold the full traffic.
type CommSummary struct {
	Ranks      int       `json:"ranks"`
	TotalBytes int64     `json:"total_bytes"`
	Transfers  int64     `json:"transfers"`
	Bytes      [][]int64 `json:"bytes,omitempty"`
	Count      [][]int64 `json:"count,omitempty"`
}

// Result is the evaluation of one spec: the workload's headline value plus
// the critical-path and traffic views a what-if query wants. All quantities
// are virtual-time; the encoded form (Encode) is the unit of caching.
type Result struct {
	// Spec is the normalized spec the result answers; Hash its content
	// address (the cache key).
	Spec spec.Spec `json:"spec"`
	Hash string    `json:"hash"`
	// Value is the workload's headline number in Unit: one-way latency in
	// "ns" (net-latency), "B/s" (net-bandwidth), or per-iteration virtual
	// time in "ns" (allreduce).
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
	// EndNs is the virtual end time of the whole run; Topology the resolved
	// fabric description (auto-sized parameters filled in).
	EndNs    int64  `json:"end_ns"`
	Topology string `json:"topology"`
	Critical CritSummary  `json:"critical_path"`
	Comm     *CommSummary `json:"comm_matrix,omitempty"`
}

// Encode renders the canonical byte form of the result: compact JSON plus a
// trailing newline. encoding/json emits struct fields in declaration order,
// so equal results always encode to equal bytes — the property that makes
// the encoding cacheable under the spec hash.
func (r Result) Encode() ([]byte, error) {
	b, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DecodeResult parses an encoded result.
func DecodeResult(b []byte) (Result, error) {
	var r Result
	err := json.Unmarshal(b, &r)
	return r, err
}

// EvalOptions configures spec evaluation.
type EvalOptions struct {
	// Cache, when non-nil, is consulted before simulating and filled after;
	// nil always simulates.
	Cache *cache.Cache
	// Costs, when non-nil, is a shared per-worker cost cache (ModelPool)
	// passed through to the run; a cache for a different machine than the
	// spec's is ignored (core.Config.applyCosts).
	Costs *machine.CostCache
}

// EvalSpec evaluates one spec, returning the canonical encoded Result and
// whether it came from the cache. A hit returns the stored bytes verbatim
// (byte-identical to a fresh evaluation); a miss simulates the cell with a
// private trace log, encodes, stores, and returns.
func EvalSpec(s spec.Spec, opt EvalOptions) ([]byte, bool, error) {
	if err := s.Validate(); err != nil {
		return nil, false, err
	}
	h := s.Hash()
	if body, ok := opt.Cache.Get(h); ok {
		return body, true, nil
	}
	res, err := evalCold(s.Normalize(), h, opt.Costs)
	if err != nil {
		return nil, false, err
	}
	body, err := res.Encode()
	if err != nil {
		return nil, false, err
	}
	opt.Cache.Put(h, body)
	return body, false, nil
}

// Evaluation is one EvalSpecs outcome. Err is per-item: a failing spec
// reports here without aborting its batch-mates (the what-if service must
// answer the healthy queries of a batch even when one is unrunnable).
type Evaluation struct {
	Body []byte
	Hit  bool
	Err  error
}

// EvalSpecs evaluates a batch over the sweep runner: cells fan out with the
// usual determinism contract (index-ordered results), cache hits
// short-circuit, and each worker reuses one warmed cost cache per machine
// it encounters (the ModelPool discipline, keyed lazily because a batch may
// mix machines). Duplicate specs within a batch may race to simulate; both
// produce identical bytes, so the last Put is indistinguishable from the
// first.
func EvalSpecs(specs []spec.Spec, c *cache.Cache) []Evaluation {
	r := NewRunner(0)
	costs := make([]map[string]*machine.CostCache, r.Workers())
	out, _ := SweepWorkerWith(r, len(specs), func(k, i int) (Evaluation, error) {
		s := specs[i]
		body, hit, err := EvalSpec(s, EvalOptions{Cache: c, Costs: workerCosts(costs, k, s)})
		if err != nil {
			return Evaluation{Err: fmt.Errorf("spec %s: %w", s, err)}, nil
		}
		return Evaluation{Body: body, Hit: hit}, nil
	})
	return out
}

// workerCosts resolves worker k's cost cache for the spec's machine,
// creating it on first encounter. The maps are indexed by worker, so no two
// goroutines ever touch the same map — worker-keyed state per RunWorker.
func workerCosts(costs []map[string]*machine.CostCache, k int, s spec.Spec) *machine.CostCache {
	if k < 0 || k >= len(costs) {
		return nil
	}
	name := s.Normalize().Machine
	if cc, ok := costs[k][name]; ok {
		return cc
	}
	m := machine.ByName(name)
	if m == nil {
		return nil // Validate will report it
	}
	if costs[k] == nil {
		costs[k] = make(map[string]*machine.CostCache)
	}
	cc := machine.NewCostCache(m)
	costs[k][name] = cc
	return cc
}

// engineShards maps a spec shard count onto core.Config.Shards: positive
// counts select the windowed protocol verbatim, and 0 becomes an explicit -1
// (serial engine) so the evaluating process's UNICONN_SHARDS environment can
// never change a content-addressed result.
func engineShards(n int) int {
	if n > 0 {
		return n
	}
	return -1
}

// evalCold simulates the (normalized, validated) spec and assembles the
// Result. The trace log is private to the cell per the runner's
// observability ownership rule.
func evalCold(n spec.Spec, hash string, costs *machine.CostCache) (Result, error) {
	m, err := n.Model()
	if err != nil {
		return Result{}, err
	}
	backend, err := n.BackendID()
	if err != nil {
		return Result{}, err
	}
	api, err := n.APIKind()
	if err != nil {
		return Result{}, err
	}
	log := trace.New()
	res := Result{Spec: n, Hash: hash}
	switch n.Workload {
	case spec.WorkloadNetLatency, spec.WorkloadNetBandwidth:
		cfg := NetConfig{
			Model: m, Backend: backend, API: api,
			Native: n.Native, Inter: n.Inter, Bytes: n.Bytes,
			Iters: n.Iters, Warmup: n.Warmup, Window: n.Window,
			Shards: engineShards(n.Shards), Trace: log, Costs: costs,
		}
		cfg.Faults, err = specPlan(n, cfg)
		if err != nil {
			return Result{}, err
		}
		if n.Workload == spec.WorkloadNetLatency {
			lat, rep, err := LatencyRun(cfg)
			if err != nil {
				return Result{}, err
			}
			res.Value, res.Unit = float64(lat), "ns"
			res.EndNs = int64(rep.End)
			res.Topology = rep.Topology.Describe()
		} else {
			bw, rep, err := BandwidthRun(cfg)
			if err != nil {
				return Result{}, err
			}
			res.Value, res.Unit = bw, "B/s"
			res.EndNs = int64(rep.End)
			res.Topology = rep.Topology.Describe()
		}
	case spec.WorkloadAllreduce:
		alg, err := n.AllreduceAlg()
		if err != nil {
			return Result{}, err
		}
		cfg := ScaleConfig{
			Model: m, Ranks: n.Ranks, Bytes: n.Bytes, Alg: alg,
			Iters: n.Iters, Warmup: n.Warmup, Shards: engineShards(n.Shards),
			Trace: log, Costs: costs,
		}
		per, rep, err := ScaleAllreduce(cfg)
		if err != nil {
			return Result{}, err
		}
		res.Value, res.Unit = float64(per), "ns"
		res.EndNs = int64(rep.End)
		res.Topology = rep.Topology.Describe()
	default:
		return Result{}, fmt.Errorf("bench: unknown workload %q", n.Workload)
	}
	spans := log.Sorted()
	cp := trace.CriticalPath(spans)
	res.Critical = CritSummary{
		Spans:     len(cp.Chain),
		LenNs:     int64(cp.Len),
		EndNs:     int64(cp.End),
		ComputeNs: int64(cp.Compute),
		IntraNs:   int64(cp.Intra),
		InterNs:   int64(cp.Inter),
		BlockedNs: int64(cp.Blocked),
	}
	res.Comm = commSummary(spans)
	return res, nil
}

// commSummary builds the traffic view, dropping the dense matrices above
// MaxCommRanks.
func commSummary(spans []trace.Span) *CommSummary {
	cm := trace.BuildCommMatrix(spans)
	if cm.N == 0 {
		return nil
	}
	cs := &CommSummary{Ranks: cm.N}
	for src := range cm.Bytes {
		for dst := range cm.Bytes[src] {
			cs.TotalBytes += cm.Bytes[src][dst]
			cs.Transfers += cm.Count[src][dst]
		}
	}
	if cm.N <= MaxCommRanks {
		cs.Bytes, cs.Count = cm.Bytes, cm.Count
	}
	return cs
}

// specPlan builds the spec's fault plan for a net workload, mirroring the
// chaos CLI exactly: degrade ramps the benchmarked path; generate draws the
// seed-deterministic randomized plan over the run's two-node fabric view.
func specPlan(n spec.Spec, cfg NetConfig) (*faults.Plan, error) {
	switch n.FaultMode {
	case spec.FaultNone:
		return nil, nil
	case spec.FaultDegrade:
		return faults.Degrade(cfg.FaultedPath(), n.Severity), nil
	case spec.FaultGenerate:
		fc := cfg.model().FabricConfig(2)
		return faults.Generate(n.Seed, n.Severity, fc, sim.Second), nil
	default:
		return nil, fmt.Errorf("bench: unknown fault mode %q", n.FaultMode)
	}
}
