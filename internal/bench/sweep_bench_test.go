package bench

// Wall-clock benchmarks for the parallel sweep runner. Each benchmark runs
// a realistic (but small) grid of independent simulations through Sweep so
// `go test -bench=Sweep` measures end-to-end sweep throughput at the
// current UNICONN_WORKERS / GOMAXPROCS setting. CI runs these with
// -benchtime=1x as a smoke test; locally, compare UNICONN_WORKERS=1 vs the
// default to see the parallel speedup.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
)

// BenchmarkSweepLatencyGrid sweeps a message-size × backend latency grid,
// the shape of the Fig 2/3 experiments.
func BenchmarkSweepLatencyGrid(b *testing.B) {
	sizes := Sizes(256, 8<<10)
	backends := []core.BackendID{core.MPIBackend, core.GpucclBackend}
	type cell struct {
		backend core.BackendID
		bytes   int64
	}
	cells := make([]cell, 0, len(sizes)*len(backends))
	for _, bk := range backends {
		for _, sz := range sizes {
			cells = append(cells, cell{bk, sz})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := Sweep(len(cells), func(j int) (interface{}, error) {
			cfg := NetConfig{
				Model: machine.Perlmutter(), Backend: cells[j].backend,
				API: machine.APIHost, Native: true, Inter: true,
				Bytes: cells[j].bytes, Iters: 10, Warmup: 2,
			}
			lat, err := Latency(cfg)
			return lat, err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepChaos ramps fault severity over the chaos sweep, the shape
// of cmd/uniconn-chaos.
func BenchmarkSweepChaos(b *testing.B) {
	cfg := NetConfig{
		Model: machine.Perlmutter(), Backend: core.MPIBackend,
		API: machine.APIHost, Native: true, Inter: true,
		Bytes: 8 << 10, Iters: 10, Warmup: 2, Window: 4,
	}
	severities := []float64{0, 0.25, 0.5, 0.75, 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ChaosSweep(cfg, severities, nil); err != nil {
			b.Fatal(err)
		}
	}
}
