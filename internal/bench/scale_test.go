package bench

import (
	"bufio"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/gpu"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// TestScaleAllreduceVerifies runs a 32-rank cell with Compute on for every
// algorithm x topology combination: the in-run verification panics on any
// wrong element, so a pass certifies the hierarchical data path (and the
// topology plumbing) end to end against the analytic reduction.
func TestScaleAllreduceVerifies(t *testing.T) {
	topos := map[string]fabric.TopologyConfig{
		"flat":      {},
		"fattree":   {Kind: fabric.TopoFatTree},
		"dragonfly": {Kind: fabric.TopoDragonfly},
	}
	algs := []mpi.AllreduceAlg{mpi.AlgAuto, mpi.AlgRecursiveDoubling, mpi.AlgRing, mpi.AlgHierarchical}
	for name, tc := range topos {
		for _, alg := range algs {
			d, _, err := ScaleAllreduce(ScaleConfig{
				Model: machine.Perlmutter(), Topology: tc, Ranks: 32,
				Bytes: 64 << 10, Alg: alg, Iters: 2, Warmup: 1,
				Shards: 1, Compute: true,
			})
			if err != nil {
				t.Fatalf("%s/%v: %v", name, alg, err)
			}
			if d <= 0 {
				t.Fatalf("%s/%v: non-positive per-iteration time %v", name, alg, d)
			}
		}
	}
}

// TestHierarchicalBeatsRingOnFatTree pins the point of the hierarchical
// algorithm: at scale, concentrating inter-node traffic beats pushing every
// ring step across the network.
func TestHierarchicalBeatsRingOnFatTree(t *testing.T) {
	run := func(alg mpi.AllreduceAlg) sim.Duration {
		d, _, err := ScaleAllreduce(ScaleConfig{
			Model:    machine.Perlmutter(),
			Topology: fabric.TopologyConfig{Kind: fabric.TopoFatTree},
			Ranks:    256, Bytes: 64 << 10, Alg: alg,
			Iters: 2, Warmup: 1, Shards: 1,
		})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		return d
	}
	hier, ring := run(mpi.AlgHierarchical), run(mpi.AlgRing)
	if hier >= ring {
		t.Fatalf("hierarchical %v not faster than ring %v at 256 ranks", hier, ring)
	}
}

// runScaleCellShards is the BENCH_scale smoke cell: a 1024-rank hierarchical
// allreduce on an auto-sized fat-tree, returning the finish time and every
// rank's result vector for byte comparison across shard counts.
func runScaleCellShards(t *testing.T, shards int) (sim.Time, [][]float64) {
	t.Helper()
	const ranks, elems = 1024, 8 << 10
	out := make([][]float64, ranks)
	rep, err := core.Launch(core.Config{
		Model: machine.Perlmutter(), NGPUs: ranks,
		Backend:  core.MPIBackend,
		Shards:   shards,
		Topology: fabric.TopologyConfig{Kind: fabric.TopoFatTree},
	}, func(env *core.Env) {
		comm := env.MPIComm()
		p := env.Proc()
		send := gpu.AllocBuffer[float64](env.Device(), elems)
		recv := gpu.AllocBuffer[float64](env.Device(), elems)
		for i := range send.Data() {
			send.Data()[i] = float64(env.WorldRank()%23 + i%17)
		}
		comm.AllreduceAlg(p, send.Whole(), recv.Whole(), gpu.ReduceSum, mpi.AlgHierarchical)
		// Each rank writes only its own slot: race-free across shards.
		out[env.WorldRank()] = append([]float64(nil), recv.Data()...)
	})
	if err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	return rep.End, out
}

// TestScaleHierarchicalShardsDeterministic is the CI bench-scale gate: the
// 1024-rank hierarchical allreduce on a fat-tree must produce bit-identical
// results and finish times at shards=1 and shards=4.
func TestScaleHierarchicalShardsDeterministic(t *testing.T) {
	end1, out1 := runScaleCellShards(t, 1)
	end4, out4 := runScaleCellShards(t, 4)
	if end1 != end4 {
		t.Fatalf("finish time diverged: shards=1 %v, shards=4 %v", end1, end4)
	}
	for r := range out1 {
		for i := range out1[r] {
			if out1[r][i] != out4[r][i] {
				t.Fatalf("rank %d elem %d diverged: shards=1 %v, shards=4 %v",
					r, i, out1[r][i], out4[r][i])
			}
		}
	}
}

// vmHWMBytes reads the process's peak resident set from /proc/self/status.
func vmHWMBytes(t *testing.T) int64 {
	t.Helper()
	f, err := os.Open("/proc/self/status")
	if err != nil {
		t.Skipf("no /proc/self/status: %v", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) >= 2 && fields[0] == "VmHWM:" {
			kb, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				t.Fatalf("parsing VmHWM: %v", err)
			}
			return kb << 10
		}
	}
	t.Skip("VmHWM not present in /proc/self/status")
	return 0
}

// TestScaleMemoryBudget runs the full 4096-rank modeled (Compute off)
// hierarchical allreduce on a fat-tree and fails if the process's peak RSS
// exceeds a generous fixed budget. This is the O(ranks + switches) state
// audit in executable form: an accidental O(ranks^2) structure (per-pair
// routing tables, eager all-pairs endpoint state) blows through 4 GiB at
// this scale immediately.
func TestScaleMemoryBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation multiplies RSS; run without -race")
	}
	if runtime.GOOS != "linux" {
		t.Skip("VmHWM is linux-only")
	}
	if testing.Short() {
		t.Skip("4096-rank cell skipped in -short mode")
	}
	const budget = 4 << 30
	d, _, err := ScaleAllreduce(ScaleConfig{
		Model:    machine.Perlmutter(),
		Topology: fabric.TopologyConfig{Kind: fabric.TopoFatTree},
		Ranks:    4096, Bytes: 64 << 10, Alg: mpi.AlgHierarchical,
		Iters: 1, Warmup: 0, Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatalf("non-positive per-iteration time %v", d)
	}
	if hwm := vmHWMBytes(t); hwm > budget {
		t.Fatalf("peak RSS %s exceeds the %s budget for the 4096-rank modeled cell",
			HumanBytes(hwm), HumanBytes(budget))
	}
}
