package bench

// Acceptance suite for the fault-injection layer (internal/faults): the
// chaos sweeps must be deterministic, a zero-severity plan must be
// indistinguishable from no plan, and rising severity must never make the
// faulted path faster — for every backend.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/sim"
)

// chaosBackends enumerates every backend on Perlmutter (the only seed
// machine with GPUSHMEM, so all three are runnable).
var chaosBackends = []struct {
	name    string
	backend core.BackendID
}{
	{"mpi", core.MPIBackend},
	{"gpuccl", core.GpucclBackend},
	{"gpushmem", core.GpushmemBackend},
}

func chaosConfig(backend core.BackendID) NetConfig {
	return NetConfig{
		Model: machine.Perlmutter(), Backend: backend,
		API: machine.APIHost, Native: true, Inter: true,
		Bytes: 8 << 10, Iters: 20, Warmup: 2, Window: 8,
	}
}

func TestChaosIdenticalSeedIsBitIdentical(t *testing.T) {
	for _, b := range chaosBackends {
		t.Run(b.name, func(t *testing.T) {
			cfg := chaosConfig(b.backend)
			run := func() sim.Duration {
				c := cfg
				c.Faults = faults.Generate(42, 0.5, cfg.model().FabricConfig(2), sim.Second)
				lat, err := Latency(c)
				if err != nil {
					t.Fatalf("Latency: %v", err)
				}
				return lat
			}
			if a, bb := run(), run(); a != bb {
				t.Fatalf("same seed+plan diverged: %v vs %v", a, bb)
			}
		})
	}
}

func TestChaosZeroSeverityMatchesBaseline(t *testing.T) {
	for _, b := range chaosBackends {
		t.Run(b.name, func(t *testing.T) {
			cfg := chaosConfig(b.backend)
			base, err := Latency(cfg)
			if err != nil {
				t.Fatalf("baseline: %v", err)
			}
			cfg.Faults = faults.Generate(42, 0, cfg.model().FabricConfig(2), sim.Second)
			faulted, err := Latency(cfg)
			if err != nil {
				t.Fatalf("zero-severity: %v", err)
			}
			if faulted != base {
				t.Fatalf("zero-severity plan changed latency: %v vs baseline %v", faulted, base)
			}
		})
	}
}

func TestChaosSeverityRampIsMonotone(t *testing.T) {
	severities := []float64{0, 0.25, 0.5, 0.75, 1}
	for _, b := range chaosBackends {
		t.Run(b.name, func(t *testing.T) {
			cfg := chaosConfig(b.backend)
			points, err := ChaosSweep(cfg, severities, nil)
			if err != nil {
				t.Fatalf("ChaosSweep: %v", err)
			}
			if len(points) != len(severities) {
				t.Fatalf("got %d points, want %d", len(points), len(severities))
			}
			for i := 1; i < len(points); i++ {
				if points[i].Latency < points[i-1].Latency {
					t.Fatalf("latency decreased with severity: %v at %g, then %v at %g",
						points[i-1].Latency, points[i-1].Severity,
						points[i].Latency, points[i].Severity)
				}
				if points[i].Bandwidth > points[i-1].Bandwidth {
					t.Fatalf("bandwidth rose with severity: %.3g at %g, then %.3g at %g",
						points[i-1].Bandwidth, points[i-1].Severity,
						points[i].Bandwidth, points[i].Severity)
				}
			}
			if points[len(points)-1].Latency <= points[0].Latency {
				t.Fatalf("full-severity latency %v not above baseline %v",
					points[len(points)-1].Latency, points[0].Latency)
			}
			if points[0].Transfers == 0 || points[0].TransferBytes == 0 {
				t.Fatalf("trace recorded no transfers: %+v", points[0])
			}
		})
	}
}

func TestChaosWatchdogConvertsStallToTimeout(t *testing.T) {
	// A plan whose NIC never recovers must surface as a structured
	// TimeoutError through the watchdog rather than hanging the run.
	cfg := chaosConfig(core.MPIBackend)
	cfg.Faults = &faults.Plan{
		Stalls:   []faults.PortStall{{Node: faults.Any, NIC: faults.Any, Window: faults.Always}},
		Watchdog: sim.Second,
	}
	_, err := Latency(cfg)
	terr, ok := err.(*sim.TimeoutError)
	if !ok {
		t.Fatalf("err = %v (%T), want *sim.TimeoutError", err, err)
	}
	if len(terr.Waiting) == 0 {
		t.Fatalf("timeout carries no parked-proc diagnostics: %+v", terr)
	}
}
