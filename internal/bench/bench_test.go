package bench

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sim"
)

func TestTrimmedMean(t *testing.T) {
	xs := []sim.Duration{100, 1, 50, 60, 1000}
	if got := TrimmedMean(xs); got != (100+50+60)/3 {
		t.Fatalf("trimmed mean = %v", got)
	}
	if got := TrimmedMean([]sim.Duration{5, 7}); got != 6 {
		t.Fatalf("two-sample mean = %v", got)
	}
	if TrimmedMean(nil) != 0 {
		t.Fatal("empty mean not zero")
	}
}

func TestTrimmedMeanRoundsHalfUp(t *testing.T) {
	// Integer division used to truncate toward zero, biasing every mean
	// low. The mean must round to nearest, half away from zero.
	cases := []struct {
		xs   []sim.Duration
		want sim.Duration
	}{
		{[]sim.Duration{1, 2}, 2},        // 1.5 rounds up
		{[]sim.Duration{1, 1, 2}, 1},     // 1.33 rounds down
		{[]sim.Duration{1, 2, 2}, 2},     // 1.67 rounds up
		{[]sim.Duration{-1, -2}, -2},     // -1.5 rounds away from zero
		{[]sim.Duration{-1, -1, -2}, -1}, // -1.33 rounds toward zero
	}
	for _, c := range cases {
		if got := TrimmedMean(c.xs); got != c.want {
			t.Errorf("TrimmedMean(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestSizesRejectsNonPositiveMin(t *testing.T) {
	// Sizes(0, max) used to loop forever (0*2 == 0) and a negative min
	// spun through negative sizes; both must panic with a clear message.
	for _, min := range []int64{0, -8} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("Sizes(%d, 64) did not panic", min)
					return
				}
				if !strings.Contains(r.(string), "minBytes") {
					t.Errorf("Sizes(%d, 64) panic message %q lacks diagnosis", min, r)
				}
			}()
			Sizes(min, 64)
		}()
	}
}

func TestSizesStopsAtOverflow(t *testing.T) {
	s := Sizes(1<<62, math.MaxInt64)
	if len(s) != 1 || s[0] != 1<<62 {
		t.Fatalf("overflowing sweep = %v", s)
	}
}

func TestPercentDiff(t *testing.T) {
	if got := PercentDiff(102, 100); math.Abs(got-2) > 1e-12 {
		t.Fatalf("diff = %v", got)
	}
	if got := PercentDiff(5, 0); !math.IsInf(got, 1) {
		t.Fatalf("PercentDiff(5, 0) = %v, want +Inf", got)
	}
	if got := PercentDiff(-5, 0); !math.IsInf(got, -1) {
		t.Fatalf("PercentDiff(-5, 0) = %v, want -Inf", got)
	}
	if got := PercentDiff(0, 0); !math.IsNaN(got) {
		t.Fatalf("PercentDiff(0, 0) = %v, want NaN", got)
	}
}

func TestPct(t *testing.T) {
	if got := pct(2.5); got != "2.50%" {
		t.Fatalf("pct(2.5) = %q", got)
	}
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if got := pct(v); got != "n/a" {
			t.Fatalf("pct(%v) = %q, want n/a", v, got)
		}
	}
}

func TestHumanBytes(t *testing.T) {
	cases := []struct {
		b    int64
		want string
	}{
		{0, "0B"},
		{512, "512B"},
		{1024, "1KiB"},
		{1536, "1.5KiB"},
		{2048, "2KiB"},
		{1 << 20, "1MiB"},
		{3 << 19, "1.5MiB"},
		{1 << 30, "1GiB"},
		{5 << 28, "1.2GiB"},
		{-1536, "-1.5KiB"},
		{-512, "-512B"},
		{math.MinInt64, "-8589934592GiB"},
		// Rounded values keep the decimal (distinguishing them from exact
		// integer multiples), and rounding that reaches the radix carries
		// into the next unit instead of printing "1024.0KiB".
		{2047, "2.0KiB"},
		{1<<20 - 1, "1.0MiB"},
		{1<<30 - 1, "1.0GiB"},
		{1<<20 - 51, "1.0MiB"},    // 1023.95015KiB rounds to the radix -> carry
		{1<<20 - 52, "1023.9KiB"}, // 1023.94921KiB rounds below it -> stays

		{-(1<<20 - 1), "-1.0MiB"},
	}
	for _, c := range cases {
		if got := HumanBytes(c.b); got != c.want {
			t.Errorf("HumanBytes(%d) = %q, want %q", c.b, got, c.want)
		}
	}
}

func TestSizes(t *testing.T) {
	s := Sizes(8, 64)
	want := []int64{8, 16, 32, 64}
	if len(s) != len(want) {
		t.Fatalf("sizes = %v", s)
	}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("sizes = %v", s)
		}
	}
}

// allNetConfigs enumerates every runnable benchmark configuration on a
// machine.
func allNetConfigs(m *machine.Model, bytes int64) []NetConfig {
	var out []NetConfig
	for _, lib := range libsOf(m, true) {
		for _, native := range []bool{true, false} {
			for _, inter := range []bool{false, true} {
				out = append(out, NetConfig{
					Model: m, Backend: lib.backend, API: lib.api,
					Native: native, Inter: inter, Bytes: bytes,
					Iters: 20, Warmup: 2, Window: 8,
				})
			}
		}
	}
	return out
}

func TestLatencyAllConfigsPositive(t *testing.T) {
	for _, m := range machine.All() {
		for _, cfg := range allNetConfigs(m, 64) {
			l, err := Latency(cfg)
			if err != nil {
				t.Fatalf("%s %v/%v native=%v inter=%v: %v",
					m.Name, cfg.Backend, cfg.API, cfg.Native, cfg.Inter, err)
			}
			if l <= 0 || l > sim.Second {
				t.Fatalf("%s %v/%v: latency %v out of range", m.Name, cfg.Backend, cfg.API, l)
			}
		}
	}
}

func TestBandwidthAllConfigsPositive(t *testing.T) {
	for _, m := range machine.All() {
		for _, cfg := range allNetConfigs(m, 1<<20) {
			bw, err := Bandwidth(cfg)
			if err != nil {
				t.Fatalf("%s %v/%v: %v", m.Name, cfg.Backend, cfg.API, err)
			}
			wire := m.IntraWireBW
			if cfg.Inter {
				wire = m.NICWireBW
			}
			if bw <= 0 || bw > wire {
				t.Fatalf("%s %v/%v inter=%v: bandwidth %.2f GB/s vs wire %.2f",
					m.Name, cfg.Backend, cfg.API, cfg.Inter, bw/1e9, wire/1e9)
			}
		}
	}
}

func TestPaperShapeSmallMessageLatencyOrdering(t *testing.T) {
	// §II-C / Fig. 2: at small sizes, MPI beats GPUCCL (kernel launch) on
	// the host side, and GPUSHMEM device-initiated beats both.
	m := machine.Perlmutter()
	lat := func(b core.BackendID, api machine.API) sim.Duration {
		l, err := Latency(NetConfig{Model: m, Backend: b, API: api, Native: true,
			Bytes: 64, Iters: 50, Warmup: 5})
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	mpiL := lat(core.MPIBackend, machine.APIHost)
	cclL := lat(core.GpucclBackend, machine.APIHost)
	devL := lat(core.GpushmemBackend, machine.APIDevice)
	if !(devL < mpiL && mpiL < cclL) {
		t.Fatalf("expected device < MPI < GPUCCL, got dev=%v mpi=%v ccl=%v", devL, mpiL, cclL)
	}
}

func TestPaperShapeLargeMessageBandwidthOrdering(t *testing.T) {
	// Fig. 2: at large sizes intra-node, GPUCCL achieves the highest
	// bandwidth.
	m := machine.Perlmutter()
	bw := func(b core.BackendID, api machine.API) float64 {
		v, err := Bandwidth(NetConfig{Model: m, Backend: b, API: api, Native: true,
			Bytes: 4 << 20, Iters: 5, Warmup: 1, Window: 16})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	mpiB := bw(core.MPIBackend, machine.APIHost)
	cclB := bw(core.GpucclBackend, machine.APIHost)
	if cclB <= mpiB {
		t.Fatalf("expected GPUCCL bandwidth above MPI at 4MiB: ccl=%.1f mpi=%.1f GB/s",
			cclB/1e9, mpiB/1e9)
	}
}

func TestUniconnNetOverheadBounds(t *testing.T) {
	// §VI-B: host-API overhead bounded (~7% worst intra, small messages);
	// device-API overhead near zero.
	m := machine.Perlmutter()
	for _, lib := range libsOf(m, true) {
		for _, bytes := range []int64{64, 1 << 20} {
			cfg := NetConfig{Model: m, Backend: lib.backend, API: lib.api,
				Bytes: bytes, Iters: 50, Warmup: 5}
			cfg.Native = true
			nat, err := Latency(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Native = false
			uc, err := Latency(cfg)
			if err != nil {
				t.Fatal(err)
			}
			over := PercentDiff(uc, nat)
			limit := 10.0
			if lib.api == machine.APIDevice {
				limit = 0.5
			}
			if over > limit || over < -limit {
				t.Errorf("%s %dB: UNICONN latency overhead %.2f%% (limit %.1f%%)",
					lib.label, bytes, over, limit)
			}
		}
	}
}

func TestEagerKneeVisible(t *testing.T) {
	// The MPI latency curve must show the eager→rendezvous protocol switch
	// at 8 KiB (ablation A3).
	m := machine.Perlmutter()
	lat := func(bytes int64) sim.Duration {
		l, err := Latency(NetConfig{Model: m, Backend: core.MPIBackend, API: machine.APIHost,
			Native: true, Bytes: bytes, Iters: 50, Warmup: 5})
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	below := lat(8 << 10)
	above := lat(16 << 10)
	jump := float64(above-below) / float64(below)
	if jump < 0.3 {
		t.Fatalf("no visible rendezvous knee: 8KiB=%v 16KiB=%v (jump %.2f)", below, above, jump)
	}
}

func TestTable1Renders(t *testing.T) {
	s := Table1()
	for _, want := range []string{"Perlmutter", "LUMI", "MareNostrum5", "A100", "MI250X", "H100"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Table1 missing %q:\n%s", want, s)
		}
	}
}

func TestTable2CountsThisRepo(t *testing.T) {
	s, err := Table2("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"MPI", "GPUCCL", "GPUSHMEM_Host", "GPUSHMEM_Device", "Uniconn"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Table2 missing %q:\n%s", want, s)
		}
	}
}

func TestFigureRender(t *testing.T) {
	f := Figure{ID: "FigX", Title: "demo", XLabel: "bytes", YLabel: "us",
		Series: []Series{{Label: "a", X: []float64{1, 2}, Y: []float64{3, 4}}},
		Notes:  []string{"hello"}}
	out := f.Render()
	for _, want := range []string{"FigX", "demo", "bytes", "hello", "3", "4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
