package bench

// The profiling harness behind cmd/uniconn-prof: one Collector per sweep
// cell, frozen into CellProfiles, reassembled in cell-index order into a
// RunProfile whose rendered report, metrics JSON, and Chrome trace are
// byte-identical at any sweep worker count.
//
// Ownership rule (see also runner.go): a metrics.Registry and a trace.Log
// are single-engine state. Every cell must allocate its own Collector inside
// its cell function — never share one across cells, and never write to a
// collector from outside its cell. The runner only guarantees determinism
// for results keyed by cell index; per-cell collectors merged in index order
// inherit that guarantee.

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/solver/cg"
	"repro/internal/solver/jacobi"
	"repro/internal/trace"
)

// Collector owns one cell's observability state: a private metrics registry
// and span log to hand to that cell's run configuration.
type Collector struct {
	Metrics *metrics.Registry
	Trace   *trace.Log
}

// NewCollector allocates a fresh collector for one cell.
func NewCollector() *Collector {
	return &Collector{Metrics: metrics.New(), Trace: trace.New()}
}

// Finish freezes the collector into an immutable cell profile.
func (c *Collector) Finish(label string, end sim.Time) CellProfile {
	return CellProfile{
		Label:   label,
		End:     end,
		Metrics: c.Metrics.Snapshot(),
		Spans:   c.Trace.Sorted(),
	}
}

// CellProfile is one cell's frozen observability record.
type CellProfile struct {
	Label string
	// End is the cell's final virtual time — the attribution horizon.
	End sim.Time
	// Notes carry the cell's headline measurements (latency, bandwidth,
	// per-iteration time), rendered above the analysis tables.
	Notes   []string
	Metrics metrics.Snapshot
	Spans   []trace.Span
}

// RunProfile is a full profiling run: an ordered set of cell profiles.
type RunProfile struct {
	Title string
	Cells []CellProfile
}

// Merged returns the cells' metrics merged in index order (counters and
// histograms sum, gauges keep their high-water mark).
func (rp *RunProfile) Merged() metrics.Snapshot {
	snaps := make([]metrics.Snapshot, len(rp.Cells))
	for i, c := range rp.Cells {
		snaps[i] = c.Metrics
	}
	return metrics.Merge(snaps...)
}

// Render formats the full text report: per cell the headline notes, the
// critical path, the per-rank time attribution, and the communication
// matrix; then the merged metrics. Everything derives from virtual time and
// name-sorted instruments, so the report is byte-stable.
func (rp *RunProfile) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "==== uniconn-prof: %s ====\n", rp.Title)
	for _, c := range rp.Cells {
		fmt.Fprintf(&b, "\n== cell %s (end %s) ==\n", c.Label, sim.Duration(c.End))
		for _, n := range c.Notes {
			fmt.Fprintf(&b, "note: %s\n", n)
		}
		if len(c.Spans) == 0 {
			b.WriteString("(no spans recorded)\n")
			continue
		}
		b.WriteString(trace.CriticalPath(c.Spans).Render())
		b.WriteString("per-rank attribution:\n")
		b.WriteString(trace.RenderBreakdown(trace.Attribute(c.Spans, c.End)))
		if m := trace.BuildCommMatrix(c.Spans); m.N > 0 {
			b.WriteString("comm matrix (bytes(msgs), src row x dst col):\n")
			b.WriteString(m.Render())
		}
	}
	merged := rp.Merged()
	fmt.Fprintf(&b, "\n== merged metrics (%d cells) ==\n", len(rp.Cells))
	if merged.Empty() {
		b.WriteString("(metrics disabled or empty)\n")
	} else {
		b.WriteString(merged.Render())
	}
	return b.String()
}

// WriteReport writes the text report.
func (rp *RunProfile) WriteReport(w io.Writer) error {
	_, err := io.WriteString(w, rp.Render())
	return err
}

// WriteMetricsJSON writes the merged metrics snapshot as deterministic JSON.
func (rp *RunProfile) WriteMetricsJSON(w io.Writer) error {
	return rp.Merged().WriteJSON(w)
}

// WriteChromeTrace writes every cell's spans as one Chrome trace-event file,
// one process per cell in index order.
func (rp *RunProfile) WriteChromeTrace(w io.Writer) error {
	cells := make([]trace.ChromeCell, len(rp.Cells))
	for i, c := range rp.Cells {
		cells[i] = trace.ChromeCell{Name: c.Label, Spans: c.Spans}
	}
	return trace.WriteChromeCells(w, cells)
}

// ProfileNet profiles the latency and bandwidth microbenchmarks of one
// configuration over a size sweep: two cells per size (latency, bandwidth),
// each with its own collector, fanned out over the sweep runner.
func ProfileNet(base NetConfig, sizes []int64) (*RunProfile, error) {
	if len(sizes) == 0 {
		return nil, fmt.Errorf("bench: ProfileNet needs at least one size")
	}
	profs, err := Sweep(2*len(sizes), func(i int) (CellProfile, error) {
		size := sizes[i/2]
		col := NewCollector()
		cfg := base
		cfg.Bytes = size
		cfg.Metrics, cfg.Trace = col.Metrics, col.Trace
		if i%2 == 0 {
			lat, rep, err := LatencyRun(cfg)
			if err != nil {
				return CellProfile{}, err
			}
			cp := col.Finish(fmt.Sprintf("latency/%dB", size), rep.End)
			cp.Notes = append(cp.Notes, fmt.Sprintf("one-way latency %s", lat))
			return cp, nil
		}
		bw, rep, err := BandwidthRun(cfg)
		if err != nil {
			return CellProfile{}, err
		}
		cp := col.Finish(fmt.Sprintf("bandwidth/%dB", size), rep.End)
		cp.Notes = append(cp.Notes, fmt.Sprintf("bandwidth %.4f GB/s", bw/1e9))
		return cp, nil
	})
	if err != nil {
		return nil, err
	}
	where := "intra-node"
	if base.Inter {
		where = "inter-node"
	}
	impl := "uniconn"
	if base.Native {
		impl = "native"
	}
	return &RunProfile{
		Title: fmt.Sprintf("net %s %s %s %s (%d sizes)",
			base.Model.Name, base.Backend, impl, where, len(sizes)),
		Cells: profs,
	}, nil
}

// ProfileJacobi profiles one Jacobi run as a single cell.
func ProfileJacobi(cfg jacobi.Config) (*RunProfile, error) {
	col := NewCollector()
	cfg.Metrics, cfg.Trace = col.Metrics, col.Trace
	res, err := jacobi.Run(cfg)
	if err != nil {
		return nil, err
	}
	cp := col.Finish(fmt.Sprintf("jacobi/%dgpu", cfg.NGPUs), res.End)
	cp.Notes = append(cp.Notes,
		fmt.Sprintf("per-iteration %s over %d iterations (total %s)",
			res.PerIter, cfg.Iters, res.Total))
	return &RunProfile{
		Title: fmt.Sprintf("jacobi %s %s %dx%d on %d GPUs",
			cfg.Model.Name, cfg.Variant, cfg.NX, cfg.NY, cfg.NGPUs),
		Cells: []CellProfile{cp},
	}, nil
}

// ProfileCG profiles one CG run as a single cell.
func ProfileCG(cfg cg.Config) (*RunProfile, error) {
	col := NewCollector()
	cfg.Metrics, cfg.Trace = col.Metrics, col.Trace
	res, err := cg.Run(cfg)
	if err != nil {
		return nil, err
	}
	cp := col.Finish(fmt.Sprintf("cg/%dgpu", cfg.NGPUs), res.End)
	cp.Notes = append(cp.Notes,
		fmt.Sprintf("per-iteration %s over %d iterations (total %s)",
			res.PerIter, cfg.Iters, res.Total))
	return &RunProfile{
		Title: fmt.Sprintf("cg %s %s %d rows on %d GPUs",
			cfg.Model.Name, cfg.Variant, cfg.Matrix.Rows, cfg.NGPUs),
		Cells: []CellProfile{cp},
	}, nil
}

// ChaosSweepProfiled is ChaosSweep with one Collector per severity cell,
// returning the per-cell profiles alongside the points. The latency run of
// each severity is profiled (the bandwidth run reuses the plan but records
// nothing, as in ChaosSweep).
func ChaosSweepProfiled(cfg NetConfig, severities []float64, planFor func(severity float64) *faults.Plan) ([]ChaosPoint, []CellProfile, error) {
	if planFor == nil {
		path := cfg.FaultedPath()
		planFor = func(s float64) *faults.Plan { return faults.Degrade(path, s) }
	}
	type cellResult struct {
		pt   ChaosPoint
		prof CellProfile
		err  error
	}
	results, _ := Sweep(len(severities), func(i int) (cellResult, error) {
		sev := severities[i]
		col := NewCollector()
		run := cfg
		run.Faults = planFor(sev)
		run.Metrics, run.Trace = col.Metrics, col.Trace
		lat, rep, err := LatencyRun(run)
		if err != nil {
			return cellResult{err: fmt.Errorf("chaos severity %g: latency: %w", sev, err)}, nil
		}
		pt := ChaosPoint{Severity: sev, Latency: lat}
		for _, s := range run.Trace.Filter(trace.KindTransfer) {
			pt.Transfers++
			pt.TransferBytes += s.Bytes
		}
		prof := col.Finish(fmt.Sprintf("severity/%g", sev), rep.End)
		prof.Notes = append(prof.Notes, fmt.Sprintf("one-way latency %s", lat))
		run.Metrics, run.Trace = nil, nil // bandwidth run is unprofiled
		if pt.Bandwidth, err = Bandwidth(run); err != nil {
			return cellResult{err: fmt.Errorf("chaos severity %g: bandwidth: %w", sev, err)}, nil
		}
		return cellResult{pt: pt, prof: prof}, nil
	})
	points := make([]ChaosPoint, 0, len(severities))
	profs := make([]CellProfile, 0, len(severities))
	for _, r := range results {
		if r.err != nil {
			return points, profs, r.err
		}
		points = append(points, r.pt)
		profs = append(profs, r.prof)
	}
	return points, profs, nil
}
