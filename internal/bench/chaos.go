package bench

// Chaos benchmarking: severity sweeps of the network microbenchmarks under
// a fault plan, reporting how ping-pong latency and windowed bandwidth
// degrade per backend as the injected fault severity grows. This is the
// measurement core of cmd/uniconn-chaos.

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ChaosPoint is one measurement of a severity sweep.
type ChaosPoint struct {
	Severity float64
	// Latency is the one-way ping-pong latency under the plan.
	Latency sim.Duration
	// Bandwidth is the windowed one-way bandwidth (bytes/s) under the plan.
	Bandwidth float64
	// Transfers and TransferBytes summarize the latency run's fabric
	// activity, from the trace log.
	Transfers     int
	TransferBytes int64
}

// LatencyFactor reports degradation relative to a baseline latency.
func (p ChaosPoint) LatencyFactor(baseline sim.Duration) float64 {
	if baseline <= 0 {
		return 1
	}
	return float64(p.Latency) / float64(baseline)
}

// BandwidthFactor reports the retained fraction of a baseline bandwidth.
func (p ChaosPoint) BandwidthFactor(baseline float64) float64 {
	if baseline <= 0 {
		return 1
	}
	return p.Bandwidth / baseline
}

// FaultedPath reports the path kind a chaos sweep of this configuration
// stresses: the inter-node route when Inter is set, the intra-node route
// otherwise.
func (cfg NetConfig) FaultedPath() fabric.Path {
	if cfg.Inter {
		return fabric.PathInter
	}
	return fabric.PathIntra
}

// ChaosSweep measures the configuration once per severity, with the plan
// produced by planFor injected into both the latency and the bandwidth run.
// planFor(0) should return an empty plan so the first point of a [0, ...]
// sweep is the healthy baseline. A nil planFor uses faults.Degrade on the
// configuration's benchmarked path.
//
// Severities are independent cells, fanned out over the sweep runner: each
// cell builds its own plan and trace log, so planFor must return a fresh
// plan per call (both built-in plan sources do). Results are collected by
// severity index and are bit-identical to serial execution; on failure the
// points preceding the first failing severity are returned with the error,
// exactly as a serial sweep would.
func ChaosSweep(cfg NetConfig, severities []float64, planFor func(severity float64) *faults.Plan) ([]ChaosPoint, error) {
	if planFor == nil {
		path := cfg.FaultedPath()
		planFor = func(s float64) *faults.Plan { return faults.Degrade(path, s) }
	}
	type cellResult struct {
		pt  ChaosPoint
		err error
	}
	results, _ := Sweep(len(severities), func(i int) (cellResult, error) {
		sev := severities[i]
		run := cfg
		run.Faults = planFor(sev)
		run.Trace = trace.New()
		lat, err := Latency(run)
		if err != nil {
			return cellResult{err: fmt.Errorf("chaos severity %g: latency: %w", sev, err)}, nil
		}
		pt := ChaosPoint{Severity: sev, Latency: lat}
		for _, s := range run.Trace.Filter(trace.KindTransfer) {
			pt.Transfers++
			pt.TransferBytes += s.Bytes
		}
		run.Trace = nil // bandwidth run does not need spans
		if pt.Bandwidth, err = Bandwidth(run); err != nil {
			return cellResult{err: fmt.Errorf("chaos severity %g: bandwidth: %w", sev, err)}, nil
		}
		return cellResult{pt: pt}, nil
	})
	points := make([]ChaosPoint, 0, len(severities))
	for _, r := range results {
		if r.err != nil {
			return points, r.err
		}
		points = append(points, r.pt)
	}
	return points, nil
}
