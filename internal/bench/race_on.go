//go:build race

package bench

// raceEnabled reports whether the race detector instruments this build. The
// 4096-rank memory-budget cell skips under race: instrumentation multiplies
// both RSS and wall clock several-fold, which would turn a memory regression
// gate into a flake.
const raceEnabled = true
