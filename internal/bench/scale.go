package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/gpu"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Rank-scaling benchmark: one allreduce cell at a configurable rank count,
// topology, and algorithm, timed in virtual time. This is the driver behind
// BENCH_scale.json (cmd/uniconn-scale): the 64->4096 rank curves comparing
// flat vs fat-tree vs dragonfly networks and flat-ring vs hierarchical
// allreduce.

// ScaleConfig selects one rank-scaling cell.
type ScaleConfig struct {
	Model *machine.Model
	// Topology overrides the inter-node network (zero value keeps the
	// model's own, normally flat).
	Topology fabric.TopologyConfig
	// Ranks is the GPU count; nodes follow from Model.GPUsPerNode.
	Ranks int
	// Bytes is the allreduce vector size per rank (float64 elements).
	Bytes int64
	// Alg forces an allreduce algorithm; mpi.AlgAuto selects by size/layout.
	Alg mpi.AllreduceAlg
	// Iters timed iterations after Warmup untimed ones (defaults 4 and 1).
	Iters, Warmup int
	// Shards selects the engine shard count (0 = environment default).
	Shards int
	// Compute additionally initializes the vectors with known values and
	// verifies the reduction result on every rank. Off, the cell is a pure
	// timing model — the mode the 4096-rank memory-budget check runs in.
	Compute bool
	// Metrics, when non-nil, collects the run's counters.
	Metrics *metrics.Registry
	// Trace, when non-nil, records the run's spans (critical-path and
	// comm-matrix extraction; see internal/trace).
	Trace *trace.Log
	// Costs, when non-nil, is a shared per-worker cost cache (bench.ModelPool)
	// the run reuses instead of warming a private one (see core.Config.Costs).
	Costs *machine.CostCache
}

// Validate reports configuration errors.
func (cfg ScaleConfig) Validate() error {
	if cfg.Model == nil {
		return fmt.Errorf("bench: nil model")
	}
	if cfg.Ranks < 2 {
		return fmt.Errorf("bench: scale cell needs >= 2 ranks (got %d)", cfg.Ranks)
	}
	if cfg.Bytes < 8 || cfg.Bytes%8 != 0 {
		return fmt.Errorf("bench: vector size must be a positive multiple of 8 (got %d)", cfg.Bytes)
	}
	return nil
}

// ScaleAllreduce runs the cell and returns the mean per-iteration virtual
// time plus the run report.
func ScaleAllreduce(cfg ScaleConfig) (sim.Duration, core.Report, error) {
	var rep core.Report
	if err := cfg.Validate(); err != nil {
		return 0, rep, err
	}
	iters, warmup := cfg.Iters, cfg.Warmup
	if iters == 0 {
		iters = 4
	}
	if warmup == 0 {
		warmup = 1
	}
	elems := int(cfg.Bytes / 8)
	var timed sim.Duration
	rep, err := core.Launch(core.Config{
		Model: cfg.Model, NGPUs: cfg.Ranks, Backend: core.MPIBackend,
		Shards: cfg.Shards, Topology: cfg.Topology, Metrics: cfg.Metrics,
		Trace: cfg.Trace, Costs: cfg.Costs,
	}, func(env *core.Env) {
		comm := env.MPIComm()
		p := env.Proc()
		send := gpu.AllocBuffer[float64](env.Device(), elems)
		recv := gpu.AllocBuffer[float64](env.Device(), elems)
		if cfg.Compute {
			// Integer-valued floats: the sum over ranks is exact, so the
			// verification below is an equality check, not a tolerance.
			for i := range send.Data() {
				send.Data()[i] = float64(env.WorldRank() + i%17)
			}
		}
		for w := 0; w < warmup; w++ {
			comm.AllreduceAlg(p, send.Whole(), recv.Whole(), gpu.ReduceSum, cfg.Alg)
		}
		// A barrier aligns every rank in virtual time so the timed window
		// measures the collective, not warmup skew.
		comm.Barrier(p)
		start := p.Now()
		for it := 0; it < iters; it++ {
			comm.AllreduceAlg(p, send.Whole(), recv.Whole(), gpu.ReduceSum, cfg.Alg)
		}
		if env.WorldRank() == 0 {
			timed = p.Now().Sub(start)
		}
		if cfg.Compute {
			n := float64(cfg.Ranks)
			for i, got := range recv.Data() {
				want := n*(n-1)/2 + n*float64(i%17)
				if got != want {
					panic(fmt.Sprintf("bench: scale allreduce rank %d elem %d = %v, want %v",
						env.WorldRank(), i, got, want))
				}
			}
		}
	})
	if err != nil {
		return 0, rep, err
	}
	return timed / sim.Duration(iters), rep, nil
}
