package bench

// Native GPU-aware MPI latency and bandwidth benchmarks (OSU style):
// blocking ping-pong for latency; windows of non-blocking sends closed by a
// zero-byte acknowledgement for one-way bandwidth.

import (
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/mpi"
	"repro/internal/sim"
)

func latencyNativeMPI(cfg NetConfig, env *core.Env, iters, warmup int) sim.Duration {
	comm := env.MPIComm()
	p := env.Proc()
	n := int(cfg.Bytes / 8)
	buf := gpu.AllocBuffer[float64](env.Device(), n)
	me, peer := env.WorldRank(), 1-env.WorldRank()

	var start sim.Time
	for it := 0; it < warmup+iters; it++ {
		if it == warmup {
			comm.Barrier(p)
			start = p.Now()
		}
		if me == 0 {
			comm.Send(p, buf.Whole(), peer, 1)
			comm.Recv(p, buf.Whole(), peer, 2)
		} else {
			comm.Recv(p, buf.Whole(), peer, 1)
			comm.Send(p, buf.Whole(), peer, 2)
		}
	}
	return p.Now().Sub(start)
}

func bandwidthNativeMPI(cfg NetConfig, env *core.Env, iters, warmup, window int) sim.Duration {
	comm := env.MPIComm()
	p := env.Proc()
	n := int(cfg.Bytes / 8)
	bufs := make([]*gpu.Buffer[float64], window)
	for i := range bufs {
		bufs[i] = gpu.AllocBuffer[float64](env.Device(), n)
	}
	me, peer := env.WorldRank(), 1-env.WorldRank()

	var start sim.Time
	for it := 0; it < warmup+iters; it++ {
		if it == warmup {
			comm.Barrier(p)
			start = p.Now()
		}
		reqs := make([]*mpi.Request, window)
		if me == 0 {
			for w := 0; w < window; w++ {
				reqs[w] = comm.Isend(p, bufs[w].Whole(), peer, 3)
			}
			mpi.WaitAll(p, reqs...)
			comm.Recv(p, gpu.View{}, peer, 4) // window acknowledgement
		} else {
			for w := 0; w < window; w++ {
				reqs[w] = comm.Irecv(p, bufs[w].Whole(), peer, 3)
			}
			mpi.WaitAll(p, reqs...)
			comm.Send(p, gpu.View{}, peer, 4)
		}
	}
	return p.Now().Sub(start)
}
