package bench

// Native GPUCCL latency and bandwidth benchmarks: every operation is a
// stream-ordered communication kernel, so small-message latency carries the
// kernel-launch overhead (the paper's Fig. 2-4 behaviour); the bandwidth
// window is a single group, amortizing the launch.

import (
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/sim"
)

func latencyNativeCCL(cfg NetConfig, env *core.Env, iters, warmup int) sim.Duration {
	ccl := env.CCLComm()
	p := env.Proc()
	s := env.DefaultStream()
	n := int(cfg.Bytes / 8)
	buf := gpu.AllocBuffer[float64](env.Device(), n)
	me, peer := env.WorldRank(), 1-env.WorldRank()

	var start sim.Time
	for it := 0; it < warmup+iters; it++ {
		if it == warmup {
			s.Synchronize(p)
			env.MPIComm().Barrier(p)
			start = p.Now()
		}
		if me == 0 {
			ccl.Send(p, s, buf.Whole(), peer)
			ccl.Recv(p, s, buf.Whole(), peer)
		} else {
			ccl.Recv(p, s, buf.Whole(), peer)
			ccl.Send(p, s, buf.Whole(), peer)
		}
		s.Synchronize(p)
	}
	return p.Now().Sub(start)
}

func bandwidthNativeCCL(cfg NetConfig, env *core.Env, iters, warmup, window int) sim.Duration {
	ccl := env.CCLComm()
	p := env.Proc()
	s := env.DefaultStream()
	n := int(cfg.Bytes / 8)
	bufs := make([]*gpu.Buffer[float64], window)
	for i := range bufs {
		bufs[i] = gpu.AllocBuffer[float64](env.Device(), n)
	}
	me, peer := env.WorldRank(), 1-env.WorldRank()

	var start sim.Time
	for it := 0; it < warmup+iters; it++ {
		if it == warmup {
			s.Synchronize(p)
			env.MPIComm().Barrier(p)
			start = p.Now()
		}
		ccl.GroupStart()
		for w := 0; w < window; w++ {
			if me == 0 {
				ccl.Send(p, s, bufs[w].Whole(), peer)
			} else {
				ccl.Recv(p, s, bufs[w].Whole(), peer)
			}
		}
		ccl.GroupEnd(p, s)
		s.Synchronize(p)
	}
	return p.Now().Sub(start)
}
