package bench

// Engine-level cell benchmarks: wall-clock cost of whole simulation cells
// that are dominated by event-engine overhead rather than by the cost model
// (many ranks, small messages, long dependency chains). BenchmarkCellLarge
// is the acceptance benchmark of the engine overhaul (BENCH_engine.json):
// a 64-rank allreduce cell at Fig 5/6 scale, where every collective round
// funnels thousands of park/wake transfers through the scheduler.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/machine"
)

// runAllreduceCell launches one simulation cell: ranks processes on
// Perlmutter, each running iters MPI allreduces over elems float64 elements.
// shards selects the engine shard count (0 = serial legacy engine).
func runAllreduceCell(b *testing.B, ranks, elems, iters, shards int) {
	b.Helper()
	_, err := core.Launch(core.Config{Model: machine.Perlmutter(), NGPUs: ranks, Backend: core.MPIBackend, Shards: shards},
		func(env *core.Env) {
			comm := env.MPIComm()
			p := env.Proc()
			send := gpu.AllocBuffer[float64](env.Device(), elems)
			recv := gpu.AllocBuffer[float64](env.Device(), elems)
			for i := range send.Data() {
				send.Data()[i] = float64(env.WorldRank() + i)
			}
			for it := 0; it < iters; it++ {
				comm.Allreduce(p, send.Whole(), recv.Whole(), gpu.ReduceSum)
			}
		})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCellLarge is the 64-rank allreduce cell (16 Perlmutter nodes):
// small vectors keep the recursive-doubling algorithm engine-bound, so the
// benchmark measures scheduler-transfer and per-message overhead, not the
// bandwidth model.
func BenchmarkCellLarge(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runAllreduceCell(b, 64, 256, 20, 0)
	}
}

// BenchmarkCellLargeRing is the same cell with vectors large enough to take
// the ring algorithm (64 KiB threshold), adding rendezvous transfers and
// payload staging to the profile.
func BenchmarkCellLargeRing(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runAllreduceCell(b, 64, 16<<10, 4, 0)
	}
}

// BenchmarkCellMedium is the 8-rank variant (2 nodes), the Fig 6 scale.
func BenchmarkCellMedium(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runAllreduceCell(b, 8, 256, 20, 0)
	}
}

// BenchmarkCellLargeShards1/4 run the 64-rank cell on the windowed
// parallel-in-virtual-time engine (BENCH_engine.json's shards column).
// Shards1 isolates the windowing overhead against BenchmarkCellLarge;
// Shards4 adds real parallelism on multi-core hosts (the 16 nodes are
// spread over 4 worker goroutines).
func BenchmarkCellLargeShards1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runAllreduceCell(b, 64, 256, 20, 1)
	}
}

func BenchmarkCellLargeShards4(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runAllreduceCell(b, 64, 256, 20, 4)
	}
}
