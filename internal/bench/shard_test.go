package bench

// Shard-count determinism tests, mirroring the workers=1-vs-8 discipline of
// runner_test.go at the engine level: the same cell run at shards=1 and
// shards=N must produce bit-identical virtual-time results. Compares are
// always 1-vs-N — both sides run the windowed conservative-lookahead
// protocol, which is the determinism contract (the serial shards=0 path may
// legitimately time contended inter-node transfers differently).

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/machine"
	"repro/internal/sim"
)

// runAllreduceCellShards launches a ranks-wide MPI allreduce cell at the
// given shard count and returns the finish time plus every rank's full
// result vector.
func runAllreduceCellShards(t *testing.T, shards, ranks, elems, iters int) (sim.Time, [][]float64) {
	t.Helper()
	out := make([][]float64, ranks)
	rep, err := core.Launch(core.Config{
		Model: machine.Perlmutter(), NGPUs: ranks,
		Backend: core.MPIBackend, Shards: shards,
	}, func(env *core.Env) {
		comm := env.MPIComm()
		p := env.Proc()
		send := gpu.AllocBuffer[float64](env.Device(), elems)
		recv := gpu.AllocBuffer[float64](env.Device(), elems)
		for i := range send.Data() {
			send.Data()[i] = float64(env.WorldRank()*7 + i)
		}
		for it := 0; it < iters; it++ {
			comm.Allreduce(p, send.Whole(), recv.Whole(), gpu.ReduceSum)
		}
		// Each rank writes only its own slot: race-free across shards.
		out[env.WorldRank()] = append([]float64(nil), recv.Data()...)
	})
	if err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	return rep.End, out
}

// TestAllreduceCellShardsDeterministic is the engine-level acceptance
// check (run under -race in CI): a 64-rank allreduce cell must finish at
// the same virtual time with the same buffer contents at shards=1 and
// shards=4.
func TestAllreduceCellShardsDeterministic(t *testing.T) {
	const ranks, elems, iters = 64, 256, 5
	end1, out1 := runAllreduceCellShards(t, 1, ranks, elems, iters)
	end4, out4 := runAllreduceCellShards(t, 4, ranks, elems, iters)
	if end1 != end4 {
		t.Fatalf("finish time diverged: shards=1 %v, shards=4 %v", end1, end4)
	}
	for r := 0; r < ranks; r++ {
		for i := range out1[r] {
			if out1[r][i] != out4[r][i] {
				t.Fatalf("rank %d elem %d diverged: shards=1 %v, shards=4 %v",
					r, i, out1[r][i], out4[r][i])
			}
		}
	}
}

// TestAllreduceCellShardsRendezvous repeats the check with vectors past the
// ring/rendezvous threshold, covering the staged-payload conduit path.
func TestAllreduceCellShardsRendezvous(t *testing.T) {
	const ranks, elems, iters = 16, 16 << 10, 2
	end1, out1 := runAllreduceCellShards(t, 1, ranks, elems, iters)
	end4, out4 := runAllreduceCellShards(t, 4, ranks, elems, iters)
	if end1 != end4 {
		t.Fatalf("finish time diverged: shards=1 %v, shards=4 %v", end1, end4)
	}
	for r := 0; r < ranks; r++ {
		for i := range out1[r] {
			if out1[r][i] != out4[r][i] {
				t.Fatalf("rank %d elem %d diverged: shards=1 %v, shards=4 %v",
					r, i, out1[r][i], out4[r][i])
			}
		}
	}
}

// TestFigureSweepShardsDeterministic renders Fig 6 with the engine forced
// to shards=1 and shards=4 and asserts byte-identical output, mirroring
// TestFigureSweepDeterministic's workers discipline. Non-MPI cells clamp to
// one shard on both sides; the MPI cells exercise the real 1-vs-N contract.
func TestFigureSweepShardsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second figure sweep")
	}
	render := func(shards string) string {
		t.Setenv(WorkersEnv, "4")
		t.Setenv(core.ShardsEnv, shards)
		figs, err := RunFig6(Quick)
		if err != nil {
			t.Fatalf("RunFig6(shards=%s): %v", shards, err)
		}
		var sb strings.Builder
		for _, f := range figs {
			sb.WriteString(f.Render())
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	one := render("1")
	four := render("4")
	if one != four {
		t.Fatalf("figure output diverged between shards=1 and shards=4:\n--- shards=1 ---\n%s\n--- shards=4 ---\n%s", one, four)
	}
}

// TestChaosSweepShardsDeterministic runs a soft-fault severity ramp at
// shards=1 and shards=2 (the inter-node chaos cell spans two nodes) and
// asserts identical points. Hard-fault plans run sharded too — their
// determinism is covered by TestRecoveryShardDeterminismSwitchedTopologies.
func TestChaosSweepShardsDeterministic(t *testing.T) {
	cfg := chaosConfig(chaosBackends[0].backend)
	severities := []float64{0, 0.25, 0.5, 0.75, 1}
	sweep := func(shards string) []ChaosPoint {
		t.Setenv(core.ShardsEnv, shards)
		pts, err := ChaosSweep(cfg, severities, nil)
		if err != nil {
			t.Fatalf("ChaosSweep(shards=%s): %v", shards, err)
		}
		return pts
	}
	one := sweep("1")
	two := sweep("2")
	if len(one) != len(two) {
		t.Fatalf("point counts diverged: %d vs %d", len(one), len(two))
	}
	for i := range one {
		if one[i] != two[i] {
			t.Fatalf("point %d diverged: shards=1 %+v, shards=2 %+v", i, one[i], two[i])
		}
	}
}
