package bench

// Additional OSU-suite benchmarks beyond the two the paper uses:
// bidirectional bandwidth and collective (AllReduce) latency. They extend
// the evaluation in the same style and feed the backend advisor's future
// extensions; results are not compared against the paper (which does not
// report them) but follow the same methodology.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// BiBandwidth measures simultaneous two-way streaming between two GPUs
// (OSU osu_bibw): both ranks drive a window of messages at once. Returns
// the aggregate bytes/second.
func BiBandwidth(cfg NetConfig) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if cfg.API == machine.APIDevice {
		return 0, fmt.Errorf("bench: BiBandwidth covers host APIs")
	}
	iters, warmup, window := cfg.counts(true)
	var total sim.Duration
	_, err := core.Launch(core.Config{Model: cfg.model(), NGPUs: 2, Backend: cfg.Backend},
		func(env *core.Env) {
			d := biBandwidthRank(cfg, env, iters, warmup, window)
			if env.WorldRank() == 0 {
				total = d
			}
		})
	if err != nil {
		return 0, err
	}
	bytes := 2 * float64(iters) * float64(window) * float64(cfg.Bytes)
	return bytes / total.Seconds(), nil
}

func biBandwidthRank(cfg NetConfig, env *core.Env, iters, warmup, window int) sim.Duration {
	p := env.Proc()
	peer := 1 - env.WorldRank()
	n := int(cfg.Bytes / 8)
	switch cfg.Backend {
	case core.GpucclBackend:
		ccl := env.CCLComm()
		s := env.DefaultStream()
		bufs := make([]*gpu.Buffer[float64], 2*window)
		for i := range bufs {
			bufs[i] = gpu.AllocBuffer[float64](env.Device(), n)
		}
		var start sim.Time
		for it := 0; it < warmup+iters; it++ {
			if it == warmup {
				s.Synchronize(p)
				env.MPIComm().Barrier(p)
				start = p.Now()
			}
			ccl.GroupStart()
			for w := 0; w < window; w++ {
				ccl.Send(p, s, bufs[w].Whole(), peer)
				ccl.Recv(p, s, bufs[window+w].Whole(), peer)
			}
			ccl.GroupEnd(p, s)
			s.Synchronize(p)
		}
		return p.Now().Sub(start)
	default: // MPI and GPUSHMEM host both go through the MPI-style harness
		comm := env.MPIComm()
		send := make([]*gpu.Buffer[float64], window)
		recv := make([]*gpu.Buffer[float64], window)
		for i := 0; i < window; i++ {
			send[i] = gpu.AllocBuffer[float64](env.Device(), n)
			recv[i] = gpu.AllocBuffer[float64](env.Device(), n)
		}
		var start sim.Time
		for it := 0; it < warmup+iters; it++ {
			if it == warmup {
				comm.Barrier(p)
				start = p.Now()
			}
			reqs := make([]*mpi.Request, 0, 2*window)
			for w := 0; w < window; w++ {
				reqs = append(reqs, comm.Irecv(p, recv[w].Whole(), peer, 9))
			}
			for w := 0; w < window; w++ {
				reqs = append(reqs, comm.Isend(p, send[w].Whole(), peer, 9))
			}
			for _, r := range reqs {
				r.Wait(p)
			}
		}
		return p.Now().Sub(start)
	}
}

// AllReduceLatency measures the completion time of one AllReduce of the
// given payload across nGPUs ranks, through the UNICONN API on the chosen
// backend (OSU osu_allreduce).
func AllReduceLatency(cfg NetConfig, nGPUs int) (sim.Duration, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	iters, warmup, _ := cfg.counts(false)
	// Collective sweeps are heavier; cap the repetition counts.
	if iters > 200 {
		iters, warmup = 200, 20
	}
	model := cfg.model()
	var total sim.Duration
	_, err := core.Launch(core.Config{Model: model, NGPUs: nGPUs, Backend: cfg.Backend,
		Shards: cfg.Shards, Topology: cfg.Topology,
		Faults: cfg.Faults, Trace: cfg.Trace, Metrics: cfg.Metrics},
		func(env *core.Env) {
			comm := core.NewCommunicator(env)
			stream := env.NewStream("coll")
			coord := core.NewCoordinator(env, core.PureHost, stream)
			p := env.Proc()
			n := int(cfg.Bytes / 8)
			buf := core.Alloc[float64](env, n)
			var start sim.Time
			for it := 0; it < warmup+iters; it++ {
				if it == warmup {
					env.StreamSynchronize(stream)
					comm.HostBarrier()
					start = p.Now()
				}
				core.AllReduceInPlace(coord, gpu.ReduceSum, buf.Base(), n, comm)
				env.StreamSynchronize(stream)
			}
			if env.WorldRank() == 0 {
				total = p.Now().Sub(start)
			}
		})
	if err != nil {
		return 0, err
	}
	return total / sim.Duration(iters), nil
}
