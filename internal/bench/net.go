package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Network microbenchmarks adapted from the OSU suite (paper §VI-B):
// ping-pong latency and windowed one-way bandwidth between two GPUs, either
// within a node or across two nodes, for every (library, API) combination,
// in both native and UNICONN form.

// NetConfig selects one microbenchmark configuration.
type NetConfig struct {
	Model   *machine.Model
	Backend core.BackendID
	// API selects host- or device-initiated communication. Device
	// requires the GPUSHMEM backend.
	API machine.API
	// Native selects the library's own API; false selects UNICONN with
	// that backend.
	Native bool
	// Inter selects two GPUs on different nodes (otherwise same node).
	Inter bool
	// Bytes is the message size.
	Bytes int64

	// Iters/Warmup override the defaults (paper §VI-B counts, scaled for
	// the deterministic simulator where more repetitions add no
	// information). Zero selects the defaults.
	Iters, Warmup int
	// Window is the number of in-flight messages of the bandwidth test
	// (default 64, as in the paper).
	Window int

	// Shards selects the engine shard count of the run (0 = the
	// UNICONN_SHARDS environment default; see core.Config.Shards).
	Shards int

	// Topology overrides the inter-node network of the run (flat, fat-tree,
	// dragonfly; see fabric.TopologyConfig). The zero value keeps the
	// model's own topology.
	Topology fabric.TopologyConfig

	// Faults, when non-nil, injects a fault plan into the run (chaos
	// benchmarking; see internal/faults).
	Faults *faults.Plan
	// Trace, when non-nil, records the run's spans.
	Trace *trace.Log
	// Metrics, when non-nil, collects the run's counters (see
	// internal/metrics; one registry per run, never shared across cells).
	Metrics *metrics.Registry
	// Costs, when non-nil, is a shared per-worker cost cache (bench.ModelPool)
	// the run reuses instead of warming a private one (see core.Config.Costs).
	Costs *machine.CostCache
}

// Validate reports configuration errors.
func (cfg NetConfig) Validate() error {
	if cfg.Model == nil {
		return fmt.Errorf("bench: nil model")
	}
	if cfg.API == machine.APIDevice && cfg.Backend != core.GpushmemBackend {
		return fmt.Errorf("bench: device API requires the GPUSHMEM backend")
	}
	if cfg.Backend == core.GpushmemBackend && !cfg.Model.HasGPUSHMEM {
		return fmt.Errorf("bench: %s has no GPUSHMEM", cfg.Model.Name)
	}
	if cfg.Bytes < 8 || cfg.Bytes%8 != 0 {
		return fmt.Errorf("bench: message size must be a positive multiple of 8 (got %d)", cfg.Bytes)
	}
	return nil
}

// counts resolves iteration counts: the paper uses 100K/10K below 8 KiB and
// 10K/1K above for latency (1000/100 and 200/20 for bandwidth); the
// simulator is deterministic, so the defaults are scaled down 100× and can
// be raised with Iters/Warmup for paper-exact counts.
func (cfg NetConfig) counts(bandwidth bool) (iters, warmup, window int) {
	iters, warmup = cfg.Iters, cfg.Warmup
	if iters == 0 {
		if bandwidth {
			if cfg.Bytes < 8<<10 {
				iters, warmup = 100, 10
			} else {
				iters, warmup = 20, 2
			}
		} else {
			if cfg.Bytes < 8<<10 {
				iters, warmup = 1000, 100
			} else {
				iters, warmup = 100, 10
			}
		}
	}
	window = cfg.Window
	if window == 0 {
		window = 64
	}
	return iters, warmup, window
}

// model returns the machine to launch on: inter-node runs use a one-GPU-
// per-node view of the same machine so the two ranks land on two nodes.
func (cfg NetConfig) model() *machine.Model {
	if !cfg.Inter {
		return cfg.Model
	}
	m := *cfg.Model
	m.GPUsPerNode = 1
	m.NICsPerNode = 1
	return &m
}

// Latency runs the ping-pong benchmark and returns the one-way latency.
func Latency(cfg NetConfig) (sim.Duration, error) {
	lat, _, err := LatencyRun(cfg)
	return lat, err
}

// LatencyRun is Latency plus the run report (the profiler needs the run's
// end time as its attribution horizon).
func LatencyRun(cfg NetConfig) (sim.Duration, core.Report, error) {
	var rep core.Report
	if err := cfg.Validate(); err != nil {
		return 0, rep, err
	}
	iters, warmup, _ := cfg.counts(false)
	var rt sim.Duration
	rep, err := core.Launch(core.Config{Model: cfg.model(), NGPUs: 2, Backend: cfg.Backend,
		Shards: cfg.Shards, Topology: cfg.Topology, Costs: cfg.Costs,
		Faults: cfg.Faults, Trace: cfg.Trace, Metrics: cfg.Metrics},
		func(env *core.Env) {
			d := cfg.latencyRank(env, iters, warmup)
			if env.WorldRank() == 0 {
				rt = d
			}
		})
	if err != nil {
		return 0, rep, err
	}
	return rt / sim.Duration(2*iters), rep, nil
}

// Bandwidth runs the windowed one-way benchmark and returns bytes/second.
func Bandwidth(cfg NetConfig) (float64, error) {
	bw, _, err := BandwidthRun(cfg)
	return bw, err
}

// BandwidthRun is Bandwidth plus the run report.
func BandwidthRun(cfg NetConfig) (float64, core.Report, error) {
	var rep core.Report
	if err := cfg.Validate(); err != nil {
		return 0, rep, err
	}
	iters, warmup, window := cfg.counts(true)
	var total sim.Duration
	rep, err := core.Launch(core.Config{Model: cfg.model(), NGPUs: 2, Backend: cfg.Backend,
		Shards: cfg.Shards, Topology: cfg.Topology, Costs: cfg.Costs,
		Faults: cfg.Faults, Trace: cfg.Trace, Metrics: cfg.Metrics},
		func(env *core.Env) {
			d := cfg.bandwidthRank(env, iters, warmup, window)
			if env.WorldRank() == 0 {
				total = d
			}
		})
	if err != nil {
		return 0, rep, err
	}
	bytes := float64(iters) * float64(window) * float64(cfg.Bytes)
	return bytes / total.Seconds(), rep, nil
}

// latencyRank dispatches to the per-variant rank body and returns the timed
// loop duration (valid on rank 0).
func (cfg NetConfig) latencyRank(env *core.Env, iters, warmup int) sim.Duration {
	switch {
	case cfg.Native && cfg.Backend == core.MPIBackend:
		return latencyNativeMPI(cfg, env, iters, warmup)
	case cfg.Native && cfg.Backend == core.GpucclBackend:
		return latencyNativeCCL(cfg, env, iters, warmup)
	case cfg.Native && cfg.API == machine.APIDevice:
		return latencyNativeShmemDevice(cfg, env, iters, warmup)
	case cfg.Native:
		return latencyNativeShmemHost(cfg, env, iters, warmup)
	case cfg.API == machine.APIDevice:
		return latencyUniconnDevice(cfg, env, iters, warmup)
	default:
		return latencyUniconnHost(cfg, env, iters, warmup)
	}
}

func (cfg NetConfig) bandwidthRank(env *core.Env, iters, warmup, window int) sim.Duration {
	switch {
	case cfg.Native && cfg.Backend == core.MPIBackend:
		return bandwidthNativeMPI(cfg, env, iters, warmup, window)
	case cfg.Native && cfg.Backend == core.GpucclBackend:
		return bandwidthNativeCCL(cfg, env, iters, warmup, window)
	case cfg.Native && cfg.API == machine.APIDevice:
		return bandwidthNativeShmemDevice(cfg, env, iters, warmup, window)
	case cfg.Native:
		return bandwidthNativeShmemHost(cfg, env, iters, warmup, window)
	case cfg.API == machine.APIDevice:
		return bandwidthUniconnDevice(cfg, env, iters, warmup, window)
	default:
		return bandwidthUniconnHost(cfg, env, iters, warmup, window)
	}
}
