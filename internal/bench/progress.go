package bench

// Live progress plumbing: the sweep CLIs install a telemetry.Tracker here
// (once, before any sweep) and every Runner.Run reports run/cell progress to
// it. Disabled by default — with no tracker installed the runner pays one
// RLock per sweep and nothing per cell. Progress reporting never touches
// cell results or stdout, so sweep output is byte-identical with tracking on
// or off (the read-only-sampling rule of internal/telemetry).

import (
	"fmt"
	"sync"

	"repro/internal/telemetry"
)

var (
	progMu    sync.RWMutex
	progTr    *telemetry.Tracker
	progLabel = "sweep"
)

// SetProgress installs (or, with nil, removes) the process-wide live
// progress tracker. Call it from the CLI before running sweeps; mid-sweep
// changes affect only subsequent Runner.Run calls.
func SetProgress(t *telemetry.Tracker) {
	progMu.Lock()
	progTr = t
	progMu.Unlock()
}

// SetProgressLabel names the runs subsequent sweeps register with the
// tracker (default "sweep"). The CLIs set it to their mode string, so
// /debug/runs distinguishes e.g. a chaos severity ramp from a scale ramp.
func SetProgressLabel(label string) {
	progMu.Lock()
	if label != "" {
		progLabel = label
	}
	progMu.Unlock()
}

// StartLive is the sweep CLIs' one-call -live wiring: with a non-empty
// addr it starts the telemetry HTTP server, installs its tracker as the
// process progress sink under label, and returns the tracker plus a close
// func for the CLI's defer. An empty addr (flag unset) returns a nil
// tracker and a no-op close, so call sites need no branching.
func StartLive(addr, label string) (*telemetry.Tracker, func(), error) {
	if addr == "" {
		return nil, func() {}, nil
	}
	tracker, srv, err := telemetry.StartLive(addr)
	if err != nil {
		return nil, nil, err
	}
	SetProgress(tracker)
	SetProgressLabel(label)
	return tracker, func() { srv.Close() }, nil
}

// Progress reports the installed tracker (nil when live telemetry is off).
func Progress() *telemetry.Tracker {
	progMu.RLock()
	defer progMu.RUnlock()
	return progTr
}

// progressRun registers one sweep with the installed tracker; nil when
// tracking is off (telemetry handles are nil-safe, but the runner skips
// per-cell label formatting on a nil handle).
func progressRun(total, workers int) *telemetry.LiveRun {
	progMu.RLock()
	t, label := progTr, progLabel
	progMu.RUnlock()
	if t == nil {
		return nil
	}
	return t.StartRun(label, total, workers)
}

// cellLabel names one sweep cell for the per-worker progress view.
func cellLabel(i int) string { return fmt.Sprintf("cell[%d]", i) }
