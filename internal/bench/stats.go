// Package bench implements the paper's measurement methodology and the
// experiment harness that regenerates every figure and table: OSU-derived
// latency/bandwidth microbenchmarks (Figs. 2-4), the Jacobi scaling study
// (Fig. 5), the CG study (Fig. 6), and the configuration/SLOC tables
// (Tables I-II).
package bench

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// TrimmedMean implements §VI-A2: repeat the measurement, drop the lowest
// and highest samples, and average the rest. With fewer than three samples
// it averages all of them.
func TrimmedMean(xs []sim.Duration) sim.Duration {
	if len(xs) == 0 {
		return 0
	}
	s := append([]sim.Duration{}, xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if len(s) > 2 {
		s = s[1 : len(s)-1]
	}
	var sum sim.Duration
	for _, v := range s {
		sum += v
	}
	// Round to nearest (half away from zero) instead of truncating toward
	// zero, which systematically biased every reported mean low.
	n := sim.Duration(len(s))
	if sum >= 0 {
		return (sum + n/2) / n
	}
	return (sum - n/2) / n
}

// PercentDiff reports (x-ref)/ref in percent — the quantity of the
// embedded overhead plots in Figs. 3-4.
func PercentDiff(x, ref sim.Duration) float64 {
	if ref == 0 {
		return 0
	}
	return (float64(x) - float64(ref)) / float64(ref) * 100
}

// Sizes returns the power-of-two message sizes of an OSU sweep,
// inclusive of both bounds. minBytes must be positive: a doubling sweep
// from zero never terminates, and a negative start spins through negative
// sizes forever.
func Sizes(minBytes, maxBytes int64) []int64 {
	if minBytes < 1 {
		panic(fmt.Sprintf("bench: Sizes(%d, %d): minBytes must be >= 1 (a doubling sweep from %d never reaches %d)",
			minBytes, maxBytes, minBytes, maxBytes))
	}
	var out []int64
	for s := minBytes; s <= maxBytes && s > 0; s *= 2 {
		out = append(out, s)
	}
	return out
}

// HumanBytes formats a byte count with binary units.
func HumanBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%dGiB", b>>30)
	case b >= 1<<20:
		return fmt.Sprintf("%dMiB", b>>20)
	case b >= 1<<10:
		return fmt.Sprintf("%dKiB", b>>10)
	default:
		return fmt.Sprintf("%dB", b)
	}
}
