// Package bench implements the paper's measurement methodology and the
// experiment harness that regenerates every figure and table: OSU-derived
// latency/bandwidth microbenchmarks (Figs. 2-4), the Jacobi scaling study
// (Fig. 5), the CG study (Fig. 6), and the configuration/SLOC tables
// (Tables I-II).
package bench

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
)

// TrimmedMean implements §VI-A2: repeat the measurement, drop the lowest
// and highest samples, and average the rest. With fewer than three samples
// it averages all of them.
func TrimmedMean(xs []sim.Duration) sim.Duration {
	if len(xs) == 0 {
		return 0
	}
	s := append([]sim.Duration{}, xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if len(s) > 2 {
		s = s[1 : len(s)-1]
	}
	var sum sim.Duration
	for _, v := range s {
		sum += v
	}
	// Round to nearest (half away from zero) instead of truncating toward
	// zero, which systematically biased every reported mean low.
	n := sim.Duration(len(s))
	if sum >= 0 {
		return (sum + n/2) / n
	}
	return (sum - n/2) / n
}

// PercentDiff reports (x-ref)/ref in percent — the quantity of the
// embedded overhead plots in Figs. 3-4. A zero reference makes the ratio
// undefined: the result is NaN when x is also zero and ±Inf (matching the
// sign of x) otherwise, never a silent 0% that would hide a real
// difference. Plot paths render these as "n/a" (see pct).
func PercentDiff(x, ref sim.Duration) float64 {
	if ref == 0 {
		if x == 0 {
			return math.NaN()
		}
		return math.Inf(int(sign(x)))
	}
	return (float64(x) - float64(ref)) / float64(ref) * 100
}

func sign(d sim.Duration) sim.Duration {
	if d < 0 {
		return -1
	}
	return 1
}

// pct formats a percentage for report notes, rendering the undefined
// values PercentDiff produces for zero references as "n/a".
func pct(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "n/a"
	}
	return fmt.Sprintf("%.2f%%", v)
}

// Sizes returns the power-of-two message sizes of an OSU sweep,
// inclusive of both bounds. minBytes must be positive: a doubling sweep
// from zero never terminates, and a negative start spins through negative
// sizes forever.
func Sizes(minBytes, maxBytes int64) []int64 {
	if minBytes < 1 {
		panic(fmt.Sprintf("bench: Sizes(%d, %d): minBytes must be >= 1 (a doubling sweep from %d never reaches %d)",
			minBytes, maxBytes, minBytes, maxBytes))
	}
	var out []int64
	for s := minBytes; s <= maxBytes && s > 0; s *= 2 {
		out = append(out, s)
	}
	return out
}

// byteUnits orders the binary units largest first so humanUnit can carry a
// value that rounds to the radix into the next unit up.
var byteUnits = []struct {
	shift uint
	name  string
}{{30, "GiB"}, {20, "MiB"}, {10, "KiB"}}

// HumanBytes formats a byte count with binary units. Exact multiples print
// as integers ("2KiB"); everything else keeps one decimal ("1.5KiB", and the
// decimal marks the value as rounded — 2047 prints "2.0KiB", distinguishable
// from an exact "2KiB") so a value like 1536 is not silently truncated to
// "1KiB". Values whose decimal would round to the radix carry into the next
// unit: 1<<20-1 is "1.0MiB", never "1024.0KiB". Negative counts are
// formatted by sign-prefixing the magnitude.
func HumanBytes(b int64) string {
	if b < 0 {
		if b == math.MinInt64 {
			// -b overflows; 2^63 bytes is exactly 2^33 GiB.
			return "-8589934592GiB"
		}
		return "-" + HumanBytes(-b)
	}
	for i, u := range byteUnits {
		if b >= 1<<u.shift {
			return humanUnit(b, i)
		}
	}
	return fmt.Sprintf("%dB", b)
}

// humanUnit renders b in byteUnits[i], carrying into byteUnits[i-1] when
// %.1f rounding would reach 1024.0 (b within half a decimal step below the
// radix — the old code printed "1024.0KiB" for 1<<20-1).
func humanUnit(b int64, i int) string {
	u := byteUnits[i]
	if b&(1<<u.shift-1) == 0 {
		return fmt.Sprintf("%d%s", b>>u.shift, u.name)
	}
	v := float64(b) / float64(int64(1)<<u.shift)
	if math.Round(v*10) >= 10240 && i > 0 {
		up := byteUnits[i-1]
		return fmt.Sprintf("%.1f%s", float64(b)/float64(int64(1)<<up.shift), up.name)
	}
	return fmt.Sprintf("%.1f%s", v, u.name)
}
