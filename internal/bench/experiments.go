package bench

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/sloc"
	"repro/internal/solver/cg"
	"repro/internal/solver/jacobi"
	"repro/internal/sparse"
)

// Experiment runners regenerating every figure and table of the paper's
// evaluation (§VI). Each returns a Figure with one series per line of the
// original plot plus summary notes carrying the headline numbers the text
// reports (average overheads, who wins where).

// Scale selects the experiment sizing. Quick keeps runs in seconds;
// Paper uses the publication sizes (2^14×2^14 Jacobi grids, full-scale
// Serena/Queen-like matrices, full sweeps) and can take many minutes.
type Scale int

// The two sizing profiles.
const (
	Quick Scale = iota
	Paper
)

// Figure is one reproduced plot.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Series is one line of a plot.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Render formats the figure as an aligned text table (x down, one column
// per series).
func (f Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.ID, f.Title)
	if len(f.Series) > 0 {
		fmt.Fprintf(&b, "%-12s", f.XLabel)
		for _, s := range f.Series {
			fmt.Fprintf(&b, "%22s", s.Label)
		}
		b.WriteString("\n")
		for i := range f.Series[0].X {
			fmt.Fprintf(&b, "%-12g", f.Series[0].X[i])
			for _, s := range f.Series {
				if i < len(s.Y) {
					fmt.Fprintf(&b, "%22.4g", s.Y[i])
				} else {
					fmt.Fprintf(&b, "%22s", "-")
				}
			}
			b.WriteString("\n")
		}
		fmt.Fprintf(&b, "(y: %s)\n", f.YLabel)
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// netSizes returns the sweep sizes for the network figures.
func netSizes(sc Scale) []int64 {
	if sc == Paper {
		return Sizes(8, 64<<20)
	}
	return Sizes(8, 4<<20)
}

// libConfigs enumerates the (backend, api) combinations available on a
// machine, in the paper's plotting order.
type libConfig struct {
	label   string
	backend core.BackendID
	api     machine.API
}

func libsOf(m *machine.Model, includeHostShmem bool) []libConfig {
	libs := []libConfig{
		{"MPI", core.MPIBackend, machine.APIHost},
		{"GPUCCL", core.GpucclBackend, machine.APIHost},
	}
	if m.HasGPUSHMEM {
		if includeHostShmem {
			libs = append(libs, libConfig{"GPUSHMEM-Host", core.GpushmemBackend, machine.APIHost})
		}
		libs = append(libs, libConfig{"GPUSHMEM-Device", core.GpushmemBackend, machine.APIDevice})
	}
	return libs
}

// RunFig2 reproduces the motivation benchmark (Fig. 2): native-library
// latency and bandwidth, intra- and inter-node, on Perlmutter and LUMI.
// Every (machine, path, library, size) cell is an independent simulation,
// fanned out over the sweep runner and reassembled in serial order.
func RunFig2(sc Scale) ([]Figure, error) {
	machines := []*machine.Model{machine.Perlmutter(), machine.LUMI()}
	sizes := netSizes(sc)
	type cell struct {
		m     *machine.Model
		inter bool
		lib   libConfig
		size  int64
	}
	var cells []cell
	for _, m := range machines {
		for _, inter := range []bool{false, true} {
			for _, lib := range libsOf(m, false) {
				for _, size := range sizes {
					cells = append(cells, cell{m, inter, lib, size})
				}
			}
		}
	}
	type meas struct {
		lat sim.Duration
		bw  float64
	}
	results, err := Sweep(len(cells), func(i int) (meas, error) {
		c := cells[i]
		cfg := NetConfig{Model: c.m, Backend: c.lib.backend, API: c.lib.api,
			Native: true, Inter: c.inter, Bytes: c.size}
		l, err := Latency(cfg)
		if err != nil {
			return meas{}, err
		}
		b, err := Bandwidth(cfg)
		if err != nil {
			return meas{}, err
		}
		return meas{l, b}, nil
	})
	if err != nil {
		return nil, err
	}
	var figs []Figure
	idx := 0
	for _, m := range machines {
		for _, inter := range []bool{false, true} {
			where := map[bool]string{false: "intra-node", true: "inter-node"}[inter]
			lat := Figure{
				ID:     "Fig2", // panels a-d
				Title:  fmt.Sprintf("Native latency, %s, %s", m.Name, where),
				XLabel: "bytes", YLabel: "one-way latency (us)",
			}
			bw := Figure{
				ID:     "Fig2",
				Title:  fmt.Sprintf("Native bandwidth, %s, %s", m.Name, where),
				XLabel: "bytes", YLabel: "bandwidth (GB/s)",
			}
			for _, lib := range libsOf(m, false) {
				var lx, ly, bx, by []float64
				for _, size := range sizes {
					r := results[idx]
					idx++
					lx, ly = append(lx, float64(size)), append(ly, r.lat.Micros())
					bx, by = append(bx, float64(size)), append(by, r.bw/1e9)
				}
				lat.Series = append(lat.Series, Series{Label: lib.label, X: lx, Y: ly})
				bw.Series = append(bw.Series, Series{Label: lib.label, X: bx, Y: by})
			}
			lat.Notes = append(lat.Notes, crossoverNote(lat))
			figs = append(figs, lat, bw)
		}
	}
	return figs, nil
}

// crossoverNote summarises which library wins at the smallest and largest
// sizes (the "no single library wins" observation of §II-C).
func crossoverNote(f Figure) string {
	if len(f.Series) < 2 || len(f.Series[0].Y) == 0 {
		return ""
	}
	bestAt := func(i int) string {
		best, lbl := f.Series[0].Y[i], f.Series[0].Label
		for _, s := range f.Series[1:] {
			if s.Y[i] < best {
				best, lbl = s.Y[i], s.Label
			}
		}
		return lbl
	}
	last := len(f.Series[0].Y) - 1
	return fmt.Sprintf("lowest latency at %gB: %s; at %gB: %s",
		f.Series[0].X[0], bestAt(0), f.Series[0].X[last], bestAt(last))
}

// RunFig34 reproduces Figs. 3 (intra-node) and 4 (inter-node): native vs
// UNICONN for every library on every machine, with the percent-difference
// summaries the embedded plots show.
func RunFig34(sc Scale, inter bool) ([]Figure, error) {
	id := "Fig3"
	if inter {
		id = "Fig4"
	}
	where := map[bool]string{false: "intra-node", true: "inter-node"}[inter]
	machines := machine.All()
	sizes := netSizes(sc)
	type cell struct {
		m    *machine.Model
		lib  libConfig
		size int64
	}
	var cells []cell
	for _, m := range machines {
		for _, lib := range libsOf(m, true) {
			for _, size := range sizes {
				cells = append(cells, cell{m, lib, size})
			}
		}
	}
	// One cell measures all four quantities of one point: native and
	// UNICONN, latency and bandwidth.
	type meas struct {
		ln, lu sim.Duration
		bn, bu float64
	}
	results, err := Sweep(len(cells), func(i int) (meas, error) {
		c := cells[i]
		cfg := NetConfig{Model: c.m, Backend: c.lib.backend, API: c.lib.api,
			Inter: inter, Bytes: c.size}
		var r meas
		var err error
		cfg.Native = true
		if r.ln, err = Latency(cfg); err != nil {
			return r, err
		}
		if r.bn, err = Bandwidth(cfg); err != nil {
			return r, err
		}
		cfg.Native = false
		if r.lu, err = Latency(cfg); err != nil {
			return r, err
		}
		if r.bu, err = Bandwidth(cfg); err != nil {
			return r, err
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	var figs []Figure
	idx := 0
	for _, m := range machines {
		lat := Figure{ID: id, Title: fmt.Sprintf("Latency native vs UNICONN, %s, %s", m.Name, where),
			XLabel: "bytes", YLabel: "one-way latency (us)"}
		bw := Figure{ID: id, Title: fmt.Sprintf("Bandwidth native vs UNICONN, %s, %s", m.Name, where),
			XLabel: "bytes", YLabel: "bandwidth (GB/s)"}
		for _, lib := range libsOf(m, true) {
			var natL, ucL, natB, ucB Series
			natL.Label, ucL.Label = lib.label+":Native", lib.label+":Uniconn"
			natB.Label, ucB.Label = natL.Label, ucL.Label
			var sumLat, sumBw float64
			var cnt int
			for _, size := range sizes {
				r := results[idx]
				idx++
				x := float64(size)
				natL.X, natL.Y = append(natL.X, x), append(natL.Y, r.ln.Micros())
				ucL.X, ucL.Y = append(ucL.X, x), append(ucL.Y, r.lu.Micros())
				natB.X, natB.Y = append(natB.X, x), append(natB.Y, r.bn/1e9)
				ucB.X, ucB.Y = append(ucB.X, x), append(ucB.Y, r.bu/1e9)
				sumLat += PercentDiff(r.lu, r.ln)
				sumBw += (r.bn - r.bu) / r.bn * 100
				cnt++
			}
			lat.Series = append(lat.Series, natL, ucL)
			bw.Series = append(bw.Series, natB, ucB)
			// pct renders "n/a" when any point had a zero reference
			// (which poisons the average with NaN/Inf) instead of a
			// bogus "0.00%".
			lat.Notes = append(lat.Notes, fmt.Sprintf("%s avg UNICONN latency overhead: %s",
				lib.label, pct(sumLat/float64(cnt))))
			bw.Notes = append(bw.Notes, fmt.Sprintf("%s avg UNICONN bandwidth loss: %s",
				lib.label, pct(sumBw/float64(cnt))))
		}
		figs = append(figs, lat, bw)
	}
	return figs, nil
}

// RunFig5 reproduces the Jacobi scaling study (Fig. 5): per-iteration time
// for 4..64 GPUs on all three machines, native vs UNICONN per backend.
func RunFig5(sc Scale) ([]Figure, error) {
	ny := 1 << 12
	iters, warmup := 60, 10
	if sc == Paper {
		ny = 1 << 14
		iters, warmup = 1000, 100
	}
	gpuCounts := []int{4, 8, 16, 32, 64}
	machines := machine.All()
	type vrt struct {
		label string
		cfg   jacobi.Config
	}
	variantsOf := func(m *machine.Model) []vrt {
		base := jacobi.Config{Model: m, NX: ny, NY: ny, Iters: iters, Warmup: warmup, Compute: false}
		mk := func(label string, v jacobi.Variant, b core.BackendID, mode core.LaunchMode) vrt {
			c := base
			c.Variant, c.Backend, c.Mode = v, b, mode
			return vrt{label, c}
		}
		variants := []vrt{
			mk("MPI:Native", jacobi.NativeMPI, 0, 0),
			mk("MPI:Uniconn", jacobi.Uniconn, core.MPIBackend, core.PureHost),
			mk("GPUCCL:Native", jacobi.NativeGPUCCL, 0, 0),
			mk("GPUCCL:Uniconn", jacobi.Uniconn, core.GpucclBackend, core.PureHost),
		}
		if m.HasGPUSHMEM {
			variants = append(variants,
				mk("GPUSHMEM-H:Native", jacobi.NativeGPUSHMEMHost, 0, 0),
				mk("GPUSHMEM-H:Uniconn", jacobi.Uniconn, core.GpushmemBackend, core.PureHost),
				mk("GPUSHMEM-D:Native", jacobi.NativeGPUSHMEMDevice, 0, 0),
				mk("GPUSHMEM-D:Uniconn", jacobi.Uniconn, core.GpushmemBackend, core.PureDevice),
			)
		}
		return variants
	}
	perMachine := make([][]vrt, len(machines))
	var cells []jacobi.Config
	for mi, m := range machines {
		perMachine[mi] = variantsOf(m)
		for _, n := range gpuCounts {
			for _, v := range perMachine[mi] {
				cfg := v.cfg
				cfg.NGPUs = n
				cells = append(cells, cfg)
			}
		}
	}
	micros, err := Sweep(len(cells), func(i int) (float64, error) {
		res, err := jacobi.Run(cells[i])
		if err != nil {
			return 0, err
		}
		return res.PerIter.Micros(), nil
	})
	if err != nil {
		return nil, err
	}
	var figs []Figure
	idx := 0
	for mi, m := range machines {
		fig := Figure{ID: "Fig5", Title: fmt.Sprintf("Jacobi 2D, %s (grid %d x %d)", m.Name, ny, ny),
			XLabel: "GPUs", YLabel: "time per iteration (us)"}
		variants := perMachine[mi]
		perVariant := map[string][]float64{}
		for range gpuCounts {
			for _, v := range variants {
				perVariant[v.label] = append(perVariant[v.label], micros[idx])
				idx++
			}
		}
		xs := make([]float64, len(gpuCounts))
		for i, n := range gpuCounts {
			xs[i] = float64(n)
		}
		for _, v := range variants {
			fig.Series = append(fig.Series, Series{Label: v.label, X: xs, Y: perVariant[v.label]})
		}
		// Average native-vs-UNICONN difference per backend (§VI-C: <1%).
		for i := 0; i+1 < len(variants); i += 2 {
			nat, uc := perVariant[variants[i].label], perVariant[variants[i+1].label]
			sum := 0.0
			for j := range nat {
				sum += (uc[j] - nat[j]) / nat[j] * 100
			}
			fig.Notes = append(fig.Notes, fmt.Sprintf("%s avg UNICONN diff: %s",
				strings.Split(variants[i].label, ":")[0], pct(sum/float64(len(nat)))))
		}
		figs = append(figs, fig)
	}
	return figs, nil
}

// RunFig6 reproduces the CG study (Fig. 6): total runtime on 8 GPUs / 2
// nodes on Perlmutter and LUMI for the Serena-like and Queen-like matrices,
// plus the no-Allgatherv ablation isolating the MPI collective bottleneck.
func RunFig6(sc Scale) ([]Figure, error) {
	scale := 0.05
	iters := 30
	if sc == Paper {
		scale = 1.0
		iters = 10000
	}
	specs := []sparse.SyntheticSPDSpec{sparse.Serena(), sparse.Queen4147()}
	// Matrices are generated once per spec and shared read-only across
	// machines and variants (cg.Run only reads them), so parallel cells
	// need no per-cell copies.
	mats := make([]*sparse.CSR, len(specs))
	for i, spec := range specs {
		mats[i] = spec.Generate(scale)
	}
	machines := []*machine.Model{machine.Perlmutter(), machine.LUMI()}
	type vrt struct {
		label string
		cfg   cg.Config
	}
	variantsOf := func(m *machine.Model, mat *sparse.CSR) []vrt {
		base := cg.Config{Model: m, NGPUs: 8, Matrix: mat, Iters: iters, Compute: false}
		mk := func(label string, v cg.Variant, b core.BackendID, mode core.LaunchMode, noAg bool) vrt {
			c := base
			c.Variant, c.Backend, c.Mode, c.DisableAllgatherv = v, b, mode, noAg
			return vrt{label, c}
		}
		variants := []vrt{
			mk("MPI:Native", cg.NativeMPI, 0, 0, false),
			mk("MPI:Uniconn", cg.Uniconn, core.MPIBackend, core.PureHost, false),
			mk("GPUCCL:Native", cg.NativeGPUCCL, 0, 0, false),
			mk("GPUCCL:Uniconn", cg.Uniconn, core.GpucclBackend, core.PureHost, false),
			mk("MPI:Native:no-allgatherv", cg.NativeMPI, 0, 0, true),
			mk("GPUCCL:Native:no-allgatherv", cg.NativeGPUCCL, 0, 0, true),
		}
		if m.HasGPUSHMEM {
			variants = append(variants,
				mk("GPUSHMEM-H:Native", cg.NativeGPUSHMEMHost, 0, 0, false),
				mk("GPUSHMEM-H:Uniconn", cg.Uniconn, core.GpushmemBackend, core.PureHost, false),
				mk("GPUSHMEM-D:Native", cg.NativeGPUSHMEMDevice, 0, 0, false),
				mk("GPUSHMEM-D:Uniconn", cg.Uniconn, core.GpushmemBackend, core.PureDevice, false),
			)
		}
		return variants
	}
	var variantLists [][]vrt
	var cells []cg.Config
	for _, m := range machines {
		for si := range specs {
			vs := variantsOf(m, mats[si])
			variantLists = append(variantLists, vs)
			for _, v := range vs {
				cells = append(cells, v.cfg)
			}
		}
	}
	totals, err := Sweep(len(cells), func(i int) (sim.Duration, error) {
		res, err := cg.Run(cells[i])
		if err != nil {
			return 0, err
		}
		return res.Total, nil
	})
	if err != nil {
		return nil, err
	}
	var figs []Figure
	idx, combo := 0, 0
	for _, m := range machines {
		for si, spec := range specs {
			mat := mats[si]
			fig := Figure{
				ID: "Fig6",
				Title: fmt.Sprintf("CG on 8 GPUs, %s, %s (%d rows, %d nnz)",
					m.Name, spec.Name, mat.Rows, mat.NNZ()),
				XLabel: "variant", YLabel: "total time (ms)",
			}
			variants := variantLists[combo]
			combo++
			results := map[string]sim.Duration{}
			for i, v := range variants {
				total := totals[idx]
				idx++
				results[v.label] = total
				fig.Series = append(fig.Series, Series{
					Label: v.label, X: []float64{float64(i)},
					Y: []float64{float64(total) / float64(sim.Millisecond)},
				})
			}
			// Headline notes: UNICONN-vs-native diffs and the MPI anomaly.
			for _, bk := range []string{"MPI", "GPUCCL", "GPUSHMEM-H", "GPUSHMEM-D"} {
				nat, okN := results[bk+":Native"]
				uc, okU := results[bk+":Uniconn"]
				if okN && okU {
					fig.Notes = append(fig.Notes, fmt.Sprintf("%s UNICONN diff: %s",
						bk, pct(PercentDiff(uc, nat))))
				}
			}
			fig.Notes = append(fig.Notes, fmt.Sprintf(
				"MPI/GPUCCL runtime ratio: %.2fx with Allgatherv, %.2fx without",
				float64(results["MPI:Native"])/float64(results["GPUCCL:Native"]),
				float64(results["MPI:Native:no-allgatherv"])/float64(results["GPUCCL:Native:no-allgatherv"])))
			figs = append(figs, fig)
		}
	}
	return figs, nil
}

// Table1 renders the machine models (Table I).
func Table1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Table I: simulated system characteristics ==\n")
	fmt.Fprintf(&b, "%-14s %-14s %5s %5s %14s %14s %10s %9s\n",
		"System", "GPU", "GPU/N", "NIC/N", "IntraBW(GB/s)", "NICBW(GB/s)", "MemBW(TB/s)", "GPUSHMEM")
	for _, m := range machine.All() {
		fmt.Fprintf(&b, "%-14s %-14s %5d %5d %14.0f %14.0f %10.2f %9v\n",
			m.Name, m.GPU.Name, m.GPUsPerNode, m.NICsPerNode,
			m.IntraWireBW/1e9, m.NICWireBW/1e9, m.GPU.MemBW/1e12, m.HasGPUSHMEM)
	}
	return b.String()
}

// Table2 recomputes the SLOC comparison (Table II) from this repository's
// own benchmark and solver sources. root is the repository root.
func Table2(root string) (string, error) {
	j := func(parts ...string) string { return filepath.Join(append([]string{root}, parts...)...) }
	type cell func() (int, error)
	funcs := func(path string, names ...string) cell {
		return func() (int, error) { return sloc.CountFuncs(path, names...) }
	}
	files := func(paths ...string) cell {
		return func() (int, error) { return sloc.CountFiles(paths...) }
	}
	bench := j("internal", "bench")
	jac := j("internal", "solver", "jacobi")
	cgd := j("internal", "solver", "cg")
	rows := []struct {
		name  string
		cells [4]cell // latency, bandwidth, jacobi, cg
	}{
		{"MPI", [4]cell{
			funcs(filepath.Join(bench, "net_mpi.go"), "latencyNativeMPI"),
			funcs(filepath.Join(bench, "net_mpi.go"), "bandwidthNativeMPI"),
			files(filepath.Join(jac, "native_mpi.go")),
			files(filepath.Join(cgd, "native_mpi.go")),
		}},
		{"GPUCCL", [4]cell{
			funcs(filepath.Join(bench, "net_gpuccl.go"), "latencyNativeCCL"),
			funcs(filepath.Join(bench, "net_gpuccl.go"), "bandwidthNativeCCL"),
			files(filepath.Join(jac, "native_gpuccl.go")),
			files(filepath.Join(cgd, "native_gpuccl.go")),
		}},
		{"GPUSHMEM_Host", [4]cell{
			funcs(filepath.Join(bench, "net_gpushmem.go"), "latencyNativeShmemHost"),
			funcs(filepath.Join(bench, "net_gpushmem.go"), "bandwidthNativeShmemHost"),
			funcs(filepath.Join(jac, "native_gpushmem.go"), "runNativeShmemHost"),
			funcs(filepath.Join(cgd, "native_gpushmem.go"), "runNativeShmemHost"),
		}},
		{"GPUSHMEM_Device", [4]cell{
			funcs(filepath.Join(bench, "net_gpushmem.go"), "latencyNativeShmemDevice"),
			funcs(filepath.Join(bench, "net_gpushmem.go"), "bandwidthNativeShmemDevice"),
			funcs(filepath.Join(jac, "native_gpushmem.go"), "runNativeShmemDevice"),
			funcs(filepath.Join(cgd, "native_gpushmem.go"), "runNativeShmemDevice"),
		}},
		{"Uniconn", [4]cell{
			funcs(filepath.Join(bench, "net_uniconn.go"), "latencyUniconnHost", "latencyUniconnDevice"),
			funcs(filepath.Join(bench, "net_uniconn.go"), "bandwidthUniconnHost", "bandwidthUniconnDevice"),
			files(filepath.Join(jac, "uniconn.go")),
			files(filepath.Join(cgd, "uniconn.go")),
		}},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== Table II: SLOC per experiment (this repository) ==\n")
	fmt.Fprintf(&b, "%-16s %9s %10s %9s %6s\n", "Library", "Latency", "Bandwidth", "Jacobi2D", "CG")
	for _, r := range rows {
		vals := make([]string, 4)
		for i, c := range r.cells {
			n, err := c()
			if err != nil {
				return "", err
			}
			vals[i] = fmt.Sprint(n)
		}
		fmt.Fprintf(&b, "%-16s %9s %10s %9s %6s\n", r.name, vals[0], vals[1], vals[2], vals[3])
	}
	b.WriteString("(Uniconn rows include both host and device API variants in one codebase,\n" +
		" mirroring the paper's observation that its SLOC is slightly higher.)\n")
	return b.String(), nil
}

// SortFigures orders figures by ID then title, for stable reports.
func SortFigures(figs []Figure) {
	sort.Slice(figs, func(i, j int) bool {
		if figs[i].ID != figs[j].ID {
			return figs[i].ID < figs[j].ID
		}
		return figs[i].Title < figs[j].Title
	})
}
