package bench

// The deterministic parallel sweep runner. The paper's evaluation is a grid
// of *independent* simulations (message-size sweeps, GPU-count scaling,
// severity ramps); each cell builds its own sim.Engine inside core.Launch,
// so cells share no mutable state and can execute on any OS thread without
// changing their virtual-time results. The runner fans cells out over a
// bounded worker pool while keeping the observable output bit-identical to
// serial execution:
//
//   - cells are claimed off an atomic counter in increasing index order;
//   - every result lands in a caller-owned slot keyed by cell index, never
//     in arrival order;
//   - on failure the error returned is the one at the lowest failing index,
//     which is exactly the error serial execution would have hit first
//     (cells below the first serial failure succeed deterministically, so
//     they can never pre-empt it);
//   - UNICONN_WORKERS=1 (or NewRunner(1)) degrades to a plain loop on the
//     calling goroutine, the escape hatch for debugging.
//
// Observability ownership rule: trace logs and metrics registries are
// single-engine state with no internal locking. A cell that records spans or
// counters must allocate its own trace.Log / metrics.Registry (one Collector,
// see profile.go) inside its cell function, write results only to its own
// index, and freeze them (Snapshot / Sorted) before returning. Collected
// cells are then merged in index order by the caller, which keeps profiling
// output bit-identical to serial execution. Sharing a log or registry across
// cells is a data race AND a determinism bug — never do it.
//
// See DESIGN.md §8 for the full determinism argument and §10 for the
// observability layer built on this rule.

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/spec"
)

// WorkersEnv is the environment variable that overrides the sweep worker
// count. Unset or invalid values fall back to GOMAXPROCS.
const WorkersEnv = spec.WorkersEnv

// Workers resolves the default sweep worker count: UNICONN_WORKERS when it
// is set to a positive integer, otherwise GOMAXPROCS.
func Workers() int {
	if s := os.Getenv(WorkersEnv); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 1 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// Runner executes independent sweep cells over a fixed-size worker pool.
type Runner struct {
	workers int
}

// NewRunner returns a runner with the given worker count; workers <= 0
// selects the environment default (Workers()).
func NewRunner(workers int) *Runner {
	if workers <= 0 {
		workers = Workers()
	}
	return &Runner{workers: workers}
}

// Workers reports the runner's worker count.
func (r *Runner) Workers() int { return r.workers }

// Run executes fn(i) for every i in [0, n). Cells must be independent: each
// owns its private engine, trace log, and fault plan, and writes results
// only to its own index. With one worker, cells run in increasing index
// order on the calling goroutine. The returned error is the error of the
// lowest failing index (the same error serial execution returns); once any
// cell fails, unclaimed cells are skipped.
func (r *Runner) Run(n int, fn func(i int) error) error {
	return r.RunWorker(n, func(_, i int) error { return fn(i) })
}

// RunWorker is Run with the executing worker's index passed to the cell
// function (0 <= worker < Workers()). Cell-to-worker assignment is a race —
// whichever worker's atomic claim lands first — so anything keyed on the
// worker index must be invisible to cell results: its one sound use is
// worker-local reuse of immutable or memoized state (a warmed ModelPool
// entry, a scratch buffer), never per-cell observability. The determinism
// contract is otherwise identical to Run's.
func (r *Runner) RunWorker(n int, fn func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	w := r.workers
	if w > n {
		w = n
	}
	// Live progress (nil handle when no tracker is installed): reporting is
	// read-only off the sweep — it never touches cell results or stdout, so
	// output stays byte-identical with tracking on or off.
	lr := progressRun(n, w)
	defer lr.End()
	if w <= 1 {
		for i := 0; i < n; i++ {
			if lr != nil {
				lr.CellStart(0, i, cellLabel(i))
			}
			err := fn(0, i)
			lr.CellDone(0, i)
			if err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		errs   = make([]error, n)
		wg     sync.WaitGroup
	)
	next.Store(-1)
	wg.Add(w)
	for k := 0; k < w; k++ {
		k := k
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n || failed.Load() {
					return
				}
				if lr != nil {
					lr.CellStart(k, i, cellLabel(i))
				}
				err := fn(k, i)
				lr.CellDone(k, i)
				if err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	// Lowest failing index wins: cells are claimed in increasing order, so
	// by the time any cell fails, every lower-index cell has already been
	// claimed and will complete. Since cells are deterministic, the cells
	// preceding the first serial failure always succeed, and the error
	// reported here equals the serial one.
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Sweep runs fn over n cells with the default runner and collects the
// results by cell index.
func Sweep[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	return SweepWith[T](NewRunner(0), n, fn)
}

// SweepWith is Sweep with an explicit runner.
func SweepWith[T any](r *Runner, n int, fn func(i int) (T, error)) ([]T, error) {
	return SweepWorkerWith[T](r, n, func(_, i int) (T, error) { return fn(i) })
}

// SweepWorker is Sweep with the executing worker's index passed through
// (see Runner.RunWorker for what worker-keyed state may soundly do).
func SweepWorker[T any](n int, fn func(worker, i int) (T, error)) ([]T, error) {
	return SweepWorkerWith[T](NewRunner(0), n, fn)
}

// SweepWorkerWith is SweepWorker with an explicit runner.
func SweepWorkerWith[T any](r *Runner, n int, fn func(worker, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := r.RunWorker(n, func(k, i int) error {
		v, err := fn(k, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
