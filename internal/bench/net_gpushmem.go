package bench

// Native GPUSHMEM latency and bandwidth benchmarks, host API (stream-
// ordered put-with-signal) and device API (the whole timed loop inside one
// collectively-launched kernel, as in the OSU NVSHMEM device benchmarks —
// which is why device-initiated latency has no per-iteration launch cost).

import (
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/gpushmem"
	"repro/internal/sim"
)

func latencyNativeShmemHost(cfg NetConfig, env *core.Env, iters, warmup int) sim.Duration {
	pe := env.ShmemPE()
	p := env.Proc()
	s := env.DefaultStream()
	n := int(cfg.Bytes / 8)
	data := gpushmem.Malloc[float64](pe, n)
	sig := gpushmem.Malloc[uint64](pe, 1)
	me, peer := env.WorldRank(), 1-env.WorldRank()

	var start sim.Time
	for it := 1; it <= warmup+iters; it++ {
		if it == warmup+1 {
			s.Synchronize(p)
			env.MPIComm().Barrier(p)
			start = p.Now()
		}
		v := uint64(it)
		if me == 0 {
			pe.PutSignalOnStream(p, s, data.WholeRef(), data.Local(me).Whole(), n,
				sig.SigRef(0), v, gpushmem.SignalSet, peer)
			pe.SignalWaitOnStream(p, s, sig.SigRef(0), gpushmem.CmpGE, v)
		} else {
			pe.SignalWaitOnStream(p, s, sig.SigRef(0), gpushmem.CmpGE, v)
			pe.PutSignalOnStream(p, s, data.WholeRef(), data.Local(me).Whole(), n,
				sig.SigRef(0), v, gpushmem.SignalSet, peer)
		}
		s.Synchronize(p)
	}
	return p.Now().Sub(start)
}

func bandwidthNativeShmemHost(cfg NetConfig, env *core.Env, iters, warmup, window int) sim.Duration {
	pe := env.ShmemPE()
	p := env.Proc()
	s := env.DefaultStream()
	n := int(cfg.Bytes / 8)
	data := gpushmem.Malloc[float64](pe, n*window)
	me, peer := env.WorldRank(), 1-env.WorldRank()

	var start sim.Time
	for it := 0; it < warmup+iters; it++ {
		if it == warmup {
			s.Synchronize(p)
			env.MPIComm().Barrier(p)
			start = p.Now()
		}
		if me == 0 {
			for w := 0; w < window; w++ {
				pe.PutOnStream(p, s, data.Ref(w*n, n), data.Local(me).View(w*n, n), n, peer)
			}
			pe.QuietOnStream(p, s)
		}
		s.Synchronize(p)
		env.MPIComm().Barrier(p)
	}
	return p.Now().Sub(start)
}

func latencyNativeShmemDevice(cfg NetConfig, env *core.Env, iters, warmup int) sim.Duration {
	pe := env.ShmemPE()
	p := env.Proc()
	s := env.DefaultStream()
	n := int(cfg.Bytes / 8)
	data := gpushmem.Malloc[float64](pe, n)
	sig := gpushmem.Malloc[uint64](pe, 1)
	me, peer := env.WorldRank(), 1-env.WorldRank()

	var elapsed sim.Duration
	k := &gpu.Kernel{Name: "pingpong", Body: func(kc *gpu.KernelCtx) {
		var start sim.Time
		for it := 1; it <= warmup+iters; it++ {
			if it == warmup+1 {
				pe.DevBarrierAll(kc)
				start = kc.P.Now()
			}
			v := uint64(it)
			if me == 0 {
				pe.DevPutSignalNBI(kc, gpushmem.Block, data.WholeRef(),
					data.Local(me).Whole(), n, sig.SigRef(0), v, gpushmem.SignalSet, peer)
				pe.DevSignalWaitUntil(kc, sig.SigRef(0), gpushmem.CmpGE, v)
			} else {
				pe.DevSignalWaitUntil(kc, sig.SigRef(0), gpushmem.CmpGE, v)
				pe.DevPutSignalNBI(kc, gpushmem.Block, data.WholeRef(),
					data.Local(me).Whole(), n, sig.SigRef(0), v, gpushmem.SignalSet, peer)
			}
		}
		elapsed = kc.P.Now().Sub(start)
	}}
	pe.CollectiveLaunch(p, s, k, nil)
	s.Synchronize(p)
	return elapsed
}

func bandwidthNativeShmemDevice(cfg NetConfig, env *core.Env, iters, warmup, window int) sim.Duration {
	pe := env.ShmemPE()
	p := env.Proc()
	s := env.DefaultStream()
	n := int(cfg.Bytes / 8)
	data := gpushmem.Malloc[float64](pe, n*window)
	me, peer := env.WorldRank(), 1-env.WorldRank()

	var elapsed sim.Duration
	k := &gpu.Kernel{Name: "bw", Body: func(kc *gpu.KernelCtx) {
		var start sim.Time
		for it := 0; it < warmup+iters; it++ {
			if it == warmup {
				pe.DevBarrierAll(kc)
				start = kc.P.Now()
			}
			if me == 0 {
				for w := 0; w < window; w++ {
					pe.DevPutNBI(kc, gpushmem.Block, data.Ref(w*n, n),
						data.Local(me).View(w*n, n), n, peer)
				}
				pe.DevQuiet(kc)
			}
			pe.DevBarrierAll(kc)
		}
		elapsed = kc.P.Now().Sub(start)
	}}
	pe.CollectiveLaunch(p, s, k, nil)
	s.Synchronize(p)
	return elapsed
}
