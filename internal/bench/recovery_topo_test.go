package bench

// Topology-aware recovery tests: Shrink during a hierarchical-size allreduce
// on every backend, and the shards 1-vs-N byte-compare for hard-fault runs
// on switched topologies (run under -race in CI).

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/sim"
)

// TestShrinkDuringHierarchicalAllreduce crashes rank 1 of 16 (4 Perlmutter
// nodes x 4 GPUs) under a 64 KiB allreduce — past the MPI hierarchical
// crossover, so the pre-crash iterations run the SMP-aware algorithm. The
// survivor set straddles node 0, so after Shrink the hierarchical layout is
// gone and auto-selection must re-check its thresholds on the shrunk
// communicator instead of reducing over a stale node map. The survivors'
// checksum proves the post-shrink reduction is over exactly the 15 live
// ranks, on all three backends.
func TestShrinkDuringHierarchicalAllreduce(t *testing.T) {
	const nGPUs, elems = 16, 8 << 10 // 64 KiB of float64
	m := machine.Perlmutter()
	plan := &faults.Plan{
		Crashes:  []faults.RankCrash{{Rank: 1, At: sim.Time(sim.Millisecond)}},
		Lease:    sim.Millisecond,
		Watchdog: sim.Second,
	}
	// The recovery workload fills in[i] = rank + i%7 and reports the lowest
	// survivor's final allreduce sum.
	want := 0.0
	for i := 0; i < elems; i++ {
		for r := 0; r < nGPUs; r++ {
			if r != 1 {
				want += float64(r + i%7)
			}
		}
	}
	for _, backend := range []core.BackendID{core.MPIBackend, core.GpucclBackend, core.GpushmemBackend} {
		t.Run(backend.String(), func(t *testing.T) {
			pt, err := RunRecovery(RecoveryConfig{
				Model: m, Backend: backend, NGPUs: nGPUs, Plan: plan, Count: elems,
			})
			if err != nil {
				t.Fatal(err)
			}
			if pt.Err != "" || !pt.Completed {
				t.Fatalf("run did not complete: %+v", pt)
			}
			if pt.Crashes != 1 || pt.Survivors != nGPUs-1 {
				t.Fatalf("survivor accounting: %+v", pt)
			}
			if pt.Checksum != want {
				t.Fatalf("post-shrink checksum %v, want %v (reduction not over the 15 survivors)",
					pt.Checksum, want)
			}
		})
	}
}

// topoRecoveryPoint runs one hard-fault recovery cell on the given topology
// and shard count and returns its point.
func topoRecoveryPoint(t *testing.T, tc fabric.TopologyConfig, shards int) RecoveryPoint {
	t.Helper()
	const nGPUs = 32
	m := machine.Perlmutter()
	horizon := 4 * sim.Millisecond
	mt := *m
	mt.Topology = tc
	fc := mt.FabricConfig(mt.NodesFor(nGPUs))
	plan := faults.GenerateHard(11, 1, fc, horizon)
	pt, err := RunRecovery(RecoveryConfig{
		Model: &mt, Backend: core.MPIBackend, NGPUs: nGPUs,
		Plan: plan, Horizon: horizon, Shards: shards,
	})
	if err != nil {
		t.Fatalf("%s shards=%d: %v", tc.Describe(), shards, err)
	}
	if pt.Err != "" || !pt.Completed {
		t.Fatalf("%s shards=%d did not complete: %+v", tc.Describe(), shards, pt)
	}
	return pt
}

// TestRecoveryShardDeterminismSwitchedTopologies is the sharded hard-fault
// acceptance check (run under -race in CI): a 32-rank recovery cell with
// crashes, a crashed aggregation switch / dead global channel, and a dead
// intra-node route must produce bit-identical results at shards=1 and
// shards=4 on both switched topologies — the failure timetable, detector
// declarations, and liveness-aware route latencies are all pure functions of
// virtual time, never of shard interleaving. The failover counter proves the
// plan actually forced detours.
func TestRecoveryShardDeterminismSwitchedTopologies(t *testing.T) {
	topos := []fabric.TopologyConfig{
		{Kind: fabric.TopoFatTree}, // 8 nodes -> k=4, spare aggregations
		{Kind: fabric.TopoDragonfly, DragonflyHosts: 1, DragonflyRouters: 2, DragonflyGlobal: 2}, // 4 groups
	}
	for _, tc := range topos {
		t.Run(tc.Kind.String(), func(t *testing.T) {
			one := topoRecoveryPoint(t, tc, 1)
			four := topoRecoveryPoint(t, tc, 4)
			if !reflect.DeepEqual(one, four) {
				t.Fatalf("hard-fault run diverged across shard counts:\nshards=1: %+v\nshards=4: %+v", one, four)
			}
			if one.Failovers == 0 {
				t.Fatalf("no failovers on %s despite injected switch/link faults: %+v", tc.Describe(), one)
			}
			if one.Crashes == 0 || one.Recoveries == 0 {
				t.Fatalf("plan crashed no ranks or survivors never recovered: %+v", one)
			}
		})
	}
}
