package bench

import (
	"regexp"
	"testing"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/machine"
	"repro/internal/metrics"
)

// TestPrometheusNamesInjective runs real workloads over every backend (plus
// a hard-fault recovery run) to register every metric name the sim, fabric,
// mpi, gpuccl, gpushmem, and core layers produce, then asserts that
// SanitizeName maps the collected names injectively onto valid Prometheus
// names — two dotted names must never collapse into the same sample name,
// or /metrics would silently merge unrelated series.
func TestPrometheusNamesInjective(t *testing.T) {
	m := machine.Perlmutter()
	names := map[string]bool{}
	collect := func(r *metrics.Registry) {
		s := r.Snapshot()
		for _, c := range s.Counters {
			names[c.Name] = true
		}
		for _, g := range s.Gauges {
			names[g.Name] = true
		}
		for _, h := range s.Histograms {
			names[h.Name] = true
		}
	}

	// A latency (point-to-point protocol) and an allreduce (collective)
	// cell per backend cover the protocol and collective instruments of
	// each library plus the scheduler and fabric layers.
	for _, b := range []core.BackendID{core.MPIBackend, core.GpucclBackend, core.GpushmemBackend} {
		r := metrics.New()
		cfg := NetConfig{Model: m, Backend: b, API: machine.APIHost, Inter: true,
			Bytes: 4 << 10, Metrics: r}
		if _, err := Latency(cfg); err != nil {
			t.Fatalf("%s latency cell: %v", b, err)
		}
		collect(r)
		r = metrics.New()
		cfg.Metrics = r
		if _, err := AllReduceLatency(cfg, 8); err != nil {
			t.Fatalf("%s allreduce cell: %v", b, err)
		}
		collect(r)
	}
	// The UNICONN collective path on GPUSHMEM goes through teams, not the
	// PE-level native collectives, so register those with a native cell.
	r := metrics.New()
	if _, err := core.Launch(core.Config{Model: m, NGPUs: 4, Backend: core.GpushmemBackend, Metrics: r},
		func(env *core.Env) {
			env.SetDevice(env.NodeRank())
			b := gpu.AllocBuffer[float64](env.Device(), 8)
			s := env.DefaultStream()
			env.ShmemPE().AllReduceOnStream(env.Proc(), s, b.Whole(), b.Whole(), gpu.ReduceSum)
			env.StreamSynchronize(s)
		}); err != nil {
		t.Fatalf("gpushmem native allreduce cell: %v", err)
	}
	collect(r)

	// A recovery run under a crash plan registers the fault-path
	// instruments (core.crashes, detector latency, fabric failover).
	r = metrics.New()
	pt, err := RunRecovery(RecoveryConfig{
		Model: m, Backend: core.MPIBackend, Plan: crashPlan(), Metrics: r,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !pt.Completed {
		t.Fatalf("recovery cell broke: %+v", pt)
	}
	collect(r)

	// Sanity: the sweep above must have touched the major subsystems, or
	// the injectivity claim below is vacuous.
	for _, probe := range []string{"sim.events", "mpi.coll.allreduce", "gpuccl.coll.allreduce",
		"gpushmem.coll.h-allreduce", "core.crashes", "fabric.failover"} {
		if !names[probe] {
			t.Errorf("workloads did not register %q — extend the test's coverage", probe)
		}
	}

	valid := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	bySanitized := map[string]string{}
	for n := range names {
		sn := metrics.SanitizeName(n)
		if !valid.MatchString(sn) {
			t.Errorf("SanitizeName(%q) = %q is not a valid Prometheus name", n, sn)
		}
		if prev, ok := bySanitized[sn]; ok {
			t.Errorf("name collision: %q and %q both sanitize to %q", prev, n, sn)
		}
		bySanitized[sn] = n
	}
	t.Logf("checked %d registered names", len(names))
}
