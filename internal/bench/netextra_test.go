package bench

import (
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
)

func TestBiBandwidthExceedsOneWay(t *testing.T) {
	// Bidirectional aggregate must exceed the one-way rate (the ports are
	// full duplex) but stay at or below twice the one-way rate.
	for _, backend := range []core.BackendID{core.MPIBackend, core.GpucclBackend} {
		cfg := NetConfig{
			Model: machine.Perlmutter(), Backend: backend, API: machine.APIHost,
			Native: true, Bytes: 1 << 20, Iters: 10, Warmup: 2, Window: 8,
		}
		one, err := Bandwidth(cfg)
		if err != nil {
			t.Fatal(err)
		}
		bi, err := BiBandwidth(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if bi <= one {
			t.Errorf("%v: bidirectional %.1f GB/s not above one-way %.1f",
				backend, bi/1e9, one/1e9)
		}
		if bi > 2.2*one {
			t.Errorf("%v: bidirectional %.1f GB/s implausibly above 2x one-way %.1f",
				backend, bi/1e9, one/1e9)
		}
	}
}

func TestBiBandwidthRejectsDeviceAPI(t *testing.T) {
	_, err := BiBandwidth(NetConfig{
		Model: machine.Perlmutter(), Backend: core.GpushmemBackend,
		API: machine.APIDevice, Bytes: 1 << 10,
	})
	if err == nil {
		t.Fatal("device API accepted")
	}
}

func TestAllReduceLatencyGrowsWithRanksAndSize(t *testing.T) {
	base := NetConfig{
		Model: machine.Perlmutter(), Backend: core.GpucclBackend,
		API: machine.APIHost, Bytes: 8, Iters: 20, Warmup: 2,
	}
	l2, err := AllReduceLatency(base, 2)
	if err != nil {
		t.Fatal(err)
	}
	l8, err := AllReduceLatency(base, 8)
	if err != nil {
		t.Fatal(err)
	}
	if l8 <= l2 {
		t.Fatalf("allreduce latency did not grow with ranks: 2=%v 8=%v", l2, l8)
	}
	big := base
	big.Bytes = 4 << 20
	lbig, err := AllReduceLatency(big, 8)
	if err != nil {
		t.Fatal(err)
	}
	if lbig <= l8 {
		t.Fatalf("allreduce latency did not grow with size: 8B=%v 4MiB=%v", l8, lbig)
	}
}

func TestAllReduceLatencyAcrossBackends(t *testing.T) {
	m := machine.Perlmutter()
	for _, backend := range []core.BackendID{core.MPIBackend, core.GpucclBackend, core.GpushmemBackend} {
		cfg := NetConfig{Model: m, Backend: backend, API: machine.APIHost,
			Bytes: 1 << 10, Iters: 10, Warmup: 2}
		l, err := AllReduceLatency(cfg, 4)
		if err != nil {
			t.Fatalf("%v: %v", backend, err)
		}
		if l <= 0 {
			t.Fatalf("%v: latency %v", backend, l)
		}
	}
}
