package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/trace"
)

// profileOutputs runs a small multi-cell net profile and returns all three
// rendered artifacts (report, metrics JSON, Chrome trace).
func profileOutputs(t *testing.T) (report, metricsJSON, chromeTrace string) {
	t.Helper()
	rp, err := ProfileNet(NetConfig{
		Model: machine.Perlmutter(), Backend: core.MPIBackend,
		API: machine.APIHost, Native: true,
	}, []int64{8, 64, 512})
	if err != nil {
		t.Fatal(err)
	}
	var rep, js, tr strings.Builder
	if err := rp.WriteReport(&rep); err != nil {
		t.Fatal(err)
	}
	if err := rp.WriteMetricsJSON(&js); err != nil {
		t.Fatal(err)
	}
	if err := rp.WriteChromeTrace(&tr); err != nil {
		t.Fatal(err)
	}
	return rep.String(), js.String(), tr.String()
}

// TestProfileDeterministicAcrossWorkers is the uniconn-prof acceptance test:
// every artifact is byte-identical at 1 and 8 sweep workers. Run under -race
// it also proves the per-cell collector ownership rule holds (no shared
// observability state between worker goroutines).
func TestProfileDeterministicAcrossWorkers(t *testing.T) {
	t.Setenv(WorkersEnv, "1")
	rep1, js1, tr1 := profileOutputs(t)
	t.Setenv(WorkersEnv, "8")
	rep8, js8, tr8 := profileOutputs(t)
	if rep1 != rep8 {
		t.Errorf("report differs between 1 and 8 workers:\n--- w1 ---\n%s\n--- w8 ---\n%s", rep1, rep8)
	}
	if js1 != js8 {
		t.Errorf("metrics JSON differs between 1 and 8 workers")
	}
	if tr1 != tr8 {
		t.Errorf("chrome trace differs between 1 and 8 workers")
	}
	if !strings.Contains(rep1, "critical path:") || !strings.Contains(rep1, "per-rank attribution:") {
		t.Errorf("report is missing its analysis sections:\n%s", rep1)
	}
}

// TestProfileAttributionSums checks the acceptance invariant: per rank,
// compute + intra + inter + blocked == the cell's total virtual time,
// exactly.
func TestProfileAttributionSums(t *testing.T) {
	rp, err := ProfileNet(NetConfig{
		Model: machine.Perlmutter(), Backend: core.GpucclBackend,
		API: machine.APIHost, Native: true, Inter: true,
	}, []int64{64, 4096})
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range rp.Cells {
		rows := trace.Attribute(cell.Spans, cell.End)
		if len(rows) == 0 {
			t.Fatalf("cell %s: no attribution rows", cell.Label)
		}
		for _, r := range rows {
			sum := r.Compute + r.Intra + r.Inter + r.Blocked
			if sum != r.Total {
				t.Errorf("cell %s rank %d: attribution parts sum to %v, total %v",
					cell.Label, r.Rank, sum, r.Total)
			}
			if r.Total != sim.Duration(cell.End) {
				t.Errorf("cell %s rank %d: total %v != cell end %v",
					cell.Label, r.Rank, r.Total, sim.Duration(cell.End))
			}
		}
	}
}

// TestProfileMetricsPopulated checks the registry actually observed the run:
// the merged snapshot counts the sends and transfers the trace saw.
func TestProfileMetricsPopulated(t *testing.T) {
	rp, err := ProfileNet(NetConfig{
		Model: machine.Perlmutter(), Backend: core.MPIBackend,
		API: machine.APIHost, Native: true,
	}, []int64{8})
	if err != nil {
		t.Fatal(err)
	}
	merged := rp.Merged()
	for _, name := range []string{"sim.events", "mpi.sends.eager", "fabric.intra.transfers"} {
		found := false
		for _, c := range merged.Counters {
			if c.Name == name {
				found = c.Value > 0
				break
			}
		}
		if !found {
			t.Errorf("merged metrics missing (or zero) counter %s:\n%s", name, merged.Render())
		}
	}
}

// TestProfileGoldenReport pins the small Fig-2 cell report that CI's
// prof-smoke step diffs: `uniconn-prof -native -min 8 -max 8` must keep
// producing exactly these bytes. Regenerate with:
//
//	go run ./cmd/uniconn-prof -native -min 8 -max 8 > internal/bench/testdata/prof_fig2_small.golden
func TestProfileGoldenReport(t *testing.T) {
	rp, err := ProfileNet(NetConfig{
		Model: machine.Perlmutter(), Backend: core.MPIBackend,
		API: machine.APIHost, Native: true,
	}, Sizes(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "prof_fig2_small.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if got := rp.Render(); got != string(want) {
		t.Errorf("report drifted from golden (regenerate if intended):\n--- got ---\n%s\n--- want ---\n%s",
			got, want)
	}
}

// TestChaosSweepProfiled checks the profiled chaos sweep matches the plain
// one point-for-point and yields one frozen profile per severity.
func TestChaosSweepProfiled(t *testing.T) {
	cfg := NetConfig{Model: machine.Perlmutter(), Backend: core.MPIBackend,
		API: machine.APIHost, Native: true, Inter: true, Bytes: 8192}
	sev := []float64{0, 0.5}
	plain, err := ChaosSweep(cfg, sev, nil)
	if err != nil {
		t.Fatal(err)
	}
	points, profs, err := ChaosSweepProfiled(cfg, sev, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(plain) || len(profs) != len(sev) {
		t.Fatalf("got %d points, %d profiles; want %d of each", len(points), len(profs), len(sev))
	}
	for i := range plain {
		if points[i] != plain[i] {
			t.Errorf("severity %g: profiled point %+v != plain %+v", sev[i], points[i], plain[i])
		}
		if profs[i].End == 0 || len(profs[i].Spans) == 0 || profs[i].Metrics.Empty() {
			t.Errorf("severity %g: profile not populated: end=%v spans=%d",
				sev[i], profs[i].End, len(profs[i].Spans))
		}
	}
}
