package sim

import "testing"

// Benchmarks for the engine hot path: steady-state Advance (one event
// schedule + two context handoffs per call), engine-context callbacks, and
// a two-process gate ping-pong. Paired with TestAdvanceAllocationGuard,
// which pins the per-Advance allocation count at zero.

func BenchmarkProcAdvance(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	e.Spawn("adv", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Advance(Nanosecond)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	e.Close()
}

func BenchmarkAfterCallback(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	var n int
	var tick func()
	tick = func() {
		if n++; n < b.N {
			e.After(Nanosecond, tick)
		}
	}
	e.After(Nanosecond, tick)
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	e.Close()
}

func BenchmarkGatePingPong(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	ping := make([]*Gate, b.N+1)
	pong := make([]*Gate, b.N+1)
	for i := range ping {
		ping[i] = NewGate("ping")
		pong[i] = NewGate("pong")
	}
	e.Spawn("a", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			ping[i].Fire(e)
			pong[i].Wait(p)
		}
	})
	e.Spawn("b", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			ping[i].Wait(p)
			pong[i].Fire(e)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	e.Close()
}
