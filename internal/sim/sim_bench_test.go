package sim

import "testing"

// Benchmarks for the engine hot path: steady-state Advance (one event
// schedule + two context handoffs per call), engine-context callbacks, and
// a two-process gate ping-pong. Paired with TestAdvanceAllocationGuard,
// which pins the per-Advance allocation count at zero.

func BenchmarkProcAdvance(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	e.Spawn("adv", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Advance(Nanosecond)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	e.Close()
}

func BenchmarkAfterCallback(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	var n int
	var tick func()
	tick = func() {
		if n++; n < b.N {
			e.After(Nanosecond, tick)
		}
	}
	e.After(Nanosecond, tick)
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	e.Close()
}

// BenchmarkEngineManyProcs models the scheduler profile of a many-rank cell:
// 64 processes advancing in lock-step, so every event dispatch hands control
// to a different goroutine (no self-resume fast path applies).
func BenchmarkEngineManyProcs(b *testing.B) {
	b.ReportAllocs()
	const procs = 64
	e := NewEngine()
	iters := b.N/procs + 1
	for k := 0; k < procs; k++ {
		e.Spawn("p", func(p *Proc) {
			for i := 0; i < iters; i++ {
				p.Advance(Nanosecond)
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	e.Close()
}

// BenchmarkEngineSchedule stresses the priority queue: a deep backlog of
// pending timers (1024 outstanding callbacks at all times), so every push
// and pop walks the heap rather than the same-time fast path.
func BenchmarkEngineSchedule(b *testing.B) {
	b.ReportAllocs()
	const depth = 1024
	e := NewEngine()
	var n int
	var tick func()
	tick = func() {
		if n++; n < b.N {
			// Re-arm far in the future so the queue stays deep.
			e.After(depth*Nanosecond, tick)
		}
	}
	for i := 0; i < depth && i < b.N; i++ {
		e.After(Duration(i+1)*Nanosecond, tick)
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	e.Close()
}

// BenchmarkTimelineReserve pins the cost of booking one transfer on a port
// timeline (the fabric's innermost operation).
func BenchmarkTimelineReserve(b *testing.B) {
	b.ReportAllocs()
	tl := NewTimeline("port")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl.Reserve(Time(i), Nanosecond)
	}
}

func BenchmarkGatePingPong(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	ping := make([]*Gate, b.N+1)
	pong := make([]*Gate, b.N+1)
	for i := range ping {
		ping[i] = NewGate("ping")
		pong[i] = NewGate("pong")
	}
	e.Spawn("a", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			ping[i].Fire(e)
			pong[i].Wait(p)
		}
	})
	e.Spawn("b", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			ping[i].Wait(p)
			pong[i].Fire(e)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	e.Close()
}
