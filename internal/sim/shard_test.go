package sim

// Tests for the parallel-in-virtual-time shard group: the determinism
// property (shards=1 and shards=N produce identical per-node event streams
// and an identical merged (at, node) total order), merged deadlock
// diagnosis, and the conduit's window-boundary contract.

import (
	"errors"
	"strings"
	"testing"
)

// lcg is a deterministic 64-bit linear congruential generator; every stream
// in the property test derives from one so the workload is a pure function
// of the seed, never of goroutine scheduling.
type lcg uint64

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r) >> 33
}

// shardRec is one executed event in the property-test workload.
type shardRec struct {
	node int
	at   Time
	tag  uint64
}

// runShardWorkload drives a synthetic 2-node message-passing workload at
// the given shard count and returns the per-node execution logs. Each node
// runs a chain of local events; a quarter of the steps instead post a
// cross-node message through the conduit, timed at least one lookahead in
// the future (the fabric property the real engine guarantees via the
// minimum inter-node link α).
func runShardWorkload(t *testing.T, seed uint64, shards int) [][]shardRec {
	t.Helper()
	const (
		nodes     = 2
		lookahead = Duration(100)
		budget    = 200 // events per node before its chain stops
	)
	engines := make([]*Engine, shards)
	for i := range engines {
		engines[i] = NewEngine()
		defer engines[i].Close()
	}
	shardOf := make([]int, nodes)
	for n := range shardOf {
		shardOf[n] = n % shards
	}
	g := NewGroup(engines, shardOf, lookahead)
	cd := g.Conduit()

	logs := make([][]shardRec, nodes)
	rngs := make([]lcg, nodes)
	counts := make([]int, nodes)
	for n := 0; n < nodes; n++ {
		rngs[n] = lcg(seed + uint64(n)*0x9e3779b97f4a7c15)
		counts[n] = budget
	}

	// local executes one event on node's owning shard. All node-indexed
	// state (logs, rngs, counts) is touched only by the shard that owns
	// the node during a window, so the workload is race-free by the same
	// single-writer argument as the real engine.
	var local func(e *Engine, node int, tag uint64)
	local = func(e *Engine, node int, tag uint64) {
		logs[node] = append(logs[node], shardRec{node: node, at: e.Now(), tag: tag})
		if counts[node] <= 0 {
			return
		}
		counts[node]--
		r := &rngs[node]
		if r.next()%4 == 0 {
			dst := (node + 1) % nodes
			at := e.Now().Add(lookahead + Duration(r.next()%30))
			next := tag*31 + 1
			cd.Post(node, dst, at, func(de *Engine) { local(de, dst, next) })
			return
		}
		delta := Duration(r.next()%50 + 1)
		e.After(delta, func() { local(e, node, tag+1) })
	}

	for n := 0; n < nodes; n++ {
		n := n
		e := engines[shardOf[n]]
		e.After(Duration(n+1), func() { local(e, n, uint64(n)) })
	}
	if err := g.Run(); err != nil {
		t.Fatalf("seed %d shards %d: %v", seed, shards, err)
	}
	return logs
}

// mergeShardRecs produces the global (at, node) total order of a run. The
// per-node logs are already in execution order, and within one node times
// are non-decreasing, so a two-pointer merge suffices.
func mergeShardRecs(logs [][]shardRec) []shardRec {
	var out []shardRec
	idx := make([]int, len(logs))
	for {
		best := -1
		for n := range logs {
			if idx[n] >= len(logs[n]) {
				continue
			}
			r := logs[n][idx[n]]
			if best < 0 {
				best = n
				continue
			}
			b := logs[best][idx[best]]
			if r.at < b.at || (r.at == b.at && n < best) {
				best = n
			}
		}
		if best < 0 {
			return out
		}
		out = append(out, logs[best][idx[best]])
		idx[best]++
	}
}

// TestGroupShardDeterminism is the shard-count invariance property test:
// for several seeds, a 2-node conduit workload at shards=1 and shards=2
// must produce identical per-node event streams, and the merged (at, node)
// total orders must match event for event.
func TestGroupShardDeterminism(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42, 1234, 99999} {
		one := runShardWorkload(t, seed, 1)
		two := runShardWorkload(t, seed, 2)
		for n := range one {
			if len(one[n]) != len(two[n]) {
				t.Fatalf("seed %d node %d: %d events at shards=1, %d at shards=2",
					seed, n, len(one[n]), len(two[n]))
			}
			for i := range one[n] {
				if one[n][i] != two[n][i] {
					t.Fatalf("seed %d node %d event %d: %+v at shards=1, %+v at shards=2",
						seed, n, i, one[n][i], two[n][i])
				}
			}
		}
		m1, m2 := mergeShardRecs(one), mergeShardRecs(two)
		if len(m1) == 0 {
			t.Fatalf("seed %d: workload executed no events", seed)
		}
		for i := range m1 {
			if m1[i] != m2[i] {
				t.Fatalf("seed %d merged event %d: %+v at shards=1, %+v at shards=2",
					seed, i, m1[i], m2[i])
			}
		}
	}
}

// TestGroupDeadlockMerged checks that a group with blocked processes on
// several shards reports one DeadlockError merging every shard's waiting
// list, like the serial engine would for the same cell.
func TestGroupDeadlockMerged(t *testing.T) {
	e0, e1 := NewEngine(), NewEngine()
	defer e0.Close()
	defer e1.Close()
	g := NewGroup([]*Engine{e0, e1}, []int{0, 1}, 10)
	ga, gb := NewGate("never-a"), NewGate("never-b")
	e0.Spawn("p0", func(p *Proc) { ga.Wait(p) })
	e1.Spawn("p1", func(p *Proc) { gb.Wait(p) })
	err := g.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("Run = %v, want DeadlockError", err)
	}
	if len(dl.Waiting) != 2 {
		t.Fatalf("merged waiting list = %v, want both shards' procs", dl.Waiting)
	}
}

// TestConduitWindowBoundary checks the conservative-lookahead contract: a
// conduit message timed inside the current window is a protocol violation
// and must fail loudly (as a PanicError surfaced through Run), not deliver
// nondeterministically.
func TestConduitWindowBoundary(t *testing.T) {
	e0, e1 := NewEngine(), NewEngine()
	defer e0.Close()
	defer e1.Close()
	g := NewGroup([]*Engine{e0, e1}, []int{0, 1}, 50)
	cd := g.Conduit()
	e0.After(1, func() {
		// Window is [1, 51); posting at time 10 violates the boundary.
		cd.Post(0, 1, Time(10), func(*Engine) {})
	})
	err := g.Run()
	if err == nil || !strings.Contains(err.Error(), "violates window boundary") {
		t.Fatalf("Run = %v, want window-boundary violation", err)
	}
}
