package sim

import (
	"math/rand"
	"testing"
)

// Property test for the hand-rolled event queue: against a naive reference
// (a linear scan for the minimum (at, seq)), random interleavings of
// scheduling at the current instant (the nowQ fast path), scheduling into
// the future (the 4-ary heap), lazy cancellation, and popping must yield the
// exact same pop order. This is the ordering contract the whole simulator's
// determinism rests on.

// refQueue is the trivially-correct model: an unordered bag popped by
// linear minimum scan.
type refQueue struct{ evs []*event }

func (r *refQueue) push(ev *event) { r.evs = append(r.evs, ev) }

func (r *refQueue) pop() *event {
	if len(r.evs) == 0 {
		return nil
	}
	min := 0
	for i, ev := range r.evs {
		m := r.evs[min]
		if ev.at < m.at || (ev.at == m.at && ev.seq < m.seq) {
			min = i
		}
	}
	ev := r.evs[min]
	r.evs = append(r.evs[:min], r.evs[min+1:]...)
	return ev
}

func TestEventQueueMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var q eventQueue
		var ref refQueue
		var now Time
		var seq uint64

		popBoth := func() {
			got, want := q.pop(), ref.pop()
			if got != want {
				t.Fatalf("seed %d: pop mismatch: queue gave %+v, reference gave %+v", seed, got, want)
			}
			if got != nil {
				if got.at < now {
					t.Fatalf("seed %d: pop went backwards: %d < %d", seed, got.at, now)
				}
				now = got.at
			}
		}

		live := []*event{}
		for op := 0; op < 4000; op++ {
			switch r := rng.Intn(10); {
			case r < 5: // schedule: half at the current instant, half ahead
				at := now
				if rng.Intn(2) == 0 {
					at += Time(rng.Intn(64))
				}
				ev := &event{at: at, seq: seq}
				seq++
				if at == now {
					q.pushNow(ev)
				} else {
					q.pushHeap(ev)
				}
				ref.push(ev)
				live = append(live, ev)
			case r < 7: // lazily cancel something pending (interrupt/teardown)
				if len(live) > 0 {
					live[rng.Intn(len(live))].canceled = true
				}
			default:
				popBoth()
			}
			if q.len() != len(ref.evs) {
				t.Fatalf("seed %d: len mismatch: %d vs %d", seed, q.len(), len(ref.evs))
			}
		}
		for q.len() > 0 {
			popBoth()
		}
		if ref.pop() != nil {
			t.Fatalf("seed %d: reference still has events after queue drained", seed)
		}
	}
}

// TestEventQueueSameInstantFIFO pins the nowQ invariant directly: events
// scheduled at the current instant pop in scheduling order, after any heap
// event carrying the same timestamp (which necessarily predates them).
func TestEventQueueSameInstantFIFO(t *testing.T) {
	var q eventQueue
	// Heap event scheduled earlier (smaller seq) for t=10.
	q.pushHeap(&event{at: 10, seq: 1})
	// Clock reaches 10: same-instant events go through the ring.
	q.pushNow(&event{at: 10, seq: 5})
	q.pushNow(&event{at: 10, seq: 6})
	q.pushNow(&event{at: 10, seq: 7})
	var got []uint64
	for ev := q.pop(); ev != nil; ev = q.pop() {
		got = append(got, ev.seq)
	}
	want := []uint64{1, 5, 6, 7}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("pop order = %v, want %v", got, want)
		}
	}
}
