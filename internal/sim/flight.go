package sim

// Flight recorder: a bounded ring of the engine's most recent scheduler
// actions (event dispatches, parks, interrupts, kills, stop), kept so a
// chaos post-mortem can see the last moments of a failed run without paying
// for a full Chrome trace. One recorder serves one engine — per shard in a
// sharded run — and records nothing unless installed (SetFlightRecorder),
// so the disabled cost on the dispatch/park hot path is a single nil check.
//
// Recording is zero-allocation: entries live in a fixed preallocated ring,
// and the strings stored (process names, park reasons) are the static
// strings the engine already holds. A mutex guards the ring so a live
// telemetry endpoint (/debug/flight) can snapshot it mid-run from another
// goroutine; the lock is only ever contended by that read-only sampler,
// never by a second writer, because exactly one goroutine holds the
// engine's ball at a time.
//
// Determinism: every recorded quantity derives from virtual time and the
// engine's deterministic schedule. For a fixed configuration (including the
// shard count), the ring contents at any virtual time — and therefore the
// post-mortem dump — are bit-identical run to run.

import (
	"fmt"
	"io"
	"strings"
	"sync"
)

// FlightKind classifies one flight-recorder entry.
type FlightKind uint8

// The recorded scheduler actions.
const (
	FlightEvent     FlightKind = iota // a process resumed by the dispatcher
	FlightCallback                    // an engine-context callback ran
	FlightPark                        // a process parked (reason in Note)
	FlightInterrupt                   // Interrupt poisoned a process
	FlightKill                        // Kill crashed a process
	FlightSpawn                       // a process was spawned
	FlightStop                        // the run ended with an error (Note)
)

func (k FlightKind) String() string {
	switch k {
	case FlightEvent:
		return "event"
	case FlightCallback:
		return "callback"
	case FlightPark:
		return "park"
	case FlightInterrupt:
		return "interrupt"
	case FlightKill:
		return "kill"
	case FlightSpawn:
		return "spawn"
	case FlightStop:
		return "stop"
	default:
		return fmt.Sprintf("FlightKind(%d)", uint8(k))
	}
}

// FlightEntry is one recorded scheduler action.
type FlightEntry struct {
	// Seq is the entry's position in the recorder's total history (the
	// first recorded entry is 1); it survives ring wrap, so a dump shows
	// how much history was discarded.
	Seq uint64
	At  Time
	Kind FlightKind
	// Proc is the process the action concerns ("" for engine callbacks and
	// run-level stop entries).
	Proc string
	// Note carries the park reason, the interrupt/stop error text, or "".
	Note string
	// Dur is the park's duration detail (Advance length); negative when
	// the action carries none.
	Dur Duration
}

// DefaultFlightDepth is the ring capacity used when a non-positive depth is
// requested.
const DefaultFlightDepth = 256

// FlightRecorder is a fixed-capacity ring of FlightEntries.
type FlightRecorder struct {
	mu  sync.Mutex
	buf []FlightEntry
	n   uint64 // total entries ever recorded
}

// NewFlightRecorder returns a recorder holding the last depth entries
// (DefaultFlightDepth when depth <= 0).
func NewFlightRecorder(depth int) *FlightRecorder {
	if depth <= 0 {
		depth = DefaultFlightDepth
	}
	return &FlightRecorder{buf: make([]FlightEntry, depth)}
}

// SetFlightRecorder installs (or, with nil, removes) the engine's flight
// recorder. Install it before Run; the engine records event dispatches,
// parks, interrupts, kills, and an error stop.
func (e *Engine) SetFlightRecorder(fr *FlightRecorder) { e.fr = fr }

// FlightRecorder reports the installed recorder (nil when disabled).
func (e *Engine) FlightRecorder() *FlightRecorder { return e.fr }

// record appends one entry, overwriting the oldest when the ring is full.
// Strings must be static or already-allocated (process names, park reasons,
// pre-built error text): the hot path stores string headers only.
func (f *FlightRecorder) record(at Time, kind FlightKind, proc, note string, dur Duration) {
	f.mu.Lock()
	f.buf[f.n%uint64(len(f.buf))] = FlightEntry{
		Seq: f.n + 1, At: at, Kind: kind, Proc: proc, Note: note, Dur: dur,
	}
	f.n++
	f.mu.Unlock()
}

// Total reports how many entries were ever recorded (including overwritten
// ones).
func (f *FlightRecorder) Total() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// Snapshot copies the retained entries, oldest first. Safe to call from any
// goroutine, including mid-run.
func (f *FlightRecorder) Snapshot() []FlightEntry {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	depth := uint64(len(f.buf))
	count := f.n
	if count > depth {
		count = depth
	}
	out := make([]FlightEntry, 0, count)
	for i := f.n - count; i < f.n; i++ {
		out = append(out, f.buf[i%depth])
	}
	return out
}

// Dump renders the retained entries as a deterministic text block,
// oldest first: sequence number, virtual time, kind, process, detail.
func (f *FlightRecorder) Dump(w io.Writer) error {
	entries := f.Snapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "flight recorder: %d entries retained of %d recorded\n",
		len(entries), f.Total())
	for _, e := range entries {
		fmt.Fprintf(&b, "  #%-8d %-12s %-9s %-12s", e.Seq, e.At, e.Kind, e.Proc)
		if e.Note != "" {
			b.WriteString(" " + e.Note)
		}
		if e.Dur >= 0 && e.Kind == FlightPark {
			b.WriteString(" " + e.Dur.String())
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
