package sim

// Hard-fault delivery: the machinery that turns "peer of a crashed rank
// parks forever" into a typed error raised inside the blocked operation.
//
// Two delivery mechanisms exist, used by the failure detector in
// internal/core:
//
//   - Interrupt(err) poisons a process: the error is raised (as an abort
//     unwind, catchable with Protect) at the process's current or next
//     interruptible park. Waits on Gate/Counter/Semaphore/Rendezvous are
//     interruptible; Advance/Yield and Mailbox.Get (the stream-daemon idle
//     loop) are not, so a pending interrupt waits for a blocking
//     synchronization point instead of tearing through timed compute.
//   - Kill() crashes a process: it unwinds silently at its very next
//     scheduling point, whatever it is parked on, and counts as a clean
//     finish. This models the rank (and its GPU) dying.
//
// Both deregister the parked process from its wait primitive (the canceler
// hook), so a later Fire/Put/Arrive on that primitive cannot double-wake.

import (
	"fmt"
	"sort"
)

// canceler is implemented by synchronization primitives that can deregister
// a parked waiter when it is interrupted or killed mid-wait.
type canceler interface{ drop(p *Proc) }

// abortUnwind is the panic payload that carries an abort error up to the
// nearest Protect boundary (or, if none, out of the process as a run error).
type abortUnwind struct{ err error }

// crashedProc is the sentinel unwinding a killed process; the engine treats
// it as a clean finish.
type crashedProc struct{}

// Abort unwinds the calling process with err. The error is returned by the
// nearest enclosing Protect; with no Protect on the stack the process
// terminates and Engine.Run returns the error (wrapped, so errors.Is/As see
// it).
func Abort(err error) {
	if err == nil {
		panic("sim: Abort with nil error")
	}
	panic(abortUnwind{err: err})
}

// Protect runs fn and converts an Abort (or a delivered Interrupt) inside it
// into a returned error, leaving the process alive. Other panics — including
// the engine's own kill/crash sentinels — propagate.
func Protect(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if a, ok := r.(abortUnwind); ok {
				err = a.err
				return
			}
			panic(r)
		}
	}()
	fn()
	return nil
}

// RankFailedError is delivered to every process blocked on a crashed rank
// once the failure detector's lease expires. Rank is the failed world rank;
// At is the virtual time of detection (not of the crash itself).
type RankFailedError struct {
	Rank int
	At   Time
}

func (e *RankFailedError) Error() string {
	return fmt.Sprintf("sim: rank %d declared failed at %v", e.Rank, e.At)
}

// Interrupt poisons the process with err: if it is parked interruptibly the
// wait is cancelled and the error raised there, now; otherwise the error is
// raised at the process's next interruptible wait. Only the first interrupt
// is kept until delivered (or cleared). Interrupting a finished or crashed
// process is a no-op. Must be called while holding the ball (from another
// process or an engine callback).
func (p *Proc) Interrupt(err error) {
	if err == nil {
		panic("sim: Interrupt with nil error")
	}
	if p.crashed || !p.eng.alive[p] || p.pendingErr != nil {
		return
	}
	if p.eng.m != nil {
		p.eng.m.interrupts.Inc()
	}
	if p.eng.fr != nil {
		p.eng.fr.record(p.eng.now, FlightInterrupt, p.name, err.Error(), -1)
	}
	p.pendingErr = err
	if p.parked && p.interruptible && !p.wakePending {
		if p.waitOn != nil {
			p.waitOn.drop(p)
			p.waitOn = nil
		}
		p.eng.wake(p, p.eng.now, "interrupt")
	}
}

// Kill crashes the process: it unwinds silently at its next scheduling
// point, counting as a clean finish (the simulation can still complete).
// Killing a finished or already-crashed process is a no-op. Must be called
// while holding the ball.
func (p *Proc) Kill() {
	if p.crashed || !p.eng.alive[p] {
		return
	}
	if p.eng.m != nil {
		p.eng.m.kills.Inc()
	}
	if p.eng.fr != nil {
		p.eng.fr.record(p.eng.now, FlightKill, p.name, "", -1)
	}
	p.crashed = true
	if p.parked && !p.wakePending {
		if p.waitOn != nil {
			p.waitOn.drop(p)
			p.waitOn = nil
		}
		p.eng.wake(p, p.eng.now, "crash")
	}
}

// Interrupted reports the pending (undelivered) interrupt error, if any.
func (p *Proc) Interrupted() error { return p.pendingErr }

// ClearInterrupt discards a pending interrupt. Recovery paths call it after
// consuming the failure (e.g. before rebuilding a communicator) so a poison
// delivered while the process was busy does not abort post-recovery work.
func (p *Proc) ClearInterrupt() { p.pendingErr = nil }

// checkInterrupt raises a pending interrupt as an abort unwind. Called by
// the interruptible primitives at wait entry and after resuming.
func (p *Proc) checkInterrupt() {
	if p.pendingErr != nil {
		err := p.pendingErr
		p.pendingErr = nil
		panic(abortUnwind{err: err})
	}
}

// parkOn parks on a primitive that can deregister the waiter (drop) if the
// process is interrupted or killed mid-wait. interruptible selects whether
// Interrupt may cancel this park; Kill always may.
func (p *Proc) parkOn(why string, on canceler, interruptible bool) {
	p.waitOn, p.interruptible = on, interruptible
	p.park(why)
	p.waitOn, p.interruptible = nil, false
}

// InterruptAll poisons every live process with err, in spawn order (so
// delivery order is deterministic). The failure detector uses it to revoke
// all in-flight operations when a rank is declared failed.
func (e *Engine) InterruptAll(err error) {
	procs := make([]*Proc, 0, len(e.alive))
	for p := range e.alive {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i].id < procs[j].id })
	for _, p := range procs {
		p.Interrupt(err)
	}
}
