package sim

// Engine metrics: scheduler-level counters resolved once at SetMetrics so
// the hot paths (Run's dispatch loop, Proc.parkFor) pay exactly one nil
// check when metrics are disabled and zero allocations either way. The
// allocation guard in sim_test.go pins the disabled-mode cost.

import (
	"strings"

	"repro/internal/metrics"
)

// parkClasses are the known first words of park reasons (see cond.go and
// the Advance/Yield parks). Reasons are classified by their first word so
// per-label reasons like "gate send 0->1 tag 5" do not explode counter
// cardinality.
var parkClasses = []string{
	"advance", "yield", "gate", "counter", "mailbox", "semaphore", "rendezvous",
}

// engineMetrics holds the engine's pre-resolved instruments. A nil
// *engineMetrics means metrics are disabled.
type engineMetrics struct {
	events     *metrics.Counter // every event dispatched by Run
	callbacks  *metrics.Counter // the subset that were engine callbacks
	spawns     *metrics.Counter
	interrupts *metrics.Counter
	kills      *metrics.Counter
	parks      map[string]*metrics.Counter // by park-reason class
	parkOther  *metrics.Counter            // reasons outside parkClasses
}

// SetMetrics installs a registry on the engine; nil disables collection
// (the default). Must be called before Run.
func (e *Engine) SetMetrics(r *metrics.Registry) {
	if r == nil {
		e.m = nil
		return
	}
	m := &engineMetrics{
		events:     r.Counter("sim.events"),
		callbacks:  r.Counter("sim.callbacks"),
		spawns:     r.Counter("sim.spawns"),
		interrupts: r.Counter("sim.interrupts"),
		kills:      r.Counter("sim.kills"),
		parks:      make(map[string]*metrics.Counter, len(parkClasses)),
		parkOther:  r.Counter("sim.parks.other"),
	}
	for _, class := range parkClasses {
		m.parks[class] = r.Counter("sim.parks." + class)
	}
	e.m = m
}

// countPark classifies a park reason by its first word and bumps the class
// counter. The substring is a slice of the static reason string, so the
// lookup performs no allocation.
func (m *engineMetrics) countPark(why string) {
	class := why
	if i := strings.IndexByte(why, ' '); i >= 0 {
		class = why[:i]
	}
	if c := m.parks[class]; c != nil {
		c.Inc()
		return
	}
	m.parkOther.Inc()
}
