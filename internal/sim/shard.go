package sim

// Parallel-in-virtual-time execution: a Group advances several Engines
// (shards) in conservative lookahead windows, MGSim-style.
//
// The protocol exploits a fabric property: every cross-node message pays at
// least the minimum inter-node link latency α before it can be observed by
// the destination. With ranks partitioned by cluster node, a window
// [T0, T0+α) — where T0 is the globally earliest pending event — can be
// executed by every shard in parallel: no message posted inside the window
// can be delivered inside it, so shards cannot affect each other until the
// next barrier.
//
// Determinism argument (see DESIGN.md §12 for the full version):
//
//  1. T0 is the min over all shards' next event times, so the sequence of
//     window boundaries is a pure function of the event set — independent
//     of the shard count.
//  2. Every event executes in the unique window containing its timestamp,
//     in the per-shard (at, seq) total order. Within one node, relative seq
//     order is preserved under any sharding by induction over windows.
//  3. Cross-shard messages travel through the Conduit, which stamps each
//     with (at, srcNode, per-source-node seq) — all shard-count-invariant
//     quantities — and injects them at the barrier in that sorted order.
//     Injection assigns fresh destination seqs deterministically.
//
// Together these make a sharded run's virtual-time results bit-identical at
// any shard count ≥ 1 (shards=1 still runs the windowed protocol, so the
// CI byte-compares pin 1-vs-N equality).

import (
	"fmt"
	"sort"
)

// message is one cross-shard event in flight: a callback to run on the
// destination shard's engine at virtual time at. The (at, srcNode, seq)
// triple is its deterministic merge key.
type message struct {
	at       Time
	srcNode  int
	seq      uint64
	dstShard int
	fn       func(*Engine)
}

// Conduit carries cross-node messages between shards. During a window each
// shard appends to its own outbox (single writer, no locking); between
// windows the group drains all outboxes, sorts by (at, srcNode, seq), and
// injects the callbacks into the destination engines. The window-boundary
// check in Post is the conservative-lookahead contract: a message timed
// inside the current window would have to be delivered into a window that
// is already executing in parallel, which would break determinism — it can
// only arise from a lookahead smaller than the real minimum link latency.
type Conduit struct {
	engines   []*Engine
	shardOf   []int    // node -> shard
	outbox    [][]message // per source shard
	seqs      []uint64 // per source node
	windowEnd Time
}

// Shards reports the shard count.
func (c *Conduit) Shards() int { return len(c.engines) }

// ShardOfNode reports which shard owns a cluster node.
func (c *Conduit) ShardOfNode(node int) int { return c.shardOf[node] }

// Post sends fn to the shard owning dstNode, to run at absolute virtual
// time at. It must be called from the shard owning srcNode, while that
// shard executes a window. at must be at or beyond the current window end.
func (c *Conduit) Post(srcNode, dstNode int, at Time, fn func(*Engine)) {
	if at < c.windowEnd {
		panic(fmt.Sprintf("sim: conduit message at %v violates window boundary %v (lookahead too large for this link)", at, c.windowEnd))
	}
	s := c.shardOf[srcNode]
	c.seqs[srcNode]++
	c.outbox[s] = append(c.outbox[s], message{at: at, srcNode: srcNode, seq: c.seqs[srcNode], dstShard: c.shardOf[dstNode], fn: fn})
}

// inject drains every outbox and merges the messages into the destination
// engines in (at, srcNode, seq) order. Called by the group between windows,
// while no shard is running. The sort key is unique (seq is per srcNode),
// so the merge order — and therefore the destination seq assignment — is a
// pure function of the message set, not of shard scheduling.
func (c *Conduit) inject() {
	var all []message
	for i := range c.outbox {
		all = append(all, c.outbox[i]...)
		c.outbox[i] = c.outbox[i][:0]
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].at != all[j].at {
			return all[i].at < all[j].at
		}
		if all[i].srcNode != all[j].srcNode {
			return all[i].srcNode < all[j].srcNode
		}
		return all[i].seq < all[j].seq
	})
	for _, m := range all {
		m := m
		e := c.engines[m.dstShard]
		e.InjectAt(m.at, func() { m.fn(e) })
	}
}

// Group advances a set of shard engines in conservative lookahead windows.
// Each shard runs on its own persistent worker goroutine; the group
// computes window boundaries, relays conduit traffic, and decides
// termination. All virtual-time state stays confined to exactly one
// goroutine at a time (a shard's worker during windows, the group's
// goroutine between them), with the command/done channels providing the
// happens-before edges.
type Group struct {
	engines   []*Engine
	conduit   *Conduit
	lookahead Duration
}

// NewGroup builds a group over the given engines. shardOfNode maps each
// cluster node to the shard index owning it; lookahead is the guaranteed
// minimum cross-node delivery delay (the minimum inter-node link α) and
// must be positive.
func NewGroup(engines []*Engine, shardOfNode []int, lookahead Duration) *Group {
	if lookahead <= 0 {
		panic("sim: NewGroup requires a positive lookahead")
	}
	for _, s := range shardOfNode {
		if s < 0 || s >= len(engines) {
			panic("sim: NewGroup shard map references a missing engine")
		}
	}
	g := &Group{engines: engines, lookahead: lookahead}
	g.conduit = &Conduit{
		engines: engines,
		shardOf: append([]int(nil), shardOfNode...),
		outbox:  make([][]message, len(engines)),
		seqs:    make([]uint64, len(shardOfNode)),
	}
	return g
}

// Conduit returns the group's cross-shard message channel, to be installed
// wherever the communication layers route inter-node traffic.
func (g *Group) Conduit() *Conduit { return g.conduit }

// End reports the latest virtual time reached by any shard — the sharded
// equivalent of Engine.Now after Run, and shard-count invariant (it is the
// timestamp of the globally last event).
func (g *Group) End() Time {
	var t Time
	for _, e := range g.engines {
		if e.now > t {
			t = e.now
		}
	}
	return t
}

// windowResult is one shard's outcome for one window.
type windowResult struct {
	shard int
	err   error
}

// Run executes the simulation to completion across all shards. It returns
// nil on clean completion, a merged *DeadlockError if live processes remain
// on any shard with no pending events anywhere, or the terminal error of
// the lowest-indexed failing shard (a deterministic choice when several
// shards fail in the same window).
func (g *Group) Run() error {
	n := len(g.engines)
	cmds := make([]chan Time, n)
	dones := make(chan windowResult)
	for i := 0; i < n; i++ {
		cmds[i] = make(chan Time)
		go func(i int) {
			e := g.engines[i]
			for end := range cmds[i] {
				dones <- windowResult{shard: i, err: e.RunWindow(end)}
			}
		}(i)
	}
	defer func() {
		for _, c := range cmds {
			close(c)
		}
	}()
	for {
		g.conduit.inject()
		t0 := Time(-1)
		for _, e := range g.engines {
			if ev := e.q.peek(); ev != nil && (t0 < 0 || ev.at < t0) {
				t0 = ev.at
			}
		}
		if t0 < 0 {
			// No pending events on any shard and nothing in flight: the
			// simulation is over. Live procs anywhere make it a deadlock,
			// diagnosed exactly like the serial engine but merged.
			live := 0
			for _, e := range g.engines {
				live += e.live
			}
			if live > 0 {
				var waiting []string
				for _, e := range g.engines {
					waiting = append(waiting, e.waitingList()...)
				}
				sort.Strings(waiting)
				return &DeadlockError{At: g.End(), Waiting: waiting}
			}
			return nil
		}
		end := t0.Add(g.lookahead)
		g.conduit.windowEnd = end
		for _, c := range cmds {
			c <- end
		}
		var firstErr error
		firstShard := -1
		for k := 0; k < n; k++ {
			r := <-dones
			if r.err != nil && (firstShard < 0 || r.shard < firstShard) {
				firstErr, firstShard = r.err, r.shard
			}
		}
		if firstErr != nil {
			return firstErr
		}
	}
}
