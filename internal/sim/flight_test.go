package sim

import (
	"errors"
	"strings"
	"testing"
)

// TestFlightRecorderCapture runs a small simulation and checks the recorder
// saw the expected action kinds in virtual-time order.
func TestFlightRecorderCapture(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	fr := NewFlightRecorder(64)
	e.SetFlightRecorder(fr)
	e.Spawn("a", func(p *Proc) {
		p.Advance(3)
		p.Advance(5)
	})
	e.After(4, func() {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	entries := fr.Snapshot()
	if len(entries) == 0 {
		t.Fatal("no entries recorded")
	}
	var kinds []FlightKind
	last := Time(-1)
	for i, en := range entries {
		kinds = append(kinds, en.Kind)
		if en.At < last {
			t.Fatalf("entry %d time went backwards: %v after %v", i, en.At, last)
		}
		last = en.At
		if en.Seq != uint64(i+1) {
			t.Fatalf("entry %d has seq %d, want %d", i, en.Seq, i+1)
		}
	}
	want := []FlightKind{FlightSpawn, FlightEvent, FlightPark, FlightEvent, FlightPark, FlightCallback, FlightEvent}
	if len(kinds) != len(want) {
		t.Fatalf("recorded %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("entry %d is %v, want %v (all: %v)", i, kinds[i], want[i], kinds)
		}
	}
}

// TestFlightRecorderRing checks the ring keeps only the newest entries and
// Total keeps counting past the wrap.
func TestFlightRecorderRing(t *testing.T) {
	fr := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		fr.record(Time(i), FlightEvent, "p", "", -1)
	}
	if fr.Total() != 10 {
		t.Fatalf("total = %d, want 10", fr.Total())
	}
	entries := fr.Snapshot()
	if len(entries) != 4 {
		t.Fatalf("retained %d entries, want 4", len(entries))
	}
	for i, en := range entries {
		if en.At != Time(6+i) || en.Seq != uint64(7+i) {
			t.Fatalf("entry %d = {at %v seq %d}, want {at %v seq %d}", i, en.At, en.Seq, Time(6+i), 7+i)
		}
	}
}

// TestFlightRecorderStopAndInterrupt checks that hard-fault machinery and an
// error stop land in the ring (the post-mortem content chaos dumps rely on).
func TestFlightRecorderStopAndInterrupt(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	fr := NewFlightRecorder(0) // default depth
	e.SetFlightRecorder(fr)
	g := NewGate("never")
	victim := e.Spawn("victim", func(p *Proc) {
		g.Wait(p)
	})
	e.Spawn("killer", func(p *Proc) {
		p.Advance(10)
		victim.Interrupt(errors.New("poisoned"))
	})
	err := e.Run()
	if err == nil {
		t.Fatal("expected the interrupted wait to abort the run")
	}
	var sawInterrupt, sawStop bool
	for _, en := range fr.Snapshot() {
		switch en.Kind {
		case FlightInterrupt:
			sawInterrupt = true
			if en.Proc != "victim" || !strings.Contains(en.Note, "poisoned") {
				t.Fatalf("interrupt entry wrong: %+v", en)
			}
		case FlightStop:
			sawStop = true
			if !strings.Contains(en.Note, "poisoned") {
				t.Fatalf("stop entry missing error text: %+v", en)
			}
		}
	}
	if !sawInterrupt || !sawStop {
		t.Fatalf("missing interrupt/stop entries: interrupt=%v stop=%v", sawInterrupt, sawStop)
	}

	var b strings.Builder
	if err := fr.Dump(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"flight recorder:", "interrupt", "victim", "stop"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

// TestFlightRecorderDeterministic runs the same simulation twice and
// byte-compares the dumps: everything recorded is virtual-time state.
func TestFlightRecorderDeterministic(t *testing.T) {
	run := func() string {
		e := NewEngine()
		defer e.Close()
		fr := NewFlightRecorder(32)
		e.SetFlightRecorder(fr)
		c := NewCounter("steps", 0)
		e.Spawn("sender", func(p *Proc) {
			for i := 0; i < 8; i++ {
				p.Advance(2)
				c.Add(e, 1)
			}
		})
		e.Spawn("receiver", func(p *Proc) {
			for i := uint64(1); i <= 8; i++ {
				c.WaitGE(p, i)
				p.Advance(1)
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := fr.Dump(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("flight dumps differ between identical runs:\n--- a\n%s--- b\n%s", a, b)
	}
}

// TestFlightRecorderZeroAlloc pins the recording cost: steady-state Advance
// with the recorder installed must still allocate nothing (the ring is
// preallocated and only static strings are stored).
func TestFlightRecorderZeroAlloc(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	e.SetFlightRecorder(NewFlightRecorder(128))
	const iters = 2000
	var avg float64
	e.Spawn("adv", func(p *Proc) {
		p.Advance(1) // reach steady state before measuring
		avg = testing.AllocsPerRun(iters, func() {
			p.Advance(1)
		})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if avg != 0 {
		t.Fatalf("Advance with flight recording allocates %.2f objects/op, want 0", avg)
	}
}
