// Package sim implements a deterministic, process-oriented discrete-event
// simulation engine. It is the substrate on which the simulated GPU runtime,
// cluster fabric, and communication backends execute.
//
// Every simulated activity (a rank's host program, a GPU stream, a NIC
// progress engine) is a Proc: a goroutine that runs cooperatively under the
// engine's scheduler. Exactly one Proc executes at any instant, and runnable
// Procs are ordered by (virtual time, sequence number), so a simulation is
// bit-for-bit deterministic across runs and platforms. Virtual time is kept
// in integer nanoseconds.
//
// Scheduling uses a direct handoff: the goroutine that holds the run token
// (the "ball") pops the next event itself and either continues running (its
// own wake — zero scheduler transfers), runs an engine callback inline, or
// hands the ball straight to the next process with a single channel send.
// The Run goroutine only parks until the simulation stops; it is not an
// intermediary on the event path. See DESIGN.md §11 for the protocol and
// its invariants.
package sim

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds. It mirrors
// time.Duration but is kept distinct so wall-clock and virtual quantities
// cannot be mixed accidentally.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Micros is a convenience constructor for fractional microseconds.
func Micros(us float64) Duration { return Duration(us * float64(Microsecond)) }

// Nanos is a convenience constructor for fractional nanoseconds, rounding to
// the integer grid (half away from zero, correct for negative inputs too).
func Nanos(ns float64) Duration { return Duration(math.Round(ns)) }

// Seconds reports the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Micros reports the duration as floating-point microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

func (d Duration) String() string {
	if d < 0 {
		if d == math.MinInt64 { // -d would overflow; seconds are exact enough here
			return fmt.Sprintf("%.6gs", d.Seconds())
		}
		return "-" + (-d).String()
	}
	switch {
	case d >= Second:
		return fmt.Sprintf("%.6gs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.6gms", float64(d)/float64(Millisecond))
	case d >= Microsecond:
		return fmt.Sprintf("%.6gus", d.Micros())
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

// Add offsets a time by a duration.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub reports the duration between two times.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

func (t Time) String() string { return Duration(t).String() }

// freePoolCap bounds the recycled-event free list. A burst of scheduling
// (a wide collective fan-out, a chaos storm) may transiently allocate many
// events, but once dispatched only this many are kept for reuse; the rest
// become garbage instead of pinning memory for the life of the engine.
const freePoolCap = 1024

// Engine owns the virtual clock and the event queue.
type Engine struct {
	now  Time
	seq  uint64
	q    eventQueue
	free []*event // recycled events, capped at freePoolCap (steady-state zero-alloc)

	live  int // non-daemon procs spawned and not yet finished
	alive map[*Proc]bool

	// Stop protocol. While processes run, the Run goroutine parks on driver;
	// whichever goroutine ends the simulation (queue drained, watchdog,
	// panic, abort) records stopErr and sends one token. stopLocal covers
	// the case where Run's own dispatch call ends the simulation before any
	// handoff happened, so no token is in flight. Both fields are only
	// touched by the ball holder, and the driver channel send/receive orders
	// stopErr between goroutines.
	driver    chan struct{}
	stopErr   error
	stopLocal bool

	// Teardown. dead is closed by Close to unwind parked goroutines; each
	// acknowledges on exited without touching any other engine state.
	dead   chan struct{}
	exited chan struct{}
	closed bool

	running  bool
	trace    func(string)
	deadline Time            // virtual-time watchdog; 0 disables
	m        *engineMetrics  // nil when metrics are disabled (see metrics.go)
	fr       *FlightRecorder // nil when flight recording is disabled (see flight.go)

	// Windowed execution (see shard.go). limit, when nonzero, is the
	// exclusive upper bound on event times the current RunWindow call may
	// dispatch; paused records that the window ended with events (or live
	// procs) remaining rather than the simulation finishing.
	limit  Time
	paused bool
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{
		alive:  map[*Proc]bool{},
		driver: make(chan struct{}),
		dead:   make(chan struct{}),
		exited: make(chan struct{}),
	}
}

// Close terminates all remaining process goroutines (including daemons).
// Call it once the simulation is finished; the engine is unusable afterward.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	close(e.dead)
	// Every remaining goroutine is parked in a select on its resume channel
	// and e.dead; each unwinds via the killed sentinel and acknowledges
	// here. The killed path mutates no engine state, so reading alive while
	// they unwind is safe.
	for n := len(e.alive); n > 0; n-- {
		<-e.exited
	}
	clear(e.alive)
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// SetWatchdog arms the virtual-time watchdog: when the clock would advance
// past deadline, Run stops and returns a *TimeoutError carrying the same
// parked-process diagnostics as a deadlock. A zero deadline disables the
// watchdog. Intended for fault-injection runs where a stalled port or a
// retry loop can make a simulation creep forward forever without ever
// deadlocking.
func (e *Engine) SetWatchdog(deadline Time) { e.deadline = deadline }

// SetTrace installs a callback receiving one line per scheduler action.
// Intended for debugging; nil disables tracing.
func (e *Engine) SetTrace(fn func(string)) { e.trace = fn }

func (e *Engine) tracef(format string, args ...any) {
	if e.trace != nil {
		e.trace(fmt.Sprintf("[%s] ", e.now) + fmt.Sprintf(format, args...))
	}
}

// Proc is a simulated process: a goroutine scheduled cooperatively by the
// engine. All blocking methods (Advance, waits on conditions) must be called
// from the process's own goroutine.
type Proc struct {
	eng         *Engine
	name        string
	resume      chan struct{}
	id          uint64
	daemon      bool
	wakePending bool

	// pendingEv is the process's outstanding wake (or spawn) event, if any.
	// At most one exists at a time (wake enforces this). If the process
	// finishes while one is pending, it is canceled in place rather than
	// dug out of the heap.
	pendingEv *event

	// Park bookkeeping, kept as plain fields (not an engine-side map) so
	// the park/wake hot path performs no map operations and no string
	// formatting. parkWhy must be a static (pre-built) string; parkDur,
	// when >= 0, is appended lazily by waitingList for diagnostics.
	parked  bool
	parkWhy string
	parkDur Duration

	// Hard-fault state (see interrupt.go). waitOn lets Interrupt/Kill
	// deregister the process from the primitive it is parked on;
	// interruptible gates whether Interrupt may cancel the current park;
	// pendingErr is an undelivered interrupt; crashed marks a killed
	// process that unwinds at its next scheduling point.
	waitOn        canceler
	interruptible bool
	pendingErr    error
	crashed       bool
}

// Name reports the name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Engine reports the owning engine.
func (p *Proc) Engine() *Engine { return p.eng }

// Now reports the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Spawn creates a process that will start running at the current virtual
// time, after currently runnable processes with earlier sequence numbers.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.spawnAt(e.now, name, fn, false)
}

// SpawnDaemon creates a background process (e.g. a GPU stream executor or a
// NIC progress engine). Daemons do not count toward completion: a simulation
// finishes cleanly even while daemons are parked, and Close terminates them.
func (e *Engine) SpawnDaemon(name string, fn func(p *Proc)) *Proc {
	return e.spawnAt(e.now, name, fn, true)
}

// SpawnAt creates a process that starts at time t (which must not be in the
// past).
func (e *Engine) SpawnAt(t Time, name string, fn func(p *Proc)) *Proc {
	return e.spawnAt(t, name, fn, false)
}

// killed is the sentinel panic value used by Close to unwind daemon
// goroutines.
type killed struct{}

func (e *Engine) spawnAt(t Time, name string, fn func(p *Proc), daemon bool) *Proc {
	if t < e.now {
		panic(fmt.Sprintf("sim: SpawnAt(%v) in the past (now %v)", t, e.now))
	}
	// resume is buffered so a handoff to a goroutine that has not yet
	// reached its first select (spawn start) deposits the token without
	// blocking the sender. At most one token is ever outstanding
	// (wakePending invariant).
	p := &Proc{eng: e, name: name, resume: make(chan struct{}, 1), id: e.seq, daemon: daemon}
	if !daemon {
		e.live++
	}
	if e.m != nil {
		e.m.spawns.Inc()
	}
	if e.fr != nil {
		e.fr.record(e.now, FlightSpawn, name, "", -1)
	}
	e.alive[p] = true
	go func() {
		defer func() {
			r := recover()
			if _, ok := r.(killed); ok {
				// Unwound by Close: the engine is being torn down
				// concurrently, so only acknowledge — no state changes.
				e.exited <- struct{}{}
				return
			}
			// The goroutine still holds the ball here; procExit retires the
			// process and continues dispatching on this stack.
			switch v := r.(type) {
			case nil:
				e.procExit(p, nil, nil)
			case crashedProc:
				// A killed (crashed) process counts as a clean finish:
				// the simulation keeps running on the survivors.
				e.procExit(p, nil, nil)
			case abortUnwind:
				e.procExit(p, nil, v.err)
			default:
				e.procExit(p, v, nil)
			}
		}()
		select {
		case <-p.resume:
		case <-e.dead:
			panic(killed{})
		}
		if p.crashed {
			panic(crashedProc{})
		}
		fn(p)
	}()
	e.schedule(t, p, nil, "spawn")
	return p
}

// schedule enqueues an event. Exactly one of proc/fn must be non-nil.
// Events come from the engine's free list when possible, so steady-state
// scheduling does not allocate; same-instant events take the FIFO ring
// instead of the heap.
func (e *Engine) schedule(t Time, p *Proc, fn func(), why string) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v (%s)", t, e.now, why))
	}
	e.seq++
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.at, ev.seq, ev.proc, ev.fn, ev.canceled = t, e.seq, p, fn, false
	} else {
		ev = &event{at: t, seq: e.seq, proc: p, fn: fn}
	}
	if p != nil {
		p.pendingEv = ev
	}
	if t == e.now {
		e.q.pushNow(ev)
	} else {
		e.q.pushHeap(ev)
	}
}

// release returns a popped event to the free list, unless the pool is full.
func (e *Engine) release(ev *event) {
	if len(e.free) < freePoolCap {
		ev.proc, ev.fn = nil, nil
		e.free = append(e.free, ev)
	}
}

// After runs fn in engine context after delay d. fn must not block. It is
// safe to call from engine callbacks and from process goroutines while they
// hold the ball.
func (e *Engine) After(d Duration, fn func()) {
	e.schedule(e.now.Add(d), nil, fn, "after")
}

// wake schedules p to resume at time t. It panics if a wakeup is already
// pending: a parked process must be woken exactly once.
func (e *Engine) wake(p *Proc, t Time, why string) {
	if p.wakePending {
		panic(fmt.Sprintf("sim: double wake of %s (%s)", p.name, why))
	}
	p.wakePending = true
	e.schedule(t, p, nil, why)
}

// dispatch runs the event loop on the calling goroutine until the ball is
// handed to another process or the simulation stops. self identifies the
// calling goroutine's process (nil for the Run goroutine). It returns true
// when the next runnable event resumes self — the fast path: the caller
// just keeps executing, with no scheduler transfer at all. Engine callbacks
// (pure-delay timers, deferred deliveries) run inline on this stack, so
// they never wake a goroutine either.
func (e *Engine) dispatch(self *Proc) (resumedSelf bool) {
	for {
		if e.limit != 0 {
			// Windowed mode: never pop past the window boundary. An empty
			// queue pauses rather than deadlocks — with multiple shards,
			// events for our procs may still arrive through the conduit,
			// so termination is decided by the group, not locally.
			if next := e.q.peek(); next == nil || next.at >= e.limit {
				e.paused = true
				e.stop(self, nil)
				return false
			}
		}
		ev := e.q.pop()
		if ev == nil {
			if e.live > 0 {
				e.stop(self, &DeadlockError{At: e.now, Waiting: e.waitingList()})
			} else {
				e.stop(self, nil)
			}
			return false
		}
		if ev.at < e.now {
			panic("sim: time went backwards")
		}
		if e.deadline > 0 && ev.at > e.deadline {
			// The event is dropped, not released: a canceled proc event may
			// still be referenced as a pendingEv, and the engine is done.
			e.stop(self, &TimeoutError{Deadline: e.deadline, At: ev.at, Waiting: e.waitingList()})
			return false
		}
		e.now = ev.at
		if e.m != nil {
			e.m.events.Inc()
		}
		if ev.canceled {
			// Lazily-removed event (its process finished first). It still
			// advances the clock and counts as dispatched, exactly like the
			// old engine's stale-wakeup path.
			e.release(ev)
			continue
		}
		if fn := ev.fn; fn != nil {
			e.release(ev)
			if e.m != nil {
				e.m.callbacks.Inc()
			}
			if e.fr != nil {
				e.fr.record(e.now, FlightCallback, "", "", -1)
			}
			if err := e.runCallback(fn); err != nil {
				e.stop(self, err)
				return false
			}
			continue
		}
		p := ev.proc
		p.pendingEv = nil
		e.release(ev)
		if e.trace != nil {
			e.tracef("resume %s", p.name)
		}
		if e.fr != nil {
			e.fr.record(e.now, FlightEvent, p.name, "", -1)
		}
		if p == self {
			return true
		}
		p.resume <- struct{}{}
		return false
	}
}

// stop ends the run: it records the outcome and wakes the Run goroutine.
// When Run's own dispatch is the caller (self == nil) no token is needed —
// the outcome is read directly.
func (e *Engine) stop(self *Proc, err error) {
	if e.fr != nil && err != nil {
		e.fr.record(e.now, FlightStop, "", err.Error(), -1)
	}
	e.stopErr = err
	if self == nil {
		e.stopLocal = true
		return
	}
	e.driver <- struct{}{}
}

// procExit retires a finished process while its goroutine still holds the
// ball, then either continues dispatching on this stack or ends the run.
func (e *Engine) procExit(p *Proc, panicked any, aborted error) {
	if !p.daemon {
		e.live--
	}
	delete(e.alive, p)
	if p.pendingEv != nil {
		// Lazy cancellation: the wake outlives the process; flag it and let
		// dispatch discard it when it surfaces.
		p.pendingEv.canceled = true
		p.pendingEv = nil
	}
	if e.trace != nil {
		e.tracef("finish %s", p.name)
	}
	if panicked != nil {
		e.stop(p, &PanicError{Proc: p.name, Value: panicked})
		return
	}
	if aborted != nil {
		// %w keeps errors.Is/As working on the typed failure
		// (e.g. *RankFailedError) for callers of Run.
		e.stop(p, fmt.Errorf("sim: process %q failed: %w", p.name, aborted))
		return
	}
	e.dispatch(p)
}

// park is called from a process goroutine: it hands off the ball and blocks
// until resumed. why is reported in deadlock diagnostics; it must be a
// static string (parkFor carries a duration detail without formatting).
func (p *Proc) park(why string) { p.parkFor(why, -1) }

// parkFor parks with a duration detail that deadlock/timeout diagnostics
// format lazily, keeping fmt out of the park hot path. The process itself
// dispatches the next events: if the first non-callback event is its own
// wake it simply returns (no goroutine switch); otherwise it hands the ball
// to the next process and blocks.
func (p *Proc) parkFor(why string, d Duration) {
	e := p.eng
	p.parked = true
	p.parkWhy = why
	p.parkDur = d
	if e.m != nil {
		e.m.countPark(why)
	}
	if e.fr != nil {
		e.fr.record(e.now, FlightPark, p.name, why, d)
	}
	if !e.dispatch(p) {
		select {
		case <-p.resume:
		case <-e.dead:
			panic(killed{})
		}
	}
	p.wakePending = false
	p.parked = false
	if p.crashed {
		panic(crashedProc{})
	}
}

// Advance moves the process forward by d in virtual time. Negative durations
// are clamped to zero.
func (p *Proc) Advance(d Duration) {
	if d <= 0 {
		return
	}
	e := p.eng
	e.wake(p, e.now.Add(d), "advance")
	p.parkFor("advance", d)
}

// AdvanceTo moves the process forward to time t; if t is in the past it is a
// no-op.
func (p *Proc) AdvanceTo(t Time) {
	if t > p.eng.now {
		p.Advance(t.Sub(p.eng.now))
	}
}

// Yield reschedules the process at the current time, letting other runnable
// processes execute first.
func (p *Proc) Yield() {
	p.eng.wake(p, p.eng.now, "yield")
	p.park("yield")
}

// DeadlockError is returned by Run when live processes remain but no events
// are pending.
type DeadlockError struct {
	At      Time
	Waiting []string // "name: reason" for each parked process
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v; %d waiting: %s",
		d.At, len(d.Waiting), strings.Join(d.Waiting, "; "))
}

// TimeoutError is returned by Run when the virtual clock would advance past
// the watchdog deadline (SetWatchdog). Waiting lists the parked non-daemon
// processes exactly as DeadlockError does, so a hung-but-not-deadlocked run
// (e.g. an endless retry loop against a stalled port) is as diagnosable as a
// true deadlock.
type TimeoutError struct {
	Deadline Time
	At       Time // time of the event that would have crossed the deadline
	Waiting  []string
}

func (t *TimeoutError) Error() string {
	return fmt.Sprintf("sim: watchdog timeout: next event at %v exceeds deadline %v; %d waiting: %s",
		t.At, t.Deadline, len(t.Waiting), strings.Join(t.Waiting, "; "))
}

// waitingList snapshots the parked non-daemon processes, sorted, for
// deadlock and timeout diagnostics. Formatting happens here, on the cold
// error path, so parking itself never builds strings.
func (e *Engine) waitingList() []string {
	var waiting []string
	for p := range e.alive {
		if p.daemon || !p.parked {
			continue
		}
		why := p.parkWhy
		if p.parkDur >= 0 {
			why = why + " " + p.parkDur.String()
		}
		waiting = append(waiting, p.name+": "+why)
	}
	sort.Strings(waiting)
	return waiting
}

// PanicError is returned by Run when a simulated process panicked.
type PanicError struct {
	Proc  string
	Value any
}

func (p *PanicError) Error() string {
	return fmt.Sprintf("sim: process %q panicked: %v", p.Proc, p.Value)
}

// runCallback executes an engine-context event callback, converting a panic
// into a *PanicError so a failing simulated component (e.g. a message
// delivery that detects truncation) surfaces as a simulation error instead
// of crashing the caller.
func (e *Engine) runCallback(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Proc: "engine-callback", Value: r}
		}
	}()
	fn()
	return nil
}

// Run executes the simulation until no events remain. It returns nil on
// clean completion (all processes finished), a *DeadlockError if processes
// remain blocked forever, or a *PanicError if a process (or an engine
// callback) panicked.
//
// Run's goroutine is not on the event path: it starts the dispatch chain and
// then parks until some goroutine ends the simulation. All intermediate
// transfers go process-to-process.
func (e *Engine) Run() error {
	if e.running {
		panic("sim: Engine.Run reentered")
	}
	e.running = true
	defer func() { e.running = false }()
	e.stopErr, e.stopLocal = nil, false
	e.dispatch(nil)
	if !e.stopLocal {
		<-e.driver
	}
	e.stopLocal = false
	return e.stopErr
}

// RunWindow executes the simulation until every remaining event lies at or
// beyond limit (exclusive), or until it stops for a terminal reason
// (watchdog, panic, abort). It is the windowed counterpart of Run used by
// Group to advance shards in conservative-lookahead rounds: an empty queue
// pauses instead of deadlocking, because with multiple shards new events may
// still arrive through the conduit between windows. Processes parked at the
// boundary stay blocked on their resume channels and continue seamlessly in
// the next window. Termination (clean finish or deadlock) is decided by the
// group across all shards, never by one window.
func (e *Engine) RunWindow(limit Time) error {
	if e.running {
		panic("sim: Engine.RunWindow reentered")
	}
	e.running = true
	defer func() { e.running = false }()
	e.limit = limit
	e.stopErr, e.stopLocal, e.paused = nil, false, false
	e.dispatch(nil)
	if !e.stopLocal {
		<-e.driver
	}
	e.stopLocal = false
	e.limit = 0
	return e.stopErr
}

// InjectAt schedules a cross-shard callback at absolute time t. Only the
// shard group calls it, between windows, to merge conduit messages into the
// destination shard's queue; t must not be in the past (guaranteed by the
// conduit's window-boundary check).
func (e *Engine) InjectAt(t Time, fn func()) {
	e.schedule(t, nil, fn, "conduit")
}
