package sim

import (
	"fmt"
	"runtime"
	"testing"
	"testing/quick"
	"time"
)

func mustRun(t *testing.T, e *Engine) {
	t.Helper()
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	e.Close()
}

func TestAdvanceAccumulates(t *testing.T) {
	e := NewEngine()
	var end Time
	e.Spawn("p", func(p *Proc) {
		p.Advance(3 * Microsecond)
		p.Advance(0)  // no-op
		p.Advance(-5) // clamped
		p.Advance(7 * Nanosecond)
		end = p.Now()
	})
	mustRun(t, e)
	if want := Time(3*Microsecond + 7); end != want {
		t.Fatalf("end time = %v, want %v", end, want)
	}
}

func TestDeterministicInterleaving(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var log []string
		for i := 0; i < 5; i++ {
			i := i
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				for k := 0; k < 3; k++ {
					p.Advance(Duration(10 + i)) // distinct periods
					log = append(log, fmt.Sprintf("p%d@%d", i, p.Now()))
				}
			})
		}
		mustRun(t, e)
		return log
	}
	first := run()
	for trial := 0; trial < 10; trial++ {
		got := run()
		if len(got) != len(first) {
			t.Fatalf("trial %d: length %d != %d", trial, len(got), len(first))
		}
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("trial %d: event %d = %s, want %s", trial, i, got[i], first[i])
			}
		}
	}
}

func TestTieBreakBySpawnOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		e.Spawn("p", func(p *Proc) {
			p.Advance(5)
			order = append(order, i)
		})
	}
	mustRun(t, e)
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestGate(t *testing.T) {
	e := NewEngine()
	g := NewGate("g")
	var wakeTimes []Time
	for i := 0; i < 3; i++ {
		e.Spawn("waiter", func(p *Proc) {
			g.Wait(p)
			wakeTimes = append(wakeTimes, p.Now())
		})
	}
	e.Spawn("firer", func(p *Proc) {
		p.Advance(100)
		g.Fire(e)
	})
	e.Spawn("late", func(p *Proc) {
		p.Advance(200)
		g.Wait(p) // already fired: immediate
		wakeTimes = append(wakeTimes, p.Now())
	})
	mustRun(t, e)
	if len(wakeTimes) != 4 {
		t.Fatalf("wakeTimes = %v", wakeTimes)
	}
	for _, w := range wakeTimes[:3] {
		if w != 100 {
			t.Fatalf("waiter woke at %v, want 100", w)
		}
	}
	if wakeTimes[3] != 200 {
		t.Fatalf("late waiter woke at %v, want 200", wakeTimes[3])
	}
	if !g.Fired() || g.FiredAt() != 100 {
		t.Fatalf("gate state fired=%v at=%v", g.Fired(), g.FiredAt())
	}
}

func TestCounterWaiters(t *testing.T) {
	e := NewEngine()
	c := NewCounter("sig", 0)
	var got []uint64
	e.Spawn("w1", func(p *Proc) {
		c.WaitGE(p, 3)
		got = append(got, c.Value())
	})
	e.Spawn("w2", func(p *Proc) {
		c.WaitEQ(p, 2)
		got = append(got, c.Value())
	})
	e.Spawn("setter", func(p *Proc) {
		p.Advance(10)
		c.Add(e, 2) // releases w2
		p.Advance(10)
		c.Add(e, 2) // value 4, releases w1
	})
	mustRun(t, e)
	if len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Fatalf("got %v, want [2 4]", got)
	}
}

func TestMailboxFIFO(t *testing.T) {
	e := NewEngine()
	m := NewMailbox[int]("m")
	var got []int
	e.Spawn("recv", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, m.Get(p))
		}
	})
	e.Spawn("send", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Advance(7)
			m.Put(e, i)
		}
	})
	mustRun(t, e)
	for i, v := range got {
		if v != i {
			t.Fatalf("got %v, want [0..4]", got)
		}
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	e := NewEngine()
	s := NewSemaphore("s", 2)
	inUse, peak := 0, 0
	for i := 0; i < 6; i++ {
		e.Spawn("worker", func(p *Proc) {
			s.Acquire(p)
			inUse++
			if inUse > peak {
				peak = inUse
			}
			p.Advance(50)
			inUse--
			s.Release(e)
		})
	}
	mustRun(t, e)
	if peak != 2 {
		t.Fatalf("peak concurrency = %d, want 2", peak)
	}
}

func TestRendezvousRounds(t *testing.T) {
	e := NewEngine()
	r := NewRendezvous("b", 3)
	releases := make([]Time, 0, 6)
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn("p", func(p *Proc) {
			for round := 0; round < 2; round++ {
				p.Advance(Duration(10 * (i + 1) * (round + 1)))
				r.Arrive(p)
				releases = append(releases, p.Now())
			}
		})
	}
	mustRun(t, e)
	if len(releases) != 6 {
		t.Fatalf("releases = %v", releases)
	}
	// First round releases at the slowest arrival (30), second at 30+60=90.
	for _, ts := range releases[:3] {
		if ts != 30 {
			t.Fatalf("round 1 release at %v, want 30", ts)
		}
	}
	for _, ts := range releases[3:] {
		if ts != 90 {
			t.Fatalf("round 2 release at %v, want 90", ts)
		}
	}
	if r.Round() != 2 {
		t.Fatalf("rounds = %d, want 2", r.Round())
	}
}

func TestTimelineReserve(t *testing.T) {
	tl := NewTimeline("link")
	s, e := tl.Reserve(100, 50)
	if s != 100 || e != 150 {
		t.Fatalf("first reserve [%v,%v)", s, e)
	}
	// Overlapping request queues behind.
	s, e = tl.Reserve(120, 30)
	if s != 150 || e != 180 {
		t.Fatalf("second reserve [%v,%v), want [150,180)", s, e)
	}
	// Later request after idle gap starts on time.
	s, e = tl.Reserve(500, 10)
	if s != 500 || e != 510 {
		t.Fatalf("third reserve [%v,%v), want [500,510)", s, e)
	}
	if tl.BusySum() != 90 {
		t.Fatalf("busy sum = %v, want 90", tl.BusySum())
	}
}

func TestReserveMulti(t *testing.T) {
	a, b := NewTimeline("a"), NewTimeline("b")
	a.Reserve(0, 100)
	s, e := ReserveMulti(50, 20, a, b)
	if s != 100 || e != 120 {
		t.Fatalf("multi reserve [%v,%v), want [100,120)", s, e)
	}
	if a.BusyUntil() != 120 || b.BusyUntil() != 120 {
		t.Fatalf("busyUntil a=%v b=%v", a.BusyUntil(), b.BusyUntil())
	}
}

func TestTimelineMonotonicProperty(t *testing.T) {
	// Property: regardless of request pattern, granted intervals never
	// overlap and starts are monotonically non-decreasing.
	f := func(reqs []struct {
		At  uint16
		Dur uint16
	}) bool {
		tl := NewTimeline("p")
		prevEnd := Time(0)
		for _, r := range reqs {
			s, e := tl.Reserve(Time(r.At), Duration(r.Dur))
			if s < prevEnd || e < s {
				return false
			}
			prevEnd = e
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	g := NewGate("never")
	e.Spawn("stuck", func(p *Proc) { g.Wait(p) })
	err := e.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(de.Waiting) != 1 {
		t.Fatalf("waiting = %v", de.Waiting)
	}
	e.Close()
}

func TestDaemonsDoNotDeadlock(t *testing.T) {
	e := NewEngine()
	m := NewMailbox[int]("ops")
	e.SpawnDaemon("stream", func(p *Proc) {
		for {
			m.Get(p)
		}
	})
	e.Spawn("host", func(p *Proc) {
		m.Put(e, 1)
		p.Advance(10)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	e.Close() // must terminate the daemon goroutine
}

func TestProcessPanicPropagates(t *testing.T) {
	e := NewEngine()
	e.Spawn("boom", func(p *Proc) {
		p.Advance(5)
		panic("kablam")
	})
	err := e.Run()
	pe, ok := err.(*PanicError)
	if !ok || pe.Proc != "boom" {
		t.Fatalf("err = %v, want PanicError from boom", err)
	}
	e.Close()
}

func TestAfterCallback(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Spawn("p", func(p *Proc) {
		e.After(42, func() { at = e.Now() })
		p.Advance(100)
	})
	mustRun(t, e)
	if at != 42 {
		t.Fatalf("callback at %v, want 42", at)
	}
}

func TestSpawnAtFuture(t *testing.T) {
	e := NewEngine()
	var started Time
	e.SpawnAt(77, "late", func(p *Proc) { started = p.Now() })
	mustRun(t, e)
	if started != 77 {
		t.Fatalf("started at %v, want 77", started)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ns"},
		{1500, "1.5us"},
		{2 * Millisecond, "2ms"},
		{3 * Second, "3s"},
		// Negative durations format the magnitude with the usual units and
		// a leading sign instead of falling through to raw nanoseconds.
		{-500, "-500ns"},
		{-1500, "-1.5us"},
		{-2 * Millisecond, "-2ms"},
		{-2 * Second, "-2s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestMicrosNanosHelpers(t *testing.T) {
	if Micros(1.5) != 1500 {
		t.Fatalf("Micros(1.5) = %d", Micros(1.5))
	}
	if Nanos(2.6) != 3 {
		t.Fatalf("Nanos(2.6) = %d", Nanos(2.6))
	}
	if got := Time(2500).Sub(Time(500)); got != 2000 {
		t.Fatalf("Sub = %v", got)
	}
	if got := Time(100).Add(50); got != 150 {
		t.Fatalf("Add = %v", got)
	}
}

func TestNanosRoundsNegatives(t *testing.T) {
	// The old Duration(ns + 0.5) truncation collapsed all of (-1, 0) to 0
	// and rounded -1.4 to 0; rounding must be symmetric about zero.
	cases := []struct {
		ns   float64
		want Duration
	}{
		{0, 0},
		{0.4, 0},
		{0.6, 1},
		{-0.4, 0},
		{-0.6, -1},
		{-1.4, -1},
		{-1.6, -2},
		{-2.5, -3}, // half away from zero
		{2.5, 3},
	}
	for _, c := range cases {
		if got := Nanos(c.ns); got != c.want {
			t.Errorf("Nanos(%g) = %d, want %d", c.ns, got, c.want)
		}
	}
}

func TestWatchdogTimeout(t *testing.T) {
	e := NewEngine()
	e.SetWatchdog(100)
	e.Spawn("slow", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Advance(30)
		}
	})
	e.Spawn("parked", func(p *Proc) { NewGate("never").Wait(p) })
	err := e.Run()
	te, ok := err.(*TimeoutError)
	if !ok {
		t.Fatalf("err = %v, want TimeoutError", err)
	}
	if te.Deadline != 100 || te.At <= te.Deadline {
		t.Fatalf("timeout deadline=%v at=%v", te.Deadline, te.At)
	}
	// Parked-proc diagnostics, like DeadlockError: the gate waiter and the
	// advancing proc (parked on its own pending wakeup) both appear.
	if len(te.Waiting) != 2 || te.Waiting[0] != "parked: gate never" || te.Waiting[1] != "slow: advance 30ns" {
		t.Fatalf("waiting = %v", te.Waiting)
	}
	e.Close()
}

func TestWatchdogDisabledAndUnderDeadline(t *testing.T) {
	e := NewEngine()
	e.SetWatchdog(1000)
	e.Spawn("p", func(p *Proc) { p.Advance(999) })
	mustRun(t, e) // finishes under the deadline
}

func TestTimelineStallShiftsAdmission(t *testing.T) {
	tl := NewTimeline("port")
	tl.AddStall(100, 200)
	// A reservation starting inside the window is pushed to its end.
	s, e := tl.Reserve(150, 10)
	if s != 200 || e != 210 {
		t.Fatalf("stalled reserve [%v,%v), want [200,210)", s, e)
	}
	// A reservation before the window is admitted and may run through it.
	tl2 := NewTimeline("port2")
	tl2.AddStall(100, 200)
	s, e = tl2.Reserve(50, 100)
	if s != 50 || e != 150 {
		t.Fatalf("pre-stall reserve [%v,%v), want [50,150)", s, e)
	}
	// Queued work whose grant lands in the window shifts too.
	s, e = tl2.Reserve(60, 10)
	if s != 200 || e != 210 {
		t.Fatalf("queued-into-stall reserve [%v,%v), want [200,210)", s, e)
	}
}

func TestTimelineStallChainsAndStalledAt(t *testing.T) {
	tl := NewTimeline("port")
	// Overlapping/adjacent windows added out of order chain into one
	// blackout [100, 400).
	tl.AddStall(300, 400)
	tl.AddStall(100, 250)
	tl.AddStall(250, 310)
	if until, stalled := tl.StalledAt(150); !stalled || until != 400 {
		t.Fatalf("StalledAt(150) = %v,%v want 400,true", until, stalled)
	}
	if _, stalled := tl.StalledAt(400); stalled {
		t.Fatal("StalledAt(400) should be admissible (half-open window)")
	}
	if _, stalled := tl.StalledAt(99); stalled {
		t.Fatal("StalledAt(99) should be admissible")
	}
	s, _ := tl.Reserve(120, 5)
	if s != 400 {
		t.Fatalf("reserve through chained stalls starts at %v, want 400", s)
	}
}

func TestReserveMultiRespectsAllStalls(t *testing.T) {
	a, b := NewTimeline("a"), NewTimeline("b")
	a.AddStall(100, 200)
	b.AddStall(200, 300) // admission at 200 on a lands inside b's window
	s, e := ReserveMulti(150, 10, a, b)
	if s != 300 || e != 310 {
		t.Fatalf("multi reserve [%v,%v), want [300,310)", s, e)
	}
}

func TestDeadlockWaitingExcludesDaemons(t *testing.T) {
	e := NewEngine()
	m := NewMailbox[int]("idle")
	e.SpawnDaemon("daemon", func(p *Proc) {
		for {
			m.Get(p)
		}
	})
	g := NewGate("never")
	e.Spawn("stuck-a", func(p *Proc) { g.Wait(p) })
	e.Spawn("stuck-b", func(p *Proc) { g.Wait(p) })
	err := e.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	want := []string{"stuck-a: gate never", "stuck-b: gate never"}
	if len(de.Waiting) != len(want) {
		t.Fatalf("waiting = %v, want %v", de.Waiting, want)
	}
	for i := range want {
		if de.Waiting[i] != want[i] {
			t.Fatalf("waiting = %v, want %v", de.Waiting, want)
		}
	}
	e.Close()
}

func TestEngineCallbackPanicBecomesError(t *testing.T) {
	e := NewEngine()
	e.Spawn("p", func(p *Proc) {
		e.After(10, func() { panic("callback boom") })
		p.Advance(100)
	})
	err := e.Run()
	pe, ok := err.(*PanicError)
	if !ok || pe.Proc != "engine-callback" || pe.Value != "callback boom" {
		t.Fatalf("err = %v, want engine-callback PanicError", err)
	}
	e.Close()
}

func TestCloseAfterFailedRunLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		e := NewEngine()
		e.SpawnDaemon("daemon", func(p *Proc) {
			m := NewMailbox[int]("never")
			for {
				m.Get(p)
			}
		})
		g := NewGate("never")
		for j := 0; j < 3; j++ {
			e.Spawn("stuck", func(p *Proc) { g.Wait(p) })
		}
		if _, ok := e.Run().(*DeadlockError); !ok {
			t.Fatal("expected deadlock")
		}
		e.Close()
	}
	// Termination is synchronous in Close, but give the runtime a few
	// scheduling quanta to retire the unwound goroutines.
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("goroutines: before %d, after %d", before, runtime.NumGoroutine())
}

// TestAdvanceAllocationGuard pins the steady-state allocation cost of
// Proc.Advance at zero: event structs are pooled, park reasons are static
// strings, and no tracing arguments are boxed when tracing is disabled.
// The per-run budget covers engine construction and goroutine spawn only;
// a regression that allocates per Advance (even one word) blows through it
// immediately at 2000 iterations.
func TestAdvanceAllocationGuard(t *testing.T) {
	const iters = 2000
	avg := testing.AllocsPerRun(5, func() {
		e := NewEngine()
		e.Spawn("adv", func(p *Proc) {
			for i := 0; i < iters; i++ {
				p.Advance(Nanosecond)
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		e.Close()
	})
	if perAdvance := avg / iters; perAdvance > 0.05 {
		t.Errorf("Proc.Advance allocates: %.3f allocs/op (%.0f per %d-advance run, want ~0)",
			perAdvance, avg, iters)
	}
}

// TestEventPoolCapBoundsRetention pins the free-list cap: a spike of
// thousands of simultaneous pending events must not stay pinned as pooled
// memory after the spike drains — retention is bounded by freePoolCap.
func TestEventPoolCapBoundsRetention(t *testing.T) {
	const spike = 4 * freePoolCap
	e := NewEngine()
	defer e.Close()
	fired := 0
	for i := 0; i < spike; i++ {
		e.After(Duration(i+1)*Nanosecond, func() { fired++ })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != spike {
		t.Fatalf("fired %d of %d callbacks", fired, spike)
	}
	if len(e.free) > freePoolCap {
		t.Fatalf("event pool retained %d events after spike, cap is %d", len(e.free), freePoolCap)
	}
	// The pool must still recycle below the cap: a fresh schedule should
	// come from the free list, not a new allocation.
	before := len(e.free)
	if before == 0 {
		t.Fatal("pool empty after spike; recycling is broken")
	}
	e.After(Nanosecond, func() {})
	if len(e.free) != before-1 {
		t.Fatalf("schedule did not draw from the pool: %d -> %d", before, len(e.free))
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestTimelineReserveAllocationGuard pins the fabric's innermost booking
// operation at zero allocations (paired with the CI bench-engine gate).
func TestTimelineReserveAllocationGuard(t *testing.T) {
	tl := NewTimeline("port")
	i := 0
	avg := testing.AllocsPerRun(2000, func() {
		tl.Reserve(Time(i), Nanosecond)
		i++
	})
	if avg > 0.01 {
		t.Fatalf("Timeline.Reserve allocates %.2f objects/op, want 0", avg)
	}
}
