package sim

import (
	"errors"
	"fmt"
	"testing"
)

// An interrupt delivered to a process parked on a gate aborts the wait with
// the poisoned error, and a later Fire must not double-wake the waiter.
func TestInterruptCancelsGateWait(t *testing.T) {
	eng := NewEngine()
	defer eng.Close()
	g := NewGate("never")
	want := errors.New("poisoned")
	var got error
	var abortedAt Time
	victim := eng.Spawn("waiter", func(p *Proc) {
		got = Protect(func() { g.Wait(p) })
		abortedAt = p.Now()
		p.Advance(5)
	})
	eng.Spawn("killer", func(p *Proc) {
		p.Advance(10)
		victim.Interrupt(want)
		p.Advance(10)
		g.Fire(p.eng) // no waiters left; must not double-wake
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got != want {
		t.Fatalf("Protect returned %v, want %v", got, want)
	}
	if abortedAt != 10 {
		t.Fatalf("abort delivered at %v, want 10ns", abortedAt)
	}
}

// An interrupt hitting a process inside Advance (not interruptible) is
// deferred to the next interruptible wait.
func TestInterruptDeferredPastAdvance(t *testing.T) {
	eng := NewEngine()
	defer eng.Close()
	c := NewCounter("cnt", 0)
	want := errors.New("late poison")
	var got error
	var at Time
	victim := eng.Spawn("worker", func(p *Proc) {
		p.Advance(100) // interrupt arrives here, must not cut this short
		got = Protect(func() { c.WaitGE(p, 1) })
		at = p.Now()
	})
	eng.Spawn("poisoner", func(p *Proc) {
		p.Advance(10)
		victim.Interrupt(want)
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got != want {
		t.Fatalf("Protect returned %v, want %v", got, want)
	}
	if at != 100 {
		t.Fatalf("delivered at %v, want 100ns (end of Advance)", at)
	}
}

// ClearInterrupt discards an undelivered poison.
func TestClearInterrupt(t *testing.T) {
	eng := NewEngine()
	defer eng.Close()
	g := NewGate("g")
	victim := eng.Spawn("worker", func(p *Proc) {
		p.Advance(50)
		if p.Interrupted() == nil {
			t.Error("expected pending interrupt after Advance")
		}
		p.ClearInterrupt()
		g.Wait(p) // already fired by then; must not abort
	})
	eng.Spawn("other", func(p *Proc) {
		p.Advance(10)
		victim.Interrupt(errors.New("stale"))
		g.Fire(p.eng)
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
}

// Kill unwinds a parked process silently: the run completes cleanly and the
// primitive it was parked on is not left with a stale waiter.
func TestKillUnwindsParkedProcess(t *testing.T) {
	eng := NewEngine()
	defer eng.Close()
	g := NewGate("g")
	reached := false
	victim := eng.Spawn("victim", func(p *Proc) {
		g.Wait(p)
		reached = true
	})
	eng.Spawn("killer", func(p *Proc) {
		p.Advance(10)
		victim.Kill()
		p.Advance(10)
		g.Fire(p.eng)
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if reached {
		t.Fatal("killed process ran past its park")
	}
}

// Kill takes effect at the next scheduling point even when the victim is
// mid-Advance (wake already pending), and killing before first scheduling
// prevents the body from running at all.
func TestKillDuringAdvanceAndBeforeStart(t *testing.T) {
	eng := NewEngine()
	defer eng.Close()
	advanced := false
	victim := eng.Spawn("victim", func(p *Proc) {
		p.Advance(100)
		advanced = true
	})
	var neverRan *Proc
	bodyRan := false
	eng.Spawn("killer", func(p *Proc) {
		p.Advance(10)
		victim.Kill()
		neverRan = p.eng.SpawnAt(p.Now().Add(50), "unborn", func(q *Proc) {
			bodyRan = true
		})
		neverRan.Kill()
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if advanced {
		t.Fatal("killed process survived Advance")
	}
	if bodyRan {
		t.Fatal("process killed before start still ran")
	}
}

// A killed party is deregistered from a rendezvous, so survivors plus a
// replacement arrival can still complete the barrier.
func TestKillDropsRendezvousParty(t *testing.T) {
	eng := NewEngine()
	defer eng.Close()
	r := NewRendezvous("barrier", 3)
	done := 0
	var victim *Proc
	victim = eng.Spawn("a", func(p *Proc) {
		r.Arrive(p)
		done++
	})
	eng.Spawn("b", func(p *Proc) {
		p.Advance(5)
		r.Arrive(p)
		done++
	})
	eng.Spawn("c", func(p *Proc) {
		p.Advance(10)
		victim.Kill()
		p.Advance(10)
		r.Arrive(p) // second arrival after drop
		done++
	})
	eng.Spawn("d", func(p *Proc) {
		p.Advance(30)
		r.Arrive(p) // third arrival completes the barrier
		done++
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if done != 3 {
		t.Fatalf("%d parties completed, want 3 (killed one must not)", done)
	}
}

// An Abort with no Protect terminates the process and surfaces from Run as a
// wrapped error that errors.As can unpack.
func TestAbortSurfacesFromRun(t *testing.T) {
	eng := NewEngine()
	defer eng.Close()
	eng.Spawn("rank0", func(p *Proc) {
		Abort(&RankFailedError{Rank: 3, At: 42})
	})
	err := eng.Run()
	if err == nil {
		t.Fatal("expected error from Run")
	}
	var rf *RankFailedError
	if !errors.As(err, &rf) {
		t.Fatalf("errors.As failed on %v", err)
	}
	if rf.Rank != 3 || rf.At != 42 {
		t.Fatalf("got %+v", rf)
	}
}

// InterruptAll poisons every live process; each receives the error exactly
// once at its next interruptible wait.
func TestInterruptAll(t *testing.T) {
	eng := NewEngine()
	defer eng.Close()
	g := NewGate("g")
	ferr := &RankFailedError{Rank: 1, At: 10}
	var got []error
	for i := 0; i < 3; i++ {
		eng.Spawn(fmt.Sprintf("rank%d", i), func(p *Proc) {
			got = append(got, Protect(func() { g.Wait(p) }))
		})
	}
	eng.After(10, func() { eng.InterruptAll(ferr) })
	if err := eng.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("%d procs reported, want 3", len(got))
	}
	for i, err := range got {
		var rf *RankFailedError
		if !errors.As(err, &rf) || rf.Rank != 1 {
			t.Fatalf("proc %d got %v", i, err)
		}
	}
}

// A Mailbox wait is not interruptible (daemon idle loops keep serving), but
// the poison is still held for the next interruptible wait.
func TestMailboxWaitNotInterruptible(t *testing.T) {
	eng := NewEngine()
	defer eng.Close()
	mb := NewMailbox[int]("ops")
	var gotItem int
	daemon := eng.SpawnDaemon("stream", func(p *Proc) {
		gotItem = mb.Get(p)
	})
	eng.Spawn("driver", func(p *Proc) {
		p.Advance(10)
		daemon.Interrupt(errors.New("revoked"))
		p.Advance(10)
		mb.Put(p.eng, 7)
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if gotItem != 7 {
		t.Fatalf("daemon got %d, want 7 (interrupt must not cancel Get)", gotItem)
	}
}

// TimeoutError still unwraps through a fmt.Errorf("%w") chain, the wrap
// style used across the backends.
func TestTimeoutErrorUnwraps(t *testing.T) {
	base := &TimeoutError{Deadline: 100, At: 200}
	wrapped := fmt.Errorf("bench: latency: %w", fmt.Errorf("launch: %w", base))
	var te *TimeoutError
	if !errors.As(wrapped, &te) {
		t.Fatalf("errors.As failed on %v", wrapped)
	}
	if te.Deadline != 100 {
		t.Fatalf("got %+v", te)
	}
}
