package sim

import "sort"

// Synchronization primitives for simulated processes. All primitives operate
// in virtual time and preserve the engine's determinism: waiters are released
// in FIFO order at the virtual instant the releasing condition occurs.

// Gate is a one-shot event: processes wait until it fires. Waiting on an
// already-fired gate returns immediately. The zero value is a valid, unfired
// gate, which lets hot-path owners (MPI message envelopes) embed gates by
// value instead of allocating them; SetLabel attaches a diagnostic label to
// such a gate without formatting cost.
type Gate struct {
	fired bool
	at    Time
	// w0 is the inline first-waiter slot. Almost every gate in the
	// communication layers has exactly one waiter (the poster of the request),
	// so the common case parks and fires without ever allocating the overflow
	// slice. FIFO order is w0 first, then waiters.
	w0      *Proc
	waiters []*Proc
	label   string
	reason  string // "gate <label>", built lazily; or set whole via SetLabel
}

// NewGate returns an unfired gate with a label used in deadlock diagnostics.
func NewGate(label string) *Gate { return &Gate{label: label, reason: "gate " + label} }

// SetLabel sets the full diagnostic string a zero-value (embedded) gate
// reports in deadlock traces and wake reasons. Callers pass a constant
// ("gate send"), trading per-instance detail for a formatting-free hot path.
func (g *Gate) SetLabel(reason string) { g.reason = reason }

func (g *Gate) why() string {
	if g.reason == "" {
		if g.label == "" {
			return "gate"
		}
		g.reason = "gate " + g.label
	}
	return g.reason
}

// Fired reports whether the gate has fired.
func (g *Gate) Fired() bool { return g.fired }

// FiredAt returns the virtual time the gate fired; valid only if Fired.
func (g *Gate) FiredAt() Time { return g.at }

// Fire releases all current and future waiters. Firing an already-fired gate
// is a no-op. Must be called while holding the ball (from a process or an
// engine callback).
func (g *Gate) Fire(e *Engine) {
	if g.fired {
		return
	}
	g.fired = true
	g.at = e.now
	if w := g.w0; w != nil {
		g.w0 = nil
		e.wake(w, e.now, g.why())
	}
	for _, w := range g.waiters {
		e.wake(w, e.now, g.why())
	}
	g.waiters = nil
}

// Wait blocks p until the gate fires. The wait is interruptible: a pending
// or arriving Interrupt aborts it (see interrupt.go).
func (g *Gate) Wait(p *Proc) {
	p.checkInterrupt()
	if g.fired {
		return
	}
	if g.w0 == nil && len(g.waiters) == 0 {
		g.w0 = p
	} else {
		g.waiters = append(g.waiters, p)
	}
	p.parkOn(g.why(), g, true)
	p.checkInterrupt()
}

func (g *Gate) drop(p *Proc) {
	if g.w0 == p {
		// Promote the next overflow waiter so FIFO release order survives.
		if len(g.waiters) > 0 {
			g.w0 = g.waiters[0]
			g.waiters = g.waiters[1:]
		} else {
			g.w0 = nil
		}
		return
	}
	g.waiters = removeWaiter(g.waiters, p)
}

// removeWaiter deletes p from a waiter slice, preserving FIFO order of the
// remaining waiters. Used by the interrupt/kill cancelers.
func removeWaiter(ws []*Proc, p *Proc) []*Proc {
	for i, w := range ws {
		if w == p {
			return append(ws[:i], ws[i+1:]...)
		}
	}
	return ws
}

// Counter is a monotonic (or at least externally ordered) unsigned value
// that processes can wait on. It models signal words in one-sided
// communication: an atomic location updated by remote writers and polled by
// a waiter.
type Counter struct {
	value   uint64
	label   string
	reason  string
	waiters []counterWaiter
}

type counterWaiter struct {
	p    *Proc
	pred func(uint64) bool
}

// NewCounter returns a counter with initial value v.
func NewCounter(label string, v uint64) *Counter {
	return &Counter{value: v, label: label, reason: "counter " + label}
}

// Value reports the current value.
func (c *Counter) Value() uint64 { return c.value }

// Set assigns the value and releases any waiter whose predicate now holds.
func (c *Counter) Set(e *Engine, v uint64) {
	c.value = v
	c.notify(e)
}

// Add increments the value and releases satisfied waiters.
func (c *Counter) Add(e *Engine, delta uint64) { c.Set(e, c.value+delta) }

func (c *Counter) notify(e *Engine) {
	kept := c.waiters[:0]
	for _, w := range c.waiters {
		if w.pred(c.value) {
			e.wake(w.p, e.now, c.reason)
		} else {
			kept = append(kept, w)
		}
	}
	c.waiters = kept
}

// WaitUntil blocks p until pred(value) is true. If it is already true the
// call returns immediately. The wait is interruptible.
func (c *Counter) WaitUntil(p *Proc, pred func(uint64) bool) {
	p.checkInterrupt()
	if pred(c.value) {
		return
	}
	c.waiters = append(c.waiters, counterWaiter{p, pred})
	p.parkOn(c.reason, c, true)
	p.checkInterrupt()
}

func (c *Counter) drop(p *Proc) {
	for i, w := range c.waiters {
		if w.p == p {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			return
		}
	}
}

// WaitGE blocks p until value >= v.
func (c *Counter) WaitGE(p *Proc, v uint64) {
	c.WaitUntil(p, func(x uint64) bool { return x >= v })
}

// WaitEQ blocks p until value == v.
func (c *Counter) WaitEQ(p *Proc, v uint64) {
	c.WaitUntil(p, func(x uint64) bool { return x == v })
}

// Mailbox is an unbounded FIFO queue of items passed between processes.
// Put never blocks; Get blocks until an item is available. Items are
// delivered in insertion order.
type Mailbox[T any] struct {
	label   string
	reason  string
	items   []T
	waiters []*Proc
}

// NewMailbox returns an empty mailbox.
func NewMailbox[T any](label string) *Mailbox[T] {
	return &Mailbox[T]{label: label, reason: "mailbox " + label}
}

// Len reports the number of queued items.
func (m *Mailbox[T]) Len() int { return len(m.items) }

// Put enqueues an item, waking the longest-waiting receiver if any.
func (m *Mailbox[T]) Put(e *Engine, item T) {
	m.items = append(m.items, item)
	if len(m.waiters) > 0 {
		w := m.waiters[0]
		m.waiters = m.waiters[1:]
		e.wake(w, e.now, m.reason)
	}
}

// Get dequeues the next item, blocking until one is available. The wait is
// NOT interruptible — daemons idling on a mailbox (GPU stream executors)
// must keep serving after a failure is declared — but a Kill still unwinds
// it.
func (m *Mailbox[T]) Get(p *Proc) T {
	for len(m.items) == 0 {
		m.waiters = append(m.waiters, p)
		p.parkOn(m.reason, m, false)
	}
	item := m.items[0]
	// Shift rather than reslice forever so the backing array is reusable.
	copy(m.items, m.items[1:])
	m.items = m.items[:len(m.items)-1]
	return item
}

func (m *Mailbox[T]) drop(p *Proc) { m.waiters = removeWaiter(m.waiters, p) }

// Semaphore is a counting semaphore in virtual time.
type Semaphore struct {
	label   string
	reason  string
	avail   int
	waiters []*Proc
}

// NewSemaphore returns a semaphore with n initial permits.
func NewSemaphore(label string, n int) *Semaphore {
	return &Semaphore{label: label, reason: "semaphore " + label, avail: n}
}

// Acquire takes one permit, blocking until available. The wait is
// interruptible.
func (s *Semaphore) Acquire(p *Proc) {
	p.checkInterrupt()
	for s.avail == 0 {
		s.waiters = append(s.waiters, p)
		p.parkOn(s.reason, s, true)
		p.checkInterrupt()
	}
	s.avail--
}

func (s *Semaphore) drop(p *Proc) { s.waiters = removeWaiter(s.waiters, p) }

// Release returns one permit and wakes the longest waiter if any.
func (s *Semaphore) Release(e *Engine) {
	s.avail++
	if len(s.waiters) > 0 {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		e.wake(w, e.now, s.reason)
	}
}

// Rendezvous is a reusable n-party barrier: the first n-1 arrivals block,
// the n-th arrival releases everyone and resets the barrier for the next
// round. It models the implicit synchronization of collective kernels that
// require all participants to be running.
type Rendezvous struct {
	label   string
	reason  string
	parties int
	arrived []*Proc
	round   uint64
}

// NewRendezvous returns a barrier for the given number of parties.
func NewRendezvous(label string, parties int) *Rendezvous {
	if parties < 1 {
		panic("sim: rendezvous parties < 1")
	}
	return &Rendezvous{label: label, reason: "rendezvous " + label, parties: parties}
}

// Round reports how many times the barrier has completed.
func (r *Rendezvous) Round() uint64 { return r.round }

// Arrive blocks p until all parties have arrived in this round. The wait is
// interruptible; an interrupted or killed party is deregistered, so the
// barrier then needs the remaining parties plus one replacement arrival.
func (r *Rendezvous) Arrive(p *Proc) {
	p.checkInterrupt()
	if len(r.arrived)+1 == r.parties {
		for _, w := range r.arrived {
			p.eng.wake(w, p.eng.now, r.reason)
		}
		r.arrived = r.arrived[:0]
		r.round++
		return
	}
	r.arrived = append(r.arrived, p)
	p.parkOn(r.reason, r, true)
	p.checkInterrupt()
}

func (r *Rendezvous) drop(p *Proc) { r.arrived = removeWaiter(r.arrived, p) }

// Timeline models a serially-reusable resource (a link, a NIC, a copy
// engine) whose occupancy is tracked as a single busy-until horizon.
// Reservations are granted back-to-back in request order, which yields a
// deterministic FCFS contention model.
//
// A timeline may additionally carry stall windows (AddStall): half-open
// intervals of virtual time during which the resource admits no new
// reservations — modeling a flapping NIC port or a link in error recovery.
// A reservation whose start would fall inside a stall window is pushed to
// the window's end; a reservation granted before the window runs through it
// unaffected (only admission is gated).
type Timeline struct {
	label     string
	busyUntil Time
	busySum   Duration // total reserved time, for utilization reporting
	stalls    []stallWindow
}

// stallWindow is one half-open [start, end) admission blackout.
type stallWindow struct {
	start, end Time
}

// NewTimeline returns an idle timeline.
func NewTimeline(label string) *Timeline { return &Timeline{label: label} }

// Label reports the timeline's label.
func (t *Timeline) Label() string { return t.label }

// BusyUntil reports the time at which the resource becomes free.
func (t *Timeline) BusyUntil() Time { return t.busyUntil }

// BusySum reports the cumulative reserved duration (for utilization stats).
func (t *Timeline) BusySum() Duration { return t.busySum }

// AddStall marks [start, end) as an admission blackout: no new reservation
// may begin inside it. Windows may be added in any order and may overlap.
// Empty or inverted windows are ignored.
func (t *Timeline) AddStall(start, end Time) {
	if end <= start {
		return
	}
	t.stalls = append(t.stalls, stallWindow{start, end})
	sort.Slice(t.stalls, func(i, j int) bool { return t.stalls[i].start < t.stalls[j].start })
}

// StalledAt reports whether at falls inside a stall window and, if so, when
// admission reopens (the end of the latest covering chain of windows).
func (t *Timeline) StalledAt(at Time) (until Time, stalled bool) {
	adm := t.admitAfter(at)
	return adm, adm != at
}

// admitAfter returns the earliest time >= at not inside any stall window.
// One pass over the start-sorted windows suffices: after a shift to a
// window's end, only later-starting windows can still cover the new time.
func (t *Timeline) admitAfter(at Time) Time {
	for _, w := range t.stalls {
		if at >= w.start && at < w.end {
			at = w.end
		}
	}
	return at
}

// Reserve books the resource for dur starting no earlier than at, after all
// previously granted reservations and outside any stall window. It returns
// the granted [start, end).
func (t *Timeline) Reserve(at Time, dur Duration) (start, end Time) {
	if dur < 0 {
		dur = 0
	}
	start = at
	if t.busyUntil > start {
		start = t.busyUntil
	}
	start = t.admitAfter(start)
	end = start.Add(dur)
	t.busyUntil = end
	t.busySum += dur
	return start, end
}

// ReserveMulti books several timelines for the same transfer (e.g. source
// egress port and destination ingress port): the transfer starts when all
// are free and admitting, and occupies each for dur. Returns the common
// [start, end).
func ReserveMulti(at Time, dur Duration, tls ...*Timeline) (start, end Time) {
	start = at
	for _, tl := range tls {
		if tl.busyUntil > start {
			start = tl.busyUntil
		}
	}
	// Push the common start past every timeline's stall windows until it is
	// admissible everywhere (fixpoint; each shift strictly increases start).
	for {
		moved := start
		for _, tl := range tls {
			moved = tl.admitAfter(moved)
		}
		if moved == start {
			break
		}
		start = moved
	}
	end = start.Add(dur)
	for _, tl := range tls {
		tl.busyUntil = end
		tl.busySum += dur
	}
	return start, end
}
