package sim

// The engine's event queue: a hand-rolled 4-ary min-heap ordered by
// (at, seq), plus a FIFO ring of events scheduled at exactly the current
// instant (the "now queue").
//
// Why not container/heap: the interface-based API costs a dynamic dispatch
// per comparison and boxes every push/pop through `any`. The event loop is
// the innermost loop of every simulation, so the queue is monomorphic and
// inlineable. A 4-ary layout halves the tree depth of a binary heap; with
// 8-byte pointers the four children of a node share a cache line, so the
// extra comparisons per level are nearly free and sift-down touches fewer
// lines overall.
//
// The now queue exploits the engine's dominant scheduling pattern: most
// wakes (gate fires, mailbox puts, yields, interrupt delivery) are scheduled
// at the current virtual time. Those events need no heap ordering at all —
// two invariants make a plain FIFO exact:
//
//  1. An event lands in nowQ iff it is scheduled for t == now while the
//     clock is at now. nowQ is therefore seq-ordered by construction
//     (seq increases monotonically with scheduling order).
//  2. Any heap event with at == now was necessarily scheduled while the
//     clock was still behind now, i.e. before every nowQ entry, so it has a
//     smaller seq and must pop first.
//
// pop therefore drains same-time heap entries, then the ring, and only then
// advances the clock — at which point the ring is empty and the invariants
// re-establish themselves at the new instant.
//
// Lazy cancellation: events carry a canceled flag instead of being removed
// from the middle of the heap (an O(n) search plus an O(log n) fix-up).
// A teardown (process exit with a wake still pending, interrupt machinery
// retiring a wait) just flips the flag; the dispatch loop discards canceled
// events when they surface. See DESIGN.md §11.

// event is a scheduled occurrence. Exactly one of proc/fn is set: proc
// events resume a parked process; fn events run a callback in engine
// context (callbacks must not block). canceled marks a lazily-removed
// event that the dispatch loop discards on pop.
type event struct {
	at       Time
	seq      uint64
	proc     *Proc
	fn       func()
	canceled bool
}

// eventQueue holds all pending events. The zero value is an empty queue.
type eventQueue struct {
	heap []*event // 4-ary min-heap on (at, seq)
	nowQ []*event // FIFO of events at the current instant; valid from head on
	head int
}

func (q *eventQueue) len() int { return len(q.heap) + len(q.nowQ) - q.head }

// pushNow appends an event scheduled at the current instant.
func (q *eventQueue) pushNow(ev *event) { q.nowQ = append(q.nowQ, ev) }

// pushHeap inserts a future event into the heap.
func (q *eventQueue) pushHeap(ev *event) {
	h := append(q.heap, ev)
	q.heap = h
	// Sift up.
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 4
		p := h[parent]
		if p.at < ev.at || (p.at == ev.at && p.seq < ev.seq) {
			break
		}
		h[i] = p
		i = parent
	}
	h[i] = ev
}

// peek returns the next event in (at, seq) order without removing it, or
// nil if the queue is empty. It mirrors pop's ordering exactly (same-time
// heap entries come before ring entries), so windowed dispatch can decide
// whether the next event crosses the window boundary before committing to
// popping it.
func (q *eventQueue) peek() *event {
	if q.head < len(q.nowQ) {
		if len(q.heap) > 0 && q.heap[0].at <= q.nowQ[q.head].at {
			return q.heap[0]
		}
		return q.nowQ[q.head]
	}
	if len(q.heap) == 0 {
		return nil
	}
	return q.heap[0]
}

// pop removes and returns the next event in (at, seq) order, or nil if the
// queue is empty. Canceled events are returned like any other; the caller
// discards them (they still advance the clock, matching the old engine's
// stale-wakeup handling).
func (q *eventQueue) pop() *event {
	if q.head < len(q.nowQ) {
		// Same-time heap entries predate every ring entry (smaller seq).
		if len(q.heap) > 0 && q.heap[0].at <= q.nowQ[q.head].at {
			return q.popHeap()
		}
		ev := q.nowQ[q.head]
		q.nowQ[q.head] = nil
		q.head++
		if q.head == len(q.nowQ) {
			q.nowQ = q.nowQ[:0]
			q.head = 0
		}
		return ev
	}
	if len(q.heap) == 0 {
		return nil
	}
	return q.popHeap()
}

func (q *eventQueue) popHeap() *event {
	h := q.heap
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	h = h[:n]
	q.heap = h
	if n == 0 {
		return top
	}
	// Sift last down from the root.
	i := 0
	for {
		c := i*4 + 1
		if c >= n {
			break
		}
		// Find the least of up to four children.
		min := c
		mv := h[c]
		for k := c + 1; k < c+4 && k < n; k++ {
			v := h[k]
			if v.at < mv.at || (v.at == mv.at && v.seq < mv.seq) {
				min, mv = k, v
			}
		}
		if last.at < mv.at || (last.at == mv.at && last.seq < mv.seq) {
			break
		}
		h[i] = mv
		i = min
	}
	h[i] = last
	return top
}
