// Package metrics is the seed-deterministic metrics registry of the
// simulated stack: counters, gauges, and virtual-time histograms that the
// engine, fabric, and communication backends update as a run executes.
//
// Design constraints, in order:
//
//   - Zero overhead when disabled. A nil *Registry is the disabled registry
//     and every instrument handle it hands out is nil; all methods are
//     nil-safe no-ops, so instrumentation sites need no conditionals and the
//     sim hot path (Proc.Advance) stays zero-alloc — pinned by
//     sim.TestAdvanceAllocationGuard.
//   - Deterministic output. Values depend only on virtual-time events, never
//     wall clock; snapshots sort by name, so identical runs render identical
//     bytes at any worker count. Per-cell registries of a parallel sweep are
//     merged in cell-index order (see internal/bench/runner.go for the
//     ownership rule).
//   - No dependencies beyond the standard library, so every layer (including
//     internal/sim) can import it without cycles. Durations are observed as
//     plain int64 nanoseconds for the same reason.
//
// Instruments are resolved by name (Counter/Gauge/Histogram); resolving the
// same name twice returns the same instrument. Hot paths resolve their
// handles once at setup and keep the pointer.
package metrics

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64. The nil counter discards
// updates. Updates are atomic: in a sharded run (core.Config.Shards) the
// shard engines update shared instruments concurrently, and addition
// commutes, so totals stay deterministic at any shard count.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n (negative n is ignored: counters only go
// up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value reports the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last/extremum-valued float64. The nil gauge discards updates.
// A mutex covers concurrent shard updates; Max is order-free, so extrema
// stay deterministic at any shard count.
type Gauge struct {
	mu  sync.Mutex
	v   float64
	set bool
}

// Set assigns the gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v, g.set = v, true
	g.mu.Unlock()
}

// Max raises the gauge to v if v exceeds the current value (or the gauge is
// unset). Used for high-water marks such as queue depths.
func (g *Gauge) Max(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	if !g.set || v > g.v {
		g.v, g.set = v, true
	}
	g.mu.Unlock()
}

// Value reports the gauge value and whether it was ever set.
func (g *Gauge) Value() (float64, bool) {
	if g == nil {
		return 0, false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v, g.set
}

// histBuckets is the number of power-of-two histogram buckets: bucket i
// counts observations v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i)
// (bucket 0 counts zeros). 64 buckets cover every non-negative int64.
const histBuckets = 65

// Histogram accumulates non-negative int64 observations (virtual-time
// nanoseconds by convention) into power-of-two buckets plus count/sum/
// min/max. The nil histogram discards updates. A mutex covers concurrent
// shard updates; all the aggregates are order-free functions of the
// observation multiset, which is itself shard-count invariant.
type Histogram struct {
	mu       sync.Mutex
	count    int64
	sum      int64
	min, max int64
	buckets  [histBuckets]int64
}

// Observe records one value; negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bits.Len64(uint64(v))]++
	h.mu.Unlock()
}

// Count reports the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum reports the total of all observations (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Registry resolves instruments by name. The nil registry is the disabled
// registry: it resolves every name to a nil instrument.
//
// Resolution and Snapshot are safe for concurrent use: a read-write mutex
// guards the name maps, so a live telemetry scraper may call Snapshot while
// a run resolves new instruments (e.g. fabric occupancy gauges published at
// the end of a cell). The instruments themselves are independently
// thread-safe, and hot paths resolve their handles once at setup, so the
// lock is never taken on the simulation hot path.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New returns an enabled, empty registry.
func New() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter resolves (creating if needed) the named counter; nil on the nil
// registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge resolves the named gauge; nil on the nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram resolves the named histogram; nil on the nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// CounterValue is one counter in a snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeValue is one set gauge in a snapshot (unset gauges are omitted).
type GaugeValue struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistValue is one histogram in a snapshot. Buckets lists only the occupied
// power-of-two buckets as (upper-bound exponent, count) pairs, smallest
// first.
type HistValue struct {
	Name    string       `json:"name"`
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Min     int64        `json:"min"`
	Max     int64        `json:"max"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// HistBucket is one occupied histogram bucket: Count observations v with
// bits.Len64(v) == Exp (so v < 2^Exp, and v >= 2^(Exp-1) for Exp > 0).
type HistBucket struct {
	Exp   int   `json:"exp"`
	Count int64 `json:"count"`
}

// Mean reports the histogram's average observation (0 when empty).
func (h HistValue) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Snapshot is a point-in-time copy of a registry, sorted by name within each
// instrument kind, so rendering and marshalling are deterministic.
type Snapshot struct {
	Counters   []CounterValue `json:"counters"`
	Gauges     []GaugeValue   `json:"gauges"`
	Histograms []HistValue    `json:"histograms"`
}

// Snapshot copies the registry's current state. A nil registry snapshots
// empty. Snapshot may run concurrently with instrument updates and with
// resolution of new instruments; each instrument is copied atomically (under
// its own lock), so every value in the snapshot is a real point-in-time
// reading, never a torn one.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterValue{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		if v, set := g.Value(); set {
			s.Gauges = append(s.Gauges, GaugeValue{Name: name, Value: v})
		}
	}
	for name, h := range r.hists {
		h.mu.Lock()
		if h.count == 0 {
			h.mu.Unlock()
			continue
		}
		hv := HistValue{Name: name, Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
		for exp, n := range h.buckets {
			if n > 0 {
				hv.Buckets = append(hv.Buckets, HistBucket{Exp: exp, Count: n})
			}
		}
		h.mu.Unlock()
		s.Histograms = append(s.Histograms, hv)
	}
	s.sort()
	return s
}

func (s *Snapshot) sort() {
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
}

// Merge combines snapshots in argument order: counters and histograms sum;
// gauges take the maximum (they record extrema such as queue depths and
// occupancy, where the sweep-wide high-water mark is the meaningful
// aggregate). Merging in cell-index order keeps parallel-sweep output
// bit-identical to serial execution.
func Merge(snaps ...Snapshot) Snapshot {
	counters := map[string]int64{}
	gauges := map[string]float64{}
	gaugeSet := map[string]bool{}
	hists := map[string]*HistValue{}
	for _, s := range snaps {
		for _, c := range s.Counters {
			counters[c.Name] += c.Value
		}
		for _, g := range s.Gauges {
			if !gaugeSet[g.Name] || g.Value > gauges[g.Name] {
				gauges[g.Name] = g.Value
			}
			gaugeSet[g.Name] = true
		}
		for _, h := range s.Histograms {
			acc := hists[h.Name]
			if acc == nil {
				cp := h
				cp.Buckets = append([]HistBucket(nil), h.Buckets...)
				hists[h.Name] = &cp
				continue
			}
			if h.Min < acc.Min {
				acc.Min = h.Min
			}
			if h.Max > acc.Max {
				acc.Max = h.Max
			}
			acc.Count += h.Count
			acc.Sum += h.Sum
			acc.Buckets = mergeBuckets(acc.Buckets, h.Buckets)
		}
	}
	var out Snapshot
	for name, v := range counters {
		out.Counters = append(out.Counters, CounterValue{Name: name, Value: v})
	}
	for name, v := range gauges {
		out.Gauges = append(out.Gauges, GaugeValue{Name: name, Value: v})
	}
	for _, h := range hists {
		out.Histograms = append(out.Histograms, *h)
	}
	out.sort()
	return out
}

// mergeBuckets sums two exponent-sorted bucket lists.
func mergeBuckets(a, b []HistBucket) []HistBucket {
	byExp := map[int]int64{}
	for _, bk := range a {
		byExp[bk.Exp] += bk.Count
	}
	for _, bk := range b {
		byExp[bk.Exp] += bk.Count
	}
	out := make([]HistBucket, 0, len(byExp))
	for exp, n := range byExp {
		out = append(out, HistBucket{Exp: exp, Count: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Exp < out[j].Exp })
	return out
}

// Delta returns the change from prev to s, turning two cumulative snapshots
// of the same registry into one interval reading — the streaming primitive
// behind the telemetry plane's rate views. Counters subtract; a counter is
// included only when its interval delta is nonzero. Histograms subtract
// count, sum, and bucket occupancy the same way; Min and Max carry the
// cumulative extrema from s, since an extremum cannot be un-observed.
// Gauges are levels, not accumulators, so they pass through at their
// current value. An instrument that went backwards (the registry was
// replaced between snapshots) is treated as freshly started: its current
// cumulative value is the delta.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	prevCounters := make(map[string]int64, len(prev.Counters))
	for _, c := range prev.Counters {
		prevCounters[c.Name] = c.Value
	}
	prevHists := make(map[string]HistValue, len(prev.Histograms))
	for _, h := range prev.Histograms {
		prevHists[h.Name] = h
	}
	var out Snapshot
	for _, c := range s.Counters {
		d := c.Value - prevCounters[c.Name]
		if d < 0 {
			d = c.Value
		}
		if d != 0 {
			out.Counters = append(out.Counters, CounterValue{Name: c.Name, Value: d})
		}
	}
	out.Gauges = append(out.Gauges, s.Gauges...)
	for _, h := range s.Histograms {
		p, ok := prevHists[h.Name]
		if !ok || h.Count < p.Count {
			out.Histograms = append(out.Histograms, h)
			continue
		}
		if h.Count == p.Count {
			continue
		}
		d := HistValue{Name: h.Name, Count: h.Count - p.Count, Sum: h.Sum - p.Sum,
			Min: h.Min, Max: h.Max}
		prevBuckets := make(map[int]int64, len(p.Buckets))
		for _, bk := range p.Buckets {
			prevBuckets[bk.Exp] = bk.Count
		}
		for _, bk := range h.Buckets {
			if n := bk.Count - prevBuckets[bk.Exp]; n > 0 {
				d.Buckets = append(d.Buckets, HistBucket{Exp: bk.Exp, Count: n})
			}
		}
		out.Histograms = append(out.Histograms, d)
	}
	return out
}

// Filter returns the snapshot restricted to instruments whose name has the
// given prefix.
func (s Snapshot) Filter(prefix string) Snapshot {
	var out Snapshot
	for _, c := range s.Counters {
		if strings.HasPrefix(c.Name, prefix) {
			out.Counters = append(out.Counters, c)
		}
	}
	for _, g := range s.Gauges {
		if strings.HasPrefix(g.Name, prefix) {
			out.Gauges = append(out.Gauges, g)
		}
	}
	for _, h := range s.Histograms {
		if strings.HasPrefix(h.Name, prefix) {
			out.Histograms = append(out.Histograms, h)
		}
	}
	return out
}

// Empty reports whether the snapshot holds no instruments.
func (s Snapshot) Empty() bool {
	return len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Histograms) == 0
}

// Render formats the snapshot as an aligned, sorted text block. Histogram
// durations are nanosecond totals; the mean is appended for readability.
func (s Snapshot) Render() string {
	var b strings.Builder
	for _, c := range s.Counters {
		fmt.Fprintf(&b, "%-44s %16d\n", c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		if math.IsNaN(g.Value) || math.IsInf(g.Value, 0) {
			fmt.Fprintf(&b, "%-44s %16s\n", g.Name, "n/a")
			continue
		}
		fmt.Fprintf(&b, "%-44s %16.6g\n", g.Name, g.Value)
	}
	for _, h := range s.Histograms {
		fmt.Fprintf(&b, "%-44s count=%-8d sum=%-14d min=%-10d max=%-12d mean=%.6g\n",
			h.Name, h.Count, h.Sum, h.Min, h.Max, h.Mean())
	}
	return b.String()
}

// WriteJSON writes the snapshot as deterministic, indented JSON: fields are
// struct-ordered and instruments are name-sorted, so identical snapshots
// produce identical bytes. Hand-rolled (rather than encoding/json) to keep
// the format stable and free of float round-trip surprises.
func (s Snapshot) WriteJSON(w io.Writer) error {
	var b strings.Builder
	b.WriteString("{\n  \"counters\": [")
	for i, c := range s.Counters {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "\n    {\"name\": %q, \"value\": %d}", c.Name, c.Value)
	}
	if len(s.Counters) > 0 {
		b.WriteString("\n  ")
	}
	b.WriteString("],\n  \"gauges\": [")
	for i, g := range s.Gauges {
		if i > 0 {
			b.WriteString(",")
		}
		// JSON has no NaN/Infinity literals (encoding/json rejects them
		// outright); a poisoned gauge renders as null so one bad Set cannot
		// invalidate the whole export.
		if math.IsNaN(g.Value) || math.IsInf(g.Value, 0) {
			fmt.Fprintf(&b, "\n    {\"name\": %q, \"value\": null}", g.Name)
			continue
		}
		fmt.Fprintf(&b, "\n    {\"name\": %q, \"value\": %.17g}", g.Name, g.Value)
	}
	if len(s.Gauges) > 0 {
		b.WriteString("\n  ")
	}
	b.WriteString("],\n  \"histograms\": [")
	for i, h := range s.Histograms {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "\n    {\"name\": %q, \"count\": %d, \"sum\": %d, \"min\": %d, \"max\": %d, \"buckets\": [",
			h.Name, h.Count, h.Sum, h.Min, h.Max)
		for j, bk := range h.Buckets {
			if j > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "{\"exp\": %d, \"count\": %d}", bk.Exp, bk.Count)
		}
		b.WriteString("]}")
	}
	if len(s.Histograms) > 0 {
		b.WriteString("\n  ")
	}
	b.WriteString("]\n}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
