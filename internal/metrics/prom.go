package metrics

// Prometheus text exposition (format version 0.0.4): the scrapeable twin of
// WriteJSON, used by the telemetry plane's /metrics endpoint. The snapshot's
// dotted instrument names (sim.events, mpi.coll.allreduce) are sanitized to
// the Prometheus grammar; SanitizeName is deliberately simple and total so
// the collision test in prom_test.go can assert injectivity over every name
// the subsystems actually register.

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// SanitizeName rewrites an instrument name into a valid Prometheus metric
// name: every byte outside [a-zA-Z0-9_:] becomes '_', and a leading digit is
// prefixed with '_'. The mapping is not injective in general ("a.b" and
// "a/b" collide); the registry's naming convention (dot-separated lowercase
// words) keeps it injective in practice, pinned by the collision test over
// all registered names.
func SanitizeName(name string) string {
	if name == "" {
		return "_"
	}
	var b []byte
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if !ok {
			if b == nil {
				b = []byte(name)
			}
			b[i] = '_'
		}
	}
	out := name
	if b != nil {
		out = string(b)
	}
	if out[0] >= '0' && out[0] <= '9' {
		out = "_" + out
	}
	return out
}

// promFloat renders a float64 in Prometheus text syntax. Unlike JSON, the
// exposition format has literals for the non-finite values.
func promFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format: counters and gauges one sample each, histograms as native
// Prometheus histograms whose le bounds are the power-of-two bucket upper
// bounds (bucket Exp holds observations v < 2^Exp, so le="2^Exp" is exact
// for integers). Output is name-sorted within each kind — identical
// snapshots expose identical bytes, like every other renderer here.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, c := range s.Counters {
		name := SanitizeName(c.Name)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", name, name, c.Value)
	}
	for _, g := range s.Gauges {
		name := SanitizeName(g.Name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", name, name, promFloat(g.Value))
	}
	for _, h := range s.Histograms {
		name := SanitizeName(h.Name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
		var cum int64
		for _, bk := range h.Buckets {
			cum += bk.Count
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", name, promFloat(math.Ldexp(1, bk.Exp)), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
		fmt.Fprintf(&b, "%s_sum %d\n", name, h.Sum)
		fmt.Fprintf(&b, "%s_count %d\n", name, h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
