package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"sim.events":         "sim_events",
		"mpi.coll.allreduce": "mpi_coll_allreduce",
		"a/b-c d":            "a_b_c_d",
		"already_ok:x":       "already_ok:x",
		"9lives":             "_9lives",
		"":                   "_",
	}
	for in, want := range cases {
		if got := SanitizeName(in); got != want {
			t.Errorf("SanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("sim.events").Add(42)
	r.Gauge("fabric.occupancy.max").Set(0.75)
	r.Gauge("bad.gauge").Set(math.NaN())
	h := r.Histogram("mpi.coll.allreduce")
	h.Observe(0)    // bucket exp 0
	h.Observe(3)    // bucket exp 2
	h.Observe(1000) // bucket exp 10

	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE sim_events counter\nsim_events 42\n",
		"# TYPE fabric_occupancy_max gauge\nfabric_occupancy_max 0.75\n",
		"bad_gauge NaN\n", // Prometheus text format has non-finite literals
		"# TYPE mpi_coll_allreduce histogram\n",
		"mpi_coll_allreduce_bucket{le=\"1\"} 1\n",
		"mpi_coll_allreduce_bucket{le=\"4\"} 2\n",
		"mpi_coll_allreduce_bucket{le=\"1024\"} 3\n",
		"mpi_coll_allreduce_bucket{le=\"+Inf\"} 3\n",
		"mpi_coll_allreduce_sum 1003\n",
		"mpi_coll_allreduce_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, ".") {
		// Every sample line must be fully sanitized; a leftover dot means a
		// name escaped SanitizeName.
		for _, line := range strings.Split(out, "\n") {
			if line != "" && !strings.HasPrefix(line, "#") && strings.Contains(strings.Fields(line)[0], ".") {
				t.Errorf("unsanitized metric name in %q", line)
			}
		}
	}

	// Determinism: two snapshots of the same registry expose identical bytes.
	var b2 strings.Builder
	if err := r.Snapshot().WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Fatal("WritePrometheus must be deterministic for identical snapshots")
	}
}
