package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryIsDisabled(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z")
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry must resolve nil instruments, got %v %v %v", c, g, h)
	}
	// All nil-instrument methods must be safe no-ops.
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Max(2)
	h.Observe(3)
	if c.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if v, ok := g.Value(); ok || v != 0 {
		t.Fatal("nil gauge must read unset")
	}
	if s := r.Snapshot(); !s.Empty() {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := New()
	c := r.Counter("sim.events")
	c.Inc()
	c.Add(9)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 10 {
		t.Fatalf("counter = %d, want 10", got)
	}
	if r.Counter("sim.events") != c {
		t.Fatal("re-resolving a name must return the same instrument")
	}

	g := r.Gauge("depth")
	g.Max(3)
	g.Max(1)
	if v, ok := g.Value(); !ok || v != 3 {
		t.Fatalf("gauge = %v,%v, want 3,true", v, ok)
	}
	g.Set(0.5)
	if v, _ := g.Value(); v != 0.5 {
		t.Fatalf("gauge after Set = %v, want 0.5", v)
	}

	h := r.Histogram("lat")
	for _, v := range []int64{0, 1, 1, 3, 1024, -7} {
		h.Observe(v)
	}
	if h.Count() != 6 || h.Sum() != 1029 {
		t.Fatalf("hist count/sum = %d/%d, want 6/1029", h.Count(), h.Sum())
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	r := New()
	r.Counter("b").Inc()
	r.Counter("a").Inc()
	r.Gauge("z").Set(1)
	r.Gauge("m").Set(2)
	r.Histogram("h2").Observe(1)
	r.Histogram("h1").Observe(2)
	r.Gauge("never-set") // unset gauges are omitted

	s := r.Snapshot()
	if len(s.Counters) != 2 || s.Counters[0].Name != "a" || s.Counters[1].Name != "b" {
		t.Fatalf("counters not sorted: %+v", s.Counters)
	}
	if len(s.Gauges) != 2 || s.Gauges[0].Name != "m" {
		t.Fatalf("gauges wrong: %+v", s.Gauges)
	}
	if len(s.Histograms) != 2 || s.Histograms[0].Name != "h1" {
		t.Fatalf("histograms wrong: %+v", s.Histograms)
	}

	var b1, b2 strings.Builder
	if err := s.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("repeated snapshots of the same registry must marshal identically")
	}
}

func TestMerge(t *testing.T) {
	a, b := New(), New()
	a.Counter("c").Add(3)
	b.Counter("c").Add(4)
	b.Counter("only-b").Inc()
	a.Gauge("g").Set(2)
	b.Gauge("g").Set(5) // max wins
	a.Histogram("h").Observe(1)
	a.Histogram("h").Observe(100)
	b.Histogram("h").Observe(7)

	m := Merge(a.Snapshot(), b.Snapshot())
	if len(m.Counters) != 2 || m.Counters[0].Value != 7 || m.Counters[1].Value != 1 {
		t.Fatalf("merged counters wrong: %+v", m.Counters)
	}
	if m.Gauges[0].Value != 5 {
		t.Fatalf("merged gauge = %v, want 5 (max)", m.Gauges[0].Value)
	}
	h := m.Histograms[0]
	if h.Count != 3 || h.Sum != 108 || h.Min != 1 || h.Max != 100 {
		t.Fatalf("merged histogram wrong: %+v", h)
	}
	var total int64
	for _, bk := range h.Buckets {
		total += bk.Count
	}
	if total != 3 {
		t.Fatalf("merged buckets sum to %d, want 3", total)
	}

	// Merge order must not change the result bytes.
	var s1, s2 strings.Builder
	Merge(a.Snapshot(), b.Snapshot()).WriteJSON(&s1)
	Merge(b.Snapshot(), a.Snapshot()).WriteJSON(&s2)
	if s1.String() != s2.String() {
		t.Fatal("merge must be order-independent for identical inputs")
	}
}

// TestWriteJSONNonFiniteGauge is the regression test for NaN/±Inf gauge
// values: encoding/json has no literals for them, so they must render as
// null (and "n/a" in the text renderer) instead of poisoning the export.
func TestWriteJSONNonFiniteGauge(t *testing.T) {
	r := New()
	r.Gauge("bad.nan").Set(math.NaN())
	r.Gauge("bad.posinf").Set(math.Inf(1))
	r.Gauge("bad.neginf").Set(math.Inf(-1))
	r.Gauge("good").Set(1.5)
	r.Counter("c").Inc()

	var b strings.Builder
	if err := r.Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Gauges []struct {
			Name  string   `json:"name"`
			Value *float64 `json:"value"`
		} `json:"gauges"`
	}
	if err := json.Unmarshal([]byte(b.String()), &decoded); err != nil {
		t.Fatalf("WriteJSON with non-finite gauges is not valid JSON: %v\n%s", err, b.String())
	}
	if len(decoded.Gauges) != 4 {
		t.Fatalf("got %d gauges, want 4:\n%s", len(decoded.Gauges), b.String())
	}
	for _, g := range decoded.Gauges {
		if strings.HasPrefix(g.Name, "bad.") && g.Value != nil {
			t.Fatalf("non-finite gauge %s must decode as null, got %v", g.Name, *g.Value)
		}
		if g.Name == "good" && (g.Value == nil || *g.Value != 1.5) {
			t.Fatalf("finite gauge corrupted: %+v", g)
		}
	}

	out := r.Snapshot().Render()
	if !strings.Contains(out, "n/a") {
		t.Fatalf("Render must show n/a for non-finite gauges:\n%s", out)
	}
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Fatalf("Render leaked a non-finite literal:\n%s", out)
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := New()
	c := r.Counter("c")
	c.Add(10)
	r.Counter("stale").Add(3)
	g := r.Gauge("g")
	g.Set(2)
	h := r.Histogram("h")
	h.Observe(1)
	h.Observe(1000)
	prev := r.Snapshot()

	c.Add(5)
	g.Set(7)
	h.Observe(1)
	h.Observe(4)
	d := r.Snapshot().Delta(prev)

	if len(d.Counters) != 1 || d.Counters[0].Name != "c" || d.Counters[0].Value != 5 {
		t.Fatalf("counter delta wrong (stale counters must be omitted): %+v", d.Counters)
	}
	if len(d.Gauges) != 1 || d.Gauges[0].Value != 7 {
		t.Fatalf("gauges must pass through at current level: %+v", d.Gauges)
	}
	if len(d.Histograms) != 1 {
		t.Fatalf("histogram delta missing: %+v", d.Histograms)
	}
	hd := d.Histograms[0]
	if hd.Count != 2 || hd.Sum != 5 {
		t.Fatalf("hist delta count/sum = %d/%d, want 2/5", hd.Count, hd.Sum)
	}
	if hd.Min != 1 || hd.Max != 1000 {
		t.Fatalf("hist delta must carry cumulative extrema, got min/max %d/%d", hd.Min, hd.Max)
	}
	var total int64
	for _, bk := range hd.Buckets {
		total += bk.Count
	}
	if total != 2 {
		t.Fatalf("delta buckets sum to %d, want 2", total)
	}

	// An idle interval deltas to nothing but the gauge levels.
	cur := r.Snapshot()
	idle := cur.Delta(cur)
	if len(idle.Counters) != 0 || len(idle.Histograms) != 0 {
		t.Fatalf("idle delta must be empty: %+v", idle)
	}

	// A registry swap (counter went backwards) restarts the accumulation.
	fresh := New()
	fresh.Counter("c").Add(2)
	restart := fresh.Snapshot().Delta(prev)
	if len(restart.Counters) != 1 || restart.Counters[0].Value != 2 {
		t.Fatalf("restart delta wrong: %+v", restart.Counters)
	}
}

// TestRegistryConcurrentAccess is the -race stress test for live telemetry:
// writers resolve instruments by name and update them while a reader takes
// mid-flight snapshots. Every snapshot must be internally consistent — each
// histogram's aggregates must describe a real observation multiset (buckets
// sum to the count, the sum bounded by min·count and max·count), and every
// gauge must hold a value some writer actually set — i.e. snapshots are
// never torn.
func TestRegistryConcurrentAccess(t *testing.T) {
	r := New()
	const writers = 8
	const perWriter = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Rotate names so resolution races with snapshotting, not
				// just instrument updates.
				r.Counter(fmt.Sprintf("c.%d", i%7)).Inc()
				r.Gauge(fmt.Sprintf("g.%d", i%5)).Set(float64(1 + i%3))
				r.Histogram(fmt.Sprintf("h.%d", i%3)).Observe(int64(i % 100))
			}
		}(w)
	}
	go func() { wg.Wait(); close(stop) }()

	var last int64 // counters are monotone across snapshots
	for done := false; !done; {
		select {
		case <-stop:
			done = true
		default:
		}
		s := r.Snapshot()
		var totalCounters int64
		for _, c := range s.Counters {
			totalCounters += c.Value
		}
		if totalCounters < last {
			t.Fatalf("counter total went backwards: %d -> %d", last, totalCounters)
		}
		last = totalCounters
		for _, g := range s.Gauges {
			if g.Value < 1 || g.Value > 3 {
				t.Fatalf("gauge %s holds %v, a value no writer ever set", g.Name, g.Value)
			}
		}
		for _, h := range s.Histograms {
			var bucketTotal int64
			for _, bk := range h.Buckets {
				bucketTotal += bk.Count
			}
			if bucketTotal != h.Count {
				t.Fatalf("torn histogram %s: buckets sum %d != count %d", h.Name, bucketTotal, h.Count)
			}
			if h.Sum < h.Min*h.Count || h.Sum > h.Max*h.Count {
				t.Fatalf("torn histogram %s: sum %d outside [%d, %d]",
					h.Name, h.Sum, h.Min*h.Count, h.Max*h.Count)
			}
		}
	}
	if want := int64(writers * perWriter); last != want {
		// The final snapshot (taken after stop) must see every increment.
		s := r.Snapshot()
		var total int64
		for _, c := range s.Counters {
			total += c.Value
		}
		if total != want {
			t.Fatalf("final counter total %d, want %d", total, want)
		}
	}
}

func TestFilterAndRender(t *testing.T) {
	r := New()
	r.Counter("mpi.eager").Add(2)
	r.Counter("sim.events").Add(9)
	r.Gauge("mpi.matchq.depth").Set(4)
	r.Histogram("mpi.coll.allreduce").Observe(100)

	s := r.Snapshot().Filter("mpi.")
	if len(s.Counters) != 1 || len(s.Gauges) != 1 || len(s.Histograms) != 1 {
		t.Fatalf("filter wrong: %+v", s)
	}
	out := s.Render()
	for _, want := range []string{"mpi.eager", "mpi.matchq.depth", "mpi.coll.allreduce", "mean=100"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "sim.events") {
		t.Fatalf("filter leaked sim.events:\n%s", out)
	}
}
