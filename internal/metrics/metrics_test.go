package metrics

import (
	"strings"
	"testing"
)

func TestNilRegistryIsDisabled(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z")
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry must resolve nil instruments, got %v %v %v", c, g, h)
	}
	// All nil-instrument methods must be safe no-ops.
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Max(2)
	h.Observe(3)
	if c.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if v, ok := g.Value(); ok || v != 0 {
		t.Fatal("nil gauge must read unset")
	}
	if s := r.Snapshot(); !s.Empty() {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := New()
	c := r.Counter("sim.events")
	c.Inc()
	c.Add(9)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 10 {
		t.Fatalf("counter = %d, want 10", got)
	}
	if r.Counter("sim.events") != c {
		t.Fatal("re-resolving a name must return the same instrument")
	}

	g := r.Gauge("depth")
	g.Max(3)
	g.Max(1)
	if v, ok := g.Value(); !ok || v != 3 {
		t.Fatalf("gauge = %v,%v, want 3,true", v, ok)
	}
	g.Set(0.5)
	if v, _ := g.Value(); v != 0.5 {
		t.Fatalf("gauge after Set = %v, want 0.5", v)
	}

	h := r.Histogram("lat")
	for _, v := range []int64{0, 1, 1, 3, 1024, -7} {
		h.Observe(v)
	}
	if h.Count() != 6 || h.Sum() != 1029 {
		t.Fatalf("hist count/sum = %d/%d, want 6/1029", h.Count(), h.Sum())
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	r := New()
	r.Counter("b").Inc()
	r.Counter("a").Inc()
	r.Gauge("z").Set(1)
	r.Gauge("m").Set(2)
	r.Histogram("h2").Observe(1)
	r.Histogram("h1").Observe(2)
	r.Gauge("never-set") // unset gauges are omitted

	s := r.Snapshot()
	if len(s.Counters) != 2 || s.Counters[0].Name != "a" || s.Counters[1].Name != "b" {
		t.Fatalf("counters not sorted: %+v", s.Counters)
	}
	if len(s.Gauges) != 2 || s.Gauges[0].Name != "m" {
		t.Fatalf("gauges wrong: %+v", s.Gauges)
	}
	if len(s.Histograms) != 2 || s.Histograms[0].Name != "h1" {
		t.Fatalf("histograms wrong: %+v", s.Histograms)
	}

	var b1, b2 strings.Builder
	if err := s.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("repeated snapshots of the same registry must marshal identically")
	}
}

func TestMerge(t *testing.T) {
	a, b := New(), New()
	a.Counter("c").Add(3)
	b.Counter("c").Add(4)
	b.Counter("only-b").Inc()
	a.Gauge("g").Set(2)
	b.Gauge("g").Set(5) // max wins
	a.Histogram("h").Observe(1)
	a.Histogram("h").Observe(100)
	b.Histogram("h").Observe(7)

	m := Merge(a.Snapshot(), b.Snapshot())
	if len(m.Counters) != 2 || m.Counters[0].Value != 7 || m.Counters[1].Value != 1 {
		t.Fatalf("merged counters wrong: %+v", m.Counters)
	}
	if m.Gauges[0].Value != 5 {
		t.Fatalf("merged gauge = %v, want 5 (max)", m.Gauges[0].Value)
	}
	h := m.Histograms[0]
	if h.Count != 3 || h.Sum != 108 || h.Min != 1 || h.Max != 100 {
		t.Fatalf("merged histogram wrong: %+v", h)
	}
	var total int64
	for _, bk := range h.Buckets {
		total += bk.Count
	}
	if total != 3 {
		t.Fatalf("merged buckets sum to %d, want 3", total)
	}

	// Merge order must not change the result bytes.
	var s1, s2 strings.Builder
	Merge(a.Snapshot(), b.Snapshot()).WriteJSON(&s1)
	Merge(b.Snapshot(), a.Snapshot()).WriteJSON(&s2)
	if s1.String() != s2.String() {
		t.Fatal("merge must be order-independent for identical inputs")
	}
}

func TestFilterAndRender(t *testing.T) {
	r := New()
	r.Counter("mpi.eager").Add(2)
	r.Counter("sim.events").Add(9)
	r.Gauge("mpi.matchq.depth").Set(4)
	r.Histogram("mpi.coll.allreduce").Observe(100)

	s := r.Snapshot().Filter("mpi.")
	if len(s.Counters) != 1 || len(s.Gauges) != 1 || len(s.Histograms) != 1 {
		t.Fatalf("filter wrong: %+v", s)
	}
	out := s.Render()
	for _, want := range []string{"mpi.eager", "mpi.matchq.depth", "mpi.coll.allreduce", "mean=100"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "sim.events") {
		t.Fatalf("filter leaked sim.events:\n%s", out)
	}
}
