package autosel

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
)

// advisors caches calibrations across tests (calibration is deterministic).
var advisors = map[string]*Advisor{}

func calibrated(t *testing.T, m *machine.Model) *Advisor {
	t.Helper()
	if a, ok := advisors[m.Name]; ok {
		return a
	}
	a, err := Calibrate(m, []int64{8, 1 << 10, 64 << 10, 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	advisors[m.Name] = a
	return a
}

func TestRecommendSmallMessagesPerlmutter(t *testing.T) {
	a := calibrated(t, machine.Perlmutter())
	// §II-C / Fig. 2: the device-initiated path has the lowest tiny-
	// message latency on NVSHMEM-equipped machines.
	c, v := a.Recommend(8, false, MinLatency)
	if c.Backend != core.GpushmemBackend || c.API != machine.APIDevice {
		t.Fatalf("8B intra winner = %v (%.0fns)", c, v)
	}
	// Large intra-node bandwidth belongs to GPUCCL.
	c, _ = a.Recommend(4<<20, false, MaxBandwidth)
	if c.Backend != core.GpucclBackend {
		t.Fatalf("4MiB intra bandwidth winner = %v", c)
	}
}

func TestRecommendLUMIHasNoShmem(t *testing.T) {
	a := calibrated(t, machine.LUMI())
	for _, inter := range []bool{false, true} {
		for _, size := range []int64{8, 4 << 20} {
			c, _ := a.Recommend(size, inter, MinLatency)
			if c.Backend == core.GpushmemBackend {
				t.Fatalf("LUMI recommended GPUSHMEM (%v)", c)
			}
		}
	}
	// RCCL's launch overhead means MPI wins small messages on LUMI.
	c, _ := a.Recommend(8, false, MinLatency)
	if c.Backend != core.MPIBackend {
		t.Fatalf("LUMI 8B winner = %v, want MPI", c)
	}
}

func TestCrossoverExists(t *testing.T) {
	// "No single library wins": somewhere in the sweep the latency
	// recommendation must change on Perlmutter.
	a := calibrated(t, machine.Perlmutter())
	if x := a.Crossover(false, MaxBandwidth); x == 0 {
		t.Fatal("no bandwidth crossover found intra-node")
	}
}

func TestInterpolationBetweenProbes(t *testing.T) {
	a := calibrated(t, machine.Perlmutter())
	// A size strictly between probes must yield a value between the
	// surrounding probe values for a fixed candidate.
	tb := a.tables[false][0]
	v0 := a.valueAt(tb, 1<<10, MinLatency)
	v1 := a.valueAt(tb, 64<<10, MinLatency)
	vm := a.valueAt(tb, 8<<10, MinLatency)
	lo, hi := v0, v1
	if lo > hi {
		lo, hi = hi, lo
	}
	if vm < lo || vm > hi {
		t.Fatalf("interpolated %v outside [%v, %v]", vm, lo, hi)
	}
	// Clamping at the ends.
	if a.valueAt(tb, 1, MinLatency) != a.valueAt(tb, 8, MinLatency) {
		t.Fatal("below-range not clamped")
	}
	if a.valueAt(tb, 1<<30, MinLatency) != a.valueAt(tb, 4<<20, MinLatency) {
		t.Fatal("above-range not clamped")
	}
}

func TestReportRenders(t *testing.T) {
	a := calibrated(t, machine.MareNostrum5())
	rep := a.Report()
	for _, want := range []string{"MareNostrum5", "intra-node", "inter-node", "GB/s"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestMetricStrings(t *testing.T) {
	if MinLatency.String() != "min-latency" || MaxBandwidth.String() != "max-bandwidth" {
		t.Fatal("metric names")
	}
	c := Candidate{core.GpushmemBackend, machine.APIDevice}
	if c.String() != "GPUSHMEM(device)" {
		t.Fatalf("candidate string = %s", c)
	}
}
