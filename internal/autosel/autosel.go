// Package autosel implements performance-guided automatic backend
// selection, the future-work direction the paper names in §VIII
// ("performance-guided automated backend library selection") and discusses
// in §II-C: the optimal library depends on message size, intra- vs
// inter-node placement, and the machine, so the choice should be measured,
// not guessed.
//
// The Advisor probes each candidate (backend, API) pair with the OSU-style
// microbenchmarks at calibration time and answers queries ("which backend
// for 32 KiB halo messages across nodes on LUMI?") from the measured
// tables, interpolating between probed sizes. This mirrors the tuning
// approach of MCR-DL that the paper cites as related work.
package autosel

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sim"
)

// Candidate is one selectable communication configuration.
type Candidate struct {
	Backend core.BackendID
	API     machine.API
}

func (c Candidate) String() string {
	if c.API == machine.APIDevice {
		return fmt.Sprintf("%v(device)", c.Backend)
	}
	return c.Backend.String()
}

// Metric selects the optimization target.
type Metric int

// Optimization targets.
const (
	// MinLatency picks the lowest one-way latency (small messages,
	// latency-bound exchanges).
	MinLatency Metric = iota
	// MaxBandwidth picks the highest streaming bandwidth (bulk
	// transfers).
	MaxBandwidth
)

func (m Metric) String() string {
	if m == MaxBandwidth {
		return "max-bandwidth"
	}
	return "min-latency"
}

// probe is one measured point.
type probe struct {
	latency   sim.Duration
	bandwidth float64
}

// table holds one candidate's measurements over the probed sizes.
type table struct {
	cand   Candidate
	probes map[int64]probe
}

// Advisor answers backend-selection queries for one machine from measured
// calibration data.
type Advisor struct {
	model  *machine.Model
	sizes  []int64
	tables map[bool][]table // keyed by inter-node
}

// Calibrate measures every supported candidate on the machine at the given
// probe sizes (nil selects a default 8B..4MiB power-of-four sweep) and
// returns an Advisor. Calibration cost is the price of the probes — the
// same trade the paper's related work (MCR-DL tuning suites) makes.
func Calibrate(m *machine.Model, sizes []int64) (*Advisor, error) {
	if len(sizes) == 0 {
		for s := int64(8); s <= 4<<20; s *= 4 {
			sizes = append(sizes, s)
		}
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	a := &Advisor{model: m, sizes: sizes, tables: map[bool][]table{}}
	cands := []Candidate{
		{core.MPIBackend, machine.APIHost},
		{core.GpucclBackend, machine.APIHost},
	}
	if m.HasGPUSHMEM {
		cands = append(cands,
			Candidate{core.GpushmemBackend, machine.APIHost},
			Candidate{core.GpushmemBackend, machine.APIDevice})
	}
	for _, inter := range []bool{false, true} {
		for _, cand := range cands {
			tb := table{cand: cand, probes: map[int64]probe{}}
			for _, size := range sizes {
				cfg := bench.NetConfig{
					Model: m, Backend: cand.Backend, API: cand.API,
					Native: true, Inter: inter, Bytes: size,
					Iters: 20, Warmup: 2, Window: 16,
				}
				lat, err := bench.Latency(cfg)
				if err != nil {
					return nil, fmt.Errorf("autosel: probing %v: %w", cand, err)
				}
				bw, err := bench.Bandwidth(cfg)
				if err != nil {
					return nil, fmt.Errorf("autosel: probing %v: %w", cand, err)
				}
				tb.probes[size] = probe{latency: lat, bandwidth: bw}
			}
			a.tables[inter] = append(a.tables[inter], tb)
		}
	}
	return a, nil
}

// valueAt interpolates a candidate's metric at an arbitrary size
// (log-linear between the surrounding probes, clamped at the ends).
func (a *Advisor) valueAt(tb table, size int64, metric Metric) float64 {
	pick := func(p probe) float64 {
		if metric == MaxBandwidth {
			return p.bandwidth
		}
		return float64(p.latency)
	}
	if p, ok := tb.probes[size]; ok {
		return pick(p)
	}
	lo, hi := a.sizes[0], a.sizes[len(a.sizes)-1]
	if size <= lo {
		return pick(tb.probes[lo])
	}
	if size >= hi {
		return pick(tb.probes[hi])
	}
	for i := 1; i < len(a.sizes); i++ {
		if a.sizes[i] >= size {
			s0, s1 := a.sizes[i-1], a.sizes[i]
			v0, v1 := pick(tb.probes[s0]), pick(tb.probes[s1])
			f := (math.Log(float64(size)) - math.Log(float64(s0))) /
				(math.Log(float64(s1)) - math.Log(float64(s0)))
			return v0 + f*(v1-v0)
		}
	}
	return pick(tb.probes[hi])
}

// Recommend returns the best candidate for the message size, placement,
// and metric, with the measured value that won.
func (a *Advisor) Recommend(size int64, inter bool, metric Metric) (Candidate, float64) {
	best := Candidate{}
	var bestVal float64
	first := true
	for _, tb := range a.tables[inter] {
		v := a.valueAt(tb, size, metric)
		better := v < bestVal
		if metric == MaxBandwidth {
			better = v > bestVal
		}
		if first || better {
			best, bestVal, first = tb.cand, v, false
		}
	}
	return best, bestVal
}

// Crossover reports the smallest probed size at which the recommendation
// changes away from the small-message winner, or 0 if one candidate wins
// everywhere — quantifying §II-C's "no single library wins" observation.
func (a *Advisor) Crossover(inter bool, metric Metric) int64 {
	firstWinner, _ := a.Recommend(a.sizes[0], inter, metric)
	for _, s := range a.sizes[1:] {
		if w, _ := a.Recommend(s, inter, metric); w != firstWinner {
			return s
		}
	}
	return 0
}

// Report renders the full recommendation table for the machine.
func (a *Advisor) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Backend advisor for %s ==\n", a.model.Name)
	for _, inter := range []bool{false, true} {
		where := "intra-node"
		if inter {
			where = "inter-node"
		}
		fmt.Fprintf(&b, "%-12s %-22s %-22s\n", where, "best latency", "best bandwidth")
		for _, s := range a.sizes {
			lw, lv := a.Recommend(s, inter, MinLatency)
			bw, bv := a.Recommend(s, inter, MaxBandwidth)
			fmt.Fprintf(&b, "%-12s %-14v %6.2fus %-14v %6.2fGB/s\n",
				bench.HumanBytes(s), lw, sim.Duration(lv).Micros(), bw, bv/1e9)
		}
	}
	return b.String()
}
