// Package buf provides a pooled, size-classed slice arena for message
// staging. The simulated data path copies payloads at several points — MPI
// eager staging, rendezvous and RMA snapshots, collective scratch buffers,
// failover host-staging — and those copies are pure throwaways: fully
// overwritten on acquisition and dead as soon as the payload lands. Without
// pooling, every simulated message allocates its payload twice and the
// garbage collector dominates large-cell wall-clock time (the 64-rank
// allreduce cell spent ~70% of its allocated bytes in staging clones).
//
// A Pool[T] keeps per-size-class free lists of []T slices. Classes are
// powers of two from MinClassLen up; Get rounds the request up to its class
// so a released slice is reusable by any request of the same class. Slices
// are returned with their previous contents (no zeroing): callers must
// fully overwrite the requested length, which every staging site does by
// construction (the acquisition is immediately followed by the copy).
//
// Each gpu.Cluster owns its pools, so parallel sweep cells never share one
// (the same ownership rule as trace logs and metrics registries, see
// internal/bench/runner.go). Within one cell, a sharded run
// (core.Config.Shards) has several shard engines staging through the same
// pools concurrently, so Get/Put are mutex-guarded. Pooling is invisible to
// virtual time and to numerics — storage identity never influences
// simulation results, so which shard reuses which slice cannot either.
package buf

import (
	"math/bits"
	"sync"
)

const (
	// MinClassLen is the element count of the smallest size class; smaller
	// requests are rounded up to it.
	MinClassLen = 8

	// NumClasses bounds the class table: the largest pooled class holds
	// MinClassLen << (NumClasses-1) elements (128 Mi elements); larger
	// requests bypass the pool entirely.
	NumClasses = 25

	// perClassCap bounds the free slices retained per class, so a burst of
	// concurrent stagings (a wide fan-out) does not pin its high-water
	// memory for the life of the cell.
	perClassCap = 128
)

// classFor returns the class index for a request of n elements, or -1 when
// n exceeds the largest class.
func classFor(n int) int {
	if n <= MinClassLen {
		return 0
	}
	c := bits.Len(uint(n-1)) - 3 // log2 ceil(n) relative to MinClassLen = 2^3
	if c >= NumClasses {
		return -1
	}
	return c
}

// ClassSize reports the rounded capacity for a request of n elements
// (n itself when the request bypasses the pool).
func ClassSize(n int) int {
	c := classFor(n)
	if c < 0 {
		return n
	}
	return MinClassLen << c
}

// Stats counts pool traffic, for tests and diagnostics.
type Stats struct {
	Gets   uint64 // total Get calls
	Hits   uint64 // Gets served from a free list
	Puts   uint64 // Put calls that retained the slice
	Drops  uint64 // Put calls that discarded it (full class or foreign cap)
	Pooled int    // free slices currently held, across all classes
}

// Pool is a size-classed free list of []T slices. The zero value is ready
// to use. One pool belongs to one simulation cell; a mutex covers the
// shard engines of a sharded run sharing it.
type Pool[T any] struct {
	mu    sync.Mutex
	free  [NumClasses][][]T
	stats Stats
}

// Get returns a slice of length n whose capacity is n's size class.
// Contents are unspecified: the caller must overwrite all n elements.
func (p *Pool[T]) Get(n int) []T {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Gets++
	c := classFor(n)
	if c < 0 {
		return make([]T, n)
	}
	if fl := p.free[c]; len(fl) > 0 {
		s := fl[len(fl)-1]
		fl[len(fl)-1] = nil
		p.free[c] = fl[:len(fl)-1]
		p.stats.Hits++
		p.stats.Pooled--
		return s[:n]
	}
	return make([]T, n, MinClassLen<<c)
}

// Put returns a slice obtained from Get to its free list. Slices whose
// capacity is not an exact class size (oversize requests, foreign slices)
// and slices landing in a full class are dropped for the garbage collector.
func (p *Pool[T]) Put(s []T) {
	p.mu.Lock()
	defer p.mu.Unlock()
	c := classFor(cap(s))
	if c < 0 || cap(s) != MinClassLen<<c || len(p.free[c]) >= perClassCap {
		p.stats.Drops++
		return
	}
	p.stats.Puts++
	p.stats.Pooled++
	p.free[c] = append(p.free[c], s[:0])
}

// Stats returns a snapshot of the pool's traffic counters.
func (p *Pool[T]) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}
