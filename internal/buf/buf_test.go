package buf

import "testing"

func TestClassRounding(t *testing.T) {
	cases := []struct{ n, size int }{
		{0, 8}, {1, 8}, {8, 8}, {9, 16}, {16, 16}, {17, 32},
		{255, 256}, {256, 256}, {257, 512}, {1 << 20, 1 << 20},
	}
	for _, c := range cases {
		if got := ClassSize(c.n); got != c.size {
			t.Errorf("ClassSize(%d) = %d, want %d", c.n, got, c.size)
		}
	}
	// Beyond the largest class the request passes through unrounded.
	huge := (MinClassLen << (NumClasses - 1)) + 1
	if got := ClassSize(huge); got != huge {
		t.Errorf("ClassSize(%d) = %d, want pass-through", huge, got)
	}
}

func TestGetPutReuse(t *testing.T) {
	var p Pool[float64]
	a := p.Get(100)
	if len(a) != 100 || cap(a) != 128 {
		t.Fatalf("Get(100): len %d cap %d, want 100/128", len(a), cap(a))
	}
	p.Put(a)
	b := p.Get(128) // same class: must reuse a's storage
	if len(b) != 128 || &b[0] != &a[0] {
		t.Fatal("Put/Get did not recycle the slice")
	}
	st := p.Stats()
	if st.Gets != 2 || st.Hits != 1 || st.Puts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPutDropsForeignAndOversize(t *testing.T) {
	var p Pool[int32]
	p.Put(make([]int32, 100)) // cap 100 is not a class size
	huge := p.Get((MinClassLen << (NumClasses - 1)) + 1)
	p.Put(huge) // oversize: bypasses the pool both ways
	st := p.Stats()
	if st.Puts != 0 || st.Drops != 2 || st.Pooled != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPerClassCapBoundsRetention(t *testing.T) {
	var p Pool[byte]
	for i := 0; i < perClassCap+50; i++ {
		p.Put(make([]byte, 64))
	}
	st := p.Stats()
	if st.Pooled != perClassCap || st.Drops != 50 {
		t.Fatalf("stats = %+v, want %d pooled / 50 drops", st, perClassCap)
	}
}

func TestGetSteadyStateDoesNotAllocate(t *testing.T) {
	var p Pool[float64]
	warm := make([][]float64, 16)
	avg := testing.AllocsPerRun(100, func() {
		for i := range warm {
			warm[i] = p.Get(200)
		}
		for i := range warm {
			p.Put(warm[i])
		}
	})
	if avg > 0.05 {
		t.Errorf("steady-state Get/Put allocates %.2f allocs/run, want 0", avg)
	}
}
