// Package cg implements the paper's distributed Conjugate Gradient
// experiment (§VI-D): rows of a sparse SPD matrix are split equally across
// GPUs; each iteration performs one SpMV — whose input vector is assembled
// with an AllGatherv across GPUs — plus two dot products, each requiring an
// AllReduce.
//
// As with the Jacobi solver, five implementation variants mirror the
// paper's Table II: native MPI, native GPUCCL, native GPUSHMEM host API,
// native GPUSHMEM device API, and the backend-agnostic UNICONN version.
package cg

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/sparse"
	"repro/internal/trace"
)

// Variant selects one implementation.
type Variant int

// The implementation variants (Table II rows).
const (
	NativeMPI Variant = iota
	NativeGPUCCL
	NativeGPUSHMEMHost
	NativeGPUSHMEMDevice
	Uniconn
)

func (v Variant) String() string {
	switch v {
	case NativeMPI:
		return "MPI-Native"
	case NativeGPUCCL:
		return "GPUCCL-Native"
	case NativeGPUSHMEMHost:
		return "GPUSHMEM-Host-Native"
	case NativeGPUSHMEMDevice:
		return "GPUSHMEM-Device-Native"
	case Uniconn:
		return "Uniconn"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Config describes one CG run.
type Config struct {
	Model  *machine.Model
	NGPUs  int
	Matrix *sparse.CSR
	// Iters is the fixed iteration count (the paper runs 10K iterations
	// with no warm-up and reports total runtime).
	Iters int
	// Compute selects functional execution (verifiable numerics) versus
	// modeled-only timing.
	Compute bool
	// DisableAllgatherv skips the SpMV exchange, reproducing the paper's
	// §VI-D ablation that isolated MPI's Allgatherv as the bottleneck.
	DisableAllgatherv bool

	Variant Variant
	Backend core.BackendID
	Mode    core.LaunchMode

	// Shards selects the engine shard count (0 = the UNICONN_SHARDS
	// environment default; see core.Config.Shards).
	Shards int

	// Trace, when non-nil, records the run's execution spans.
	Trace *trace.Log
	// Metrics, when non-nil, collects the run's counters (see
	// internal/metrics; one registry per run, never shared across cells).
	Metrics *metrics.Registry
}

// Result reports one run.
type Result struct {
	Total    sim.Duration
	PerIter  sim.Duration
	Residual float64 // final squared residual norm (functional runs)
	// End is the virtual time at which the whole run finished — the
	// profiler's attribution horizon.
	End sim.Time
}

func (cfg Config) backendOf() core.BackendID {
	switch cfg.Variant {
	case NativeMPI:
		return core.MPIBackend
	case NativeGPUCCL:
		return core.GpucclBackend
	case NativeGPUSHMEMHost, NativeGPUSHMEMDevice:
		return core.GpushmemBackend
	default:
		return cfg.Backend
	}
}

// Run executes the configured variant.
func Run(cfg Config) (Result, error) {
	if cfg.Matrix == nil || cfg.NGPUs < 1 || cfg.Matrix.Rows < cfg.NGPUs {
		return Result{}, fmt.Errorf("cg: invalid config")
	}
	if cfg.DisableAllgatherv && cfg.Compute {
		return Result{}, fmt.Errorf("cg: the no-allgatherv ablation is timing-only (set Compute=false)")
	}
	perRank := make([]rankResult, cfg.NGPUs)
	rep, err := core.Launch(core.Config{
		Model: cfg.Model, NGPUs: cfg.NGPUs, Backend: cfg.backendOf(), Trace: cfg.Trace,
		Metrics: cfg.Metrics, Shards: cfg.Shards,
	}, func(env *core.Env) {
		var rr rankResult
		switch cfg.Variant {
		case NativeMPI:
			rr = runNativeMPI(cfg, env)
		case NativeGPUCCL:
			rr = runNativeGPUCCL(cfg, env)
		case NativeGPUSHMEMHost:
			rr = runNativeShmemHost(cfg, env)
		case NativeGPUSHMEMDevice:
			rr = runNativeShmemDevice(cfg, env)
		default:
			rr = runUniconn(cfg, env)
		}
		perRank[env.WorldRank()] = rr
	})
	if err != nil {
		return Result{}, err
	}
	res := Result{End: rep.End}
	for _, rr := range perRank {
		if rr.elapsed > res.Total {
			res.Total = rr.elapsed
		}
	}
	res.PerIter = res.Total / sim.Duration(cfg.Iters)
	res.Residual = perRank[0].residual
	return res, nil
}

type rankResult struct {
	elapsed  sim.Duration
	residual float64
}

// state is the per-rank CG storage: the local matrix block, the
// distributed vectors, and the scalar staging buffers.
type state struct {
	cfg  Config
	env  *core.Env
	rank int

	part   sparse.Partition
	lo, hi int
	myRows int
	nnz    int64

	x, r, p, ap *core.Mem[float64] // local blocks (myRows)
	pFull       *core.Mem[float64] // assembled SpMV input (Rows)
	dots        *core.Mem[float64] // [0]=pAp, [1]=rsnew scratch

	rsold float64

	stream      *gpu.Stream
	start, stop *gpu.Event
}

func newState(cfg Config, env *core.Env) *state {
	n := cfg.Matrix.Rows
	part := sparse.PartitionRows(n, cfg.NGPUs)
	lo, hi := part.Range(env.WorldRank())
	st := &state{
		cfg: cfg, env: env, rank: env.WorldRank(),
		part: part, lo: lo, hi: hi, myRows: hi - lo,
		nnz:    cfg.Matrix.NNZRange(lo, hi),
		stream: env.NewStream("cg"),
		start:  gpu.NewEvent("start"), stop: gpu.NewEvent("stop"),
	}
	// Symmetric allocations must agree across ranks: local blocks use the
	// maximum block size.
	maxRows := 0
	for r := 0; r < cfg.NGPUs; r++ {
		if c := part.Count(r); c > maxRows {
			maxRows = c
		}
	}
	st.x = core.Alloc[float64](env, maxRows)
	st.r = core.Alloc[float64](env, maxRows)
	st.p = core.Alloc[float64](env, maxRows)
	st.ap = core.Alloc[float64](env, maxRows)
	st.pFull = core.Alloc[float64](env, n)
	st.dots = core.Alloc[float64](env, 2)

	if cfg.Compute {
		// b = A·1 so the exact solution is the ones vector; x0 = 0,
		// r0 = b, p0 = r0.
		ones := make([]float64, n)
		for i := range ones {
			ones[i] = 1
		}
		cfg.Matrix.SpMV(st.r.Data()[:st.myRows], ones, lo, hi)
		copy(st.p.Data()[:st.myRows], st.r.Data()[:st.myRows])
		for i := 0; i < st.myRows; i++ {
			st.rsold += st.r.Data()[i] * st.r.Data()[i]
		}
		// Global rsold: every rank computes the same full-vector value.
		full := make([]float64, n)
		cfg.Matrix.SpMV(full, ones, 0, n)
		st.rsold = 0
		for _, v := range full {
			st.rsold += v * v
		}
	}
	return st
}

// Kernel builders: durations come from the machine model; bodies execute
// the real arithmetic when cfg.Compute.

// spmvKernel computes ap = A_local · pFull.
func (st *state) spmvKernel() *gpu.Kernel {
	nnz := st.nnz
	return &gpu.Kernel{
		Name: "spmv",
		Time: func(d *gpu.Device) sim.Duration { return d.Model().SpMVKernelTime(nnz) },
		Body: func(kc *gpu.KernelCtx) { st.spmvBody() },
	}
}

func (st *state) spmvBody() {
	if !st.cfg.Compute {
		return
	}
	st.cfg.Matrix.SpMV(st.ap.Data()[:st.myRows], st.pFull.Data(), st.lo, st.hi)
}

// vecBytes is the streaming traffic of one myRows-long vector pass.
func (st *state) vecTime(streams int) func(d *gpu.Device) sim.Duration {
	bytes := int64(st.myRows) * 8 * int64(streams)
	return func(d *gpu.Device) sim.Duration { return d.Model().StencilKernelTime(bytes) }
}

// dotKernel computes dots[slot] = a·b over the local block.
func (st *state) dotKernel(a, b *core.Mem[float64], slot int) *gpu.Kernel {
	return &gpu.Kernel{
		Name: "dot",
		Time: st.vecTime(2),
		Body: func(kc *gpu.KernelCtx) { st.dotBody(a, b, slot) },
	}
}

func (st *state) dotBody(a, b *core.Mem[float64], slot int) {
	if !st.cfg.Compute {
		return
	}
	sum := 0.0
	for i := 0; i < st.myRows; i++ {
		sum += a.Data()[i] * b.Data()[i]
	}
	st.dots.Data()[slot] = sum
}

// axpyKernel performs x += alpha·p and r -= alpha·ap.
func (st *state) axpyKernel(alpha func() float64) *gpu.Kernel {
	return &gpu.Kernel{
		Name: "axpy",
		Time: st.vecTime(6),
		Body: func(kc *gpu.KernelCtx) { st.axpyBody(alpha()) },
	}
}

func (st *state) axpyBody(alpha float64) {
	if !st.cfg.Compute {
		return
	}
	for i := 0; i < st.myRows; i++ {
		st.x.Data()[i] += alpha * st.p.Data()[i]
		st.r.Data()[i] -= alpha * st.ap.Data()[i]
	}
}

// updatePKernel performs p = r + beta·p.
func (st *state) updatePKernel(beta func() float64) *gpu.Kernel {
	return &gpu.Kernel{
		Name: "update-p",
		Time: st.vecTime(3),
		Body: func(kc *gpu.KernelCtx) { st.updatePBody(beta()) },
	}
}

func (st *state) updatePBody(beta float64) {
	if !st.cfg.Compute {
		return
	}
	for i := 0; i < st.myRows; i++ {
		st.p.Data()[i] = st.r.Data()[i] + beta*st.p.Data()[i]
	}
}

// scalarStep folds the host-side scalar logic: alpha from pAp, then after
// the second dot, beta. In modeled-only runs the values are inert.
func (st *state) alpha() float64 {
	if !st.cfg.Compute {
		return 1
	}
	pap := st.dots.Data()[0]
	if pap == 0 {
		return 0
	}
	return st.rsold / pap
}

func (st *state) betaAndRoll() float64 {
	if !st.cfg.Compute {
		return 0
	}
	rsnew := st.dots.Data()[1]
	beta := 0.0
	if st.rsold != 0 {
		beta = rsnew / st.rsold
	}
	st.rsold = rsnew
	return beta
}

// residual reports the final squared residual norm.
func (st *state) residual() float64 {
	if !st.cfg.Compute {
		return 0
	}
	if math.IsNaN(st.rsold) {
		panic("cg: NaN residual")
	}
	return st.rsold
}

// RunSerial executes the reference CG on one in-memory matrix and returns
// the squared residual after iters iterations.
func RunSerial(m *sparse.CSR, iters int) float64 {
	n := m.Rows
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	b := make([]float64, n)
	m.SpMV(b, ones, 0, n)
	x := make([]float64, n)
	r := append([]float64{}, b...)
	p := append([]float64{}, b...)
	ap := make([]float64, n)
	rsold := 0.0
	for _, v := range r {
		rsold += v * v
	}
	for it := 0; it < iters; it++ {
		m.SpMV(ap, p, 0, n)
		pap := 0.0
		for i := range p {
			pap += p[i] * ap[i]
		}
		alpha := 0.0
		if pap != 0 {
			alpha = rsold / pap
		}
		rsnew := 0.0
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
			rsnew += r[i] * r[i]
		}
		beta := 0.0
		if rsold != 0 {
			beta = rsnew / rsold
		}
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rsold = rsnew
	}
	return rsold
}
