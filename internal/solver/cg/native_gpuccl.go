package cg

// Native GPUCCL CG: the Allgatherv is composed from grouped ncclSend/
// ncclRecv (NCCL has no variable-size allgather), the dot reductions use
// ncclAllReduce; the host synchronizes the stream only to read the scalars.

import (
	"repro/internal/core"
	"repro/internal/gpu"
)

func runNativeGPUCCL(cfg Config, env *core.Env) rankResult {
	st := newState(cfg, env)
	ccl := env.CCLComm()
	p := env.Proc()
	counts, displs := st.part.Counts(), st.part.Displs()
	me, n := st.rank, cfg.NGPUs

	st.start.Record(st.stream)
	for it := 0; it < cfg.Iters; it++ {
		if !cfg.DisableAllgatherv {
			ccl.GroupStart()
			for r := 0; r < n; r++ {
				if r == me {
					continue
				}
				ccl.Send(p, st.stream, st.p.View(0, st.myRows), r)
				ccl.Recv(p, st.stream, st.pFull.View(displs[r], counts[r]), r)
			}
			ccl.GroupEnd(p, st.stream)
			st.stream.MemcpyAsync(p, st.pFull.View(displs[me], st.myRows), st.p.View(0, st.myRows), st.myRows)
		}
		st.stream.Launch(p, st.spmvKernel(), nil)
		st.stream.Launch(p, st.dotKernel(st.p, st.ap, 0), nil)
		ccl.AllReduce(p, st.stream, st.dots.View(0, 1), st.dots.View(0, 1), gpu.ReduceSum)
		st.stream.Synchronize(p)
		alpha := st.alpha()
		st.stream.Launch(p, st.axpyKernel(func() float64 { return alpha }), nil)
		st.stream.Launch(p, st.dotKernel(st.r, st.r, 1), nil)
		ccl.AllReduce(p, st.stream, st.dots.View(1, 1), st.dots.View(1, 1), gpu.ReduceSum)
		st.stream.Synchronize(p)
		beta := st.betaAndRoll()
		st.stream.Launch(p, st.updatePKernel(func() float64 { return beta }), nil)
	}
	st.stop.Record(st.stream)
	st.stream.Synchronize(p)
	env.MPIComm().Barrier(p)
	return rankResult{elapsed: gpu.Elapsed(st.start, st.stop), residual: st.residual()}
}
