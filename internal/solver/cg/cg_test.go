package cg

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sparse"
)

func testMatrix() *sparse.CSR { return sparse.Laplace3D(6, 6, 4) } // 144 rows

// testIters keeps the residual far above machine epsilon so the
// cross-variant comparison is not dominated by summation-order noise.
const testIters = 5

func variantsFor(m *machine.Model) []Config {
	base := Config{Model: m, Matrix: testMatrix(), Iters: testIters, Compute: true}
	mk := func(v Variant, b core.BackendID, mode core.LaunchMode) Config {
		c := base
		c.Variant, c.Backend, c.Mode = v, b, mode
		return c
	}
	cfgs := []Config{
		mk(NativeMPI, 0, 0),
		mk(NativeGPUCCL, 0, 0),
		mk(Uniconn, core.MPIBackend, core.PureHost),
		mk(Uniconn, core.GpucclBackend, core.PureHost),
	}
	if m.HasGPUSHMEM {
		cfgs = append(cfgs,
			mk(NativeGPUSHMEMHost, 0, 0),
			mk(NativeGPUSHMEMDevice, 0, 0),
			mk(Uniconn, core.GpushmemBackend, core.PureHost),
			mk(Uniconn, core.GpushmemBackend, core.PureDevice),
		)
	}
	return cfgs
}

func name(c Config) string {
	if c.Variant == Uniconn {
		return fmt.Sprintf("Uniconn-%v-%v", c.Backend, c.Mode)
	}
	return c.Variant.String()
}

func TestAllVariantsMatchSerialResidual(t *testing.T) {
	want := RunSerial(testMatrix(), testIters)
	for _, model := range []*machine.Model{machine.Perlmutter(), machine.LUMI()} {
		for _, n := range []int{1, 3, 4} {
			for _, cfg := range variantsFor(model) {
				cfg := cfg
				cfg.NGPUs = n
				t.Run(fmt.Sprintf("%s_%s_n%d", model.Name, name(cfg), n), func(t *testing.T) {
					res, err := Run(cfg)
					if err != nil {
						t.Fatal(err)
					}
					if rel := math.Abs(res.Residual-want) / (math.Abs(want) + 1e-30); rel > 1e-9 {
						t.Fatalf("residual %v, want %v (rel %v)", res.Residual, want, rel)
					}
					if res.PerIter <= 0 {
						t.Fatal("no time elapsed")
					}
				})
			}
		}
	}
}

func TestCGActuallyConverges(t *testing.T) {
	// The residual must shrink dramatically over CG iterations (it is a
	// Krylov method on an SPD matrix), both serially and distributed.
	m := testMatrix()
	r1 := RunSerial(m, 1)
	r40 := RunSerial(m, 40)
	if r40 > r1*1e-6 {
		t.Fatalf("poor serial convergence: r1=%v r40=%v", r1, r40)
	}
	cfg := Config{
		Model: machine.Perlmutter(), NGPUs: 4, Matrix: m, Iters: 40, Compute: true,
		Variant: Uniconn, Backend: core.GpucclBackend, Mode: core.PureHost,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Residual > r1*1e-6 {
		t.Fatalf("poor distributed convergence: r1=%v r40=%v", r1, res.Residual)
	}
}

func TestUniconnOverheadUnderTwoPercent(t *testing.T) {
	// Headline §VI-D claim: UNICONN CG within ~2% of native.
	mat := sparse.Serena().Generate(0.01) // ~14k rows, modeled timing
	base := Config{Model: machine.Perlmutter(), NGPUs: 8, Matrix: mat, Iters: 30, Compute: false}
	mk := func(v Variant, b core.BackendID, mode core.LaunchMode) Config {
		c := base
		c.Variant, c.Backend, c.Mode = v, b, mode
		return c
	}
	pairs := [][2]Config{
		{mk(NativeMPI, 0, 0), mk(Uniconn, core.MPIBackend, core.PureHost)},
		{mk(NativeGPUCCL, 0, 0), mk(Uniconn, core.GpucclBackend, core.PureHost)},
		{mk(NativeGPUSHMEMHost, 0, 0), mk(Uniconn, core.GpushmemBackend, core.PureHost)},
		{mk(NativeGPUSHMEMDevice, 0, 0), mk(Uniconn, core.GpushmemBackend, core.PureDevice)},
	}
	for _, pr := range pairs {
		pr := pr
		t.Run(name(pr[1]), func(t *testing.T) {
			nat, err := Run(pr[0])
			if err != nil {
				t.Fatal(err)
			}
			uc, err := Run(pr[1])
			if err != nil {
				t.Fatal(err)
			}
			over := (float64(uc.Total) - float64(nat.Total)) / float64(nat.Total) * 100
			if over > 4 || over < -4 {
				t.Fatalf("overhead %.2f%% (native %v, uniconn %v)", over, nat.Total, uc.Total)
			}
		})
	}
}

func TestMPIAllgathervBottleneckAblation(t *testing.T) {
	// §VI-D: MPI CG is much slower than GPUCCL; with Allgatherv disabled
	// the two take similar time, isolating the collective as the culprit.
	// The pathology needs paper-scale vectors (Serena is 1.39M rows) for
	// the staging cost to dominate the fixed launch overheads.
	mat := sparse.Serena().Generate(0.2)
	base := Config{Model: machine.Perlmutter(), NGPUs: 8, Matrix: mat, Iters: 10, Compute: false}
	run := func(v Variant, disable bool) Result {
		c := base
		c.Variant = v
		c.DisableAllgatherv = disable
		r, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	mpiFull := run(NativeMPI, false)
	cclFull := run(NativeGPUCCL, false)
	if float64(mpiFull.Total) < 1.2*float64(cclFull.Total) {
		t.Fatalf("expected MPI CG (%v) well above GPUCCL CG (%v)", mpiFull.Total, cclFull.Total)
	}
	mpiNoAg := run(NativeMPI, true)
	cclNoAg := run(NativeGPUCCL, true)
	ratio := float64(mpiNoAg.Total) / float64(cclNoAg.Total)
	if ratio > 1.5 || ratio < 0.5 {
		t.Fatalf("without allgatherv MPI %v vs GPUCCL %v (ratio %.2f), expected similar",
			mpiNoAg.Total, cclNoAg.Total, ratio)
	}
}

func TestInvalidConfig(t *testing.T) {
	if _, err := Run(Config{Model: machine.Perlmutter(), NGPUs: 2}); err == nil {
		t.Error("nil matrix accepted")
	}
	if _, err := Run(Config{
		Model: machine.Perlmutter(), NGPUs: 2, Matrix: testMatrix(), Iters: 1,
		Compute: true, DisableAllgatherv: true,
	}); err == nil {
		t.Error("functional no-allgatherv run accepted")
	}
}
