package cg

// Native GPU-aware MPI CG: host-blocking Allgatherv for the SpMV input and
// host-blocking Allreduce for the dot products, with explicit stream
// synchronization before every communication phase.

import (
	"repro/internal/core"
	"repro/internal/gpu"
)

func runNativeMPI(cfg Config, env *core.Env) rankResult {
	st := newState(cfg, env)
	comm := env.MPIComm()
	p := env.Proc()
	counts, displs := st.part.Counts(), st.part.Displs()

	st.start.Record(st.stream)
	for it := 0; it < cfg.Iters; it++ {
		// Assemble the SpMV input vector.
		st.stream.Synchronize(p)
		if !cfg.DisableAllgatherv {
			comm.Allgatherv(p, st.p.View(0, st.myRows), st.pFull.Whole(), counts, displs)
		}
		st.stream.Launch(p, st.spmvKernel(), nil)
		st.stream.Launch(p, st.dotKernel(st.p, st.ap, 0), nil)
		st.stream.Synchronize(p)
		comm.Allreduce(p, st.dots.View(0, 1), st.dots.View(0, 1), gpu.ReduceSum)
		alpha := st.alpha()
		st.stream.Launch(p, st.axpyKernel(func() float64 { return alpha }), nil)
		st.stream.Launch(p, st.dotKernel(st.r, st.r, 1), nil)
		st.stream.Synchronize(p)
		comm.Allreduce(p, st.dots.View(1, 1), st.dots.View(1, 1), gpu.ReduceSum)
		beta := st.betaAndRoll()
		st.stream.Launch(p, st.updatePKernel(func() float64 { return beta }), nil)
	}
	st.stop.Record(st.stream)
	st.stream.Synchronize(p)
	comm.Barrier(p)
	return rankResult{elapsed: gpu.Elapsed(st.start, st.stop), residual: st.residual()}
}
