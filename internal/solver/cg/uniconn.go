package cg

// UNICONN CG: a single implementation whose communication goes through the
// Coordinator — AllGatherv for the SpMV exchange, AllReduce for the dots —
// and which runs unchanged on MPI, GPUCCL, and GPUSHMEM, in PureHost or
// PureDevice mode.

import (
	"repro/internal/core"
	"repro/internal/gpu"
)

func runUniconn(cfg Config, env *core.Env) rankResult {
	env.SetDevice(env.NodeRank())
	comm := core.NewCommunicator(env)
	st := newState(cfg, env)
	coord := core.NewCoordinator(env, cfg.Mode, st.stream)
	counts, displs := st.part.Counts(), st.part.Displs()
	p := env.Proc()

	if cfg.Mode == core.PureDevice {
		return runUniconnDevice(cfg, env, st, coord, comm, counts, displs)
	}

	st.start.Record(st.stream)
	for it := 0; it < cfg.Iters; it++ {
		if !cfg.DisableAllgatherv {
			core.AllGatherv(coord, st.p.Base(), st.pFull.Base(), counts, displs, comm)
		}
		st.stream.Launch(p, st.spmvKernel(), nil)
		st.stream.Launch(p, st.dotKernel(st.p, st.ap, 0), nil)
		core.AllReduceInPlace(coord, gpu.ReduceSum, st.dots.Base(), 1, comm)
		env.StreamSynchronize(st.stream)
		alpha := st.alpha()
		st.stream.Launch(p, st.axpyKernel(func() float64 { return alpha }), nil)
		st.stream.Launch(p, st.dotKernel(st.r, st.r, 1), nil)
		core.AllReduceInPlace(coord, gpu.ReduceSum, st.dots.At(1), 1, comm)
		env.StreamSynchronize(st.stream)
		beta := st.betaAndRoll()
		st.stream.Launch(p, st.updatePKernel(func() float64 { return beta }), nil)
	}
	st.stop.Record(st.stream)
	env.StreamSynchronize(st.stream)
	comm.HostBarrier()
	return rankResult{elapsed: gpu.Elapsed(st.start, st.stop), residual: st.residual()}
}

// runUniconnDevice is the PureDevice flavour: the iteration body is one
// collective-launched kernel using the device-side collectives.
func runUniconnDevice(cfg Config, env *core.Env, st *state, coord *core.Coordinator,
	comm *core.Communicator, counts, displs []int) rankResult {

	dc := comm.ToDevice()
	st.start.Record(st.stream)
	for it := 0; it < cfg.Iters; it++ {
		k := &gpu.Kernel{Name: "cg-uniconn-dev", Body: func(kc *gpu.KernelCtx) {
			if !cfg.DisableAllgatherv {
				core.DevAllGatherv(kc, st.p.Base(), st.pFull.Base(), counts, displs, dc)
			}
			kc.P.Advance(kc.Dev.Model().SpMVKernelTime(st.nnz))
			st.spmvBody()
			kc.P.Advance(st.vecTime(2)(kc.Dev))
			st.dotBody(st.p, st.ap, 0)
			core.DevAllReduce(kc, gpu.ReduceSum, st.dots.Base(), st.dots.Base(), 1, dc)
			alpha := st.alpha()
			kc.P.Advance(st.vecTime(6)(kc.Dev))
			st.axpyBody(alpha)
			kc.P.Advance(st.vecTime(2)(kc.Dev))
			st.dotBody(st.r, st.r, 1)
			core.DevAllReduce(kc, gpu.ReduceSum, st.dots.At(1), st.dots.At(1), 1, dc)
			beta := st.betaAndRoll()
			kc.P.Advance(st.vecTime(3)(kc.Dev))
			st.updatePBody(beta)
		}}
		coord.BindKernel(core.PureDevice, k, nil)
		coord.LaunchKernel()
	}
	st.stop.Record(st.stream)
	env.StreamSynchronize(st.stream)
	comm.HostBarrier()
	return rankResult{elapsed: gpu.Elapsed(st.start, st.stop), residual: st.residual()}
}
