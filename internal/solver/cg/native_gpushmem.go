package cg

// Native GPUSHMEM CG.
//
// Host API: on-stream emulated allgatherv (puts + barrier) and on-stream
// team allreduce.
//
// Device API: one collective-launched kernel per iteration performs the
// whole pipeline — allgatherv, SpMV, both dot products with device-side
// allreduce, and the vector updates — with the scalar recurrences computed
// redundantly on every PE (the CPU-free style of [37]).

import (
	"repro/internal/core"
	"repro/internal/gpu"
)

func runNativeShmemHost(cfg Config, env *core.Env) rankResult {
	st := newState(cfg, env)
	pe := env.ShmemPE()
	p := env.Proc()
	counts, displs := st.part.Counts(), st.part.Displs()

	st.start.Record(st.stream)
	for it := 0; it < cfg.Iters; it++ {
		if !cfg.DisableAllgatherv {
			pe.AllGathervOnStream(p, st.stream, st.p.View(0, st.myRows), st.pFull.Whole(), counts, displs)
		}
		st.stream.Launch(p, st.spmvKernel(), nil)
		st.stream.Launch(p, st.dotKernel(st.p, st.ap, 0), nil)
		pe.AllReduceOnStream(p, st.stream, st.dots.View(0, 1), st.dots.View(0, 1), gpu.ReduceSum)
		st.stream.Synchronize(p)
		alpha := st.alpha()
		st.stream.Launch(p, st.axpyKernel(func() float64 { return alpha }), nil)
		st.stream.Launch(p, st.dotKernel(st.r, st.r, 1), nil)
		pe.AllReduceOnStream(p, st.stream, st.dots.View(1, 1), st.dots.View(1, 1), gpu.ReduceSum)
		st.stream.Synchronize(p)
		beta := st.betaAndRoll()
		st.stream.Launch(p, st.updatePKernel(func() float64 { return beta }), nil)
	}
	st.stop.Record(st.stream)
	st.stream.Synchronize(p)
	env.MPIComm().Barrier(p)
	return rankResult{elapsed: gpu.Elapsed(st.start, st.stop), residual: st.residual()}
}

func runNativeShmemDevice(cfg Config, env *core.Env) rankResult {
	st := newState(cfg, env)
	pe := env.ShmemPE()
	p := env.Proc()
	counts, displs := st.part.Counts(), st.part.Displs()

	st.start.Record(st.stream)
	for it := 0; it < cfg.Iters; it++ {
		k := &gpu.Kernel{Name: "cg-dev", Body: func(kc *gpu.KernelCtx) {
			if !cfg.DisableAllgatherv {
				pe.DevAllGatherv(kc, st.p.View(0, st.myRows), st.pFull.Whole(), counts, displs)
			}
			kc.P.Advance(kc.Dev.Model().SpMVKernelTime(st.nnz))
			st.spmvBody()
			kc.P.Advance(st.vecTime(2)(kc.Dev))
			st.dotBody(st.p, st.ap, 0)
			pe.DevAllReduce(kc, st.dots.View(0, 1), st.dots.View(0, 1), gpu.ReduceSum)
			alpha := st.alpha()
			kc.P.Advance(st.vecTime(6)(kc.Dev))
			st.axpyBody(alpha)
			kc.P.Advance(st.vecTime(2)(kc.Dev))
			st.dotBody(st.r, st.r, 1)
			pe.DevAllReduce(kc, st.dots.View(1, 1), st.dots.View(1, 1), gpu.ReduceSum)
			beta := st.betaAndRoll()
			kc.P.Advance(st.vecTime(3)(kc.Dev))
			st.updatePBody(beta)
		}}
		pe.CollectiveLaunch(p, st.stream, k, nil)
	}
	st.stop.Record(st.stream)
	st.stream.Synchronize(p)
	env.MPIComm().Barrier(p)
	return rankResult{elapsed: gpu.Elapsed(st.start, st.stop), residual: st.residual()}
}
