package jacobi

// Native GPU-aware MPI Jacobi (the paper's Listing 1): launch the compute
// kernel, synchronize the stream (MPI has no stream integration), then
// exchange halos with non-blocking sends/receives and a Waitall.

import (
	"repro/internal/core"
	"repro/internal/mpi"
)

// Halo-exchange tags: messages travelling toward rank-1 vs rank+1.
const (
	tagUp   = 11
	tagDown = 12
)

func runNativeMPI(cfg Config, env *core.Env) rankResult {
	st := newState(cfg, env)
	comm := env.MPIComm()
	p := env.Proc()
	nx := st.g.nx

	body := func(int) {
		cur, next := st.cur(), st.next()
		st.stream.Launch(p, st.computeKernel(cur, next), nil)
		// MPI cannot see the stream: the host must drain it before
		// touching device buffers.
		st.stream.Synchronize(p)
		reqs := make([]*mpi.Request, 0, 4)
		if st.g.top != -1 {
			reqs = append(reqs,
				comm.Irecv(p, next.recv.View(0, nx), st.g.top, tagDown),
				comm.Isend(p, next.send.View(0, nx), st.g.top, tagUp))
		}
		if st.g.bot != -1 {
			reqs = append(reqs,
				comm.Irecv(p, next.recv.View(nx, nx), st.g.bot, tagUp),
				comm.Isend(p, next.send.View(nx, nx), st.g.bot, tagDown))
		}
		mpi.WaitAll(p, reqs...)
		st.swap()
	}
	elapsed := st.timedLoop(func() { comm.Barrier(p) }, body)
	return rankResult{elapsed: elapsed, checksum: st.checksum()}
}
