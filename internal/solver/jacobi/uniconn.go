package jacobi

// UNICONN Jacobi (the paper's Listing 4): one implementation that runs on
// every backend (MPI, GPUCCL, GPUSHMEM) and every launch mode (PureHost,
// PartialDevice, PureDevice) by switching the Coordinator's configuration —
// the application code is otherwise identical.

import (
	"repro/internal/core"
	"repro/internal/gpu"
)

func runUniconn(cfg Config, env *core.Env) rankResult {
	env.SetDevice(env.NodeRank())
	comm := core.NewCommunicator(env)
	st := newState(cfg, env)
	coord := core.NewCoordinator(env, cfg.Mode, st.stream)
	nx := st.g.nx

	var dc *core.DeviceComm
	if cfg.Mode != core.PureHost {
		dc = comm.ToDevice()
	}

	body := func(iter int) {
		cur, next := st.cur(), st.next()
		val := uint64(iter)

		// Bind the kernel matching the active launch mode. Only the bound
		// kernel for the coordinator's mode is launched; the others mirror
		// the paper's side-by-side BindKernel calls (Listing 4, 20-27).
		coord.BindKernel(core.PureHost, st.computeKernel(cur, next), nil)
		coord.BindKernel(core.PartialDevice, st.partialDeviceKernel(cur, next, dc), nil)
		coord.BindKernel(core.PureDevice, st.pureDeviceKernel(cur, next, val, dc), nil)
		coord.LaunchKernel()

		if cfg.Mode != core.PureDevice {
			coord.CommStart()
			if st.g.top != -1 {
				core.Post(coord, st.sendTop(next), st.recvRemoteFromBot(next), nx,
					core.Sig(st.sync, sigFromBot), val, st.g.top, comm)
			}
			if st.g.bot != -1 {
				core.Post(coord, st.sendBot(next), st.recvRemoteFromTop(next), nx,
					core.Sig(st.sync, sigFromTop), val, st.g.bot, comm)
			}
			if st.g.top != -1 {
				core.Acknowledge(coord, st.recvFromTop(next), nx,
					core.Sig(st.sync, sigFromTop), val, st.g.top, comm)
			}
			if st.g.bot != -1 {
				core.Acknowledge(coord, st.recvFromBot(next), nx,
					core.Sig(st.sync, sigFromBot), val, st.g.bot, comm)
			}
			coord.CommEnd()
		}
		st.swap()
	}
	elapsed := st.timedLoop(func() {
		comm.Barrier(st.stream)
	}, body)
	return rankResult{elapsed: elapsed, checksum: st.checksum()}
}

// Pointer helpers naming the four exchange endpoints (A_buf, A_buf+nx,
// Anew_buf, Anew_buf+nx in Listing 4).
func (st *state) sendTop(b bufset) core.Ptr[float32] { return b.send.At(0) }
func (st *state) sendBot(b bufset) core.Ptr[float32] { return b.send.At(st.g.nx) }

// recvFromTop/Bot are this rank's halo staging slots.
func (st *state) recvFromTop(b bufset) core.Ptr[float32] { return b.recv.At(0) }
func (st *state) recvFromBot(b bufset) core.Ptr[float32] { return b.recv.At(st.g.nx) }

// recvRemoteFromBot/Top name the peer-side destination of a Post: sending
// to the top neighbour lands in its from-bottom slot and vice versa
// (symmetric addressing resolves the peer instance).
func (st *state) recvRemoteFromBot(b bufset) core.Ptr[float32] { return b.recv.At(st.g.nx) }
func (st *state) recvRemoteFromTop(b bufset) core.Ptr[float32] { return b.recv.At(0) }

// partialDeviceKernel computes the boundary rows first, sends their
// payloads from inside the kernel without signals (Listing 6), and only
// then sweeps the interior — so the halo transfers overlap the bulk of the
// computation, which is the point of the PartialDevice middle ground
// (§IV-E1: "partition messages into smaller chunks aligned with the GPU
// kernel's computation pattern and send them asynchronously"). The
// host-side Post/Acknowledge pair completes and synchronizes the transfers.
func (st *state) partialDeviceKernel(cur, next bufset, dc *core.DeviceComm) *gpu.Kernel {
	nx, chunk := st.g.nx, st.g.chunk
	return &gpu.Kernel{Name: "jacobi-pdev", Body: func(kc *gpu.KernelCtx) {
		st.unpack(cur)
		if chunk <= 2 {
			kc.P.Advance(st.kernelTime()(kc.Dev))
			st.sweepRows(cur, next, 1, chunk)
			st.pack(next)
		} else {
			// Boundary rows first…
			kc.P.Advance(kc.Dev.Model().StencilKernelTime(st.rowBytes(2)))
			st.sweepRows(cur, next, 1, 1)
			st.sweepRows(cur, next, chunk, chunk)
			st.pack(next)
		}
		// …send while the interior computes.
		if st.g.top != -1 {
			core.DevPost(kc, core.Block, st.sendTop(next), st.recvRemoteFromBot(next), nx,
				core.Signal{}, 0, st.g.top, dc)
		}
		if st.g.bot != -1 {
			core.DevPost(kc, core.Block, st.sendBot(next), st.recvRemoteFromTop(next), nx,
				core.Signal{}, 0, st.g.bot, dc)
		}
		if chunk > 2 {
			kc.P.Advance(kc.Dev.Model().StencilKernelTime(st.rowBytes(chunk - 2)))
			st.sweepRows(cur, next, 2, chunk-1)
		}
	}}
}

// pureDeviceKernel computes, posts with signals, and waits, all inside the
// kernel (Listing 5).
func (st *state) pureDeviceKernel(cur, next bufset, val uint64, dc *core.DeviceComm) *gpu.Kernel {
	nx := st.g.nx
	return &gpu.Kernel{Name: "jacobi-fdev", Body: func(kc *gpu.KernelCtx) {
		kc.P.Advance(st.kernelTime()(kc.Dev))
		st.sweep(cur, next)
		if st.g.top != -1 {
			core.DevPost(kc, core.Block, st.sendTop(next), st.recvRemoteFromBot(next), nx,
				core.Sig(st.sync, sigFromBot), val, st.g.top, dc)
		}
		if st.g.bot != -1 {
			core.DevPost(kc, core.Block, st.sendBot(next), st.recvRemoteFromTop(next), nx,
				core.Sig(st.sync, sigFromTop), val, st.g.bot, dc)
		}
		if st.g.top != -1 {
			core.DevAcknowledge(kc, core.Sig(st.sync, sigFromTop), val, dc)
		}
		if st.g.bot != -1 {
			core.DevAcknowledge(kc, core.Sig(st.sync, sigFromBot), val, dc)
		}
	}}
}
