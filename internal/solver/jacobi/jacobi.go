// Package jacobi implements the paper's 2D Jacobi experiment (§VI-C): a
// 5-point star stencil on an NX×NY grid partitioned across GPUs along the
// y-axis, with per-iteration halo exchanges of the boundary rows.
//
// Five implementation variants are provided, mirroring the paper's Table II
// rows: native GPU-aware MPI, native GPUCCL (grouped send/recv, Listing 2),
// native GPUSHMEM host API, native GPUSHMEM device API (Listing 3), and the
// UNICONN version (Listing 4) which runs on any backend and launch mode
// without code changes.
package jacobi

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Variant selects one implementation.
type Variant int

// The implementation variants (Table II rows).
const (
	NativeMPI Variant = iota
	NativeGPUCCL
	NativeGPUSHMEMHost
	NativeGPUSHMEMDevice
	Uniconn
)

func (v Variant) String() string {
	switch v {
	case NativeMPI:
		return "MPI-Native"
	case NativeGPUCCL:
		return "GPUCCL-Native"
	case NativeGPUSHMEMHost:
		return "GPUSHMEM-Host-Native"
	case NativeGPUSHMEMDevice:
		return "GPUSHMEM-Device-Native"
	case Uniconn:
		return "Uniconn"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Config describes one Jacobi run.
type Config struct {
	Model *machine.Model
	NGPUs int
	// NX is the row width; NY the global row count (the paper uses
	// 2^14 × 2^14).
	NX, NY int
	// Iters and Warmup are the timed and untimed iteration counts.
	Iters, Warmup int
	// Compute selects functional execution (real float32 arithmetic,
	// verifiable) versus modeled-only execution (virtual time only, for
	// paper-scale grids).
	Compute bool

	Variant Variant
	// Backend and Mode configure the Uniconn variant (ignored otherwise).
	Backend core.BackendID
	Mode    core.LaunchMode

	// Trace, when non-nil, records the run's execution spans.
	Trace *trace.Log
	// Metrics, when non-nil, collects the run's counters (see
	// internal/metrics; one registry per run, never shared across cells).
	Metrics *metrics.Registry
}

// Result reports one run.
type Result struct {
	// PerIter is the event-timed duration per timed iteration.
	PerIter sim.Duration
	// Total is the timed-section duration.
	Total sim.Duration
	// End is the virtual time at which the whole run (including warmup and
	// teardown) finished — the profiler's attribution horizon.
	End sim.Time
	// Checksum sums the final interior values (functional runs only);
	// used by tests to compare variants and the serial reference.
	Checksum float64
}

// backendOf maps a native variant to the backend its Environment boots.
func (cfg Config) backendOf() core.BackendID {
	switch cfg.Variant {
	case NativeMPI:
		return core.MPIBackend
	case NativeGPUCCL:
		return core.GpucclBackend
	case NativeGPUSHMEMHost, NativeGPUSHMEMDevice:
		return core.GpushmemBackend
	default:
		return cfg.Backend
	}
}

// rankGrid is the per-rank decomposition.
type rankGrid struct {
	nx, chunk int // interior rows owned by this rank
	top, bot  int // neighbour ranks (-1 if boundary)
}

func decompose(cfg Config, rank int) rankGrid {
	n := cfg.NGPUs
	lo := rank * cfg.NY / n
	hi := (rank + 1) * cfg.NY / n
	g := rankGrid{nx: cfg.NX, chunk: hi - lo, top: rank - 1, bot: rank + 1}
	if g.top < 0 {
		g.top = -1
	}
	if g.bot >= n {
		g.bot = -1
	}
	return g
}

// interiorBytes is the memory traffic of one stencil sweep over the chunk
// (one read + one write stream per point, float32).
func (g rankGrid) interiorBytes() int64 { return int64(g.chunk) * int64(g.nx) * 8 }

// Run executes the configured variant and returns its timing (and checksum
// for functional runs).
func Run(cfg Config) (Result, error) {
	if cfg.NGPUs < 1 || cfg.NX < 3 || cfg.NY < cfg.NGPUs {
		return Result{}, fmt.Errorf("jacobi: invalid config %+v", cfg)
	}
	if cfg.Mode != core.PureHost && cfg.Variant == Uniconn && cfg.Backend != core.GpushmemBackend {
		return Result{}, fmt.Errorf("jacobi: %v requires the GPUSHMEM backend", cfg.Mode)
	}
	perRank := make([]rankResult, cfg.NGPUs)
	rep, err := core.Launch(core.Config{
		Model: cfg.Model, NGPUs: cfg.NGPUs, Backend: cfg.backendOf(), Trace: cfg.Trace,
		Metrics: cfg.Metrics,
	}, func(env *core.Env) {
		var rr rankResult
		switch cfg.Variant {
		case NativeMPI:
			rr = runNativeMPI(cfg, env)
		case NativeGPUCCL:
			rr = runNativeGPUCCL(cfg, env)
		case NativeGPUSHMEMHost:
			rr = runNativeShmemHost(cfg, env)
		case NativeGPUSHMEMDevice:
			rr = runNativeShmemDevice(cfg, env)
		default:
			rr = runUniconn(cfg, env)
		}
		perRank[env.WorldRank()] = rr
	})
	if err != nil {
		return Result{}, err
	}
	res := Result{End: rep.End}
	for _, rr := range perRank {
		if rr.elapsed > res.Total {
			res.Total = rr.elapsed
		}
		res.Checksum += rr.checksum
	}
	res.PerIter = res.Total / sim.Duration(cfg.Iters)
	return res, nil
}

type rankResult struct {
	elapsed  sim.Duration
	checksum float64
}

// state is the per-rank solver storage shared by all variants: the two grid
// arrays with halo rows, and the staging buffers for boundary exchange.
//
// Layout: a and anew have (chunk+2)*nx elements; row 0 is the halo from the
// top neighbour, rows 1..chunk are interior, row chunk+1 is the halo from
// the bottom neighbour. sendBuf rows: [0,nx) = my top interior row,
// [nx,2nx) = my bottom interior row. recvBuf rows: [0,nx) = halo arriving
// from top, [nx,2nx) = halo arriving from bottom.
type state struct {
	cfg  Config
	g    rankGrid
	rank int

	// Double-buffered grid, each with its own exchange staging: the
	// kernel sweeping INTO bufs[k].grid packs the new boundary rows into
	// bufs[k].send, which the exchange delivers into the neighbours'
	// bufs[k].recv; the next sweep unpacks bufs[k].recv into the halo
	// rows before reading bufs[k].grid.
	bufs [2]bufset
	curi int

	sync        *core.Mem[uint64]
	env         *core.Env
	stream      *gpu.Stream
	start, stop *gpu.Event
}

type bufset struct {
	grid *core.Mem[float32] // (chunk+2)*nx with halo rows 0 and chunk+1
	send *core.Mem[float32] // [0,nx) to top, [nx,2nx) to bottom
	recv *core.Mem[float32] // [0,nx) from top, [nx,2nx) from bottom
}

// newState allocates the solver storage through the UNICONN Memory
// construct (symmetric on GPUSHMEM, plain device memory elsewhere) and
// initializes the boundary conditions.
func newState(cfg Config, env *core.Env) *state {
	g := decompose(cfg, env.WorldRank())
	st := &state{
		cfg: cfg, g: g, rank: env.WorldRank(), env: env,
		stream: env.NewStream("jacobi"),
		start:  gpu.NewEvent("start"), stop: gpu.NewEvent("stop"),
	}
	rows := g.chunk + 2
	for k := range st.bufs {
		st.bufs[k] = bufset{
			grid: core.Alloc[float32](env, rows*g.nx),
			send: core.Alloc[float32](env, 2*g.nx),
			recv: core.Alloc[float32](env, 2*g.nx),
		}
	}
	st.sync = core.Alloc[uint64](env, 4)
	if cfg.Compute {
		initGrid(st.bufs[0].grid.Data(), g, st.rank, cfg)
		initGrid(st.bufs[1].grid.Data(), g, st.rank, cfg)
	}
	return st
}

// initGrid applies Dirichlet boundaries: the global edges are held at 1.
func initGrid(a []float32, g rankGrid, rank int, cfg Config) {
	rows := g.chunk + 2
	for r := 0; r < rows; r++ {
		for c := 0; c < g.nx; c++ {
			a[r*g.nx+c] = 0
		}
		a[r*g.nx] = 1
		a[r*g.nx+g.nx-1] = 1
	}
	if g.top == -1 { // global top edge lives in halo row 0
		for c := 0; c < g.nx; c++ {
			a[c] = 1
		}
	}
	if g.bot == -1 {
		for c := 0; c < g.nx; c++ {
			a[(rows-1)*g.nx+c] = 1
		}
	}
}

// cur and next return the buffer sets of the current iteration: the sweep
// reads cur.grid and writes next.grid.
func (st *state) cur() bufset  { return st.bufs[st.curi] }
func (st *state) next() bufset { return st.bufs[1-st.curi] }

// swap flips the double buffers (std::swap in Listing 4).
func (st *state) swap() { st.curi = 1 - st.curi }

// checksum sums the interior of the final grid.
func (st *state) checksum() float64 {
	if !st.cfg.Compute {
		return 0
	}
	cur := st.cur().grid
	sum := 0.0
	for r := 1; r <= st.g.chunk; r++ {
		for c := 0; c < st.g.nx; c++ {
			sum += float64(cur.Data()[r*st.g.nx+c])
		}
	}
	if math.IsNaN(sum) {
		panic("jacobi: NaN checksum")
	}
	return sum
}

// RunSerial computes the reference solution on a single in-memory grid,
// returning the interior checksum; tests compare the distributed variants
// against it.
func RunSerial(nx, ny, iters int) float64 {
	rows := ny + 2
	a := make([]float32, rows*nx)
	anew := make([]float32, rows*nx)
	init := func(b []float32) {
		for r := 0; r < rows; r++ {
			b[r*nx] = 1
			b[r*nx+nx-1] = 1
		}
		for c := 0; c < nx; c++ {
			b[c] = 1
			b[(rows-1)*nx+c] = 1
		}
	}
	init(a)
	init(anew)
	for it := 0; it < iters; it++ {
		for r := 1; r <= ny; r++ {
			for c := 1; c < nx-1; c++ {
				anew[r*nx+c] = 0.25 * (a[(r-1)*nx+c] + a[(r+1)*nx+c] + a[r*nx+c-1] + a[r*nx+c+1])
			}
		}
		a, anew = anew, a
	}
	sum := 0.0
	for r := 1; r <= ny; r++ {
		for c := 0; c < nx; c++ {
			sum += float64(a[r*nx+c])
		}
	}
	return sum
}
