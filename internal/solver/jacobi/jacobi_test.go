package jacobi

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/trace"
)

func variantsFor(m *machine.Model) []Config {
	base := Config{Model: m, NX: 64, NY: 48, Iters: 20, Warmup: 5, Compute: true}
	mk := func(v Variant, b core.BackendID, mode core.LaunchMode) Config {
		c := base
		c.Variant, c.Backend, c.Mode = v, b, mode
		return c
	}
	cfgs := []Config{
		mk(NativeMPI, 0, 0),
		mk(NativeGPUCCL, 0, 0),
		mk(Uniconn, core.MPIBackend, core.PureHost),
		mk(Uniconn, core.GpucclBackend, core.PureHost),
	}
	if m.HasGPUSHMEM {
		cfgs = append(cfgs,
			mk(NativeGPUSHMEMHost, 0, 0),
			mk(NativeGPUSHMEMDevice, 0, 0),
			mk(Uniconn, core.GpushmemBackend, core.PureHost),
			mk(Uniconn, core.GpushmemBackend, core.PartialDevice),
			mk(Uniconn, core.GpushmemBackend, core.PureDevice),
		)
	}
	return cfgs
}

func name(c Config) string {
	if c.Variant == Uniconn {
		return fmt.Sprintf("Uniconn-%v-%v", c.Backend, c.Mode)
	}
	return c.Variant.String()
}

func TestAllVariantsMatchSerialReference(t *testing.T) {
	for _, model := range []*machine.Model{machine.Perlmutter(), machine.LUMI()} {
		for _, nGPUs := range []int{1, 3, 4} {
			want := RunSerial(64, 48, 25)
			for _, cfg := range variantsFor(model) {
				cfg := cfg
				cfg.NGPUs = nGPUs
				t.Run(fmt.Sprintf("%s_%s_n%d", model.Name, name(cfg), nGPUs), func(t *testing.T) {
					res, err := Run(cfg)
					if err != nil {
						t.Fatal(err)
					}
					if math.Abs(res.Checksum-want) > 1e-3*math.Abs(want) {
						t.Fatalf("checksum %v, want %v", res.Checksum, want)
					}
					if res.PerIter <= 0 {
						t.Fatalf("per-iter time %v", res.PerIter)
					}
				})
			}
		}
	}
}

func TestModeledRunsMatchFunctionalTiming(t *testing.T) {
	// Virtual time must be independent of whether the functional payload
	// executes (the cost model, not the Go work, drives the clock).
	cfg := Config{
		Model: machine.Perlmutter(), NGPUs: 4, NX: 256, NY: 256,
		Iters: 10, Warmup: 2, Variant: NativeGPUCCL,
	}
	cfg.Compute = true
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Compute = false
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.PerIter != b.PerIter {
		t.Fatalf("functional %v != modeled %v", a.PerIter, b.PerIter)
	}
}

func TestUniconnOverheadSmall(t *testing.T) {
	// The headline claim (§VI-C): UNICONN within ~1% of native at every
	// GPU count. Check each backend pair on a modeled paper-like grid.
	type pair struct {
		native  Config
		uniconn Config
	}
	base := Config{
		Model: machine.Perlmutter(), NGPUs: 8, NX: 4096, NY: 4096,
		Iters: 50, Warmup: 10, Compute: false,
	}
	mk := func(v Variant, b core.BackendID, mode core.LaunchMode) Config {
		c := base
		c.Variant, c.Backend, c.Mode = v, b, mode
		return c
	}
	pairs := []pair{
		{mk(NativeMPI, 0, 0), mk(Uniconn, core.MPIBackend, core.PureHost)},
		{mk(NativeGPUCCL, 0, 0), mk(Uniconn, core.GpucclBackend, core.PureHost)},
		{mk(NativeGPUSHMEMHost, 0, 0), mk(Uniconn, core.GpushmemBackend, core.PureHost)},
		{mk(NativeGPUSHMEMDevice, 0, 0), mk(Uniconn, core.GpushmemBackend, core.PureDevice)},
	}
	for _, pr := range pairs {
		pr := pr
		t.Run(name(pr.uniconn), func(t *testing.T) {
			nat, err := Run(pr.native)
			if err != nil {
				t.Fatal(err)
			}
			uc, err := Run(pr.uniconn)
			if err != nil {
				t.Fatal(err)
			}
			over := (float64(uc.PerIter) - float64(nat.PerIter)) / float64(nat.PerIter) * 100
			if over > 3.0 || over < -3.0 {
				t.Fatalf("overhead %.2f%% (native %v, uniconn %v)", over, nat.PerIter, uc.PerIter)
			}
		})
	}
}

func TestScalingReducesPerIterTime(t *testing.T) {
	// Strong scaling on the modeled grid: more GPUs → faster iterations.
	base := Config{
		Model: machine.Perlmutter(), NX: 1 << 12, NY: 1 << 12,
		Iters: 20, Warmup: 5, Compute: false,
		Variant: Uniconn, Backend: core.GpucclBackend, Mode: core.PureHost,
	}
	var prev Result
	for i, n := range []int{4, 16, 64} {
		cfg := base
		cfg.NGPUs = n
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && res.PerIter >= prev.PerIter {
			t.Fatalf("%d GPUs (%v) not faster than previous (%v)", n, res.PerIter, prev.PerIter)
		}
		prev = res
	}
}

func TestInvalidConfigs(t *testing.T) {
	if _, err := Run(Config{Model: machine.Perlmutter(), NGPUs: 0, NX: 8, NY: 8, Iters: 1}); err == nil {
		t.Error("zero GPUs accepted")
	}
	if _, err := Run(Config{
		Model: machine.Perlmutter(), NGPUs: 2, NX: 8, NY: 8, Iters: 1, Warmup: 0,
		Variant: Uniconn, Backend: core.MPIBackend, Mode: core.PureDevice,
	}); err == nil {
		t.Error("PureDevice on MPI accepted")
	}
}

func TestDecompose(t *testing.T) {
	cfg := Config{NGPUs: 3, NX: 10, NY: 10}
	total := 0
	for r := 0; r < 3; r++ {
		g := decompose(cfg, r)
		total += g.chunk
		if r == 0 && g.top != -1 {
			t.Error("rank 0 has a top neighbour")
		}
		if r == 2 && g.bot != -1 {
			t.Error("last rank has a bottom neighbour")
		}
		if r == 1 && (g.top != 0 || g.bot != 2) {
			t.Errorf("rank 1 neighbours %d %d", g.top, g.bot)
		}
	}
	if total != 10 {
		t.Fatalf("chunks sum to %d", total)
	}
}

func TestTraceRecordsSpans(t *testing.T) {
	tl := trace.New()
	_, err := Run(Config{
		Model: machine.Perlmutter(), NGPUs: 2, NX: 64, NY: 64,
		Iters: 3, Warmup: 1, Compute: false,
		Variant: Uniconn, Backend: core.GpucclBackend, Mode: core.PureHost,
		Trace: tl,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tl.Len() == 0 {
		t.Fatal("no spans recorded")
	}
	kernels := 0
	for _, s := range tl.Filter(trace.KindStreamOp) {
		if strings.HasPrefix(s.Label, "kernel ") {
			kernels++
		}
	}
	// 4 iterations (incl. warmup) x 2 ranks of sweep kernels at least.
	if kernels < 8 {
		t.Fatalf("kernel spans = %d", kernels)
	}
	transfers := tl.Filter(trace.KindTransfer)
	if len(transfers) == 0 {
		t.Fatal("no transfer spans")
	}
	var bytes int64
	for _, s := range transfers {
		bytes += s.Bytes
	}
	if bytes == 0 {
		t.Fatal("transfers carried no bytes")
	}
	if rows := tl.Summarize().Rows; len(rows) == 0 {
		t.Fatal("empty summary")
	}
}

func TestSerialReferenceConverges(t *testing.T) {
	// The interior sum should increase toward the boundary-driven steady
	// state and never produce NaN.
	s10 := RunSerial(32, 32, 10)
	s100 := RunSerial(32, 32, 100)
	if !(s100 > s10) || math.IsNaN(s100) {
		t.Fatalf("serial sums: 10 iters %v, 100 iters %v", s10, s100)
	}
}
