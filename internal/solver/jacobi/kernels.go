package jacobi

import (
	"repro/internal/gpu"
	"repro/internal/sim"
)

// Kernel construction shared by the variants. Every sweep kernel has the
// same three functional phases — unpack halos, 5-point sweep, pack boundary
// rows — and the same cost model; the device-API variants additionally
// perform communication inside the kernel body.

// sweep executes the functional payload: cur.grid (halos refreshed from
// cur.recv) → next.grid, boundary rows staged into next.send.
func (st *state) sweep(cur, next bufset) {
	if !st.cfg.Compute {
		return
	}
	st.unpack(cur)
	st.sweepRows(cur, next, 1, st.g.chunk)
	st.pack(next)
}

// unpack refreshes cur.grid's halo rows from the previous exchange.
func (st *state) unpack(cur bufset) {
	if !st.cfg.Compute {
		return
	}
	nx, chunk := st.g.nx, st.g.chunk
	a := cur.grid.Data()
	if st.g.top != -1 {
		copy(a[0:nx], cur.recv.Data()[0:nx])
	}
	if st.g.bot != -1 {
		copy(a[(chunk+1)*nx:(chunk+2)*nx], cur.recv.Data()[nx:2*nx])
	}
}

// sweepRows applies the 5-point update to rows [lo, hi] of the chunk.
func (st *state) sweepRows(cur, next bufset, lo, hi int) {
	if !st.cfg.Compute {
		return
	}
	nx := st.g.nx
	a, anew := cur.grid.Data(), next.grid.Data()
	for r := lo; r <= hi; r++ {
		for c := 1; c < nx-1; c++ {
			anew[r*nx+c] = 0.25 * (a[(r-1)*nx+c] + a[(r+1)*nx+c] + a[r*nx+c-1] + a[r*nx+c+1])
		}
	}
}

// pack stages next.grid's fresh boundary rows into next.send.
func (st *state) pack(next bufset) {
	if !st.cfg.Compute {
		return
	}
	nx, chunk := st.g.nx, st.g.chunk
	anew := next.grid.Data()
	copy(next.send.Data()[0:nx], anew[nx:2*nx])
	copy(next.send.Data()[nx:2*nx], anew[chunk*nx:(chunk+1)*nx])
}

// rowBytes is the modeled traffic of sweeping rows rows.
func (st *state) rowBytes(rows int) int64 { return int64(rows) * int64(st.g.nx) * 8 }

// kernelTime is the modeled sweep duration (memory-bound stencil).
func (st *state) kernelTime() func(d *gpu.Device) sim.Duration {
	bytes := st.g.interiorBytes()
	return func(d *gpu.Device) sim.Duration {
		return d.Model().StencilKernelTime(bytes)
	}
}

// computeKernel is the computation-only sweep (PureHost variants).
func (st *state) computeKernel(cur, next bufset) *gpu.Kernel {
	return &gpu.Kernel{
		Name: "jacobi",
		Time: st.kernelTime(),
		Body: func(kc *gpu.KernelCtx) { st.sweep(cur, next) },
	}
}

// timedLoop runs body for warmup+iters iterations, synchronizing after the
// warmup (host and device, per §VI-A2) and timing the rest with events on
// the solver stream.
func (st *state) timedLoop(barrier func(), body func(iter int)) sim.Duration {
	cfg := st.cfg
	for it := 1; it <= cfg.Warmup; it++ {
		body(it)
	}
	barrier()
	st.env.StreamSynchronize(st.stream)
	st.start.Record(st.stream)
	for it := cfg.Warmup + 1; it <= cfg.Warmup+cfg.Iters; it++ {
		body(it)
	}
	st.stop.Record(st.stream)
	st.env.StreamSynchronize(st.stream)
	barrier()
	return gpu.Elapsed(st.start, st.stop)
}
