package jacobi

// Native GPUCCL Jacobi (the paper's Listing 2): the halo exchange is a
// group of ncclSend/ncclRecv operations fused into one kernel on the same
// stream as the compute kernel — no host synchronization in the loop.

import (
	"repro/internal/core"
)

func runNativeGPUCCL(cfg Config, env *core.Env) rankResult {
	st := newState(cfg, env)
	ccl := env.CCLComm()
	p := env.Proc()
	nx := st.g.nx

	body := func(int) {
		cur, next := st.cur(), st.next()
		st.stream.Launch(p, st.computeKernel(cur, next), nil)
		ccl.GroupStart()
		if st.g.top != -1 {
			ccl.Send(p, st.stream, next.send.View(0, nx), st.g.top)
			ccl.Recv(p, st.stream, next.recv.View(0, nx), st.g.top)
		}
		if st.g.bot != -1 {
			ccl.Send(p, st.stream, next.send.View(nx, nx), st.g.bot)
			ccl.Recv(p, st.stream, next.recv.View(nx, nx), st.g.bot)
		}
		ccl.GroupEnd(p, st.stream)
		st.swap()
	}
	elapsed := st.timedLoop(func() { env.MPIComm().Barrier(p) }, body)
	return rankResult{elapsed: elapsed, checksum: st.checksum()}
}
