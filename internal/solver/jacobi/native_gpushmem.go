package jacobi

// Native GPUSHMEM Jacobi, host and device APIs.
//
// Host API: stream-ordered put-with-signal into the neighbour's halo
// staging, then a stream-ordered signal wait — no host synchronization.
//
// Device API (the paper's Listing 3): one kernel per iteration launched
// with nvshmemx_collective_launch; boundary blocks put their rows with
// put_signal_nbi at BLOCK granularity and a designated thread waits on the
// incoming signal, all inside the kernel.

import (
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/gpushmem"
)

// Signal slots: sigFromTop is set by the top neighbour when my halo row has
// landed; sigFromBot by the bottom neighbour.
const (
	sigFromTop = 0
	sigFromBot = 1
)

func runNativeShmemHost(cfg Config, env *core.Env) rankResult {
	st := newState(cfg, env)
	pe := env.ShmemPE()
	p := env.Proc()
	nx := st.g.nx

	body := func(iter int) {
		cur, next := st.cur(), st.next()
		st.stream.Launch(p, st.computeKernel(cur, next), nil)
		val := uint64(iter)
		if st.g.top != -1 {
			// My top row becomes the top neighbour's from-bottom halo.
			pe.PutSignalOnStream(p, st.stream, next.recv.SymRef(nx, nx),
				next.send.View(0, nx), nx,
				core.SigRefOf(st.sync, sigFromBot), val, gpushmem.SignalSet, st.g.top)
		}
		if st.g.bot != -1 {
			pe.PutSignalOnStream(p, st.stream, next.recv.SymRef(0, nx),
				next.send.View(nx, nx), nx,
				core.SigRefOf(st.sync, sigFromTop), val, gpushmem.SignalSet, st.g.bot)
		}
		if st.g.top != -1 {
			pe.SignalWaitOnStream(p, st.stream, core.SigRefOf(st.sync, sigFromTop), gpushmem.CmpGE, val)
		}
		if st.g.bot != -1 {
			pe.SignalWaitOnStream(p, st.stream, core.SigRefOf(st.sync, sigFromBot), gpushmem.CmpGE, val)
		}
		st.swap()
	}
	elapsed := st.timedLoop(func() { env.MPIComm().Barrier(p) }, body)
	return rankResult{elapsed: elapsed, checksum: st.checksum()}
}

func runNativeShmemDevice(cfg Config, env *core.Env) rankResult {
	st := newState(cfg, env)
	pe := env.ShmemPE()
	p := env.Proc()
	nx := st.g.nx

	body := func(iter int) {
		cur, next := st.cur(), st.next()
		val := uint64(iter)
		k := &gpu.Kernel{Name: "jacobi-dev", Body: func(kc *gpu.KernelCtx) {
			// Compute first (interior + boundary blocks), then
			// communicate from the boundary blocks.
			kc.P.Advance(st.kernelTime()(kc.Dev))
			st.sweep(cur, next)
			if st.g.top != -1 {
				pe.DevPutSignalNBI(kc, gpushmem.Block, next.recv.SymRef(nx, nx),
					next.send.View(0, nx), nx,
					core.SigRefOf(st.sync, sigFromBot), val, gpushmem.SignalSet, st.g.top)
			}
			if st.g.bot != -1 {
				pe.DevPutSignalNBI(kc, gpushmem.Block, next.recv.SymRef(0, nx),
					next.send.View(nx, nx), nx,
					core.SigRefOf(st.sync, sigFromTop), val, gpushmem.SignalSet, st.g.bot)
			}
			if st.g.top != -1 {
				pe.DevSignalWaitUntil(kc, core.SigRefOf(st.sync, sigFromTop), gpushmem.CmpGE, val)
			}
			if st.g.bot != -1 {
				pe.DevSignalWaitUntil(kc, core.SigRefOf(st.sync, sigFromBot), gpushmem.CmpGE, val)
			}
		}}
		pe.CollectiveLaunch(p, st.stream, k, nil)
		st.swap()
	}
	elapsed := st.timedLoop(func() { env.MPIComm().Barrier(p) }, body)
	return rankResult{elapsed: elapsed, checksum: st.checksum()}
}
