package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

func sampleLog() *Log {
	l := New()
	l.Add(Span{Kind: KindKernel, Label: "jacobi", Track: "gpu0.s", Start: 0, End: 100})
	l.Add(Span{Kind: KindTransfer, Label: "gpu0->gpu1", Track: "intra", Start: 50, End: 150, Bytes: 4096})
	l.Add(Span{Kind: KindTransfer, Label: "gpu1->gpu0", Track: "intra", Start: 60, End: 160, Bytes: 4096})
	l.Add(Span{Kind: KindStreamOp, Label: "memcpy", Track: "gpu0.s", Start: 100, End: 110})
	return l
}

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Add(Span{Kind: KindKernel})
	if l.Len() != 0 || l.Spans() != nil {
		t.Fatal("nil log not inert")
	}
	if got := l.Summarize(); len(got.Rows) != 0 {
		t.Fatal("nil log summary not empty")
	}
}

func TestFilterAndDur(t *testing.T) {
	l := sampleLog()
	tr := l.Filter(KindTransfer)
	if len(tr) != 2 {
		t.Fatalf("transfers = %d", len(tr))
	}
	if tr[0].Dur() != 100 {
		t.Fatalf("dur = %v", tr[0].Dur())
	}
}

func TestSummarize(t *testing.T) {
	l := sampleLog()
	s := l.Summarize()
	if len(s.Rows) != 3 {
		t.Fatalf("rows = %d", len(s.Rows))
	}
	// Transfers dominate busy time: 200ns total on track "intra".
	top := s.Rows[0]
	if top.Kind != KindTransfer || top.Track != "intra" ||
		top.Busy != 200 || top.Count != 2 || top.Bytes != 8192 {
		t.Fatalf("top row = %+v", top)
	}
	out := s.Render()
	for _, want := range []string{"transfer", "intra", "8192", "kernel"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestChromeTraceExport(t *testing.T) {
	l := sampleLog()
	var buf bytes.Buffer
	if err := l.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(events) != 4 {
		t.Fatalf("events = %d", len(events))
	}
	ev := events[1]
	if ev["name"] != "gpu0->gpu1" || ev["ph"] != "X" || ev["cat"] != "transfer" {
		t.Fatalf("event = %v", ev)
	}
	if ev["dur"].(float64) != sim.Duration(100).Micros() {
		t.Fatalf("dur = %v", ev["dur"])
	}
	args := ev["args"].(map[string]any)
	if args["bytes"].(float64) != 4096 {
		t.Fatalf("bytes = %v", args["bytes"])
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		KindKernel: "kernel", KindStreamOp: "stream-op",
		KindTransfer: "transfer", KindHost: "host",
	} {
		if k.String() != want {
			t.Fatalf("%d.String() = %s", int(k), k)
		}
	}
}
