// Package trace records virtual-time execution spans (kernels, stream
// operations, fabric transfers) so runs can be inspected, summarized, or
// exported in Chrome trace-event JSON for chrome://tracing.
//
// The tracer is deliberately dumb and allocation-friendly: producers append
// spans; analysis happens afterwards. A nil *Log is a valid, disabled
// tracer, so instrumentation sites need no conditionals.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"repro/internal/sim"
)

// Kind classifies a span.
type Kind int

// Span kinds.
const (
	KindKernel Kind = iota
	KindStreamOp
	KindTransfer
	KindHost
)

func (k Kind) String() string {
	switch k {
	case KindKernel:
		return "kernel"
	case KindStreamOp:
		return "stream-op"
	case KindTransfer:
		return "transfer"
	case KindHost:
		return "host"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Span is one recorded interval.
type Span struct {
	Kind  Kind
	Label string
	// Track identifies the resource the span ran on (GPU id, stream
	// name, link name); it becomes the row in timeline renderings.
	Track string
	Start sim.Time
	End   sim.Time
	// Bytes is the payload size for transfers (0 otherwise).
	Bytes int64
	// Rank is the global rank (GPU id) the span is attributed to: the
	// executing device for kernels and stream ops, the source for
	// transfers. Producers that predate rank attribution leave it 0.
	Rank int
	// Src and Dst are the endpoint ranks of transfers (both equal to Rank
	// for non-transfer spans left at their zero values).
	Src, Dst int
}

// Dur reports the span length.
func (s Span) Dur() sim.Duration { return s.End.Sub(s.Start) }

// Bandwidth reports the span's payload rate in bytes per second of virtual
// time, guarding zero-duration and zero-byte spans (0, never ±Inf/NaN).
func (s Span) Bandwidth() float64 {
	d := s.Dur()
	if s.Bytes <= 0 || d <= 0 {
		return 0
	}
	return float64(s.Bytes) / d.Seconds()
}

// less is the deterministic span order: by start, then end, then track,
// kind, label, and endpoints, so logs with equal-timestamp spans sort the
// same way on every run and at every sweep worker count.
func (s Span) less(o Span) bool {
	if s.Start != o.Start {
		return s.Start < o.Start
	}
	if s.End != o.End {
		return s.End < o.End
	}
	if s.Track != o.Track {
		return s.Track < o.Track
	}
	if s.Kind != o.Kind {
		return s.Kind < o.Kind
	}
	if s.Label != o.Label {
		return s.Label < o.Label
	}
	if s.Src != o.Src {
		return s.Src < o.Src
	}
	return s.Dst < o.Dst
}

// SortSpans orders spans deterministically (see Span.less) in place, using a
// stable sort so fully identical spans keep their insertion order.
func SortSpans(spans []Span) {
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].less(spans[j]) })
}

// Log collects spans. The zero value is ready to use; a nil *Log discards
// everything. Appends are mutex-guarded so the shard engines of a sharded
// run (core.Config.Shards) can share one log; every consumer that needs a
// stable order sorts (Sorted/SortSpans), so producer interleaving never
// reaches output bytes.
type Log struct {
	mu    sync.Mutex
	spans []Span
}

// New returns an empty log.
func New() *Log { return &Log{} }

// Add appends one span. Safe on a nil receiver (no-op), so producers can be
// instrumented unconditionally.
func (l *Log) Add(s Span) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.spans = append(l.spans, s)
	l.mu.Unlock()
}

// Spans returns the recorded spans in insertion order.
func (l *Log) Spans() []Span {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.spans
}

// Len reports the span count.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.spans)
}

// Sorted returns a copy of the spans in deterministic order (SortSpans).
// Analysis and export paths use it so output bytes do not depend on
// producer interleaving.
func (l *Log) Sorted() []Span {
	out := append([]Span(nil), l.Spans()...)
	SortSpans(out)
	return out
}

// Filter returns the spans of one kind.
func (l *Log) Filter(k Kind) []Span {
	var out []Span
	for _, s := range l.Spans() {
		if s.Kind == k {
			out = append(out, s)
		}
	}
	return out
}

// Summary aggregates busy time and counts per (kind, track).
type Summary struct {
	Rows []SummaryRow
}

// SummaryRow is one aggregate.
type SummaryRow struct {
	Kind  Kind
	Track string
	Count int
	Busy  sim.Duration
	Bytes int64
}

// Bandwidth reports the row's aggregate payload rate in bytes per second,
// guarding zero busy time (0, never ±Inf/NaN — a log of only instantaneous
// transfers summarizes cleanly).
func (r SummaryRow) Bandwidth() float64 {
	if r.Bytes <= 0 || r.Busy <= 0 {
		return 0
	}
	return float64(r.Bytes) / r.Busy.Seconds()
}

// Summarize aggregates the log per (kind, track), ordered by descending
// busy time.
func (l *Log) Summarize() Summary {
	type key struct {
		kind  Kind
		track string
	}
	acc := map[key]*SummaryRow{}
	for _, s := range l.Spans() {
		k := key{s.Kind, s.Track}
		r := acc[k]
		if r == nil {
			r = &SummaryRow{Kind: s.Kind, Track: s.Track}
			acc[k] = r
		}
		r.Count++
		r.Busy += s.Dur()
		r.Bytes += s.Bytes
	}
	var rows []SummaryRow
	for _, r := range acc {
		rows = append(rows, *r)
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Busy != rows[j].Busy {
			return rows[i].Busy > rows[j].Busy
		}
		if rows[i].Track != rows[j].Track {
			return rows[i].Track < rows[j].Track
		}
		return rows[i].Kind < rows[j].Kind
	})
	return Summary{Rows: rows}
}

// Render formats the summary as a text table. Bandwidth is per-row payload
// over busy time, zero for byte-less or zero-duration rows.
func (s Summary) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-24s %8s %14s %12s %10s\n",
		"kind", "track", "count", "busy", "bytes", "GB/s")
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "%-10s %-24s %8d %14s %12d %10.2f\n",
			r.Kind, r.Track, r.Count, r.Busy, r.Bytes, r.Bandwidth()/1e9)
	}
	return b.String()
}

// chromeEvent is the Chrome trace-event "complete" record.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	PID  int            `json:"pid"`
	TID  string         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace exports the log as a Chrome trace-event JSON array
// (open with chrome://tracing or Perfetto). Spans are emitted in
// deterministic sorted order.
func (l *Log) WriteChromeTrace(w io.Writer) error {
	return writeChromeEvents(w, appendChromeEvents(nil, l.Sorted(), 1))
}

// ChromeCell is one process group of a multi-cell Chrome export: the spans
// of one sweep cell (or one run), named so Perfetto's process rail shows
// which cell a row belongs to.
type ChromeCell struct {
	Name  string
	Spans []Span
}

// WriteChromeCells exports several cells into one Chrome trace, giving cell
// i process id i+1 plus a process_name metadata record. Span order within a
// cell is deterministic (SortSpans), so the export is byte-stable. The
// caller keeps cells in index order; see internal/bench/runner.go for the
// collector ownership rule.
func WriteChromeCells(w io.Writer, cells []ChromeCell) error {
	var events []chromeEvent
	for i, c := range cells {
		pid := i + 1
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]any{"name": c.Name},
		})
		spans := append([]Span(nil), c.Spans...)
		SortSpans(spans)
		events = appendChromeEvents(events, spans, pid)
	}
	return writeChromeEvents(w, events)
}

// appendChromeEvents converts sorted spans to complete events under one pid.
// Bandwidth args are guarded against zero-duration spans (omitted rather
// than ±Inf, which would poison the JSON).
func appendChromeEvents(events []chromeEvent, spans []Span, pid int) []chromeEvent {
	for _, s := range spans {
		ev := chromeEvent{
			Name: s.Label,
			Cat:  s.Kind.String(),
			Ph:   "X",
			TS:   sim.Duration(s.Start).Micros(),
			Dur:  s.Dur().Micros(),
			PID:  pid,
			TID:  s.Track,
		}
		if s.Bytes > 0 {
			ev.Args = map[string]any{"bytes": s.Bytes}
			if bw := s.Bandwidth(); bw > 0 {
				ev.Args["gbps"] = bw / 1e9
			}
		}
		events = append(events, ev)
	}
	return events
}

func writeChromeEvents(w io.Writer, events []chromeEvent) error {
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
