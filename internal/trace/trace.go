// Package trace records virtual-time execution spans (kernels, stream
// operations, fabric transfers) so runs can be inspected, summarized, or
// exported in Chrome trace-event JSON for chrome://tracing.
//
// The tracer is deliberately dumb and allocation-friendly: producers append
// spans; analysis happens afterwards. A nil *Log is a valid, disabled
// tracer, so instrumentation sites need no conditionals.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Kind classifies a span.
type Kind int

// Span kinds.
const (
	KindKernel Kind = iota
	KindStreamOp
	KindTransfer
	KindHost
)

func (k Kind) String() string {
	switch k {
	case KindKernel:
		return "kernel"
	case KindStreamOp:
		return "stream-op"
	case KindTransfer:
		return "transfer"
	case KindHost:
		return "host"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Span is one recorded interval.
type Span struct {
	Kind  Kind
	Label string
	// Track identifies the resource the span ran on (GPU id, stream
	// name, link name); it becomes the row in timeline renderings.
	Track string
	Start sim.Time
	End   sim.Time
	// Bytes is the payload size for transfers (0 otherwise).
	Bytes int64
}

// Dur reports the span length.
func (s Span) Dur() sim.Duration { return s.End.Sub(s.Start) }

// Log collects spans. The zero value is ready to use; a nil *Log discards
// everything.
type Log struct {
	spans []Span
}

// New returns an empty log.
func New() *Log { return &Log{} }

// Add appends one span. Safe on a nil receiver (no-op), so producers can be
// instrumented unconditionally.
func (l *Log) Add(s Span) {
	if l == nil {
		return
	}
	l.spans = append(l.spans, s)
}

// Spans returns the recorded spans in insertion order.
func (l *Log) Spans() []Span {
	if l == nil {
		return nil
	}
	return l.spans
}

// Len reports the span count.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	return len(l.spans)
}

// Filter returns the spans of one kind.
func (l *Log) Filter(k Kind) []Span {
	var out []Span
	for _, s := range l.Spans() {
		if s.Kind == k {
			out = append(out, s)
		}
	}
	return out
}

// Summary aggregates busy time and counts per (kind, track).
type Summary struct {
	Rows []SummaryRow
}

// SummaryRow is one aggregate.
type SummaryRow struct {
	Kind  Kind
	Track string
	Count int
	Busy  sim.Duration
	Bytes int64
}

// Summarize aggregates the log per (kind, track), ordered by descending
// busy time.
func (l *Log) Summarize() Summary {
	type key struct {
		kind  Kind
		track string
	}
	acc := map[key]*SummaryRow{}
	for _, s := range l.Spans() {
		k := key{s.Kind, s.Track}
		r := acc[k]
		if r == nil {
			r = &SummaryRow{Kind: s.Kind, Track: s.Track}
			acc[k] = r
		}
		r.Count++
		r.Busy += s.Dur()
		r.Bytes += s.Bytes
	}
	var rows []SummaryRow
	for _, r := range acc {
		rows = append(rows, *r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Busy != rows[j].Busy {
			return rows[i].Busy > rows[j].Busy
		}
		if rows[i].Track != rows[j].Track {
			return rows[i].Track < rows[j].Track
		}
		return rows[i].Kind < rows[j].Kind
	})
	return Summary{Rows: rows}
}

// Render formats the summary as a text table.
func (s Summary) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-24s %8s %14s %12s\n", "kind", "track", "count", "busy", "bytes")
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "%-10s %-24s %8d %14s %12d\n",
			r.Kind, r.Track, r.Count, r.Busy, r.Bytes)
	}
	return b.String()
}

// chromeEvent is the Chrome trace-event "complete" record.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	PID  int            `json:"pid"`
	TID  string         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace exports the log as a Chrome trace-event JSON array
// (open with chrome://tracing or Perfetto).
func (l *Log) WriteChromeTrace(w io.Writer) error {
	events := make([]chromeEvent, 0, l.Len())
	for _, s := range l.Spans() {
		ev := chromeEvent{
			Name: s.Label,
			Cat:  s.Kind.String(),
			Ph:   "X",
			TS:   sim.Duration(s.Start).Micros(),
			Dur:  s.Dur().Micros(),
			PID:  1,
			TID:  s.Track,
		}
		if s.Bytes > 0 {
			ev.Args = map[string]any{"bytes": s.Bytes}
		}
		events = append(events, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
