package trace

// Post-hoc analysis over span logs: per-rank time attribution, the critical
// path (longest dependency chain), and the rank-to-rank communication
// matrix. All three work on the deterministic sorted span order, use only
// integer virtual-time arithmetic, and never consult wall clock, so their
// output is byte-stable across runs and sweep worker counts.

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// endHeap is a min-heap of span indices ordered by (End, index).
type endHeap struct {
	spans []Span
	idx   []int
}

func (h *endHeap) Len() int { return len(h.idx) }
func (h *endHeap) Less(i, j int) bool {
	a, b := h.idx[i], h.idx[j]
	if h.spans[a].End != h.spans[b].End {
		return h.spans[a].End < h.spans[b].End
	}
	return a < b
}
func (h *endHeap) Swap(i, j int) { h.idx[i], h.idx[j] = h.idx[j], h.idx[i] }
func (h *endHeap) Push(x any)    { h.idx = append(h.idx, x.(int)) }
func (h *endHeap) Pop() any {
	n := len(h.idx)
	v := h.idx[n-1]
	h.idx = h.idx[:n-1]
	return v
}

// Class buckets a span for attribution purposes.
type Class int

// Attribution classes, in ascending priority: when intervals of different
// classes overlap on one rank, the higher class claims the overlap (waiting
// on the network dominates locally overlapped compute).
const (
	ClassCompute Class = iota // kernels, stream ops, host work
	ClassIntra                // intra-node transfers (incl. device-local)
	ClassInter                // inter-node transfers
	numClasses
)

func (c Class) String() string {
	switch c {
	case ClassCompute:
		return "compute"
	case ClassIntra:
		return "intra-node"
	case ClassInter:
		return "inter-node"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// ClassOf buckets one span: transfers by their route's track (an inter-node
// track is "inter" or "inter+failover"), everything else as compute.
func ClassOf(s Span) Class {
	if s.Kind != KindTransfer {
		return ClassCompute
	}
	if strings.HasPrefix(s.Track, "inter") {
		return ClassInter
	}
	return ClassIntra
}

// RankBreakdown partitions one rank's run [0, Total] by activity class.
// Compute + Intra + Inter + Blocked == Total exactly: overlaps are claimed
// by the highest-priority class and uncovered time is Blocked, so the
// components are a true partition of virtual time.
type RankBreakdown struct {
	Rank    int
	Compute sim.Duration
	Intra   sim.Duration
	Inter   sim.Duration
	Blocked sim.Duration
	Total   sim.Duration
}

// Attribute partitions [0, end] per rank. A transfer is attributed to both
// of its endpoint ranks (source occupancy and destination delivery are the
// same wait from each side); kernels and stream ops to their executing
// rank. Ranks are inferred as 0..max rank observed.
func Attribute(spans []Span, end sim.Time) []RankBreakdown {
	nRanks := 0
	for _, s := range spans {
		for _, r := range []int{s.Rank, s.Src, s.Dst} {
			if r+1 > nRanks {
				nRanks = r + 1
			}
		}
	}
	if nRanks == 0 || end <= 0 {
		return nil
	}

	// Boundary sweep per rank: +1/-1 deltas per class at interval edges,
	// elementary segments claimed by the highest active class.
	type edge struct {
		at    sim.Time
		class Class
		delta int
	}
	perRank := make([][]edge, nRanks)
	addIv := func(rank int, class Class, start, stop sim.Time) {
		if rank < 0 || rank >= nRanks {
			return
		}
		if stop > end {
			stop = end
		}
		if start >= stop {
			return
		}
		perRank[rank] = append(perRank[rank],
			edge{at: start, class: class, delta: 1},
			edge{at: stop, class: class, delta: -1})
	}
	for _, s := range spans {
		class := ClassOf(s)
		if s.Kind == KindTransfer {
			addIv(s.Src, class, s.Start, s.End)
			if s.Dst != s.Src {
				addIv(s.Dst, class, s.Start, s.End)
			}
			continue
		}
		addIv(s.Rank, class, s.Start, s.End)
	}

	out := make([]RankBreakdown, nRanks)
	for rank, edges := range perRank {
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].at != edges[j].at {
				return edges[i].at < edges[j].at
			}
			return edges[i].delta > edges[j].delta // opens before closes at a shared instant
		})
		b := RankBreakdown{Rank: rank, Total: sim.Duration(end)}
		var active [numClasses]int
		var covered [numClasses]sim.Duration
		prev := sim.Time(0)
		for _, e := range edges {
			if e.at > prev {
				for c := numClasses - 1; c >= ClassCompute; c-- {
					if active[c] > 0 {
						covered[c] += e.at.Sub(prev)
						break
					}
				}
				prev = e.at
			}
			active[e.class] += e.delta
		}
		b.Compute = covered[ClassCompute]
		b.Intra = covered[ClassIntra]
		b.Inter = covered[ClassInter]
		b.Blocked = b.Total - b.Compute - b.Intra - b.Inter
		out[rank] = b
	}
	return out
}

// RenderBreakdown formats per-rank attribution as a text table.
func RenderBreakdown(rows []RankBreakdown) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %14s %14s %14s %14s %14s\n",
		"rank", "compute", "intra-node", "inter-node", "blocked", "total")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6d %14s %14s %14s %14s %14s\n",
			r.Rank, r.Compute, r.Intra, r.Inter, r.Blocked, r.Total)
	}
	return b.String()
}

// CritPath is the longest dependency chain through a span log.
type CritPath struct {
	// Chain is the path in time order.
	Chain []Span
	// Len is the summed duration of the chain's spans (busy time on the
	// path); End is when the chain finishes.
	Len sim.Duration
	End sim.Time
	// Per-class busy time on the chain. Blocked is the idle time inside
	// the chain (gaps between consecutive chain spans plus lead-in), so
	// Compute + Intra + Inter + Blocked == End exactly.
	Compute sim.Duration
	Intra   sim.Duration
	Inter   sim.Duration
	Blocked sim.Duration
}

// CriticalPath finds the longest dependency chain over the spans. Span B is
// taken to depend on span A when A ends no later than B starts and they
// share a resource: the same track (stream / link serialization), the same
// rank (program order), or A is a transfer delivering to B's rank (message
// edge). That happens-before relation is conservative but sound for this
// simulator: every producer orders its own spans, and cross-rank ordering
// only arises through transfers.
//
// The chain maximizing summed span duration is computed by a sweep in start
// order: spans whose End precedes the current Start are committed into
// per-track and per-rank "best chain so far" tables, so each span extends
// the best committed predecessor it can see. Ties break toward the earlier
// span in sorted order, keeping the result deterministic. O(n log n).
func CriticalPath(spans []Span) CritPath {
	srt := append([]Span(nil), spans...)
	SortSpans(srt)
	n := len(srt)
	if n == 0 {
		return CritPath{}
	}

	type best struct {
		len sim.Duration
		idx int // span index holding that chain value
	}
	chain := make([]sim.Duration, n) // chain value ending at span i
	pred := make([]int, n)           // predecessor index, -1 at chain head
	byTrack := map[string]best{}
	byRank := map[int]best{}

	// pending holds started-but-uncommitted span indices as a min-heap
	// ordered by (End, index) — the index tie-break keeps commit order, and
	// therefore table contents under equal chain values, deterministic.
	pending := &endHeap{spans: srt}
	commit := func(upTo sim.Time) {
		for pending.Len() > 0 && srt[pending.idx[0]].End <= upTo {
			i := heap.Pop(pending).(int)
			s := srt[i]
			if b, ok := byTrack[s.Track]; !ok || chain[i] > b.len {
				byTrack[s.Track] = best{len: chain[i], idx: i}
			}
			ranks := []int{s.Rank}
			if s.Kind == KindTransfer && s.Dst != s.Rank {
				ranks = append(ranks, s.Dst) // message edge: delivery to Dst
			}
			for _, r := range ranks {
				if b, ok := byRank[r]; !ok || chain[i] > b.len {
					byRank[r] = best{len: chain[i], idx: i}
				}
			}
		}
	}

	for i := 0; i < n; i++ {
		s := srt[i]
		commit(s.Start)
		p, plen := -1, sim.Duration(0)
		if b, ok := byTrack[s.Track]; ok && b.len > plen {
			p, plen = b.idx, b.len
		}
		if b, ok := byRank[s.Rank]; ok && b.len > plen {
			p, plen = b.idx, b.len
		}
		chain[i] = plen + s.Dur()
		pred[i] = p
		heap.Push(pending, i)
	}

	// The critical path ends at the maximal chain value; ties go to the
	// earlier sorted span.
	tail := 0
	for i := 1; i < n; i++ {
		if chain[i] > chain[tail] {
			tail = i
		}
	}

	cp := CritPath{Len: chain[tail], End: srt[tail].End}
	for i := tail; i >= 0; i = pred[i] {
		cp.Chain = append(cp.Chain, srt[i])
	}
	// Reverse into time order.
	for l, r := 0, len(cp.Chain)-1; l < r; l, r = l+1, r-1 {
		cp.Chain[l], cp.Chain[r] = cp.Chain[r], cp.Chain[l]
	}
	for _, s := range cp.Chain {
		switch ClassOf(s) {
		case ClassInter:
			cp.Inter += s.Dur()
		case ClassIntra:
			cp.Intra += s.Dur()
		default:
			cp.Compute += s.Dur()
		}
	}
	cp.Blocked = sim.Duration(cp.End) - cp.Len
	return cp
}

// Render formats the critical path: the class breakdown and the chain, one
// span per line with the idle gap since its predecessor. Long chains elide
// the middle (the head and tail carry the structure; the elision count keeps
// the output size bounded and deterministic).
func (cp CritPath) Render() string {
	const keep = 12 // spans shown at each end of a long chain
	var b strings.Builder
	fmt.Fprintf(&b, "critical path: %s busy over %s (compute %s, intra %s, inter %s, blocked %s), %d spans\n",
		cp.Len, sim.Duration(cp.End), cp.Compute, cp.Intra, cp.Inter, cp.Blocked, len(cp.Chain))
	prev := sim.Time(0)
	for i, s := range cp.Chain {
		if len(cp.Chain) > 2*keep+1 && i == keep {
			fmt.Fprintf(&b, "  ... %d spans elided ...\n", len(cp.Chain)-2*keep)
		}
		if len(cp.Chain) > 2*keep+1 && i >= keep && i < len(cp.Chain)-keep {
			prev = s.End
			continue
		}
		gap := s.Start.Sub(prev)
		if gap < 0 {
			gap = 0
		}
		fmt.Fprintf(&b, "  %12s +%-10s wait %-10s %-10s %-20s %s\n",
			s.Start, s.Dur(), gap, s.Kind, s.Track, s.Label)
		prev = s.End
	}
	return b.String()
}

// CommMatrix is the rank-to-rank traffic matrix accumulated from transfer
// spans: Bytes[src][dst] payload bytes and Count[src][dst] messages.
type CommMatrix struct {
	N     int
	Bytes [][]int64
	Count [][]int64
}

// BuildCommMatrix accumulates the communication matrix over the spans.
// Ranks are inferred as 0..max endpoint observed.
func BuildCommMatrix(spans []Span) CommMatrix {
	n := 0
	for _, s := range spans {
		if s.Kind != KindTransfer {
			continue
		}
		if s.Src+1 > n {
			n = s.Src + 1
		}
		if s.Dst+1 > n {
			n = s.Dst + 1
		}
	}
	m := CommMatrix{N: n}
	if n == 0 {
		return m
	}
	m.Bytes = make([][]int64, n)
	m.Count = make([][]int64, n)
	for i := range m.Bytes {
		m.Bytes[i] = make([]int64, n)
		m.Count[i] = make([]int64, n)
	}
	for _, s := range spans {
		if s.Kind != KindTransfer || s.Src < 0 || s.Dst < 0 {
			continue
		}
		m.Bytes[s.Src][s.Dst] += s.Bytes
		m.Count[s.Src][s.Dst]++
	}
	return m
}

// Render formats the matrix (bytes, with message counts in parentheses);
// src is the row, dst the column.
func (m CommMatrix) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s", "src\\dst")
	for d := 0; d < m.N; d++ {
		fmt.Fprintf(&b, "%16d", d)
	}
	b.WriteString("\n")
	for s := 0; s < m.N; s++ {
		fmt.Fprintf(&b, "%-8d", s)
		for d := 0; d < m.N; d++ {
			if m.Count[s][d] == 0 {
				fmt.Fprintf(&b, "%16s", ".")
				continue
			}
			fmt.Fprintf(&b, "%16s", fmt.Sprintf("%d(%d)", m.Bytes[s][d], m.Count[s][d]))
		}
		b.WriteString("\n")
	}
	return b.String()
}
