package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestCriticalPathLinearChain(t *testing.T) {
	spans := []Span{
		{Kind: KindKernel, Label: "a", Track: "gpu0.s", Rank: 0, Start: 0, End: 100},
		{Kind: KindKernel, Label: "b", Track: "gpu0.s", Rank: 0, Start: 100, End: 250},
		{Kind: KindKernel, Label: "c", Track: "gpu0.s", Rank: 0, Start: 250, End: 300},
	}
	cp := CriticalPath(spans)
	if cp.Len != 300 || cp.End != 300 || len(cp.Chain) != 3 {
		t.Fatalf("chain = %v len=%v end=%v", len(cp.Chain), cp.Len, cp.End)
	}
	if cp.Compute != 300 || cp.Blocked != 0 {
		t.Fatalf("breakdown = %+v", cp)
	}
}

// A diamond with a message edge: the path must cross the transfer from rank
// 0 to rank 1, not stay on rank 1's shorter local history.
//
//	rank0: kernel [0,100] --- transfer gpu0->gpu1 [100,150] ---\
//	rank1: kernel [0,80]                                        kernel [150,400]
func TestCriticalPathMessageEdge(t *testing.T) {
	spans := []Span{
		{Kind: KindKernel, Label: "k0", Track: "gpu0.s", Rank: 0, Start: 0, End: 100},
		{Kind: KindKernel, Label: "k1a", Track: "gpu1.s", Rank: 1, Start: 0, End: 80},
		{Kind: KindTransfer, Label: "gpu0->gpu1", Track: "intra", Rank: 0, Src: 0, Dst: 1,
			Start: 100, End: 150, Bytes: 4096},
		{Kind: KindKernel, Label: "k1b", Track: "gpu1.s", Rank: 1, Start: 150, End: 400},
	}
	cp := CriticalPath(spans)
	if cp.Len != 400 { // 100 + 50 + 250, beating 80 + 250 = 330
		t.Fatalf("len = %v, want 400", cp.Len)
	}
	var labels []string
	for _, s := range cp.Chain {
		labels = append(labels, s.Label)
	}
	if got := strings.Join(labels, ","); got != "k0,gpu0->gpu1,k1b" {
		t.Fatalf("chain = %s", got)
	}
	if cp.Compute != 350 || cp.Intra != 50 || cp.Inter != 0 || cp.Blocked != 0 {
		t.Fatalf("breakdown = %+v", cp)
	}
}

// A gap in the best chain counts as blocked time: Compute+Intra+Inter+Blocked
// must equal the chain's end.
func TestCriticalPathGapIsBlocked(t *testing.T) {
	spans := []Span{
		{Kind: KindKernel, Label: "a", Track: "gpu0.s", Rank: 0, Start: 0, End: 100},
		{Kind: KindKernel, Label: "b", Track: "gpu0.s", Rank: 0, Start: 300, End: 500},
	}
	cp := CriticalPath(spans)
	if cp.Len != 300 || cp.End != 500 || cp.Blocked != 200 {
		t.Fatalf("cp = %+v", cp)
	}
	if cp.Compute+cp.Intra+cp.Inter+cp.Blocked != sim.Duration(cp.End) {
		t.Fatalf("components do not sum to end: %+v", cp)
	}
}

// Overlapping spans on independent tracks must not chain: two parallel
// kernels yield a path of just the longer one.
func TestCriticalPathParallelNotChained(t *testing.T) {
	spans := []Span{
		{Kind: KindKernel, Label: "a", Track: "gpu0.s", Rank: 0, Start: 0, End: 100},
		{Kind: KindKernel, Label: "b", Track: "gpu1.s", Rank: 1, Start: 0, End: 140},
	}
	cp := CriticalPath(spans)
	if cp.Len != 140 || len(cp.Chain) != 1 || cp.Chain[0].Label != "b" {
		t.Fatalf("cp = %+v", cp)
	}
}

func TestCriticalPathInputOrderIndependent(t *testing.T) {
	spans := []Span{
		{Kind: KindKernel, Label: "k0", Track: "gpu0.s", Rank: 0, Start: 0, End: 100},
		{Kind: KindTransfer, Label: "gpu0->gpu1", Track: "inter", Rank: 0, Src: 0, Dst: 1,
			Start: 100, End: 180, Bytes: 1 << 20},
		{Kind: KindKernel, Label: "k1", Track: "gpu1.s", Rank: 1, Start: 180, End: 260},
	}
	want := CriticalPath(spans).Render()
	reversed := []Span{spans[2], spans[0], spans[1]}
	if got := CriticalPath(reversed).Render(); got != want {
		t.Fatalf("order-dependent critical path:\n%s\nvs\n%s", got, want)
	}
	if cp := CriticalPath(spans); cp.Inter != 80 {
		t.Fatalf("inter = %v, want 80", cp.Inter)
	}
}

func TestAttributePartitionsExactly(t *testing.T) {
	end := sim.Time(200)
	spans := []Span{
		{Kind: KindKernel, Label: "k", Track: "gpu0.s", Rank: 0, Start: 0, End: 100},
		// Overlaps the kernel on rank 0 for [50,100]; inter has priority.
		{Kind: KindTransfer, Label: "gpu0->gpu1", Track: "inter", Rank: 0, Src: 0, Dst: 1,
			Start: 50, End: 150, Bytes: 4096},
	}
	rows := Attribute(spans, end)
	if len(rows) != 2 {
		t.Fatalf("ranks = %d", len(rows))
	}
	r0 := rows[0]
	if r0.Compute != 50 || r0.Inter != 100 || r0.Intra != 0 || r0.Blocked != 50 {
		t.Fatalf("rank0 = %+v", r0)
	}
	r1 := rows[1]
	if r1.Inter != 100 || r1.Compute != 0 || r1.Blocked != 100 {
		t.Fatalf("rank1 = %+v", r1)
	}
	for _, r := range rows {
		if r.Compute+r.Intra+r.Inter+r.Blocked != r.Total || r.Total != sim.Duration(end) {
			t.Fatalf("rank %d does not partition [0,%v]: %+v", r.Rank, end, r)
		}
	}
}

func TestAttributeClampsToHorizon(t *testing.T) {
	// A span running past end must be clipped, not produce negative blocked.
	rows := Attribute([]Span{
		{Kind: KindKernel, Track: "gpu0.s", Rank: 0, Start: 50, End: 500},
	}, 100)
	if rows[0].Compute != 50 || rows[0].Blocked != 50 {
		t.Fatalf("rows[0] = %+v", rows[0])
	}
}

func TestCommMatrix(t *testing.T) {
	m := BuildCommMatrix([]Span{
		{Kind: KindTransfer, Src: 0, Dst: 1, Bytes: 100, Start: 0, End: 1},
		{Kind: KindTransfer, Src: 0, Dst: 1, Bytes: 50, Start: 1, End: 2},
		{Kind: KindTransfer, Src: 2, Dst: 0, Bytes: 7, Start: 0, End: 3},
		{Kind: KindKernel, Rank: 5, Start: 0, End: 1}, // ignored
	})
	if m.N != 3 {
		t.Fatalf("N = %d", m.N)
	}
	if m.Bytes[0][1] != 150 || m.Count[0][1] != 2 || m.Bytes[2][0] != 7 {
		t.Fatalf("matrix = %+v", m)
	}
	out := m.Render()
	if !strings.Contains(out, "150(2)") || !strings.Contains(out, "7(1)") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestZeroDurationSpansAreSafe(t *testing.T) {
	s := Span{Kind: KindTransfer, Src: 0, Dst: 1, Bytes: 4096, Start: 100, End: 100}
	if bw := s.Bandwidth(); bw != 0 {
		t.Fatalf("zero-duration bandwidth = %v, want 0", bw)
	}
	l := New()
	l.Add(s)
	sum := l.Summarize()
	if bw := sum.Rows[0].Bandwidth(); bw != 0 {
		t.Fatalf("summary bandwidth = %v, want 0", bw)
	}
	out := sum.Render()
	if strings.Contains(out, "Inf") || strings.Contains(out, "NaN") {
		t.Fatalf("summary render leaked Inf/NaN:\n%s", out)
	}
	var buf bytes.Buffer
	if err := l.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "Inf") || strings.Contains(buf.String(), "null") {
		t.Fatalf("chrome export leaked Inf:\n%s", buf.String())
	}
}

func TestSortSpansStable(t *testing.T) {
	// Equal-timestamp spans order by track/kind/label, not insertion order.
	a := Span{Kind: KindKernel, Label: "x", Track: "b", Start: 10, End: 20}
	b := Span{Kind: KindKernel, Label: "x", Track: "a", Start: 10, End: 20}
	s1 := []Span{a, b}
	s2 := []Span{b, a}
	SortSpans(s1)
	SortSpans(s2)
	if s1[0] != s2[0] || s1[0].Track != "a" {
		t.Fatalf("sort not canonical: %+v vs %+v", s1, s2)
	}
}

func TestWriteChromeCells(t *testing.T) {
	cellA := ChromeCell{Name: "lat 8B", Spans: []Span{
		{Kind: KindKernel, Label: "k", Track: "gpu0.s", Start: 0, End: 10},
	}}
	cellB := ChromeCell{Name: "bw 1MiB", Spans: []Span{
		{Kind: KindTransfer, Label: "gpu0->gpu1", Track: "inter", Src: 0, Dst: 1,
			Start: 0, End: 10, Bytes: 1 << 20},
	}}
	var buf bytes.Buffer
	if err := WriteChromeCells(&buf, []ChromeCell{cellA, cellB}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"process_name"`, `"lat 8B"`, `"bw 1MiB"`, `"pid":2`} {
		if !strings.Contains(out, want) {
			t.Fatalf("multi-cell export missing %s:\n%s", want, out)
		}
	}
	var buf2 bytes.Buffer
	if err := WriteChromeCells(&buf2, []ChromeCell{cellA, cellB}); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("multi-cell export not byte-stable")
	}
}
