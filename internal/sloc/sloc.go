// Package sloc counts source lines of code for Table II of the paper: the
// comparison of implementation sizes across the native libraries and
// UNICONN. Counts are non-blank, non-comment physical lines, computed
// either for whole files or for named top-level functions (so one file can
// host several benchmark variants and still be split into table columns).
package sloc

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/scanner"
	"go/token"
	"os"
	"strings"
)

// CountFile returns the non-blank, non-comment line count of a Go file: a
// line counts if it carries at least one non-comment token.
func CountFile(path string) (int, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	fset := token.NewFileSet()
	file := fset.AddFile(path, fset.Base(), len(src))
	var s scanner.Scanner
	var scanErr error
	s.Init(file, src, func(pos token.Position, msg string) {
		scanErr = fmt.Errorf("sloc: %s: %s", pos, msg)
	}, 0) // comments skipped
	code := map[int]bool{}
	for {
		pos, tok, lit := s.Scan()
		if tok == token.EOF {
			break
		}
		if tok == token.SEMICOLON && lit == "\n" {
			continue // auto-inserted semicolon, not source text
		}
		p := fset.Position(pos)
		code[p.Line] = true
		// Multi-line tokens (raw strings) count every covered line.
		for i := 0; i < strings.Count(lit, "\n"); i++ {
			code[p.Line+i+1] = true
		}
	}
	if scanErr != nil {
		return 0, scanErr
	}
	return len(code), nil
}

// CountFuncs returns the summed non-blank, non-comment line count of the
// named top-level functions (and methods) in a Go file.
func CountFuncs(path string, names ...string) (int, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
	if err != nil {
		return 0, err
	}
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	lines := strings.Split(string(src), "\n")
	total := 0
	found := map[string]bool{}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || !want[fd.Name.Name] {
			continue
		}
		found[fd.Name.Name] = true
		start := fset.Position(fd.Pos()).Line
		end := fset.Position(fd.End()).Line
		for ln := start; ln <= end; ln++ {
			t := strings.TrimSpace(lines[ln-1])
			if t == "" || strings.HasPrefix(t, "//") {
				continue
			}
			total++
		}
	}
	for _, n := range names {
		if !found[n] {
			return 0, fmt.Errorf("sloc: function %q not found in %s", n, path)
		}
	}
	return total, nil
}

// CountFiles sums CountFile over several paths.
func CountFiles(paths ...string) (int, error) {
	total := 0
	for _, p := range paths {
		n, err := CountFile(p)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}
