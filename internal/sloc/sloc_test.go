package sloc

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "x.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const sample = `// Package doc comment.
package x

// F does things.
func F() int {
	// internal comment
	a := 1

	return a
}

/* block
   comment */
func G() {
	_ = 2
}
`

func TestCountFile(t *testing.T) {
	path := writeTemp(t, sample)
	n, err := CountFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Code lines: package, func F{, a:=1, return a, }, func G{, _=2, } = 8.
	if n != 8 {
		t.Fatalf("count = %d, want 8", n)
	}
}

func TestCountFuncs(t *testing.T) {
	path := writeTemp(t, sample)
	n, err := CountFuncs(path, "F")
	if err != nil {
		t.Fatal(err)
	}
	// func F{, a:=1, return a, } = 4 (comment and blank skipped).
	if n != 4 {
		t.Fatalf("F count = %d, want 4", n)
	}
	both, err := CountFuncs(path, "F", "G")
	if err != nil {
		t.Fatal(err)
	}
	if both != 7 {
		t.Fatalf("F+G count = %d, want 7", both)
	}
}

func TestCountFuncsMissing(t *testing.T) {
	path := writeTemp(t, sample)
	if _, err := CountFuncs(path, "Nope"); err == nil {
		t.Fatal("missing function not reported")
	}
}

func TestCountFiles(t *testing.T) {
	p1 := writeTemp(t, sample)
	p2 := writeTemp(t, "package y\n\nvar V = 3\n")
	n, err := CountFiles(p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 8+2 {
		t.Fatalf("total = %d, want 10", n)
	}
}

func TestErrorsOnMissingFile(t *testing.T) {
	if _, err := CountFile("/nonexistent/file.go"); err == nil {
		t.Fatal("missing file not reported")
	}
	if _, err := CountFuncs("/nonexistent/file.go", "F"); err == nil {
		t.Fatal("missing file not reported")
	}
}
