package gpu

import (
	"testing"

	"repro/internal/sim"
)

// Tests for the staging arena behind View.Clone/Release: clones draw storage
// from the owning cluster's buf.Pool, Release hands it back, and the
// steady-state clone path allocates nothing but the envelope.

func TestCloneDrawsFromArenaAndReleaseReturns(t *testing.T) {
	c, _ := newTestCluster(t, 1)
	b := AllocBuffer[float64](c.Devices[0], 100)
	for i := range b.Data() {
		b.Data()[i] = float64(i)
	}

	cl := b.Whole().Clone()
	st := PoolStats[float64](c)
	if st.Gets != 1 || st.Hits != 0 {
		t.Fatalf("after first clone: %+v", st)
	}
	cl.Release()
	st = PoolStats[float64](c)
	if st.Puts != 1 || st.Pooled != 1 {
		t.Fatalf("after release: %+v", st)
	}

	// Second clone of the same size class must reuse the released storage
	// and carry the correct contents despite the unzeroed pool slice.
	cl2 := b.View(0, 80).Clone()
	st = PoolStats[float64](c)
	if st.Gets != 2 || st.Hits != 1 {
		t.Fatalf("after second clone: %+v", st)
	}
	dst := AllocBuffer[float64](c.Devices[0], 80)
	Copy(dst.Whole(), cl2, 80)
	for i, v := range dst.Data() {
		if v != float64(i) {
			t.Fatalf("clone contents corrupted at %d: %v", i, v)
		}
	}
	cl2.Release()
}

func TestReleasePartialViewPanics(t *testing.T) {
	c, _ := newTestCluster(t, 1)
	b := AllocBuffer[float64](c.Devices[0], 16)
	cl := b.Whole().Clone()
	defer func() {
		if recover() == nil {
			t.Fatal("Release of a partial view did not panic")
		}
	}()
	cl.Slice(0, 8).Release()
}

func TestReleasedCloneIsPoisoned(t *testing.T) {
	c, _ := newTestCluster(t, 1)
	b := AllocBuffer[float64](c.Devices[0], 16)
	cl := b.Whole().Clone()
	cl.Release()
	dst := AllocBuffer[float64](c.Devices[0], 16)
	defer func() {
		if recover() == nil {
			t.Fatal("copy out of a released clone did not panic")
		}
	}()
	Copy(dst.Whole(), cl, 16)
}

func TestZeroViewCloneReleaseNoop(t *testing.T) {
	var v View
	v.Clone().Release() // must not panic
}

// TestCloneReleaseAllocationGuard pins the steady-state staging cost: with a
// warm arena, a clone+release cycle allocates only the envelope (one Buffer
// header), never the payload. A regression here means eager sends are back
// to copying through the garbage collector.
func TestCloneReleaseAllocationGuard(t *testing.T) {
	c, _ := newTestCluster(t, 1)
	b := AllocBuffer[float64](c.Devices[0], 4096)
	v := b.Whole()
	v.Clone().Release() // warm the size class
	avg := testing.AllocsPerRun(200, func() {
		cl := v.Clone()
		cl.Release()
	})
	if avg > 1.05 {
		t.Errorf("clone+release allocates %.2f objects/op, want <= 1 (envelope only)", avg)
	}
	st := PoolStats[float64](c)
	if st.Hits < st.Gets-1 {
		t.Errorf("arena misses in steady state: %+v", st)
	}
}

// TestArenaIsPerCluster verifies the ownership rule that makes pooling safe
// under the parallel sweep runner: two clusters never share an arena.
func TestArenaIsPerCluster(t *testing.T) {
	c1, _ := newTestCluster(t, 1)
	c2, _ := newTestCluster(t, 1)
	if poolFor[float64](c1) == poolFor[float64](c2) {
		t.Fatal("clusters share a staging arena")
	}
}

func TestMemcpyAsyncStillWorks(t *testing.T) {
	c, eng := newTestCluster(t, 1)
	dev := c.Devices[0]
	src := AllocBuffer[float64](dev, 8)
	dst := AllocBuffer[float64](dev, 8)
	for i := range src.Data() {
		src.Data()[i] = float64(i + 1)
	}
	runMain(t, eng, func(p *sim.Proc) {
		s := dev.DefaultStream()
		s.MemcpyAsync(p, dst.Whole(), src.Whole(), 8)
		s.Synchronize(p)
	})
	for i, v := range dst.Data() {
		if v != float64(i+1) {
			t.Fatalf("dst[%d] = %v", i, v)
		}
	}
}
