// Package gpu implements the simulated GPU runtime: devices, typed device
// memory, in-order streams, events, and kernels. It plays the role of the
// CUDA/HIP runtime that UNICONN's vendor-agnostic macros expand to.
//
// Streams are simulated processes executing enqueued operations in order in
// virtual time; kernels carry both a functional payload (real Go code, so
// solvers compute genuine numerics) and a cost model (so virtual time is
// meaningful at full problem scale even when the payload is elided).
package gpu

import (
	"fmt"
	"reflect"
)

// Elem constrains the element types usable in device buffers, mirroring the
// native datatypes UNICONN's type templates cover.
type Elem interface {
	~int32 | ~int64 | ~uint32 | ~uint64 | ~float32 | ~float64
}

// ReduceOp is a reduction operator for collectives.
type ReduceOp int

// Supported reduction operators.
const (
	ReduceSum ReduceOp = iota
	ReduceProd
	ReduceMin
	ReduceMax
)

func (o ReduceOp) String() string {
	switch o {
	case ReduceSum:
		return "sum"
	case ReduceProd:
		return "prod"
	case ReduceMin:
		return "min"
	case ReduceMax:
		return "max"
	default:
		return fmt.Sprintf("ReduceOp(%d)", int(o))
	}
}

// mem is the type-erased face of a typed device buffer. Communication layers
// move data through mem without knowing element types.
type mem interface {
	elemSize() int
	length() int
	deviceID() int
	copyFrom(src mem, dstOff, srcOff, n int)
	reduceFrom(src mem, dstOff, srcOff, n int, op ReduceOp)
	clone(off, n int) mem
	recycle()
}

// Buffer is a typed allocation in one device's memory.
type Buffer[T Elem] struct {
	dev  *Device
	data []T
}

// AllocBuffer allocates n elements on the device.
func AllocBuffer[T Elem](dev *Device, n int) *Buffer[T] {
	return &Buffer[T]{dev: dev, data: make([]T, n)}
}

// Data exposes the underlying storage (host-mapped view; in the simulation
// host and device share an address space).
func (b *Buffer[T]) Data() []T { return b.data }

// Len reports the element count.
func (b *Buffer[T]) Len() int { return len(b.data) }

// Device reports the owning device.
func (b *Buffer[T]) Device() *Device { return b.dev }

// View selects [off, off+n) of the buffer for a communication operation.
func (b *Buffer[T]) View(off, n int) View {
	if off < 0 || n < 0 || off+n > len(b.data) {
		panic(fmt.Sprintf("gpu: view [%d,%d) out of buffer of %d", off, off+n, len(b.data)))
	}
	return View{m: b, off: off, n: n}
}

// Whole views the entire buffer.
func (b *Buffer[T]) Whole() View { return b.View(0, len(b.data)) }

func (b *Buffer[T]) elemSize() int { var z T; return int(sizeOf(z)) }
func (b *Buffer[T]) length() int   { return len(b.data) }
func (b *Buffer[T]) deviceID() int {
	if b.dev == nil {
		return -1
	}
	return b.dev.ID
}

func (b *Buffer[T]) copyFrom(src mem, dstOff, srcOff, n int) {
	s, ok := src.(*Buffer[T])
	if !ok {
		panic(fmt.Sprintf("gpu: copy between mismatched element types (%T vs %T)", b, src))
	}
	copy(b.data[dstOff:dstOff+n], s.data[srcOff:srcOff+n])
}

// clone copies [off, off+n) into a detached buffer. The storage comes from
// the owning cluster's staging arena when one is available: staging clones
// (eager sends, rendezvous snapshots, collective scratch) are throwaways, and
// drawing them from a pool keeps the steady-state data path allocation-free.
// The pool returns unzeroed storage, which is safe here because the copy
// overwrites all n elements before anything reads the clone.
func (b *Buffer[T]) clone(off, n int) mem {
	var data []T
	if b.dev != nil && b.dev.cluster != nil {
		data = poolFor[T](b.dev.cluster).Get(n)
	} else {
		data = make([]T, n)
	}
	copy(data, b.data[off:off+n])
	return &Buffer[T]{dev: b.dev, data: data}
}

// recycle returns the buffer's storage to the owning cluster's arena and
// poisons the buffer. Only clones are recycled (via View.Release); the nil
// data acts as a use-after-release trap.
func (b *Buffer[T]) recycle() {
	if b.dev != nil && b.dev.cluster != nil && b.data != nil {
		poolFor[T](b.dev.cluster).Put(b.data)
	}
	b.data = nil
}

func (b *Buffer[T]) reduceFrom(src mem, dstOff, srcOff, n int, op ReduceOp) {
	s, ok := src.(*Buffer[T])
	if !ok {
		panic(fmt.Sprintf("gpu: reduce between mismatched element types (%T vs %T)", b, src))
	}
	d, v := b.data[dstOff:dstOff+n], s.data[srcOff:srcOff+n]
	switch op {
	case ReduceSum:
		for i := range d {
			d[i] += v[i]
		}
	case ReduceProd:
		for i := range d {
			d[i] *= v[i]
		}
	case ReduceMin:
		for i := range d {
			if v[i] < d[i] {
				d[i] = v[i]
			}
		}
	case ReduceMax:
		for i := range d {
			if v[i] > d[i] {
				d[i] = v[i]
			}
		}
	default:
		panic("gpu: unknown reduce op")
	}
}

// sizeOf reports the byte size of an element (covers named types with
// underlying kinds permitted by Elem).
func sizeOf(v any) int { return int(reflect.TypeOf(v).Size()) }

// View is a type-erased window [off, off+n) into a typed device buffer.
// The zero View is "nil" and valid only where documented (e.g. signal-less
// Post on two-sided backends).
type View struct {
	m   mem
	off int
	n   int
}

// IsZero reports whether the view references no buffer.
func (v View) IsZero() bool { return v.m == nil }

// Len reports the element count of the view.
func (v View) Len() int { return v.n }

// ElemSize reports the element byte size (0 for the zero view).
func (v View) ElemSize() int {
	if v.m == nil {
		return 0
	}
	return v.m.elemSize()
}

// Bytes reports the total byte size of the view (0 for the zero view).
func (v View) Bytes() int64 {
	if v.m == nil {
		return 0
	}
	return int64(v.n) * int64(v.m.elemSize())
}

// DeviceID reports the owning device of the underlying buffer (-1 for the
// zero view).
func (v View) DeviceID() int {
	if v.m == nil {
		return -1
	}
	return v.m.deviceID()
}

// Clone copies the viewed elements into a detached buffer of the same
// element type (used e.g. to stage eager-protocol messages). Cloning the
// zero view returns the zero view. A clone's storage comes from its
// cluster's staging arena; callers that know the clone is dead should hand
// the storage back with Release.
func (v View) Clone() View {
	if v.m == nil {
		return View{}
	}
	return View{m: v.m.clone(v.off, v.n), off: 0, n: v.n}
}

// Release returns a staging clone's storage to its cluster's arena and
// poisons the underlying buffer; later access through any view of it will
// fault. Only whole-buffer views may be released — a partial view cannot
// prove the rest of the buffer is dead — and releasing the zero view is a
// no-op. Release is optional: unreleased clones are simply collected.
func (v View) Release() {
	if v.m == nil {
		return
	}
	if v.off != 0 || v.n != v.m.length() {
		panic(fmt.Sprintf("gpu: Release of partial view [%d,%d) of buffer of %d", v.off, v.off+v.n, v.m.length()))
	}
	v.m.recycle()
}

// Offset reports the view's element offset within its buffer.
func (v View) Offset() int { return v.off }

// Slice narrows the view to [off, off+n) relative to the view start.
func (v View) Slice(off, n int) View {
	if off < 0 || n < 0 || off+n > v.n {
		panic(fmt.Sprintf("gpu: subview [%d,%d) out of view of %d", off, off+n, v.n))
	}
	return View{m: v.m, off: v.off + off, n: n}
}

// SameBuffer reports whether two views alias the same underlying buffer.
func (v View) SameBuffer(o View) bool { return v.m == o.m }

// Copy copies n elements from src to dst (dst[i] = src[i]). Views must have
// the same element type.
func Copy(dst, src View, n int) {
	if n == 0 {
		return
	}
	if n > dst.n || n > src.n {
		panic(fmt.Sprintf("gpu: copy of %d elements exceeds views (%d, %d)", n, dst.n, src.n))
	}
	dst.m.copyFrom(src.m, dst.off, src.off, n)
}

// Reduce applies dst[i] = op(dst[i], src[i]) elementwise for n elements.
func Reduce(dst, src View, n int, op ReduceOp) {
	if n == 0 {
		return
	}
	if n > dst.n || n > src.n {
		panic(fmt.Sprintf("gpu: reduce of %d elements exceeds views (%d, %d)", n, dst.n, src.n))
	}
	dst.m.reduceFrom(src.m, dst.off, src.off, n, op)
}
