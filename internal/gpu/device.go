package gpu

import (
	"fmt"
	"reflect"
	"sync"

	"repro/internal/buf"
	"repro/internal/fabric"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Cluster is the full set of simulated devices of one job, sharing a
// machine model and a fabric. A serial job runs every device on one engine;
// a sharded job (core.Config.Shards, sim.Group) partitions devices across
// per-node shard engines.
type Cluster struct {
	// Eng is the first (or only) engine — the legacy accessor every
	// single-engine call site uses. Per-device code must use
	// Device.Engine(), which resolves the owning shard.
	Eng *sim.Engine
	// Engines lists the shard engines; len 1 for a serial cluster.
	Engines []*sim.Engine
	// Conduit, when non-nil, is the cross-shard message channel of a
	// sharded run. Communication layers route inter-node traffic through
	// it instead of scheduling directly onto a remote shard's engine.
	Conduit *sim.Conduit
	Model   *machine.Model
	Fabric  *fabric.Fabric
	Devices []*Device

	// Trace, when non-nil, records kernel and stream-operation spans
	// (set it with SetTrace so the fabric is instrumented too).
	Trace *trace.Log

	// ComputeFault, when non-nil, scales modeled kernel compute time for a
	// rank's device at a virtual time (fault injection: slow ranks; see
	// internal/faults). It must return >= 1 for degradation, 1 when
	// healthy.
	ComputeFault func(at sim.Time, rank int) float64

	// Metrics, when non-nil, is the run's metrics registry (set it with
	// SetMetrics so the engine and fabric are instrumented too). Backends
	// resolve their instruments from it at construction.
	Metrics *metrics.Registry

	mSlowed   *metrics.Counter // kernels stretched by a slow-rank fault
	mKernels  *metrics.Counter
	mStreamOp *metrics.Counter

	// pools holds the cluster's staging arenas, one buf.Pool[T] per element
	// type (keyed by reflect.Type, resolved through poolFor). Like the trace
	// log and metrics registry, pools belong to one cell: parallel sweep
	// cells each build their own cluster and so never share an arena. The
	// mutex covers concurrent first-use creation by shard engines; the
	// pools themselves are internally synchronized.
	poolsMu sync.Mutex
	pools   map[reflect.Type]any

	// costs memoizes machine.Model.Cost per (lib, api, path, bytes). By
	// default the cache lives here, on the per-cell cluster; a sweep worker
	// may install a shared, pre-warmed cache with UseCosts instead.
	costs *machine.CostCache
	// ownCosts records whether costs is this cluster's private cache. Only a
	// private cache may bind per-run metrics counters: a shared cache's
	// hit/miss counts depend on which cell warmed it first, which would make
	// per-cell metrics snapshots interleaving-dependent.
	ownCosts bool
}

// Cost resolves a transfer cost through the cluster's memoizing cache.
// Steady-state communication resolves the same few (path, size) pairs over
// and over; the cache makes repeat lookups a single map probe.
func (c *Cluster) Cost(lib machine.Lib, api machine.API, path fabric.Path, bytes int64) fabric.LinkCost {
	return c.costs.Cost(lib, api, path, bytes)
}

// UseCosts replaces the cluster's private cost cache with a shared,
// pre-warmed one (typically one per sweep worker, via bench.ModelPool).
// Soundness: Model.Cost depends only on the cost
// profiles and wire bandwidths — not on Topology, GPUsPerNode, or
// NICsPerNode — so a cache warmed under one topology/inter-view clone of a
// machine answers identically for every other clone of the same machine;
// callers must pass a cache built from the same named machine. Memoization
// is invisible to virtual time, so sharing cannot perturb results. A shared
// cache never binds per-run metrics counters (see SetMetrics), keeping
// per-cell metrics snapshots deterministic.
func (c *Cluster) UseCosts(cc *machine.CostCache) {
	if cc == nil {
		return
	}
	c.costs = cc
	c.ownCosts = false
}

// poolFor returns the cluster's staging arena for element type T, creating
// it on first use.
func poolFor[T Elem](c *Cluster) *buf.Pool[T] {
	t := reflect.TypeFor[T]()
	c.poolsMu.Lock()
	defer c.poolsMu.Unlock()
	if p, ok := c.pools[t]; ok {
		return p.(*buf.Pool[T])
	}
	p := &buf.Pool[T]{}
	c.pools[t] = p
	return p
}

// PoolStats reports the staging arena's traffic counters for element type T
// (tests pin the zero-allocation steady state with these).
func PoolStats[T Elem](c *Cluster) buf.Stats {
	return poolFor[T](c).Stats()
}

// computeScale resolves the compute-time multiplier for a device now.
func (c *Cluster) computeScale(at sim.Time, rank int) float64 {
	if c.ComputeFault == nil {
		return 1
	}
	if f := c.ComputeFault(at, rank); f > 0 {
		return f
	}
	return 1
}

// SetTrace installs a span log on the cluster and its fabric.
func (c *Cluster) SetTrace(l *trace.Log) {
	c.Trace = l
	c.Fabric.Trace = l
}

// SetMetrics installs a metrics registry on the cluster, its engines, its
// fabric, and its cost cache; nil disables collection (the default). Shard
// engines resolve the same instrument names, so their counts sum into one
// set of totals (addition commutes — shard-count invariant).
func (c *Cluster) SetMetrics(r *metrics.Registry) {
	c.Metrics = r
	for _, e := range c.Engines {
		e.SetMetrics(r)
	}
	c.Fabric.SetMetrics(r)
	if c.ownCosts {
		c.costs.SetMetrics(r)
	}
	c.mSlowed = r.Counter("gpu.kernels.slowed")
	c.mKernels = r.Counter("gpu.kernels")
	c.mStreamOp = r.Counter("gpu.stream_ops")
}

// NewCluster creates nGPUs devices packed onto nodes per the machine model,
// all running on one engine.
func NewCluster(eng *sim.Engine, model *machine.Model, nGPUs int) *Cluster {
	return NewClusterOn([]*sim.Engine{eng}, nil, model, nGPUs)
}

// NewClusterOn creates nGPUs devices packed onto nodes per the machine
// model, with each device (and its stream daemons) running on the engine of
// the shard owning its node: shardOfNode maps node index to engine index
// (nil assigns every node to engines[0]). The caller wires the matching
// sim.Group conduit into Conduit afterwards; construction itself only needs
// the engines, because stream daemons spawn here.
func NewClusterOn(engines []*sim.Engine, shardOfNode []int, model *machine.Model, nGPUs int) *Cluster {
	nodes := model.NodesFor(nGPUs)
	fab := fabric.New(model.FabricConfig(nodes))
	c := &Cluster{
		Eng: engines[0], Engines: engines, Model: model, Fabric: fab,
		pools: make(map[reflect.Type]any),
		costs: machine.NewCostCache(model), ownCosts: true,
	}
	for i := 0; i < nGPUs; i++ {
		eng := engines[0]
		if shardOfNode != nil {
			eng = engines[shardOfNode[fab.Node(i)]]
		}
		d := &Device{
			ID:      i,
			Node:    fab.Node(i),
			Local:   fab.Local(i),
			cluster: c,
			eng:     eng,
		}
		d.defaultStream = d.NewStream("default")
		c.Devices = append(c.Devices, d)
	}
	return c
}

// Device is one simulated GPU (or GCD).
type Device struct {
	ID    int // global id
	Node  int
	Local int

	cluster       *Cluster
	eng           *sim.Engine // the shard engine owning this device's node
	streams       []*Stream
	defaultStream *Stream
}

// Cluster reports the owning cluster.
func (d *Device) Cluster() *Cluster { return d.cluster }

// Engine reports the shard engine the device (and its streams) runs on —
// the cluster's only engine in a serial run.
func (d *Device) Engine() *sim.Engine { return d.eng }

// Model reports the machine model.
func (d *Device) Model() *machine.Model { return d.cluster.Model }

// DefaultStream returns the device's stream 0.
func (d *Device) DefaultStream() *Stream { return d.defaultStream }

// Crash kills every stream daemon of the device: enqueued and future work
// is never executed, as when the GPU (or its host rank) dies. Used by the
// hard-fault scheduler in internal/core alongside killing the rank process.
func (d *Device) Crash() {
	for _, s := range d.streams {
		s.proc.Kill()
	}
}

// NewStream creates an independent in-order execution queue on the device.
func (d *Device) NewStream(name string) *Stream {
	s := &Stream{
		dev:       d,
		name:      fmt.Sprintf("gpu%d.%s", d.ID, name),
		enqueued:  0,
		completed: sim.NewCounter(fmt.Sprintf("gpu%d.%s.done", d.ID, name), 0),
	}
	s.ops = sim.NewMailbox[streamOp](s.name + ".ops")
	s.proc = d.eng.SpawnDaemon(s.name, s.run)
	d.streams = append(d.streams, s)
	return s
}

// streamOp is one enqueued stream operation.
type streamOp struct {
	label string
	run   func(p *sim.Proc)
}

// Stream is an in-order execution queue, served by a daemon process.
// Operations run one at a time in enqueue order; the host synchronizes via
// Synchronize or events.
type Stream struct {
	dev  *Device
	name string
	ops  *sim.Mailbox[streamOp]
	proc *sim.Proc

	enqueued  uint64
	completed *sim.Counter
	aborted   error // first abort raised by a poisoned op (hard-fault recovery)
}

// Device reports the owning device.
func (s *Stream) Device() *Device { return s.dev }

// Name reports the stream's diagnostic name.
func (s *Stream) Name() string { return s.name }

func (s *Stream) run(p *sim.Proc) {
	for {
		op := s.ops.Get(p)
		// A revoke (InterruptAll) delivered while the stream sat idle refers
		// to no operation of this stream; each op starts with a clean slate.
		p.ClearInterrupt()
		start := p.Now()
		// A poisoned op (interrupted mid-collective after a rank failure)
		// aborts here instead of wedging the daemon: the abort is recorded
		// for TakeAborted, the op still counts as completed (the queue must
		// drain so Synchronize returns), and the stream keeps serving
		// post-recovery work.
		if err := sim.Protect(func() { op.run(p) }); err != nil && s.aborted == nil {
			s.aborted = err
		}
		s.dev.cluster.mStreamOp.Inc()
		s.dev.cluster.Trace.Add(trace.Span{
			Kind: trace.KindStreamOp, Label: op.label, Track: s.name,
			Rank: s.dev.ID, Src: s.dev.ID, Dst: s.dev.ID,
			Start: start, End: p.Now(),
		})
		s.completed.Add(p.Engine(), 1)
	}
}

// TakeAborted returns and clears the first abort recorded by a poisoned
// stream operation. Recovery paths call it after synchronizing to learn
// whether completed-but-poisoned work failed; nil means all work succeeded.
func (s *Stream) TakeAborted() error {
	err := s.aborted
	s.aborted = nil
	return err
}

// Enqueue places an operation on the stream without host-side cost. The
// operation runs on the stream process after all previously enqueued work.
func (s *Stream) Enqueue(label string, run func(p *sim.Proc)) {
	s.enqueued++
	s.ops.Put(s.dev.eng, streamOp{label: label, run: run})
}

// Pending reports the number of enqueued-but-incomplete operations.
func (s *Stream) Pending() uint64 { return s.enqueued - s.completed.Value() }

// Synchronize blocks the host process until all work enqueued so far has
// completed, mirroring cudaStreamSynchronize.
func (s *Stream) Synchronize(host *sim.Proc) {
	s.completed.WaitGE(host, s.enqueued)
}

// Query reports whether the stream has pending work, mirroring
// cudaStreamQuery; the caller pays the query's host-side cost.
func (s *Stream) Query(host *sim.Proc) bool {
	host.Advance(s.dev.Model().Uniconn.StreamQuery)
	return s.Pending() == 0
}

// Event is a CUDA/HIP-style timing and synchronization event.
type Event struct {
	name string
	gate *sim.Gate
	at   sim.Time
}

// NewEvent creates an unrecorded event.
func NewEvent(name string) *Event {
	return &Event{name: name, gate: sim.NewGate("event " + name)}
}

// Record enqueues the event on the stream: it fires (capturing the virtual
// time) when the stream reaches it. Re-recording resets the event.
func (e *Event) Record(s *Stream) {
	if e.gate.Fired() {
		e.gate = sim.NewGate("event " + e.name)
	}
	g := e.gate
	s.Enqueue("event "+e.name, func(p *sim.Proc) {
		e.at = p.Now()
		g.Fire(p.Engine())
	})
}

// Synchronize blocks the host until the event has fired.
func (e *Event) Synchronize(host *sim.Proc) { e.gate.Wait(host) }

// At reports the virtual time captured by the last completed Record.
func (e *Event) At() sim.Time { return e.at }

// Elapsed reports end.At() - start.At(), mirroring cudaEventElapsedTime.
func Elapsed(start, end *Event) sim.Duration { return end.at.Sub(start.at) }

// Kernel describes a launchable GPU kernel. Body is the functional payload
// executed on the stream process (it may perform device-initiated
// communication through the KernelCtx); Time is the modeled compute
// duration, applied in addition to any time the body itself consumes.
// Either may be omitted.
type Kernel struct {
	Name string
	// Blocks and ThreadsPerBlock describe the launch configuration; they
	// are used by device-side collectives for cost modelling.
	Blocks          int
	ThreadsPerBlock int
	Time            func(d *Device) sim.Duration
	Body            func(k *KernelCtx)
}

// KernelCtx is the device-side execution context handed to kernel bodies.
type KernelCtx struct {
	P      *sim.Proc
	Dev    *Device
	Stream *Stream
	Kern   *Kernel
	// Args carries launch arguments bound by the caller (UNICONN's
	// BindKernel stores them here).
	Args any
}

// ComputeBytes advances virtual time by the machine's memory-bound kernel
// model for the given traffic (scaled by any slow-rank fault).
func (k *KernelCtx) ComputeBytes(bytes int64) {
	k.P.Advance(k.Dev.scaleCompute(k.P.Now(), k.Dev.Model().StencilKernelTime(bytes)))
}

// scaleCompute applies the cluster's slow-rank fault multiplier to one
// modeled compute duration.
func (d *Device) scaleCompute(at sim.Time, dur sim.Duration) sim.Duration {
	f := d.cluster.computeScale(at, d.ID)
	if f == 1 {
		return dur
	}
	d.cluster.mSlowed.Inc()
	return sim.Duration(float64(dur) * f)
}

// Launch enqueues the kernel on the stream, charging the host the kernel
// launch overhead. It returns immediately (asynchronous, like CUDA).
func (s *Stream) Launch(host *sim.Proc, k *Kernel, args any) {
	s.dev.cluster.mKernels.Inc()
	host.Advance(s.dev.Model().GPU.KernelLaunch)
	s.Enqueue("kernel "+k.Name, func(p *sim.Proc) {
		ctx := &KernelCtx{P: p, Dev: s.dev, Stream: s, Kern: k, Args: args}
		if k.Body != nil {
			k.Body(ctx)
		}
		if k.Time != nil {
			p.Advance(s.dev.scaleCompute(p.Now(), k.Time(s.dev)))
		}
	})
}

// MemcpyAsync enqueues a device-local copy of n elements on the stream.
func (s *Stream) MemcpyAsync(host *sim.Proc, dst, src View, n int) {
	host.Advance(s.dev.Model().HostOp)
	s.Enqueue("memcpy", func(p *sim.Proc) {
		cost := s.dev.cluster.Cost(machine.LibMPI, machine.APIHost, fabric.PathSelf, dst.Slice(0, n).Bytes())
		end := s.dev.cluster.Fabric.Transfer(p.Now(), s.dev.ID, s.dev.ID, int64(n)*int64(dst.ElemSize()), cost)
		Copy(dst, src, n)
		p.AdvanceTo(end)
	})
}
