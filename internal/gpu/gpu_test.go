package gpu

import (
	"testing"
	"testing/quick"

	"repro/internal/machine"
	"repro/internal/sim"
)

func newTestCluster(t *testing.T, nGPUs int) (*Cluster, *sim.Engine) {
	t.Helper()
	eng := sim.NewEngine()
	c := NewCluster(eng, machine.Perlmutter(), nGPUs)
	t.Cleanup(eng.Close)
	return c, eng
}

func runMain(t *testing.T, eng *sim.Engine, fn func(p *sim.Proc)) {
	t.Helper()
	eng.Spawn("main", fn)
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestClusterShape(t *testing.T) {
	c, _ := newTestCluster(t, 6)
	if len(c.Devices) != 6 {
		t.Fatalf("devices = %d", len(c.Devices))
	}
	// Perlmutter has 4 GPUs/node: GPU 5 is node 1, local 1.
	d := c.Devices[5]
	if d.Node != 1 || d.Local != 1 {
		t.Fatalf("gpu5 at node %d local %d", d.Node, d.Local)
	}
	if c.Fabric.PathBetween(0, 1).String() != "intra" {
		t.Fatalf("path(0,1) = %v", c.Fabric.PathBetween(0, 1))
	}
	if c.Fabric.PathBetween(0, 4).String() != "inter" {
		t.Fatalf("path(0,4) = %v", c.Fabric.PathBetween(0, 4))
	}
	if c.Fabric.PathBetween(2, 2).String() != "self" {
		t.Fatalf("path(2,2) = %v", c.Fabric.PathBetween(2, 2))
	}
}

func TestBufferViewCopy(t *testing.T) {
	c, eng := newTestCluster(t, 1)
	runMain(t, eng, func(p *sim.Proc) {
		a := AllocBuffer[float64](c.Devices[0], 8)
		b := AllocBuffer[float64](c.Devices[0], 8)
		for i := range a.Data() {
			a.Data()[i] = float64(i)
		}
		Copy(b.View(2, 4), a.View(1, 4), 4)
		want := []float64{0, 0, 1, 2, 3, 4, 0, 0}
		for i, v := range b.Data() {
			if v != want[i] {
				t.Errorf("b[%d] = %v, want %v", i, v, want[i])
			}
		}
	})
}

func TestReduceOps(t *testing.T) {
	c, eng := newTestCluster(t, 1)
	runMain(t, eng, func(p *sim.Proc) {
		d := c.Devices[0]
		dst := AllocBuffer[int64](d, 4)
		src := AllocBuffer[int64](d, 4)
		copy(dst.Data(), []int64{1, 5, 3, 7})
		copy(src.Data(), []int64{4, 2, 3, 9})
		check := func(op ReduceOp, want []int64) {
			t.Helper()
			tmp := AllocBuffer[int64](d, 4)
			copy(tmp.Data(), dst.Data())
			Reduce(tmp.Whole(), src.Whole(), 4, op)
			for i := range want {
				if tmp.Data()[i] != want[i] {
					t.Errorf("%v[%d] = %d, want %d", op, i, tmp.Data()[i], want[i])
				}
			}
		}
		check(ReduceSum, []int64{5, 7, 6, 16})
		check(ReduceProd, []int64{4, 10, 9, 63})
		check(ReduceMin, []int64{1, 2, 3, 7})
		check(ReduceMax, []int64{4, 5, 3, 9})
	})
}

func TestCopyTypeMismatchPanics(t *testing.T) {
	c, eng := newTestCluster(t, 1)
	runMain(t, eng, func(p *sim.Proc) {
		a := AllocBuffer[float64](c.Devices[0], 4)
		b := AllocBuffer[float32](c.Devices[0], 4)
		defer func() {
			if recover() == nil {
				t.Error("expected panic on type mismatch")
			}
		}()
		Copy(a.Whole(), b.Whole(), 4)
	})
}

func TestViewBounds(t *testing.T) {
	c, eng := newTestCluster(t, 1)
	runMain(t, eng, func(p *sim.Proc) {
		a := AllocBuffer[int32](c.Devices[0], 4)
		if a.Whole().Bytes() != 16 {
			t.Errorf("bytes = %d, want 16", a.Whole().Bytes())
		}
		v := a.View(1, 3)
		if v.Offset() != 1 || v.Len() != 3 {
			t.Errorf("view off=%d len=%d", v.Offset(), v.Len())
		}
		sub := v.Slice(1, 2)
		if sub.Offset() != 2 || sub.Len() != 2 {
			t.Errorf("subview off=%d len=%d", sub.Offset(), sub.Len())
		}
		defer func() {
			if recover() == nil {
				t.Error("expected panic on out-of-range view")
			}
		}()
		a.View(2, 3)
	})
}

func TestStreamOrdering(t *testing.T) {
	c, eng := newTestCluster(t, 1)
	var order []int
	runMain(t, eng, func(p *sim.Proc) {
		s := c.Devices[0].DefaultStream()
		for i := 0; i < 4; i++ {
			i := i
			s.Enqueue("op", func(sp *sim.Proc) {
				sp.Advance(sim.Duration(10 * (4 - i))) // later ops shorter
				order = append(order, i)
			})
		}
		s.Synchronize(p)
		if s.Pending() != 0 {
			t.Errorf("pending = %d after sync", s.Pending())
		}
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want in-order", order)
		}
	}
}

func TestStreamsIndependent(t *testing.T) {
	c, eng := newTestCluster(t, 1)
	var t1, t2 sim.Time
	runMain(t, eng, func(p *sim.Proc) {
		d := c.Devices[0]
		s1 := d.NewStream("a")
		s2 := d.NewStream("b")
		s1.Enqueue("slow", func(sp *sim.Proc) { sp.Advance(1000); t1 = sp.Now() })
		s2.Enqueue("fast", func(sp *sim.Proc) { sp.Advance(10); t2 = sp.Now() })
		s1.Synchronize(p)
		s2.Synchronize(p)
	})
	if t2 >= t1 {
		t.Fatalf("streams serialized: fast done at %v, slow at %v", t2, t1)
	}
}

func TestKernelLaunchAsyncAndCost(t *testing.T) {
	c, eng := newTestCluster(t, 1)
	var hostAfterLaunch, kernelDone sim.Time
	ran := false
	runMain(t, eng, func(p *sim.Proc) {
		s := c.Devices[0].DefaultStream()
		k := &Kernel{
			Name: "k",
			Time: func(d *Device) sim.Duration { return 100 * sim.Microsecond },
			Body: func(kc *KernelCtx) { ran = true },
		}
		s.Launch(p, k, nil)
		hostAfterLaunch = p.Now()
		s.Synchronize(p)
		kernelDone = p.Now()
	})
	if !ran {
		t.Fatal("kernel body did not run")
	}
	launch := machine.Perlmutter().GPU.KernelLaunch
	if hostAfterLaunch != sim.Time(0).Add(launch) {
		t.Fatalf("host after launch = %v, want %v", hostAfterLaunch, launch)
	}
	if got := kernelDone.Sub(hostAfterLaunch); got != 100*sim.Microsecond {
		t.Fatalf("kernel duration = %v, want 100us", got)
	}
}

func TestEventTiming(t *testing.T) {
	c, eng := newTestCluster(t, 1)
	var elapsed sim.Duration
	runMain(t, eng, func(p *sim.Proc) {
		s := c.Devices[0].DefaultStream()
		start, end := NewEvent("start"), NewEvent("end")
		start.Record(s)
		s.Enqueue("work", func(sp *sim.Proc) { sp.Advance(250) })
		end.Record(s)
		end.Synchronize(p)
		elapsed = Elapsed(start, end)
	})
	if elapsed != 250 {
		t.Fatalf("elapsed = %v, want 250", elapsed)
	}
}

func TestEventReRecord(t *testing.T) {
	c, eng := newTestCluster(t, 1)
	runMain(t, eng, func(p *sim.Proc) {
		s := c.Devices[0].DefaultStream()
		ev := NewEvent("e")
		ev.Record(s)
		ev.Synchronize(p)
		first := ev.At()
		s.Enqueue("gap", func(sp *sim.Proc) { sp.Advance(500) })
		ev.Record(s)
		ev.Synchronize(p)
		if ev.At() <= first {
			t.Fatalf("re-record did not advance: %v then %v", first, ev.At())
		}
	})
}

func TestMemcpyAsyncCopiesAndTakesTime(t *testing.T) {
	c, eng := newTestCluster(t, 1)
	runMain(t, eng, func(p *sim.Proc) {
		d := c.Devices[0]
		s := d.DefaultStream()
		a := AllocBuffer[float32](d, 1<<20)
		b := AllocBuffer[float32](d, 1<<20)
		for i := range a.Data() {
			a.Data()[i] = float32(i % 97)
		}
		t0 := p.Now()
		s.MemcpyAsync(p, b.Whole(), a.Whole(), 1<<20)
		s.Synchronize(p)
		if b.Data()[12345] != a.Data()[12345] {
			t.Error("memcpy did not copy data")
		}
		if p.Now() == t0 {
			t.Error("memcpy consumed no virtual time")
		}
	})
}

func TestSizeOfNamedTypes(t *testing.T) {
	type myFloat float32
	c, eng := newTestCluster(t, 1)
	runMain(t, eng, func(p *sim.Proc) {
		b := AllocBuffer[myFloat](c.Devices[0], 3)
		if b.Whole().ElemSize() != 4 {
			t.Fatalf("elem size = %d, want 4", b.Whole().ElemSize())
		}
	})
}

func TestReduceSumPropertyMatchesScalar(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n == 0 {
			return true
		}
		eng := sim.NewEngine()
		defer eng.Close()
		c := NewCluster(eng, machine.Perlmutter(), 1)
		ok := true
		eng.Spawn("main", func(p *sim.Proc) {
			x := AllocBuffer[float64](c.Devices[0], n)
			y := AllocBuffer[float64](c.Devices[0], n)
			copy(x.Data(), a[:n])
			copy(y.Data(), b[:n])
			Reduce(x.Whole(), y.Whole(), n, ReduceSum)
			for i := 0; i < n; i++ {
				if x.Data()[i] != a[i]+b[i] {
					ok = false
				}
			}
		})
		if err := eng.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestComputeFaultScalesKernelTime(t *testing.T) {
	// Slow-rank fault injection: the cluster's ComputeFault hook multiplies
	// modeled kernel time on the matched device during its window.
	c, eng := newTestCluster(t, 2)
	c.ComputeFault = func(at sim.Time, rank int) float64 {
		if rank == 1 && at < sim.Time(sim.Second) {
			return 2.5
		}
		return 1
	}
	durs := make([]sim.Duration, 2)
	for r := 0; r < 2; r++ {
		r := r
		eng.Spawn("host", func(p *sim.Proc) {
			s := c.Devices[r].DefaultStream()
			k := &Kernel{
				Name: "k",
				Time: func(d *Device) sim.Duration { return 100 * sim.Microsecond },
			}
			start := p.Now()
			s.Launch(p, k, nil)
			s.Synchronize(p)
			durs[r] = p.Now().Sub(start)
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	launch := machine.Perlmutter().GPU.KernelLaunch
	if durs[0] != launch+100*sim.Microsecond {
		t.Fatalf("healthy rank took %v", durs[0])
	}
	if durs[1] != launch+250*sim.Microsecond {
		t.Fatalf("slow rank took %v, want launch+250us", durs[1])
	}
}

func TestComputeFaultScalesComputeBytes(t *testing.T) {
	c, eng := newTestCluster(t, 1)
	c.ComputeFault = func(at sim.Time, rank int) float64 { return 3 }
	var dur sim.Duration
	runMain(t, eng, func(p *sim.Proc) {
		s := c.Devices[0].DefaultStream()
		k := &Kernel{
			Name: "stencil",
			Body: func(kc *KernelCtx) { kc.ComputeBytes(1 << 20) },
		}
		s.Launch(p, k, nil)
		start := p.Now()
		s.Synchronize(p)
		dur = p.Now().Sub(start)
	})
	want := sim.Duration(3 * float64(machine.Perlmutter().StencilKernelTime(1<<20)))
	if dur != want {
		t.Fatalf("faulted ComputeBytes took %v, want %v", dur, want)
	}
}
