package spec

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// TestHashInjectivityGrid sweeps every registered workload against the
// registered machines, backends, and topology kinds and asserts no two
// distinct cells share a content address. The grid deliberately includes
// combinations Validate would reject (GPUSHMEM on LUMI, device API on MPI):
// injectivity is a property of the encoding, not of runnability.
func TestHashInjectivityGrid(t *testing.T) {
	machines := []string{"Perlmutter", "LUMI", "MareNostrum5"}
	backends := []string{"MPI", "GPUCCL", "GPUSHMEM"}
	topologies := []string{"flat", "fattree", "fattree:4", "dragonfly", "dragonfly:1,2,2"}
	sizes := []int64{8, 4096, 1 << 20}

	seen := make(map[string]Spec)
	check := func(s Spec) {
		t.Helper()
		h := s.Hash()
		if len(h) != 64 {
			t.Fatalf("hash of %+v is %q, want 64 hex chars", s, h)
		}
		if prev, dup := seen[h]; dup {
			t.Fatalf("hash collision: %+v and %+v both map to %s", prev, s, h)
		}
		seen[h] = s
	}
	for _, w := range Workloads() {
		for _, m := range machines {
			for _, b := range backends {
				for _, topo := range topologies {
					for _, bytes := range sizes {
						s := Spec{Workload: w, Machine: m, Backend: b, Topology: topo, Bytes: bytes}
						if w == WorkloadAllreduce {
							s.Ranks = 64
						}
						check(s)
					}
				}
			}
		}
	}
	// Each remaining dimension, varied alone off the (already-gridded)
	// default base spec.
	for _, s := range []Spec{
		{Workload: WorkloadNetLatency, Bytes: 4096, Native: true},
		{Workload: WorkloadNetLatency, Bytes: 4096, Inter: true},
		{Workload: WorkloadNetLatency, Bytes: 4096, API: "Device"},
		{Workload: WorkloadNetLatency, Bytes: 4096, Iters: 10},
		{Workload: WorkloadNetLatency, Bytes: 4096, Warmup: 3},
		{Workload: WorkloadNetLatency, Bytes: 4096, Shards: 2},
		{Workload: WorkloadNetLatency, Bytes: 4096, FaultMode: FaultDegrade, Severity: 0.5},
		{Workload: WorkloadNetLatency, Bytes: 4096, FaultMode: FaultDegrade, Severity: 0.25},
		{Workload: WorkloadNetLatency, Bytes: 4096, FaultMode: FaultGenerate, Severity: 0.5},
		{Workload: WorkloadNetLatency, Bytes: 4096, FaultMode: FaultGenerate, Severity: 0.5, Seed: 7},
		{Workload: WorkloadNetBandwidth, Bytes: 4096, Window: 32},
		{Workload: WorkloadAllreduce, Bytes: 4096, Ranks: 8},
		{Workload: WorkloadAllreduce, Bytes: 4096, Ranks: 8, Alg: "ring"},
		{Workload: WorkloadAllreduce, Bytes: 4096, Ranks: 8, Alg: "hierarchical"},
		{Workload: WorkloadAllreduce, Bytes: 4096, Ranks: 16},
	} {
		check(s)
	}
	t.Logf("%d distinct specs, %d distinct hashes", len(seen), len(seen))
}

// TestHashEquivalences pins the deliberate hash-equivalence classes:
// Normalize-equal spellings share an address, and so do windowed runs at
// different positive shard counts (bit-identical results, DESIGN.md §12).
// The serial engine is a different protocol and must NOT share.
func TestHashEquivalences(t *testing.T) {
	base := Spec{Workload: WorkloadNetLatency, Bytes: 4096}
	same := []Spec{
		{Workload: WorkloadNetLatency, Bytes: 4096, Machine: "Perlmutter"},
		{Workload: WorkloadNetLatency, Bytes: 4096, Backend: "MPI", API: "Host"},
		{Workload: WorkloadNetLatency, Bytes: 4096, Alg: "auto", Topology: "flat"},
	}
	for _, s := range same {
		if s.Hash() != base.Hash() {
			t.Errorf("normalized-equal spec %+v hashes differently from base", s)
		}
	}
	if h := (Spec{Workload: WorkloadNetLatency, Bytes: 4096, Topology: "fat-tree:4"}).Hash(); h != (Spec{Workload: WorkloadNetLatency, Bytes: 4096, Topology: "fattree:4"}).Hash() {
		t.Error("fat-tree:4 and fattree:4 should share a hash")
	}

	w1 := Spec{Workload: WorkloadAllreduce, Ranks: 64, Bytes: 4096, Shards: 1}
	w4 := w1
	w4.Shards = 4
	if w1.Hash() != w4.Hash() {
		t.Error("windowed runs at shards 1 and 4 are bit-identical and must share a hash")
	}
	serial := w1
	serial.Shards = 0
	if serial.Hash() == w1.Hash() {
		t.Error("the serial engine (shards 0) has different virtual times than the windowed protocol and must hash separately")
	}
}

// TestHashGolden pins content addresses across process restarts and code
// changes: these literals were produced by this package and must never drift
// without bumping hashVersion (a drift silently invalidates every persisted
// cache entry — better loudly here).
func TestHashGolden(t *testing.T) {
	cases := []struct {
		spec Spec
		want string
	}{
		{Spec{Workload: WorkloadNetLatency, Bytes: 4096},
			"f46786a8ff02001f39907e7b177a510d9277ae82d5ee9ed9496123df33397b68"},
		{Spec{Workload: WorkloadNetBandwidth, Bytes: 1 << 20, Inter: true, Backend: "GPUCCL"},
			"97ac85df0419ac2f25dc07931a2debadc49ce7ef3e86fd000941b8ccd7df6f5f"},
		{Spec{Workload: WorkloadAllreduce, Ranks: 64, Bytes: 1 << 20, Topology: "fattree:8", Shards: 2},
			"c33fc07efee231717f962df5814bd4458ca6ecb22f202445c07dab81a0b417f7"},
		{Spec{Workload: WorkloadNetLatency, Bytes: 8192, FaultMode: FaultGenerate, Severity: 0.75, Seed: 42},
			"8fcf72d4921e91e7dbed9db6d31a5b131d1561a94cf9f7c257e4b0af0a4a9e86"},
	}
	for _, c := range cases {
		if got := c.spec.Hash(); got != c.want {
			t.Errorf("golden hash drift for %+v:\n got %s\nwant %s", c.spec, got, c.want)
		}
	}
}

// randSpec draws a random (not necessarily valid) spec; the JSON round-trip
// property must hold for every representable value, not just runnable ones.
func randSpec(r *rand.Rand) Spec {
	pick := func(ss ...string) string { return ss[r.Intn(len(ss))] }
	s := Spec{
		Workload:  pick(Workloads()...),
		Machine:   pick("", "Perlmutter", "LUMI", "MareNostrum5"),
		Backend:   pick("", "MPI", "GPUCCL", "GPUSHMEM"),
		API:       pick("", "Host", "Device"),
		Native:    r.Intn(2) == 0,
		Inter:     r.Intn(2) == 0,
		Ranks:     r.Intn(128),
		Bytes:     8 * (1 + r.Int63n(1<<17)),
		Iters:     r.Intn(20),
		Warmup:    r.Intn(5),
		Window:    r.Intn(128),
		Alg:       pick("", "auto", "rd", "ring", "hierarchical"),
		Topology:  pick("", "flat", "fattree", "fattree:4", "dragonfly", "dragonfly:2,4,2"),
		Shards:    r.Intn(8),
		Seed:      r.Uint64(),
		FaultMode: pick(FaultNone, FaultDegrade, FaultGenerate),
	}
	if s.FaultMode != FaultNone {
		s.Severity = float64(r.Intn(100)) / 64 // exact in binary
	}
	return s
}

// TestJSONRoundTripProperty marshals random specs through JSON and back and
// demands a field-exact round trip plus hash stability on the decoded copy.
func TestJSONRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		s := randSpec(r)
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("marshal %+v: %v", s, err)
		}
		var back Spec
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if !reflect.DeepEqual(s, back) {
			t.Fatalf("round trip changed the spec:\n before %+v\n after  %+v\n json %s", s, back, data)
		}
		if s.Hash() != back.Hash() {
			t.Fatalf("round trip changed the hash for %s", data)
		}
	}
}

// TestValidate spot-checks the acceptance boundary.
func TestValidate(t *testing.T) {
	ok := []Spec{
		{Workload: WorkloadNetLatency, Bytes: 4096},
		{Workload: WorkloadNetBandwidth, Bytes: 1 << 20, Inter: true, Window: 32},
		{Workload: WorkloadNetLatency, Bytes: 8, Backend: "GPUSHMEM", API: "Device"},
		{Workload: WorkloadAllreduce, Ranks: 8, Bytes: 4096, Alg: "ring", Shards: 4},
		{Workload: WorkloadNetLatency, Bytes: 4096, FaultMode: FaultDegrade, Severity: 1.5},
	}
	for _, s := range ok {
		if err := s.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", s, err)
		}
	}
	bad := []struct {
		spec Spec
		frag string
	}{
		{Spec{Workload: "osu", Bytes: 8}, "unknown workload"},
		{Spec{Workload: WorkloadNetLatency, Bytes: 12}, "multiple of 8"},
		{Spec{Workload: WorkloadNetLatency, Bytes: 0}, "multiple of 8"},
		{Spec{Workload: WorkloadNetLatency, Bytes: 8, Machine: "Frontier"}, "unknown machine"},
		{Spec{Workload: WorkloadNetLatency, Bytes: 8, Backend: "UCX"}, "unknown backend"},
		{Spec{Workload: WorkloadNetLatency, Bytes: 8, Machine: "LUMI", Backend: "GPUSHMEM"}, "no GPUSHMEM"},
		{Spec{Workload: WorkloadNetLatency, Bytes: 8, API: "Device"}, "requires the GPUSHMEM"},
		{Spec{Workload: WorkloadNetLatency, Bytes: 8, Ranks: 4}, "not a net-workload field"},
		{Spec{Workload: WorkloadNetLatency, Bytes: 8, Alg: "ring"}, "allreduce field"},
		{Spec{Workload: WorkloadAllreduce, Ranks: 1, Bytes: 8}, "ranks >= 2"},
		{Spec{Workload: WorkloadAllreduce, Ranks: 4, Bytes: 8, Inter: true}, "net-workload fields"},
		{Spec{Workload: WorkloadAllreduce, Ranks: 4, Bytes: 8, Window: 8}, "net-bandwidth field"},
		{Spec{Workload: WorkloadAllreduce, Ranks: 4, Bytes: 8, FaultMode: FaultDegrade, Severity: 0.5}, "net workloads only"},
		{Spec{Workload: WorkloadNetLatency, Bytes: 8, FaultMode: "meteor"}, "unknown fault mode"},
		{Spec{Workload: WorkloadNetLatency, Bytes: 8, Severity: 0.5}, "without a fault mode"},
		{Spec{Workload: WorkloadNetLatency, Bytes: 8, Shards: -1}, ">= 0"},
		{Spec{Workload: WorkloadNetLatency, Bytes: 8, Topology: "torus"}, "fabric"},
	}
	for _, c := range bad {
		err := c.spec.Validate()
		if err == nil {
			t.Errorf("Validate(%+v) = nil, want error containing %q", c.spec, c.frag)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Validate(%+v) = %q, want it to contain %q", c.spec, err, c.frag)
		}
	}
}

// TestParseTopologyList pins the list-splitting rule the chaos and scale
// CLIs share: numeric segments continue the previous dragonfly spec.
func TestParseTopologyList(t *testing.T) {
	tcs, err := ParseTopologyList("flat,fattree:4,dragonfly:1,2,2")
	if err != nil {
		t.Fatal(err)
	}
	if len(tcs) != 3 {
		t.Fatalf("got %d topologies, want 3 (dragonfly params must stay attached)", len(tcs))
	}
	if got := CanonicalTopology(tcs[2]); got != "dragonfly:1,2,2" {
		t.Errorf("third entry = %s, want dragonfly:1,2,2", got)
	}
	if _, err := ParseTopologyList("flat,torus"); err == nil {
		t.Error("want an error for an unknown topology in the list")
	}
}
