package spec

// Shared CLI flag plumbing. Every sweep CLI (uniconn-netbench, -chaos,
// -scale, -prof, -serve) used to register its own copies of -machine,
// -workers, -shards, -live, and -topology, with hand-rolled parsing and —
// inevitably — drifting defaults (uniconn-scale shipped -shards defaulting
// to 1 while every other tool defaulted to the UNICONN_SHARDS environment).
// The helpers here are the single source of those flags: one usage string,
// one default, one resolution rule, everywhere.

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/machine"
)

// WorkersEnv is the environment variable overriding the sweep worker count
// (bench.WorkersEnv aliases it; unset or invalid falls back to GOMAXPROCS).
const WorkersEnv = "UNICONN_WORKERS"

// TopologyUsage is the shared -topology usage string.
const TopologyUsage = "inter-node network: flat|fattree[:k]|dragonfly[:p,a,h] " +
	"(fat-tree arity / dragonfly p,a,h auto-size when omitted)"

// CommonFlags holds the flags every sweep CLI shares.
type CommonFlags struct {
	Machine *string
	Workers *int
	Shards  *int
	Live    *string
}

// Common registers -machine, -workers, -shards, and -live on the flag set
// with the canonical defaults and usage strings. Call before flag.Parse.
func Common(fs *flag.FlagSet) *CommonFlags {
	return &CommonFlags{
		Machine: fs.String("machine", "Perlmutter", "Perlmutter|LUMI|MareNostrum5"),
		Workers: fs.Int("workers", 0,
			"sweep worker count; 0 = UNICONN_WORKERS env or GOMAXPROCS"),
		Shards: fs.Int("shards", 0,
			"engine shards per cell (parallel-in-virtual-time); 0 = UNICONN_SHARDS env or serial engine; "+
				"results are bit-identical at every shard count >= 1"),
		Live: fs.String("live", "",
			"serve live telemetry HTTP on this address (host:port, :0 picks a port): "+
				"/metrics /healthz /debug/runs /debug/flight; stdout stays byte-identical"),
	}
}

// Model resolves the -machine flag.
func (c *CommonFlags) Model() (*machine.Model, error) {
	m := machine.ByName(*c.Machine)
	if m == nil {
		return nil, fmt.Errorf("unknown machine %q", *c.Machine)
	}
	return m, nil
}

// ApplyEnv publishes positive -workers/-shards values into the environment
// variables the runner and engine consult, the resolution rule every CLI
// shares: an explicit flag wins, otherwise the environment, otherwise the
// built-in default (GOMAXPROCS workers, serial engine).
func (c *CommonFlags) ApplyEnv() {
	ApplyWorkersEnv(*c.Workers)
	if *c.Shards > 0 {
		os.Setenv(core.ShardsEnv, strconv.Itoa(*c.Shards))
	}
}

// ApplyWorkersEnv publishes a positive worker count into WorkersEnv (for
// CLIs like uniconn-serve that register -workers without the full common
// set); non-positive counts keep the environment as-is.
func ApplyWorkersEnv(n int) {
	if n > 0 {
		os.Setenv(WorkersEnv, strconv.Itoa(n))
	}
}

// TopologyFlag registers the shared single-topology -topology flag.
func TopologyFlag(fs *flag.FlagSet) *string {
	return fs.String("topology", "flat", TopologyUsage)
}

// TopologyListFlag registers a -topology flag that accepts a comma-separated
// list (ParseTopologyList), for CLIs that sweep topologies.
func TopologyListFlag(fs *flag.FlagSet, def string) *string {
	return fs.String("topology", def, TopologyUsage+"; accepts a comma-separated list")
}

// ParseTopologyList splits a comma-separated topology list, keeping numeric
// dragonfly parameters attached to their spec: "flat,fattree:4,dragonfly:1,2,2"
// is three topologies, not six. Topology names never start with a digit, so a
// purely numeric segment always continues the previous spec.
func ParseTopologyList(s string) ([]fabric.TopologyConfig, error) {
	var specs []string
	for _, seg := range strings.Split(s, ",") {
		seg = strings.TrimSpace(seg)
		if len(specs) > 0 && seg != "" && seg[0] >= '0' && seg[0] <= '9' {
			specs[len(specs)-1] += "," + seg
			continue
		}
		specs = append(specs, seg)
	}
	out := make([]fabric.TopologyConfig, 0, len(specs))
	for _, sp := range specs {
		tc, err := fabric.ParseTopology(sp)
		if err != nil {
			return nil, err
		}
		out = append(out, tc)
	}
	return out, nil
}
