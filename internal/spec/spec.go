// Package spec defines the canonical, serializable experiment specification
// shared by every CLI and by the what-if service (cmd/uniconn-serve): one
// value that pins a simulation cell completely — workload, machine, backend,
// API flavour, topology, shard count, message size, seed, and fault plan —
// together with a stable content hash.
//
// The hash is the content address of the cell's result: two specs with the
// same hash always describe the same deterministic simulation (the engine is
// bit-reproducible, see DESIGN.md §8/§12), so a result cached under the hash
// can be served for every later occurrence of the spec without re-simulating.
// Injectivity is the load-bearing property — distinct specs must never
// collide — so the hash covers every field explicitly through a versioned,
// canonical encoding (hashPayload), never through map iteration or float
// formatting that could drift between processes. Stability across process
// restarts is pinned by golden tests in spec_test.go.
package spec

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/machine"
	"repro/internal/mpi"
)

// The registered workloads. Workloads(), not iota constants, is the source
// of truth the injectivity tests sweep.
const (
	// WorkloadNetLatency is the OSU-style ping-pong one-way latency cell
	// (bench.LatencyRun); Value is the one-way latency in nanoseconds.
	WorkloadNetLatency = "net-latency"
	// WorkloadNetBandwidth is the windowed one-way bandwidth cell
	// (bench.BandwidthRun); Value is bytes/second.
	WorkloadNetBandwidth = "net-bandwidth"
	// WorkloadAllreduce is the rank-scaling allreduce cell
	// (bench.ScaleAllreduce); Value is the per-iteration virtual time in
	// nanoseconds.
	WorkloadAllreduce = "allreduce"
)

// Workloads lists every registered workload name.
func Workloads() []string {
	return []string{WorkloadNetLatency, WorkloadNetBandwidth, WorkloadAllreduce}
}

// The fault-plan modes a spec can request (net workloads only).
const (
	// FaultNone (the empty string) runs the healthy fabric.
	FaultNone = ""
	// FaultDegrade uniformly degrades the benchmarked path at Severity
	// (faults.Degrade).
	FaultDegrade = "degrade"
	// FaultGenerate injects the seed-deterministic randomized plan
	// (faults.Generate) at Severity.
	FaultGenerate = "generate"
)

// Spec pins one simulation cell. The zero value of every field selects the
// workload's documented default (Normalize makes the defaults explicit), so
// JSON bodies can stay minimal: {"workload":"net-latency","bytes":4096}.
//
// Specs are plain data: they marshal to/from JSON losslessly (round-trip
// property test in spec_test.go) and hash stably (Hash).
type Spec struct {
	// Workload selects the cell kind; see Workloads().
	Workload string `json:"workload"`
	// Machine is the machine model name (machine.ByName); default Perlmutter.
	Machine string `json:"machine,omitempty"`
	// Backend is the communication library: MPI | GPUCCL | GPUSHMEM.
	Backend string `json:"backend,omitempty"`
	// API selects host- or device-initiated communication: Host | Device.
	API string `json:"api,omitempty"`
	// Native selects the library's own API instead of UNICONN (net only).
	Native bool `json:"native,omitempty"`
	// Inter places the two net ranks on different nodes (net only).
	Inter bool `json:"inter,omitempty"`
	// Ranks is the GPU count of the allreduce workload (>= 2).
	Ranks int `json:"ranks,omitempty"`
	// Bytes is the message / per-rank vector size (positive multiple of 8).
	Bytes int64 `json:"bytes"`
	// Iters/Warmup override the workload's iteration defaults; 0 keeps them.
	Iters  int `json:"iters,omitempty"`
	Warmup int `json:"warmup,omitempty"`
	// Window is the bandwidth test's in-flight message count (0 = 64).
	Window int `json:"window,omitempty"`
	// Alg forces an allreduce algorithm: auto | rd | ring | hierarchical.
	Alg string `json:"alg,omitempty"`
	// Topology is the inter-node network spec, in the CLI -topology syntax:
	// flat | fattree[:k] | dragonfly[:p,a,h]. Default flat.
	Topology string `json:"topology,omitempty"`
	// Shards is the engine shard count: 0 selects the classic serial
	// engine, any positive count the windowed (parallel-in-virtual-time)
	// protocol. Windowed results are bit-identical at every count >= 1, so
	// only the serial/windowed bit participates in the hash; the count
	// itself is an execution hint (see Hash). Unlike core.Config.Shards,
	// 0 here never consults the UNICONN_SHARDS environment — a spec's
	// result must not depend on the evaluating process's env.
	Shards int `json:"shards,omitempty"`
	// Seed is the fault-plan seed (FaultGenerate).
	Seed uint64 `json:"seed,omitempty"`
	// FaultMode selects the injected plan: "" | degrade | generate.
	FaultMode string `json:"fault_mode,omitempty"`
	// Severity is the fault severity (>= 0; meaningful with FaultMode).
	Severity float64 `json:"severity,omitempty"`
}

// Normalize fills the canonical defaults into the string-valued fields so
// that semantically identical specs hash identically: {"machine":""} and
// {"machine":"Perlmutter"} address the same cell. Numeric zero values stay
// zero — they mean "workload default" and are canonical as-is.
func (s Spec) Normalize() Spec {
	if s.Machine == "" {
		s.Machine = "Perlmutter"
	}
	if s.Backend == "" {
		s.Backend = "MPI"
	}
	if s.API == "" {
		s.API = "Host"
	}
	if s.Alg == "" {
		s.Alg = "auto"
	}
	if s.Topology == "" {
		s.Topology = "flat"
	}
	// Canonicalize topology spelling ("fat-tree:4" == "fattree:4") when it
	// parses; Validate reports the error otherwise.
	if tc, err := fabric.ParseTopology(s.Topology); err == nil {
		s.Topology = CanonicalTopology(tc)
	}
	return s
}

// CanonicalTopology renders a TopologyConfig in the canonical unresolved
// spec syntax (auto-sized parameters stay 0, since resolution depends on the
// node count): "flat", "fattree:4", "fattree", "dragonfly:1,2,2".
func CanonicalTopology(tc fabric.TopologyConfig) string {
	switch tc.Kind {
	case fabric.TopoFatTree:
		if tc.FatTreeArity == 0 {
			return "fattree"
		}
		return fmt.Sprintf("fattree:%d", tc.FatTreeArity)
	case fabric.TopoDragonfly:
		if tc.DragonflyHosts == 0 && tc.DragonflyRouters == 0 && tc.DragonflyGlobal == 0 {
			return "dragonfly"
		}
		return fmt.Sprintf("dragonfly:%d,%d,%d",
			tc.DragonflyHosts, tc.DragonflyRouters, tc.DragonflyGlobal)
	default:
		return "flat"
	}
}

// Validate reports whether the spec describes a runnable cell. It validates
// only what the spec layer owns (names parse, sizes are legal, the machine
// supports the backend); the workload's own Validate still runs at launch.
func (s Spec) Validate() error {
	switch s.Workload {
	case WorkloadNetLatency, WorkloadNetBandwidth:
		if s.Ranks != 0 {
			return fmt.Errorf("spec: %s: ranks is not a net-workload field (always 2)", s.Workload)
		}
		if a := s.Normalize().Alg; a != "auto" {
			return fmt.Errorf("spec: alg %q is an allreduce field", a)
		}
	case WorkloadAllreduce:
		if s.Ranks < 2 {
			return fmt.Errorf("spec: allreduce needs ranks >= 2 (got %d)", s.Ranks)
		}
		if s.Native || s.Inter {
			return fmt.Errorf("spec: native/inter are net-workload fields")
		}
		if s.Window != 0 {
			return fmt.Errorf("spec: window is a net-bandwidth field")
		}
		if s.FaultMode != FaultNone {
			return fmt.Errorf("spec: fault modes apply to net workloads only (got %q)", s.FaultMode)
		}
	default:
		return fmt.Errorf("spec: unknown workload %q (%s)", s.Workload, strings.Join(Workloads(), "|"))
	}
	m, err := s.Model()
	if err != nil {
		return err
	}
	backend, err := s.BackendID()
	if err != nil {
		return err
	}
	api, err := s.APIKind()
	if err != nil {
		return err
	}
	if backend == core.GpushmemBackend && !m.HasGPUSHMEM {
		return fmt.Errorf("spec: %s has no GPUSHMEM", m.Name)
	}
	if api == machine.APIDevice && backend != core.GpushmemBackend {
		return fmt.Errorf("spec: the device API requires the GPUSHMEM backend")
	}
	if _, err := s.AllreduceAlg(); err != nil {
		return err
	}
	if s.Bytes < 8 || s.Bytes%8 != 0 {
		return fmt.Errorf("spec: bytes must be a positive multiple of 8 (got %d)", s.Bytes)
	}
	if s.Iters < 0 || s.Warmup < 0 || s.Window < 0 || s.Shards < 0 {
		return fmt.Errorf("spec: iters/warmup/window/shards must be >= 0")
	}
	switch s.FaultMode {
	case FaultNone, FaultDegrade, FaultGenerate:
	default:
		return fmt.Errorf("spec: unknown fault mode %q (degrade|generate)", s.FaultMode)
	}
	if s.Severity < 0 || math.IsNaN(s.Severity) || math.IsInf(s.Severity, 0) {
		return fmt.Errorf("spec: severity must be finite and >= 0 (got %g)", s.Severity)
	}
	if s.FaultMode == FaultNone && s.Severity != 0 {
		return fmt.Errorf("spec: severity %g without a fault mode", s.Severity)
	}
	return nil
}

// hashVersion tags the canonical encoding. Bump it whenever a field is
// added or the encoding changes, so old cached results are never served for
// a spec the new code would run differently.
const hashVersion = "uniconn-spec/v1"

// hashPayload is the canonical pre-image of the content hash: every field,
// normalized, in fixed order, with exact encodings (hex floats, decimal
// ints). The shard count itself is deliberately reduced to the windowed
// bit — sharded execution is bit-identical at every shard count >= 1
// (DESIGN.md §12), so specs that differ only in positive Shards address
// the same result; the serial engine (Shards 0) is a different protocol
// with different virtual times and hashes separately.
func (s Spec) hashPayload() string {
	n := s.Normalize()
	var b strings.Builder
	b.Grow(256)
	b.WriteString(hashVersion)
	field := func(name, val string) {
		b.WriteByte('\n')
		b.WriteString(name)
		b.WriteByte('=')
		b.WriteString(val)
	}
	field("workload", n.Workload)
	field("machine", n.Machine)
	field("backend", n.Backend)
	field("api", n.API)
	field("native", strconv.FormatBool(n.Native))
	field("inter", strconv.FormatBool(n.Inter))
	field("ranks", strconv.Itoa(n.Ranks))
	field("bytes", strconv.FormatInt(n.Bytes, 10))
	field("iters", strconv.Itoa(n.Iters))
	field("warmup", strconv.Itoa(n.Warmup))
	field("window", strconv.Itoa(n.Window))
	field("alg", n.Alg)
	field("topology", n.Topology)
	field("windowed", strconv.FormatBool(n.Shards > 0))
	field("seed", strconv.FormatUint(n.Seed, 10))
	field("fault_mode", n.FaultMode)
	// Hex float formatting is exact: every distinct float64 has a distinct
	// encoding, and the encoding never depends on locale or printf rounding.
	field("severity", strconv.FormatFloat(n.Severity, 'x', -1, 64))
	return b.String()
}

// Hash returns the spec's content address: the hex SHA-256 of the canonical
// encoding. Equal-by-meaning specs (Normalize-equal, any positive Shards)
// share a hash; distinct specs never collide (injectivity of hashPayload
// plus SHA-256).
func (s Spec) Hash() string {
	sum := sha256.Sum256([]byte(s.hashPayload()))
	return hex.EncodeToString(sum[:])
}

// Model resolves the machine model with the spec's topology applied (on a
// clone when the topology is not flat, so shared models stay untouched).
func (s Spec) Model() (*machine.Model, error) {
	n := s.Normalize()
	m := machine.ByName(n.Machine)
	if m == nil {
		return nil, fmt.Errorf("spec: unknown machine %q", n.Machine)
	}
	tc, err := s.TopologyConfig()
	if err != nil {
		return nil, err
	}
	return WithTopology(m, tc), nil
}

// TopologyConfig parses the spec's topology field.
func (s Spec) TopologyConfig() (fabric.TopologyConfig, error) {
	return fabric.ParseTopology(s.Normalize().Topology)
}

// BackendID parses the backend name.
func (s Spec) BackendID() (core.BackendID, error) {
	return ParseBackend(s.Normalize().Backend)
}

// APIKind parses the API flavour.
func (s Spec) APIKind() (machine.API, error) {
	switch s.Normalize().API {
	case "Host", "host":
		return machine.APIHost, nil
	case "Device", "device":
		return machine.APIDevice, nil
	default:
		return 0, fmt.Errorf("spec: unknown API %q (Host|Device)", s.API)
	}
}

// AllreduceAlg parses the allreduce algorithm name.
func (s Spec) AllreduceAlg() (mpi.AllreduceAlg, error) {
	switch s.Normalize().Alg {
	case "auto":
		return mpi.AlgAuto, nil
	case "rd":
		return mpi.AlgRecursiveDoubling, nil
	case "ring":
		return mpi.AlgRing, nil
	case "hierarchical":
		return mpi.AlgHierarchical, nil
	default:
		return 0, fmt.Errorf("spec: unknown allreduce alg %q (auto|rd|ring|hierarchical)", s.Alg)
	}
}

// ParseBackend parses a backend name as the CLIs spell it.
func ParseBackend(name string) (core.BackendID, error) {
	switch name {
	case "MPI":
		return core.MPIBackend, nil
	case "GPUCCL":
		return core.GpucclBackend, nil
	case "GPUSHMEM":
		return core.GpushmemBackend, nil
	default:
		return 0, fmt.Errorf("spec: unknown backend %q (MPI|GPUCCL|GPUSHMEM)", name)
	}
}

// String renders a short human label for progress displays and logs.
func (s Spec) String() string {
	n := s.Normalize()
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s/%s", n.Workload, n.Machine, n.Backend)
	if n.Workload == WorkloadAllreduce {
		fmt.Fprintf(&b, "/r%d", n.Ranks)
	}
	fmt.Fprintf(&b, "/%dB", n.Bytes)
	if n.Topology != "flat" {
		fmt.Fprintf(&b, "/%s", n.Topology)
	}
	if n.FaultMode != FaultNone {
		fmt.Fprintf(&b, "/%s%.2f", n.FaultMode, n.Severity)
	}
	return b.String()
}

// WithTopology returns the model carrying the topology: the model itself
// when it already matches, a clone otherwise. This is the clone-on-override
// rule every CLI used to hand-roll (shared machine.Model values are never
// mutated).
func WithTopology(m *machine.Model, tc fabric.TopologyConfig) *machine.Model {
	if m.Topology == tc {
		return m
	}
	m2 := *m
	m2.Topology = tc
	return &m2
}
