// Package sparse provides the CSR sparse-matrix substrate for the
// Conjugate Gradient experiment: matrix storage, SpMV, symmetric
// positive-definite generators standing in for the SuiteSparse matrices the
// paper uses (Serena, Queen_4147), row partitioning, and communication
// footprint analysis.
package sparse

import (
	"fmt"
	"math/rand"
)

// CSR is a compressed-sparse-row matrix.
type CSR struct {
	Rows, Cols int
	RowPtr     []int64
	ColIdx     []int32
	Vals       []float64
}

// NNZ reports the number of stored entries.
func (m *CSR) NNZ() int64 { return int64(len(m.ColIdx)) }

// NNZRange reports the stored entries in rows [lo, hi).
func (m *CSR) NNZRange(lo, hi int) int64 { return m.RowPtr[hi] - m.RowPtr[lo] }

// SpMV computes y = A x for the rows [lo, hi) (y indexed from lo).
func (m *CSR) SpMV(y, x []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		sum := 0.0
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			sum += m.Vals[k] * x[m.ColIdx[k]]
		}
		y[i-lo] = sum
	}
}

// builder accumulates rows in order.
type builder struct {
	m *CSR
}

func newBuilder(rows, cols int, nnzHint int64) *builder {
	return &builder{m: &CSR{
		Rows:   rows,
		Cols:   cols,
		RowPtr: append(make([]int64, 0, rows+1), 0),
		ColIdx: make([]int32, 0, nnzHint),
		Vals:   make([]float64, 0, nnzHint),
	}}
}

func (b *builder) add(col int, v float64) {
	b.m.ColIdx = append(b.m.ColIdx, int32(col))
	b.m.Vals = append(b.m.Vals, v)
}

func (b *builder) endRow() {
	b.m.RowPtr = append(b.m.RowPtr, int64(len(b.m.ColIdx)))
}

// Laplace3D builds the 7-point finite-difference Laplacian on an
// nx×ny×nz grid: the canonical sparse SPD test matrix.
func Laplace3D(nx, ny, nz int) *CSR {
	n := nx * ny * nz
	b := newBuilder(n, n, int64(n)*7)
	idx := func(x, y, z int) int { return (z*ny+y)*nx + x }
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				// Ascending column order within the row.
				if z > 0 {
					b.add(idx(x, y, z-1), -1)
				}
				if y > 0 {
					b.add(idx(x, y-1, z), -1)
				}
				if x > 0 {
					b.add(idx(x-1, y, z), -1)
				}
				b.add(idx(x, y, z), 6.5) // slightly dominant: SPD
				if x < nx-1 {
					b.add(idx(x+1, y, z), -1)
				}
				if y < ny-1 {
					b.add(idx(x, y+1, z), -1)
				}
				if z < nz-1 {
					b.add(idx(x, y, z+1), -1)
				}
				b.endRow()
			}
		}
	}
	return b.m
}

// SyntheticSPDSpec parameterizes a banded-plus-scattered SPD matrix with a
// target size and density, the structural fingerprint the CG experiment
// depends on (rows, nnz/row, bandwidth profile).
type SyntheticSPDSpec struct {
	Name string
	// Rows at scale 1.0.
	FullRows int
	// NNZPerRow is the average stored entries per row (diagonal included).
	NNZPerRow int
	// BandFraction of the off-diagonal entries fall within the near band;
	// the rest scatter widely (driving the allgather footprint).
	BandFraction float64
	// Bandwidth of the near band as a fraction of the row count.
	BandWidth float64
	Seed      int64
}

// Serena mimics SuiteSparse Serena: 1,391,349 rows, ~46 nnz/row
// (64,531,701 nnz), a structural-mechanics matrix with a strong band.
func Serena() SyntheticSPDSpec {
	return SyntheticSPDSpec{
		Name: "Serena-like", FullRows: 1391349, NNZPerRow: 46,
		BandFraction: 0.85, BandWidth: 0.002, Seed: 101,
	}
}

// Queen4147 mimics SuiteSparse Queen_4147: 4,147,110 rows, ~80 nnz/row
// (329,499,284 nnz), 3D structural problem.
func Queen4147() SyntheticSPDSpec {
	return SyntheticSPDSpec{
		Name: "Queen_4147-like", FullRows: 4147110, NNZPerRow: 80,
		BandFraction: 0.88, BandWidth: 0.0012, Seed: 202,
	}
}

// Rows returns the row count at a given scale in (0, 1].
func (s SyntheticSPDSpec) Rows(scale float64) int {
	r := int(float64(s.FullRows) * scale)
	if r < 8 {
		r = 8
	}
	return r
}

// Generate materializes the matrix at the given scale: a diagonally
// dominant symmetric pattern with s.NNZPerRow entries per row.
func (s SyntheticSPDSpec) Generate(scale float64) *CSR {
	n := s.Rows(scale)
	rng := rand.New(rand.NewSource(s.Seed))
	band := int(float64(n) * s.BandWidth)
	if band < 2 {
		band = 2
	}
	perRowOff := s.NNZPerRow - 1
	if perRowOff < 2 {
		perRowOff = 2
	}
	// Generate symmetric structure: pick lower-triangle partners for each
	// row, mirror them. To keep generation O(nnz) we emit strictly
	// banded+scattered lower entries and mirror into an adjacency list.
	lower := make([][]int32, n)
	halves := perRowOff / 2
	for i := 0; i < n; i++ {
		for k := 0; k < halves; k++ {
			var j int
			if rng.Float64() < s.BandFraction {
				j = i - 1 - rng.Intn(band)
			} else {
				j = rng.Intn(i + 1)
			}
			if j < 0 || j >= i {
				continue
			}
			lower[i] = append(lower[i], int32(j))
		}
	}
	upper := make([][]int32, n)
	for i := 0; i < n; i++ {
		for _, j := range lower[i] {
			upper[j] = append(upper[j], int32(i))
		}
	}
	b := newBuilder(n, n, int64(n)*int64(perRowOff+1))
	offVal := -1.0
	for i := 0; i < n; i++ {
		deg := len(lower[i]) + len(upper[i])
		for _, j := range lower[i] {
			b.add(int(j), offVal)
		}
		b.add(i, float64(deg)+1.5) // strict diagonal dominance: SPD
		for _, j := range upper[i] {
			b.add(int(j), offVal)
		}
		b.endRow()
	}
	return b.m
}

// Partition assigns contiguous row blocks to ranks.
type Partition struct {
	Starts []int // rank r owns rows [Starts[r], Starts[r+1])
}

// PartitionRows splits rows equally in length across n ranks, as the paper
// does ("without accounting for the number of nonzeros", §VI-D).
func PartitionRows(rows, n int) Partition {
	p := Partition{Starts: make([]int, n+1)}
	for r := 0; r <= n; r++ {
		p.Starts[r] = r * rows / n
	}
	return p
}

// Range reports rank r's row interval.
func (p Partition) Range(r int) (lo, hi int) { return p.Starts[r], p.Starts[r+1] }

// Count reports rank r's row count.
func (p Partition) Count(r int) int { return p.Starts[r+1] - p.Starts[r] }

// Counts returns all per-rank row counts (the Allgatherv counts array).
func (p Partition) Counts() []int {
	c := make([]int, len(p.Starts)-1)
	for r := range c {
		c[r] = p.Count(r)
	}
	return c
}

// Displs returns the per-rank displacements (== Starts[:n]).
func (p Partition) Displs() []int {
	return append([]int{}, p.Starts[:len(p.Starts)-1]...)
}

// ColumnFootprint reports, for owner rank r, how many distinct x-vector
// entries of each other rank's block its rows touch — the communication
// volume a neighborhood exchange would need, used to validate that the
// Allgatherv choice is justified for these matrices.
func ColumnFootprint(m *CSR, p Partition, r int) []int {
	n := len(p.Starts) - 1
	lo, hi := p.Range(r)
	seen := make(map[int32]struct{})
	counts := make([]int, n)
	for k := m.RowPtr[lo]; k < m.RowPtr[hi]; k++ {
		c := m.ColIdx[k]
		if _, dup := seen[c]; dup {
			continue
		}
		seen[c] = struct{}{}
		// Find the owning rank by binary search over Starts.
		owner := ownerOf(p, int(c))
		counts[owner]++
	}
	return counts
}

func ownerOf(p Partition, row int) int {
	lo, hi := 0, len(p.Starts)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if p.Starts[mid] <= row {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Validate checks CSR invariants (sorted RowPtr, in-range columns).
func (m *CSR) Validate() error {
	if len(m.RowPtr) != m.Rows+1 {
		return fmt.Errorf("sparse: RowPtr length %d for %d rows", len(m.RowPtr), m.Rows)
	}
	if m.RowPtr[0] != 0 || m.RowPtr[m.Rows] != m.NNZ() {
		return fmt.Errorf("sparse: RowPtr endpoints %d..%d, nnz %d", m.RowPtr[0], m.RowPtr[m.Rows], m.NNZ())
	}
	for i := 0; i < m.Rows; i++ {
		if m.RowPtr[i] > m.RowPtr[i+1] {
			return fmt.Errorf("sparse: RowPtr decreases at %d", i)
		}
	}
	for _, c := range m.ColIdx {
		if c < 0 || int(c) >= m.Cols {
			return fmt.Errorf("sparse: column %d out of range", c)
		}
	}
	return nil
}
