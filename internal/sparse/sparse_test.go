package sparse

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLaplace3DStructure(t *testing.T) {
	m := Laplace3D(4, 3, 2)
	if m.Rows != 24 || m.Cols != 24 {
		t.Fatalf("dims %dx%d", m.Rows, m.Cols)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Interior points have 7 entries; corners 4.
	if got := m.RowPtr[1] - m.RowPtr[0]; got != 4 {
		t.Errorf("corner row nnz = %d", got)
	}
	// Symmetry check: A[i][j] present iff A[j][i] present.
	type pair struct{ i, j int32 }
	entries := map[pair]float64{}
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			entries[pair{int32(i), m.ColIdx[k]}] = m.Vals[k]
		}
	}
	for p, v := range entries {
		if entries[pair{p.j, p.i}] != v {
			t.Fatalf("asymmetric at (%d,%d)", p.i, p.j)
		}
	}
}

func TestSyntheticSpecsValidateAndScale(t *testing.T) {
	for _, spec := range []SyntheticSPDSpec{Serena(), Queen4147()} {
		m := spec.Generate(0.002)
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if m.Rows != spec.Rows(0.002) {
			t.Fatalf("%s rows = %d", spec.Name, m.Rows)
		}
		// Average nnz/row should be in the ballpark of the target (the
		// band clipping near row 0 loses some).
		avg := float64(m.NNZ()) / float64(m.Rows)
		if avg < float64(spec.NNZPerRow)/3 || avg > float64(spec.NNZPerRow)*1.5 {
			t.Errorf("%s avg nnz/row = %.1f, target %d", spec.Name, avg, spec.NNZPerRow)
		}
	}
}

func TestSyntheticSymmetricAndDominant(t *testing.T) {
	m := Serena().Generate(0.001)
	type pair struct{ i, j int32 }
	seen := map[pair]bool{}
	for i := 0; i < m.Rows; i++ {
		var diag, off float64
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.ColIdx[k]
			if int(j) == i {
				diag = m.Vals[k]
			} else {
				off += math.Abs(m.Vals[k])
				seen[pair{int32(i), j}] = true
			}
		}
		if diag <= off {
			t.Fatalf("row %d not dominant: diag %v, off-sum %v", i, diag, off)
		}
	}
	for p := range seen {
		if !seen[pair{p.j, p.i}] {
			t.Fatalf("asymmetric structure at (%d,%d)", p.i, p.j)
		}
	}
}

func TestSpMVAgainstDense(t *testing.T) {
	m := Laplace3D(3, 3, 3)
	n := m.Rows
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i%5) - 2
	}
	// Dense reference.
	want := make([]float64, n)
	for i := 0; i < n; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			want[i] += m.Vals[k] * x[m.ColIdx[k]]
		}
	}
	// Partitioned SpMV must agree.
	p := PartitionRows(n, 4)
	got := make([]float64, n)
	for r := 0; r < 4; r++ {
		lo, hi := p.Range(r)
		m.SpMV(got[lo:hi], x, lo, hi)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("y[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPartitionRowsProperty(t *testing.T) {
	f := func(rows uint16, ranks uint8) bool {
		n := int(ranks)%16 + 1
		r := int(rows)%5000 + n
		p := PartitionRows(r, n)
		if p.Starts[0] != 0 || p.Starts[n] != r {
			return false
		}
		total := 0
		for i := 0; i < n; i++ {
			c := p.Count(i)
			if c < 0 {
				return false
			}
			total += c
		}
		// Balanced within one row.
		for i := 0; i < n; i++ {
			if p.Count(i) > r/n+1 {
				return false
			}
		}
		return total == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOwnerOf(t *testing.T) {
	p := PartitionRows(100, 7)
	for row := 0; row < 100; row++ {
		o := ownerOf(p, row)
		lo, hi := p.Range(o)
		if row < lo || row >= hi {
			t.Fatalf("owner(%d) = %d covering [%d,%d)", row, o, lo, hi)
		}
	}
}

func TestColumnFootprintBandedMatrix(t *testing.T) {
	m := Serena().Generate(0.001)
	p := PartitionRows(m.Rows, 4)
	for r := 0; r < 4; r++ {
		fp := ColumnFootprint(m, p, r)
		// A banded matrix's footprint is dominated by the own block and
		// its neighbours.
		if fp[r] == 0 {
			t.Errorf("rank %d has zero self footprint", r)
		}
		total := 0
		for _, c := range fp {
			total += c
		}
		if total > m.Rows {
			t.Errorf("rank %d footprint %d exceeds matrix rows", r, total)
		}
	}
}

func TestCountsDispls(t *testing.T) {
	p := PartitionRows(10, 3)
	counts, displs := p.Counts(), p.Displs()
	if len(counts) != 3 || len(displs) != 3 {
		t.Fatalf("lens %d %d", len(counts), len(displs))
	}
	if displs[0] != 0 || displs[1] != counts[0] || displs[2] != counts[0]+counts[1] {
		t.Fatalf("displs %v counts %v", displs, counts)
	}
}
