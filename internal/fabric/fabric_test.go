package fabric

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func testFabric() *Fabric {
	return New(Config{Nodes: 2, GPUsPerNode: 4, NICsPerNode: 2})
}

func TestPathClassification(t *testing.T) {
	f := testFabric()
	cases := []struct {
		src, dst int
		want     Path
	}{
		{0, 0, PathSelf},
		{0, 3, PathIntra},
		{4, 7, PathIntra},
		{0, 4, PathInter},
		{3, 5, PathInter},
	}
	for _, c := range cases {
		if got := f.PathBetween(c.src, c.dst); got != c.want {
			t.Errorf("path(%d,%d) = %v, want %v", c.src, c.dst, got, c.want)
		}
	}
}

func TestNodeLocalGlobal(t *testing.T) {
	f := testFabric()
	for g := 0; g < f.NumGPUs(); g++ {
		if f.GlobalID(f.Node(g), f.Local(g)) != g {
			t.Fatalf("round trip failed for gpu %d", g)
		}
	}
	if f.NumGPUs() != 8 {
		t.Fatalf("gpus = %d", f.NumGPUs())
	}
}

func TestNICSharing(t *testing.T) {
	// 4 GPUs share 2 NICs per node: GPUs 0,1 → NIC 0; GPUs 2,3 → NIC 1.
	f := testFabric()
	if f.nic(0) != f.nic(1) || f.nic(2) != f.nic(3) {
		t.Fatal("expected pairwise NIC sharing")
	}
	if f.nic(0) == f.nic(2) {
		t.Fatal("expected distinct NICs for distant GPUs")
	}
	if f.nic(4) == f.nic(0) {
		t.Fatal("NICs must be per node")
	}
}

func TestTransferTimingLatencyPlusBandwidth(t *testing.T) {
	f := testFabric()
	cost := LinkCost{Latency: 1000, BytesPerSec: 1e9} // 1us, 1 GB/s
	end := f.Transfer(0, 0, 1, 1000, cost)            // 1000 B at 1 GB/s = 1us
	if end != sim.Time(1000+1000) {
		t.Fatalf("end = %v, want 2000", end)
	}
}

func TestTransferContentionSerializesOnEgress(t *testing.T) {
	f := testFabric()
	cost := LinkCost{Latency: 0, BytesPerSec: 1e9}
	end1 := f.Transfer(0, 0, 1, 1000, cost)
	end2 := f.Transfer(0, 0, 2, 1000, cost) // same egress port: queues
	if end2 != end1+1000 {
		t.Fatalf("second transfer ends at %v, want %v", end2, end1+1000)
	}
	// A transfer on completely separate ports is unaffected.
	end3 := f.Transfer(0, 2, 3, 1000, cost)
	if end3 >= end2 {
		t.Fatalf("independent ports serialized: %v >= %v", end3, end2)
	}
}

func TestInterNodeContentionOnSharedNIC(t *testing.T) {
	f := testFabric()
	cost := LinkCost{Latency: 0, BytesPerSec: 1e9}
	// GPUs 0 and 1 share NIC 0.
	end1 := f.Transfer(0, 0, 4, 1000, cost)
	end2 := f.Transfer(0, 1, 5, 1000, cost)
	if end2 != end1+1000 {
		t.Fatalf("shared-NIC transfers should serialize: %v then %v", end1, end2)
	}
	// GPU 2 uses NIC 1 — concurrent. (Destination NICs differ too: 4→nic of
	// node1 slot0, 6→node1 slot1.)
	end3 := f.Transfer(0, 2, 6, 1000, cost)
	if end3 != 1000 {
		t.Fatalf("independent NIC serialized: end3 = %v", end3)
	}
}

func TestLinkCostDuration(t *testing.T) {
	c := LinkCost{Latency: 5, BytesPerSec: 2e9}
	if d := c.Duration(2000); d != 1000 {
		t.Fatalf("duration = %v, want 1000", d)
	}
	if d := c.Duration(0); d != 0 {
		t.Fatalf("zero bytes duration = %v", d)
	}
	if d := (LinkCost{}).Duration(100); d != 0 {
		t.Fatalf("zero bandwidth duration = %v", d)
	}
}

func TestStatsAccumulate(t *testing.T) {
	f := testFabric()
	cost := LinkCost{Latency: 0, BytesPerSec: 1e9}
	f.Transfer(0, 0, 1, 5000, cost)
	s := f.Stats()
	if s.GPUEgressBusy[0] != 5000 || s.GPUIngressBusy[1] != 5000 {
		t.Fatalf("stats %v %v", s.GPUEgressBusy[0], s.GPUIngressBusy[1])
	}
	if s.GPUEgressBusy[2] != 0 {
		t.Fatalf("untouched port busy: %v", s.GPUEgressBusy[2])
	}
}

func TestTransferMonotoneInSizeProperty(t *testing.T) {
	// Larger messages never arrive earlier on a fresh fabric.
	f := func(a, b uint32) bool {
		sa, sb := int64(a%(1<<20))+1, int64(b%(1<<20))+1
		if sa > sb {
			sa, sb = sb, sa
		}
		cost := LinkCost{Latency: 700, BytesPerSec: 5e9}
		fa := New(Config{Nodes: 2, GPUsPerNode: 2, NICsPerNode: 2})
		fb := New(Config{Nodes: 2, GPUsPerNode: 2, NICsPerNode: 2})
		return fa.Transfer(0, 0, 2, sa, cost) <= fb.Transfer(0, 0, 2, sb, cost)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSelfCopyOccupiesBothPorts(t *testing.T) {
	// A device-local copy holds the GPU's own egress AND ingress ports
	// (one copy engine out, one in), so back-to-back local copies
	// serialize and a local copy contends with incoming intra-node
	// traffic.
	f := testFabric()
	cost := LinkCost{Latency: 0, BytesPerSec: 1e9}
	end1 := f.Transfer(0, 0, 0, 1000, cost)
	end2 := f.Transfer(0, 0, 0, 1000, cost) // second local copy queues
	if end1 != 1000 || end2 != 2000 {
		t.Fatalf("local copies end at %v, %v; want 1000, 2000", end1, end2)
	}
	s := f.Stats()
	if s.GPUEgressBusy[0] != 2000 || s.GPUIngressBusy[0] != 2000 {
		t.Fatalf("self-copy port busy egress=%v ingress=%v, want 2000 each",
			s.GPUEgressBusy[0], s.GPUIngressBusy[0])
	}
	// Incoming intra-node traffic into GPU 0 contends with the local
	// copies on the ingress port.
	end3 := f.Transfer(0, 1, 0, 1000, cost)
	if end3 != 3000 {
		t.Fatalf("incoming transfer ends at %v, want 3000 (after local copies)", end3)
	}
}

func TestLinkFaultHookDegradesTransfers(t *testing.T) {
	f := testFabric()
	cost := LinkCost{Latency: 1000, BytesPerSec: 1e9}
	healthy := f.Transfer(0, 0, 1, 1000, cost) // 1us occupancy + 1us latency
	f2 := testFabric()
	f2.LinkFault = func(at sim.Time, src, dst int, path Path, c LinkCost) LinkCost {
		if path != PathIntra {
			t.Fatalf("hook saw path %v, want intra", path)
		}
		c.Latency *= 2
		c.BytesPerSec /= 2
		return c
	}
	degraded := f2.Transfer(0, 0, 1, 1000, cost)
	if healthy != 2000 || degraded != 4000 {
		t.Fatalf("healthy = %v, degraded = %v; want 2000, 4000", healthy, degraded)
	}
}

func TestStallNICShiftsTransfer(t *testing.T) {
	f := testFabric()
	f.StallNIC(0, 0, 0, 5000) // NIC 0 of node 0 down for the first 5us
	cost := LinkCost{Latency: 0, BytesPerSec: 1e9}
	// GPU 0 uses node 0's NIC 0: admission waits for the window to end.
	end := f.Transfer(0, 0, 4, 1000, cost)
	if end != 6000 {
		t.Fatalf("stalled transfer ends at %v, want 6000", end)
	}
	// GPU 2 uses NIC 1 — unaffected.
	if end := f.Transfer(0, 2, 6, 1000, cost); end != 1000 {
		t.Fatalf("unstalled transfer ends at %v, want 1000", end)
	}
}

func TestTryTransferRejectsDuringStall(t *testing.T) {
	f := testFabric()
	f.StallNIC(0, 0, 1000, 5000)
	cost := LinkCost{Latency: 0, BytesPerSec: 1e9}
	// Before the window: admitted.
	arrive, stall := f.TryTransfer(0, 0, 4, 1000, cost)
	if stall != nil || arrive != 1000 {
		t.Fatalf("pre-stall TryTransfer = %v, %v", arrive, stall)
	}
	// Inside the window: rejected with the readmission time.
	_, stall = f.TryTransfer(2000, 0, 4, 1000, cost)
	if stall == nil || stall.Until != 5000 {
		t.Fatalf("in-stall TryTransfer stall = %v, want Until 5000", stall)
	}
	// The destination NIC being stalled also rejects.
	f.StallNIC(1, 0, 1000, 7000)
	_, stall = f.TryTransfer(6000, 2, 4, 1000, cost)
	if stall == nil || stall.Until != 7000 {
		t.Fatalf("dst-stall TryTransfer stall = %v, want Until 7000", stall)
	}
	// After both windows: admitted again.
	if _, stall = f.TryTransfer(7000, 0, 4, 1000, cost); stall != nil {
		t.Fatalf("post-stall TryTransfer rejected: %v", stall)
	}
}

// TestZeroNICCountPanics pins the constructor contract: an unset (or
// negative) NICsPerNode is a configuration bug and must fail loudly at
// construction, not silently inherit the GPU count. Callers that want a
// default go through machine.Model.FabricConfig, which fills in 1.
func TestZeroNICCountPanics(t *testing.T) {
	for _, nics := range []int{0, -3} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("New with NICsPerNode=%d did not panic", nics)
				}
				msg, ok := r.(string)
				if !ok || !strings.Contains(msg, "NICsPerNode") {
					t.Fatalf("New with NICsPerNode=%d panicked with %v, want a NICsPerNode message", nics, r)
				}
			}()
			New(Config{Nodes: 1, GPUsPerNode: 4, NICsPerNode: nics})
		}()
	}
}

// TestTransferBoundsPanic pins the GPU-id validation of the booking API: an
// out-of-range id must panic with a message naming the id and the valid
// range, on Transfer and PathBetween alike.
func TestTransferBoundsPanic(t *testing.T) {
	f := New(Config{Nodes: 2, GPUsPerNode: 4, NICsPerNode: 1}) // ids [0, 8)
	cost := LinkCost{Latency: 100, BytesPerSec: 1e9}
	cases := []struct {
		name string
		call func()
	}{
		{"Transfer src", func() { f.Transfer(0, -1, 0, 8, cost) }},
		{"Transfer dst", func() { f.Transfer(0, 0, 8, 8, cost) }},
		{"PathBetween src", func() { f.PathBetween(8, 0) }},
		{"PathBetween dst", func() { f.PathBetween(0, -2) }},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("%s: no panic for out-of-range GPU id", tc.name)
				}
				msg, ok := r.(string)
				if !ok || !strings.Contains(msg, "outside [0, 8)") {
					t.Fatalf("%s: panic %v, want message naming range [0, 8)", tc.name, r)
				}
			}()
			tc.call()
		}()
	}
}

// TestNICMappingBalanced sweeps every (GPUsPerNode, NICsPerNode) pair in
// 1..8 — including NICs > GPUs and non-divisible ratios — and checks the
// GPU→NIC assignment invariants: every index in range, the spread between
// the most- and least-loaded NIC at most one, and min(GPUs, NICs) distinct
// NICs in use (no port left idle while another is doubly loaded).
func TestNICMappingBalanced(t *testing.T) {
	for gpus := 1; gpus <= 8; gpus++ {
		for nics := 1; nics <= 8; nics++ {
			f := New(Config{Nodes: 3, GPUsPerNode: gpus, NICsPerNode: nics})
			// Check node 1 (an interior node) so a global/local indexing
			// slip cannot hide behind node 0's zero offsets.
			load := make(map[int]int)
			for l := 0; l < gpus; l++ {
				idx := f.nic(f.GlobalID(1, l))
				if idx < 1*nics || idx >= 2*nics {
					t.Fatalf("G=%d N=%d: GPU %d mapped to NIC %d outside node 1's [%d, %d)",
						gpus, nics, l, idx, nics, 2*nics)
				}
				load[idx-nics]++
			}
			min, max := gpus, 0
			for i := 0; i < nics; i++ {
				if load[i] < min {
					min = load[i]
				}
				if load[i] > max {
					max = load[i]
				}
			}
			used := len(load)
			want := gpus
			if nics < want {
				want = nics
			}
			if used != want {
				t.Fatalf("G=%d N=%d: %d distinct NICs used, want %d", gpus, nics, used, want)
			}
			if nics <= gpus && max-min > 1 {
				t.Fatalf("G=%d N=%d: NIC load spread %d (min %d, max %d)", gpus, nics, max-min, min, max)
			}
		}
	}
}

// TestLinkCostDurationRounds pins the float→virtual-time conversion of port
// occupancy: half-away-from-zero rounding to the nearest nanosecond, not
// truncation. With truncation, a bandwidth that yields 2.9999…ns of wire
// time booked 2ns, and the shave compounded across every reservation of a
// long serialized chain.
func TestLinkCostDurationRounds(t *testing.T) {
	cases := []struct {
		bytes int64
		bps   float64
		want  sim.Duration
	}{
		// 3 bytes at 1 GB/s = exactly 3ns.
		{3, 1e9, 3},
		// 1 byte at 0.3 GB/s = 3.33…ns → 3ns (down).
		{1, 0.3e9, 3},
		// 1 byte at 0.4 GB/s = 2.5ns → 3ns (half rounds away from zero);
		// truncation gave 2ns.
		{1, 0.4e9, 3},
		// 7 bytes at 2 GB/s = 3.5ns → 4ns; truncation gave 3ns.
		{7, 2e9, 4},
		// 999999999 bytes at 1 GB/s = 0.999999999s → just under a second.
		{999999999, 1e9, sim.Duration(999999999)},
		{0, 1e9, 0},
		{-5, 1e9, 0},
		{8, 0, 0},
	}
	for _, c := range cases {
		got := LinkCost{BytesPerSec: c.bps}.Duration(c.bytes)
		if got != c.want {
			t.Errorf("Duration(%d bytes @ %.2g B/s) = %v, want %v", c.bytes, c.bps, got, c.want)
		}
	}
}
