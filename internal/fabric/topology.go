package fabric

// Pluggable inter-node topologies. The flat model (the paper's: NIC egress
// straight to NIC ingress) remains the default; fat-tree and dragonfly add
// a switch fabric between the NICs.
//
// Two route models coexist deliberately:
//
//   - The coupled path (Fabric.Transfer, serial engine and single-shard
//     windowed runs) books every switch output port on the adaptive route
//     via sim.ReserveMulti, so switch contention shapes timing and the
//     adaptive policies (least-loaded up-link on the fat-tree, UGAL-style
//     minimal-vs-Valiant on the dragonfly) react to port occupancy.
//   - The split path (SendInter/RecvInter, sharded runs) adds the
//     deterministic minimal-route latency instead: switch ports are shared
//     by every node pair, so booking them from concurrent shards would
//     break the one-writer-per-timeline rule. The extra latency is a pure
//     function of (srcNode, dstNode), which keeps results bit-identical at
//     any shard count, and its minimum over all pairs extends the
//     conservative lookahead window (Fabric.MinInterExtra).
//
// Per-topology state is O(switches x radix) port timelines — O(nodes) for
// both topologies — never O(node pairs): routes are computed arithmetically
// per transfer and no routing tables are materialized, which is what lets a
// modeled 4096-rank cell fit in memory.

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// TopologyKind selects the inter-node network model.
type TopologyKind int

const (
	// TopoFlat is the paper's single-hop network: NIC egress to NIC
	// ingress with nothing in between. The default.
	TopoFlat TopologyKind = iota
	// TopoFatTree is a three-level k-ary fat-tree: k pods of k/2 edge and
	// k/2 aggregation switches plus (k/2)^2 cores, holding k^3/4 nodes,
	// routed up*/down* with adaptive least-loaded up-link selection.
	TopoFatTree
	// TopoDragonfly is a dragonfly of router groups (p nodes per router,
	// a routers per group, h global links per router, at most a*h+1
	// groups) with minimal routing and a UGAL-style adaptive escape to
	// Valiant non-minimal routes through an intermediate group.
	TopoDragonfly
)

func (k TopologyKind) String() string {
	switch k {
	case TopoFlat:
		return "flat"
	case TopoFatTree:
		return "fattree"
	case TopoDragonfly:
		return "dragonfly"
	default:
		return fmt.Sprintf("TopologyKind(%d)", int(k))
	}
}

// DefaultHopLatency is the per-switch traversal latency applied when a
// TopologyConfig leaves HopLatency unset: the port-to-port latency class of
// a modern HPC switch (Slingshot / InfiniBand).
const DefaultHopLatency = 200 * sim.Nanosecond

// TopologyConfig selects and sizes the inter-node topology. The zero value
// is the flat single-hop network.
type TopologyConfig struct {
	Kind TopologyKind

	// FatTreeArity is the switch arity k of the fat-tree (even, >= 2);
	// 0 auto-sizes the smallest even k whose k^3/4 capacity covers the
	// cluster. New resolves the chosen value back into Fabric.Config.
	FatTreeArity int

	// DragonflyHosts (p), DragonflyRouters (a), and DragonflyGlobal (h)
	// size the dragonfly. All-zero auto-sizes a balanced a=2p, h=p
	// configuration covering the cluster.
	DragonflyHosts, DragonflyRouters, DragonflyGlobal int

	// HopLatency is the per-switch traversal latency; 0 selects
	// DefaultHopLatency.
	HopLatency sim.Duration
}

// Describe renders the resolved topology for reports and benchmark JSON:
// "flat", "fattree(k=16)", "dragonfly(p=4,a=8,h=4)".
func (tc TopologyConfig) Describe() string {
	switch tc.Kind {
	case TopoFatTree:
		return fmt.Sprintf("fattree(k=%d)", tc.FatTreeArity)
	case TopoDragonfly:
		return fmt.Sprintf("dragonfly(p=%d,a=%d,h=%d)",
			tc.DragonflyHosts, tc.DragonflyRouters, tc.DragonflyGlobal)
	default:
		return tc.Kind.String()
	}
}

// ParseTopology parses a CLI topology spec: "flat", "fattree" or
// "fattree:<k>", "dragonfly" or "dragonfly:<p>,<a>,<h>".
func ParseTopology(s string) (TopologyConfig, error) {
	var tc TopologyConfig
	name, arg, hasArg := strings.Cut(s, ":")
	switch name {
	case "", "flat":
		if hasArg {
			return tc, fmt.Errorf("fabric: the flat topology takes no parameters (got %q)", s)
		}
	case "fattree", "fat-tree":
		tc.Kind = TopoFatTree
		if hasArg {
			k, err := strconv.Atoi(arg)
			if err != nil {
				return tc, fmt.Errorf("fabric: bad fat-tree arity %q", arg)
			}
			tc.FatTreeArity = k
		}
	case "dragonfly":
		tc.Kind = TopoDragonfly
		if hasArg {
			parts := strings.Split(arg, ",")
			if len(parts) != 3 {
				return tc, fmt.Errorf("fabric: dragonfly wants p,a,h (got %q)", arg)
			}
			vals := make([]int, 3)
			for i, p := range parts {
				v, err := strconv.Atoi(strings.TrimSpace(p))
				if err != nil {
					return tc, fmt.Errorf("fabric: bad dragonfly parameter %q", p)
				}
				vals[i] = v
			}
			tc.DragonflyHosts, tc.DragonflyRouters, tc.DragonflyGlobal = vals[0], vals[1], vals[2]
		}
	default:
		return tc, fmt.Errorf("fabric: unknown topology %q (flat|fattree[:k]|dragonfly[:p,a,h])", s)
	}
	return tc, nil
}

// topology is the internal switch-fabric abstraction behind Config.Topology.
type topology interface {
	// route appends the switch output-port timelines of the adaptive route
	// between two distinct nodes to ports and returns the route's switch
	// latency, whether dead elements forced a detour, and a non-nil
	// *UnreachableError when every live route is gone (a real partition).
	// Coupled path only: it consults and mutates shared port state, so it
	// must run on a single engine goroutine at a time (the serial engine,
	// or the inter-node-free shards of a windowed run never reach it).
	route(ports []*sim.Timeline, at sim.Time, srcNode, dstNode int) ([]*sim.Timeline, sim.Duration, bool, error)
	// extra is the deterministic minimal healthy-route switch latency
	// between two distinct nodes: the split-path (sharded) latency model,
	// also the control-envelope (rendezvous RTS/CTS) wire time.
	extra(srcNode, dstNode int) sim.Duration
	// liveExtra is extra over live elements only: the deterministic
	// minimal-route latency avoiding switches/links dead at time at, plus
	// whether the detour differs from a healthy route, or an
	// *UnreachableError when the pair is partitioned. A pure function of
	// (srcNode, dstNode, at) given the run's static fault plan, so sharded
	// runs stay bit-identical; it never undercuts extra (dead elements only
	// remove candidates of equal cost or force longer routes), which keeps
	// the conservative lookahead window valid.
	liveExtra(srcNode, dstNode int, at sim.Time) (sim.Duration, bool, error)
	// minHops is the switch count of the minimal route between two
	// distinct nodes.
	minHops(srcNode, dstNode int) int
	// minExtra bounds extra() from below over all node pairs — the
	// topology's contribution to the conservative lookahead window.
	minExtra() sim.Duration
	// switches reports the switch count.
	switches() int
	// ports calls fn for every switch output-port timeline in a fixed
	// deterministic order (stats and occupancy reporting).
	ports(fn func(*sim.Timeline))
	// crashSwitch kills one switch from time at onward; panics on an
	// out-of-range id (topofault.go documents each topology's numbering).
	crashSwitch(sw int, at sim.Time)
	// downInterLink kills the link between two adjacent switches from time
	// at onward; panics when the ids are not adjacent in this topology.
	downInterLink(a, b int, at sim.Time)
}

// buildTopology instantiates cfg.Topology for a cluster, resolving
// auto-sized parameters back into the config. Flat returns nil: the fabric
// hot path keeps its two-port fast route.
func buildTopology(cfg *Config) topology {
	tc := &cfg.Topology
	switch tc.Kind {
	case TopoFlat:
		return nil
	case TopoFatTree:
		if tc.HopLatency <= 0 {
			tc.HopLatency = DefaultHopLatency
		}
		t := newFatTree(cfg.Nodes, tc.FatTreeArity, tc.HopLatency)
		tc.FatTreeArity = t.k
		return t
	case TopoDragonfly:
		if tc.HopLatency <= 0 {
			tc.HopLatency = DefaultHopLatency
		}
		t := newDragonfly(cfg.Nodes, tc.DragonflyHosts, tc.DragonflyRouters, tc.DragonflyGlobal, tc.HopLatency)
		tc.DragonflyHosts, tc.DragonflyRouters, tc.DragonflyGlobal = t.p, t.a, t.h
		return t
	default:
		panic(fmt.Sprintf("fabric: unknown topology kind %d", int(tc.Kind)))
	}
}

// leastLoaded picks the port whose timeline frees earliest, lowest index on
// ties — the deterministic analogue of an adaptive switch spraying onto its
// least-congested candidate port.
func leastLoaded(ports []*sim.Timeline) int {
	best := 0
	for i := 1; i < len(ports); i++ {
		if ports[i].BusyUntil() < ports[best].BusyUntil() {
			best = i
		}
	}
	return best
}

// routeHash mixes shard-invariant route inputs into a deterministic 64-bit
// value (splitmix64 finalizer): the randomness source of Valiant routing
// must be a pure function of (src, dst, time) so that serial runs replay
// identically.
func routeHash(a, b, c uint64) uint64 {
	x := a*0x9E3779B97F4A7C15 + b*0xC2B2AE3D27D4EB4F + c*0x165667B19E3779F9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// --- Fat-tree ---

// fatTree is a three-level k-ary fat-tree. Nodes pack onto edge switches
// (k/2 per edge); edge switch e of pod P reaches the pod's k/2 aggregation
// switches; aggregation switch position a of every pod reaches cores
// [a*k/2, (a+1)*k/2). Only switch output ports toward the destination are
// modeled as timelines — the NIC ports of the fabric serve as the
// node<->edge links.
type fatTree struct {
	k, half int
	hop     sim.Duration

	edgeUp   [][]*sim.Timeline // [edge][a]: edge -> agg position a of its pod
	aggUp    [][]*sim.Timeline // [agg][j]: agg position a -> core a*half+j
	aggDown  [][]*sim.Timeline // [agg][e]: agg -> edge position e of its pod
	coreDown [][]*sim.Timeline // [core][pod]: core -> the pod's agg at position core/half

	// Hard-fault state, installed before the run starts (ApplyHardFaults)
	// and immutable afterwards, so concurrent shards may read it. Nil/empty
	// means healthy; deadAt entries of aliveForever mean alive.
	edgeDead, aggDead, coreDead []sim.Time
	deadLink                    map[[2]int]sim.Time // normalized (lo, hi) global switch-id pair
}

// fatTreeArity resolves the fat-tree arity for a cluster: 0 auto-sizes the
// smallest even k whose k^3/4 capacity covers the node count; explicit
// arities are validated. Shared by New and ResolveTopology so fault
// generators see the same sizing the fabric will build.
func fatTreeArity(nodes, arity int) int {
	k := arity
	if k == 0 {
		for k = 2; k*k*k/4 < nodes; k += 2 {
		}
	}
	if k < 2 || k%2 != 0 {
		panic(fmt.Sprintf("fabric: fat-tree arity %d must be even and >= 2", k))
	}
	if k*k*k/4 < nodes {
		panic(fmt.Sprintf("fabric: %d-ary fat-tree holds %d nodes, cluster has %d (raise the arity or auto-size with 0)",
			k, k*k*k/4, nodes))
	}
	return k
}

func newFatTree(nodes, arity int, hop sim.Duration) *fatTree {
	k := fatTreeArity(nodes, arity)
	half := k / 2
	t := &fatTree{k: k, half: half, hop: hop}
	for e := 0; e < k*half; e++ {
		up := make([]*sim.Timeline, half)
		for a := range up {
			up[a] = sim.NewTimeline(fmt.Sprintf("ft.edge%d.up%d", e, a))
		}
		t.edgeUp = append(t.edgeUp, up)
	}
	for g := 0; g < k*half; g++ {
		up := make([]*sim.Timeline, half)
		down := make([]*sim.Timeline, half)
		for j := range up {
			up[j] = sim.NewTimeline(fmt.Sprintf("ft.agg%d.up%d", g, j))
			down[j] = sim.NewTimeline(fmt.Sprintf("ft.agg%d.down%d", g, j))
		}
		t.aggUp = append(t.aggUp, up)
		t.aggDown = append(t.aggDown, down)
	}
	for c := 0; c < half*half; c++ {
		down := make([]*sim.Timeline, k)
		for pod := range down {
			down[pod] = sim.NewTimeline(fmt.Sprintf("ft.core%d.down%d", c, pod))
		}
		t.coreDown = append(t.coreDown, down)
	}
	return t
}

func (t *fatTree) edge(node int) int { return node / t.half }
func (t *fatTree) pod(node int) int  { return node / (t.half * t.half) }

func (t *fatTree) minHops(src, dst int) int {
	switch {
	case t.edge(src) == t.edge(dst):
		return 1 // the shared edge switch
	case t.pod(src) == t.pod(dst):
		return 3 // edge up, agg, edge down
	default:
		return 5 // edge, agg, core, agg, edge
	}
}

func (t *fatTree) extra(src, dst int) sim.Duration {
	return sim.Duration(t.minHops(src, dst)) * t.hop
}

func (t *fatTree) minExtra() sim.Duration { return t.hop }

func (t *fatTree) switches() int { return len(t.edgeUp) + len(t.aggUp) + len(t.coreDown) }

// route books the adaptive up*/down* route. The up phase selects the
// least-loaded edge->agg (and agg->core) port among candidates whose
// switches and links are live at time at; once the route peaks, the down
// path is fully determined by the destination — every route strictly climbs
// then descends, the classic deadlock-freedom argument for up/down routing
// (asserted by the topology tests). With no faults installed every candidate
// is live, so the selection reduces to the original least-loaded policy and
// healthy timings are unchanged. A dead switch/link only removes candidates
// of equal hop count (the fat-tree's path diversity lives entirely in the
// middle of the route), so a reachable pair always keeps its minimal length.
func (t *fatTree) route(ports []*sim.Timeline, at sim.Time, src, dst int) ([]*sim.Timeline, sim.Duration, bool, error) {
	se, de := t.edge(src), t.edge(dst)
	if !t.edgeLive(se, at) || !t.edgeLive(de, at) {
		// A dead edge switch severs its nodes completely: a real partition.
		return ports, 0, false, unreachableErr(src, dst, at)
	}
	if se == de {
		// Same edge switch: one traversal, no contended switch port beyond
		// the NICs (the edge's node-facing ports are the NIC links).
		return ports, t.hop, false, nil
	}
	sp, dp := t.pod(src), t.pod(dst)
	rerouted := false
	if sp == dp {
		best := -1
		for a := 0; a < t.half; a++ {
			if !t.podAggOK(se, de, sp, a, at) {
				rerouted = true
				continue
			}
			if best < 0 || t.edgeUp[se][a].BusyUntil() < t.edgeUp[se][best].BusyUntil() {
				best = a
			}
		}
		if best < 0 {
			return ports, 0, false, unreachableErr(src, dst, at)
		}
		ports = append(ports, t.edgeUp[se][best], t.aggDown[sp*t.half+best][de%t.half])
		return ports, 3 * t.hop, rerouted, nil
	}
	bestA := -1
	for a := 0; a < t.half; a++ {
		if !t.upOK(se, de, sp, dp, a, at) {
			rerouted = true
			continue
		}
		sa, da := sp*t.half+a, dp*t.half+a
		feasible := false
		for j := 0; j < t.half; j++ {
			if t.coreOK(sa, da, a, j, at) {
				feasible = true
				break
			}
		}
		if !feasible {
			rerouted = true
			continue
		}
		if bestA < 0 || t.edgeUp[se][a].BusyUntil() < t.edgeUp[se][bestA].BusyUntil() {
			bestA = a
		}
	}
	if bestA < 0 {
		return ports, 0, false, unreachableErr(src, dst, at)
	}
	sa, da := sp*t.half+bestA, dp*t.half+bestA
	bestJ := -1
	for j := 0; j < t.half; j++ {
		if !t.coreOK(sa, da, bestA, j, at) {
			rerouted = true
			continue
		}
		if bestJ < 0 || t.aggUp[sa][j].BusyUntil() < t.aggUp[sa][bestJ].BusyUntil() {
			bestJ = j
		}
	}
	core := bestA*t.half + bestJ
	ports = append(ports,
		t.edgeUp[se][bestA],
		t.aggUp[sa][bestJ],
		t.coreDown[core][dp],
		t.aggDown[da][de%t.half])
	return ports, 5 * t.hop, rerouted, nil
}

// liveExtra mirrors route's feasibility scan without touching port state: a
// reachable fat-tree pair keeps its minimal hop count (path diversity is in
// the middle of the route), so the live latency equals the healthy one and
// only the rerouted flag and reachability can change.
func (t *fatTree) liveExtra(src, dst int, at sim.Time) (sim.Duration, bool, error) {
	if !t.faulty() {
		return t.extra(src, dst), false, nil
	}
	se, de := t.edge(src), t.edge(dst)
	if !t.edgeLive(se, at) || !t.edgeLive(de, at) {
		return 0, false, unreachableErr(src, dst, at)
	}
	if se == de {
		return t.hop, false, nil
	}
	sp, dp := t.pod(src), t.pod(dst)
	rerouted, reachable := false, false
	if sp == dp {
		for a := 0; a < t.half; a++ {
			if t.podAggOK(se, de, sp, a, at) {
				reachable = true
			} else {
				rerouted = true
			}
		}
		if !reachable {
			return 0, false, unreachableErr(src, dst, at)
		}
		return 3 * t.hop, rerouted, nil
	}
	for a := 0; a < t.half; a++ {
		if !t.upOK(se, de, sp, dp, a, at) {
			rerouted = true
			continue
		}
		sa, da := sp*t.half+a, dp*t.half+a
		feasible := false
		for j := 0; j < t.half; j++ {
			if t.coreOK(sa, da, a, j, at) {
				feasible = true
			} else {
				rerouted = true
			}
		}
		if feasible {
			reachable = true
		}
	}
	if !reachable {
		return 0, false, unreachableErr(src, dst, at)
	}
	return 5 * t.hop, rerouted, nil
}

func (t *fatTree) ports(fn func(*sim.Timeline)) {
	for _, group := range [][][]*sim.Timeline{t.edgeUp, t.aggUp, t.aggDown, t.coreDown} {
		for _, ps := range group {
			for _, tl := range ps {
				fn(tl)
			}
		}
	}
}

// --- Dragonfly ---

// dragonfly models groups of a routers, each serving p nodes and owning h
// global links, in the standard palmtree arrangement: global port q of
// group g (router g*a + q/h, port q%h) connects to group (g+q+1) mod
// groups, giving exactly one direct global channel per group pair.
type dragonfly struct {
	p, a, h, groups int
	hop             sim.Duration

	localOut  [][]*sim.Timeline // [router][dst router local index]; self slot nil
	globalOut [][]*sim.Timeline // [router][h]

	// Hard-fault state, installed before the run starts (ApplyHardFaults)
	// and immutable afterwards, so concurrent shards may read it.
	routerDead []sim.Time
	deadLocal  map[[2]int]sim.Time // normalized router pair within a group
	deadGlobal map[[2]int]sim.Time // normalized group pair (the global channel)
}

// dragonflySize resolves the dragonfly parameters and group count for a
// cluster: all-zero auto-sizes a balanced a=2p, h=p configuration; explicit
// parameters are validated. Shared by New and ResolveTopology so fault
// generators see the same sizing the fabric will build.
func dragonflySize(nodes, p, a, h int) (int, int, int, int) {
	if p == 0 && a == 0 && h == 0 {
		// Balanced sizing (a = 2p, h = p): smallest p whose maximal group
		// count a*h+1 covers the cluster.
		for p = 1; ; p++ {
			a, h = 2*p, p
			if (a*h+1)*a*p >= nodes {
				break
			}
		}
	}
	if p < 1 || a < 1 || h < 1 {
		panic(fmt.Sprintf("fabric: dragonfly p=%d a=%d h=%d: all parameters must be >= 1", p, a, h))
	}
	groups := (nodes + a*p - 1) / (a * p)
	if groups < 1 {
		groups = 1
	}
	if groups > a*h+1 {
		panic(fmt.Sprintf("fabric: dragonfly p=%d a=%d h=%d holds at most %d nodes (%d groups), cluster has %d",
			p, a, h, (a*h+1)*a*p, a*h+1, nodes))
	}
	return p, a, h, groups
}

func newDragonfly(nodes, p, a, h int, hop sim.Duration) *dragonfly {
	p, a, h, groups := dragonflySize(nodes, p, a, h)
	t := &dragonfly{p: p, a: a, h: h, groups: groups, hop: hop}
	for r := 0; r < groups*a; r++ {
		lo := make([]*sim.Timeline, a)
		for d := range lo {
			if d == r%a {
				continue // no self link
			}
			lo[d] = sim.NewTimeline(fmt.Sprintf("df.r%d.l%d", r, d))
		}
		gl := make([]*sim.Timeline, h)
		for q := range gl {
			gl[q] = sim.NewTimeline(fmt.Sprintf("df.r%d.g%d", r, q))
		}
		t.localOut = append(t.localOut, lo)
		t.globalOut = append(t.globalOut, gl)
	}
	return t
}

func (t *dragonfly) router(node int) int { return node / t.p }
func (t *dragonfly) group(r int) int     { return r / t.a }

// gateway returns the router of group g owning the global link toward group
// dg, and the router-local index of that global port.
func (t *dragonfly) gateway(g, dg int) (router, port int) {
	q := (dg - g - 1 + t.groups) % t.groups
	return g*t.a + q/t.h, q % t.h
}

func (t *dragonfly) minHops(src, dst int) int {
	rs, rd := t.router(src), t.router(dst)
	if rs == rd {
		return 1
	}
	gs, gd := t.group(rs), t.group(rd)
	if gs == gd {
		return 2
	}
	hops := 2 // the two gateway routers of the global channel
	if gw, _ := t.gateway(gs, gd); gw != rs {
		hops++
	}
	if entry, _ := t.gateway(gd, gs); entry != rd {
		hops++
	}
	return hops
}

func (t *dragonfly) extra(src, dst int) sim.Duration {
	return sim.Duration(t.minHops(src, dst)) * t.hop
}

func (t *dragonfly) minExtra() sim.Duration { return t.hop }

func (t *dragonfly) switches() int { return len(t.localOut) }

// globalLeg routes from router cur out of its group toward group tg: an
// optional local hop to the gateway, then the global channel. It returns
// the entry router inside tg and the router traversals added (gateway if
// distinct from cur, plus the entry router).
func (t *dragonfly) globalLeg(ports []*sim.Timeline, cur, tg int) ([]*sim.Timeline, int, int) {
	g := t.group(cur)
	gw, port := t.gateway(g, tg)
	hops := 1 // the entry router
	if gw != cur {
		ports = append(ports, t.localOut[cur][gw%t.a])
		hops++
	}
	ports = append(ports, t.globalOut[gw][port])
	entry, _ := t.gateway(tg, g)
	return ports, entry, hops
}

// route books the adaptive dragonfly route: minimal (at most src router ->
// gateway -> global channel -> entry -> dst router, one global hop), or —
// when the minimal global port is congested more than twice as far into the
// future as the Valiant alternative plus one hop of slack, the UGAL
// criterion — a Valiant route through a hash-chosen intermediate group (two
// global hops). The intermediate group is a pure function of
// (src, dst, at), never of per-pair mutable state.
//
// Dead elements reshape the choice: a dead local link inside a group detours
// through a live intermediate router; a dead global channel (or dead
// gateway/entry router) forces the Valiant escape through the first live
// intermediate group scanned from the hash-chosen start; only a dead
// endpoint router — or a fault set leaving no live intermediate — is a real
// partition. With no faults installed every check passes and the original
// UGAL decision is reproduced exactly.
func (t *dragonfly) route(ports []*sim.Timeline, at sim.Time, src, dst int) ([]*sim.Timeline, sim.Duration, bool, error) {
	rs, rd := t.router(src), t.router(dst)
	if !t.routerLive(rs, at) || !t.routerLive(rd, at) {
		return ports, 0, false, unreachableErr(src, dst, at)
	}
	if rs == rd {
		return ports, t.hop, false, nil
	}
	gs, gd := t.group(rs), t.group(rd)
	if gs == gd {
		if !t.localDead(rs, rd, at) {
			ports = append(ports, t.localOut[rs][rd%t.a])
			return ports, 2 * t.hop, false, nil
		}
		// Dead local link: detour through the group's least-loaded live
		// intermediate router (three traversals instead of two).
		best := -1
		for i := 0; i < t.a; i++ {
			x := gs*t.a + i
			if x == rs || x == rd || !t.routerLive(x, at) ||
				t.localDead(rs, x, at) || t.localDead(x, rd, at) {
				continue
			}
			if best < 0 || t.localOut[rs][i].BusyUntil() < t.localOut[rs][best%t.a].BusyUntil() {
				best = x
			}
		}
		if best < 0 {
			return ports, 0, false, unreachableErr(src, dst, at)
		}
		ports = append(ports, t.localOut[rs][best%t.a], t.localOut[best][rd%t.a])
		return ports, 3 * t.hop, true, nil
	}
	minOK := t.minimalOK(rs, rd, gd, at)
	useValiant, via := false, -1
	if t.groups > 2 && minOK {
		gwMin, portMin := t.gateway(gs, gd)
		minDelay := t.globalOut[gwMin][portMin].BusyUntil().Sub(at)
		if minDelay > 0 {
			v := t.valiantGroup(src, dst, at, gs, gd)
			if t.valiantOK(rs, rd, v, gd, at) {
				gwVal, portVal := t.gateway(gs, v)
				valDelay := t.globalOut[gwVal][portVal].BusyUntil().Sub(at)
				if valDelay < 0 {
					valDelay = 0
				}
				if minDelay > 2*valDelay+t.hop {
					useValiant, via = true, v
				}
			}
		}
	}
	rerouted := false
	if !minOK {
		via = t.feasibleVia(src, dst, at, gs, gd, rs, rd)
		if via < 0 {
			return ports, 0, false, unreachableErr(src, dst, at)
		}
		useValiant, rerouted = true, true
	}
	hops := 1 // the source router
	cur := rs
	var legHops int
	if useValiant {
		ports, cur, legHops = t.globalLeg(ports, cur, via)
		hops += legHops
	}
	ports, cur, legHops = t.globalLeg(ports, cur, gd)
	hops += legHops
	if cur != rd {
		ports = append(ports, t.localOut[cur][rd%t.a])
		hops++
	}
	return ports, sim.Duration(hops) * t.hop, rerouted, nil
}

// liveExtra mirrors route's feasibility logic without touching port state.
// Unlike the fat-tree, a forced Valiant detour is longer than the minimal
// route it replaces, so the live latency can exceed the healthy extra; it
// never drops below minExtra (every live route holds at least one switch),
// which is the bound the conservative lookahead window relies on.
func (t *dragonfly) liveExtra(src, dst int, at sim.Time) (sim.Duration, bool, error) {
	if !t.faulty() {
		return t.extra(src, dst), false, nil
	}
	rs, rd := t.router(src), t.router(dst)
	if !t.routerLive(rs, at) || !t.routerLive(rd, at) {
		return 0, false, unreachableErr(src, dst, at)
	}
	if rs == rd {
		return t.hop, false, nil
	}
	gs, gd := t.group(rs), t.group(rd)
	if gs == gd {
		if !t.localDead(rs, rd, at) {
			return 2 * t.hop, false, nil
		}
		for i := 0; i < t.a; i++ {
			x := gs*t.a + i
			if x != rs && x != rd && t.routerLive(x, at) &&
				!t.localDead(rs, x, at) && !t.localDead(x, rd, at) {
				return 3 * t.hop, true, nil
			}
		}
		return 0, false, unreachableErr(src, dst, at)
	}
	if t.minimalOK(rs, rd, gd, at) {
		return t.extra(src, dst), false, nil
	}
	via := t.feasibleVia(src, dst, at, gs, gd, rs, rd)
	if via < 0 {
		return 0, false, unreachableErr(src, dst, at)
	}
	return sim.Duration(t.valiantHops(rs, rd, via, gs, gd)) * t.hop, true, nil
}

// valiantHops counts the router traversals of the Valiant route rs -> via ->
// gd -> rd, mirroring route's booking arithmetic hop for hop.
func (t *dragonfly) valiantHops(rs, rd, via, gs, gd int) int {
	hops := 1 // the source router
	cur := rs
	if gw, _ := t.gateway(gs, via); gw != cur {
		hops++
	}
	hops++ // entry router of via
	cur, _ = t.gateway(via, gs)
	if gw, _ := t.gateway(via, gd); gw != cur {
		hops++
	}
	hops++ // entry router of gd
	cur, _ = t.gateway(gd, via)
	if cur != rd {
		hops++
	}
	return hops
}

// valiantGroup picks the deterministic intermediate group of a Valiant
// route: a hash over (src, dst, at) mapped onto the groups other than the
// source's and the destination's.
func (t *dragonfly) valiantGroup(src, dst int, at sim.Time, gs, gd int) int {
	v := int(routeHash(uint64(src), uint64(dst), uint64(at)) % uint64(t.groups-2))
	lo, hi := gs, gd
	if lo > hi {
		lo, hi = hi, lo
	}
	if v >= lo {
		v++
	}
	if v >= hi {
		v++
	}
	return v
}

func (t *dragonfly) ports(fn func(*sim.Timeline)) {
	for r := range t.localOut {
		for _, tl := range t.localOut[r] {
			if tl != nil {
				fn(tl)
			}
		}
		for _, tl := range t.globalOut[r] {
			fn(tl)
		}
	}
}
