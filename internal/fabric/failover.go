package fabric

// Dead links and route failover. A downed link (DownLink) permanently stops
// admitting transfers on its primary route from a given virtual time; rather
// than deadlocking the traffic, the fabric redirects it onto a fallback
// route with a strictly worse alpha/beta cost:
//
//   - PathSelf: the copy engine is rerouted through a host bounce buffer
//     (cudaMemcpy via pinned host memory) — higher latency, much lower
//     bandwidth.
//   - PathIntra: NVLink/xGMI peer traffic falls back to host-staged copies
//     through PCIe (the classic non-P2P path): latency roughly doubles plus
//     a staging constant, and bandwidth drops to the PCIe fraction.
//   - PathInter: the NIC pair falls back to a secondary (shared) port with
//     extra switch hops.
//
// The failover costs are deliberately multiplicative-plus-additive on the
// healthy cost resolved by the machine model, so the relative ordering of
// backends (the paper's Fig 2-4 crossover story) is preserved under
// failover: every backend on the same route pays the same penalty shape.

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Failover describes the cost penalty of the fallback route used once a
// link on a path is down. Zero-valued factors mean "unchanged".
type Failover struct {
	// LatencyAdd is the staging constant added to each message.
	LatencyAdd sim.Duration
	// LatencyFactor scales the healthy latency (alpha); <= 0 means 1.
	LatencyFactor float64
	// BandwidthFactor scales the healthy bandwidth (1/beta); <= 0 means 1.
	BandwidthFactor float64
}

// apply maps a healthy link cost onto the fallback route's cost.
func (fo Failover) apply(c LinkCost) LinkCost {
	if fo.LatencyFactor > 0 {
		c.Latency = sim.Duration(math.Round(float64(c.Latency) * fo.LatencyFactor))
	}
	c.Latency += fo.LatencyAdd
	if fo.BandwidthFactor > 0 {
		c.BytesPerSec *= fo.BandwidthFactor
	}
	return c
}

// defaultFailovers is installed by New. The numbers model host-staged
// copies (intra/self) and a secondary NIC route (inter).
func defaultFailovers() map[Path]Failover {
	return map[Path]Failover{
		PathSelf:  {LatencyAdd: 2 * sim.Microsecond, LatencyFactor: 2, BandwidthFactor: 0.25},
		PathIntra: {LatencyAdd: 1500 * sim.Nanosecond, LatencyFactor: 2, BandwidthFactor: 0.3},
		PathInter: {LatencyAdd: 3 * sim.Microsecond, LatencyFactor: 1.5, BandwidthFactor: 0.5},
	}
}

// SetFailover overrides the fallback-route penalty for one path kind.
func (f *Fabric) SetFailover(path Path, fo Failover) { f.failover[path] = fo }

// FailoverFor reports the fallback-route penalty for one path kind.
func (f *Fabric) FailoverFor(path Path) Failover { return f.failover[path] }

// downLink records one permanently dead route. src/dst of -1 match any
// endpoint (the whole path kind dies).
type downLink struct {
	src, dst int
	path     Path
	at       sim.Time
}

// DownLink marks the route src->dst on the given path as permanently dead
// from virtual time at onward. src and/or dst may be -1 to match any
// endpoint. Transfers booked on a dead route are not blocked; they are
// redirected onto the path's failover route and pay its cost (see Failover).
func (f *Fabric) DownLink(src, dst int, path Path, at sim.Time) {
	n := f.NumGPUs()
	if src < -1 || src >= n || dst < -1 || dst >= n {
		panic(fmt.Sprintf("fabric: DownLink(%d, %d) outside %d GPUs", src, dst, n))
	}
	f.downs = append(f.downs, downLink{src: src, dst: dst, path: path, at: at})
}

// LinkDownAt reports whether the src->dst route on path is dead at time at.
func (f *Fabric) LinkDownAt(at sim.Time, src, dst int, path Path) bool {
	for _, d := range f.downs {
		if at < d.at || d.path != path {
			continue
		}
		if (d.src == -1 || d.src == src) && (d.dst == -1 || d.dst == dst) {
			return true
		}
	}
	return false
}

// noteFailover counts one transfer redirected onto a fallback route or
// steered around a dead switch/link, in both the cumulative counter and the
// metrics registry.
func (f *Fabric) noteFailover() {
	f.failoverCount.Add(1)
	if f.m != nil {
		f.m.failover.Inc()
	}
}

// FailoverTransfers reports how many transfers have been redirected onto
// fallback routes — or steered around dead switches and inter-switch links
// by the topology's adaptive routing — so far.
func (f *Fabric) FailoverTransfers() int { return int(f.failoverCount.Load()) }
