package fabric

// Fabric metrics: per-path traffic counters resolved once at SetMetrics so
// the Transfer hot path pays one nil check when disabled. Occupancy is a
// derived quantity (busy time / horizon), published once at end of run via
// PublishOccupancy rather than maintained per transfer.

import (
	"repro/internal/metrics"
	"repro/internal/sim"
)

// fabricMetrics holds the fabric's pre-resolved instruments, indexed by Path
// where per-path. nil means disabled.
type fabricMetrics struct {
	bytes    [3]*metrics.Counter // payload bytes booked, by path
	xfers    [3]*metrics.Counter // transfers booked, by path
	wait     [3]*metrics.Counter // contention wait (ns queued behind earlier reservations), by path
	faulted  *metrics.Counter    // transfers whose cost a LinkFault hook changed
	failover *metrics.Counter    // transfers rerouted around a dead link
	stalls   *metrics.Counter    // TryTransfer rejections by stall windows
}

// SetMetrics installs a registry on the fabric; nil disables collection.
func (f *Fabric) SetMetrics(r *metrics.Registry) {
	if r == nil {
		f.m = nil
		return
	}
	m := &fabricMetrics{
		faulted:  r.Counter("fabric.faulted"),
		failover: r.Counter("fabric.failover"),
		stalls:   r.Counter("fabric.stalls"),
	}
	for _, p := range []Path{PathSelf, PathIntra, PathInter} {
		m.bytes[p] = r.Counter("fabric." + p.String() + ".bytes")
		m.xfers[p] = r.Counter("fabric." + p.String() + ".transfers")
		m.wait[p] = r.Counter("fabric." + p.String() + ".wait_ns")
	}
	f.m = m
}

// PublishOccupancy records each port's cumulative busy fraction of the run
// horizon as gauges ("fabric.occ.<port>"), plus the per-class maxima
// ("fabric.occ.max.gpu" / ".nic"). Call once after the simulation finishes;
// a nil registry, nil fabric, or zero horizon publishes nothing.
func (f *Fabric) PublishOccupancy(r *metrics.Registry, end sim.Time) {
	if f == nil || r == nil || end <= 0 {
		return
	}
	occ := func(tl *sim.Timeline) float64 {
		return float64(tl.BusySum()) / float64(end)
	}
	maxGPU, maxNIC := 0.0, 0.0
	for _, ports := range [][]*sim.Timeline{f.egress, f.ingress} {
		for _, tl := range ports {
			v := occ(tl)
			r.Gauge("fabric.occ." + tl.Label()).Set(v)
			if v > maxGPU {
				maxGPU = v
			}
		}
	}
	for _, ports := range [][]*sim.Timeline{f.nicOut, f.nicIn} {
		for _, tl := range ports {
			v := occ(tl)
			r.Gauge("fabric.occ." + tl.Label()).Set(v)
			if v > maxNIC {
				maxNIC = v
			}
		}
	}
	r.Gauge("fabric.occ.max.gpu").Set(maxGPU)
	r.Gauge("fabric.occ.max.nic").Set(maxNIC)
	if f.topo != nil {
		// Switched topologies publish only the per-class maximum: per-port
		// gauges over thousands of switch ports would swamp the snapshot.
		maxSwitch := 0.0
		f.topo.ports(func(tl *sim.Timeline) {
			if v := occ(tl); v > maxSwitch {
				maxSwitch = v
			}
		})
		r.Gauge("fabric.occ.max.switch").Set(maxSwitch)
	}
}
