package fabric

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

func failoverFabric(tr *trace.Log) *Fabric {
	f := New(Config{Nodes: 2, GPUsPerNode: 2, NICsPerNode: 2})
	f.Trace = tr
	return f
}

var failoverCost = LinkCost{Latency: sim.Microsecond, BytesPerSec: 100e9}

// A downed intra-node link must not block transfers: they complete on the
// failover route, strictly later than on the healthy link.
func TestDownLinkFailsOverWithWorseCost(t *testing.T) {
	healthy := failoverFabric(nil)
	base := healthy.Transfer(0, 0, 1, 1<<20, failoverCost)

	tr := trace.New()
	f := failoverFabric(tr)
	f.DownLink(0, 1, PathIntra, 0)
	got := f.Transfer(0, 0, 1, 1<<20, failoverCost)
	if got <= base {
		t.Fatalf("failover arrival %v not later than healthy %v", got, base)
	}
	if f.FailoverTransfers() != 1 {
		t.Fatalf("FailoverTransfers = %d, want 1", f.FailoverTransfers())
	}
	spans := tr.Filter(trace.KindTransfer)
	if len(spans) != 1 || !strings.HasSuffix(spans[0].Track, "+failover") {
		t.Fatalf("trace track = %q, want intra+failover", spans[0].Track)
	}

	// The reverse direction is a different route and stays healthy.
	before := f.FailoverTransfers()
	f.Transfer(got, 1, 0, 1<<20, failoverCost)
	if f.FailoverTransfers() != before {
		t.Fatal("reverse route unexpectedly failed over")
	}
}

// Before the down time the route is healthy; from the down time on it fails
// over. Wildcard endpoints (-1) match every route of the path kind.
func TestDownLinkTimeAndWildcards(t *testing.T) {
	f := failoverFabric(nil)
	down := sim.Time(500)
	f.DownLink(-1, -1, PathInter, down)
	if f.LinkDownAt(499, 0, 2, PathInter) {
		t.Fatal("link down before its down time")
	}
	if !f.LinkDownAt(500, 0, 2, PathInter) || !f.LinkDownAt(501, 3, 1, PathInter) {
		t.Fatal("wildcard down link did not match inter routes")
	}
	if f.LinkDownAt(501, 0, 1, PathIntra) {
		t.Fatal("down link leaked onto a different path kind")
	}
}

// TryTransfer treats a dead route like Transfer (failover, not stall).
func TestTryTransferOnDeadRoute(t *testing.T) {
	f := failoverFabric(nil)
	f.DownLink(0, 1, PathIntra, 0)
	arrive, stall := f.TryTransfer(0, 0, 1, 4096, failoverCost)
	if stall != nil {
		t.Fatalf("dead route reported stall %v; want failover booking", stall)
	}
	if arrive <= 0 {
		t.Fatal("no arrival time from failover booking")
	}
	if f.FailoverTransfers() != 1 {
		t.Fatalf("FailoverTransfers = %d, want 1", f.FailoverTransfers())
	}
}

// The failover penalty composes multiplicatively with an installed soft
// LinkFault (degraded then failed-over), preserving cost ordering.
func TestFailoverComposesWithLinkFault(t *testing.T) {
	f := failoverFabric(nil)
	f.LinkFault = func(at sim.Time, src, dst int, path Path, c LinkCost) LinkCost {
		c.Latency *= 3
		return c
	}
	f.DownLink(0, 1, PathIntra, 0)
	fo := f.FailoverFor(PathIntra)
	wantLat := sim.Duration(float64(3*failoverCost.Latency)*fo.LatencyFactor) + fo.LatencyAdd
	arrive := f.Transfer(0, 0, 1, 0, failoverCost)
	if arrive != sim.Time(wantLat) {
		t.Fatalf("zero-byte arrival %v, want %v (degrade x failover)", arrive, sim.Time(wantLat))
	}
}
