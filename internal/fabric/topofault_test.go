package fabric

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/sim"
)

// ftCheckLive maps a fat-tree port timeline label back to the switches and
// the inter-switch link it represents and fails the test if any of them is
// dead at time at — the route-liveness property: adaptive routing must never
// book a crashed element.
func ftCheckLive(t *testing.T, ft *fatTree, tl *sim.Timeline, at sim.Time) {
	t.Helper()
	l := tl.Label()
	var x, y int
	switch {
	case scan2(l, "ft.edge%d.up%d", &x, &y):
		agg := (x/ft.half)*ft.half + y
		if !ft.edgeLive(x, at) || !ft.aggLive(agg, at) ||
			linkDeadAt(ft.deadLink, ft.edgeID(x), ft.aggID(agg), at) {
			t.Errorf("route books dead element via %s at %v", l, at)
		}
	case scan2(l, "ft.agg%d.up%d", &x, &y):
		core := (x%ft.half)*ft.half + y
		if !ft.aggLive(x, at) || !ft.coreLive(core, at) ||
			linkDeadAt(ft.deadLink, ft.aggID(x), ft.coreID(core), at) {
			t.Errorf("route books dead element via %s at %v", l, at)
		}
	case scan2(l, "ft.agg%d.down%d", &x, &y):
		edge := (x/ft.half)*ft.half + y
		if !ft.aggLive(x, at) || !ft.edgeLive(edge, at) ||
			linkDeadAt(ft.deadLink, ft.aggID(x), ft.edgeID(edge), at) {
			t.Errorf("route books dead element via %s at %v", l, at)
		}
	case scan2(l, "ft.core%d.down%d", &x, &y):
		agg := y*ft.half + x/ft.half
		if !ft.coreLive(x, at) || !ft.aggLive(agg, at) ||
			linkDeadAt(ft.deadLink, ft.coreID(x), ft.aggID(agg), at) {
			t.Errorf("route books dead element via %s at %v", l, at)
		}
	default:
		t.Fatalf("unrecognized fat-tree port label %q", l)
	}
}

func scan2(s, format string, a, b *int) bool {
	n, err := fmt.Sscanf(s, format, a, b)
	return err == nil && n == 2
}

// TestFatTreeRouteAvoidsDeadElements crashes an aggregation switch and downs
// an edge-aggregation link of a k=4 fat-tree, then routes every node pair at
// times before and after the faults: every booked port must map to live
// elements, reachable pairs keep their minimal hop latency, liveExtra agrees
// with the booked route, and affected pairs report the detour.
func TestFatTreeRouteAvoidsDeadElements(t *testing.T) {
	const nodes = 16
	f := New(Config{Nodes: nodes, GPUsPerNode: 1, NICsPerNode: 1,
		Topology: TopologyConfig{Kind: TopoFatTree, FatTreeArity: 4, HopLatency: 100}})
	const crashAt, linkAt = sim.Time(1000), sim.Time(2000)
	// Both faults sit at aggregation position 0: cross-pod routes climb
	// through one position end to end, so pairs spanning the two faulty pods
	// keep position 1 alive (killing different positions would be a real
	// partition — pinned separately below).
	f.CrashSwitch(FatTreeAggSwitch(4, 0, 0), crashAt) // agg 0 of pod 0 (global id 8)
	f.DownInterLink(4, FatTreeAggSwitch(4, 2, 0), linkAt)
	ft := f.topo.(*fatTree)

	rerouted := 0
	for _, at := range []sim.Time{0, crashAt, linkAt, linkAt * 2} {
		for src := 0; src < nodes; src++ {
			for dst := 0; dst < nodes; dst++ {
				if src == dst {
					continue
				}
				ports, extra, detour, err := ft.route(nil, at, src, dst)
				if err != nil {
					t.Fatalf("route(%d->%d at %v): unexpected partition: %v", src, dst, at, err)
				}
				for _, tl := range ports {
					ftCheckLive(t, ft, tl, at)
				}
				// A reachable fat-tree pair never loses its minimal length:
				// path diversity is in the middle of the up*/down* route.
				if want := ft.extra(src, dst); extra != want {
					t.Errorf("route(%d->%d at %v) extra %v, want minimal %v", src, dst, at, extra, want)
				}
				le, leDetour, leErr := ft.liveExtra(src, dst, at)
				if leErr != nil || le != extra {
					t.Errorf("liveExtra(%d->%d at %v) = %v, %v; route extra %v",
						src, dst, at, le, leErr, extra)
				}
				if at == 0 && (detour || leDetour) {
					t.Errorf("detour reported before any fault is active (%d->%d)", src, dst)
				}
				if detour {
					rerouted++
				}
			}
		}
	}
	if rerouted == 0 {
		t.Fatalf("no route reported a detour despite a crashed aggregation switch")
	}
}

// TestFatTreeRealPartitionIsTyped exhausts a k=4 tree's path diversity on
// purpose — a crashed aggregation at position 0 of one pod plus a dead
// edge-agg link at position 1 of another blocks both climb positions for
// pairs spanning them — and asserts the fabric reports it as a typed
// *UnreachableError rather than routing through a dead element, while pairs
// with a live position still route.
func TestFatTreeRealPartitionIsTyped(t *testing.T) {
	const nodes = 16
	f := New(Config{Nodes: nodes, GPUsPerNode: 1, NICsPerNode: 1,
		Topology: TopologyConfig{Kind: TopoFatTree, FatTreeArity: 4, HopLatency: 100}})
	f.CrashSwitch(FatTreeAggSwitch(4, 0, 0), 0)
	f.DownInterLink(4, FatTreeAggSwitch(4, 2, 1), 0) // edge 4 serves nodes 8, 9
	ft := f.topo.(*fatTree)

	for src := 0; src < 4; src++ { // pod 0
		for _, dst := range []int{8, 9} { // edge 4 of pod 2
			_, _, _, err := ft.route(nil, 0, src, dst)
			var ue *UnreachableError
			if !errors.As(err, &ue) {
				t.Errorf("route(%d->%d): want UnreachableError, got %v", src, dst, err)
			}
			_, _, leErr := ft.liveExtra(src, dst, 0)
			if !errors.As(leErr, &ue) {
				t.Errorf("liveExtra(%d->%d): want UnreachableError, got %v", src, dst, leErr)
			}
		}
		// Nodes 10, 11 sit on edge 5 of the same pod: position 1 is intact
		// on their edge, so they stay reachable via the detour.
		for _, dst := range []int{10, 11} {
			_, _, detour, err := ft.route(nil, 0, src, dst)
			if err != nil || !detour {
				t.Errorf("route(%d->%d) = detour %v, err %v; want live detour", src, dst, detour, err)
			}
		}
	}
}

// TestDragonflyRouteAvoidsDeadChannel downs the single global channel between
// two groups of a 4-group dragonfly: affected cross-group routes must escape
// via a Valiant intermediate group (longer, flagged as a detour) and never
// book the dead channel; a crashed router partitions exactly its own nodes.
func TestDragonflyRouteAvoidsDeadChannel(t *testing.T) {
	const nodes = 8 // p=1, a=2 -> 4 groups of 2 routers
	f := New(Config{Nodes: nodes, GPUsPerNode: 1, NICsPerNode: 1,
		Topology: TopologyConfig{Kind: TopoDragonfly,
			DragonflyHosts: 1, DragonflyRouters: 2, DragonflyGlobal: 2, HopLatency: 100}})
	const downAt = sim.Time(1000)
	f.DownInterLink(0, 2, downAt) // the group 0 <-> group 1 global channel
	df := f.topo.(*dragonfly)

	checkPorts := func(ports []*sim.Timeline, at sim.Time) {
		t.Helper()
		for _, tl := range ports {
			l := tl.Label()
			var r, q int
			switch {
			case scan2(l, "df.r%d.g%d", &r, &q):
				g := df.group(r)
				tg := (g + (r%df.a)*df.h + q + 1) % df.groups
				if !df.routerLive(r, at) || df.globalDead(g, tg, at) {
					t.Errorf("route books dead global element via %s at %v", l, at)
				}
			case scan2(l, "df.r%d.l%d", &r, &q):
				d := df.group(r)*df.a + q
				if !df.routerLive(r, at) || !df.routerLive(d, at) || df.localDead(r, d, at) {
					t.Errorf("route books dead local element via %s at %v", l, at)
				}
			default:
				t.Fatalf("unrecognized dragonfly port label %q", l)
			}
		}
	}

	rerouted := 0
	for _, at := range []sim.Time{0, downAt, downAt * 3} {
		for src := 0; src < nodes; src++ {
			for dst := 0; dst < nodes; dst++ {
				if src == dst {
					continue
				}
				ports, extra, detour, err := df.route(nil, at, src, dst)
				if err != nil {
					t.Fatalf("route(%d->%d at %v): unexpected partition: %v", src, dst, at, err)
				}
				checkPorts(ports, at)
				if extra < df.minExtra() {
					t.Errorf("route(%d->%d at %v) extra %v under minExtra %v",
						src, dst, at, extra, df.minExtra())
				}
				le, _, leErr := df.liveExtra(src, dst, at)
				if leErr != nil {
					t.Errorf("liveExtra(%d->%d at %v): %v", src, dst, at, leErr)
				}
				if le < df.minExtra() {
					t.Errorf("liveExtra(%d->%d at %v) = %v undercuts minExtra %v — breaks the lookahead window",
						src, dst, at, le, df.minExtra())
				}
				if at == 0 && detour {
					t.Errorf("detour reported before the channel died (%d->%d)", src, dst)
				}
				if detour {
					rerouted++
					if extra <= df.extra(src, dst) {
						t.Errorf("Valiant escape %d->%d at %v not longer than minimal (%v <= %v)",
							src, dst, at, extra, df.extra(src, dst))
					}
				}
			}
		}
	}
	if rerouted == 0 {
		t.Fatalf("no route escaped via Valiant despite the dead global channel")
	}

	// A crashed router severs exactly its own node (p=1): typed unreachable
	// for pairs touching it, everything else still routes.
	f2 := New(Config{Nodes: nodes, GPUsPerNode: 1, NICsPerNode: 1,
		Topology: TopologyConfig{Kind: TopoDragonfly,
			DragonflyHosts: 1, DragonflyRouters: 2, DragonflyGlobal: 2, HopLatency: 100}})
	f2.CrashSwitch(2, 0) // router 2 serves node 2
	df2 := f2.topo.(*dragonfly)
	for src := 0; src < nodes; src++ {
		for dst := 0; dst < nodes; dst++ {
			if src == dst {
				continue
			}
			_, _, _, err := df2.route(nil, 0, src, dst)
			var ue *UnreachableError
			touches := src == 2 || dst == 2
			if touches && !errors.As(err, &ue) {
				t.Errorf("route(%d->%d) with router 2 dead: want UnreachableError, got %v", src, dst, err)
			}
			if !touches && err != nil {
				t.Errorf("route(%d->%d) with router 2 dead: unexpected error %v", src, dst, err)
			}
		}
	}
}

// TestTopologyFaultValidation pins the construction-time checks: switch ids
// and link pairs that do not name real elements panic immediately instead of
// silently corrupting the fault tables, and the flat topology rejects
// switch faults outright.
func TestTopologyFaultValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}

	ftf := func() *Fabric {
		return New(Config{Nodes: 16, GPUsPerNode: 1, NICsPerNode: 1,
			Topology: TopologyConfig{Kind: TopoFatTree, FatTreeArity: 4}})
	}
	mustPanic("fat-tree switch id out of range", func() { ftf().CrashSwitch(20, 0) })
	mustPanic("fat-tree negative switch id", func() { ftf().CrashSwitch(-1, 0) })
	// Edge 0 is in pod 0; agg FatTreeAggSwitch(4, 2, 0) is in pod 2.
	mustPanic("fat-tree cross-pod edge-agg link", func() {
		ftf().DownInterLink(0, FatTreeAggSwitch(4, 2, 0), 0)
	})
	// Agg position 0 reaches cores [0, 2); core id 2*8+3 is core 3.
	mustPanic("fat-tree nonexistent agg-core link", func() {
		ftf().DownInterLink(FatTreeAggSwitch(4, 0, 0), 2*8+3, 0)
	})
	mustPanic("fat-tree edge-edge pair", func() { ftf().DownInterLink(0, 1, 0) })
	// Valid installs must not panic.
	ok := ftf()
	ok.CrashSwitch(FatTreeAggSwitch(4, 1, 1), 0)
	ok.DownInterLink(0, FatTreeAggSwitch(4, 0, 1), 0)
	ok.DownInterLink(FatTreeAggSwitch(4, 0, 0), 2*8+1, 0)

	dff := func() *Fabric {
		return New(Config{Nodes: 8, GPUsPerNode: 1, NICsPerNode: 1,
			Topology: TopologyConfig{Kind: TopoDragonfly,
				DragonflyHosts: 1, DragonflyRouters: 2, DragonflyGlobal: 2}})
	}
	mustPanic("dragonfly router id out of range", func() { dff().CrashSwitch(8, 0) })
	mustPanic("dragonfly self link", func() { dff().DownInterLink(3, 3, 0) })
	okdf := dff()
	okdf.CrashSwitch(7, 0)
	okdf.DownInterLink(0, 1, 0) // local
	okdf.DownInterLink(1, 6, 0) // global, group 0 <-> group 3

	flat := New(Config{Nodes: 2, GPUsPerNode: 1, NICsPerNode: 1})
	mustPanic("flat CrashSwitch", func() { flat.CrashSwitch(0, 0) })
	mustPanic("flat DownInterLink", func() { flat.DownInterLink(0, 1, 0) })
}

// TestUnreachableErrorMessage pins the typed partition error's rendering so
// chaos logs stay greppable.
func TestUnreachableErrorMessage(t *testing.T) {
	err := unreachableErr(3, 7, sim.Time(1000))
	var ue *UnreachableError
	if !errors.As(err, &ue) || ue.SrcNode != 3 || ue.DstNode != 7 {
		t.Fatalf("unreachableErr fields: %+v", err)
	}
	if !strings.Contains(err.Error(), "network partition") {
		t.Fatalf("error message %q lacks the partition marker", err.Error())
	}
}
