// Package fabric models the communication hardware of a multi-GPU cluster:
// intra-node GPU-to-GPU links (NVLink, Infinity Fabric) and the inter-node
// network reached through per-GPU NIC ports (Slingshot, InfiniBand).
//
// The fabric is deliberately library-agnostic: it moves bytes between GPU
// ports with a caller-supplied latency/bandwidth cost, and it provides the
// contention model (FCFS port occupancy via sim.Timeline). Which latency and
// effective bandwidth apply for a given communication library, API flavour,
// and message size is decided by the machine model (internal/machine).
package fabric

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Path classifies the route between two GPUs.
type Path int

const (
	// PathSelf is a device-local copy (same GPU).
	PathSelf Path = iota
	// PathIntra crosses the intra-node interconnect (NVLink / xGMI).
	PathIntra
	// PathInter crosses NICs and the system network.
	PathInter
)

func (p Path) String() string {
	switch p {
	case PathSelf:
		return "self"
	case PathIntra:
		return "intra"
	case PathInter:
		return "inter"
	default:
		return fmt.Sprintf("Path(%d)", int(p))
	}
}

// LinkCost is the resolved cost of moving one message across a path.
type LinkCost struct {
	// Latency is the end-to-end per-message latency (software stack plus
	// wire). It delays delivery but does not occupy the ports.
	Latency sim.Duration
	// BytesPerSec is the effective streaming bandwidth for this message.
	BytesPerSec float64
}

// Duration returns the port-occupancy time for a message of the given size,
// rounded half-away-from-zero to the nearest nanosecond. The plain
// float→integer conversion used previously truncated, systematically
// shaving up to 1ns off every transfer and biasing long serialized chains
// (a ring allreduce books thousands of back-to-back reservations) low by
// the accumulated truncation. Rounding matches the repo's other
// float-to-virtual-time conversions (bench.TrimmedMean).
func (c LinkCost) Duration(bytes int64) sim.Duration {
	if bytes <= 0 || c.BytesPerSec <= 0 {
		return 0
	}
	return sim.Duration(math.Round(float64(bytes) / c.BytesPerSec * float64(sim.Second)))
}

// Config describes the shape of the cluster.
type Config struct {
	Nodes       int
	GPUsPerNode int
	// NICsPerNode is the number of network ports per node. GPUs map to
	// NICs by index (GPU local id * NICs / GPUsPerNode), so when NICs are
	// scarcer than GPUs, neighbours share a port and contend. It must be
	// at least 1: New panics on an unset count instead of guessing
	// (machine.Model.FabricConfig applies the default of one port).
	NICsPerNode int
	// Topology selects the inter-node network model beyond the NICs
	// (topology.go). The zero value is the flat single-hop network.
	Topology TopologyConfig
}

// LinkFaultFn rewrites the resolved cost of one transfer at booking time.
// The fault-injection layer (internal/faults) installs one to apply per-path
// latency/bandwidth degradation over virtual-time windows; the identity
// function (or nil) leaves the fabric healthy.
type LinkFaultFn func(at sim.Time, src, dst int, path Path, cost LinkCost) LinkCost

// Fabric is the instantiated interconnect of one simulated cluster.
type Fabric struct {
	cfg Config

	// Per-GPU intra-node ports, indexed by global GPU id.
	egress  []*sim.Timeline
	ingress []*sim.Timeline
	// Per-NIC ports, indexed by node*NICsPerNode + nic.
	nicOut []*sim.Timeline
	nicIn  []*sim.Timeline

	// Trace, when non-nil, records every transfer as a span.
	Trace *trace.Log

	// LinkFault, when non-nil, rewrites each transfer's link cost before
	// booking (fault injection; see internal/faults).
	LinkFault LinkFaultFn

	// Hard-fault state: permanently dead routes and the per-path fallback
	// penalties applied to transfers redirected around them (failover.go).
	// The failover counter is atomic because sharded runs book inter-node
	// legs (SendInter) from concurrent shard engines.
	downs         []downLink
	failover      map[Path]Failover
	failoverCount atomic.Int64

	// topo is the inter-node switch fabric; nil on the flat topology, so
	// the flat hot path keeps its pair-of-ports fast route.
	topo topology
	// routeScratch is the reusable port slice of coupled inter-node
	// transfers. Safe without locking: inter-node Transfer only ever runs
	// on one engine goroutine (the serial engine, or the single shard of a
	// clamped windowed run) — sharded MPI runs book inter-node traffic
	// through SendInter/RecvInter, which never route through switches.
	routeScratch []*sim.Timeline

	// m holds pre-resolved metrics instruments (SetMetrics); nil disables.
	m *fabricMetrics
}

// New builds the fabric for a cluster configuration.
func New(cfg Config) *Fabric {
	if cfg.Nodes < 1 || cfg.GPUsPerNode < 1 {
		panic(fmt.Sprintf("fabric: invalid config: Nodes=%d, GPUsPerNode=%d (both must be >= 1)",
			cfg.Nodes, cfg.GPUsPerNode))
	}
	if cfg.NICsPerNode < 1 {
		// An unset NIC count used to silently alias GPUsPerNode; a zero or
		// negative count then built empty port slices and crashed with an
		// opaque index panic deep inside Transfer. Fail at construction
		// instead — machine.Model.FabricConfig supplies the default.
		panic(fmt.Sprintf("fabric: invalid config: NICsPerNode=%d (must be >= 1; machine.Model.FabricConfig defaults unset counts to 1)",
			cfg.NICsPerNode))
	}
	nGPU := cfg.Nodes * cfg.GPUsPerNode
	nNIC := cfg.Nodes * cfg.NICsPerNode
	f := &Fabric{cfg: cfg, failover: defaultFailovers()}
	f.topo = buildTopology(&f.cfg)
	for i := 0; i < nGPU; i++ {
		f.egress = append(f.egress, sim.NewTimeline(fmt.Sprintf("gpu%d.egress", i)))
		f.ingress = append(f.ingress, sim.NewTimeline(fmt.Sprintf("gpu%d.ingress", i)))
	}
	for i := 0; i < nNIC; i++ {
		f.nicOut = append(f.nicOut, sim.NewTimeline(fmt.Sprintf("nic%d.out", i)))
		f.nicIn = append(f.nicIn, sim.NewTimeline(fmt.Sprintf("nic%d.in", i)))
	}
	return f
}

// Config returns the cluster shape, with auto-sized topology parameters
// resolved to their chosen values.
func (f *Fabric) Config() Config { return f.cfg }

// Topology returns the resolved inter-node topology configuration.
func (f *Fabric) Topology() TopologyConfig { return f.cfg.Topology }

// NumSwitches reports the switch count of the inter-node topology (0 on the
// flat network).
func (f *Fabric) NumSwitches() int {
	if f.topo == nil {
		return 0
	}
	return f.topo.switches()
}

// InterHops reports the switch count of the minimal route between two GPUs'
// nodes: 0 on the flat topology or within a node.
func (f *Fabric) InterHops(src, dst int) int {
	if f.topo == nil {
		return 0
	}
	sn, dn := f.Node(src), f.Node(dst)
	if sn == dn {
		return 0
	}
	return f.topo.minHops(sn, dn)
}

// InterExtraLatency reports the deterministic minimal-route switch latency
// between two GPUs' nodes (zero on the flat topology or within a node). The
// MPI layer adds it to every cross-shard control envelope (rendezvous
// RTS/CTS) so conduit posts clear the enlarged lookahead window.
func (f *Fabric) InterExtraLatency(src, dst int) sim.Duration {
	if f.topo == nil {
		return 0
	}
	sn, dn := f.Node(src), f.Node(dst)
	if sn == dn {
		return 0
	}
	return f.topo.extra(sn, dn)
}

// MinInterExtra bounds InterExtraLatency from below over all node pairs:
// the topology's contribution to the conservative lookahead window of
// sharded runs (zero on the flat topology).
func (f *Fabric) MinInterExtra() sim.Duration {
	if f.topo == nil {
		return 0
	}
	return f.topo.minExtra()
}

// NumGPUs reports the total GPU count.
func (f *Fabric) NumGPUs() int { return f.cfg.Nodes * f.cfg.GPUsPerNode }

// Node reports the node housing a global GPU id.
func (f *Fabric) Node(gpu int) int { return gpu / f.cfg.GPUsPerNode }

// Local reports the node-local index of a global GPU id.
func (f *Fabric) Local(gpu int) int { return gpu % f.cfg.GPUsPerNode }

// GlobalID composes a global GPU id from node and local indices.
func (f *Fabric) GlobalID(node, local int) int { return node*f.cfg.GPUsPerNode + local }

// nic returns the NIC port index serving a GPU.
func (f *Fabric) nic(gpu int) int {
	f.checkGPU(gpu)
	node, local := f.Node(gpu), f.Local(gpu)
	return node*f.cfg.NICsPerNode + local*f.cfg.NICsPerNode/f.cfg.GPUsPerNode
}

// checkGPU validates a global GPU id. Out-of-range ids used to slip through
// silently: a negative or too-large id misclassified the path (PathBetween)
// or crashed with an index panic far from the offending call site.
func (f *Fabric) checkGPU(id int) {
	if id < 0 || id >= f.NumGPUs() {
		panic(fmt.Sprintf("fabric: GPU id %d outside [0, %d) (%d nodes x %d GPUs)",
			id, f.NumGPUs(), f.cfg.Nodes, f.cfg.GPUsPerNode))
	}
}

// PathBetween classifies the route between two global GPU ids. Both ids
// must be in range; out-of-range ids panic with a descriptive message.
func (f *Fabric) PathBetween(src, dst int) Path {
	f.checkGPU(src)
	f.checkGPU(dst)
	if src == dst {
		return PathSelf
	}
	if f.Node(src) == f.Node(dst) {
		return PathIntra
	}
	return PathInter
}

// routePorts returns the two timelines a transfer on the given route
// occupies. Every route holds exactly one egress-side and one ingress-side
// port, so the result is a pair, not a slice — the transfer hot path calls
// this per message and must not allocate.
func (f *Fabric) routePorts(src, dst int, path Path) (out, in *sim.Timeline) {
	switch path {
	case PathSelf:
		// Device-local copy: occupy the GPU's own ports (one copy engine
		// in, one out) so concurrent local copies serialize with each other
		// and with incoming intra-node traffic, as on a real copy engine.
		return f.egress[src], f.ingress[src]
	case PathIntra:
		return f.egress[src], f.ingress[dst]
	default:
		return f.nicOut[f.nic(src)], f.nicIn[f.nic(dst)]
	}
}

// Transfer books a message of the given size from src to dst starting no
// earlier than at, and returns the virtual time at which the last byte
// arrives at dst. The caller is responsible for scheduling any completion
// event (typically sim.Engine.After or a Gate fired at the returned time).
//
// Port occupancy: device-local copies hold the GPU's own egress and ingress
// ports; intra-node messages hold the source's egress port and the
// destination's ingress port; inter-node messages hold both NIC ports. The
// latency component delays arrival but does not occupy ports, which models
// pipelining of back-to-back messages.
//
// If a port on the route carries stall windows (fault injection), the
// transfer's start is deterministically pushed past them; use TryTransfer to
// observe the stall instead and retry.
func (f *Fabric) Transfer(at sim.Time, src, dst int, bytes int64, cost LinkCost) sim.Time {
	path := f.PathBetween(src, dst)
	if f.LinkFault != nil {
		healthy := cost
		cost = f.LinkFault(at, src, dst, path, cost)
		if f.m != nil && cost != healthy {
			f.m.faulted.Inc()
		}
	}
	track := path.String()
	if len(f.downs) > 0 && f.LinkDownAt(at, src, dst, path) {
		// Dead route: redirect onto the path's fallback route instead of
		// blocking. The same ports are occupied (the staged copy still moves
		// through them) but the transfer pays the failover cost.
		cost = f.failover[path].apply(cost)
		f.noteFailover()
		track = track + "+failover"
	}
	portOut, portIn := f.routePorts(src, dst, path)
	var start, end sim.Time
	var extra sim.Duration
	if path == PathInter && f.topo != nil {
		// Switched topology: book every output port of the adaptive route
		// alongside the NIC pair (cut-through: one shared occupancy window)
		// and delay arrival by the per-switch traversal latency. Dead
		// switches/links steer the route onto live candidates (counted as a
		// failover); a pair with no live route left aborts the calling proc
		// with the typed *UnreachableError — a real partition, catchable via
		// sim.Protect.
		ports := append(f.routeScratch[:0], portOut)
		ports, routeExtra, rerouted, rerr := f.topo.route(ports, at, f.Node(src), f.Node(dst))
		if rerr != nil {
			f.routeScratch = ports[:0]
			sim.Abort(rerr)
		}
		extra = routeExtra
		if rerouted {
			f.noteFailover()
			track = track + "+reroute"
		}
		ports = append(ports, portIn)
		f.routeScratch = ports[:0] // retain grown capacity across transfers
		start, end = sim.ReserveMulti(at, cost.Duration(bytes), ports...)
	} else {
		start, end = sim.ReserveMulti(at, cost.Duration(bytes), portOut, portIn)
	}
	arrive := end.Add(cost.Latency + extra)
	if f.m != nil {
		f.m.xfers[path].Inc()
		f.m.bytes[path].Add(bytes)
		f.m.wait[path].Add(int64(start.Sub(at)))
	}
	if f.Trace != nil {
		// Label formatting is guarded: with tracing off (every benchmark and
		// sweep cell) the hot path must not pay the Sprintf.
		f.Trace.Add(trace.Span{
			Kind:  trace.KindTransfer,
			Label: fmt.Sprintf("gpu%d->gpu%d", src, dst),
			Track: track,
			Rank:  src, Src: src, Dst: dst,
			Start: start, End: arrive, Bytes: bytes,
		})
	}
	return arrive
}

// StallError reports a transfer rejected because a port on its route is
// inside a stall window.
type StallError struct {
	Port  string   // label of the stalled port
	Until sim.Time // when admission reopens
}

func (e *StallError) Error() string {
	return fmt.Sprintf("fabric: port %s stalled until %v", e.Port, e.Until)
}

// TryTransfer is Transfer, except that when a port on the route is inside a
// stall window at time at it books nothing and returns the stall, so the
// caller can retry (with backoff) once the port readmits. A transfer that is
// admitted may still queue behind earlier reservations as usual.
func (f *Fabric) TryTransfer(at sim.Time, src, dst int, bytes int64, cost LinkCost) (sim.Time, *StallError) {
	path := f.PathBetween(src, dst)
	portOut, portIn := f.routePorts(src, dst, path)
	for _, tl := range [...]*sim.Timeline{portOut, portIn} {
		if until, stalled := tl.StalledAt(at); stalled {
			if f.m != nil {
				f.m.stalls.Inc()
			}
			return 0, &StallError{Port: tl.Label(), Until: until}
		}
	}
	return f.Transfer(at, src, dst, bytes, cost), nil
}

// SendInter books only the source side of an inter-node message: the NIC
// egress port serving src. It returns the departure time of the last byte
// and the (possibly fault-rewritten) cost actually booked. The destination
// side is booked separately by RecvInter, on the destination node's shard,
// when the conduit delivers the message at depart + cost.Latency — this
// split is what lets sharded runs (sim.Group) book each port from exactly
// one shard. Relative to the coupled Transfer, the split model books the
// two ports independently (pipelined store-and-forward) instead of finding
// a common occupancy window, so contended inter-node timings differ between
// the serial and windowed protocols; they are identical across windowed
// shard counts, which is what the 1-vs-N byte-compares pin.
//
// Hard faults compose with the split model the same way they do with
// Transfer, and every adjustment is a pure function of (at, src, dst) given
// the run's static fault plan — the shard-determinism invariant: a dead
// route (LinkDownAt) pays the path's failover penalty, a dead switch/link
// folds the live-route detour latency into the booked cost, and a real
// partition aborts the calling proc with the typed *UnreachableError.
func (f *Fabric) SendInter(at sim.Time, src, dst int, bytes int64, cost LinkCost) (depart sim.Time, booked LinkCost) {
	if f.LinkFault != nil {
		healthy := cost
		cost = f.LinkFault(at, src, dst, PathInter, cost)
		if f.m != nil && cost != healthy {
			f.m.faulted.Inc()
		}
	}
	if len(f.downs) > 0 && f.LinkDownAt(at, src, dst, PathInter) {
		cost = f.failover[PathInter].apply(cost)
		f.noteFailover()
	}
	if f.topo != nil {
		// Split path: the deterministic minimal live-route switch latency
		// folds into the booked cost, so the conduit delivery time (depart +
		// booked.Latency) carries the topology and stays >= the enlarged
		// lookahead window (MinInterAlpha + MinInterExtra; a live route
		// always holds at least one switch, so the detour never undercuts
		// MinInterExtra).
		extra, rerouted, err := f.topo.liveExtra(f.Node(src), f.Node(dst), at)
		if err != nil {
			sim.Abort(err)
		}
		if rerouted {
			f.noteFailover()
		}
		cost.Latency += extra
	}
	start, end := f.nicOut[f.nic(src)].Reserve(at, cost.Duration(bytes))
	if f.m != nil {
		f.m.xfers[PathInter].Inc()
		f.m.bytes[PathInter].Add(bytes)
		f.m.wait[PathInter].Add(int64(start.Sub(at)))
	}
	return end, cost
}

// TrySendInter is SendInter, except that when the source NIC port is inside
// a stall window at time at it books nothing and returns the stall so the
// caller can retry with backoff (the rendezvous payload path). Destination-
// side stalls are handled by RecvInter's booking, which pushes past them.
func (f *Fabric) TrySendInter(at sim.Time, src, dst int, bytes int64, cost LinkCost) (depart sim.Time, booked LinkCost, stall *StallError) {
	port := f.nicOut[f.nic(src)]
	if until, stalled := port.StalledAt(at); stalled {
		if f.m != nil {
			f.m.stalls.Inc()
		}
		return 0, cost, &StallError{Port: port.Label(), Until: until}
	}
	depart, booked = f.SendInter(at, src, dst, bytes, cost)
	return depart, booked, nil
}

// RecvInter books the destination side of an inter-node message whose last
// byte reaches the destination NIC at deliver (= SendInter's depart plus
// the booked latency), and returns when it clears the ingress port. The
// booking is backdated by the occupancy duration so an uncontended receive
// arrives at exactly deliver; a contended or stalled port pushes arrival
// later. cost must be the booked cost returned by SendInter. The transfer's
// trace span is recorded here, covering ingress occupancy through arrival.
func (f *Fabric) RecvInter(deliver sim.Time, src, dst int, bytes int64, cost LinkCost) sim.Time {
	dur := cost.Duration(bytes)
	start, arrive := f.nicIn[f.nic(dst)].Reserve(deliver.Add(-dur), dur)
	if f.Trace != nil {
		f.Trace.Add(trace.Span{
			Kind:  trace.KindTransfer,
			Label: fmt.Sprintf("gpu%d->gpu%d", src, dst),
			Track: PathInter.String(),
			Rank:  src, Src: src, Dst: dst,
			Start: start, End: arrive, Bytes: bytes,
		})
	}
	return arrive
}

// StallNIC adds an admission blackout on one NIC port of a node, in both
// directions, modeling a flapping network port. Transfers routed through the
// port during [start, end) are pushed past the window (Transfer) or rejected
// for retry (TryTransfer).
func (f *Fabric) StallNIC(node, nic int, start, end sim.Time) {
	if node < 0 || node >= f.cfg.Nodes || nic < 0 || nic >= f.cfg.NICsPerNode {
		panic(fmt.Sprintf("fabric: StallNIC(%d, %d) outside %d nodes x %d NICs",
			node, nic, f.cfg.Nodes, f.cfg.NICsPerNode))
	}
	idx := node*f.cfg.NICsPerNode + nic
	f.nicOut[idx].AddStall(start, end)
	f.nicIn[idx].AddStall(start, end)
}

// PortStats summarises cumulative port occupancy, for utilization reporting
// and contention-sanity tests.
type PortStats struct {
	GPUEgressBusy  []sim.Duration
	GPUIngressBusy []sim.Duration
	NICOutBusy     []sim.Duration
	NICInBusy      []sim.Duration
	// SwitchBusy holds the busy time of every switch output port of the
	// inter-node topology, in the topology's fixed port order (empty on
	// the flat network).
	SwitchBusy []sim.Duration
}

// Stats snapshots cumulative busy time on every port.
func (f *Fabric) Stats() PortStats {
	s := PortStats{}
	for _, tl := range f.egress {
		s.GPUEgressBusy = append(s.GPUEgressBusy, tl.BusySum())
	}
	for _, tl := range f.ingress {
		s.GPUIngressBusy = append(s.GPUIngressBusy, tl.BusySum())
	}
	for _, tl := range f.nicOut {
		s.NICOutBusy = append(s.NICOutBusy, tl.BusySum())
	}
	for _, tl := range f.nicIn {
		s.NICInBusy = append(s.NICInBusy, tl.BusySum())
	}
	if f.topo != nil {
		f.topo.ports(func(tl *sim.Timeline) {
			s.SwitchBusy = append(s.SwitchBusy, tl.BusySum())
		})
	}
	return s
}
