package fabric

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestParseTopology(t *testing.T) {
	cases := []struct {
		in   string
		want TopologyConfig
		err  bool
	}{
		{in: "flat", want: TopologyConfig{}},
		{in: "", want: TopologyConfig{}},
		{in: "fattree", want: TopologyConfig{Kind: TopoFatTree}},
		{in: "fat-tree:8", want: TopologyConfig{Kind: TopoFatTree, FatTreeArity: 8}},
		{in: "dragonfly", want: TopologyConfig{Kind: TopoDragonfly}},
		{in: "dragonfly:4, 8, 4", want: TopologyConfig{Kind: TopoDragonfly, DragonflyHosts: 4, DragonflyRouters: 8, DragonflyGlobal: 4}},
		{in: "flat:3", err: true},
		{in: "fattree:x", err: true},
		{in: "dragonfly:4,8", err: true},
		{in: "torus", err: true},
	}
	for _, tc := range cases {
		got, err := ParseTopology(tc.in)
		if tc.err {
			if err == nil {
				t.Errorf("ParseTopology(%q): no error", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseTopology(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseTopology(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestFatTreeAutoSize(t *testing.T) {
	cases := []struct{ nodes, wantK int }{
		{1, 2}, {2, 2}, {3, 4}, {16, 4}, {17, 6}, {54, 6}, {55, 8}, {1024, 16},
	}
	for _, tc := range cases {
		f := New(Config{Nodes: tc.nodes, GPUsPerNode: 1, NICsPerNode: 1,
			Topology: TopologyConfig{Kind: TopoFatTree}})
		if k := f.Topology().FatTreeArity; k != tc.wantK {
			t.Errorf("nodes=%d: auto arity %d, want %d", tc.nodes, k, tc.wantK)
		}
	}
	// Explicit arity too small for the cluster must fail at construction.
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("fat-tree k=4 with 17 nodes did not panic")
			}
		}()
		New(Config{Nodes: 17, GPUsPerNode: 1, NICsPerNode: 1,
			Topology: TopologyConfig{Kind: TopoFatTree, FatTreeArity: 4}})
	}()
}

// TestFatTreeHops pins the three hop classes of a k=4 fat-tree (2 nodes per
// edge switch, 4 per pod): 1 hop under a shared edge switch, 3 within a pod,
// 5 across pods — and that extra() is exactly hops*HopLatency, the split-path
// latency the sharded conduit model uses.
func TestFatTreeHops(t *testing.T) {
	f := New(Config{Nodes: 16, GPUsPerNode: 1, NICsPerNode: 1,
		Topology: TopologyConfig{Kind: TopoFatTree, FatTreeArity: 4, HopLatency: 100}})
	cases := []struct{ src, dst, want int }{
		{0, 1, 1},  // same edge switch
		{0, 2, 3},  // same pod, different edge
		{0, 4, 5},  // different pod
		{5, 4, 1},
		{15, 0, 5},
	}
	for _, tc := range cases {
		if got := f.InterHops(tc.src, tc.dst); got != tc.want {
			t.Errorf("InterHops(%d,%d) = %d, want %d", tc.src, tc.dst, got, tc.want)
		}
		want := sim.Duration(tc.want) * 100
		if got := f.InterExtraLatency(tc.src, tc.dst); got != want {
			t.Errorf("InterExtraLatency(%d,%d) = %d, want %d", tc.src, tc.dst, got, want)
		}
	}
	if f.InterHops(3, 3) != 0 || f.InterExtraLatency(3, 3) != 0 {
		t.Errorf("same-node InterHops/InterExtraLatency nonzero")
	}
	if f.MinInterExtra() != 100 {
		t.Errorf("MinInterExtra = %d, want 100", f.MinInterExtra())
	}
	if f.NumSwitches() != 8+8+4 {
		t.Errorf("NumSwitches = %d, want 20", f.NumSwitches())
	}
}

// ftLevel classifies a fat-tree port timeline by the level transition it
// represents: +1 edge->agg, +2 agg->core, -2 core->agg, -1 agg->edge.
func ftLevel(tl *sim.Timeline) int {
	l := tl.Label()
	switch {
	case strings.HasPrefix(l, "ft.edge"):
		return +1
	case strings.Contains(l, "agg") && strings.Contains(l, ".up"):
		return +2
	case strings.HasPrefix(l, "ft.core"):
		return -2
	case strings.Contains(l, "agg") && strings.Contains(l, ".down"):
		return -1
	}
	return 0
}

// TestFatTreeUpDownRouting asserts the deadlock-freedom invariant of up*/
// down* routing on every node pair of a k=4 tree: each adaptive route climbs
// monotonically (edge->agg[->core]) and then only descends — no
// down-then-up transition, so the channel dependency graph stays acyclic.
func TestFatTreeUpDownRouting(t *testing.T) {
	ft := newFatTree(16, 4, 100)
	for src := 0; src < 16; src++ {
		for dst := 0; dst < 16; dst++ {
			if src == dst {
				continue
			}
			ports, extra, _, _ := ft.route(nil, 0, src, dst)
			if len(ports) != ft.minHops(src, dst)-1 {
				t.Fatalf("route(%d,%d): %d switch ports, want minHops-1 = %d",
					src, dst, len(ports), ft.minHops(src, dst)-1)
			}
			if extra != ft.extra(src, dst) {
				t.Fatalf("route(%d,%d): latency %d != minimal extra %d (fat-tree routes are always minimal)",
					src, dst, extra, ft.extra(src, dst))
			}
			descending := false
			prev := 0
			for _, tl := range ports {
				lvl := ftLevel(tl)
				if lvl == 0 {
					t.Fatalf("route(%d,%d): unclassifiable port %q", src, dst, tl.Label())
				}
				up := lvl > 0
				if up && descending {
					t.Fatalf("route(%d,%d): up transition %q after descending — up*/down* violated",
						src, dst, tl.Label())
				}
				if up && lvl <= prev {
					t.Fatalf("route(%d,%d): non-monotonic climb at %q", src, dst, tl.Label())
				}
				if !up {
					descending = true
				}
				prev = lvl
			}
		}
	}
}

// TestFatTreeAdaptiveSpraying pins the least-loaded up-link policy: two
// concurrent inter-pod flows from the same edge switch take different
// aggregation switches once the first up-link is busy.
func TestFatTreeAdaptiveSpraying(t *testing.T) {
	ft := newFatTree(16, 4, 100)
	ports1, _, _, _ := ft.route(nil, 0, 0, 8)
	for _, tl := range ports1 {
		tl.Reserve(0, 1000)
	}
	ports2, _, _, _ := ft.route(nil, 0, 0, 8)
	if ports1[0] == ports2[0] {
		t.Fatalf("second flow reused busy up-link %q instead of spraying", ports1[0].Label())
	}
}

func TestDragonflyAutoSize(t *testing.T) {
	// Balanced auto-size: smallest p with (2p*p+1)*2p*p >= nodes.
	cases := []struct{ nodes, wantP int }{
		{1, 1}, {6, 1}, {7, 2}, {72, 2}, {73, 3}, {1024, 4},
	}
	for _, tc := range cases {
		f := New(Config{Nodes: tc.nodes, GPUsPerNode: 1, NICsPerNode: 1,
			Topology: TopologyConfig{Kind: TopoDragonfly}})
		tc2 := f.Topology()
		if tc2.DragonflyHosts != tc.wantP || tc2.DragonflyRouters != 2*tc.wantP || tc2.DragonflyGlobal != tc.wantP {
			t.Errorf("nodes=%d: auto (p,a,h) = (%d,%d,%d), want (%d,%d,%d)", tc.nodes,
				tc2.DragonflyHosts, tc2.DragonflyRouters, tc2.DragonflyGlobal,
				tc.wantP, 2*tc.wantP, tc.wantP)
		}
	}
	// An explicit configuration too small for the cluster must panic.
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("dragonfly p=1,a=1,h=1 with 3 nodes did not panic")
			}
		}()
		New(Config{Nodes: 3, GPUsPerNode: 1, NICsPerNode: 1,
			Topology: TopologyConfig{Kind: TopoDragonfly, DragonflyHosts: 1, DragonflyRouters: 1, DragonflyGlobal: 1}})
	}()
}

// dfGlobals counts the global-channel ports on a route.
func dfGlobals(ports []*sim.Timeline) int {
	n := 0
	for _, tl := range ports {
		if strings.Contains(tl.Label(), ".g") {
			n++
		}
	}
	return n
}

// TestDragonflyMinimalRouting checks every node pair of a small dragonfly on
// an idle network: minimal routes only (no Valiant under zero load), at most
// one global channel, hop count matching minHops, and minHops within the
// theoretical [1, 4] band (router - gateway - global - entry - router).
func TestDragonflyMinimalRouting(t *testing.T) {
	// p=2, a=4, h=2: 9 groups max; 40 nodes -> 5 groups.
	df := newDragonfly(40, 2, 4, 2, 100)
	for src := 0; src < 40; src++ {
		for dst := 0; dst < 40; dst++ {
			if src == dst {
				continue
			}
			mh := df.minHops(src, dst)
			if mh < 1 || mh > 4 {
				t.Fatalf("minHops(%d,%d) = %d outside [1,4]", src, dst, mh)
			}
			sameGroup := df.group(df.router(src)) == df.group(df.router(dst))
			if sameGroup && mh > 2 {
				t.Fatalf("minHops(%d,%d) = %d within a group, want <= 2", src, dst, mh)
			}
			ports, extra, _, _ := df.route(nil, 0, src, dst)
			if extra != df.extra(src, dst) {
				t.Fatalf("route(%d,%d) on idle network took %d, want minimal %d",
					src, dst, extra, df.extra(src, dst))
			}
			g := dfGlobals(ports)
			if sameGroup && g != 0 {
				t.Fatalf("route(%d,%d) within a group used %d global channels", src, dst, g)
			}
			if !sameGroup && g != 1 {
				t.Fatalf("minimal route(%d,%d) used %d global channels, want 1", src, dst, g)
			}
		}
	}
}

// TestDragonflyValiantEscape congests the minimal global channel and checks
// the UGAL escape: the route detours through an intermediate group (two
// global channels), the intermediate group is neither the source's nor the
// destination's, and the choice is a pure function of (src, dst, time) —
// the shard-invariance requirement.
func TestDragonflyValiantEscape(t *testing.T) {
	df := newDragonfly(40, 2, 4, 2, 100)
	src, dst := 0, 39 // group 0 -> group 4
	gwMin, portMin := df.gateway(0, 4)
	df.globalOut[gwMin][portMin].Reserve(0, sim.Duration(1)*sim.Millisecond)

	ports, extra, _, _ := df.route(nil, 0, src, dst)
	if g := dfGlobals(ports); g != 2 {
		t.Fatalf("congested route used %d global channels, want 2 (Valiant)", g)
	}
	if extra <= df.extra(src, dst) {
		t.Fatalf("Valiant route latency %d not above minimal %d", extra, df.extra(src, dst))
	}
	ports2, _, _, _ := df.route(nil, 0, src, dst)
	if len(ports) != len(ports2) {
		t.Fatalf("Valiant route not deterministic: %d vs %d ports", len(ports), len(ports2))
	}
	for i := range ports {
		if ports[i] != ports2[i] {
			t.Fatalf("Valiant route not deterministic at hop %d", i)
		}
	}

	// The intermediate group avoids source and destination groups for every
	// (src, dst, at) combination.
	for s := 0; s < 40; s++ {
		for d := 0; d < 40; d++ {
			gs, gd := df.group(df.router(s)), df.group(df.router(d))
			if gs == gd {
				continue
			}
			for _, at := range []sim.Time{0, 1, 12345, 987654321} {
				via := df.valiantGroup(s, d, at, gs, gd)
				if via == gs || via == gd || via < 0 || via >= df.groups {
					t.Fatalf("valiantGroup(%d,%d,at=%d) = %d with gs=%d gd=%d", s, d, at, via, gs, gd)
				}
			}
		}
	}
}

// TestTopologyStatsSwitches checks that switch port busy time shows up in
// PortStats.SwitchBusy after coupled transfers route through the fabric.
func TestTopologyStatsSwitches(t *testing.T) {
	f := New(Config{Nodes: 16, GPUsPerNode: 1, NICsPerNode: 1,
		Topology: TopologyConfig{Kind: TopoFatTree, FatTreeArity: 4}})
	cost := LinkCost{Latency: 100, BytesPerSec: 1e9}
	f.Transfer(0, 0, 8, 1<<20, cost) // inter-pod: books 4 switch ports
	st := f.Stats()
	if len(st.SwitchBusy) == 0 {
		t.Fatalf("no switch busy entries")
	}
	busy := 0
	for _, d := range st.SwitchBusy {
		if d > 0 {
			busy++
		}
	}
	if busy != 4 {
		t.Fatalf("%d switch ports busy after one inter-pod transfer, want 4", busy)
	}
}
