package fabric

// Topology hard faults: crashed switches and dead inter-switch links.
//
// Dead elements are installed before the run starts (faults.ApplyHardFaults)
// and the tables are immutable afterwards, so the liveness checks on the
// routing paths are pure reads — safe from concurrent shard engines and, by
// construction, a pure function of (srcNode, dstNode, at), which keeps
// sharded runs bit-identical at any shard count.
//
// Switch ids (CrashSwitch, DownInterLink):
//
//   - fat-tree: edges [0, E), aggregations [E, 2E), cores [2E, 2E+(k/2)^2),
//     with E = k*(k/2) edge switches. Pod P owns edges [P*k/2, (P+1)*k/2)
//     and the aggregations at the same positions.
//   - dragonfly: routers [0, groups*a). A same-group pair names their local
//     link; a cross-group pair names the single palmtree global channel
//     between the two groups (whichever routers are given).
//
// Reachability semantics: a dead element only removes route candidates;
// adaptive routing steers the surviving traffic around it and counts the
// detour as a failover (Fabric.FailoverTransfers). Only when a node pair has
// no live route left — a dead edge switch or endpoint router, or a fault set
// exhausting the path diversity — does the fabric raise *UnreachableError,
// the typed signal of a real partition.

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// UnreachableError reports a transfer between two nodes with no live route
// left in the switch fabric — a real partition, as opposed to a dead route
// or switch that adaptive routing can steer around.
type UnreachableError struct {
	SrcNode, DstNode int
	At               sim.Time
}

func (e *UnreachableError) Error() string {
	return fmt.Sprintf("fabric: no live route from node %d to node %d at %v (network partition)",
		e.SrcNode, e.DstNode, e.At)
}

func unreachableErr(srcNode, dstNode int, at sim.Time) error {
	return &UnreachableError{SrcNode: srcNode, DstNode: dstNode, At: at}
}

// aliveForever marks a never-crashed element in the dead-time tables.
const aliveForever = sim.Time(math.MaxInt64)

// markDead records element i of an n-element class as dead from at onward,
// allocating the table on first use; the earliest crash wins.
func markDead(d *[]sim.Time, n, i int, at sim.Time) {
	if *d == nil {
		*d = make([]sim.Time, n)
		for j := range *d {
			(*d)[j] = aliveForever
		}
	}
	if at < (*d)[i] {
		(*d)[i] = at
	}
}

func deadAt(d []sim.Time, i int, at sim.Time) bool {
	return d != nil && at >= d[i]
}

// markLinkDead records the unordered (a, b) link as dead from at onward.
func markLinkDead(m *map[[2]int]sim.Time, a, b int, at sim.Time) {
	if a > b {
		a, b = b, a
	}
	if *m == nil {
		*m = make(map[[2]int]sim.Time)
	}
	key := [2]int{a, b}
	if t, ok := (*m)[key]; !ok || at < t {
		(*m)[key] = at
	}
}

func linkDeadAt(m map[[2]int]sim.Time, a, b int, at sim.Time) bool {
	if m == nil {
		return false
	}
	if a > b {
		a, b = b, a
	}
	t, ok := m[[2]int{a, b}]
	return ok && at >= t
}

// CrashSwitch kills one switch of the inter-node topology from virtual time
// at onward (see the switch-id numbering above). Panics on the flat topology
// or an out-of-range id. Must be called before the run starts.
func (f *Fabric) CrashSwitch(sw int, at sim.Time) {
	if f.topo == nil {
		panic("fabric: CrashSwitch on the flat topology (it has no switches)")
	}
	f.topo.crashSwitch(sw, at)
}

// DownInterLink kills the link between two adjacent switches from virtual
// time at onward (see the switch-id numbering above). Panics on the flat
// topology or when the pair is not adjacent. Must be called before the run
// starts.
func (f *Fabric) DownInterLink(a, b int, at sim.Time) {
	if f.topo == nil {
		panic("fabric: DownInterLink on the flat topology (it has no switches)")
	}
	f.topo.downInterLink(a, b, at)
}

// InterExtraLatencyAt is InterExtraLatency over live elements only: the
// deterministic minimal-route switch latency avoiding dead switches and
// links at time at, whether the route detours around a dead element, and a
// non-nil *UnreachableError when the pair is partitioned. Identical to
// (InterExtraLatency, false, nil) on a healthy fabric.
func (f *Fabric) InterExtraLatencyAt(src, dst int, at sim.Time) (sim.Duration, bool, error) {
	if f.topo == nil {
		return 0, false, nil
	}
	sn, dn := f.Node(src), f.Node(dst)
	if sn == dn {
		return 0, false, nil
	}
	return f.topo.liveExtra(sn, dn, at)
}

// ResolveTopology resolves the auto-sized parameters of a topology config
// for a cluster of the given node count without building any port state: the
// same arithmetic New applies, exposed so fault generators (internal/faults)
// can target concrete switch ids before the fabric exists.
func ResolveTopology(tc TopologyConfig, nodes int) TopologyConfig {
	switch tc.Kind {
	case TopoFatTree:
		if tc.HopLatency <= 0 {
			tc.HopLatency = DefaultHopLatency
		}
		tc.FatTreeArity = fatTreeArity(nodes, tc.FatTreeArity)
	case TopoDragonfly:
		if tc.HopLatency <= 0 {
			tc.HopLatency = DefaultHopLatency
		}
		tc.DragonflyHosts, tc.DragonflyRouters, tc.DragonflyGlobal, _ =
			dragonflySize(nodes, tc.DragonflyHosts, tc.DragonflyRouters, tc.DragonflyGlobal)
	}
	return tc
}

// FatTreeAggSwitch returns the global switch id of the aggregation switch at
// the given position of a pod in a k-ary fat-tree (see the numbering above).
func FatTreeAggSwitch(k, pod, pos int) int {
	half := k / 2
	return k*half + pod*half + pos
}

// --- fat-tree fault state ---

// Global switch ids: edges [0, E), aggregations [E, 2E), cores
// [2E, 2E+half^2), with E = k*half edge switches.
func (t *fatTree) numEdges() int    { return t.k * t.half }
func (t *fatTree) edgeID(e int) int { return e }
func (t *fatTree) aggID(g int) int  { return t.numEdges() + g }
func (t *fatTree) coreID(c int) int { return 2*t.numEdges() + c }

func (t *fatTree) edgeLive(e int, at sim.Time) bool { return !deadAt(t.edgeDead, e, at) }
func (t *fatTree) aggLive(g int, at sim.Time) bool  { return !deadAt(t.aggDead, g, at) }
func (t *fatTree) coreLive(c int, at sim.Time) bool { return !deadAt(t.coreDead, c, at) }

func (t *fatTree) faulty() bool {
	return t.edgeDead != nil || t.aggDead != nil || t.coreDead != nil || t.deadLink != nil
}

func (t *fatTree) crashSwitch(sw int, at sim.Time) {
	e := t.numEdges()
	switch {
	case sw >= 0 && sw < e:
		markDead(&t.edgeDead, e, sw, at)
	case sw < 2*e:
		markDead(&t.aggDead, e, sw-e, at)
	case sw < 2*e+t.half*t.half:
		markDead(&t.coreDead, t.half*t.half, sw-2*e, at)
	default:
		panic(fmt.Sprintf("fabric: fat-tree switch id %d outside [0, %d) (%d edges, %d aggs, %d cores)",
			sw, 2*e+t.half*t.half, e, e, t.half*t.half))
	}
}

func (t *fatTree) downInterLink(a, b int, at sim.Time) {
	e := t.numEdges()
	if a > b {
		a, b = b, a
	}
	switch {
	case a >= 0 && a < e && b >= e && b < 2*e:
		// Edge <-> aggregation: the pair must share a pod.
		if a/t.half != (b-e)/t.half {
			panic(fmt.Sprintf("fabric: fat-tree link %d-%d joins switches of different pods", a, b))
		}
	case a >= e && a < 2*e && b >= 2*e && b < 2*e+t.half*t.half:
		// Aggregation <-> core: agg position p reaches cores [p*half, (p+1)*half).
		if pos := (a - e) % t.half; pos != (b-2*e)/t.half {
			panic(fmt.Sprintf("fabric: fat-tree link %d-%d does not exist (agg position %d reaches cores [%d, %d))",
				a, b, pos, 2*e+pos*t.half, 2*e+(pos+1)*t.half))
		}
	default:
		panic(fmt.Sprintf("fabric: fat-tree pair (%d, %d) is not an edge-agg or agg-core adjacency", a, b))
	}
	markLinkDead(&t.deadLink, a, b, at)
}

// podAggOK reports whether aggregation position a of pod sp can carry a
// same-pod route between edges se and de at time at.
func (t *fatTree) podAggOK(se, de, sp, a int, at sim.Time) bool {
	g := sp*t.half + a
	return t.aggLive(g, at) &&
		!linkDeadAt(t.deadLink, t.edgeID(se), t.aggID(g), at) &&
		!linkDeadAt(t.deadLink, t.aggID(g), t.edgeID(de), at)
}

// upOK reports whether the aggregation pair at position a of pods sp and dp
// is live for a cross-pod route, including both edge links.
func (t *fatTree) upOK(se, de, sp, dp, a int, at sim.Time) bool {
	sa, da := sp*t.half+a, dp*t.half+a
	return t.aggLive(sa, at) && t.aggLive(da, at) &&
		!linkDeadAt(t.deadLink, t.edgeID(se), t.aggID(sa), at) &&
		!linkDeadAt(t.deadLink, t.aggID(da), t.edgeID(de), at)
}

// coreOK reports whether core j of aggregation position a is live with both
// of its agg links, for a cross-pod route over aggregations sa and da.
func (t *fatTree) coreOK(sa, da, a, j int, at sim.Time) bool {
	core := a*t.half + j
	return t.coreLive(core, at) &&
		!linkDeadAt(t.deadLink, t.aggID(sa), t.coreID(core), at) &&
		!linkDeadAt(t.deadLink, t.coreID(core), t.aggID(da), at)
}

// --- dragonfly fault state ---

func (t *dragonfly) routerLive(r int, at sim.Time) bool { return !deadAt(t.routerDead, r, at) }

func (t *dragonfly) localDead(x, y int, at sim.Time) bool {
	return linkDeadAt(t.deadLocal, x, y, at)
}

func (t *dragonfly) globalDead(g1, g2 int, at sim.Time) bool {
	return linkDeadAt(t.deadGlobal, g1, g2, at)
}

func (t *dragonfly) faulty() bool {
	return t.routerDead != nil || t.deadLocal != nil || t.deadGlobal != nil
}

func (t *dragonfly) crashSwitch(sw int, at sim.Time) {
	if sw < 0 || sw >= t.groups*t.a {
		panic(fmt.Sprintf("fabric: dragonfly router id %d outside [0, %d)", sw, t.groups*t.a))
	}
	markDead(&t.routerDead, t.groups*t.a, sw, at)
}

func (t *dragonfly) downInterLink(a, b int, at sim.Time) {
	n := t.groups * t.a
	if a < 0 || a >= n || b < 0 || b >= n || a == b {
		panic(fmt.Sprintf("fabric: dragonfly router pair (%d, %d) outside [0, %d) or equal", a, b, n))
	}
	if t.group(a) == t.group(b) {
		markLinkDead(&t.deadLocal, a, b, at)
		return
	}
	// Every distinct group pair owns exactly one palmtree global channel
	// (groups <= a*h+1), so any cross-group router pair names it; the
	// channel dies, whichever routers were given.
	markLinkDead(&t.deadGlobal, t.group(a), t.group(b), at)
}

// legOK reports whether the global leg from router cur toward group tg is
// fully live at time at: the gateway router, cur's local link to it (when
// distinct), the global channel, and the entry router of tg.
func (t *dragonfly) legOK(cur, tg int, at sim.Time) bool {
	g := t.group(cur)
	gw, _ := t.gateway(g, tg)
	if !t.routerLive(gw, at) || t.globalDead(g, tg, at) {
		return false
	}
	if gw != cur && t.localDead(cur, gw, at) {
		return false
	}
	entry, _ := t.gateway(tg, g)
	return t.routerLive(entry, at)
}

// minimalOK reports whether the minimal route rs -> gd -> rd is fully live.
func (t *dragonfly) minimalOK(rs, rd, gd int, at sim.Time) bool {
	if !t.legOK(rs, gd, at) {
		return false
	}
	entry, _ := t.gateway(gd, t.group(rs))
	return entry == rd || !t.localDead(entry, rd, at)
}

// valiantOK reports whether the Valiant route rs -> via -> gd -> rd is fully
// live.
func (t *dragonfly) valiantOK(rs, rd, via, gd int, at sim.Time) bool {
	if !t.legOK(rs, via, at) {
		return false
	}
	entry1, _ := t.gateway(via, t.group(rs))
	if !t.legOK(entry1, gd, at) {
		return false
	}
	entry2, _ := t.gateway(gd, via)
	return entry2 == rd || !t.localDead(entry2, rd, at)
}

// feasibleVia scans for a live Valiant intermediate group, starting at the
// hash-chosen group so healthy runs keep their original pick and faulty runs
// stay deterministic (the scan order is a pure function of (src, dst, at)).
// Returns -1 when no intermediate group is fully live.
func (t *dragonfly) feasibleVia(src, dst int, at sim.Time, gs, gd, rs, rd int) int {
	if t.groups <= 2 {
		return -1
	}
	start := t.valiantGroup(src, dst, at, gs, gd)
	for i := 0; i < t.groups; i++ {
		v := (start + i) % t.groups
		if v == gs || v == gd {
			continue
		}
		if t.valiantOK(rs, rd, v, gd, at) {
			return v
		}
	}
	return -1
}
