package serve

// The HTTP face of the service. Endpoints:
//
//	POST /query    one spec as JSON → the canonical result document.
//	               Response headers: X-Uniconn-Spec-Hash (the content
//	               address) and X-Uniconn-Cache (hit|miss|coalesced).
//	               400 on malformed/unrunnable specs, 503 under load shed
//	               or shutdown, 500 on evaluation failure.
//	GET  /stats    the service's operational snapshot (Stats).
//
// Everything else falls through to the telemetry plane's handler when one
// is mounted (NewHandler's fallback): /metrics, /healthz, /debug/runs,
// /debug/flight — the same endpoints every sweep CLI serves under -live.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/spec"
)

// NewHandler routes the service's endpoints, with every unclaimed path
// served by fallback (pass the telemetry server's Handler; nil serves 404).
func NewHandler(sv *Service, fallback http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", sv.handleQuery)
	mux.HandleFunc("/stats", sv.handleStats)
	if fallback != nil {
		mux.Handle("/", fallback)
	}
	return mux
}

// handleQuery answers one spec.
func (sv *Service) handleQuery(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, "POST a spec JSON document", http.StatusMethodNotAllowed)
		return
	}
	// Unknown fields are rejected rather than ignored: a misspelled field
	// would silently address a different cell than the client meant.
	dec := json.NewDecoder(req.Body)
	dec.DisallowUnknownFields()
	var s spec.Spec
	if err := dec.Decode(&s); err != nil {
		http.Error(w, fmt.Sprintf("bad spec JSON: %v", err), http.StatusBadRequest)
		return
	}
	if err := s.Validate(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	body, source, err := sv.Query(s)
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, ErrOverloaded) || errors.Is(err, ErrClosed) {
			code = http.StatusServiceUnavailable
		}
		http.Error(w, err.Error(), code)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Uniconn-Spec-Hash", s.Hash())
	w.Header().Set("X-Uniconn-Cache", source)
	w.Write(body) //nolint:errcheck // client went away
}

// handleStats serves the operational snapshot.
func (sv *Service) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(sv.Stats()) //nolint:errcheck // client went away
}
