package serve

// The load-test harness behind `uniconn-serve -loadtest`: it drives a live
// service over real HTTP and measures the two numbers the repeat-query
// optimisation promises — the cold→hit speedup on the 64-rank allreduce
// headline cell, and the sustained warm-cache throughput under concurrent
// clients. The resulting report is BENCH_serve.json; CI gates its
// freshness (stable fields: description, workloads, spec hashes) and its
// targets_met verdict (speedup >= 100x, sustained qps >= 500).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/spec"
)

// Load-test acceptance targets (ISSUE 10 / ROADMAP item 3).
const (
	TargetSpeedup = 100
	TargetQPS     = 500
)

// LoadTestConfig drives LoadTest.
type LoadTestConfig struct {
	// BaseURL is the service under test (e.g. "http://127.0.0.1:8080").
	BaseURL string
	// Clients is the concurrent client count of the sustained phase
	// (default 8).
	Clients int
	// Duration is the sustained phase's length (default 2s).
	Duration time.Duration
	// HitSamples is how many hit-path queries the speedup measurement
	// averages over (default 50).
	HitSamples int
}

// LoadTestReport is the harness's result document (BENCH_serve.json).
type LoadTestReport struct {
	Description string       `json:"description"`
	Host        LoadTestHost `json:"host"`
	Clients     int          `json:"clients"`
	DurationSec float64      `json:"duration_seconds"`
	// Workloads and SpecHashes are the stable fields the CI freshness gate
	// diffs: the workload set exercised and the content addresses of every
	// spec in it. A hash-encoding drift shows up here immediately.
	Workloads  []string          `json:"workloads"`
	SpecHashes map[string]string `json:"spec_hashes"`
	// ColdNs/HitNs time the 64-rank allreduce headline cell: one cold
	// simulation vs the mean cache-hit round-trip; Speedup their ratio.
	ColdNs  int64   `json:"cold_ns"`
	HitNs   int64   `json:"hit_ns"`
	Speedup float64 `json:"speedup"`
	// SustainedQPS and HitRate summarise the warm concurrent phase.
	SustainedQPS float64 `json:"sustained_qps"`
	HitRate      float64 `json:"hit_rate"`
	Requests     int64   `json:"requests"`
	Seconds      float64 `json:"total_seconds"`
	// Targets records the acceptance thresholds; TargetsMet the verdict.
	Targets    LoadTestTargets `json:"targets"`
	TargetsMet bool            `json:"targets_met"`
}

// LoadTestHost pins the measuring host's shape.
type LoadTestHost struct {
	NumCPU     int `json:"num_cpu"`
	GOMAXPROCS int `json:"gomaxprocs"`
}

// LoadTestTargets records the acceptance thresholds the verdict applied.
type LoadTestTargets struct {
	SpeedupMin float64 `json:"speedup_min"`
	QPSMin     float64 `json:"qps_min"`
}

// loadTestSpecs is the cell set the harness exercises: the 64-rank
// allreduce headline cell first (the speedup measurement), then a spread
// over workloads, machines, backends, topologies, and fault modes so the
// warm phase touches every code path the service routes.
func loadTestSpecs() map[string]spec.Spec {
	return map[string]spec.Spec{
		"allreduce-64r-1MiB": {Workload: spec.WorkloadAllreduce, Ranks: 64, Bytes: 1 << 20},
		"allreduce-8r-ring-fattree": {Workload: spec.WorkloadAllreduce, Ranks: 8,
			Bytes: 64 << 10, Alg: "ring", Topology: "fattree:4"},
		"allreduce-16r-hier-LUMI": {Workload: spec.WorkloadAllreduce, Ranks: 16,
			Bytes: 256 << 10, Alg: "hierarchical", Machine: "LUMI"},
		"latency-mpi-4KiB":        {Workload: spec.WorkloadNetLatency, Bytes: 4 << 10},
		"latency-mpi-inter-4KiB":  {Workload: spec.WorkloadNetLatency, Bytes: 4 << 10, Inter: true},
		"latency-ccl-native":      {Workload: spec.WorkloadNetLatency, Backend: "GPUCCL", Native: true, Bytes: 8 << 10},
		"bandwidth-mpi-1MiB":      {Workload: spec.WorkloadNetBandwidth, Bytes: 1 << 20, Inter: true},
		"bandwidth-shmem-dev":     {Workload: spec.WorkloadNetBandwidth, Backend: "GPUSHMEM", API: "Device", Bytes: 128 << 10},
		"latency-degraded":        {Workload: spec.WorkloadNetLatency, Bytes: 4 << 10, Inter: true, FaultMode: spec.FaultDegrade, Severity: 0.5},
		"latency-generated-fault": {Workload: spec.WorkloadNetLatency, Bytes: 4 << 10, Inter: true, FaultMode: spec.FaultGenerate, Severity: 0.5, Seed: 42},
	}
}

// headlineSpec names the loadTestSpecs entry the speedup measurement times.
const headlineSpec = "allreduce-64r-1MiB"

// LoadTest runs the three phases — cold fill, hit timing, sustained warm
// load — against the service at cfg.BaseURL and returns the report.
func LoadTest(cfg LoadTestConfig) (LoadTestReport, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.HitSamples <= 0 {
		cfg.HitSamples = 50
	}
	specs := loadTestSpecs()
	rep := LoadTestReport{
		Description: "What-if service load test (cmd/uniconn-serve -loadtest): content-addressed cache cold-vs-hit speedup on the 64-rank allreduce cell, plus sustained warm-cache throughput under concurrent HTTP clients.",
		Host:        LoadTestHost{NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0)},
		Clients:     cfg.Clients,
		DurationSec: cfg.Duration.Seconds(),
		Workloads:   spec.Workloads(),
		SpecHashes:  map[string]string{},
		Targets:     LoadTestTargets{SpeedupMin: TargetSpeedup, QPSMin: TargetQPS},
	}
	names := make([]string, 0, len(specs))
	for name, s := range specs {
		rep.SpecHashes[name] = s.Hash()
		names = append(names, name)
	}
	client := &http.Client{Timeout: 5 * time.Minute}
	start := time.Now()

	// Phase 1: cold fill. The headline cell is timed; the rest just warm
	// the cache. Warming is sequential so the headline's cold time is not
	// distorted by batch-mates sharing the worker pool.
	headline := specs[headlineSpec]
	coldStart := time.Now()
	headlineBody, _, err := postQuery(client, cfg.BaseURL, headline)
	if err != nil {
		return rep, fmt.Errorf("cold %s: %w", headlineSpec, err)
	}
	rep.ColdNs = time.Since(coldStart).Nanoseconds()
	for name, s := range specs {
		if name == headlineSpec {
			continue
		}
		if _, _, err := postQuery(client, cfg.BaseURL, s); err != nil {
			return rep, fmt.Errorf("cold %s: %w", name, err)
		}
	}

	// Phase 2: hit timing. Every repeat of the headline cell must come back
	// from the cache, byte-identical.
	var hitTotal time.Duration
	for i := 0; i < cfg.HitSamples; i++ {
		t0 := time.Now()
		body, source, err := postQuery(client, cfg.BaseURL, headline)
		if err != nil {
			return rep, fmt.Errorf("hit sample %d: %w", i, err)
		}
		hitTotal += time.Since(t0)
		if source != "hit" {
			return rep, fmt.Errorf("hit sample %d: X-Uniconn-Cache = %q, want hit", i, source)
		}
		if !bytes.Equal(body, headlineBody) {
			return rep, fmt.Errorf("hit sample %d: body differs from cold body", i)
		}
	}
	rep.HitNs = hitTotal.Nanoseconds() / int64(cfg.HitSamples)
	if rep.HitNs > 0 {
		rep.Speedup = float64(rep.ColdNs) / float64(rep.HitNs)
	}

	// Phase 3: sustained warm load. Clients cycle the warm spec set at
	// distinct offsets; everything is cached, so this measures the serving
	// path (HTTP + hash + cache lookup) under concurrency.
	var requests, hits atomic.Int64
	deadline := time.Now().Add(cfg.Duration)
	var wg sync.WaitGroup
	errCh := make(chan error, cfg.Clients)
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(offset int) {
			defer wg.Done()
			cl := &http.Client{Timeout: 30 * time.Second}
			for i := offset; time.Now().Before(deadline); i++ {
				s := specs[names[i%len(names)]]
				_, source, err := postQuery(cl, cfg.BaseURL, s)
				if err != nil {
					errCh <- err
					return
				}
				requests.Add(1)
				if source == "hit" {
					hits.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return rep, fmt.Errorf("sustained phase: %w", err)
	default:
	}
	rep.Requests = requests.Load()
	rep.SustainedQPS = float64(rep.Requests) / cfg.Duration.Seconds()
	if rep.Requests > 0 {
		rep.HitRate = float64(hits.Load()) / float64(rep.Requests)
	}
	rep.Seconds = time.Since(start).Seconds()
	rep.TargetsMet = rep.Speedup >= TargetSpeedup && rep.SustainedQPS >= TargetQPS
	return rep, nil
}

// postQuery POSTs one spec to /query and returns the body and the
// X-Uniconn-Cache source.
func postQuery(client *http.Client, baseURL string, s spec.Spec) ([]byte, string, error) {
	payload, err := json.Marshal(s)
	if err != nil {
		return nil, "", err
	}
	resp, err := client.Post(baseURL+"/query", "application/json", bytes.NewReader(payload))
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return body, resp.Header.Get("X-Uniconn-Cache"), nil
}
