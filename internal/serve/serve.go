// Package serve implements the what-if query service behind cmd/uniconn-serve:
// an HTTP/JSON API answering "this workload, this machine, this backend →
// predicted time, critical path, comm matrix" from the deterministic
// simulator, made cheap by two layers of reuse.
//
// First, every answer is served from the content-addressed result cache
// (internal/cache) when possible: the spec's hash (internal/spec) is the
// cache key, and a hit returns the stored bytes verbatim — byte-identical
// to a fresh simulation, at O(1) cost.
//
// Second, concurrent misses coalesce and batch. A miss does not simulate
// inline: it enqueues the spec and waits. Identical specs join the same
// pending call (one simulation, many waiters); distinct specs accumulate
// until the batch window closes or the batch is full, then execute together
// as one bench.EvalSpecs sweep — the same deterministic fan-out the CLIs
// use, with per-worker warmed cost caches. A semaphore bounds concurrent
// batch executions, and a queue cap sheds load (ErrOverloaded → 503) rather
// than accepting unbounded work.
//
// Determinism note: coalescing and batching change *when* and *how often* a
// cell is simulated, never *what* it returns — cell results are a pure
// function of the spec, and the cache stores encoded bytes. The service can
// therefore never serve two different answers for one spec.
package serve

import (
	"errors"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/cache"
	"repro/internal/metrics"
	"repro/internal/spec"
)

// Defaults for Options zero values.
const (
	DefaultBatchWindow = 2 * time.Millisecond
	DefaultMaxBatch    = 64
	DefaultMaxInflight = 2
	DefaultQueueCap    = 1024
)

// ErrOverloaded reports a query rejected because the pending queue is full;
// the HTTP layer maps it to 503.
var ErrOverloaded = errors.New("serve: pending queue full")

// ErrClosed reports a query arriving after Close began; mapped to 503.
var ErrClosed = errors.New("serve: shutting down")

// Options configures a Service.
type Options struct {
	// Cache is the result cache (a private in-memory cache when nil).
	Cache *cache.Cache
	// Registry, when non-nil, hosts the service's serve.* and cache.*
	// counters — pass the telemetry tracker's registry so they surface on
	// /metrics. A private registry is used when nil (Stats still works).
	Registry *metrics.Registry
	// BatchWindow is how long the first miss of a batch waits for company
	// before the batch executes (0 = DefaultBatchWindow).
	BatchWindow time.Duration
	// MaxBatch caps specs per batch; a full batch executes immediately
	// (0 = DefaultMaxBatch).
	MaxBatch int
	// MaxInflight caps concurrently executing batches (0 = DefaultMaxInflight).
	MaxInflight int
	// QueueCap caps queued-but-unstarted specs; beyond it queries are shed
	// with ErrOverloaded (0 = DefaultQueueCap).
	QueueCap int
}

// Service coalesces and batches spec queries over the result cache.
type Service struct {
	opts Options
	c    *cache.Cache

	mu      sync.Mutex
	pending map[string]*call // spec hash → in-flight or queued call
	queue   []*call          // queued calls in arrival order
	timer   *time.Timer      // pending batch-window flush, nil when unarmed
	closed  bool

	sem chan struct{} // MaxInflight batch-execution slots
	wg  sync.WaitGroup

	mQueries, mFast, mCoalesced *metrics.Counter
	mBatches, mBatched          *metrics.Counter
	mRejected, mErrors          *metrics.Counter
}

// call is one pending simulation: the first requester of a spec creates it,
// identical requests join it, and the executing batch resolves it.
type call struct {
	spec spec.Spec
	hash string
	done chan struct{} // closed once body/hit/err are set
	body []byte
	hit  bool
	err  error
}

// New returns a service over the options.
func New(opts Options) *Service {
	if opts.Cache == nil {
		opts.Cache = cache.New(cache.Options{})
	}
	if opts.Registry == nil {
		opts.Registry = metrics.New()
	}
	if opts.BatchWindow <= 0 {
		opts.BatchWindow = DefaultBatchWindow
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = DefaultMaxBatch
	}
	if opts.MaxInflight <= 0 {
		opts.MaxInflight = DefaultMaxInflight
	}
	if opts.QueueCap <= 0 {
		opts.QueueCap = DefaultQueueCap
	}
	sv := &Service{
		opts:    opts,
		c:       opts.Cache,
		pending: make(map[string]*call),
		sem:     make(chan struct{}, opts.MaxInflight),
	}
	sv.c.SetMetrics(opts.Registry)
	r := opts.Registry
	sv.mQueries = r.Counter("serve.queries")
	sv.mFast = r.Counter("serve.fast_hits")
	sv.mCoalesced = r.Counter("serve.coalesced")
	sv.mBatches = r.Counter("serve.batches")
	sv.mBatched = r.Counter("serve.batched_specs")
	sv.mRejected = r.Counter("serve.rejected")
	sv.mErrors = r.Counter("serve.errors")
	return sv
}

// Cache exposes the service's result cache (the loadtest harness warms and
// inspects it).
func (sv *Service) Cache() *cache.Cache { return sv.c }

// Query answers one validated spec. The source return value reports how:
// "hit" (served from the cache, fast path or filled while queued), "miss"
// (this call's batch simulated it), or "coalesced" (joined another query's
// in-flight call). Blocks until the answer is ready; under overload or
// shutdown it fails fast with ErrOverloaded / ErrClosed.
func (sv *Service) Query(s spec.Spec) (body []byte, source string, err error) {
	sv.mQueries.Inc()
	h := s.Hash()
	if body, ok := sv.c.Get(h); ok {
		sv.mFast.Inc()
		return body, "hit", nil
	}
	sv.mu.Lock()
	if sv.closed {
		sv.mu.Unlock()
		sv.mRejected.Inc()
		return nil, "", ErrClosed
	}
	if c, ok := sv.pending[h]; ok {
		sv.mu.Unlock()
		sv.mCoalesced.Inc()
		<-c.done
		if c.err != nil {
			return nil, "", c.err
		}
		return c.body, "coalesced", nil
	}
	if len(sv.queue) >= sv.opts.QueueCap {
		sv.mu.Unlock()
		sv.mRejected.Inc()
		return nil, "", ErrOverloaded
	}
	c := &call{spec: s, hash: h, done: make(chan struct{})}
	sv.pending[h] = c
	sv.queue = append(sv.queue, c)
	if len(sv.queue) >= sv.opts.MaxBatch {
		sv.flushLocked()
	} else if sv.timer == nil {
		sv.timer = time.AfterFunc(sv.opts.BatchWindow, sv.flushOnTimer)
	}
	sv.mu.Unlock()
	<-c.done
	if c.err != nil {
		sv.mErrors.Inc()
		return nil, "", c.err
	}
	source = "miss"
	if c.hit {
		source = "hit"
	}
	return c.body, source, nil
}

// flushOnTimer is the batch-window callback.
func (sv *Service) flushOnTimer() {
	sv.mu.Lock()
	sv.timer = nil
	sv.flushLocked()
	sv.mu.Unlock()
}

// flushLocked drains the queue into MaxBatch-sized batches, each executing
// on its own goroutine gated by the inflight semaphore. Called with the
// mutex held.
func (sv *Service) flushLocked() {
	if sv.timer != nil {
		sv.timer.Stop()
		sv.timer = nil
	}
	for len(sv.queue) > 0 {
		n := len(sv.queue)
		if n > sv.opts.MaxBatch {
			n = sv.opts.MaxBatch
		}
		batch := make([]*call, n)
		copy(batch, sv.queue[:n])
		sv.queue = sv.queue[n:]
		sv.wg.Add(1)
		go sv.runBatch(batch)
	}
	sv.queue = nil
}

// runBatch executes one batch as a single deterministic sweep and resolves
// its calls. Pending-map entries survive until resolution so late identical
// queries keep coalescing onto the executing call.
func (sv *Service) runBatch(batch []*call) {
	defer sv.wg.Done()
	sv.sem <- struct{}{}
	defer func() { <-sv.sem }()
	specs := make([]spec.Spec, len(batch))
	for i, c := range batch {
		specs[i] = c.spec
	}
	evals := bench.EvalSpecs(specs, sv.c)
	sv.mBatches.Inc()
	sv.mBatched.Add(int64(len(batch)))
	sv.mu.Lock()
	for i, c := range batch {
		c.body, c.hit, c.err = evals[i].Body, evals[i].Hit, evals[i].Err
		delete(sv.pending, c.hash)
	}
	sv.mu.Unlock()
	for _, c := range batch {
		close(c.done)
	}
}

// Close drains the service: new queries are shed with ErrClosed, everything
// already queued executes, and Close returns once the last batch resolved.
func (sv *Service) Close() {
	sv.mu.Lock()
	if sv.closed {
		sv.mu.Unlock()
		sv.wg.Wait()
		return
	}
	sv.closed = true
	sv.flushLocked()
	sv.mu.Unlock()
	sv.wg.Wait()
}

// Stats is the service's point-in-time operational snapshot.
type Stats struct {
	Cache cache.Stats `json:"cache"`
	// Queries counts every Query; FastHits the cache fast path; Coalesced
	// the queries that joined an in-flight call.
	Queries   int64 `json:"queries"`
	FastHits  int64 `json:"fast_hits"`
	Coalesced int64 `json:"coalesced"`
	// Batches counts executed sweeps; BatchedSpecs their summed sizes.
	Batches      int64 `json:"batches"`
	BatchedSpecs int64 `json:"batched_specs"`
	// Rejected counts load-shed and shutdown-shed queries; Errors failed
	// evaluations.
	Rejected int64 `json:"rejected"`
	Errors   int64 `json:"errors"`
	// Pending is the current in-flight + queued call count.
	Pending int `json:"pending"`
}

// Stats snapshots the service.
func (sv *Service) Stats() Stats {
	sv.mu.Lock()
	pending := len(sv.pending)
	sv.mu.Unlock()
	return Stats{
		Cache:        sv.c.Stats(),
		Queries:      sv.mQueries.Value(),
		FastHits:     sv.mFast.Value(),
		Coalesced:    sv.mCoalesced.Value(),
		Batches:      sv.mBatches.Value(),
		BatchedSpecs: sv.mBatched.Value(),
		Rejected:     sv.mRejected.Value(),
		Errors:       sv.mErrors.Value(),
		Pending:      pending,
	}
}
