package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/spec"
)

func latencySpec(bytes int64) spec.Spec {
	return spec.Spec{Workload: spec.WorkloadNetLatency, Bytes: bytes}
}

// TestQueryHitByteIdentical: the second query of a spec is a cache hit whose
// body equals the cold body byte for byte.
func TestQueryHitByteIdentical(t *testing.T) {
	sv := New(Options{})
	defer sv.Close()
	cold, src, err := sv.Query(latencySpec(4096))
	if err != nil {
		t.Fatal(err)
	}
	if src != "miss" {
		t.Fatalf("first query source = %q, want miss", src)
	}
	warm, src, err := sv.Query(latencySpec(4096))
	if err != nil {
		t.Fatal(err)
	}
	if src != "hit" {
		t.Fatalf("second query source = %q, want hit", src)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("hit body differs from cold body:\n%s\n%s", cold, warm)
	}
}

// TestCoalescingSingleSimulation: concurrent identical queries produce one
// simulation (one miss in the cache) and identical bodies for every caller.
func TestCoalescingSingleSimulation(t *testing.T) {
	c := cache.New(cache.Options{})
	// A wide batch window so all queries land in one pending call.
	sv := New(Options{Cache: c, BatchWindow: 50 * time.Millisecond})
	defer sv.Close()

	const clients = 8
	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _, err := sv.Query(latencySpec(8192))
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			bodies[i] = body
		}(i)
	}
	wg.Wait()
	for i := 1; i < clients; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("client %d got a different body", i)
		}
	}
	// Every client probes the cache (a counted miss each), but only ONE
	// simulation may run: one batch containing one spec.
	st := sv.Stats()
	if st.Batches != 1 || st.BatchedSpecs != 1 {
		t.Errorf("stats = %+v, want one batch of one spec (coalesced clients must not re-simulate)", st)
	}
	if st.Coalesced == 0 {
		t.Errorf("stats report no coalesced queries: %+v", st)
	}
}

// TestBatchingDistinctSpecs: distinct specs inside one window execute as one
// batch (one EvalSpecs sweep), not one sweep each.
func TestBatchingDistinctSpecs(t *testing.T) {
	sv := New(Options{BatchWindow: 50 * time.Millisecond, MaxBatch: 16})
	defer sv.Close()
	var wg sync.WaitGroup
	for _, b := range []int64{1024, 2048, 4096, 8192} {
		wg.Add(1)
		go func(b int64) {
			defer wg.Done()
			if _, _, err := sv.Query(latencySpec(b)); err != nil {
				t.Errorf("bytes=%d: %v", b, err)
			}
		}(b)
	}
	wg.Wait()
	st := sv.Stats()
	if st.Batches != 1 || st.BatchedSpecs != 4 {
		t.Errorf("stats = %+v, want one batch of 4 specs", st)
	}
}

// TestFullBatchFlushesEarly: MaxBatch queued specs execute without waiting
// for the window.
func TestFullBatchFlushesEarly(t *testing.T) {
	sv := New(Options{BatchWindow: time.Hour, MaxBatch: 2})
	defer sv.Close()
	var wg sync.WaitGroup
	start := time.Now()
	for _, b := range []int64{1024, 2048} {
		wg.Add(1)
		go func(b int64) {
			defer wg.Done()
			if _, _, err := sv.Query(latencySpec(b)); err != nil {
				t.Errorf("bytes=%d: %v", b, err)
			}
		}(b)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("full batch waited %v; the hour-long window should not apply", elapsed)
	}
}

// TestOverloadSheds: a tiny queue cap rejects the excess with ErrOverloaded
// while a batch slot is occupied.
func TestOverloadSheds(t *testing.T) {
	sv := New(Options{BatchWindow: time.Hour, MaxBatch: 64, QueueCap: 1})
	// Occupy the queue with one pending call (the window never fires
	// on its own within the test).
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		sv.Query(latencySpec(1024)) //nolint:errcheck
	}()
	// Wait until the first query is queued.
	for i := 0; ; i++ {
		if st := sv.Stats(); st.Pending == 1 {
			break
		}
		if i > 1000 {
			t.Fatal("first query never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if _, _, err := sv.Query(latencySpec(2048)); err != ErrOverloaded {
		t.Fatalf("over-cap query error = %v, want ErrOverloaded", err)
	}
	if st := sv.Stats(); st.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", st.Rejected)
	}
	sv.Close() // flushes the queued call
	wg.Wait()
}

// TestCloseDrains: Close executes what is queued, then sheds new queries.
func TestCloseDrains(t *testing.T) {
	sv := New(Options{BatchWindow: time.Hour})
	var body []byte
	var err error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		body, _, err = sv.Query(latencySpec(4096))
	}()
	for i := 0; ; i++ {
		if st := sv.Stats(); st.Pending == 1 {
			break
		}
		if i > 1000 {
			t.Fatal("query never queued")
		}
		time.Sleep(time.Millisecond)
	}
	sv.Close()
	wg.Wait()
	if err != nil || len(body) == 0 {
		t.Fatalf("queued query should resolve on Close: body=%d bytes, err=%v", len(body), err)
	}
	if _, _, err := sv.Query(latencySpec(8192)); err != ErrClosed {
		t.Fatalf("post-Close query error = %v, want ErrClosed", err)
	}
}

// TestHTTPQueryEndpoint drives the full HTTP surface: miss then hit with
// byte-identical bodies and the cache header, 400s for bad specs, 405 for
// GET, and a working /stats.
func TestHTTPQueryEndpoint(t *testing.T) {
	sv := New(Options{})
	defer sv.Close()
	srv := httptest.NewServer(NewHandler(sv, nil))
	defer srv.Close()

	post := func(body string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body) //nolint:errcheck
		resp.Body.Close()
		return resp, buf.String()
	}

	resp1, body1 := post(`{"workload":"net-latency","bytes":4096}`)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("cold query status = %d: %s", resp1.StatusCode, body1)
	}
	if got := resp1.Header.Get("X-Uniconn-Cache"); got != "miss" {
		t.Errorf("cold X-Uniconn-Cache = %q, want miss", got)
	}
	if resp1.Header.Get("X-Uniconn-Spec-Hash") == "" {
		t.Error("missing X-Uniconn-Spec-Hash header")
	}

	resp2, body2 := post(`{"workload":"net-latency","bytes":4096}`)
	if got := resp2.Header.Get("X-Uniconn-Cache"); got != "hit" {
		t.Errorf("warm X-Uniconn-Cache = %q, want hit", got)
	}
	if body1 != body2 {
		t.Error("hit body differs from cold body over HTTP")
	}

	if resp, msg := post(`{"workload":"nope","bytes":8}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown workload status = %d (%s), want 400", resp.StatusCode, msg)
	}
	if resp, msg := post(`{"workload":"net-latency","bytes":4096,"typo":1}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field status = %d (%s), want 400", resp.StatusCode, msg)
	}

	getResp, err := http.Get(srv.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query status = %d, want 405", getResp.StatusCode)
	}

	stResp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(stResp.Body) //nolint:errcheck
	stResp.Body.Close()
	if stResp.StatusCode != http.StatusOK || !strings.Contains(buf.String(), `"queries"`) {
		t.Errorf("/stats = %d %s", stResp.StatusCode, buf.String())
	}
}
