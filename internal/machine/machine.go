// Package machine encodes the hardware and software characteristics of the
// three supercomputers used in the UNICONN paper (Table I): Perlmutter,
// LUMI-G, and MareNostrum5 ACC.
//
// A Model combines the cluster shape (GPUs per node, NIC count), the raw
// wire capabilities of the interconnects, per-communication-library cost
// profiles (latency and effective-bandwidth curves for GPU-aware MPI,
// GPUCCL, and GPUSHMEM on each path and API flavour), GPU compute
// parameters, and host-side software costs. The profile values are synthetic
// but calibrated to the public specifications in Table I and to published
// OSU-style measurements of these systems, so that the qualitative results
// of the paper (who wins at which message size, on which path, on which
// machine) are preserved.
package machine

import (
	"fmt"
	"math"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// Lib identifies a communication library (backend).
type Lib int

const (
	// LibMPI is GPU-aware MPI (Cray MPICH / OpenMPI in the paper).
	LibMPI Lib = iota
	// LibGPUCCL is the vendor collective library (NCCL / RCCL).
	LibGPUCCL
	// LibGPUSHMEM is the GPU OpenSHMEM library (NVSHMEM).
	LibGPUSHMEM
	numLibs
)

func (l Lib) String() string {
	switch l {
	case LibMPI:
		return "MPI"
	case LibGPUCCL:
		return "GPUCCL"
	case LibGPUSHMEM:
		return "GPUSHMEM"
	default:
		return fmt.Sprintf("Lib(%d)", int(l))
	}
}

// API distinguishes host-initiated from device-initiated communication.
type API int

const (
	// APIHost is host-initiated (CPU calls the library).
	APIHost API = iota
	// APIDevice is device-initiated (GPU threads call the library).
	APIDevice
)

func (a API) String() string {
	if a == APIDevice {
		return "Device"
	}
	return "Host"
}

// Curve is a latency/effective-bandwidth model for one (library, API, path)
// combination: a message of size s bytes sees one-way latency Alpha and
// streams at WireBW * EffPeak * s / (s + HalfSize).
type Curve struct {
	Alpha    sim.Duration // per-message one-way latency
	EffPeak  float64      // fraction of the wire peak achievable at s→∞
	HalfSize float64      // bytes at which half of the effective peak is reached
}

// LibProfile is the full cost profile of one library+API on one machine.
type LibProfile struct {
	Intra Curve
	Inter Curve

	// CallOverhead is the host CPU time consumed by each library call
	// (argument marshalling, handle lookups).
	CallOverhead sim.Duration
	// LaunchOverhead is the cost of placing a communication kernel on a
	// stream (GPUCCL pays it per group; GPUSHMEM host-API per op batch).
	LaunchOverhead sim.Duration
	// EagerMax is the MPI eager-protocol threshold in bytes; messages
	// larger than this pay RendezvousOverhead for the RTS/CTS handshake.
	EagerMax int64
	// RendezvousOverhead is the extra latency of the rendezvous
	// handshake (one extra control-message round trip).
	RendezvousOverhead sim.Duration
	// CollStagingBW models a pathology of vector collectives
	// (Allgatherv & friends) on device buffers: the implementation stages
	// the full vector through host bounce buffers at this bandwidth
	// (bytes/s; 0 disables). This is the effect the paper isolates in
	// §VI-D, where MPI's Allgatherv dominated the CG runtime.
	CollStagingBW float64
}

// GPUSpec captures the compute-side parameters of one GPU (or GCD).
type GPUSpec struct {
	Name string
	// MemBW is the peak device-memory bandwidth in bytes/s; MemEff is the
	// fraction achievable by stencil-like kernels.
	MemBW  float64
	MemEff float64
	// Flops is the peak single-precision rate, for compute-bound kernels.
	Flops float64
	// KernelLaunch is the host-side latency of launching one kernel.
	KernelLaunch sim.Duration
	// LocalCopyBW is device-local (intra-GPU) copy bandwidth.
	LocalCopyBW float64
}

// UniconnCosts models the host-side overhead that the UNICONN layer adds on
// top of a backend (the source of the paper's native-vs-UNICONN deltas).
type UniconnCosts struct {
	// Dispatch is the per-operation cost of UNICONN's decision logic
	// (blocking vs non-blocking selection, launch-mode branching).
	Dispatch sim.Duration
	// StreamQuery is the cost of querying the GPU stream for pending
	// operations before each blocking MPI call (paper §VI-B).
	StreamQuery sim.Duration
	// SmallAckPenalty is the additional interference cost paid by
	// blocking small-message Acknowledge operations on the MPI backend,
	// where stream queries disturb communication progress.
	SmallAckPenalty sim.Duration
	// SmallAckMax is the message size (bytes) below which the penalty
	// applies.
	SmallAckMax int64
	// DeviceInline is the (near-zero) cost of the inlined device-side
	// wrappers.
	DeviceInline sim.Duration
}

// Model is the complete description of one machine.
type Model struct {
	Name        string
	GPUsPerNode int
	NICsPerNode int

	// Wire peaks, bytes/s per port per direction.
	IntraWireBW float64
	NICWireBW   float64

	GPU     GPUSpec
	HostOp  sim.Duration // generic host-side bookkeeping operation
	Uniconn UniconnCosts

	// Topology selects the inter-node network model of clusters built on
	// this machine (flat, fat-tree, dragonfly; see fabric.TopologyConfig).
	// The zero value keeps the paper's flat single-hop network. CLIs and
	// core.Config.Topology override it on a cloned model.
	Topology fabric.TopologyConfig

	// HasGPUSHMEM reports whether a GPUSHMEM implementation exists on
	// this machine (rocSHMEM was not mature: LUMI has none — Table I).
	HasGPUSHMEM bool

	profiles map[profileKey]LibProfile
}

type profileKey struct {
	lib Lib
	api API
}

// Profile returns the cost profile for a library+API on this machine. It
// panics for combinations the machine does not support (use Supports to
// check).
func (m *Model) Profile(lib Lib, api API) LibProfile {
	p, ok := m.profiles[profileKey{lib, api}]
	if !ok {
		panic(fmt.Sprintf("machine %s: no profile for %v/%v", m.Name, lib, api))
	}
	return p
}

// Supports reports whether the machine provides the library+API combination.
func (m *Model) Supports(lib Lib, api API) bool {
	_, ok := m.profiles[profileKey{lib, api}]
	return ok
}

// Cost resolves the fabric.LinkCost for one message.
func (m *Model) Cost(lib Lib, api API, path fabric.Path, bytes int64) fabric.LinkCost {
	p := m.Profile(lib, api)
	var c Curve
	switch path {
	case fabric.PathInter:
		c = p.Inter
	case fabric.PathIntra:
		c = p.Intra
	default: // device-local copy
		return fabric.LinkCost{
			Latency:     sim.Microsecond / 2,
			BytesPerSec: m.GPU.LocalCopyBW,
		}
	}
	wire := m.IntraWireBW
	if path == fabric.PathInter {
		wire = m.NICWireBW
	}
	s := float64(bytes)
	eff := c.EffPeak * s / (s + c.HalfSize)
	if eff <= 0 || math.IsNaN(eff) {
		eff = 1e-9
	}
	return fabric.LinkCost{Latency: c.Alpha, BytesPerSec: wire * eff}
}

// FabricConfig returns the fabric configuration for a cluster of the given
// node count on this machine. A model that leaves NICsPerNode unset gets
// one port per node (fabric.New rejects non-positive counts outright).
func (m *Model) FabricConfig(nodes int) fabric.Config {
	nics := m.NICsPerNode
	if nics < 1 {
		nics = 1
	}
	return fabric.Config{
		Nodes:       nodes,
		GPUsPerNode: m.GPUsPerNode,
		NICsPerNode: nics,
		Topology:    m.Topology,
	}
}

// NodesFor returns how many nodes are needed for n GPUs (GPUs are packed).
func (m *Model) NodesFor(nGPUs int) int {
	return (nGPUs + m.GPUsPerNode - 1) / m.GPUsPerNode
}

// MinInterAlpha reports the smallest inter-node per-message latency across
// every cost profile of the machine: the guaranteed lower bound on cross-
// node delivery delay, and therefore the conservative lookahead window of
// sharded execution (sim.Group). Zero when the machine has no profile with
// a positive inter-node alpha (such a model cannot be sharded). The min is
// order-free, so map iteration order cannot affect it.
func (m *Model) MinInterAlpha() sim.Duration {
	var min sim.Duration
	for _, p := range m.profiles {
		if a := p.Inter.Alpha; a > 0 && (min == 0 || a < min) {
			min = a
		}
	}
	return min
}

// StencilKernelTime models a memory-bound stencil update touching the given
// number of bytes.
func (m *Model) StencilKernelTime(bytes int64) sim.Duration {
	bw := m.GPU.MemBW * m.GPU.MemEff
	return sim.Duration(float64(bytes) / bw * float64(sim.Second))
}

// SpMVKernelTime models a CSR sparse matrix-vector product with the given
// nonzero count: each nonzero streams the value (8 B), the column index
// (4 B), and an x-vector gather (8 B, partially cached).
func (m *Model) SpMVKernelTime(nnz int64) sim.Duration {
	const bytesPerNnz = 16.0
	bw := m.GPU.MemBW * m.GPU.MemEff * 0.6 // irregular access penalty
	return sim.Duration(float64(nnz) * bytesPerNnz / bw * float64(sim.Second))
}
