package machine

import (
	"testing"
	"testing/quick"

	"repro/internal/fabric"
	"repro/internal/sim"
)

func TestTableIShapes(t *testing.T) {
	// The encoded models must match Table I's structural facts.
	p, l, mn := Perlmutter(), LUMI(), MareNostrum5()
	if p.GPUsPerNode != 4 || mn.GPUsPerNode != 4 {
		t.Error("Perlmutter/MareNostrum5 have 4 GPUs per node")
	}
	if l.GPUsPerNode != 8 {
		t.Error("LUMI exposes 8 GCDs per node (paper §VI-C)")
	}
	if !p.HasGPUSHMEM || l.HasGPUSHMEM || !mn.HasGPUSHMEM {
		t.Error("GPUSHMEM availability: Perlmutter yes, LUMI no, MareNostrum5 yes")
	}
	for _, m := range All() {
		if m.NICsPerNode != 4 {
			t.Errorf("%s: all systems have 4 NICs (4x 200Gb/s)", m.Name)
		}
		if m.NICWireBW != 25e9 {
			t.Errorf("%s: 200 Gb/s = 25 GB/s per NIC", m.Name)
		}
	}
	// Intra-node wire ordering: NVLink4 > NVLink3 > Infinity Fabric link.
	if !(mn.IntraWireBW > p.IntraWireBW && p.IntraWireBW > l.IntraWireBW) {
		t.Error("intra-node wire ordering violated")
	}
}

func TestSupportsAndProfilePanics(t *testing.T) {
	l := LUMI()
	if l.Supports(LibGPUSHMEM, APIHost) {
		t.Error("LUMI should not support GPUSHMEM")
	}
	if !l.Supports(LibGPUCCL, APIHost) {
		t.Error("LUMI supports RCCL")
	}
	defer func() {
		if recover() == nil {
			t.Error("Profile for unsupported combination should panic")
		}
	}()
	l.Profile(LibGPUSHMEM, APIDevice)
}

func TestCostMonotoneInSize(t *testing.T) {
	m := Perlmutter()
	f := func(a, b uint32) bool {
		sa, sb := int64(a%(1<<24))+1, int64(b%(1<<24))+1
		if sa > sb {
			sa, sb = sb, sa
		}
		for _, path := range []fabric.Path{fabric.PathIntra, fabric.PathInter} {
			ca := m.Cost(LibMPI, APIHost, path, sa)
			cb := m.Cost(LibMPI, APIHost, path, sb)
			// Effective bandwidth grows with size (saturation curve).
			if cb.BytesPerSec < ca.BytesPerSec {
				return false
			}
			// Transfer time still grows with size.
			if ca.Duration(sa) > cb.Duration(sb) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEffectiveBandwidthBelowWire(t *testing.T) {
	for _, m := range All() {
		for lib := Lib(0); lib < numLibs; lib++ {
			for _, api := range []API{APIHost, APIDevice} {
				if !m.Supports(lib, api) {
					continue
				}
				for _, size := range []int64{64, 1 << 20, 1 << 28} {
					intra := m.Cost(lib, api, fabric.PathIntra, size)
					inter := m.Cost(lib, api, fabric.PathInter, size)
					if intra.BytesPerSec > m.IntraWireBW {
						t.Errorf("%s %v/%v: intra eff %f above wire", m.Name, lib, api, intra.BytesPerSec)
					}
					if inter.BytesPerSec > m.NICWireBW {
						t.Errorf("%s %v/%v: inter eff %f above wire", m.Name, lib, api, inter.BytesPerSec)
					}
				}
			}
		}
	}
}

func TestDeviceAPILowerLatency(t *testing.T) {
	// The defining property of device-initiated communication.
	for _, m := range []*Model{Perlmutter(), MareNostrum5()} {
		host := m.Profile(LibGPUSHMEM, APIHost)
		dev := m.Profile(LibGPUSHMEM, APIDevice)
		if dev.Intra.Alpha >= host.Intra.Alpha || dev.Inter.Alpha >= host.Inter.Alpha {
			t.Errorf("%s: device alpha not below host", m.Name)
		}
		if dev.LaunchOverhead != 0 {
			t.Errorf("%s: device API must have no launch overhead", m.Name)
		}
	}
}

func TestKernelTimeModels(t *testing.T) {
	m := Perlmutter()
	small := m.StencilKernelTime(1 << 16)
	big := m.StencilKernelTime(1 << 30)
	if small <= 0 || big <= small {
		t.Fatalf("stencil times %v %v", small, big)
	}
	// 1 GiB at ~1.2 TB/s effective ≈ 0.9 ms.
	if big < sim.Duration(500*sim.Microsecond) || big > sim.Duration(5*sim.Millisecond) {
		t.Fatalf("1GiB stencil sweep = %v, outside plausible range", big)
	}
	if m.SpMVKernelTime(1e6) <= 0 {
		t.Fatal("spmv time must be positive")
	}
}

func TestNodesFor(t *testing.T) {
	m := Perlmutter()
	cases := map[int]int{1: 1, 4: 1, 5: 2, 8: 2, 64: 16}
	for gpus, want := range cases {
		if got := m.NodesFor(gpus); got != want {
			t.Errorf("NodesFor(%d) = %d, want %d", gpus, got, want)
		}
	}
	l := LUMI()
	if l.NodesFor(64) != 8 {
		t.Errorf("LUMI 64 GCDs = %d nodes, want 8 (paper §VI-C)", l.NodesFor(64))
	}
}

func TestByName(t *testing.T) {
	if ByName("Perlmutter") == nil || ByName("LUMI") == nil || ByName("MareNostrum5") == nil {
		t.Fatal("known machines not found")
	}
	if ByName("Frontier") != nil {
		t.Fatal("unknown machine resolved")
	}
}

func TestStringers(t *testing.T) {
	if LibMPI.String() != "MPI" || LibGPUCCL.String() != "GPUCCL" || LibGPUSHMEM.String() != "GPUSHMEM" {
		t.Fatal("lib names")
	}
	if APIHost.String() != "Host" || APIDevice.String() != "Device" {
		t.Fatal("api names")
	}
}
