package machine

import (
	"sync"

	"repro/internal/fabric"
	"repro/internal/metrics"
)

// DefaultCostCacheCap bounds the memoization table. The working set of a
// steady-state cell is tiny — a handful of (path, size) pairs per collective
// — but a size-sweeping workload at thousands of ranks visits O(paths ×
// sizes) distinct keys, which an unbounded table would retain forever. The
// cap is generous enough that real cells never evict.
const DefaultCostCacheCap = 4096

// CostCache memoizes Model.Cost by exact (lib, api, path, bytes) key.
//
// Cost itself is a map probe plus floating-point curve evaluation; what makes
// it hot is repetition. Steady-state communication — a ring allreduce, a halo
// exchange, a sweep cell — resolves the same handful of (path, size) pairs
// for every message of every iteration, so after warm-up every lookup is one
// map probe. Keying on the exact byte count (not a size class) keeps cached
// results bit-identical to direct Cost calls: memoization must be invisible
// to virtual time.
//
// The table is bounded (DefaultCostCacheCap, adjustable via SetCap) with
// FIFO eviction: entries are evicted in insertion order, which is cheap,
// allocation-free on the hit path, and — like every cache policy here —
// invisible to virtual time, since an evicted entry is simply recomputed to
// the identical value. Lookups are mutex-guarded so the shard engines of a
// sharded run (core.Config.Shards) can share one cache; under sharding the
// hit/miss split depends on shard interleaving, but the values returned
// never do.
//
// The Model is shared across parallel sweep cells, which is exactly why the
// cache does NOT live on the Model: each cell's gpu.Cluster carries its own
// CostCache over the shared model.
type CostCache struct {
	mu    sync.Mutex
	m     *Model
	cache map[costKey]fabric.LinkCost
	order []costKey // insertion order; order[next:] are the live entries' eviction queue
	next  int
	cap   int

	hits, misses, evictions *metrics.Counter // nil when metrics are disabled
}

type costKey struct {
	lib   Lib
	api   API
	path  fabric.Path
	bytes int64
}

// NewCostCache creates an empty cache over the model with the default cap.
func NewCostCache(m *Model) *CostCache {
	return &CostCache{m: m, cache: make(map[costKey]fabric.LinkCost), cap: DefaultCostCacheCap}
}

// SetCap changes the entry bound, evicting oldest-first if the cache is
// already over it. A cap < 1 is clamped to 1.
func (c *CostCache) SetCap(n int) {
	if n < 1 {
		n = 1
	}
	c.mu.Lock()
	c.cap = n
	for len(c.cache) > c.cap {
		c.evictOldest()
	}
	c.mu.Unlock()
}

// SetMetrics installs hit/miss/eviction counters from the registry; nil
// disables collection (the default).
func (c *CostCache) SetMetrics(r *metrics.Registry) {
	c.hits = r.Counter("machine.costcache.hits")
	c.misses = r.Counter("machine.costcache.misses")
	c.evictions = r.Counter("machine.costcache.evictions")
}

// evictOldest removes the least-recently-inserted live entry. Called with
// the mutex held. Stale order entries (keys already evicted and re-inserted)
// cannot arise: a key is in order exactly once while cached, because Cost
// only appends on a true miss.
func (c *CostCache) evictOldest() {
	k := c.order[c.next]
	c.next++
	delete(c.cache, k)
	c.evictions.Inc()
	// Compact once the dead prefix dominates, so the queue does not grow
	// without bound across eviction churn.
	if c.next > len(c.order)/2 && c.next > 64 {
		c.order = append(c.order[:0], c.order[c.next:]...)
		c.next = 0
	}
}

// Cost returns m.Cost(lib, api, path, bytes), memoized.
func (c *CostCache) Cost(lib Lib, api API, path fabric.Path, bytes int64) fabric.LinkCost {
	k := costKey{lib, api, path, bytes}
	c.mu.Lock()
	if lc, ok := c.cache[k]; ok {
		c.hits.Inc()
		c.mu.Unlock()
		return lc
	}
	c.misses.Inc()
	lc := c.m.Cost(lib, api, path, bytes)
	if len(c.cache) >= c.cap {
		c.evictOldest()
	}
	c.cache[k] = lc
	c.order = append(c.order, k)
	c.mu.Unlock()
	return lc
}

// Len reports the number of cached entries.
func (c *CostCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.cache)
}

// Model returns the underlying machine model.
func (c *CostCache) Model() *Model { return c.m }
