package machine

import "repro/internal/fabric"

// CostCache memoizes Model.Cost by exact (lib, api, path, bytes) key.
//
// Cost itself is a map probe plus floating-point curve evaluation; what makes
// it hot is repetition. Steady-state communication — a ring allreduce, a halo
// exchange, a sweep cell — resolves the same handful of (path, size) pairs
// for every message of every iteration, so after warm-up every lookup is one
// map probe. Keying on the exact byte count (not a size class) keeps cached
// results bit-identical to direct Cost calls: memoization must be invisible
// to virtual time.
//
// A CostCache is single-threaded, like everything else a simulation cell
// owns. The Model is shared across parallel sweep cells, which is exactly why
// the cache does NOT live on the Model: each cell's gpu.Cluster carries its
// own CostCache over the shared model.
type CostCache struct {
	m     *Model
	cache map[costKey]fabric.LinkCost
}

type costKey struct {
	lib   Lib
	api   API
	path  fabric.Path
	bytes int64
}

// NewCostCache creates an empty cache over the model.
func NewCostCache(m *Model) *CostCache {
	return &CostCache{m: m, cache: make(map[costKey]fabric.LinkCost)}
}

// Cost returns m.Cost(lib, api, path, bytes), memoized.
func (c *CostCache) Cost(lib Lib, api API, path fabric.Path, bytes int64) fabric.LinkCost {
	k := costKey{lib, api, path, bytes}
	if lc, ok := c.cache[k]; ok {
		return lc
	}
	lc := c.m.Cost(lib, api, path, bytes)
	c.cache[k] = lc
	return lc
}

// Model returns the underlying machine model.
func (c *CostCache) Model() *Model { return c.m }
