package machine

import "repro/internal/sim"

// The three systems of Table I. Profile numbers are calibrated so that the
// paper's qualitative findings hold on the simulated fabric:
//
//   - GPU-aware MPI has the best host-initiated small-message latency but a
//     visible eager→rendezvous knee and mediocre large-message efficiency
//     intra-node.
//   - GPUCCL pays a fixed kernel-launch cost per (group of) operations, so
//     it loses badly at small messages but achieves the highest fraction of
//     wire bandwidth at large messages.
//   - GPUSHMEM's host API sits between the two; its device API removes the
//     launch/stack overhead entirely and has the lowest latency of all,
//     at a modest bandwidth discount (GPU threads drive the transfer).
//   - RCCL on LUMI is comparatively weak for small messages and strong for
//     large ones; LUMI has no GPUSHMEM (rocSHMEM immature, Table I).

// Perlmutter models a NERSC Perlmutter GPU node group: 4× NVIDIA A100
// (40 GB) per node, NVLink 3.0 intra-node, 4× Slingshot-11 200 Gb/s NICs,
// Cray MPICH, NCCL, NVSHMEM.
func Perlmutter() *Model {
	m := &Model{
		Name:        "Perlmutter",
		GPUsPerNode: 4,
		NICsPerNode: 4,
		IntraWireBW: 85e9, // achievable pairwise NVLink 3.0 stream
		NICWireBW:   25e9, // 200 Gb/s Slingshot 11
		GPU: GPUSpec{
			Name:         "A100-40GB",
			MemBW:        1555e9,
			MemEff:       0.78,
			Flops:        19.5e12,
			KernelLaunch: sim.Micros(5.5),
			LocalCopyBW:  1300e9,
		},
		HostOp:      sim.Nanos(180),
		HasGPUSHMEM: true,
		Uniconn:     defaultUniconnCosts(),
		profiles: map[profileKey]LibProfile{
			{LibMPI, APIHost}: {
				Intra:              Curve{Alpha: sim.Micros(2.4), EffPeak: 0.68, HalfSize: 96 << 10},
				Inter:              Curve{Alpha: sim.Micros(3.3), EffPeak: 0.90, HalfSize: 48 << 10},
				CallOverhead:       sim.Nanos(380),
				EagerMax:           8 << 10,
				RendezvousOverhead: sim.Micros(2.8),
				CollStagingBW:      12e9,
			},
			{LibGPUCCL, APIHost}: {
				Intra:          Curve{Alpha: sim.Micros(1.4), EffPeak: 0.93, HalfSize: 192 << 10},
				Inter:          Curve{Alpha: sim.Micros(4.2), EffPeak: 0.95, HalfSize: 96 << 10},
				CallOverhead:   sim.Nanos(300),
				LaunchOverhead: sim.Micros(8.7),
			},
			{LibGPUSHMEM, APIHost}: {
				Intra:          Curve{Alpha: sim.Micros(2.0), EffPeak: 0.84, HalfSize: 128 << 10},
				Inter:          Curve{Alpha: sim.Micros(3.0), EffPeak: 0.92, HalfSize: 64 << 10},
				CallOverhead:   sim.Nanos(320),
				LaunchOverhead: sim.Micros(6.0),
			},
			{LibGPUSHMEM, APIDevice}: {
				Intra:        Curve{Alpha: sim.Micros(1.1), EffPeak: 0.76, HalfSize: 128 << 10},
				Inter:        Curve{Alpha: sim.Micros(2.4), EffPeak: 0.88, HalfSize: 64 << 10},
				CallOverhead: sim.Nanos(40), // device-side instruction cost
			},
		},
	}
	return m
}

// LUMI models a LUMI-G node: 4× AMD MI250X, each exposing two Graphics
// Compute Dies that the ROCm stack treats as separate GPUs (8 logical GPUs
// per node, paper §VI-C), Infinity Fabric intra-node, 4× Slingshot-11 NICs
// (two GCDs share a NIC), Cray MPICH and RCCL; no GPUSHMEM.
func LUMI() *Model {
	m := &Model{
		Name:        "LUMI",
		GPUsPerNode: 8, // GCDs
		NICsPerNode: 4,
		IntraWireBW: 45e9, // single Infinity Fabric link pair between GCDs
		NICWireBW:   25e9,
		GPU: GPUSpec{
			Name:         "MI250X-GCD",
			MemBW:        1600e9,
			MemEff:       0.72,
			Flops:        23.9e12,
			KernelLaunch: sim.Micros(6.5),
			LocalCopyBW:  1200e9,
		},
		HostOp:      sim.Nanos(200),
		HasGPUSHMEM: false,
		Uniconn:     defaultUniconnCosts(),
		profiles: map[profileKey]LibProfile{
			{LibMPI, APIHost}: {
				Intra:              Curve{Alpha: sim.Micros(2.9), EffPeak: 0.62, HalfSize: 128 << 10},
				Inter:              Curve{Alpha: sim.Micros(3.6), EffPeak: 0.88, HalfSize: 64 << 10},
				CallOverhead:       sim.Nanos(420),
				EagerMax:           8 << 10,
				RendezvousOverhead: sim.Micros(3.4),
				CollStagingBW:      10e9,
			},
			{LibGPUCCL, APIHost}: { // RCCL: weak small, strong large (paper §VII)
				Intra:          Curve{Alpha: sim.Micros(2.3), EffPeak: 0.91, HalfSize: 256 << 10},
				Inter:          Curve{Alpha: sim.Micros(6.5), EffPeak: 0.93, HalfSize: 128 << 10},
				CallOverhead:   sim.Nanos(340),
				LaunchOverhead: sim.Micros(11.0),
			},
		},
	}
	return m
}

// MareNostrum5 models a MareNostrum5 ACC node: 4× NVIDIA H100 (64 GB),
// NVLink 4.0 intra-node, 4× NDR InfiniBand 200 Gb/s NICs, OpenMPI, NCCL,
// NVSHMEM.
func MareNostrum5() *Model {
	m := &Model{
		Name:        "MareNostrum5",
		GPUsPerNode: 4,
		NICsPerNode: 4,
		IntraWireBW: 130e9, // NVLink 4.0 pairwise
		NICWireBW:   25e9,  // 200 Gb/s NDR
		GPU: GPUSpec{
			Name:         "H100-64GB",
			MemBW:        3350e9,
			MemEff:       0.80,
			Flops:        66.9e12,
			KernelLaunch: sim.Micros(5.0),
			LocalCopyBW:  2800e9,
		},
		HostOp:      sim.Nanos(170),
		HasGPUSHMEM: true,
		Uniconn:     defaultUniconnCosts(),
		profiles: map[profileKey]LibProfile{
			{LibMPI, APIHost}: { // OpenMPI/UCX: good latency, weaker large intra
				Intra:              Curve{Alpha: sim.Micros(2.1), EffPeak: 0.60, HalfSize: 128 << 10},
				Inter:              Curve{Alpha: sim.Micros(2.9), EffPeak: 0.91, HalfSize: 48 << 10},
				CallOverhead:       sim.Nanos(350),
				EagerMax:           8 << 10,
				RendezvousOverhead: sim.Micros(2.5),
				CollStagingBW:      13e9,
			},
			{LibGPUCCL, APIHost}: {
				Intra:          Curve{Alpha: sim.Micros(1.3), EffPeak: 0.94, HalfSize: 256 << 10},
				Inter:          Curve{Alpha: sim.Micros(4.0), EffPeak: 0.95, HalfSize: 96 << 10},
				CallOverhead:   sim.Nanos(290),
				LaunchOverhead: sim.Micros(8.0),
			},
			{LibGPUSHMEM, APIHost}: {
				Intra:          Curve{Alpha: sim.Micros(1.8), EffPeak: 0.82, HalfSize: 192 << 10},
				Inter:          Curve{Alpha: sim.Micros(2.7), EffPeak: 0.93, HalfSize: 64 << 10},
				CallOverhead:   sim.Nanos(310),
				LaunchOverhead: sim.Micros(5.5),
			},
			{LibGPUSHMEM, APIDevice}: {
				Intra:        Curve{Alpha: sim.Micros(1.0), EffPeak: 0.74, HalfSize: 192 << 10},
				Inter:        Curve{Alpha: sim.Micros(2.2), EffPeak: 0.90, HalfSize: 64 << 10},
				CallOverhead: sim.Nanos(40),
			},
		},
	}
	return m
}

func defaultUniconnCosts() UniconnCosts {
	return UniconnCosts{
		Dispatch:        sim.Nanos(70),
		StreamQuery:     sim.Nanos(260),
		SmallAckPenalty: sim.Nanos(110),
		SmallAckMax:     8 << 10,
		DeviceInline:    sim.Nanos(1),
	}
}

// All returns the three paper machines, in Table I order.
func All() []*Model {
	return []*Model{Perlmutter(), LUMI(), MareNostrum5()}
}

// ByName looks a machine up case-sensitively; it returns nil if unknown.
func ByName(name string) *Model {
	for _, m := range All() {
		if m.Name == name {
			return m
		}
	}
	return nil
}
