package faults

// Deterministic randomness for fault plans. Every draw comes from a
// splitmix64 stream keyed by (seed, site): the same seed and site name
// always yield the same sequence, independent of the order in which other
// sites draw, and never of wall clock. This is what makes generated fault
// scenarios reproducible bit-for-bit across runs and platforms.

// Rand is a splitmix64 PRNG bound to one fault site.
type Rand struct {
	state uint64
}

// NewRand returns the stream for one (seed, site) pair. The site string is
// folded into the seed with an FNV-1a hash so distinct sites decorrelate
// even under adjacent seeds.
func NewRand(seed uint64, site string) *Rand {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(site); i++ {
		h ^= uint64(site[i])
		h *= fnvPrime
	}
	r := &Rand{state: seed ^ h}
	// One warm-up step so seed 0 with short sites still mixes.
	r.Uint64()
	return r
}

// Uint64 advances the stream (splitmix64 finalizer).
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 draws uniformly from [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn draws uniformly from [0, n). n must be positive.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("faults: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Between draws uniformly from [lo, hi).
func (r *Rand) Between(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}
