package faults

// Deterministic randomness for fault plans. Every draw comes from a
// splitmix64 stream keyed by (seed, site): the same seed and site name
// always yield the same sequence, independent of the order in which other
// sites draw, and never of wall clock. This is what makes generated fault
// scenarios reproducible bit-for-bit across runs and platforms.

import "math/bits"

// Rand is a splitmix64 PRNG bound to one fault site.
type Rand struct {
	state uint64
}

// NewRand returns the stream for one (seed, site) pair. The site string is
// folded into the seed with an FNV-1a hash so distinct sites decorrelate
// even under adjacent seeds.
func NewRand(seed uint64, site string) *Rand {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(site); i++ {
		h ^= uint64(site[i])
		h *= fnvPrime
	}
	r := &Rand{state: seed ^ h}
	// One warm-up step so seed 0 with short sites still mixes.
	r.Uint64()
	return r
}

// Uint64 advances the stream (splitmix64 finalizer).
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 draws uniformly from [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn draws uniformly from [0, n). n must be positive.
//
// Lemire's multiply-shift method with rejection: the raw 64-bit draw is
// mapped onto [0, n) via the high word of a 128-bit product, and draws
// landing in the biased low fringe (fewer than 2^64 mod n per residue) are
// rejected and retried. Unlike the previous `Uint64() % n`, every residue is
// exactly equally likely. Callers that depended on the old draw sequence
// bump their site string (e.g. "slowrank" -> "slowrank/v2") so generated
// plans stay version-stamped rather than silently shifting.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("faults: Intn with non-positive bound")
	}
	un := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), un)
	if lo < un {
		// threshold = 2^64 mod n; products with lo below it are the
		// overrepresented fringe and must be redrawn.
		threshold := -un % un
		for lo < threshold {
			hi, lo = bits.Mul64(r.Uint64(), un)
		}
	}
	return int(hi)
}

// Between draws uniformly from [lo, hi).
func (r *Rand) Between(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}
