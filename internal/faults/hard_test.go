package faults

import (
	"reflect"
	"testing"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// Intn must be unbiased: with the Lemire rejection sampler every residue of
// a non-power-of-two bound is equally likely. A chi-square-style tolerance
// check over many draws catches both the old modulo bias and a broken
// rejection threshold.
func TestIntnDistributionUniform(t *testing.T) {
	const n, draws = 13, 13 * 20000
	r := NewRand(7, "distribution")
	var buckets [n]int
	for i := 0; i < draws; i++ {
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(%d) = %d out of range", n, v)
		}
		buckets[v]++
	}
	exp := draws / n
	for v, c := range buckets {
		if c < exp*95/100 || c > exp*105/100 {
			t.Errorf("bucket %d: %d draws, expected ~%d (+-5%%)", v, c, exp)
		}
	}
}

// Intn(1) must not loop or draw unbounded retries, and power-of-two bounds
// have no rejection fringe.
func TestIntnEdgeBounds(t *testing.T) {
	r := NewRand(1, "edges")
	for i := 0; i < 100; i++ {
		if v := r.Intn(1); v != 0 {
			t.Fatalf("Intn(1) = %d", v)
		}
		if v := r.Intn(8); v < 0 || v >= 8 {
			t.Fatalf("Intn(8) = %d", v)
		}
	}
}

func hardCfg() fabric.Config { return fabric.Config{Nodes: 2, GPUsPerNode: 4, NICsPerNode: 4} }

// GenerateHard is deterministic, equals Generate (plus lease) below the
// crash threshold, and adds crashes/link-downs at the severity gates.
func TestGenerateHardThresholdsAndDeterminism(t *testing.T) {
	cfg := hardCfg()
	horizon := 10 * sim.Millisecond

	a := GenerateHard(42, 1, cfg, horizon)
	b := GenerateHard(42, 1, cfg, horizon)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("GenerateHard not deterministic for identical inputs")
	}

	soft := GenerateHard(42, 0.25, cfg, horizon)
	if len(soft.Crashes) != 0 || len(soft.LinkDowns) != 0 {
		t.Fatalf("severity 0.25 has hard faults: %+v", soft)
	}
	if soft.Lease != DefaultLease {
		t.Fatalf("lease = %v, want DefaultLease", soft.Lease)
	}

	mid := GenerateHard(42, 0.5, cfg, horizon)
	if len(mid.Crashes) == 0 {
		t.Fatal("severity 0.5 generated no crashes")
	}
	if len(mid.LinkDowns) != 0 {
		t.Fatal("severity 0.5 generated link-downs below the 0.75 gate")
	}

	high := GenerateHard(42, 1, cfg, horizon)
	if len(high.LinkDowns) != 1 {
		t.Fatalf("severity 1 generated %d link-downs, want 1", len(high.LinkDowns))
	}

	nGPUs := cfg.Nodes * cfg.GPUsPerNode
	seen := map[int]bool{}
	for _, cr := range high.Crashes {
		if cr.Rank < 0 || cr.Rank >= nGPUs {
			t.Fatalf("crash rank %d out of range", cr.Rank)
		}
		if seen[cr.Rank] {
			t.Fatalf("rank %d crashed twice", cr.Rank)
		}
		seen[cr.Rank] = true
		if cr.At < sim.Time(float64(horizon)*0.1) || cr.At >= sim.Time(float64(horizon)*0.6) {
			t.Fatalf("crash time %v outside [0.1, 0.6) of horizon", cr.At)
		}
	}
	if len(high.Crashes) > nGPUs-1 {
		t.Fatal("crashes left no survivor")
	}

	ld := high.LinkDowns[0]
	if ld.Path != fabric.PathIntra || ld.Src == ld.Dst {
		t.Fatalf("bad link-down %+v", ld)
	}
	if ld.Src/cfg.GPUsPerNode != ld.Dst/cfg.GPUsPerNode {
		t.Fatalf("link-down %+v crosses nodes; want intra-node pair", ld)
	}
}

// ApplyHardFaults installs link-downs on the fabric; crashes are left to
// the core scheduler.
func TestApplyHardFaults(t *testing.T) {
	cfg := hardCfg()
	f := fabric.New(cfg)
	p := &Plan{LinkDowns: []LinkDown{{Src: 0, Dst: 1, Path: fabric.PathIntra, At: 100}}}
	p.ApplyHardFaults(f)
	if !f.LinkDownAt(100, 0, 1, fabric.PathIntra) {
		t.Fatal("link-down not installed")
	}
	if f.LinkDownAt(99, 0, 1, fabric.PathIntra) {
		t.Fatal("link down before its down time")
	}
	if !p.HasHardFaults() || p.Empty() {
		t.Fatal("hard-fault plan misreported as empty")
	}
}

// TestGeneratedTopologyFaultGates pins the switched-topology gates of
// GenerateHard: a fat-tree with spare aggregations gets an aggregation crash
// from severity 0.5 and an edge-agg link down from 0.75; a >= 3-group
// dragonfly gets a dead global channel from 0.5; flat plans carry neither.
func TestGeneratedTopologyFaultGates(t *testing.T) {
	horizon := 10 * sim.Millisecond
	ftCfg := fabric.Config{Nodes: 8, GPUsPerNode: 4, NICsPerNode: 4,
		Topology: fabric.TopologyConfig{Kind: fabric.TopoFatTree}}
	dfCfg := fabric.Config{Nodes: 8, GPUsPerNode: 4, NICsPerNode: 4,
		Topology: fabric.TopologyConfig{Kind: fabric.TopoDragonfly,
			DragonflyHosts: 1, DragonflyRouters: 2, DragonflyGlobal: 2}}

	flat := GenerateHard(42, 1, hardCfg(), horizon)
	if len(flat.SwitchCrashes) != 0 || len(flat.InterLinkDowns) != 0 {
		t.Fatalf("flat plan has topology faults: %+v", flat)
	}
	ft := GenerateHard(42, 0.5, ftCfg, horizon)
	if len(ft.SwitchCrashes) != 1 || len(ft.InterLinkDowns) != 0 {
		t.Fatalf("fat-tree severity 0.5: %d switch crashes, %d inter-links; want 1, 0",
			len(ft.SwitchCrashes), len(ft.InterLinkDowns))
	}
	ftHigh := GenerateHard(42, 1, ftCfg, horizon)
	if len(ftHigh.SwitchCrashes) != 1 || len(ftHigh.InterLinkDowns) != 1 {
		t.Fatalf("fat-tree severity 1: %d switch crashes, %d inter-links; want 1, 1",
			len(ftHigh.SwitchCrashes), len(ftHigh.InterLinkDowns))
	}
	df := GenerateHard(42, 0.5, dfCfg, horizon)
	if len(df.SwitchCrashes) != 0 || len(df.InterLinkDowns) != 1 {
		t.Fatalf("dragonfly severity 0.5: %d switch crashes, %d inter-links; want 0, 1",
			len(df.SwitchCrashes), len(df.InterLinkDowns))
	}
}

// TestGeneratedPlansNeverPartition is the route-liveness property over seeded
// fault plans: whatever GenerateHard draws, every cross-node pair must keep a
// live route at every time — generated chaos degrades the fabric and forces
// detours, it never partitions. Also asserts the plans do force detours, so
// the property is not vacuous.
func TestGeneratedPlansNeverPartition(t *testing.T) {
	horizon := 10 * sim.Millisecond
	times := []sim.Time{0, sim.Time(horizon / 2), sim.Time(horizon), sim.Time(2 * horizon)}
	cfgs := []fabric.Config{
		{Nodes: 8, GPUsPerNode: 2, NICsPerNode: 2,
			Topology: fabric.TopologyConfig{Kind: fabric.TopoFatTree}}, // auto k=4
		{Nodes: 16, GPUsPerNode: 2, NICsPerNode: 2,
			Topology: fabric.TopologyConfig{Kind: fabric.TopoFatTree, FatTreeArity: 6}},
		{Nodes: 8, GPUsPerNode: 2, NICsPerNode: 2,
			Topology: fabric.TopologyConfig{Kind: fabric.TopoDragonfly,
				DragonflyHosts: 1, DragonflyRouters: 2, DragonflyGlobal: 2}}, // 4 groups
	}
	for _, cfg := range cfgs {
		detours := 0
		for seed := uint64(0); seed < 24; seed++ {
			for _, sev := range []float64{0.5, 0.75, 1} {
				plan := GenerateHard(seed, sev, cfg, horizon)
				f := fabric.New(cfg)
				plan.ApplyHardFaults(f)
				nGPUs := cfg.Nodes * cfg.GPUsPerNode
				for src := 0; src < nGPUs; src++ {
					for dst := 0; dst < nGPUs; dst++ {
						if src == dst {
							continue
						}
						for _, at := range times {
							extra, rerouted, err := f.InterExtraLatencyAt(src, dst, at)
							if err != nil {
								t.Fatalf("%s seed %d sev %g: pair %d->%d partitioned at %v: %v",
									cfg.Topology.Kind, seed, sev, src, dst, at, err)
							}
							if healthy := f.InterExtraLatency(src, dst); extra < healthy && !rerouted {
								t.Fatalf("%s seed %d sev %g: live extra %v under healthy %v without a detour",
									cfg.Topology.Kind, seed, sev, extra, healthy)
							}
							if rerouted {
								detours++
							}
						}
					}
				}
			}
		}
		if detours == 0 {
			t.Errorf("%s: no generated plan forced a detour — the liveness property is vacuous", cfg.Topology.Kind)
		}
	}
}

// ActiveLinks mirrors LinkCostAt's matching: the indices it reports are
// exactly the faults whose windows cover the transfer.
func TestActiveLinks(t *testing.T) {
	p := &Plan{Links: []LinkFault{
		{Src: Any, Dst: Any, Path: fabric.PathIntra, Window: Window{Start: 0, End: 100}},
		{Src: Any, Dst: Any, Path: fabric.PathIntra, Window: Window{Start: 200, End: 300}},
		{Src: Any, Dst: Any, Path: fabric.PathInter, Window: Always},
	}}
	if got := p.ActiveLinks(50, 0, 1, fabric.PathIntra); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("at 50: %v, want [0]", got)
	}
	if got := p.ActiveLinks(150, 0, 1, fabric.PathIntra); got != nil {
		t.Fatalf("at 150: %v, want none", got)
	}
	if got := p.ActiveLinks(250, 0, 1, fabric.PathIntra); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("at 250: %v, want [1]", got)
	}
	if got := p.ActiveLinks(250, 0, 4, fabric.PathInter); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("inter at 250: %v, want [2]", got)
	}
}
