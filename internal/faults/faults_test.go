package faults

import (
	"reflect"
	"testing"

	"repro/internal/fabric"
	"repro/internal/sim"
)

func TestRandDeterministicPerSite(t *testing.T) {
	a := NewRand(42, "link/inter")
	b := NewRand(42, "link/inter")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same (seed, site) diverged at draw %d", i)
		}
	}
	// Different sites (and different seeds) decorrelate.
	c := NewRand(42, "link/intra")
	d := NewRand(43, "link/inter")
	ref := NewRand(42, "link/inter")
	if c.Uint64() == ref.Uint64() {
		t.Fatal("site did not change the stream")
	}
	if d.Uint64() == NewRand(42, "link/inter").Uint64() {
		t.Fatal("seed did not change the stream")
	}
	for i := 0; i < 1000; i++ {
		f := a.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v outside [0,1)", f)
		}
		n := a.Intn(7)
		if n < 0 || n >= 7 {
			t.Fatalf("Intn(7) = %d", n)
		}
		v := a.Between(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Between(2,5) = %v", v)
		}
	}
}

func TestWindowContains(t *testing.T) {
	w := Window{Start: 100, End: 200}
	for _, c := range []struct {
		t  sim.Time
		in bool
	}{{99, false}, {100, true}, {199, true}, {200, false}} {
		if w.Contains(c.t) != c.in {
			t.Errorf("Contains(%v) = %v", c.t, !c.in)
		}
	}
	if !Always.Contains(0) || !Always.Contains(Forever-1) {
		t.Fatal("Always must span the whole run")
	}
}

func TestLinkCostAtMatchingAndComposition(t *testing.T) {
	p := &Plan{Links: []LinkFault{
		{Src: Any, Dst: Any, Path: fabric.PathInter, Window: Window{0, 1000},
			LatencyFactor: 2, BandwidthFactor: 0.5},
		{Src: 3, Dst: Any, Path: AnyPath, Window: Always, LatencyFactor: 3},
	}}
	base := fabric.LinkCost{Latency: 100, BytesPerSec: 1e9}

	// Inside the window, inter path, src 3: both faults compose.
	got := p.LinkCostAt(500, 3, 7, fabric.PathInter, base)
	if got.Latency != 600 || got.BytesPerSec != 5e8 {
		t.Fatalf("composed cost = %+v", got)
	}
	// Outside the window only the src-3 fault applies.
	got = p.LinkCostAt(1000, 3, 7, fabric.PathInter, base)
	if got.Latency != 300 || got.BytesPerSec != 1e9 {
		t.Fatalf("post-window cost = %+v", got)
	}
	// Non-matching src, intra path: untouched.
	got = p.LinkCostAt(500, 0, 1, fabric.PathIntra, base)
	if got != base {
		t.Fatalf("unmatched cost = %+v", got)
	}
	// Nil plan and zero factors are identity.
	if got := (*Plan)(nil).LinkCostAt(0, 0, 1, fabric.PathIntra, base); got != base {
		t.Fatalf("nil plan rewrote cost: %+v", got)
	}
	zero := &Plan{Links: []LinkFault{{Src: Any, Dst: Any, Path: AnyPath, Window: Always}}}
	if got := zero.LinkCostAt(0, 0, 1, fabric.PathIntra, base); got != base {
		t.Fatalf("zero factors rewrote cost: %+v", got)
	}
}

func TestComputeFactor(t *testing.T) {
	p := &Plan{SlowRanks: []SlowRank{
		{Rank: 2, Factor: 2, Window: Window{0, 1000}},
		{Rank: Any, Factor: 1.5, Window: Window{500, 2000}},
	}}
	if f := p.ComputeFactor(100, 2); f != 2 {
		t.Fatalf("factor = %v, want 2", f)
	}
	if f := p.ComputeFactor(600, 2); f != 3 {
		t.Fatalf("composed factor = %v, want 3", f)
	}
	if f := p.ComputeFactor(600, 0); f != 1.5 {
		t.Fatalf("wildcard factor = %v, want 1.5", f)
	}
	if f := p.ComputeFactor(3000, 2); f != 1 {
		t.Fatalf("expired factor = %v, want 1", f)
	}
	if f := (*Plan)(nil).ComputeFactor(0, 0); f != 1 {
		t.Fatalf("nil plan factor = %v", f)
	}
}

func TestApplyStallsWildcards(t *testing.T) {
	f := fabric.New(fabric.Config{Nodes: 2, GPUsPerNode: 2, NICsPerNode: 2})
	p := &Plan{Stalls: []PortStall{{Node: Any, NIC: Any, Window: Window{0, 1000}}}}
	p.ApplyStalls(f)
	cost := fabric.LinkCost{BytesPerSec: 1e9}
	// Every inter-node route is blocked until 1000.
	if end := f.Transfer(0, 0, 2, 1000, cost); end != 2000 {
		t.Fatalf("transfer ends at %v, want 2000", end)
	}
	// Intra-node traffic does not touch NICs and is unaffected.
	if end := f.Transfer(0, 0, 1, 1000, cost); end != 1000 {
		t.Fatalf("intra transfer ends at %v, want 1000", end)
	}
}

func TestDegradeRamp(t *testing.T) {
	if !Degrade(fabric.PathInter, 0).Empty() {
		t.Fatal("severity 0 must be an empty plan")
	}
	base := fabric.LinkCost{Latency: 1000, BytesPerSec: 1e9}
	prevLat := sim.Duration(0)
	prevBW := 2e9
	for _, sev := range []float64{0, 0.25, 0.5, 0.75, 1} {
		p := Degrade(fabric.PathInter, sev)
		c := p.LinkCostAt(0, 0, 1, fabric.PathInter, base)
		if c.Latency < prevLat || c.BytesPerSec > prevBW {
			t.Fatalf("ramp not monotone at severity %g: %+v", sev, c)
		}
		prevLat, prevBW = c.Latency, c.BytesPerSec
		// The degraded path is the only one touched.
		if got := p.LinkCostAt(0, 0, 1, fabric.PathIntra, base); got != base {
			t.Fatalf("severity %g degraded the intra path: %+v", sev, got)
		}
	}
}

func TestGenerateDeterministicAndSeverityZero(t *testing.T) {
	cfg := fabric.Config{Nodes: 2, GPUsPerNode: 2, NICsPerNode: 2}
	a := Generate(7, 0.6, cfg, sim.Second)
	b := Generate(7, 0.6, cfg, sim.Second)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different plans:\n%+v\n%+v", a, b)
	}
	if c := Generate(8, 0.6, cfg, sim.Second); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical plans")
	}
	if !Generate(7, 0, cfg, sim.Second).Empty() {
		t.Fatal("severity 0 must generate an empty plan")
	}
	if a.Empty() || len(a.Stalls) == 0 || len(a.SlowRanks) != 1 {
		t.Fatalf("generated plan underpopulated: %+v", a)
	}
	for _, lf := range a.Links {
		if lf.LatencyFactor < 1 || lf.BandwidthFactor > 1 || lf.BandwidthFactor <= 0 {
			t.Fatalf("generated link fault not degrading: %+v", lf)
		}
	}
	for _, st := range a.Stalls {
		if st.Window.End <= st.Window.Start {
			t.Fatalf("generated empty stall window: %+v", st)
		}
	}
}
