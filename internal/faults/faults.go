// Package faults is the deterministic fault-injection layer of the
// simulated cluster: it turns the perfectly healthy fabric into a scenario
// engine that can model degraded links, flapping NIC ports, and slow ranks,
// all in virtual time and bit-reproducibly.
//
// A Plan is a declarative fault scenario. Three fault kinds exist, each
// consumed by a different layer of the stack:
//
//   - LinkFault: per-path latency/bandwidth multipliers over virtual-time
//     windows, applied where the machine model's resolved fabric.LinkCost is
//     booked onto the fabric (fabric.Fabric.LinkFault hook) — all backends
//     (MPI, GPUCCL, GPUSHMEM) route every transfer through it.
//   - PortStall: windows during which a NIC port admits no new reservations
//     (sim.Timeline stall windows), modeling a flapping Slingshot port. The
//     MPI rendezvous protocol observes stalls and retries with backoff.
//   - SlowRank: per-rank compute multipliers, applied where internal/gpu
//     resolves modeled kernel time (gpu.Cluster.ComputeFault hook).
//
// Plans are either hand-written (Degrade composes a uniform severity ramp)
// or generated (Generate), in which case every random draw comes from a
// splitmix64 stream keyed by seed + fault site — never wall clock — so the
// same seed always yields the same scenario. core.Config.Faults installs a
// plan into a run.
package faults

import (
	"fmt"
	"math"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// Any matches every rank / node / NIC in a fault selector.
const Any = -1

// AnyPath matches every fabric path kind in a LinkFault.
const AnyPath fabric.Path = -1

// Forever is the open-ended end time for windows spanning the whole run.
// It is far beyond any realistic virtual time (~73 years) but leaves
// headroom below MaxInt64 so shifting an admission past the window and
// adding a transfer duration cannot overflow sim.Time.
const Forever = sim.Time(math.MaxInt64 / 4)

// Window is a half-open interval [Start, End) of virtual time.
type Window struct {
	Start, End sim.Time
}

// Always spans the whole simulation.
var Always = Window{Start: 0, End: Forever}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t sim.Time) bool { return t >= w.Start && t < w.End }

// LinkFault degrades transfers on matching routes during a window.
// Factors compose multiplicatively when several faults match; a zero factor
// means "leave unchanged" (so the zero value is harmless).
type LinkFault struct {
	// Src and Dst select global GPU ids (Any for wildcards).
	Src, Dst int
	// Path restricts the fault to one route kind (AnyPath for all).
	Path fabric.Path
	// Window is when the fault is active.
	Window Window
	// LatencyFactor multiplies the resolved per-message latency (>= 1
	// degrades; 0 or 1 leaves it unchanged).
	LatencyFactor float64
	// BandwidthFactor multiplies the resolved streaming bandwidth (in
	// (0, 1] degrades; 0 or 1 leaves it unchanged).
	BandwidthFactor float64
}

func (lf LinkFault) matches(at sim.Time, src, dst int, path fabric.Path) bool {
	if lf.Src != Any && lf.Src != src {
		return false
	}
	if lf.Dst != Any && lf.Dst != dst {
		return false
	}
	if lf.Path != AnyPath && lf.Path != path {
		return false
	}
	return lf.Window.Contains(at)
}

// PortStall blacks out NIC ports for a window: no new reservation is
// admitted while it is active (both directions of the port).
type PortStall struct {
	// Node selects the node (Any for all nodes).
	Node int
	// NIC selects the port on matched nodes (Any for all ports).
	NIC    int
	Window Window
}

// SlowRank multiplies the modeled compute time of kernels running on one
// rank's device during a window, modeling a thermally throttled or noisy
// GPU.
type SlowRank struct {
	// Rank selects the global rank/device (Any for all).
	Rank int
	// Factor multiplies kernel compute time (>= 1 degrades; 0 or 1 leaves
	// it unchanged).
	Factor float64
	Window Window
}

// Plan is one complete fault scenario. The zero value (and a nil *Plan)
// injects nothing.
type Plan struct {
	// Seed identifies the scenario; Generate derives all randomness from it.
	Seed uint64

	Links     []LinkFault
	Stalls    []PortStall
	SlowRanks []SlowRank

	// Hard (terminal) faults; see hard.go. Crashes kill ranks outright,
	// LinkDowns permanently fail routes (the fabric then reroutes onto its
	// failover path), SwitchCrashes and InterLinkDowns kill elements of the
	// switched inter-node topology (adaptive routing steers around them),
	// and Lease tunes the failure detector's heartbeat lease (0 means
	// DefaultLease).
	Crashes        []RankCrash
	LinkDowns      []LinkDown
	SwitchCrashes  []SwitchCrash
	InterLinkDowns []InterLinkDown
	Lease          sim.Duration

	// Watchdog, when positive, arms the engine's virtual-time watchdog:
	// a run whose clock would pass the deadline fails with a structured
	// sim.TimeoutError instead of creeping forward forever.
	Watchdog sim.Duration

	// Observe, when non-nil, is called by LinkCostAt for every transfer
	// with the indices (into Links) of the link faults active for it.
	// The cross-backend uniformity tests install it to assert that
	// different backends see the same fault windows for the same traffic
	// pattern; it never alters the cost.
	Observe func(at sim.Time, src, dst int, path fabric.Path, active []int)
}

// LinkCostAt applies the plan's matching link faults to a resolved cost.
// It has the fabric.LinkFaultFn signature and is installed as the fabric's
// LinkFault hook.
func (p *Plan) LinkCostAt(at sim.Time, src, dst int, path fabric.Path, cost fabric.LinkCost) fabric.LinkCost {
	if p == nil {
		return cost
	}
	if p.Observe != nil {
		p.Observe(at, src, dst, path, p.ActiveLinks(at, src, dst, path))
	}
	for _, lf := range p.Links {
		if !lf.matches(at, src, dst, path) {
			continue
		}
		if lf.LatencyFactor > 0 && lf.LatencyFactor != 1 {
			cost.Latency = sim.Duration(math.Round(float64(cost.Latency) * lf.LatencyFactor))
		}
		if lf.BandwidthFactor > 0 && lf.BandwidthFactor != 1 {
			cost.BytesPerSec *= lf.BandwidthFactor
		}
	}
	return cost
}

// ComputeFactor reports the compute-time multiplier for a kernel starting at
// the given time on the given rank (1 when healthy). It is installed as
// gpu.Cluster.ComputeFault.
func (p *Plan) ComputeFactor(at sim.Time, rank int) float64 {
	if p == nil {
		return 1
	}
	f := 1.0
	for _, sr := range p.SlowRanks {
		if sr.Rank != Any && sr.Rank != rank {
			continue
		}
		if !sr.Window.Contains(at) || sr.Factor <= 0 || sr.Factor == 1 {
			continue
		}
		f *= sr.Factor
	}
	return f
}

// ApplyStalls installs the plan's port stalls onto the fabric's NIC
// timelines. Call once per run, after the fabric is built.
func (p *Plan) ApplyStalls(f *fabric.Fabric) {
	if p == nil {
		return
	}
	cfg := f.Config()
	for _, st := range p.Stalls {
		nodes := []int{st.Node}
		if st.Node == Any {
			nodes = nodes[:0]
			for n := 0; n < cfg.Nodes; n++ {
				nodes = append(nodes, n)
			}
		}
		for _, node := range nodes {
			nics := []int{st.NIC}
			if st.NIC == Any {
				nics = nics[:0]
				for i := 0; i < cfg.NICsPerNode; i++ {
					nics = append(nics, i)
				}
			}
			for _, nic := range nics {
				f.StallNIC(node, nic, st.Window.Start, st.Window.End)
			}
		}
	}
}

// Empty reports whether the plan injects nothing (watchdog aside).
func (p *Plan) Empty() bool {
	return p == nil || (len(p.Links) == 0 && len(p.Stalls) == 0 && len(p.SlowRanks) == 0 &&
		len(p.Crashes) == 0 && len(p.LinkDowns) == 0 &&
		len(p.SwitchCrashes) == 0 && len(p.InterLinkDowns) == 0)
}

// ActiveLinks reports the indices (into p.Links) of the link faults matching
// one transfer, in declaration order. It is the observability counterpart of
// LinkCostAt: the cross-backend uniformity tests use it to assert that
// different backends observe the same set of fault windows for the same
// traffic pattern.
func (p *Plan) ActiveLinks(at sim.Time, src, dst int, path fabric.Path) []int {
	if p == nil {
		return nil
	}
	var idx []int
	for i, lf := range p.Links {
		if lf.matches(at, src, dst, path) {
			idx = append(idx, i)
		}
	}
	return idx
}

// Degrade builds the canonical severity ramp: a plan that uniformly
// degrades the given path kind for the whole run, with latency multiplied
// by 1+4*severity and bandwidth divided by 1+4*severity. Severity 0 returns
// an empty (fault-free) plan; the ramp is monotone in severity by
// construction, which the chaos suite relies on.
func Degrade(path fabric.Path, severity float64) *Plan {
	if severity <= 0 {
		return &Plan{}
	}
	k := 1 + 4*severity
	return &Plan{
		Links: []LinkFault{{
			Src: Any, Dst: Any, Path: path, Window: Always,
			LatencyFactor:   k,
			BandwidthFactor: 1 / k,
		}},
	}
}

// Generate derives a randomized scenario of the given severity (in [0, 1])
// for a cluster of the given shape, over a horizon of virtual time:
// degraded intra- and inter-node paths, flapping NIC ports, and one or more
// slow ranks, all scaled by severity. Identical (seed, severity, cfg,
// horizon) inputs yield identical plans; severity <= 0 yields an empty
// plan.
func Generate(seed uint64, severity float64, cfg fabric.Config, horizon sim.Duration) *Plan {
	p := &Plan{Seed: seed}
	if severity <= 0 {
		return p
	}
	if severity > 1 {
		severity = 1
	}

	// Link degradation: one fault per path kind, factors scaled by severity
	// with a site-keyed jitter.
	for _, path := range []fabric.Path{fabric.PathIntra, fabric.PathInter} {
		r := NewRand(seed, "link/"+path.String())
		k := 1 + 3*severity*r.Between(0.5, 1)
		p.Links = append(p.Links, LinkFault{
			Src: Any, Dst: Any, Path: path, Window: Always,
			LatencyFactor:   k,
			BandwidthFactor: 1 / (1 + 4*severity*r.Between(0.5, 1)),
		})
	}

	// Flapping NIC ports: each port draws its own window schedule.
	flaps := int(math.Ceil(severity * 3))
	for node := 0; node < cfg.Nodes; node++ {
		for nic := 0; nic < cfg.NICsPerNode; nic++ {
			r := NewRand(seed, fmt.Sprintf("stall/node%d/nic%d", node, nic))
			for i := 0; i < flaps; i++ {
				start := sim.Time(r.Between(0, 0.9) * float64(horizon))
				dur := sim.Duration(severity * r.Between(0.01, 0.05) * float64(horizon))
				p.Stalls = append(p.Stalls, PortStall{
					Node: node, NIC: nic,
					Window: Window{Start: start, End: start.Add(dur)},
				})
			}
		}
	}

	// One slow rank, chosen by the seed. Site bumped to /v2 when Intn
	// switched to unbiased (Lemire) sampling, so the plan change is explicit.
	nGPUs := cfg.Nodes * cfg.GPUsPerNode
	r := NewRand(seed, "slowrank/v2")
	p.SlowRanks = append(p.SlowRanks, SlowRank{
		Rank:   r.Intn(nGPUs),
		Factor: 1 + 2*severity*r.Between(0.5, 1),
		Window: Always,
	})
	return p
}
