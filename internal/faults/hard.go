package faults

// Hard (terminal) faults: rank crashes and permanently dead links. Unlike
// the soft faults in faults.go, which degrade cost and are survivable by
// waiting, hard faults remove capacity for good. They are consumed by two
// layers:
//
//   - internal/core schedules each RankCrash (killing the rank's host
//     process and its GPU streams) and runs the heartbeat failure detector
//     that converts the crash into a sim.RankFailedError delivered to every
//     blocked survivor once the lease expires.
//   - fabric.Fabric consumes LinkDowns (via ApplyHardFaults): a dead route
//     stops admitting transfers and traffic fails over onto the degraded
//     fallback path instead of deadlocking.

import (
	"math"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// RankCrash kills one rank at a virtual time: its host process and GPU
// streams stop dead, without any goodbye message. Peers only learn of it
// through the failure detector.
type RankCrash struct {
	Rank int
	At   sim.Time
}

// LinkDown permanently fails matching routes from a virtual time on. Src
// and Dst are global GPU ids (Any for wildcards); Path selects the route
// kind. The fabric redirects affected traffic onto its failover path.
type LinkDown struct {
	Src, Dst int
	Path     fabric.Path
	At       sim.Time
}

// SwitchCrash kills one switch of the inter-node topology at a virtual time:
// a fat-tree edge/aggregation/core switch or a dragonfly router (see the
// switch-id numbering in fabric/topofault.go). Adaptive routing steers
// surviving traffic around the dead element; only a crash exhausting the
// topology's path diversity — e.g. an edge switch, which is its nodes' sole
// uplink — partitions nodes, surfaced as fabric.UnreachableError.
type SwitchCrash struct {
	Switch int
	At     sim.Time
}

// InterLinkDown permanently fails the link between two adjacent switches of
// the inter-node topology at a virtual time: a fat-tree edge-aggregation or
// aggregation-core pair, or two dragonfly routers (same group: their local
// link; different groups: the single global channel between the groups).
type InterLinkDown struct {
	A, B int
	At   sim.Time
}

// DefaultLease is the failure detector's heartbeat lease when a plan leaves
// Lease zero. Ranks heartbeat every DefaultLease/2 of virtual time; a crash
// at time t is declared one full lease after its last delivered heartbeat,
// so detection latency is in [lease/2, lease).
const DefaultLease = sim.Millisecond

// ApplyHardFaults installs the plan's dead links, crashed switches, and dead
// inter-switch links onto the fabric. Call once per run, after the fabric is
// built and before it starts (rank crashes are scheduled by internal/core,
// not here).
func (p *Plan) ApplyHardFaults(f *fabric.Fabric) {
	if p == nil {
		return
	}
	for _, ld := range p.LinkDowns {
		f.DownLink(ld.Src, ld.Dst, ld.Path, ld.At)
	}
	for _, sc := range p.SwitchCrashes {
		f.CrashSwitch(sc.Switch, sc.At)
	}
	for _, il := range p.InterLinkDowns {
		f.DownInterLink(il.A, il.B, il.At)
	}
}

// HasHardFaults reports whether the plan contains terminal faults.
func (p *Plan) HasHardFaults() bool {
	return p != nil && (len(p.Crashes) > 0 || len(p.LinkDowns) > 0 ||
		len(p.SwitchCrashes) > 0 || len(p.InterLinkDowns) > 0)
}

// GenerateHard extends Generate with terminal faults for recovery-aware
// chaos runs. Severity thresholds gate the hard-fault kinds:
//
//   - severity >= 0.5: rank crashes — ceil(severity * nGPUs / 4) distinct
//     ranks (always leaving at least one survivor) die at times drawn from
//     [0.1, 0.6) of the horizon, mid-run so collectives are in flight.
//   - severity >= 0.75: one intra-node route additionally goes down for
//     good, exercising the failover path on the survivors.
//
// On a switched topology (cfg.Topology) the crash gate also kills one
// redundant fabric element, so recovery always composes with rerouting:
//
//   - fat-tree with spare aggregations (k >= 4): one aggregation switch of a
//     node-hosting pod crashes; at severity >= 0.75 one edge-aggregation
//     link of a different pod additionally dies. Edge switches are never
//     targeted (a dead edge partitions its nodes).
//   - dragonfly with a Valiant escape (>= 3 groups): the global channel
//     between two node-hosting groups dies. Routers are never targeted
//     (a dead router partitions its nodes).
//
// Below 0.5 the result equals Generate plus the default lease. All draws
// are site-keyed ("crash/v1", "linkdown/v1", "switchcrash/v1",
// "interlink/v1"), so hard faults do not perturb the soft-fault scenario for
// the same seed, and flat-topology plans are byte-identical to what this
// function generated before topologies existed.
func GenerateHard(seed uint64, severity float64, cfg fabric.Config, horizon sim.Duration) *Plan {
	p := Generate(seed, severity, cfg, horizon)
	p.Lease = DefaultLease
	if severity < 0.5 {
		return p
	}
	if severity > 1 {
		severity = 1
	}
	nGPUs := cfg.Nodes * cfg.GPUsPerNode
	if nGPUs >= 2 {
		r := NewRand(seed, "crash/v1")
		n := int(math.Ceil(severity * float64(nGPUs) / 4))
		if n > nGPUs-1 {
			n = nGPUs - 1
		}
		picked := make(map[int]bool, n)
		for len(picked) < n {
			rank := r.Intn(nGPUs)
			if picked[rank] {
				continue
			}
			picked[rank] = true
			at := sim.Time(r.Between(0.1, 0.6) * float64(horizon))
			p.Crashes = append(p.Crashes, RankCrash{Rank: rank, At: at})
		}
	}
	if severity >= 0.75 && cfg.GPUsPerNode >= 2 {
		r := NewRand(seed, "linkdown/v1")
		node := r.Intn(cfg.Nodes)
		a := r.Intn(cfg.GPUsPerNode)
		b := r.Intn(cfg.GPUsPerNode - 1)
		if b >= a {
			b++
		}
		p.LinkDowns = append(p.LinkDowns, LinkDown{
			Src:  node*cfg.GPUsPerNode + a,
			Dst:  node*cfg.GPUsPerNode + b,
			Path: fabric.PathIntra,
			At:   sim.Time(r.Between(0.1, 0.5) * float64(horizon)),
		})
	}
	generateTopologyFaults(p, seed, severity, cfg, horizon)
	return p
}

// generateTopologyFaults adds the switched-topology hard faults of
// GenerateHard (severity >= 0.5). Only elements adaptive routing can steer
// around are targeted, so generated plans degrade the fabric but never
// partition it — injected chaos must exercise rerouting and recovery, not
// undefined unreachable-pair behavior.
func generateTopologyFaults(p *Plan, seed uint64, severity float64, cfg fabric.Config, horizon sim.Duration) {
	tc := fabric.ResolveTopology(cfg.Topology, cfg.Nodes)
	switch tc.Kind {
	case fabric.TopoFatTree:
		k := tc.FatTreeArity
		if k < 4 {
			// k=2 pods hold one aggregation each: no redundancy to reroute
			// onto, so a crash would partition cross-edge traffic.
			return
		}
		half := k / 2
		usedPods := (cfg.Nodes + half*half - 1) / (half * half)
		r := NewRand(seed, "switchcrash/v1")
		crashPod, crashPos := r.Intn(usedPods), r.Intn(half)
		p.SwitchCrashes = append(p.SwitchCrashes, SwitchCrash{
			Switch: fabric.FatTreeAggSwitch(k, crashPod, crashPos),
			At:     sim.Time(r.Between(0.1, 0.5) * float64(horizon)),
		})
		if severity >= 0.75 && usedPods >= 2 {
			// Additionally kill one edge->aggregation link in a pod other
			// than the crashed aggregation's, at the SAME aggregation
			// position: cross-pod routes climb through one position end to
			// end, so a crash at position x in one pod and a dead link at
			// position y != x in another would block both of a k=4 tree's
			// positions for pairs spanning them — a partition, not a detour.
			// Reusing the position keeps every pair's diversity >= 1.
			r2 := NewRand(seed, "interlink/v1")
			usedEdges := (cfg.Nodes + half - 1) / half
			edge := r2.Intn(usedEdges)
			for edge/half == crashPod {
				edge = (edge + 1) % usedEdges
			}
			p.InterLinkDowns = append(p.InterLinkDowns, InterLinkDown{
				A:  edge,
				B:  fabric.FatTreeAggSwitch(k, edge/half, crashPos),
				At: sim.Time(r2.Between(0.1, 0.5) * float64(horizon)),
			})
		}
	case fabric.TopoDragonfly:
		a, hosts := tc.DragonflyRouters, tc.DragonflyHosts
		groups := (cfg.Nodes + a*hosts - 1) / (a * hosts)
		if groups < 3 {
			// Minimal routing is the only route between two groups: a dead
			// global channel needs a third group for the Valiant escape.
			return
		}
		r := NewRand(seed, "interlink/v1")
		g1 := r.Intn(groups)
		g2 := r.Intn(groups - 1)
		if g2 >= g1 {
			g2++
		}
		// The first router of each group names the groups; the fabric downs
		// the single palmtree global channel between them.
		p.InterLinkDowns = append(p.InterLinkDowns, InterLinkDown{
			A:  g1 * a,
			B:  g2 * a,
			At: sim.Time(r.Between(0.1, 0.5) * float64(horizon)),
		})
	}
}
