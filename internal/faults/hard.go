package faults

// Hard (terminal) faults: rank crashes and permanently dead links. Unlike
// the soft faults in faults.go, which degrade cost and are survivable by
// waiting, hard faults remove capacity for good. They are consumed by two
// layers:
//
//   - internal/core schedules each RankCrash (killing the rank's host
//     process and its GPU streams) and runs the heartbeat failure detector
//     that converts the crash into a sim.RankFailedError delivered to every
//     blocked survivor once the lease expires.
//   - fabric.Fabric consumes LinkDowns (via ApplyHardFaults): a dead route
//     stops admitting transfers and traffic fails over onto the degraded
//     fallback path instead of deadlocking.

import (
	"math"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// RankCrash kills one rank at a virtual time: its host process and GPU
// streams stop dead, without any goodbye message. Peers only learn of it
// through the failure detector.
type RankCrash struct {
	Rank int
	At   sim.Time
}

// LinkDown permanently fails matching routes from a virtual time on. Src
// and Dst are global GPU ids (Any for wildcards); Path selects the route
// kind. The fabric redirects affected traffic onto its failover path.
type LinkDown struct {
	Src, Dst int
	Path     fabric.Path
	At       sim.Time
}

// DefaultLease is the failure detector's heartbeat lease when a plan leaves
// Lease zero. Ranks heartbeat every DefaultLease/2 of virtual time; a crash
// at time t is declared one full lease after its last delivered heartbeat,
// so detection latency is in [lease/2, lease).
const DefaultLease = sim.Millisecond

// ApplyHardFaults installs the plan's dead links onto the fabric. Call once
// per run, after the fabric is built (rank crashes are scheduled by
// internal/core, not here).
func (p *Plan) ApplyHardFaults(f *fabric.Fabric) {
	if p == nil {
		return
	}
	for _, ld := range p.LinkDowns {
		f.DownLink(ld.Src, ld.Dst, ld.Path, ld.At)
	}
}

// HasHardFaults reports whether the plan contains terminal faults.
func (p *Plan) HasHardFaults() bool {
	return p != nil && (len(p.Crashes) > 0 || len(p.LinkDowns) > 0)
}

// GenerateHard extends Generate with terminal faults for recovery-aware
// chaos runs. Severity thresholds gate the hard-fault kinds:
//
//   - severity >= 0.5: rank crashes — ceil(severity * nGPUs / 4) distinct
//     ranks (always leaving at least one survivor) die at times drawn from
//     [0.1, 0.6) of the horizon, mid-run so collectives are in flight.
//   - severity >= 0.75: one intra-node route additionally goes down for
//     good, exercising the failover path on the survivors.
//
// Below 0.5 the result equals Generate plus the default lease. All draws
// are site-keyed ("crash/v1", "linkdown/v1"), so hard faults do not perturb
// the soft-fault scenario for the same seed.
func GenerateHard(seed uint64, severity float64, cfg fabric.Config, horizon sim.Duration) *Plan {
	p := Generate(seed, severity, cfg, horizon)
	p.Lease = DefaultLease
	if severity < 0.5 {
		return p
	}
	if severity > 1 {
		severity = 1
	}
	nGPUs := cfg.Nodes * cfg.GPUsPerNode
	if nGPUs >= 2 {
		r := NewRand(seed, "crash/v1")
		n := int(math.Ceil(severity * float64(nGPUs) / 4))
		if n > nGPUs-1 {
			n = nGPUs - 1
		}
		picked := make(map[int]bool, n)
		for len(picked) < n {
			rank := r.Intn(nGPUs)
			if picked[rank] {
				continue
			}
			picked[rank] = true
			at := sim.Time(r.Between(0.1, 0.6) * float64(horizon))
			p.Crashes = append(p.Crashes, RankCrash{Rank: rank, At: at})
		}
	}
	if severity >= 0.75 && cfg.GPUsPerNode >= 2 {
		r := NewRand(seed, "linkdown/v1")
		node := r.Intn(cfg.Nodes)
		a := r.Intn(cfg.GPUsPerNode)
		b := r.Intn(cfg.GPUsPerNode - 1)
		if b >= a {
			b++
		}
		p.LinkDowns = append(p.LinkDowns, LinkDown{
			Src:  node*cfg.GPUsPerNode + a,
			Dst:  node*cfg.GPUsPerNode + b,
			Path: fabric.PathIntra,
			At:   sim.Time(r.Between(0.1, 0.5) * float64(horizon)),
		})
	}
	return p
}
