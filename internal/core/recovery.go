package core

// Hard-fault scheduling and the heartbeat failure detector.
//
// Each rank is modeled as heartbeating every lease/2 of virtual time; a
// monitor declares the rank failed when a full lease elapses after its last
// heartbeat. A rank crashing at time t therefore has
//
//	lastHB   = floor((t-1) / (lease/2)) * lease/2   (a heartbeat at the
//	                                                 crash instant is lost)
//	detectAt = lastHB + lease
//
// which bounds detection latency to [lease/2, lease): a crash just after a
// heartbeat waits out the full lease, one just before the next heartbeat is
// caught half a lease sooner. At detectAt the
// detector records a sim.RankFailedError and interrupts every live process:
// survivors blocked inside collectives or P2P waits get the typed error
// delivered at their park (instead of waiting forever on the dead rank),
// and busy survivors get it at their next blocking operation. The crash
// itself kills the rank's host process and its GPU streams instantly and
// silently — peers only ever learn of it through the detector.
//
// The whole timetable — who crashes, when, and when each crash is declared —
// is a pure function of the fault plan, precomputed at launch into a
// failureSchedule. That makes every failure-state query (epoch, failed set,
// last failure) a pure function of (schedule, virtual time) with no shared
// mutable state, which is what lets hard-fault runs execute on the sharded
// engine: each shard pre-arms the same declarations at the same virtual
// times and reads the same schedule, so interrupt delivery is shard-
// deterministic (DESIGN.md §14).

import (
	"fmt"
	"sort"

	"repro/internal/faults"
	"repro/internal/gpu"
	"repro/internal/sim"
)

// DetectAt reports when the failure detector declares a rank dead that
// crashed at the given time, under the given heartbeat lease.
func DetectAt(crash sim.Time, lease sim.Duration) sim.Time {
	hb := lease / 2
	if hb <= 0 {
		return crash.Add(lease)
	}
	var lastHB sim.Time
	if crash > 0 {
		lastHB = sim.Time((int64(crash) - 1) / int64(hb) * int64(hb))
	}
	return lastHB.Add(lease)
}

// scheduledCrash is one rank's entry in the static hard-fault timetable.
type scheduledCrash struct {
	rank    int
	at      sim.Time     // the crash instant
	detect  sim.Time     // when the detector declares the rank failed
	latency sim.Duration // detect - at, the detector's declaration delay
	err     *sim.RankFailedError
}

// failureSchedule is the static, shard-invariant hard-fault timetable of one
// run, precomputed at launch from the fault plan: one entry per crashed rank
// (the earliest crash wins when a plan lists a rank twice), ordered by
// (detect time, rank). It is immutable once built, so concurrent shard
// engines query it without synchronization.
type failureSchedule struct {
	crashes []scheduledCrash
}

func newFailureSchedule(f *faults.Plan, nGPUs int) *failureSchedule {
	lease := f.Lease
	if lease <= 0 {
		lease = faults.DefaultLease
	}
	earliest := map[int]sim.Time{}
	for _, cr := range f.Crashes {
		if cr.Rank < 0 || cr.Rank >= nGPUs {
			panic(fmt.Sprintf("core: crash rank %d outside %d ranks", cr.Rank, nGPUs))
		}
		if at, ok := earliest[cr.Rank]; !ok || cr.At < at {
			earliest[cr.Rank] = cr.At
		}
	}
	s := &failureSchedule{}
	for rank, at := range earliest {
		detect := DetectAt(at, lease)
		s.crashes = append(s.crashes, scheduledCrash{
			rank: rank, at: at, detect: detect, latency: detect.Sub(at),
			err: &sim.RankFailedError{Rank: rank, At: detect},
		})
	}
	sort.Slice(s.crashes, func(i, k int) bool {
		a, b := &s.crashes[i], &s.crashes[k]
		if a.detect != b.detect {
			return a.detect < b.detect
		}
		return a.rank < b.rank
	})
	return s
}

// epochAt counts the failures declared by virtual time t — the failure epoch
// as observed at t.
func (s *failureSchedule) epochAt(t sim.Time) int {
	n := 0
	for _, sc := range s.crashes {
		if sc.detect > t {
			break
		}
		n++
	}
	return n
}

// lastFailureAt reports the most recent failure declared by t, nil if none.
func (s *failureSchedule) lastFailureAt(t sim.Time) *sim.RankFailedError {
	var last *sim.RankFailedError
	for i := range s.crashes {
		if s.crashes[i].detect > t {
			break
		}
		last = s.crashes[i].err
	}
	return last
}

// failedAt reports the ranks declared failed by t, in ascending rank order.
func (s *failureSchedule) failedAt(t sim.Time) []int {
	var out []int
	for _, sc := range s.crashes {
		if sc.detect <= t {
			out = append(out, sc.rank)
		}
	}
	sort.Ints(out)
	return out
}

// epochAt, lastFailureAt: failure-state queries indexed by the caller's
// virtual time. Communicators stamp the epoch they were built in and refuse
// (abort) operations once it moves on.
func (j *Job) epochAt(t sim.Time) int {
	if j.sched == nil {
		return 0
	}
	return j.sched.epochAt(t)
}

func (j *Job) lastFailureAt(t sim.Time) *sim.RankFailedError {
	if j.sched == nil {
		return nil
	}
	return j.sched.lastFailureAt(t)
}

// armHardFaults schedules the crash kills and the detector declarations onto
// the engines (one engine for a serial run). Each rank's kill runs on the
// engine owning its node — where the rank's process and GPU streams live —
// and the declaration interrupts every engine at the same virtual detect
// time. Fault events are pre-armed on each shard rather than routed through
// the conduit: the timetable is known at launch, so no cross-shard message
// (and no lookahead constraint) is involved, the detector being local to
// every node. Only the owning engine observes the metrics, keeping counters
// shard-invariant.
func (j *Job) armHardFaults(engines []*sim.Engine) {
	for i := range j.sched.crashes {
		sc := &j.sched.crashes[i]
		rank := sc.rank
		owner := j.cluster.Devices[rank].Engine()
		owner.After(sim.Duration(sc.at), func() {
			j.cfg.Metrics.Counter("core.crashes").Inc()
			j.rankProcs[rank].Kill()
			j.cluster.Devices[rank].Crash()
		})
		latency, ferr := sc.latency, sc.err
		for _, e := range engines {
			e := e
			isOwner := e == owner
			e.After(sim.Duration(sc.detect), func() {
				if isOwner {
					if r := j.cfg.Metrics; r != nil {
						r.Counter("core.failures").Inc()
						r.Histogram("core.detect.latency_ns").Observe(int64(latency))
					}
				}
				e.InterruptAll(ferr)
			})
		}
	}
}

// Try runs fn and converts a delivered failure (or any sim.Abort) inside it
// into a returned error, leaving the rank process alive — the recovery
// boundary for fault-tolerant applications:
//
//	err := env.Try(func() { core.AllReduce(...); env.StreamSynchronize(s) })
//	var rf *sim.RankFailedError
//	if errors.As(err, &rf) { comm.Revoke(); comm = world.Shrink(); ... }
func (e *Env) Try(fn func()) error { return sim.Protect(fn) }

// Failure reports the most recently declared rank failure, nil while all
// ranks are healthy.
func (e *Env) Failure() *sim.RankFailedError { return e.job.lastFailureAt(e.p.Now()) }

// FailedRanks reports the world ranks declared failed so far, in ascending
// order.
func (e *Env) FailedRanks() []int {
	if e.job.sched == nil {
		return nil
	}
	return e.job.sched.failedAt(e.p.Now())
}

// ResetStream drains the stream and discards any abort recorded by a
// poisoned operation — the recovery-path equivalent of synchronizing after
// ncclCommAbort, called between Shrink and the first operation on the new
// communicator.
func (e *Env) ResetStream(s *gpu.Stream) {
	s.Synchronize(e.p)
	s.TakeAborted()
}
