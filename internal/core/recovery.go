package core

// Hard-fault scheduling and the heartbeat failure detector.
//
// Each rank is modeled as heartbeating every lease/2 of virtual time; a
// monitor declares the rank failed when a full lease elapses after its last
// heartbeat. A rank crashing at time t therefore has
//
//	lastHB   = floor((t-1) / (lease/2)) * lease/2   (a heartbeat at the
//	                                                 crash instant is lost)
//	detectAt = lastHB + lease
//
// which bounds detection latency to [lease/2, lease): a crash just after a
// heartbeat waits out the full lease, one just before the next heartbeat is
// caught half a lease sooner. At detectAt the
// detector records a sim.RankFailedError and interrupts every live process:
// survivors blocked inside collectives or P2P waits get the typed error
// delivered at their park (instead of waiting forever on the dead rank),
// and busy survivors get it at their next blocking operation. The crash
// itself kills the rank's host process and its GPU streams instantly and
// silently — peers only ever learn of it through the detector.

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/gpu"
	"repro/internal/sim"
)

// DetectAt reports when the failure detector declares a rank dead that
// crashed at the given time, under the given heartbeat lease.
func DetectAt(crash sim.Time, lease sim.Duration) sim.Time {
	hb := lease / 2
	if hb <= 0 {
		return crash.Add(lease)
	}
	var lastHB sim.Time
	if crash > 0 {
		lastHB = sim.Time((int64(crash) - 1) / int64(hb) * int64(hb))
	}
	return lastHB.Add(lease)
}

// scheduleHardFaults installs the plan's rank crashes and arms the failure
// detector. Called once by Launch, before the rank processes start.
func (j *Job) scheduleHardFaults(f *faults.Plan) {
	lease := f.Lease
	if lease <= 0 {
		lease = faults.DefaultLease
	}
	for _, cr := range f.Crashes {
		cr := cr
		if cr.Rank < 0 || cr.Rank >= j.cfg.NGPUs {
			panic(fmt.Sprintf("core: crash rank %d outside %d ranks", cr.Rank, j.cfg.NGPUs))
		}
		j.eng.After(sim.Duration(cr.At), func() { j.crashRank(cr.Rank) })
		detect := DetectAt(cr.At, lease)
		latency := detect.Sub(sim.Time(cr.At))
		j.eng.After(sim.Duration(detect), func() { j.declareFailed(cr.Rank, detect, latency) })
	}
}

// crashRank kills a rank's host process and its GPU streams, silently.
func (j *Job) crashRank(rank int) {
	if j.crashed[rank] {
		return
	}
	j.crashed[rank] = true
	j.cfg.Metrics.Counter("core.crashes").Inc()
	j.rankProcs[rank].Kill()
	j.cluster.Devices[rank].Crash()
}

// declareFailed records the failure (bumping the epoch) and delivers the
// typed error to every live process. latency is the detector's crash-to-
// declaration delay, observed into the detect-latency histogram.
func (j *Job) declareFailed(rank int, at sim.Time, latency sim.Duration) {
	if j.failed[rank] {
		return
	}
	j.failed[rank] = true
	if r := j.cfg.Metrics; r != nil {
		r.Counter("core.failures").Inc()
		r.Histogram("core.detect.latency_ns").Observe(int64(latency))
	}
	ferr := &sim.RankFailedError{Rank: rank, At: at}
	j.failures = append(j.failures, ferr)
	j.eng.InterruptAll(ferr)
}

// epoch counts declared failures; communicators stamp the epoch they were
// built in and refuse (abort) operations once it moves on.
func (j *Job) epoch() int { return len(j.failures) }

// lastFailure reports the most recently declared failure, nil if none.
func (j *Job) lastFailure() *sim.RankFailedError {
	if len(j.failures) == 0 {
		return nil
	}
	return j.failures[len(j.failures)-1]
}

// Try runs fn and converts a delivered failure (or any sim.Abort) inside it
// into a returned error, leaving the rank process alive — the recovery
// boundary for fault-tolerant applications:
//
//	err := env.Try(func() { core.AllReduce(...); env.StreamSynchronize(s) })
//	var rf *sim.RankFailedError
//	if errors.As(err, &rf) { comm.Revoke(); comm = world.Shrink(); ... }
func (e *Env) Try(fn func()) error { return sim.Protect(fn) }

// Failure reports the most recently declared rank failure, nil while all
// ranks are healthy.
func (e *Env) Failure() *sim.RankFailedError { return e.job.lastFailure() }

// FailedRanks reports the world ranks declared failed so far, in ascending
// order.
func (e *Env) FailedRanks() []int {
	var out []int
	for r := 0; r < e.job.cfg.NGPUs; r++ {
		if e.job.failed[r] {
			out = append(out, r)
		}
	}
	return out
}

// ResetStream drains the stream and discards any abort recorded by a
// poisoned operation — the recovery-path equivalent of synchronizing after
// ncclCommAbort, called between Shrink and the first operation on the new
// communicator.
func (e *Env) ResetStream(s *gpu.Stream) {
	s.Synchronize(e.p)
	s.TakeAborted()
}
