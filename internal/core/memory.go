package core

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/gpushmem"
)

// Memory management (paper §IV-D): all communication buffers must be
// allocated through the Memory construct, because GPUSHMEM requires a
// symmetric heap. On MPI/GPUCCL the construct allocates ordinary device
// memory.

// Mem is a typed UNICONN allocation on this rank's device. On the GPUSHMEM
// backend the allocation is symmetric: the same logical object exists on
// every PE and can be addressed remotely.
type Mem[T gpu.Elem] struct {
	env *Env
	buf *gpu.Buffer[T]
	sym *gpushmem.Sym[T] // non-nil on the GPUSHMEM backend
}

// Alloc allocates n elements through the backend. On GPUSHMEM it is a
// collective call: every rank must allocate in the same order (the
// symmetric-heap contract). It mirrors Memory<Backend>::Alloc<T>(n).
func Alloc[T gpu.Elem](env *Env, n int) *Mem[T] {
	env.dispatch()
	if env.Backend() == GpushmemBackend {
		s := gpushmem.Malloc[T](env.job.shmemWorld.PE(env.rank), n)
		return &Mem[T]{env: env, buf: s.Local(env.rank), sym: s}
	}
	return &Mem[T]{env: env, buf: gpu.AllocBuffer[T](env.dev, n)}
}

// Free releases the allocation (Memory<Backend>::Free). The simulation's
// memory is garbage-collected; Free exists for API fidelity and charges the
// deallocation call.
func (m *Mem[T]) Free() { m.env.dispatch() }

// Data exposes the local elements.
func (m *Mem[T]) Data() []T { return m.buf.Data() }

// Len reports the element count.
func (m *Mem[T]) Len() int { return m.buf.Len() }

// View selects [off, off+n) for a communication operation.
func (m *Mem[T]) View(off, n int) gpu.View { return m.buf.View(off, n) }

// Whole views the entire allocation.
func (m *Mem[T]) Whole() gpu.View { return m.buf.Whole() }

// symRef resolves the symmetric reference for one-sided backends; it panics
// if the allocation is not symmetric.
func (m *Mem[T]) symRef(off, n int) gpushmem.SymRef {
	if m.sym == nil {
		panic("core: buffer was not allocated on the GPUSHMEM backend")
	}
	return m.sym.Ref(off, n)
}

// SymRef exposes the symmetric reference for native-baseline code that
// talks to the GPUSHMEM library directly; UNICONN applications never need
// it (Post resolves references internally).
func (m *Mem[T]) SymRef(off, n int) gpushmem.SymRef { return m.symRef(off, n) }

// SigRefOf exposes the GPUSHMEM signal word behind Sig(m, idx) for
// native-baseline code.
func SigRefOf(m *Mem[uint64], idx int) gpushmem.SigRef { return Sig(m, idx).sigRef() }

// Signal names one element of a uint64 UNICONN allocation used as a
// completion signal for Post/Acknowledge (the paper's sig_loc argument,
// e.g. sync_arr+1).
type Signal struct {
	M   *Mem[uint64]
	Idx int
}

// Sig constructs a Signal reference.
func Sig(m *Mem[uint64], idx int) Signal { return Signal{M: m, Idx: idx} }

// sigRef resolves the GPUSHMEM signal word.
func (s Signal) sigRef() gpushmem.SigRef {
	if s.M == nil {
		panic("core: nil signal")
	}
	if s.M.sym == nil {
		panic("core: signal buffer was not allocated on the GPUSHMEM backend")
	}
	return s.M.sym.SigRef(s.Idx)
}

// memLike is the type-erased face Mem instances share with the coordinator
// (Post/Acknowledge take concrete Mems through generic functions, so only
// string formatting needs this).
type memLike interface{ describe() string }

func (m *Mem[T]) describe() string {
	var z T
	return fmt.Sprintf("Mem[%T](%d)", z, m.Len())
}
