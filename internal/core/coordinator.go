package core

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/gpushmem"
	"repro/internal/mpi"
)

// LaunchMode controls a Coordinator's behaviour (paper §IV-E1): which bound
// kernel LaunchKernel starts and which API flavour the communication
// primitives use.
type LaunchMode int

// The three launch modes.
const (
	// PureHost uses host-side communication APIs; kernels are
	// computation-only. Available on every backend.
	PureHost LaunchMode = iota
	// PartialDevice sends point-to-point payloads from inside the GPU
	// kernel (non-blocking, unsignalled) and synchronizes later through
	// host-side Post/Acknowledge. Collectives behave as in PureHost.
	// GPUSHMEM only.
	PartialDevice
	// PureDevice performs both communication and synchronization inside
	// the GPU kernel. GPUSHMEM only.
	PureDevice
)

func (m LaunchMode) String() string {
	switch m {
	case PureHost:
		return "PureHost"
	case PartialDevice:
		return "PartialDevice"
	case PureDevice:
		return "PureDevice"
	default:
		return fmt.Sprintf("LaunchMode(%d)", int(m))
	}
}

// ThreadGroup selects device-side execution granularity (paper §IV-F4).
type ThreadGroup = gpushmem.ThreadGroup

// Device-side thread granularities.
const (
	Thread = gpushmem.Thread
	Warp   = gpushmem.Warp
	Block  = gpushmem.Block
)

// boundKernel stores one BindKernel registration.
type boundKernel struct {
	k    *gpu.Kernel
	args any
}

// Coordinator manages the coordination between GPU computation and
// communication (paper §IV-E): kernel binding and launching under a
// LaunchMode, operation grouping, and the uniform communication operations.
// Its constructor takes the GPU stream all its operations target.
type Coordinator struct {
	env    *Env
	comm   *Communicator // default communicator for device-side ops
	stream *gpu.Stream
	mode   LaunchMode

	kernels map[LaunchMode]boundKernel

	grouping bool
	mpiReqs  []*mpi.Request
	deferred []func() // acknowledgements deferred to CommEnd on MPI
	// pdQuietDone dedupes the stream-ordered Quiet that PartialDevice
	// Posts need before signalling: within one CommStart/CommEnd group a
	// single Quiet covers every kernel-issued transfer.
	pdQuietDone bool
}

// NewCoordinator constructs a Coordinator bound to a stream with the given
// launch mode (Coordinator<Backend, LaunchMode::X> step(stream)).
func NewCoordinator(env *Env, mode LaunchMode, s *gpu.Stream) *Coordinator {
	env.dispatch()
	if mode != PureHost && env.Backend() != GpushmemBackend {
		panic(fmt.Sprintf("core: %v requires the GPUSHMEM backend (got %v)", mode, env.Backend()))
	}
	return &Coordinator{
		env:     env,
		stream:  s,
		mode:    mode,
		kernels: map[LaunchMode]boundKernel{},
	}
}

// Mode reports the coordinator's launch mode.
func (c *Coordinator) Mode() LaunchMode { return c.mode }

// Stream reports the coordinator's stream.
func (c *Coordinator) Stream() *gpu.Stream { return c.stream }

// Env reports the owning environment.
func (c *Coordinator) Env() *Env { return c.env }

// BindKernel registers the kernel to use when the coordinator's LaunchMode
// equals mode; other registrations are retained but inactive, which is what
// lets an application carry PureHost, PartialDevice, and PureDevice kernels
// side by side and switch with one parameter (paper Listing 4, lines 20-27).
func (c *Coordinator) BindKernel(mode LaunchMode, k *gpu.Kernel, args any) {
	c.env.dispatch()
	c.kernels[mode] = boundKernel{k: k, args: args}
}

// LaunchKernel launches the kernel bound to the active mode. PureHost and
// PartialDevice kernels launch normally; PureDevice kernels launch through
// the backend's collective-launch mechanism, as GPUSHMEM device-side
// synchronization requires.
func (c *Coordinator) LaunchKernel() {
	c.env.dispatch()
	bk, ok := c.kernels[c.mode]
	if !ok {
		panic(fmt.Sprintf("core: no kernel bound for %v", c.mode))
	}
	if c.mode == PureDevice {
		pe := c.env.job.shmemWorld.PE(c.env.rank)
		pe.CollectiveLaunch(c.env.p, c.stream, bk.k, bk.args)
		return
	}
	c.stream.Launch(c.env.p, bk.k, bk.args)
}

// CommStart prepares the coordinator for non-blocking execution of the
// communication operations registered until CommEnd (paper §IV-G).
func (c *Coordinator) CommStart() {
	c.env.dispatch()
	if c.grouping {
		panic("core: nested CommStart")
	}
	c.grouping = true
	c.pdQuietDone = false
	switch c.env.Backend() {
	case GpucclBackend:
		c.env.job.cclWorld.Comm(c.env.rank).GroupStart()
	case MPIBackend:
		// MPI has no stream notion: the decision logic checks the stream
		// for pending work so host communication does not overtake the
		// kernel (one source of the paper's measured overhead).
		c.mpiStreamGuard()
	}
}

// CommEnd completes all operations registered since CommStart before any
// subsequent work on the coordinator's stream (paper §IV-G).
func (c *Coordinator) CommEnd() {
	c.env.dispatch()
	if !c.grouping {
		panic("core: CommEnd without CommStart")
	}
	c.grouping = false
	switch c.env.Backend() {
	case GpucclBackend:
		c.env.job.cclWorld.Comm(c.env.rank).GroupEnd(c.env.p, c.stream)
	case MPIBackend:
		for _, fn := range c.deferred {
			fn()
		}
		c.deferred = nil
		mpi.WaitAll(c.env.p, c.mpiReqs...)
		c.mpiReqs = nil
	default:
		// GPUSHMEM: nothing to complete here. Signalled puts are
		// confirmed by the Acknowledge signal waits, and PartialDevice's
		// host-side Post already quiets the kernel-issued NBI transfers
		// before delivering its signal.
	}
}

// mpiStreamGuard models UNICONN's stream query before blocking MPI calls:
// it charges the query and drains the stream if work is pending, so device
// buffers are ready for host communication.
func (c *Coordinator) mpiStreamGuard() {
	if !c.stream.Query(c.env.p) {
		c.stream.Synchronize(c.env.p)
	}
}
