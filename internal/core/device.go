package core

import (
	"repro/internal/gpu"
	"repro/internal/gpushmem"
)

// Device-side API (paper §IV-F4 and Listings 5-6): the same primitives,
// callable from inside GPU kernels with an explicit ThreadGroup execution
// granularity. These wrappers are "inlined": their only cost beyond the
// backend call is the near-zero DeviceInline charge, which is how the paper
// explains the ≤0.08% device-API overhead (§VI-B).
//
// Device-side operations require the GPUSHMEM backend; the coordinator's
// LaunchMode decides which flavour a kernel uses:
//
//   - PureDevice:    DevPost carries the payload and the signal
//     (put_signal_nbi), DevAcknowledge waits the signal — Listing 5.
//   - PartialDevice: DevPost carries only the payload (put_nbi, nil
//     signal); synchronization happens later through the host-side
//     Post/Acknowledge — Listing 6.

// devCharge applies the inlined-wrapper cost.
func devCharge(kc *gpu.KernelCtx, dc *DeviceComm) {
	kc.P.Advance(dc.c.env.uniconn().DeviceInline)
}

// DevPost sends count elements at send into peer's recv (device-side Post).
// Pass the zero Signal for the PartialDevice pattern (payload now, signal
// later from the host).
func DevPost[T gpu.Elem](kc *gpu.KernelCtx, g ThreadGroup, send, recv Ptr[T], count int, sig Signal, sigVal uint64, peer int, dc *DeviceComm) {
	devCharge(kc, dc)
	pe := dc.c.pe
	target := dc.c.worldOf(peer)
	if sig.M == nil {
		pe.DevPutNBI(kc, g, recv.symRef(count), send.View(count), count, target)
		return
	}
	pe.DevPutSignalNBI(kc, g, recv.symRef(count), send.View(count), count,
		sig.sigRef(), sigVal, gpushmem.SignalSet, target)
}

// DevAcknowledge waits until the local signal reaches sigVal (device-side
// Acknowledge; nvshmem_signal_wait_until in Listing 5).
func DevAcknowledge(kc *gpu.KernelCtx, sig Signal, sigVal uint64, dc *DeviceComm) {
	devCharge(kc, dc)
	dc.c.pe.DevSignalWaitUntil(kc, sig.sigRef(), gpushmem.CmpGE, sigVal)
}

// DevQuiet completes all device-initiated non-blocking operations issued by
// this rank.
func DevQuiet(kc *gpu.KernelCtx, dc *DeviceComm) {
	devCharge(kc, dc)
	dc.c.pe.DevQuiet(kc)
}

// DevBarrier synchronizes all ranks from device code (requires a PureDevice
// collective launch).
func DevBarrier(kc *gpu.KernelCtx, dc *DeviceComm) {
	devCharge(kc, dc)
	dc.c.pe.DevBarrierAll(kc)
}

// DevAllReduce reduces count elements across all ranks from device code.
func DevAllReduce[T gpu.Elem](kc *gpu.KernelCtx, op gpu.ReduceOp, send, recv Ptr[T], count int, dc *DeviceComm) {
	devCharge(kc, dc)
	dc.c.pe.DevAllReduce(kc, send.View(count), recv.View(count), op)
}

// DevBroadcast broadcasts count elements from root from device code.
func DevBroadcast[T gpu.Elem](kc *gpu.KernelCtx, buf Ptr[T], count int, root int, dc *DeviceComm) {
	devCharge(kc, dc)
	dc.c.pe.DevBroadcast(kc, buf.View(count), root)
}

// DevAllGatherv performs the variable-size allgather from device code (the
// PureDevice CG solver's SpMV exchange).
func DevAllGatherv[T gpu.Elem](kc *gpu.KernelCtx, send, recv Ptr[T], counts, displs []int, dc *DeviceComm) {
	devCharge(kc, dc)
	me := dc.GlobalRank()
	n := dc.GlobalSize()
	total := displs[n-1] + counts[n-1]
	dc.c.pe.DevAllGatherv(kc, send.View(counts[me]), recv.View(total), counts, displs)
}
