// Package core implements UNICONN: a uniform, high-level communication
// layer for portable multi-GPU programming (Sağbili et al., CLUSTER 2025).
//
// The package provides the paper's four abstractions —
//
//   - Environment: backend initialization/teardown and device selection;
//   - Communicator: the process group, with host/device barriers and a
//     device-side handle (ToDevice);
//   - Memory: backend-appropriate allocation (symmetric heap on GPUSHMEM);
//   - Coordinator: GPU-kernel management (BindKernel/LaunchKernel under a
//     LaunchMode), operation grouping (CommStart/CommEnd), and the uniform
//     communication operations (Post/Acknowledge and the collective set of
//     the paper's Listing 7);
//
// over three interchangeable backends: GPU-aware MPI, GPUCCL (NCCL/RCCL),
// and GPUSHMEM (NVSHMEM). The C++ original selects the backend with a
// template parameter at compile time; the Go port selects it in the Launch
// configuration, with the same property that application code is unchanged
// when switching (see examples/jacobi).
//
// Because UNICONN's claims are about API semantics and overhead, the layer
// deliberately charges its own dispatch costs (decision logic, GPU-stream
// queries around blocking MPI calls) from the machine model, so
// native-vs-UNICONN comparisons reproduce the paper's Figures 3-6.
package core

import (
	"fmt"
	"os"
	"sort"
	"strconv"

	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/gpu"
	"repro/internal/gpuccl"
	"repro/internal/gpushmem"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/trace"
)

// BackendID selects a communication backend, mirroring the paper's
// MPIBackend / GpucclBackend / GpushmemBackend types.
type BackendID int

// The supported backends.
const (
	MPIBackend BackendID = iota
	GpucclBackend
	GpushmemBackend
)

func (b BackendID) String() string {
	switch b {
	case MPIBackend:
		return "MPI"
	case GpucclBackend:
		return "GPUCCL"
	case GpushmemBackend:
		return "GPUSHMEM"
	default:
		return fmt.Sprintf("BackendID(%d)", int(b))
	}
}

// Lib maps the backend to its machine-model library id.
func (b BackendID) Lib() machine.Lib {
	switch b {
	case MPIBackend:
		return machine.LibMPI
	case GpucclBackend:
		return machine.LibGPUCCL
	default:
		return machine.LibGPUSHMEM
	}
}

// Config describes one simulated UNICONN job.
type Config struct {
	// Model is the machine to simulate (machine.Perlmutter() etc.).
	Model *machine.Model
	// NGPUs is the number of ranks; one GPU per rank, packed onto nodes.
	NGPUs int
	// Backend selects the communication library.
	Backend BackendID
	// Trace, when non-nil, records kernel, stream-operation, and fabric
	// transfer spans for the whole run (see internal/trace).
	Trace *trace.Log
	// Faults, when non-nil, injects the plan's link degradation, NIC port
	// stalls, slow ranks, and virtual-time watchdog into the run (see
	// internal/faults). A run that exceeds the plan's watchdog returns a
	// *sim.TimeoutError.
	Faults *faults.Plan
	// Metrics, when non-nil, collects scheduler, fabric, protocol, and
	// fault counters for the run (see internal/metrics). Disabled (nil) by
	// default; the registry must not be shared between concurrent runs —
	// one registry per run, merged afterwards (see internal/bench/runner.go
	// for the sweep ownership rule).
	Metrics *metrics.Registry
	// Topology overrides the machine model's inter-node network topology
	// (fat-tree, dragonfly; see fabric.TopologyConfig). The zero value
	// keeps the model's own setting (flat unless the model says
	// otherwise). The override is applied on a cloned model, so shared
	// machine.Model values are never mutated.
	Topology fabric.TopologyConfig
	// Flight, when non-nil, installs a bounded flight recorder on every
	// engine (one per shard) and dumps a deterministic post-mortem to
	// Flight.Sink when the run errors or recovered from a hard fault (see
	// flight.go). Disabled (nil) by default; recording is zero-allocation,
	// so enabling it does not perturb the zero-alloc hot-path gates.
	Flight *FlightConfig
	// Costs, when non-nil, is a shared machine.CostCache the run's cluster
	// uses instead of building (and re-warming) a private one — the sweep
	// runner passes one per worker so cells sharing a machine skip repeated
	// cost-curve evaluation (see gpu.Cluster.UseCosts for the soundness
	// argument). It must be built from the same named machine as Model;
	// mismatches are ignored. A shared cache never binds per-run metrics
	// counters, so Metrics snapshots stay per-cell deterministic.
	Costs *machine.CostCache
	// Shards selects parallel-in-virtual-time execution: the cell's ranks
	// are partitioned by cluster node across this many engines, advanced in
	// conservative lookahead windows (sim.Group; DESIGN.md §12). 0 (the
	// default) consults the UNICONN_SHARDS environment variable and falls
	// back to the classic serial engine; a negative count forces the serial
	// engine regardless of the environment (content-addressed evaluation
	// needs env-independent results; see internal/bench.EvalSpec); any
	// positive count (clamped to the node count) runs the windowed
	// protocol, whose virtual-time results are bit-identical at every
	// shard count >= 1. Hard-fault plans shard
	// too: the failure timetable is precomputed at launch and pre-armed on
	// every shard, so detector leases and interrupt delivery are shard-
	// deterministic (DESIGN.md §14). Models without an inter-node latency
	// floor fall back to serial regardless of the setting, and non-MPI
	// backends clamp to one shard (their transfer paths couple engines
	// directly).
	Shards int
}

// ShardsEnv is the environment variable consulted when Config.Shards is 0,
// mirroring the sweep runner's UNICONN_WORKERS: the CLIs' -shards flags set
// it, and the CI determinism tests toggle it per run.
const ShardsEnv = "UNICONN_SHARDS"

// shards resolves the effective shard count: 0 for the serial engine, or a
// positive windowed shard count (before node-count clamping).
func (cfg Config) shards() int {
	s := cfg.Shards
	if s == 0 {
		if v, err := strconv.Atoi(os.Getenv(ShardsEnv)); err == nil {
			s = v
		}
	}
	if s <= 0 {
		return 0
	}
	if cfg.Model.MinInterAlpha() <= 0 {
		return 0 // no latency floor, no lookahead window
	}
	if cfg.Backend != MPIBackend {
		// GPUCCL/GPUSHMEM move data with direct cross-node Transfer calls
		// (and RMA windows); until those learn the conduit they run whole
		// on one windowed engine.
		s = 1
	}
	return s
}

// effectiveModel resolves the machine to simulate: a Topology override
// clones the model with the requested fabric topology, leaving the shared
// model value (and its cost profiles) untouched.
func (cfg Config) effectiveModel() *machine.Model {
	if cfg.Topology.Kind == fabric.TopoFlat {
		return cfg.Model
	}
	m := *cfg.Model
	m.Topology = cfg.Topology
	return &m
}

// applyCosts installs the shared cost cache, if one was provided for this
// machine. A cache built for a different named machine is ignored rather
// than rejected: the private per-cluster cache is always a correct fallback.
func (cfg Config) applyCosts(c *gpu.Cluster) {
	if cfg.Costs != nil && cfg.Costs.Model().Name == cfg.Model.Name {
		c.UseCosts(cfg.Costs)
	}
}

// Validate reports whether the configuration is runnable.
func (cfg Config) Validate() error {
	if cfg.Model == nil {
		return fmt.Errorf("core: nil machine model")
	}
	if cfg.NGPUs < 1 {
		return fmt.Errorf("core: NGPUs = %d", cfg.NGPUs)
	}
	if cfg.Backend == GpushmemBackend && !cfg.Model.HasGPUSHMEM {
		return fmt.Errorf("core: %s has no GPUSHMEM implementation", cfg.Model.Name)
	}
	return nil
}

// Job is the shared state of one run.
type Job struct {
	cfg     Config
	eng     *sim.Engine
	cluster *gpu.Cluster

	mpiWorld   *mpi.World
	cclWorld   *gpuccl.World
	shmemWorld *gpushmem.World

	// Hard-fault state (recovery.go): the rank processes for the crash
	// scheduler, and the static failure timetable (nil on crash-free runs)
	// every failure-state query is answered from.
	rankProcs []*sim.Proc
	sched     *failureSchedule
}

// FaultSummary summarises the hard faults of a completed run, so chaos CLIs
// and benchmarks read the outcome from the report instead of re-deriving it
// from the plan or metrics snapshots. Zero-valued on fault-free runs.
type FaultSummary struct {
	// CrashedRanks are the world ranks the plan killed, in ascending order.
	CrashedRanks []int
	// DeadSwitches, DeadInterLinks, and DeadRoutes count the plan's crashed
	// topology switches, downed inter-switch links, and downed endpoint
	// routes (LinkDowns).
	DeadSwitches   int
	DeadInterLinks int
	DeadRoutes     int
	// FirstDetectLatency is the failure detector's crash-to-declaration
	// delay for the earliest crash; MaxDetectLatency the largest such delay
	// across all crashes. Both zero without crashes.
	FirstDetectLatency sim.Duration
	MaxDetectLatency   sim.Duration
	// Failovers counts transfers redirected onto fallback routes or steered
	// around dead switches/links by adaptive routing.
	Failovers int
}

// Report summarises a completed run.
type Report struct {
	// End is the virtual time at which the last rank finished.
	End sim.Time
	// Topology is the resolved inter-node topology the run used, with
	// auto-sized parameters (fat-tree arity, dragonfly p/a/h) filled in.
	Topology fabric.TopologyConfig
	// Faults summarises the run's hard faults and their handling.
	Faults FaultSummary
}

// faultSummary builds the report's hard-fault summary after a run completes.
func (j *Job) faultSummary() FaultSummary {
	var fs FaultSummary
	if f := j.cfg.Faults; f != nil {
		fs.DeadSwitches = len(f.SwitchCrashes)
		fs.DeadInterLinks = len(f.InterLinkDowns)
		fs.DeadRoutes = len(f.LinkDowns)
	}
	if j.sched != nil && len(j.sched.crashes) > 0 {
		earliest := 0
		for i, sc := range j.sched.crashes {
			fs.CrashedRanks = append(fs.CrashedRanks, sc.rank)
			if sc.latency > fs.MaxDetectLatency {
				fs.MaxDetectLatency = sc.latency
			}
			if sc.at < j.sched.crashes[earliest].at {
				earliest = i
			}
		}
		sort.Ints(fs.CrashedRanks)
		fs.FirstDetectLatency = j.sched.crashes[earliest].latency
	}
	fs.Failovers = j.cluster.Fabric.FailoverTransfers()
	return fs
}

// Launch runs main once per rank, each in its own simulated process, and
// drives the simulation to completion. It is the moral equivalent of
// mpirun/srun for the simulated cluster.
func Launch(cfg Config, main func(env *Env)) (Report, error) {
	var rep Report
	if err := cfg.Validate(); err != nil {
		return rep, err
	}
	cfg.Model = cfg.effectiveModel()
	if s := cfg.shards(); s > 0 {
		return launchSharded(cfg, s, main)
	}
	eng := sim.NewEngine()
	defer eng.Close()
	flight := cfg.Flight.install([]*sim.Engine{eng})
	job := &Job{cfg: cfg, eng: eng, cluster: gpu.NewCluster(eng, cfg.Model, cfg.NGPUs)}
	cfg.applyCosts(job.cluster)
	if cfg.Trace != nil {
		job.cluster.SetTrace(cfg.Trace)
	}
	// Metrics must be installed before the backend worlds are built: worlds
	// resolve their instruments from cluster.Metrics at construction.
	if cfg.Metrics != nil {
		job.cluster.SetMetrics(cfg.Metrics)
	}
	if f := cfg.Faults; f != nil {
		job.cluster.Fabric.LinkFault = f.LinkCostAt
		f.ApplyStalls(job.cluster.Fabric)
		f.ApplyHardFaults(job.cluster.Fabric)
		job.cluster.ComputeFault = f.ComputeFactor
		if f.Watchdog > 0 {
			eng.SetWatchdog(sim.Time(f.Watchdog))
		}
	}
	// MPI is always available: the paper's GPUCCL and GPUSHMEM setups
	// bootstrap over a CPU communication library (§IV-B).
	job.mpiWorld = mpi.NewWorld(job.cluster)
	switch cfg.Backend {
	case GpucclBackend:
		job.cclWorld = gpuccl.NewWorld(job.cluster)
	case GpushmemBackend:
		job.shmemWorld = gpushmem.NewWorld(job.cluster)
	}
	for r := 0; r < cfg.NGPUs; r++ {
		r := r
		job.rankProcs = append(job.rankProcs, eng.Spawn(fmt.Sprintf("rank%d", r), func(p *sim.Proc) {
			env := newEnv(job, r, p)
			main(env)
		}))
	}
	if f := cfg.Faults; f != nil && len(f.Crashes) > 0 {
		job.sched = newFailureSchedule(f, cfg.NGPUs)
		job.armHardFaults([]*sim.Engine{eng})
	}
	if err := eng.Run(); err != nil {
		flight.dump(err.Error())
		return rep, err
	}
	rep.End = eng.Now()
	rep.Topology = job.cluster.Fabric.Topology()
	rep.Faults = job.faultSummary()
	if len(rep.Faults.CrashedRanks) > 0 {
		flight.dump("recovered from hard fault")
	}
	if cfg.Metrics != nil {
		job.cluster.Fabric.PublishOccupancy(cfg.Metrics, rep.End)
	}
	return rep, nil
}

// launchSharded is Launch's parallel-in-virtual-time variant: one engine
// per shard, ranks partitioned by cluster node, windows driven by a
// sim.Group with the machine's minimum inter-node alpha as lookahead.
// cfg.shards() has already excluded what the windowed protocol cannot
// express (models without a latency floor) and clamped non-MPI backends to
// one shard; node-count clamping happens here, where the node count is
// known. Hard-fault plans run windowed too: the failure timetable is static,
// so kills land on the crashed rank's own engine and declarations are
// pre-armed on every engine at the same virtual time (recovery.go).
func launchSharded(cfg Config, shards int, main func(env *Env)) (Report, error) {
	var rep Report
	nodes := cfg.Model.NodesFor(cfg.NGPUs)
	if shards > nodes {
		shards = nodes
	}
	engines := make([]*sim.Engine, shards)
	for i := range engines {
		engines[i] = sim.NewEngine()
	}
	defer func() {
		for _, e := range engines {
			e.Close()
		}
	}()
	flight := cfg.Flight.install(engines)
	// Nodes map to shards round-robin; any deterministic map works (the
	// protocol is partition-independent), round-robin balances uneven
	// node counts.
	shardOf := make([]int, nodes)
	for n := range shardOf {
		shardOf[n] = n % shards
	}
	cluster := gpu.NewClusterOn(engines, shardOf, cfg.Model, cfg.NGPUs)
	cfg.applyCosts(cluster)
	// The lookahead window is the guaranteed lower bound on cross-shard
	// delivery delay: the machine's minimum inter-node alpha plus, on a
	// switched topology, the minimal per-route switch latency (every
	// conduit post — payload or control envelope — carries both).
	lookahead := cfg.Model.MinInterAlpha() + cluster.Fabric.MinInterExtra()
	group := sim.NewGroup(engines, shardOf, lookahead)
	cluster.Conduit = group.Conduit()
	job := &Job{cfg: cfg, eng: engines[0], cluster: cluster}
	if cfg.Trace != nil {
		cluster.SetTrace(cfg.Trace)
	}
	if cfg.Metrics != nil {
		cluster.SetMetrics(cfg.Metrics)
	}
	if f := cfg.Faults; f != nil {
		cluster.Fabric.LinkFault = f.LinkCostAt
		f.ApplyStalls(cluster.Fabric)
		f.ApplyHardFaults(cluster.Fabric)
		cluster.ComputeFault = f.ComputeFactor
		if f.Watchdog > 0 {
			for _, e := range engines {
				e.SetWatchdog(sim.Time(f.Watchdog))
			}
		}
	}
	job.mpiWorld = mpi.NewWorld(cluster)
	switch cfg.Backend {
	case GpucclBackend:
		job.cclWorld = gpuccl.NewWorld(cluster)
	case GpushmemBackend:
		job.shmemWorld = gpushmem.NewWorld(cluster)
	}
	for r := 0; r < cfg.NGPUs; r++ {
		r := r
		job.rankProcs = append(job.rankProcs, cluster.Devices[r].Engine().Spawn(
			fmt.Sprintf("rank%d", r), func(p *sim.Proc) {
				env := newEnv(job, r, p)
				main(env)
			}))
	}
	if f := cfg.Faults; f != nil && len(f.Crashes) > 0 {
		job.sched = newFailureSchedule(f, cfg.NGPUs)
		job.armHardFaults(engines)
	}
	if err := group.Run(); err != nil {
		flight.dump(err.Error())
		return rep, err
	}
	rep.End = group.End()
	rep.Topology = cluster.Fabric.Topology()
	rep.Faults = job.faultSummary()
	if len(rep.Faults.CrashedRanks) > 0 {
		flight.dump("recovered from hard fault")
	}
	if cfg.Metrics != nil {
		cluster.Fabric.PublishOccupancy(cfg.Metrics, rep.End)
	}
	return rep, nil
}

// Env is the per-rank Environment abstraction (paper §IV-B): it initializes
// and finalizes the backend and owns device selection.
type Env struct {
	job  *Job
	rank int
	p    *sim.Proc
	dev  *gpu.Device

	deviceSet bool
}

func newEnv(job *Job, rank int, p *sim.Proc) *Env {
	env := &Env{job: job, rank: rank, p: p, dev: job.cluster.Devices[rank]}
	// Backend initialization cost: a few host operations plus, for the
	// GPU-side libraries, their bootstrap exchange.
	env.p.Advance(10 * job.cfg.Model.HostOp)
	return env
}

// WorldRank reports the global rank of the process.
func (e *Env) WorldRank() int { return e.rank }

// WorldSize reports the total number of ranks.
func (e *Env) WorldSize() int { return e.job.cfg.NGPUs }

// NodeRank reports the node-local rank, used for device selection.
func (e *Env) NodeRank() int { return e.dev.Local }

// NodeSize reports the ranks per node.
func (e *Env) NodeSize() int { return e.job.cfg.Model.GPUsPerNode }

// SetDevice selects the GPU for this process. Ranks are packed one per
// device, so the only valid argument is NodeRank(), as in the paper's
// examples (env.SetDevice(local_rank)).
func (e *Env) SetDevice(local int) {
	if local != e.dev.Local {
		panic(fmt.Sprintf("core: SetDevice(%d) does not match the rank's device (local %d)",
			local, e.dev.Local))
	}
	e.deviceSet = true
}

// Device exposes the selected simulated GPU.
func (e *Env) Device() *gpu.Device { return e.dev }

// Proc exposes the rank's simulated process (needed by benchmark harnesses
// that time with events).
func (e *Env) Proc() *sim.Proc { return e.p }

// Backend reports the configured backend.
func (e *Env) Backend() BackendID { return e.job.cfg.Backend }

// Model reports the machine model.
func (e *Env) Model() *machine.Model { return e.job.cfg.Model }

// NewStream creates a GPU stream on the rank's device.
func (e *Env) NewStream(name string) *gpu.Stream { return e.dev.NewStream(name) }

// DefaultStream returns the device's default stream.
func (e *Env) DefaultStream() *gpu.Stream { return e.dev.DefaultStream() }

// StreamSynchronize blocks the host until the stream drains
// (cudaStreamSynchronize through the vendor-agnostic macro layer). If an
// enqueued operation was poisoned by a rank failure, the recorded error is
// re-raised here on the host — the simulated analogue of the stream going
// into an error state — so an env.Try boundary observes device-side
// failures too.
func (e *Env) StreamSynchronize(s *gpu.Stream) {
	s.Synchronize(e.p)
	if err := s.TakeAborted(); err != nil {
		sim.Abort(err)
	}
}

// MPIComm exposes the rank's raw MPI communicator. It exists for the
// native baseline implementations that the paper compares UNICONN against
// (and for bootstrap); UNICONN applications use Communicator instead.
func (e *Env) MPIComm() *mpi.Comm { return e.job.mpiWorld.CommWorld(e.rank) }

// CCLComm exposes the rank's raw GPUCCL communicator (native baselines
// only; requires the GPUCCL backend).
func (e *Env) CCLComm() *gpuccl.Comm { return e.job.cclWorld.Comm(e.rank) }

// ShmemPE exposes the rank's raw GPUSHMEM processing element (native
// baselines only; requires the GPUSHMEM backend).
func (e *Env) ShmemPE() *gpushmem.PE { return e.job.shmemWorld.PE(e.rank) }

// uniconn returns the layer's own overhead model.
func (e *Env) uniconn() machine.UniconnCosts { return e.job.cfg.Model.Uniconn }

// dispatch charges UNICONN's per-operation decision logic.
func (e *Env) dispatch() { e.p.Advance(e.uniconn().Dispatch) }
