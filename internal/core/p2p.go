package core

import (
	"repro/internal/gpu"
	"repro/internal/gpushmem"
)

// Point-to-point primitives (paper §IV-F2). Post and Acknowledge are
// UNICONN's two-sided-and-one-sided bridge: Post carries both the send
// buffer and the receiver's buffer address (ignored by two-sided backends),
// plus a signal location/value pair (used by one-sided backends); the
// semantics of the underlying backend are preserved:
//
//   - MPI:     Post → MPI_Send/MPI_Isend, Acknowledge → MPI_Recv/MPI_Irecv;
//     completion is synchronized between the two sides.
//   - GPUCCL:  Post → ncclSend, Acknowledge → ncclRecv on the stream;
//     grouped inside CommStart/CommEnd.
//   - GPUSHMEM: Post → PutWithSignal, Acknowledge → WaitSignal; completion
//     stays asynchronous between GPUs.

// Ptr is a typed pointer into a UNICONN allocation, the analogue of the
// paper's raw `T* + offset` arguments (e.g. A_buf + nx).
type Ptr[T gpu.Elem] struct {
	m   *Mem[T]
	off int
}

// At returns a pointer offset elements into the allocation.
func (m *Mem[T]) At(off int) Ptr[T] { return Ptr[T]{m: m, off: off} }

// Base returns a pointer to the start of the allocation.
func (m *Mem[T]) Base() Ptr[T] { return Ptr[T]{m: m} }

// Add offsets the pointer (p + k).
func (p Ptr[T]) Add(k int) Ptr[T] { return Ptr[T]{m: p.m, off: p.off + k} }

// View resolves n elements at the pointer as a device view.
func (p Ptr[T]) View(n int) gpu.View { return p.m.View(p.off, n) }

// IsNil reports whether the pointer references no allocation (the nullptr
// argument of the paper's PartialDevice Post).
func (p Ptr[T]) IsNil() bool { return p.m == nil }

func (p Ptr[T]) symRef(n int) gpushmem.SymRef { return p.m.symRef(p.off, n) }

// uniconnMPITag is the reserved tag for UNICONN's own P2P traffic.
const uniconnMPITag = 0x5C

// Post sends count elements at send to peer (paper Listing 7 line 2). recv
// names the destination in the peer's symmetric memory (one-sided backends);
// sig/sigVal notify the peer's Acknowledge. Two-sided backends ignore recv
// and sig on the sender side. Within CommStart/CommEnd the operation is
// non-blocking; otherwise it blocks per the backend's semantics.
//
// In PartialDevice mode the payload has already been sent from the kernel
// (DevPost); the host-side Post completes those transfers and delivers only
// the signal.
func Post[T gpu.Elem](c *Coordinator, send, recv Ptr[T], count int, sig Signal, sigVal uint64, peer int, comm *Communicator) {
	env := c.env
	env.dispatch()
	comm.check()
	switch env.Backend() {
	case MPIBackend:
		if c.grouping {
			c.mpiReqs = append(c.mpiReqs, comm.mpic.Isend(env.p, send.View(count), peer, uniconnMPITag))
			return
		}
		c.mpiStreamGuard()
		comm.mpic.Send(env.p, send.View(count), peer, uniconnMPITag)
	case GpucclBackend:
		comm.cclc.Send(env.p, c.stream, send.View(count), peer)
	default: // GPUSHMEM
		pe := comm.pe
		target := comm.worldOf(peer)
		if c.mode == PartialDevice {
			// Payload moved in-kernel: complete it (once per group), then
			// signal.
			if !c.grouping || !c.pdQuietDone {
				pe.QuietOnStream(env.p, c.stream)
				c.pdQuietDone = true
			}
			pe.PutSignalOnStream(env.p, c.stream, recv.symRef(0), gpu.View{}, 0,
				sig.sigRef(), sigVal, gpushmem.SignalSet, target)
			return
		}
		pe.PutSignalOnStream(env.p, c.stream, recv.symRef(count), send.View(count), count,
			sig.sigRef(), sigVal, gpushmem.SignalSet, target)
	}
}

// Acknowledge completes the receive side of a Post (paper Listing 7 line
// 3): two-sided backends receive count elements into recv; one-sided
// backends wait until the local signal reaches sigVal.
func Acknowledge[T gpu.Elem](c *Coordinator, recv Ptr[T], count int, sig Signal, sigVal uint64, peer int, comm *Communicator) {
	env := c.env
	env.dispatch()
	comm.check()
	switch env.Backend() {
	case MPIBackend:
		if c.grouping {
			c.mpiReqs = append(c.mpiReqs, comm.mpic.Irecv(env.p, recv.View(count), peer, uniconnMPITag))
			return
		}
		// Blocking small-message receives interleave stream queries with
		// communication progress; the paper measures this as the largest
		// source of UNICONN-over-MPI variability (§VI-B).
		c.mpiStreamGuard()
		if int64(count)*int64(recv.View(count).ElemSize()) <= env.uniconn().SmallAckMax {
			env.p.Advance(env.uniconn().SmallAckPenalty)
		}
		comm.mpic.Recv(env.p, recv.View(count), peer, uniconnMPITag)
	case GpucclBackend:
		comm.cclc.Recv(env.p, c.stream, recv.View(count), peer)
	default: // GPUSHMEM host and PartialDevice
		comm.pe.SignalWaitOnStream(env.p, c.stream, sig.sigRef(), gpushmem.CmpGE, sigVal)
	}
}

// AcknowledgeInPlace is the +In-Place variant noted in Listing 7: the
// payload lands directly in the application buffer named by recv during
// Post, so only completion is observed. On two-sided backends it is
// identical to Acknowledge.
func AcknowledgeInPlace[T gpu.Elem](c *Coordinator, recv Ptr[T], count int, sig Signal, sigVal uint64, peer int, comm *Communicator) {
	Acknowledge(c, recv, count, sig, sigVal, peer, comm)
}
