package core

import (
	"repro/internal/gpu"
	"repro/internal/gpuccl"
	"repro/internal/gpushmem"
	"repro/internal/mpi"
)

// Communicator encapsulates the process group (paper §IV-C), analogous to
// an MPI communicator or an OpenSHMEM team. It exposes rank/size queries,
// host- and stream-side barriers, Split, and a device-side handle.
type Communicator struct {
	env *Env

	mpic *mpi.Comm
	cclc *gpuccl.Comm
	pe   *gpushmem.PE
	team *gpushmem.Team // world team by default on the GPUSHMEM backend
}

// NewCommunicator creates the world communicator for this rank
// (Communicator<Backend> comm in the paper's Listing 4).
func NewCommunicator(env *Env) *Communicator {
	env.dispatch()
	c := &Communicator{env: env}
	c.mpic = env.job.mpiWorld.CommWorld(env.rank)
	switch env.Backend() {
	case GpucclBackend:
		c.cclc = env.job.cclWorld.Comm(env.rank)
	case GpushmemBackend:
		c.pe = env.job.shmemWorld.PE(env.rank)
		c.team = c.pe.WorldTeam()
	}
	return c
}

// GlobalRank reports this process's rank within the communicator.
func (c *Communicator) GlobalRank() int {
	switch {
	case c.cclc != nil:
		return c.cclc.Rank()
	case c.team != nil:
		return c.team.Rank()
	default:
		return c.mpic.Rank()
	}
}

// GlobalSize reports the communicator size.
func (c *Communicator) GlobalSize() int {
	switch {
	case c.cclc != nil:
		return c.cclc.Size()
	case c.team != nil:
		return c.team.Size()
	default:
		return c.mpic.Size()
	}
}

// worldOf translates a communicator rank to a world rank (identity on MPI,
// whose communicator translates internally).
func (c *Communicator) worldOf(r int) int {
	if c.team != nil {
		return c.team.World(r)
	}
	return r
}

// Env reports the owning environment.
func (c *Communicator) Env() *Env { return c.env }

// Split partitions the communicator by color, ordered by key, like
// MPI_Comm_split / ncclCommSplit / shmem_team_split. Every member must call
// it; a negative color returns nil. The CPU-side (MPI) communicator is
// split alongside the GPU one, as real applications do for bootstrap.
func (c *Communicator) Split(color, key int) *Communicator {
	env := c.env
	env.dispatch()
	msub := c.mpic.Split(env.p, color, key)
	sub := &Communicator{env: env, mpic: msub, pe: c.pe}
	switch env.Backend() {
	case GpucclBackend:
		sub.cclc = c.cclc.Split(env.p, color, key)
		if sub.cclc == nil {
			return nil
		}
	case GpushmemBackend:
		sub.team = c.team.TeamSplit(env.p, color, key)
		if sub.team == nil {
			return nil
		}
	default:
		if msub == nil {
			return nil
		}
	}
	return sub
}

// Barrier synchronizes all ranks of the communicator with respect to the
// given stream (paper §IV-C: barriers on both host and device sides). The
// backend determines the mechanism:
//
//   - MPI: drain the stream, then a host barrier;
//   - GPUCCL: a zero-element AllReduce enqueued on the stream (the library
//     has no native barrier);
//   - GPUSHMEM: nvshmemx_barrier_all_on_stream.
func (c *Communicator) Barrier(s *gpu.Stream) {
	env := c.env
	env.dispatch()
	switch env.Backend() {
	case GpucclBackend:
		b := gpu.AllocBuffer[uint64](env.dev, 1)
		c.cclc.AllReduce(env.p, s, b.Whole(), b.Whole(), gpu.ReduceMax)
	case GpushmemBackend:
		c.team.BarrierOnStream(env.p, s)
	default:
		s.Synchronize(env.p)
		c.mpic.Barrier(env.p)
	}
}

// HostBarrier synchronizes all ranks on the host side only (no stream
// involvement); all backends bootstrap it over the CPU library.
func (c *Communicator) HostBarrier() {
	c.env.dispatch()
	c.mpic.Barrier(c.env.p)
}

// DeviceComm is the GPU-resident communicator handle returned by ToDevice,
// usable inside kernels for the device-side API (comm.toDevice() in the
// paper's Listing 4).
type DeviceComm struct {
	c *Communicator
}

// ToDevice returns a handle valid for use within GPU kernels. It requires a
// backend with device-side support.
func (c *Communicator) ToDevice() *DeviceComm {
	c.env.dispatch()
	return &DeviceComm{c: c}
}

// GlobalRank reports the rank from device code.
func (d *DeviceComm) GlobalRank() int { return d.c.GlobalRank() }

// GlobalSize reports the size from device code.
func (d *DeviceComm) GlobalSize() int { return d.c.GlobalSize() }
