package core

import (
	"errors"
	"fmt"

	"repro/internal/gpu"
	"repro/internal/gpuccl"
	"repro/internal/gpushmem"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// Communicator encapsulates the process group (paper §IV-C), analogous to
// an MPI communicator or an OpenSHMEM team. It exposes rank/size queries,
// host- and stream-side barriers, Split, and a device-side handle.
type Communicator struct {
	env *Env

	mpic *mpi.Comm
	cclc *gpuccl.Comm
	pe   *gpushmem.PE
	team *gpushmem.Team // world team by default on the GPUSHMEM backend

	// epoch is the failure epoch the communicator was built in; once the
	// job's epoch moves past it, operations abort with the failure instead
	// of parking on a dead rank. revoked marks a handle explicitly poisoned
	// by Revoke during recovery.
	epoch   int
	revoked bool
}

// ErrRevoked is the error aborted out of operations on a communicator whose
// handle was revoked (the ULFM MPI_Comm_revoke analogue). Detect it with
// errors.Is.
var ErrRevoked = errors.New("core: communicator revoked")

// check aborts the calling operation if the communicator is stale: built in
// an earlier failure epoch, or explicitly revoked. Every communication entry
// point calls it after dispatch, so survivors that missed the detector's
// interrupt (they were computing, not parked) still fail fast instead of
// blocking against a dead rank.
func (c *Communicator) check() {
	j := c.env.job
	now := c.env.p.Now()
	if j.epochAt(now) != c.epoch {
		if ferr := j.lastFailureAt(now); ferr != nil {
			sim.Abort(ferr)
		}
	}
	if c.revoked {
		sim.Abort(fmt.Errorf("%w (epoch %d)", ErrRevoked, c.epoch))
	}
}

// NewCommunicator creates the world communicator for this rank
// (Communicator<Backend> comm in the paper's Listing 4).
func NewCommunicator(env *Env) *Communicator {
	env.dispatch()
	c := &Communicator{env: env, epoch: env.job.epochAt(env.p.Now())}
	c.mpic = env.job.mpiWorld.CommWorld(env.rank)
	switch env.Backend() {
	case GpucclBackend:
		c.cclc = env.job.cclWorld.Comm(env.rank)
	case GpushmemBackend:
		c.pe = env.job.shmemWorld.PE(env.rank)
		c.team = c.pe.WorldTeam()
	}
	return c
}

// GlobalRank reports this process's rank within the communicator.
func (c *Communicator) GlobalRank() int {
	switch {
	case c.cclc != nil:
		return c.cclc.Rank()
	case c.team != nil:
		return c.team.Rank()
	default:
		return c.mpic.Rank()
	}
}

// GlobalSize reports the communicator size.
func (c *Communicator) GlobalSize() int {
	switch {
	case c.cclc != nil:
		return c.cclc.Size()
	case c.team != nil:
		return c.team.Size()
	default:
		return c.mpic.Size()
	}
}

// worldOf translates a communicator rank to a world rank (identity on MPI,
// whose communicator translates internally).
func (c *Communicator) worldOf(r int) int {
	if c.team != nil {
		return c.team.World(r)
	}
	return r
}

// Env reports the owning environment.
func (c *Communicator) Env() *Env { return c.env }

// Split partitions the communicator by color, ordered by key, like
// MPI_Comm_split / ncclCommSplit / shmem_team_split. Every member must call
// it; a negative color returns nil. The CPU-side (MPI) communicator is
// split alongside the GPU one, as real applications do for bootstrap.
func (c *Communicator) Split(color, key int) *Communicator {
	env := c.env
	env.dispatch()
	c.check()
	msub := c.mpic.Split(env.p, color, key)
	sub := &Communicator{env: env, mpic: msub, pe: c.pe, epoch: c.epoch}
	switch env.Backend() {
	case GpucclBackend:
		sub.cclc = c.cclc.Split(env.p, color, key)
		if sub.cclc == nil {
			return nil
		}
	case GpushmemBackend:
		sub.team = c.team.TeamSplit(env.p, color, key)
		if sub.team == nil {
			return nil
		}
	default:
		if msub == nil {
			return nil
		}
	}
	return sub
}

// Barrier synchronizes all ranks of the communicator with respect to the
// given stream (paper §IV-C: barriers on both host and device sides). The
// backend determines the mechanism:
//
//   - MPI: drain the stream, then a host barrier;
//   - GPUCCL: a zero-element AllReduce enqueued on the stream (the library
//     has no native barrier);
//   - GPUSHMEM: nvshmemx_barrier_all_on_stream.
func (c *Communicator) Barrier(s *gpu.Stream) {
	env := c.env
	env.dispatch()
	c.check()
	switch env.Backend() {
	case GpucclBackend:
		b := gpu.AllocBuffer[uint64](env.dev, 1)
		c.cclc.AllReduce(env.p, s, b.Whole(), b.Whole(), gpu.ReduceMax)
	case GpushmemBackend:
		c.team.BarrierOnStream(env.p, s)
	default:
		s.Synchronize(env.p)
		c.mpic.Barrier(env.p)
	}
}

// HostBarrier synchronizes all ranks on the host side only (no stream
// involvement); all backends bootstrap it over the CPU library.
func (c *Communicator) HostBarrier() {
	c.env.dispatch()
	c.check()
	c.mpic.Barrier(c.env.p)
}

// Revoke poisons this communicator handle: every subsequent operation on it
// aborts with ErrRevoked (MPI_Comm_revoke / ncclCommAbort in spirit). It is
// local and immediate — the failure detector has already interrupted the
// other survivors, so no extra propagation round is needed in the simulated
// fabric — and it clears any failure notification still pending on the
// calling process so recovery code can run undisturbed.
func (c *Communicator) Revoke() {
	c.env.dispatch()
	c.env.p.ClearInterrupt()
	c.revoked = true
}

// Shrink builds a working communicator over the surviving ranks, the ULFM
// MPI_Comm_shrink analogue. Call it on a stable parent (the world
// communicator) after a failure: every survivor derives the same dense
// group from the globally agreed dead set, the CPU-side communicator is
// reconstructed directly, and the GPU-side library is torn down and
// re-initialized over the survivors (abort-and-reinit on GPUCCL, team
// reconstruction on GPUSHMEM). The call synchronizes the survivors; the
// returned communicator is stamped with the current failure epoch.
//
// If no failure has been declared since the communicator was built (and it
// was not revoked), Shrink returns the receiver unchanged.
func (c *Communicator) Shrink() *Communicator {
	env := c.env
	env.dispatch()
	env.p.ClearInterrupt()
	j := env.job
	epoch := j.epochAt(env.p.Now())
	if epoch == c.epoch && !c.revoked {
		return c
	}
	dead := map[int]bool{}
	for _, r := range env.FailedRanks() {
		dead[r] = true
	}
	// The generation disambiguates successive shrinks in the backends'
	// matching keys; epoch+1 keeps it >= 1 even for a revoked-but-healthy
	// shrink. A second failure declared mid-shrink interrupts the survivors
	// parked in the shrink barrier; the env.Try recovery loop retries at
	// the new epoch, converging on a consistent generation.
	gen := epoch + 1
	sub := &Communicator{env: env, pe: c.pe, epoch: epoch}
	sub.mpic = c.mpic.ShrinkExcluding(env.p, dead, gen)
	switch env.Backend() {
	case GpucclBackend:
		sub.cclc = c.cclc.Shrink(env.p, dead, gen)
	case GpushmemBackend:
		sub.team = c.team.Shrink(env.p, dead, gen)
	}
	return sub
}

// DeviceComm is the GPU-resident communicator handle returned by ToDevice,
// usable inside kernels for the device-side API (comm.toDevice() in the
// paper's Listing 4).
type DeviceComm struct {
	c *Communicator
}

// ToDevice returns a handle valid for use within GPU kernels. It requires a
// backend with device-side support.
func (c *Communicator) ToDevice() *DeviceComm {
	c.env.dispatch()
	return &DeviceComm{c: c}
}

// GlobalRank reports the rank from device code.
func (d *DeviceComm) GlobalRank() int { return d.c.GlobalRank() }

// GlobalSize reports the size from device code.
func (d *DeviceComm) GlobalSize() int { return d.c.GlobalSize() }
