package core

// Flight-recorder plumbing: Launch installs one bounded sim.FlightRecorder
// per engine (per shard in a sharded run) and, when the run ends badly —
// abort, watchdog timeout, deadlock — or survived a hard fault, writes a
// deterministic post-mortem dump to the configured sink. Everything in the
// dump derives from virtual time, so for a fixed configuration the bytes are
// identical run to run and shard-count-independent only in the trivial sense
// (each shard dumps its own schedule); chaos CLIs route the dump to stderr,
// keeping stdout byte-identical with recording on or off.

import (
	"fmt"
	"io"

	"repro/internal/sim"
)

// FlightConfig enables per-engine flight recording for a run.
type FlightConfig struct {
	// Depth is the per-engine ring capacity (sim.DefaultFlightDepth when
	// <= 0).
	Depth int
	// Sink, when non-nil, receives the deterministic post-mortem dump when
	// the run returns an error or recovered from a hard fault (crashed
	// ranks in the report).
	Sink io.Writer
	// Attach, when non-nil, is called once per shard with the freshly
	// installed recorder, before any rank is spawned. Live telemetry uses
	// it to expose /debug/flight mid-run.
	Attach func(shard int, fr *sim.FlightRecorder)
}

// flightState tracks a run's installed recorders for the post-mortem dump.
type flightState struct {
	sink io.Writer
	recs []*sim.FlightRecorder
}

// install creates and installs one recorder per engine. Nil-safe: a nil
// config installs nothing and returns nil (and flightState methods accept a
// nil receiver), so Launch calls it unconditionally.
func (fc *FlightConfig) install(engines []*sim.Engine) *flightState {
	if fc == nil {
		return nil
	}
	st := &flightState{sink: fc.Sink}
	for i, e := range engines {
		fr := sim.NewFlightRecorder(fc.Depth)
		e.SetFlightRecorder(fr)
		st.recs = append(st.recs, fr)
		if fc.Attach != nil {
			fc.Attach(i, fr)
		}
	}
	return st
}

// dump writes the post-mortem: an outcome header, then each shard's retained
// entries in shard order.
func (st *flightState) dump(outcome string) {
	if st == nil || st.sink == nil {
		return
	}
	fmt.Fprintf(st.sink, "== flight recorder dump: %s ==\n", outcome)
	for i, fr := range st.recs {
		if len(st.recs) > 1 {
			fmt.Fprintf(st.sink, "-- shard %d of %d --\n", i, len(st.recs))
		}
		fr.Dump(st.sink)
	}
}
