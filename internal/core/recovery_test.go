package core

import (
	"errors"
	"testing"

	"repro/internal/faults"
	"repro/internal/gpu"
	"repro/internal/machine"
	"repro/internal/sim"
)

func TestDetectAtBounds(t *testing.T) {
	lease := sim.Millisecond
	for _, crash := range []sim.Time{1, 100, 499_999, 500_000, 500_001, 1_000_000, 1_234_567} {
		d := DetectAt(crash, lease)
		lat := d.Sub(crash)
		if lat < lease/2 || lat >= lease {
			t.Errorf("crash at %v: latency %v outside [lease/2, lease)", crash, lat)
		}
	}
	// A heartbeat at the crash instant is lost: crashing exactly on the
	// beat detects no earlier than crashing just after the previous one.
	if got := DetectAt(500_000, lease); got != sim.Time(1_000_000) {
		t.Errorf("on-beat crash detected at %v, want 1ms", got)
	}
}

// TestUncaughtFailureSurfacesFromLaunch asserts the errors.As chain from the
// detector through sim.Run's wrap to the Launch caller: an application that
// does not catch the failure with env.Try fails the whole run with a typed
// *sim.RankFailedError.
func TestUncaughtFailureSurfacesFromLaunch(t *testing.T) {
	plan := &faults.Plan{
		Crashes:  []faults.RankCrash{{Rank: 1, At: sim.Time(100 * sim.Microsecond)}},
		Lease:    sim.Duration(200 * sim.Microsecond),
		Watchdog: sim.Second,
	}
	_, err := Launch(Config{Model: machine.Perlmutter(), NGPUs: 4, Backend: MPIBackend, Faults: plan},
		func(env *Env) {
			comm := NewCommunicator(env)
			s := env.NewStream("s")
			coord := NewCoordinator(env, PureHost, s)
			buf := Alloc[float64](env, 64)
			for i := 0; i < 100; i++ {
				AllReduce(coord, gpu.ReduceSum, buf.Base(), buf.Base(), 64, comm)
				env.StreamSynchronize(s)
			}
		})
	var rf *sim.RankFailedError
	if !errors.As(err, &rf) {
		t.Fatalf("Launch error %v does not unwrap to *sim.RankFailedError", err)
	}
	if rf.Rank != 1 {
		t.Errorf("failed rank = %d, want 1", rf.Rank)
	}
}

// TestRevokedCommunicatorAborts asserts ErrRevoked is delivered through
// errors.Is from a revoked handle's operations.
func TestRevokedCommunicatorAborts(t *testing.T) {
	_, err := Launch(Config{Model: machine.Perlmutter(), NGPUs: 2, Backend: MPIBackend},
		func(env *Env) {
			comm := NewCommunicator(env)
			comm.Revoke()
			terr := env.Try(func() { comm.HostBarrier() })
			if !errors.Is(terr, ErrRevoked) {
				t.Errorf("rank %d: operation on revoked communicator returned %v", env.WorldRank(), terr)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
}

// TestShrinkIdentityWhenHealthy asserts Shrink is a no-op on a healthy,
// unrevoked communicator.
func TestShrinkIdentityWhenHealthy(t *testing.T) {
	_, err := Launch(Config{Model: machine.Perlmutter(), NGPUs: 2, Backend: GpucclBackend},
		func(env *Env) {
			comm := NewCommunicator(env)
			if comm.Shrink() != comm {
				t.Errorf("rank %d: healthy Shrink rebuilt the communicator", env.WorldRank())
			}
		})
	if err != nil {
		t.Fatal(err)
	}
}
