package core

import (
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/gpu"
	"repro/internal/machine"
	"repro/internal/sim"
)

// crashPlan kills rank 1 early under a watchdog, the standard hard-fault
// scenario of recovery_test.go.
func crashPlan() *faults.Plan {
	return &faults.Plan{
		Crashes:  []faults.RankCrash{{Rank: 1, At: sim.Time(100 * sim.Microsecond)}},
		Lease:    sim.Duration(200 * sim.Microsecond),
		Watchdog: sim.Second,
	}
}

// allreduceLoop is a small collective workload that a rank crash will poison.
func allreduceLoop(env *Env) {
	comm := NewCommunicator(env)
	s := env.NewStream("s")
	coord := NewCoordinator(env, PureHost, s)
	buf := Alloc[float64](env, 64)
	for i := 0; i < 100; i++ {
		AllReduce(coord, gpu.ReduceSum, buf.Base(), buf.Base(), 64, comm)
		env.StreamSynchronize(s)
	}
}

// TestFlightDumpOnUncaughtFailure asserts a failed run writes the
// post-mortem — header, kill, and interrupt entries — to the flight sink.
func TestFlightDumpOnUncaughtFailure(t *testing.T) {
	var sink strings.Builder
	_, err := Launch(Config{
		Model: machine.Perlmutter(), NGPUs: 4, Backend: MPIBackend,
		Faults: crashPlan(),
		Flight: &FlightConfig{Sink: &sink},
	}, allreduceLoop)
	if err == nil {
		t.Fatal("expected the uncaught rank failure to fail the run")
	}
	out := sink.String()
	for _, want := range []string{
		"== flight recorder dump: ", "rank 1 declared failed",
		"kill", "interrupt", "rank0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

// TestFlightDumpOnRecoveredFault asserts a run that survives a hard fault
// (every rank catches the failure with env.Try) still dumps, with the
// recovered-outcome header, and that the dump is deterministic.
func TestFlightDumpOnRecoveredFault(t *testing.T) {
	run := func() string {
		var sink strings.Builder
		_, err := Launch(Config{
			Model: machine.Perlmutter(), NGPUs: 4, Backend: MPIBackend,
			Faults: crashPlan(),
			Flight: &FlightConfig{Depth: 64, Sink: &sink},
		}, func(env *Env) {
			env.Try(func() { allreduceLoop(env) })
		})
		if err != nil {
			t.Fatal(err)
		}
		return sink.String()
	}
	out := run()
	if !strings.Contains(out, "== flight recorder dump: recovered from hard fault ==") {
		t.Fatalf("missing recovered-outcome header:\n%s", out)
	}
	if out != run() {
		t.Fatal("flight dump must be byte-identical across identical runs")
	}
}

// TestFlightQuietOnCleanRun asserts a fault-free run writes nothing to the
// sink, and that Attach still saw every shard's recorder.
func TestFlightQuietOnCleanRun(t *testing.T) {
	var sink strings.Builder
	attached := map[int]*sim.FlightRecorder{}
	_, err := Launch(Config{
		Model: machine.Perlmutter(), NGPUs: 8, Backend: MPIBackend, Shards: 2,
		Flight: &FlightConfig{
			Sink:   &sink,
			Attach: func(shard int, fr *sim.FlightRecorder) { attached[shard] = fr },
		},
	}, allreduceLoop)
	if err != nil {
		t.Fatal(err)
	}
	if sink.Len() != 0 {
		t.Fatalf("clean run dumped:\n%s", sink.String())
	}
	if len(attached) != 2 {
		t.Fatalf("attached %d recorders, want one per shard (2)", len(attached))
	}
	for shard, fr := range attached {
		if fr.Total() == 0 {
			t.Errorf("shard %d recorder saw no entries", shard)
		}
	}
}
