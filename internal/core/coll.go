package core

import (
	"repro/internal/gpu"
)

// Collective operations (paper §IV-F3, Listing 7). Backend mapping follows
// §V-A (Semantic Coverage): operations map directly when the backend has a
// native equivalent; otherwise UNICONN composes them from grouped P2P
// primitives (GPUCCL) or Put/Get with barriers (GPUSHMEM).

// AllReduce reduces count elements elementwise across the communicator into
// recv on every rank. Use send == recv (same pointer) for the in-place
// variant.
func AllReduce[T gpu.Elem](c *Coordinator, op gpu.ReduceOp, send, recv Ptr[T], count int, comm *Communicator) {
	env := c.env
	env.dispatch()
	comm.check()
	switch env.Backend() {
	case MPIBackend:
		c.mpiStreamGuard()
		comm.mpic.Allreduce(env.p, send.View(count), recv.View(count), op)
	case GpucclBackend:
		comm.cclc.AllReduce(env.p, c.stream, send.View(count), recv.View(count), op)
	default:
		comm.team.AllReduceOnStream(env.p, c.stream, send.View(count), recv.View(count), op)
	}
}

// AllReduceInPlace is the +In-Place variant: the buffer is both source and
// destination.
func AllReduceInPlace[T gpu.Elem](c *Coordinator, op gpu.ReduceOp, buf Ptr[T], count int, comm *Communicator) {
	AllReduce(c, op, buf, buf, count, comm)
}

// Reduce combines count elements across ranks into recv on root. recv may
// be the nil pointer on non-root ranks.
func Reduce[T gpu.Elem](c *Coordinator, op gpu.ReduceOp, send, recv Ptr[T], count int, root int, comm *Communicator) {
	env := c.env
	env.dispatch()
	comm.check()
	switch env.Backend() {
	case MPIBackend:
		c.mpiStreamGuard()
		var rv gpu.View
		if !recv.IsNil() {
			rv = recv.View(count)
		}
		comm.mpic.Reduce(env.p, send.View(count), rv, op, root)
	case GpucclBackend:
		var rv gpu.View
		if !recv.IsNil() {
			rv = recv.View(count)
		}
		comm.cclc.Reduce(env.p, c.stream, send.View(count), rv, op, root)
	default:
		// GPUSHMEM has no rooted reduction team op here: emulate with an
		// allreduce whose non-root results land in scratch (§V-A).
		rv := send.View(count).Clone()
		if comm.GlobalRank() == root && !recv.IsNil() {
			rv = recv.View(count)
		}
		comm.team.AllReduceOnStream(env.p, c.stream, send.View(count), rv, op)
	}
}

// ReduceInPlace reduces with root's send buffer doubling as the result
// buffer.
func ReduceInPlace[T gpu.Elem](c *Coordinator, op gpu.ReduceOp, buf Ptr[T], count int, root int, comm *Communicator) {
	Reduce(c, op, buf, buf, count, root, comm)
}

// Broadcast sends count elements at buf from root to every rank.
func Broadcast[T gpu.Elem](c *Coordinator, buf Ptr[T], count int, root int, comm *Communicator) {
	env := c.env
	env.dispatch()
	comm.check()
	switch env.Backend() {
	case MPIBackend:
		c.mpiStreamGuard()
		comm.mpic.Bcast(env.p, buf.View(count), root)
	case GpucclBackend:
		comm.cclc.Broadcast(env.p, c.stream, buf.View(count), root)
	default:
		comm.team.BroadcastOnStream(env.p, c.stream, buf.View(count), root)
	}
}

// Gather collects count elements from every rank into recv on root
// (recv holds GlobalSize()*count elements there).
func Gather[T gpu.Elem](c *Coordinator, send, recv Ptr[T], count int, root int, comm *Communicator) {
	n := comm.GlobalSize()
	counts := make([]int, n)
	displs := make([]int, n)
	for i := range counts {
		counts[i] = count
		displs[i] = i * count
	}
	Gatherv(c, send, recv, counts, displs, root, comm)
}

// Gatherv is the +Vectorized gather: rank r contributes counts[r] elements
// landing at displs[r] in root's recv.
func Gatherv[T gpu.Elem](c *Coordinator, send, recv Ptr[T], counts, displs []int, root int, comm *Communicator) {
	env := c.env
	env.dispatch()
	comm.check()
	me := comm.GlobalRank()
	n := comm.GlobalSize()
	mine := counts[me]
	switch env.Backend() {
	case MPIBackend:
		c.mpiStreamGuard()
		var rv gpu.View
		if me == root {
			rv = recv.View(displs[n-1] + counts[n-1])
		}
		comm.mpic.Gatherv(env.p, send.View(mine), rv, counts, displs, root)
	case GpucclBackend:
		// No native gather: grouped P2P (§V-A).
		ccl := comm.cclc
		ccl.GroupStart()
		if me == root {
			for r := 0; r < n; r++ {
				if r == me {
					continue
				}
				ccl.Recv(env.p, c.stream, recv.Add(displs[r]).View(counts[r]), r)
			}
		} else {
			ccl.Send(env.p, c.stream, send.View(mine), root)
		}
		ccl.GroupEnd(env.p, c.stream)
		if me == root {
			c.stream.MemcpyAsync(env.p, recv.Add(displs[me]).View(mine), send.View(mine), mine)
		}
	default:
		// Put/Get emulation: every rank receives the concatenation; the
		// non-root copies land in the (symmetric) recv allocation too,
		// which Gather's contract permits to be scratch off-root.
		comm.team.AllGathervOnStream(env.p, c.stream, send.View(mine),
			recv.View(displs[n-1]+counts[n-1]), counts, displs)
	}
}

// Scatter distributes count-element chunks of root's send buffer to every
// rank's recv.
func Scatter[T gpu.Elem](c *Coordinator, send, recv Ptr[T], count int, root int, comm *Communicator) {
	n := comm.GlobalSize()
	counts := make([]int, n)
	displs := make([]int, n)
	for i := range counts {
		counts[i] = count
		displs[i] = i * count
	}
	Scatterv(c, send, recv, counts, displs, root, comm)
}

// Scatterv is the +Vectorized scatter from root.
func Scatterv[T gpu.Elem](c *Coordinator, send, recv Ptr[T], counts, displs []int, root int, comm *Communicator) {
	env := c.env
	env.dispatch()
	comm.check()
	me := comm.GlobalRank()
	n := comm.GlobalSize()
	mine := counts[me]
	switch env.Backend() {
	case MPIBackend:
		c.mpiStreamGuard()
		var sv gpu.View
		if me == root {
			sv = send.View(displs[n-1] + counts[n-1])
		}
		comm.mpic.Scatterv(env.p, sv, recv.View(mine), counts, displs, root)
	case GpucclBackend:
		ccl := comm.cclc
		ccl.GroupStart()
		if me == root {
			for r := 0; r < n; r++ {
				if r == me {
					continue
				}
				ccl.Send(env.p, c.stream, send.Add(displs[r]).View(counts[r]), r)
			}
		} else {
			ccl.Recv(env.p, c.stream, recv.View(mine), root)
		}
		ccl.GroupEnd(env.p, c.stream)
		if me == root {
			c.stream.MemcpyAsync(env.p, recv.View(mine), send.Add(displs[me]).View(mine), mine)
		}
	default:
		// Root puts each chunk into the peer's symmetric recv, then all
		// synchronize so the data is visible.
		pe := comm.pe
		if me == root {
			for r := 0; r < n; r++ {
				if r == me {
					c.stream.MemcpyAsync(env.p, recv.View(mine), send.Add(displs[me]).View(mine), mine)
					continue
				}
				pe.PutOnStream(env.p, c.stream, recv.symRef(counts[r]),
					send.Add(displs[r]).View(counts[r]), counts[r], comm.worldOf(r))
			}
			pe.QuietOnStream(env.p, c.stream)
		}
		comm.team.BarrierOnStream(env.p, c.stream)
	}
}

// AllGather concatenates count elements from every rank into recv
// (GlobalSize()*count elements) on all ranks.
func AllGather[T gpu.Elem](c *Coordinator, send, recv Ptr[T], count int, comm *Communicator) {
	n := comm.GlobalSize()
	counts := make([]int, n)
	displs := make([]int, n)
	for i := range counts {
		counts[i] = count
		displs[i] = i * count
	}
	AllGatherv(c, send, recv, counts, displs, comm)
}

// AllGatherv is the variable-size allgather used by the paper's CG solver
// (§VI-D). GPUCCL has no native allgatherv: UNICONN composes it from
// grouped Send/Recv.
func AllGatherv[T gpu.Elem](c *Coordinator, send, recv Ptr[T], counts, displs []int, comm *Communicator) {
	env := c.env
	env.dispatch()
	comm.check()
	me := comm.GlobalRank()
	n := comm.GlobalSize()
	mine := counts[me]
	total := displs[n-1] + counts[n-1]
	switch env.Backend() {
	case MPIBackend:
		c.mpiStreamGuard()
		comm.mpic.Allgatherv(env.p, send.View(mine), recv.View(total), counts, displs)
	case GpucclBackend:
		ccl := comm.cclc
		ccl.GroupStart()
		for r := 0; r < n; r++ {
			if r == me {
				continue
			}
			ccl.Send(env.p, c.stream, send.View(mine), r)
			ccl.Recv(env.p, c.stream, recv.Add(displs[r]).View(counts[r]), r)
		}
		ccl.GroupEnd(env.p, c.stream)
		c.stream.MemcpyAsync(env.p, recv.Add(displs[me]).View(mine), send.View(mine), mine)
	default:
		comm.team.AllGathervOnStream(env.p, c.stream, send.View(mine), recv.View(total), counts, displs)
	}
}

// AlltoAllv is the +Vectorized all-to-all of Listing 7: rank me sends
// sendCounts[r] elements at sendDispls[r] to each rank r, receiving
// recvCounts[r] at recvDispls[r] in return. The symmetric-counts contract
// (sendCounts[r] on me == recvCounts[me] on r) is the caller's to honour,
// as in MPI_Alltoallv.
func AlltoAllv[T gpu.Elem](c *Coordinator, send, recv Ptr[T], sendCounts, sendDispls, recvCounts, recvDispls []int, comm *Communicator) {
	env := c.env
	env.dispatch()
	comm.check()
	me := comm.GlobalRank()
	n := comm.GlobalSize()
	selfCopy := func() {
		c.stream.MemcpyAsync(env.p,
			recv.Add(recvDispls[me]).View(recvCounts[me]),
			send.Add(sendDispls[me]).View(sendCounts[me]), sendCounts[me])
	}
	switch env.Backend() {
	case MPIBackend:
		c.mpiStreamGuard()
		totalS := sendDispls[n-1] + sendCounts[n-1]
		totalR := recvDispls[n-1] + recvCounts[n-1]
		comm.mpic.Alltoallv(env.p, send.View(totalS), recv.View(totalR),
			sendCounts, sendDispls, recvCounts, recvDispls)
	case GpucclBackend:
		ccl := comm.cclc
		ccl.GroupStart()
		for r := 0; r < n; r++ {
			if r == me {
				continue
			}
			ccl.Send(env.p, c.stream, send.Add(sendDispls[r]).View(sendCounts[r]), r)
			ccl.Recv(env.p, c.stream, recv.Add(recvDispls[r]).View(recvCounts[r]), r)
		}
		ccl.GroupEnd(env.p, c.stream)
		selfCopy()
	default:
		pe := comm.pe
		for r := 0; r < n; r++ {
			if r == me {
				selfCopy()
				continue
			}
			// One-sided: write my chunk for r into r's recv region at the
			// displacement r reserves for me. Symmetric addressing means
			// the displacement table must agree across PEs, i.e. the
			// canonical contract recvDispls[src] indexed by source rank.
			pe.PutOnStream(env.p, c.stream, recv.Add(recvDispls[me]).symRef(sendCounts[r]),
				send.Add(sendDispls[r]).View(sendCounts[r]), sendCounts[r], comm.worldOf(r))
		}
		pe.QuietOnStream(env.p, c.stream)
		comm.team.BarrierOnStream(env.p, c.stream)
	}
}

// AlltoAll exchanges count-element chunks between every pair of ranks:
// chunk r of send goes to rank r, which stores it at chunk me.
func AlltoAll[T gpu.Elem](c *Coordinator, send, recv Ptr[T], count int, comm *Communicator) {
	env := c.env
	env.dispatch()
	comm.check()
	me := comm.GlobalRank()
	n := comm.GlobalSize()
	switch env.Backend() {
	case MPIBackend:
		c.mpiStreamGuard()
		comm.mpic.Alltoall(env.p, send.View(n*count), recv.View(n*count), count)
	case GpucclBackend:
		ccl := comm.cclc
		ccl.GroupStart()
		for r := 0; r < n; r++ {
			if r == me {
				continue
			}
			ccl.Send(env.p, c.stream, send.Add(r*count).View(count), r)
			ccl.Recv(env.p, c.stream, recv.Add(r*count).View(count), r)
		}
		ccl.GroupEnd(env.p, c.stream)
		c.stream.MemcpyAsync(env.p, recv.Add(me*count).View(count), send.Add(me*count).View(count), count)
	default:
		pe := comm.pe
		for r := 0; r < n; r++ {
			if r == me {
				c.stream.MemcpyAsync(env.p, recv.Add(me*count).View(count), send.Add(me*count).View(count), count)
				continue
			}
			pe.PutOnStream(env.p, c.stream, recv.Add(me*count).symRef(count),
				send.Add(r*count).View(count), count, comm.worldOf(r))
		}
		pe.QuietOnStream(env.p, c.stream)
		comm.team.BarrierOnStream(env.p, c.stream)
	}
}
