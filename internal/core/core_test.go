package core

import (
	"fmt"
	"testing"

	"repro/internal/gpu"
	"repro/internal/machine"
)

// backendsFor lists the backend/mode combinations a machine supports.
func backendsFor(m *machine.Model) []BackendID {
	b := []BackendID{MPIBackend, GpucclBackend}
	if m.HasGPUSHMEM {
		b = append(b, GpushmemBackend)
	}
	return b
}

func TestLaunchValidation(t *testing.T) {
	if _, err := Launch(Config{Model: nil, NGPUs: 2}, func(*Env) {}); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := Launch(Config{Model: machine.Perlmutter(), NGPUs: 0}, func(*Env) {}); err == nil {
		t.Error("zero GPUs accepted")
	}
	if _, err := Launch(Config{Model: machine.LUMI(), NGPUs: 2, Backend: GpushmemBackend}, func(*Env) {}); err == nil {
		t.Error("GPUSHMEM on LUMI accepted")
	}
}

func TestEnvironmentRanks(t *testing.T) {
	seen := map[int]bool{}
	_, err := Launch(Config{Model: machine.Perlmutter(), NGPUs: 6, Backend: MPIBackend}, func(env *Env) {
		if env.WorldSize() != 6 {
			t.Errorf("world size = %d", env.WorldSize())
		}
		if env.NodeRank() != env.WorldRank()%4 {
			t.Errorf("rank %d node rank %d", env.WorldRank(), env.NodeRank())
		}
		env.SetDevice(env.NodeRank())
		seen[env.WorldRank()] = true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 6 {
		t.Fatalf("ranks seen: %v", seen)
	}
}

func TestAllocBackends(t *testing.T) {
	for _, b := range backendsFor(machine.Perlmutter()) {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			_, err := Launch(Config{Model: machine.Perlmutter(), NGPUs: 2, Backend: b}, func(env *Env) {
				m := Alloc[float64](env, 16)
				if m.Len() != 16 {
					t.Errorf("len = %d", m.Len())
				}
				m.Data()[3] = 7
				if m.View(3, 1).Len() != 1 {
					t.Error("view failed")
				}
				m.Free()
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// haloExchange runs the paper's Listing 4 pattern: kernel, CommStart,
// Post/Acknowledge with both neighbours, CommEnd — for iters iterations on
// a 1D ring-free chain decomposition. It returns the final halo values seen
// by each rank so the test can verify the data movement.
func haloExchange(t *testing.T, model *machine.Model, backend BackendID, mode LaunchMode, n, iters int) [][2]float64 {
	t.Helper()
	result := make([][2]float64, n)
	_, err := Launch(Config{Model: model, NGPUs: n, Backend: backend}, func(env *Env) {
		me := env.WorldRank()
		env.SetDevice(env.NodeRank())
		comm := NewCommunicator(env)
		stream := env.NewStream("compute")

		// interior[0..1] are my boundary values; halo[0] from top (me-1),
		// halo[1] from bottom (me+1).
		interior := Alloc[float64](env, 2)
		halo := Alloc[float64](env, 2)
		sync := Alloc[uint64](env, 4)

		coord := NewCoordinator(env, mode, stream)
		top, bottom := me-1, me+1

		var dc *DeviceComm
		if mode != PureHost {
			dc = comm.ToDevice()
		}

		for iter := 1; iter <= iters; iter++ {
			iter := iter
			// "Compute": refresh my boundary values.
			kernel := &gpu.Kernel{Name: "compute", Body: func(kc *gpu.KernelCtx) {
				interior.Data()[0] = float64(1000*me + iter)
				interior.Data()[1] = float64(1000*me + iter)
				if mode == PureHost {
					return
				}
				// Device-side sends (PartialDevice: payload only;
				// PureDevice: payload+signal, then wait in kernel).
				var sig0, sig1 Signal
				val := uint64(iter)
				if mode == PureDevice {
					sig0, sig1 = Sig(sync, 0), Sig(sync, 1)
				}
				if top >= 0 {
					DevPost(kc, Block, interior.At(0), halo.At(1), 1, sig1, val, top, dc)
				}
				if bottom < env.WorldSize() {
					DevPost(kc, Block, interior.At(1), halo.At(0), 1, sig0, val, bottom, dc)
				}
				if mode == PureDevice {
					if top >= 0 {
						DevAcknowledge(kc, Sig(sync, 0), val, dc)
					}
					if bottom < env.WorldSize() {
						DevAcknowledge(kc, Sig(sync, 1), val, dc)
					}
				}
			}}
			coord.BindKernel(mode, kernel, nil)
			coord.LaunchKernel()
			if mode != PureDevice {
				coord.CommStart()
				val := uint64(iter)
				if top >= 0 {
					Post(coord, interior.At(0), halo.At(1), 1, Sig(sync, 1), val, top, comm)
				}
				if bottom < env.WorldSize() {
					Post(coord, interior.At(1), halo.At(0), 1, Sig(sync, 0), val, bottom, comm)
				}
				if top >= 0 {
					Acknowledge(coord, halo.At(0), 1, Sig(sync, 0), val, top, comm)
				}
				if bottom < env.WorldSize() {
					Acknowledge(coord, halo.At(1), 1, Sig(sync, 1), val, bottom, comm)
				}
				coord.CommEnd()
			}
			comm.Barrier(stream)
			env.StreamSynchronize(stream)
		}
		result[me] = [2]float64{halo.Data()[0], halo.Data()[1]}
	})
	if err != nil {
		t.Fatal(err)
	}
	return result
}

func TestHaloExchangeAllBackends(t *testing.T) {
	const n, iters = 4, 3
	for _, model := range []*machine.Model{machine.Perlmutter(), machine.LUMI()} {
		for _, b := range backendsFor(model) {
			modes := []LaunchMode{PureHost}
			if b == GpushmemBackend {
				modes = append(modes, PartialDevice, PureDevice)
			}
			for _, mode := range modes {
				model, b, mode := model, b, mode
				t.Run(fmt.Sprintf("%s_%v_%v", model.Name, b, mode), func(t *testing.T) {
					got := haloExchange(t, model, b, mode, n, iters)
					for me := 0; me < n; me++ {
						wantTop, wantBottom := 0.0, 0.0
						if me > 0 {
							wantTop = float64(1000*(me-1) + iters)
						}
						if me < n-1 {
							wantBottom = float64(1000*(me+1) + iters)
						}
						if got[me][0] != wantTop || got[me][1] != wantBottom {
							t.Errorf("rank %d halos = %v, want [%v %v]",
								me, got[me], wantTop, wantBottom)
						}
					}
				})
			}
		}
	}
}

func TestCollectivesMatchAcrossBackends(t *testing.T) {
	// The same program must produce identical numerical results on every
	// backend — the portability claim.
	const n, count = 4, 9
	type outcome struct {
		allreduce []float64
		bcast     []float64
		gathered  []float64
		alltoall  []float64
	}
	run := func(b BackendID) outcome {
		var out outcome
		_, err := Launch(Config{Model: machine.Perlmutter(), NGPUs: n, Backend: b}, func(env *Env) {
			me := env.WorldRank()
			env.SetDevice(env.NodeRank())
			comm := NewCommunicator(env)
			stream := env.NewStream("s")
			coord := NewCoordinator(env, PureHost, stream)

			// AllReduce
			ar := Alloc[float64](env, count)
			for i := range ar.Data() {
				ar.Data()[i] = float64(me*count + i)
			}
			AllReduceInPlace(coord, gpu.ReduceSum, ar.Base(), count, comm)

			// Broadcast from rank 2
			bc := Alloc[float64](env, count)
			if me == 2 {
				for i := range bc.Data() {
					bc.Data()[i] = float64(i * i)
				}
			}
			Broadcast(coord, bc.Base(), count, 2, comm)

			// Gatherv to rank 1 with variable counts. Allocations must be
			// symmetric (same size on every rank); the contribution is a
			// prefix view, as in the CG solver.
			counts := []int{1, 2, 3, 4}
			displs := []int{0, 1, 3, 6}
			send := Alloc[float64](env, 4)
			for i := 0; i < counts[me]; i++ {
				send.Data()[i] = float64(100*me + i)
			}
			recv := Alloc[float64](env, 10)
			Gatherv(coord, send.Base(), recv.Base(), counts, displs, 1, comm)

			// AlltoAll
			a2as := Alloc[float64](env, n)
			a2ar := Alloc[float64](env, n)
			for i := range a2as.Data() {
				a2as.Data()[i] = float64(10*me + i)
			}
			AlltoAll(coord, a2as.Base(), a2ar.Base(), 1, comm)

			env.StreamSynchronize(stream)
			comm.Barrier(stream)
			env.StreamSynchronize(stream)
			if me == 0 {
				out.allreduce = append([]float64{}, ar.Data()...)
				out.bcast = append([]float64{}, bc.Data()...)
				out.alltoall = append([]float64{}, a2ar.Data()...)
			}
			if me == 1 {
				out.gathered = append([]float64{}, recv.Data()...)
			}
		})
		if err != nil {
			t.Fatalf("backend %v: %v", b, err)
		}
		return out
	}
	ref := run(MPIBackend)
	// Reference checks against hand-computed values.
	for i, v := range ref.allreduce {
		want := 0.0
		for r := 0; r < n; r++ {
			want += float64(r*count + i)
		}
		if v != want {
			t.Fatalf("MPI allreduce[%d] = %v, want %v", i, v, want)
		}
	}
	for i, v := range ref.bcast {
		if v != float64(i*i) {
			t.Fatalf("MPI bcast[%d] = %v", i, v)
		}
	}
	for _, b := range []BackendID{GpucclBackend, GpushmemBackend} {
		got := run(b)
		if fmt.Sprint(got) != fmt.Sprint(ref) {
			t.Errorf("backend %v results differ:\n got %+v\nwant %+v", b, got, ref)
		}
	}
}

func TestReduceAndScatter(t *testing.T) {
	const n = 4
	for _, b := range backendsFor(machine.MareNostrum5()) {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			_, err := Launch(Config{Model: machine.MareNostrum5(), NGPUs: n, Backend: b}, func(env *Env) {
				me := env.WorldRank()
				comm := NewCommunicator(env)
				stream := env.NewStream("s")
				coord := NewCoordinator(env, PureHost, stream)

				s := Alloc[float64](env, 3)
				r := Alloc[float64](env, 3)
				for i := range s.Data() {
					s.Data()[i] = float64(me + i)
				}
				Reduce(coord, gpu.ReduceSum, s.Base(), r.Base(), 3, 0, comm)
				env.StreamSynchronize(stream)
				comm.Barrier(stream)
				env.StreamSynchronize(stream)
				if me == 0 {
					for i := 0; i < 3; i++ {
						want := float64(0+1+2+3) + float64(n*i)
						if r.Data()[i] != want {
							t.Errorf("reduce[%d] = %v, want %v", i, r.Data()[i], want)
						}
					}
				}

				// Scatter from rank 3.
				src := Alloc[float64](env, 2*n)
				if me == 3 {
					for i := range src.Data() {
						src.Data()[i] = float64(i)
					}
				}
				dst := Alloc[float64](env, 2)
				Scatter(coord, src.Base(), dst.Base(), 2, 3, comm)
				env.StreamSynchronize(stream)
				comm.Barrier(stream)
				env.StreamSynchronize(stream)
				if dst.Data()[0] != float64(2*me) || dst.Data()[1] != float64(2*me+1) {
					t.Errorf("rank %d scatter = %v", me, dst.Data())
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAlltoAllvAcrossBackends(t *testing.T) {
	// Vectorized exchange with a shared counts/displs table: 3 elements
	// per pair, landing at padded, non-contiguous displacements (the
	// vectorized aspect). Pairwise counts must be symmetric per the
	// MPI_Alltoallv contract, which a shared table guarantees when counts
	// are uniform.
	const n, count, total = 4, 3, 20
	counts := []int{count, count, count, count}
	displs := []int{0, 5, 10, 15}
	run := func(b BackendID) [n][]float64 {
		var out [n][]float64
		_, err := Launch(Config{Model: machine.Perlmutter(), NGPUs: n, Backend: b}, func(env *Env) {
			me := env.WorldRank()
			comm := NewCommunicator(env)
			stream := env.NewStream("s")
			coord := NewCoordinator(env, PureHost, stream)
			send := Alloc[float64](env, total)
			recv := Alloc[float64](env, total)
			for r := 0; r < n; r++ {
				for i := 0; i < count; i++ {
					send.Data()[displs[r]+i] = float64(100*me + 10*r + i)
				}
			}
			AlltoAllv(coord, send.Base(), recv.Base(), counts, displs, counts, displs, comm)
			env.StreamSynchronize(stream)
			comm.Barrier(stream)
			env.StreamSynchronize(stream)
			out[me] = append([]float64{}, recv.Data()...)
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	ref := run(MPIBackend)
	for me := 0; me < n; me++ {
		for src := 0; src < n; src++ {
			for i := 0; i < count; i++ {
				want := float64(100*src + 10*me + i)
				if got := ref[me][displs[src]+i]; got != want {
					t.Fatalf("MPI rank %d recv[%d] = %v, want %v", me, displs[src]+i, got, want)
				}
			}
		}
	}
	for _, b := range []BackendID{GpucclBackend, GpushmemBackend} {
		got := run(b)
		for me := 0; me < n; me++ {
			for src := 0; src < n; src++ {
				for i := 0; i < count; i++ {
					at := displs[src] + i
					if got[me][at] != ref[me][at] {
						t.Fatalf("%v rank %d recv[%d] = %v, MPI ref %v",
							b, me, at, got[me][at], ref[me][at])
					}
				}
			}
		}
	}
}

func TestSplitAllBackends(t *testing.T) {
	// Split works on every backend (MPI_Comm_split / ncclCommSplit /
	// shmem_team_split): 6 ranks split by parity into two groups of 3;
	// each group's AllReduce must sum only its own members' world ranks,
	// and P2P within the split must address the right world peers.
	const n = 6
	for _, b := range backendsFor(machine.Perlmutter()) {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			_, err := Launch(Config{Model: machine.Perlmutter(), NGPUs: n, Backend: b}, func(env *Env) {
				me := env.WorldRank()
				comm := NewCommunicator(env)
				stream := env.NewStream("s")
				coord := NewCoordinator(env, PureHost, stream)

				color := me % 2
				sub := comm.Split(color, me)
				if sub.GlobalSize() != 3 {
					t.Errorf("rank %d: sub size = %d", me, sub.GlobalSize())
				}
				if want := me / 2; sub.GlobalRank() != want {
					t.Errorf("rank %d: sub rank = %d, want %d", me, sub.GlobalRank(), want)
				}

				// Collective scoped to the sub-communicator.
				x := Alloc[float64](env, 1)
				x.Data()[0] = float64(me)
				AllReduceInPlace(coord, gpu.ReduceSum, x.Base(), 1, sub)
				env.StreamSynchronize(stream)
				sub.Barrier(stream)
				env.StreamSynchronize(stream)
				want := 0.0
				for wr := color; wr < n; wr += 2 {
					want += float64(wr)
				}
				if x.Data()[0] != want {
					t.Errorf("rank %d: sub allreduce = %v, want %v", me, x.Data()[0], want)
				}

				// P2P within the sub-communicator: ring to the next member.
				subN := sub.GlobalSize()
				right := (sub.GlobalRank() + 1) % subN
				left := (sub.GlobalRank() - 1 + subN) % subN
				sendB := Alloc[float64](env, 1)
				recvB := Alloc[float64](env, 1)
				sync := Alloc[uint64](env, 2)
				sendB.Data()[0] = float64(1000 + me)
				coord.CommStart()
				Post(coord, sendB.Base(), recvB.Base(), 1, Sig(sync, 0), 1, right, sub)
				Acknowledge(coord, recvB.Base(), 1, Sig(sync, 0), 1, left, sub)
				coord.CommEnd()
				env.StreamSynchronize(stream)
				sub.Barrier(stream)
				env.StreamSynchronize(stream)
				leftWorld := (me - 2 + n) % n
				if recvB.Data()[0] != float64(1000+leftWorld) {
					t.Errorf("rank %d: sub p2p got %v, want %v", me, recvB.Data()[0], float64(1000+leftWorld))
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSplitNoColorReturnsNil(t *testing.T) {
	for _, b := range backendsFor(machine.Perlmutter()) {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			_, err := Launch(Config{Model: machine.Perlmutter(), NGPUs: 4, Backend: b}, func(env *Env) {
				comm := NewCommunicator(env)
				color := 0
				if env.WorldRank() == 3 {
					color = -1 // joins no sub-communicator
				}
				sub := comm.Split(color, env.WorldRank())
				if env.WorldRank() == 3 {
					if sub != nil {
						t.Error("negative color returned a communicator")
					}
					return
				}
				if sub.GlobalSize() != 3 {
					t.Errorf("sub size = %d", sub.GlobalSize())
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestPartialDeviceRequiresShmem(t *testing.T) {
	_, err := Launch(Config{Model: machine.Perlmutter(), NGPUs: 2, Backend: MPIBackend}, func(env *Env) {
		defer func() {
			if recover() == nil {
				t.Error("PartialDevice on MPI did not panic")
			}
		}()
		NewCoordinator(env, PartialDevice, env.DefaultStream())
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGroupingEnablesBidirectionalRendezvous(t *testing.T) {
	// Large (rendezvous-protocol) bidirectional exchanges deadlock with
	// blocking calls unless ordered; grouping (Isend/Irecv + Waitall)
	// overlaps the two directions, so it must also beat the serialized
	// even-sends-first ordering.
	const count = 1 << 17 // 1 MiB of float64: rendezvous on all machines
	run := func(grouped bool) (end int64) {
		rep, err := Launch(Config{Model: machine.Perlmutter(), NGPUs: 2, Backend: MPIBackend}, func(env *Env) {
			me := env.WorldRank()
			comm := NewCommunicator(env)
			stream := env.NewStream("s")
			coord := NewCoordinator(env, PureHost, stream)
			a := Alloc[float64](env, count)
			b := Alloc[float64](env, count)
			sync := Alloc[uint64](env, 2)
			peer := 1 - me
			for iter := 1; iter <= 10; iter++ {
				if grouped {
					coord.CommStart()
					Post(coord, a.Base(), b.Base(), count, Sig(sync, 0), uint64(iter), peer, comm)
					Acknowledge(coord, b.Base(), count, Sig(sync, 1), uint64(iter), peer, comm)
					coord.CommEnd()
					continue
				}
				// Blocking calls must be ordered to avoid deadlock.
				if me == 0 {
					Post(coord, a.Base(), b.Base(), count, Sig(sync, 0), uint64(iter), peer, comm)
					Acknowledge(coord, b.Base(), count, Sig(sync, 1), uint64(iter), peer, comm)
				} else {
					Acknowledge(coord, b.Base(), count, Sig(sync, 1), uint64(iter), peer, comm)
					Post(coord, a.Base(), b.Base(), count, Sig(sync, 0), uint64(iter), peer, comm)
				}
			}
		})
		if err != nil {
			panic(err)
		}
		return int64(rep.End)
	}
	g := run(true)
	ug := run(false)
	if g >= ug {
		t.Fatalf("grouped bidirectional exchange (%d) not faster than serialized blocking (%d)", g, ug)
	}
}
