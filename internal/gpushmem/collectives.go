package gpushmem

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/machine"
	"repro/internal/sim"
)

// Team collectives over the world team. NVSHMEM provides barrier,
// broadcast, reductions, and fcollect natively; variable-size gathers are
// emulated with Put/Get plus barriers — the same strategy the paper
// describes for UNICONN's GPUSHMEM backend (§V-A).
//
// All PEs must invoke the same collectives in the same order per API
// flavour. Functional results are computed in a deterministic rank order
// when the last PE arrives; timing advances through per-round transfers.

type instKey struct {
	seq  uint64
	kind string
}

// collInst is the shared state of one in-flight collective.
type collInst struct {
	arrived int
	ready   *sim.Gate
	stepRdv *sim.Rendezvous
	sends   []gpu.View
	recvs   []gpu.View
}

func (pe *PE) instanceFor(key instKey) *collInst {
	inst := pe.w.insts[key]
	if inst == nil {
		n := pe.Size()
		inst = &collInst{
			ready:   sim.NewGate(fmt.Sprintf("shmem-%s-%d", key.kind, key.seq)),
			stepRdv: sim.NewRendezvous(fmt.Sprintf("shmem-step-%s-%d", key.kind, key.seq), n),
			sends:   make([]gpu.View, n),
			recvs:   make([]gpu.View, n),
		}
		pe.w.insts[key] = inst
	}
	return inst
}

func (inst *collInst) arrive(p *sim.Proc, pe *PE, send, recv gpu.View, key instKey, dataFn func(*collInst)) {
	inst.sends[pe.rank] = send
	inst.recvs[pe.rank] = recv
	inst.arrived++
	if inst.arrived == pe.Size() {
		if dataFn != nil {
			dataFn(inst)
		}
		delete(pe.w.insts, key)
		inst.ready.Fire(p.Engine())
		return
	}
	inst.ready.Wait(p)
}

// exchangeRounds runs the dissemination/recursive-doubling timing skeleton:
// per round, each PE sends bytes to a derived peer and all PEs stay in
// lockstep.
func (pe *PE) exchangeRounds(p *sim.Proc, inst *collInst, api machine.API,
	rounds int, peerOf func(round int) int, bytesOf func(round int) int64) {

	fab := pe.w.cluster.Fabric
	cl := pe.w.cluster
	for r := 0; r < rounds; r++ {
		inst.stepRdv.Arrive(p)
		peer := peerOf(r)
		bytes := bytesOf(r)
		if peer != pe.rank && peer >= 0 {
			path := fab.PathBetween(pe.rank, peer)
			cost := cl.Cost(machine.LibGPUSHMEM, api, path, bytes)
			end := fab.Transfer(p.Now(), pe.rank, peer, bytes, cost)
			p.AdvanceTo(end)
		}
	}
	inst.stepRdv.Arrive(p)
}

func log2Ceil(n int) int {
	r := 0
	for v := 1; v < n; v <<= 1 {
		r++
	}
	return r
}

// barrierBody implements barrier_all as a dissemination exchange of empty
// messages.
func (pe *PE) barrierBody(p *sim.Proc, key instKey, api machine.API) {
	if h := pe.w.collHist(key.kind); h != nil {
		start := p.Now()
		defer func() { h.Observe(int64(p.Now().Sub(start))) }()
	}
	inst := pe.instanceFor(key)
	inst.arrive(p, pe, gpu.View{}, gpu.View{}, key, nil)
	n := pe.Size()
	pe.exchangeRounds(p, inst, api, log2Ceil(n),
		func(r int) int { return (pe.rank + (1 << r)) % n },
		func(int) int64 { return 8 })
}

// allReduceBody: recursive-doubling timing, deterministic rank-ordered data.
func (pe *PE) allReduceBody(p *sim.Proc, key instKey, send, recv gpu.View, opr gpu.ReduceOp, api machine.API) {
	if h := pe.w.collHist(key.kind); h != nil {
		start := p.Now()
		defer func() { h.Observe(int64(p.Now().Sub(start))) }()
	}
	inst := pe.instanceFor(key)
	count := send.Len()
	n := pe.Size()
	inst.arrive(p, pe, send, recv, key, func(inst *collInst) {
		acc := inst.sends[0].Clone()
		for r := 1; r < n; r++ {
			gpu.Reduce(acc, inst.sends[r], count, opr)
		}
		for r := 0; r < n; r++ {
			gpu.Copy(inst.recvs[r], acc, count)
		}
		acc.Release()
	})
	bytes := send.Bytes()
	pe.exchangeRounds(p, inst, api, log2Ceil(n),
		func(r int) int {
			peer := pe.rank ^ (1 << r)
			if peer >= n {
				return -1
			}
			return peer
		},
		func(int) int64 { return bytes })
}

// broadcastBody: the root puts to every PE; others wait.
func (pe *PE) broadcastBody(p *sim.Proc, key instKey, buf gpu.View, root int, api machine.API) {
	if h := pe.w.collHist(key.kind); h != nil {
		start := p.Now()
		defer func() { h.Observe(int64(p.Now().Sub(start))) }()
	}
	inst := pe.instanceFor(key)
	n := pe.Size()
	inst.arrive(p, pe, buf, buf, key, func(inst *collInst) {
		src := inst.sends[root]
		for r := 0; r < n; r++ {
			if r != root {
				gpu.Copy(inst.recvs[r], src, src.Len())
			}
		}
	})
	fab := pe.w.cluster.Fabric
	cl := pe.w.cluster
	if pe.rank == root {
		var last sim.Time = p.Now()
		for r := 0; r < n; r++ {
			if r == root {
				continue
			}
			path := fab.PathBetween(pe.rank, r)
			cost := cl.Cost(machine.LibGPUSHMEM, api, path, buf.Bytes())
			end := fab.Transfer(p.Now(), pe.rank, r, buf.Bytes(), cost)
			if end > last {
				last = end
			}
		}
		p.AdvanceTo(last)
	}
	inst.stepRdv.Arrive(p) // all PEs leave when the slowest put lands
}

// allGathervBody emulates a variable-size allgather with puts + barrier:
// each PE puts its contribution into every other PE's recv buffer at its
// displacement, then all synchronize.
func (pe *PE) allGathervBody(p *sim.Proc, key instKey, send, recv gpu.View, counts, displs []int, api machine.API) {
	if h := pe.w.collHist(key.kind); h != nil {
		start := p.Now()
		defer func() { h.Observe(int64(p.Now().Sub(start))) }()
	}
	inst := pe.instanceFor(key)
	n := pe.Size()
	me := pe.rank
	inst.arrive(p, pe, send, recv, key, func(inst *collInst) {
		for r := 0; r < n; r++ {
			for dst := 0; dst < n; dst++ {
				gpu.Copy(inst.recvs[dst].Slice(displs[r], counts[r]), inst.sends[r], counts[r])
			}
		}
	})
	fab := pe.w.cluster.Fabric
	cl := pe.w.cluster
	bytes := send.Bytes()
	var last = p.Now()
	for off := 1; off < n; off++ {
		dst := (me + off) % n
		path := fab.PathBetween(me, dst)
		cost := cl.Cost(machine.LibGPUSHMEM, api, path, bytes)
		end := fab.Transfer(p.Now(), me, dst, bytes, cost)
		if end > last {
			last = end
		}
	}
	p.AdvanceTo(last)
	inst.stepRdv.Arrive(p) // barrier: everyone's puts delivered
}

// --- Device-side collectives ---

func (pe *PE) devKey(kind string) instKey {
	pe.devOpSeq++
	return instKey{seq: pe.devOpSeq, kind: kind}
}

// DevBarrierAll is nvshmem_barrier_all from kernel code (requires
// CollectiveLaunch).
func (pe *PE) DevBarrierAll(k *gpu.KernelCtx) {
	pe.callCost(k.P, machine.APIDevice)
	pe.barrierBody(k.P, pe.devKey("d-barrier"), machine.APIDevice)
}

// DevAllReduce reduces send into recv on every PE from kernel code.
func (pe *PE) DevAllReduce(k *gpu.KernelCtx, send, recv gpu.View, opr gpu.ReduceOp) {
	pe.callCost(k.P, machine.APIDevice)
	pe.allReduceBody(k.P, pe.devKey("d-allreduce"), send, recv, opr, machine.APIDevice)
}

// DevBroadcast broadcasts root's buf from kernel code.
func (pe *PE) DevBroadcast(k *gpu.KernelCtx, buf gpu.View, root int) {
	pe.callCost(k.P, machine.APIDevice)
	pe.broadcastBody(k.P, pe.devKey("d-broadcast"), buf, root, machine.APIDevice)
}

// DevAllGatherv emulates a variable-size allgather from kernel code.
func (pe *PE) DevAllGatherv(k *gpu.KernelCtx, send, recv gpu.View, counts, displs []int) {
	pe.callCost(k.P, machine.APIDevice)
	pe.allGathervBody(k.P, pe.devKey("d-allgatherv"), send, recv, counts, displs, machine.APIDevice)
}

// --- Host-side stream-ordered collectives ---

func (pe *PE) hostKey(kind string) instKey {
	pe.devOpSeq++ // host collectives share the ordering space: all PEs
	return instKey{seq: pe.devOpSeq, kind: kind}
}

// BarrierAllOnStream enqueues a barrier_all on the stream.
func (pe *PE) BarrierAllOnStream(p *sim.Proc, s *gpu.Stream) {
	key := pe.hostKey("h-barrier")
	pe.hostEnqueue(p, s, "barrier-all", func(sp *sim.Proc) {
		pe.barrierBody(sp, key, machine.APIHost)
	})
}

// AllReduceOnStream enqueues an allreduce on the stream.
func (pe *PE) AllReduceOnStream(p *sim.Proc, s *gpu.Stream, send, recv gpu.View, opr gpu.ReduceOp) {
	key := pe.hostKey("h-allreduce")
	pe.hostEnqueue(p, s, "allreduce", func(sp *sim.Proc) {
		pe.allReduceBody(sp, key, send, recv, opr, machine.APIHost)
	})
}

// BroadcastOnStream enqueues a broadcast on the stream.
func (pe *PE) BroadcastOnStream(p *sim.Proc, s *gpu.Stream, buf gpu.View, root int) {
	key := pe.hostKey("h-broadcast")
	pe.hostEnqueue(p, s, "broadcast", func(sp *sim.Proc) {
		pe.broadcastBody(sp, key, buf, root, machine.APIHost)
	})
}

// AllGathervOnStream enqueues the emulated variable-size allgather on the
// stream.
func (pe *PE) AllGathervOnStream(p *sim.Proc, s *gpu.Stream, send, recv gpu.View, counts, displs []int) {
	key := pe.hostKey("h-allgatherv")
	pe.hostEnqueue(p, s, "allgatherv", func(sp *sim.Proc) {
		pe.allGathervBody(sp, key, send, recv, counts, displs, machine.APIHost)
	})
}
