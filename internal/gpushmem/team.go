package gpushmem

// Teams: OpenSHMEM-style PE subsets (nvshmem_team_t). A Team scopes the
// host-side collectives to a subset of PEs; TeamSplit partitions an
// existing team by color/key like shmem_team_split (and MPI_Comm_split).
// The world team is implicit: the PE-level collective methods in
// collectives.go delegate to it.

import (
	"fmt"
	"sort"

	"repro/internal/machine"
	"repro/internal/sim"

	"repro/internal/gpu"
)

// Team is a PE subset handle owned by one PE.
type Team struct {
	pe      *PE
	id      uint64
	members []int // world PE ids, ordered by team rank
	myIdx   int
}

// WorldTeam returns the implicit all-PEs team handle for this PE.
func (pe *PE) WorldTeam() *Team {
	members := make([]int, pe.Size())
	for i := range members {
		members[i] = i
	}
	return &Team{pe: pe, id: 0, members: members, myIdx: pe.rank}
}

// Rank reports the calling PE's rank within the team.
func (t *Team) Rank() int { return t.myIdx }

// Size reports the team size.
func (t *Team) Size() int { return len(t.members) }

// World translates a team rank to a world PE id.
func (t *Team) World(r int) int { return t.members[r] }

// splitInst coordinates one collective TeamSplit call.
type splitInst struct {
	entries map[int][2]int // world rank -> (color, key)
	rdv     *sim.Rendezvous
	ids     map[int]uint64 // color -> new team id
}

// TeamSplit partitions the team by color (negative = join no team),
// ordering each new team by (key, old world rank). Every member of the
// team must call it; the call synchronizes like a barrier.
func (t *Team) TeamSplit(p *sim.Proc, color, key int) *Team {
	pe := t.pe
	w := pe.w
	pe.splitSeq++
	skey := instKey{seq: pe.splitSeq, kind: fmt.Sprintf("team-split-%d", t.id)}
	si := w.splits[skey]
	if si == nil {
		si = &splitInst{
			entries: map[int][2]int{},
			rdv:     sim.NewRendezvous(skey.kind, t.Size()),
			ids:     map[int]uint64{},
		}
		w.splits[skey] = si
	}
	si.entries[pe.rank] = [2]int{color, key}
	// Split costs one dissemination exchange, like a small barrier.
	prof := pe.model().Profile(machine.LibGPUSHMEM, machine.APIHost)
	p.Advance(prof.CallOverhead * sim.Duration(log2Ceil(t.Size())+1))
	si.rdv.Arrive(p)
	if color < 0 {
		return nil
	}
	// All entries present: compute my group deterministically.
	type ent struct{ world, color, key int }
	var group []ent
	for _, wr := range t.members {
		e := si.entries[wr]
		if e[0] == color {
			group = append(group, ent{world: wr, color: e[0], key: e[1]})
		}
	}
	sort.Slice(group, func(i, j int) bool {
		if group[i].key != group[j].key {
			return group[i].key < group[j].key
		}
		return group[i].world < group[j].world
	})
	// Deterministic new team id shared by all members of this color.
	if _, ok := si.ids[color]; !ok {
		w.nextTeamID++
		si.ids[color] = w.nextTeamID
	}
	nt := &Team{pe: pe, id: si.ids[color], myIdx: -1}
	for i, e := range group {
		nt.members = append(nt.members, e.world)
		if e.world == pe.rank {
			nt.myIdx = i
		}
	}
	if nt.myIdx < 0 {
		panic("gpushmem: split lost the calling PE")
	}
	return nt
}

// shrinkInst coordinates one collective Shrink across the survivors.
type shrinkInst struct {
	rdv *sim.Rendezvous
	id  uint64
}

// Shrink reconstructs the team over the members not in dead, preserving
// relative order — the NVSHMEM recovery idiom of destroying a broken team
// and rebuilding it from the surviving PEs. All survivors must call it with
// the same dead set and generation (gen is bumped once per failure epoch by
// the caller); the call synchronizes the survivors like a barrier before
// the new team is usable. Instances of the old team can never match new
// traffic: the rebuilt team has a fresh id.
func (t *Team) Shrink(p *sim.Proc, dead map[int]bool, gen int) *Team {
	pe := t.pe
	w := pe.w
	var members []int
	myIdx := -1
	for _, wr := range t.members {
		if dead[wr] {
			continue
		}
		if wr == pe.rank {
			myIdx = len(members)
		}
		members = append(members, wr)
	}
	if myIdx < 0 {
		panic(fmt.Sprintf("gpushmem: PE %d shrinking a team it failed in", pe.rank))
	}
	skey := instKey{seq: uint64(gen), kind: fmt.Sprintf("team-shrink-%d", t.id)}
	si := w.shrinks[skey]
	if si == nil {
		w.nextTeamID++
		si = &shrinkInst{
			rdv: sim.NewRendezvous(skey.kind, len(members)),
			id:  w.nextTeamID,
		}
		w.shrinks[skey] = si
	}
	// Teardown plus reconstruction exchange, then all survivors synchronize.
	prof := pe.model().Profile(machine.LibGPUSHMEM, machine.APIHost)
	p.Advance(prof.CallOverhead * sim.Duration(log2Ceil(len(members))+2))
	si.rdv.Arrive(p)
	return &Team{pe: pe, id: si.id, members: members, myIdx: myIdx}
}

// Team-scoped host collectives: the same bodies as the world-team versions
// in collectives.go, with ranks mapped through the membership table and
// instances keyed by team id (so concurrent teams do not cross-talk).

func (t *Team) key(kind string) instKey {
	t.pe.devOpSeq++
	return instKey{seq: t.pe.devOpSeq, kind: fmt.Sprintf("%s@team%d", kind, t.id)}
}

// instanceForTeam sizes the collective instance to the team.
func (t *Team) instance(key instKey) *collInst {
	inst := t.pe.w.insts[key]
	if inst == nil {
		n := t.Size()
		inst = &collInst{
			ready:   sim.NewGate(fmt.Sprintf("shmem-%s-%d", key.kind, key.seq)),
			stepRdv: sim.NewRendezvous(fmt.Sprintf("shmem-step-%s-%d", key.kind, key.seq), n),
			sends:   make([]gpu.View, n),
			recvs:   make([]gpu.View, n),
		}
		t.pe.w.insts[key] = inst
	}
	return inst
}

func (inst *collInst) arriveTeam(p *sim.Proc, t *Team, send, recv gpu.View, key instKey, dataFn func(*collInst)) {
	inst.sends[t.myIdx] = send
	inst.recvs[t.myIdx] = recv
	inst.arrived++
	if inst.arrived == t.Size() {
		if dataFn != nil {
			dataFn(inst)
		}
		delete(t.pe.w.insts, key)
		inst.ready.Fire(p.Engine())
		return
	}
	inst.ready.Wait(p)
}

// exchangeRounds over team members (peers derived in team-rank space,
// transfers between world PE ids).
func (t *Team) exchangeRounds(p *sim.Proc, inst *collInst, rounds int, peerOf func(round int) int, bytesOf func(round int) int64) {
	pe := t.pe
	fab := pe.w.cluster.Fabric
	cl := pe.w.cluster
	meWorld := pe.rank
	for r := 0; r < rounds; r++ {
		inst.stepRdv.Arrive(p)
		peer := peerOf(r)
		if peer >= 0 && peer < t.Size() && peer != t.myIdx {
			dst := t.World(peer)
			path := fab.PathBetween(meWorld, dst)
			cost := cl.Cost(machine.LibGPUSHMEM, machine.APIHost, path, bytesOf(r))
			end := fab.Transfer(p.Now(), meWorld, dst, bytesOf(r), cost)
			p.AdvanceTo(end)
		}
	}
	inst.stepRdv.Arrive(p)
}

// BarrierOnStream synchronizes the team's PEs with respect to the stream.
func (t *Team) BarrierOnStream(p *sim.Proc, s *gpu.Stream) {
	key := t.key("h-team-barrier")
	t.pe.hostEnqueue(p, s, "team-barrier", func(sp *sim.Proc) {
		inst := t.instance(key)
		inst.arriveTeam(sp, t, gpu.View{}, gpu.View{}, key, nil)
		n := t.Size()
		t.exchangeRounds(sp, inst, log2Ceil(n),
			func(r int) int { return (t.myIdx + (1 << r)) % n },
			func(int) int64 { return 8 })
	})
}

// AllReduceOnStream reduces count elements across the team.
func (t *Team) AllReduceOnStream(p *sim.Proc, s *gpu.Stream, send, recv gpu.View, opr gpu.ReduceOp) {
	key := t.key("h-team-allreduce")
	t.pe.hostEnqueue(p, s, "team-allreduce", func(sp *sim.Proc) {
		inst := t.instance(key)
		count := send.Len()
		n := t.Size()
		inst.arriveTeam(sp, t, send, recv, key, func(inst *collInst) {
			acc := inst.sends[0].Clone()
			for r := 1; r < n; r++ {
				gpu.Reduce(acc, inst.sends[r], count, opr)
			}
			for r := 0; r < n; r++ {
				gpu.Copy(inst.recvs[r], acc, count)
			}
			acc.Release()
		})
		bytes := send.Bytes()
		t.exchangeRounds(sp, inst, log2Ceil(n),
			func(r int) int {
				peer := t.myIdx ^ (1 << r)
				if peer >= n {
					return -1
				}
				return peer
			},
			func(int) int64 { return bytes })
	})
}

// BroadcastOnStream broadcasts the team-rank root's buffer.
func (t *Team) BroadcastOnStream(p *sim.Proc, s *gpu.Stream, buf gpu.View, root int) {
	key := t.key("h-team-broadcast")
	t.pe.hostEnqueue(p, s, "team-broadcast", func(sp *sim.Proc) {
		inst := t.instance(key)
		n := t.Size()
		inst.arriveTeam(sp, t, buf, buf, key, func(inst *collInst) {
			src := inst.sends[root]
			for r := 0; r < n; r++ {
				if r != root {
					gpu.Copy(inst.recvs[r], src, src.Len())
				}
			}
		})
		fab := t.pe.w.cluster.Fabric
		cl := t.pe.w.cluster
		if t.myIdx == root {
			last := sp.Now()
			for r := 0; r < n; r++ {
				if r == root {
					continue
				}
				dst := t.World(r)
				path := fab.PathBetween(t.pe.rank, dst)
				cost := cl.Cost(machine.LibGPUSHMEM, machine.APIHost, path, buf.Bytes())
				end := fab.Transfer(sp.Now(), t.pe.rank, dst, buf.Bytes(), cost)
				if end > last {
					last = end
				}
			}
			sp.AdvanceTo(last)
		}
		inst.stepRdv.Arrive(sp)
	})
}

// AllGathervOnStream gathers variable contributions across the team.
func (t *Team) AllGathervOnStream(p *sim.Proc, s *gpu.Stream, send, recv gpu.View, counts, displs []int) {
	key := t.key("h-team-allgatherv")
	t.pe.hostEnqueue(p, s, "team-allgatherv", func(sp *sim.Proc) {
		inst := t.instance(key)
		n := t.Size()
		inst.arriveTeam(sp, t, send, recv, key, func(inst *collInst) {
			for r := 0; r < n; r++ {
				for dst := 0; dst < n; dst++ {
					gpu.Copy(inst.recvs[dst].Slice(displs[r], counts[r]), inst.sends[r], counts[r])
				}
			}
		})
		fab := t.pe.w.cluster.Fabric
		cl := t.pe.w.cluster
		bytes := send.Bytes()
		last := sp.Now()
		for off := 1; off < n; off++ {
			dst := t.World((t.myIdx + off) % n)
			path := fab.PathBetween(t.pe.rank, dst)
			cost := cl.Cost(machine.LibGPUSHMEM, machine.APIHost, path, bytes)
			end := fab.Transfer(sp.Now(), t.pe.rank, dst, bytes, cost)
			if end > last {
				last = end
			}
		}
		sp.AdvanceTo(last)
		inst.stepRdv.Arrive(sp)
	})
}
