package gpushmem

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/machine"
	"repro/internal/sim"
)

// One-sided data movement. Device-side entry points (DevXxx) are called
// from kernel bodies with the kernel's context; host-side entry points
// (XxxOnStream) enqueue the operation on a stream, like the nvshmemx
// *_on_stream API. Both funnel into the same transfer core.

// transfer moves the payload of one put (issuer pe, data pe→target) and
// applies the optional signal at delivery. It returns the delivery gate.
func (pe *PE) transfer(eng *sim.Engine, at sim.Time, dst gpu.View, src gpu.View, n int,
	target int, api machine.API, gran ThreadGroup, sig *SigRef, sigOp SignalOp, sigVal uint64) *sim.Gate {
	return pe.transferRaw(eng, at, dst, src, n, pe.rank, target, target, api, gran, sig, sigOp, sigVal)
}

// transferRaw is the data-movement core: n elements flow srcRank→dstRank,
// the signal (if any) fires on sigRank, and completion is charged to the
// issuing PE's NBI accounting.
func (pe *PE) transferRaw(eng *sim.Engine, at sim.Time, dst gpu.View, src gpu.View, n int,
	srcRank, dstRank, sigRank int, api machine.API, gran ThreadGroup,
	sig *SigRef, sigOp SignalOp, sigVal uint64) *sim.Gate {

	fab := pe.w.cluster.Fabric
	bytes := int64(n) * int64(src.ElemSize())
	path := fab.PathBetween(srcRank, dstRank)
	cost := pe.w.cluster.Cost(machine.LibGPUSHMEM, api, path, bytes)
	if api == machine.APIDevice {
		cost.BytesPerSec *= gran.granEff()
	}
	arrive := fab.Transfer(at, srcRank, dstRank, bytes, cost)
	done := sim.NewGate(fmt.Sprintf("put pe%d->pe%d", srcRank, dstRank))
	pe.issued.Add(eng, 1)
	eng.After(arrive.Sub(eng.Now()), func() {
		gpu.Copy(dst, src, n)
		if sig != nil {
			sig.apply(eng, sigRank, sigOp, sigVal)
		}
		pe.completed.Add(eng, 1)
		done.Fire(eng)
	})
	return done
}

// callCost charges the per-call overhead of the API flavour.
func (pe *PE) callCost(p *sim.Proc, api machine.API) {
	p.Advance(pe.model().Profile(machine.LibGPUSHMEM, api).CallOverhead)
}

// --- Device-side API (call from kernel bodies) ---

// DevPutNBI is nvshmem_put_nbi: non-blocking one-sided write of n elements
// of src into dest on the target PE.
func (pe *PE) DevPutNBI(k *gpu.KernelCtx, g ThreadGroup, dest SymRef, src gpu.View, n, target int) {
	pe.callCost(k.P, machine.APIDevice)
	pe.transfer(k.P.Engine(), k.P.Now(), dest.On(target).Slice(0, n), src, n,
		target, machine.APIDevice, g, nil, SignalSet, 0)
}

// DevPutSignalNBI is nvshmemx_put_signal_nbi: like DevPutNBI but updates the
// signal word on the target after the payload is delivered.
func (pe *PE) DevPutSignalNBI(k *gpu.KernelCtx, g ThreadGroup, dest SymRef, src gpu.View, n int,
	sig SigRef, sigVal uint64, sigOp SignalOp, target int) {
	pe.callCost(k.P, machine.APIDevice)
	pe.transfer(k.P.Engine(), k.P.Now(), dest.On(target).Slice(0, n), src, n,
		target, machine.APIDevice, g, &sig, sigOp, sigVal)
}

// DevPut is the blocking variant: it returns when the payload is delivered.
func (pe *PE) DevPut(k *gpu.KernelCtx, g ThreadGroup, dest SymRef, src gpu.View, n, target int) {
	pe.callCost(k.P, machine.APIDevice)
	done := pe.transfer(k.P.Engine(), k.P.Now(), dest.On(target).Slice(0, n), src, n,
		target, machine.APIDevice, g, nil, SignalSet, 0)
	done.Wait(k.P)
}

// DevGet is a blocking one-sided read of n elements of src on the target PE
// into the local dst. The request adds one extra path latency before data
// flows back.
func (pe *PE) DevGet(k *gpu.KernelCtx, g ThreadGroup, dst gpu.View, src SymRef, n, target int) {
	pe.callCost(k.P, machine.APIDevice)
	path := pe.w.cluster.Fabric.PathBetween(pe.rank, target)
	req := pe.w.cluster.Cost(machine.LibGPUSHMEM, machine.APIDevice, path, 0).Latency
	k.P.Advance(req) // request flight
	done := pe.transferRaw(k.P.Engine(), k.P.Now(), dst, src.On(target).Slice(0, n), n,
		target, pe.rank, pe.rank, machine.APIDevice, g, nil, SignalSet, 0)
	done.Wait(k.P)
}

// DevSignalWaitUntil is nvshmem_signal_wait_until on the local PE.
func (pe *PE) DevSignalWaitUntil(k *gpu.KernelCtx, sig SigRef, cmp Cmp, val uint64) {
	pe.callCost(k.P, machine.APIDevice)
	sig.counter(pe.rank).WaitUntil(k.P, func(v uint64) bool { return cmp.match(v, val) })
}

// DevQuiet is nvshmem_quiet: waits for completion of all NBI operations
// issued by this PE.
func (pe *PE) DevQuiet(k *gpu.KernelCtx) {
	pe.callCost(k.P, machine.APIDevice)
	target := pe.issued.Value()
	pe.completed.WaitGE(k.P, target)
}

// DevFence is nvshmem_fence: ordering between puts to the same PE. The
// simulated fabric delivers same-pair messages in issue order, so the fence
// costs only its instruction overhead.
func (pe *PE) DevFence(k *gpu.KernelCtx) { pe.callCost(k.P, machine.APIDevice) }

// --- Host-side stream-ordered API (nvshmemx *_on_stream) ---

// PutSignalOnStream enqueues a put-with-signal on the stream.
func (pe *PE) PutSignalOnStream(p *sim.Proc, s *gpu.Stream, dest SymRef, src gpu.View, n int,
	sig SigRef, sigVal uint64, sigOp SignalOp, target int) {
	pe.hostEnqueue(p, s, fmt.Sprintf("put-signal->%d", target), func(sp *sim.Proc) {
		done := pe.transfer(sp.Engine(), sp.Now(), dest.On(target).Slice(0, n), src, n,
			target, machine.APIHost, Block, &sig, sigOp, sigVal)
		done.Wait(sp)
	})
}

// PutOnStream enqueues a put on the stream.
func (pe *PE) PutOnStream(p *sim.Proc, s *gpu.Stream, dest SymRef, src gpu.View, n, target int) {
	pe.hostEnqueue(p, s, fmt.Sprintf("put->%d", target), func(sp *sim.Proc) {
		done := pe.transfer(sp.Engine(), sp.Now(), dest.On(target).Slice(0, n), src, n,
			target, machine.APIHost, Block, nil, SignalSet, 0)
		done.Wait(sp)
	})
}

// SignalWaitOnStream enqueues a signal wait: subsequent stream work does not
// run until the local signal word satisfies the comparison.
func (pe *PE) SignalWaitOnStream(p *sim.Proc, s *gpu.Stream, sig SigRef, cmp Cmp, val uint64) {
	pe.hostEnqueue(p, s, "signal-wait", func(sp *sim.Proc) {
		sig.counter(pe.rank).WaitUntil(sp, func(v uint64) bool { return cmp.match(v, val) })
	})
}

// QuietOnStream enqueues a quiet on the stream.
func (pe *PE) QuietOnStream(p *sim.Proc, s *gpu.Stream) {
	pe.hostEnqueue(p, s, "quiet", func(sp *sim.Proc) {
		target := pe.issued.Value()
		pe.completed.WaitGE(sp, target)
	})
}

// hostEnqueue places one host-API operation on the stream, paying the
// host-side call and stream-launch overheads.
func (pe *PE) hostEnqueue(p *sim.Proc, s *gpu.Stream, label string, run func(sp *sim.Proc)) {
	prof := pe.model().Profile(machine.LibGPUSHMEM, machine.APIHost)
	p.Advance(prof.CallOverhead)
	s.Enqueue(label, func(sp *sim.Proc) {
		sp.Advance(prof.LaunchOverhead)
		run(sp)
	})
}

// CollectiveLaunch launches a kernel that may use device-side collective
// operations (nvshmemx_collective_launch). All PEs must call it; the
// kernels start together once every PE's launch reaches the GPU, mirroring
// the grid-wide cooperative-launch requirement.
func (pe *PE) CollectiveLaunch(p *sim.Proc, s *gpu.Stream, k *gpu.Kernel, args any) {
	pe.launchSeq++
	key := instKey{seq: pe.launchSeq, kind: "coll-launch"}
	inner := *k
	body := inner.Body
	inner.Body = func(kc *gpu.KernelCtx) {
		inst := pe.instanceFor(key)
		inst.arrive(kc.P, pe, gpu.View{}, gpu.View{}, key, nil)
		if body != nil {
			body(kc)
		}
	}
	s.Launch(p, &inner, args)
}
