package gpushmem

import (
	"fmt"
	"testing"

	"repro/internal/gpu"
	"repro/internal/machine"
	"repro/internal/sim"
)

func TestWorldTeamShape(t *testing.T) {
	launch(t, machine.Perlmutter(), 4, func(p *sim.Proc, pe *PE) {
		wt := pe.WorldTeam()
		if wt.Size() != 4 || wt.Rank() != pe.Rank() {
			t.Errorf("world team %d/%d for pe %d", wt.Rank(), wt.Size(), pe.Rank())
		}
		for r := 0; r < 4; r++ {
			if wt.World(r) != r {
				t.Errorf("world team member %d = %d", r, wt.World(r))
			}
		}
	})
}

func TestTeamSplitMembershipAndOrdering(t *testing.T) {
	const n = 6
	launch(t, machine.Perlmutter(), n, func(p *sim.Proc, pe *PE) {
		wt := pe.WorldTeam()
		// Reverse ordering by key within each parity class.
		team := wt.TeamSplit(p, pe.Rank()%2, -pe.Rank())
		if team.Size() != 3 {
			t.Errorf("team size = %d", team.Size())
		}
		// Keys are -world: the highest world rank gets team rank 0.
		wantRank := (n - 1 - pe.Rank()) / 2
		if team.Rank() != wantRank {
			t.Errorf("pe %d team rank = %d, want %d", pe.Rank(), team.Rank(), wantRank)
		}
		// Membership covers exactly the parity class.
		seen := map[int]bool{}
		for r := 0; r < team.Size(); r++ {
			seen[team.World(r)] = true
		}
		for wr := pe.Rank() % 2; wr < n; wr += 2 {
			if !seen[wr] {
				t.Errorf("pe %d team missing member %d", pe.Rank(), wr)
			}
		}
	})
}

func TestTeamSplitNoColor(t *testing.T) {
	launch(t, machine.Perlmutter(), 3, func(p *sim.Proc, pe *PE) {
		wt := pe.WorldTeam()
		color := 0
		if pe.Rank() == 1 {
			color = -1
		}
		team := wt.TeamSplit(p, color, pe.Rank())
		if pe.Rank() == 1 {
			if team != nil {
				t.Error("no-color PE received a team")
			}
			return
		}
		if team.Size() != 2 {
			t.Errorf("team size = %d", team.Size())
		}
	})
}

func TestTeamCollectivesIsolated(t *testing.T) {
	// Two teams run allreduces concurrently; sums must not mix.
	const n = 4
	launch(t, machine.Perlmutter(), n, func(p *sim.Proc, pe *PE) {
		team := pe.WorldTeam().TeamSplit(p, pe.Rank()%2, pe.Rank())
		s := pe.Device().DefaultStream()
		buf := gpu.AllocBuffer[float64](pe.Device(), 1)
		buf.Data()[0] = float64(pe.Rank() + 1)
		team.AllReduceOnStream(p, s, buf.Whole(), buf.Whole(), gpu.ReduceSum)
		s.Synchronize(p)
		want := map[int]float64{0: 1 + 3, 1: 2 + 4}[pe.Rank()%2]
		if buf.Data()[0] != want {
			t.Errorf("pe %d team allreduce = %v, want %v", pe.Rank(), buf.Data()[0], want)
		}
	})
}

func TestTeamBroadcastAndBarrier(t *testing.T) {
	const n = 4
	launch(t, machine.MareNostrum5(), n, func(p *sim.Proc, pe *PE) {
		team := pe.WorldTeam().TeamSplit(p, pe.Rank()/2, pe.Rank())
		s := pe.Device().DefaultStream()
		buf := gpu.AllocBuffer[int64](pe.Device(), 2)
		if team.Rank() == 1 { // the higher world rank of the pair
			buf.Data()[0], buf.Data()[1] = 7, 9
		}
		team.BroadcastOnStream(p, s, buf.Whole(), 1)
		team.BarrierOnStream(p, s)
		s.Synchronize(p)
		if buf.Data()[0] != 7 || buf.Data()[1] != 9 {
			t.Errorf("pe %d broadcast = %v", pe.Rank(), buf.Data())
		}
	})
}

func TestTeamAllGatherv(t *testing.T) {
	const n = 4
	launch(t, machine.Perlmutter(), n, func(p *sim.Proc, pe *PE) {
		team := pe.WorldTeam().TeamSplit(p, pe.Rank()%2, pe.Rank())
		counts := []int{2, 2}
		displs := []int{0, 2}
		s := pe.Device().DefaultStream()
		send := gpu.AllocBuffer[float64](pe.Device(), 2)
		send.Data()[0] = float64(100 * pe.Rank())
		send.Data()[1] = float64(100*pe.Rank() + 1)
		recv := gpu.AllocBuffer[float64](pe.Device(), 4)
		team.AllGathervOnStream(p, s, send.Whole(), recv.Whole(), counts, displs)
		s.Synchronize(p)
		// Team member 0 is the lower world rank of the parity class.
		base := pe.Rank() % 2
		for tr := 0; tr < 2; tr++ {
			wr := base + 2*tr
			if recv.Data()[2*tr] != float64(100*wr) {
				t.Errorf("pe %d recv[%d] = %v", pe.Rank(), 2*tr, recv.Data()[2*tr])
			}
		}
	})
}

func TestNestedTeamSplit(t *testing.T) {
	const n = 8
	launch(t, machine.Perlmutter(), n, func(p *sim.Proc, pe *PE) {
		half := pe.WorldTeam().TeamSplit(p, pe.Rank()/4, pe.Rank())
		quarter := half.TeamSplit(p, half.Rank()/2, half.Rank())
		if quarter.Size() != 2 {
			t.Fatalf("quarter size = %d", quarter.Size())
		}
		s := pe.Device().DefaultStream()
		buf := gpu.AllocBuffer[float64](pe.Device(), 1)
		buf.Data()[0] = float64(pe.Rank())
		quarter.AllReduceOnStream(p, s, buf.Whole(), buf.Whole(), gpu.ReduceSum)
		s.Synchronize(p)
		// Pairs are (0,1),(2,3),(4,5),(6,7): sum = 2*even + 1.
		pair := pe.Rank() / 2 * 2
		if want := float64(pair + pair + 1); buf.Data()[0] != want {
			t.Errorf("pe %d nested allreduce = %v, want %v", pe.Rank(), buf.Data()[0], want)
		}
	})
}

func TestTeamSplitOrderingRequirement(t *testing.T) {
	// Sanity: split rendezvous keys are per parent team, so splits on
	// different parents in the same program order do not cross-talk.
	const n = 4
	launch(t, machine.Perlmutter(), n, func(p *sim.Proc, pe *PE) {
		a := pe.WorldTeam().TeamSplit(p, 0, pe.Rank())
		b := a.TeamSplit(p, pe.Rank()%2, pe.Rank())
		if a.Size() != n || b.Size() != n/2 {
			t.Errorf("sizes %d %d", a.Size(), b.Size())
		}
		_ = fmt.Sprintf("%d", b.Rank())
	})
}
