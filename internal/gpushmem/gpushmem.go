// Package gpushmem implements a GPU-centric OpenSHMEM library in the mold
// of NVSHMEM: a PGAS symmetric heap, one-sided Put/Get with signal
// operations, host (stream-ordered) and device (in-kernel) APIs with
// THREAD/WARP/BLOCK execution granularity, quiet/fence semantics, barriers,
// and team collectives.
//
// The defining property UNICONN has to unify: communication is one-sided
// and asynchronous — the sender names the receiver's (symmetric) buffer and
// completion is observed through signal words, not matching receives.
package gpushmem

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// ThreadGroup selects the GPU execution granularity of a device-side
// operation (paper §IV-F4).
type ThreadGroup int

// Device-side thread granularities.
const (
	Thread ThreadGroup = iota
	Warp
	Block
)

func (g ThreadGroup) String() string {
	switch g {
	case Thread:
		return "THREAD"
	case Warp:
		return "WARP"
	case Block:
		return "BLOCK"
	default:
		return fmt.Sprintf("ThreadGroup(%d)", int(g))
	}
}

// granEff is the fraction of the path's effective bandwidth a single
// communicating unit of this granularity can drive.
func (g ThreadGroup) granEff() float64 {
	switch g {
	case Thread:
		return 0.06
	case Warp:
		return 0.45
	default:
		return 1.0
	}
}

// SignalOp is the atomic applied to the signal word on put-with-signal
// delivery.
type SignalOp int

// Signal update operations.
const (
	SignalSet SignalOp = iota
	SignalAdd
)

// Cmp is a signal wait comparison.
type Cmp int

// Signal wait comparisons.
const (
	CmpEQ Cmp = iota
	CmpNE
	CmpGE
	CmpGT
)

func (c Cmp) match(v, ref uint64) bool {
	switch c {
	case CmpEQ:
		return v == ref
	case CmpNE:
		return v != ref
	case CmpGE:
		return v >= ref
	case CmpGT:
		return v > ref
	default:
		panic("gpushmem: unknown comparison")
	}
}

// World is one GPUSHMEM job; every device hosts one PE.
type World struct {
	cluster    *gpu.Cluster
	pes        []*PE
	allocs     map[uint64]*allocRec
	insts      map[instKey]*collInst
	splits     map[instKey]*splitInst
	shrinks    map[instKey]*shrinkInst
	nextTeamID uint64

	// mColl holds per-kind collective timing histograms
	// ("gpushmem.coll.<kind>", in ns, kinds as in devKey/hostKey), resolved
	// at construction; nil when metrics are disabled.
	mColl map[string]*metrics.Histogram
}

// collKinds are the instKey kinds of the host- and device-initiated
// collectives.
var collKinds = []string{
	"d-barrier", "d-allreduce", "d-broadcast", "d-allgatherv",
	"h-barrier", "h-allreduce", "h-broadcast", "h-allgatherv",
}

// collHist resolves the timing histogram for one collective kind, nil when
// metrics are disabled.
func (w *World) collHist(kind string) *metrics.Histogram {
	if w.mColl == nil {
		return nil
	}
	return w.mColl[kind]
}

// NewWorld initializes the library over the cluster. It panics if the
// machine has no GPUSHMEM implementation (LUMI in the paper).
func NewWorld(cluster *gpu.Cluster) *World {
	if !cluster.Model.HasGPUSHMEM {
		panic(fmt.Sprintf("gpushmem: %s has no GPUSHMEM implementation", cluster.Model.Name))
	}
	w := &World{
		cluster: cluster,
		allocs:  map[uint64]*allocRec{},
		insts:   map[instKey]*collInst{},
		splits:  map[instKey]*splitInst{},
		shrinks: map[instKey]*shrinkInst{},
	}
	for i, dev := range cluster.Devices {
		w.pes = append(w.pes, &PE{
			w: w, rank: i, dev: dev,
			issued:    sim.NewCounter(fmt.Sprintf("pe%d.issued", i), 0),
			completed: sim.NewCounter(fmt.Sprintf("pe%d.completed", i), 0),
		})
	}
	if r := cluster.Metrics; r != nil {
		w.mColl = make(map[string]*metrics.Histogram, len(collKinds))
		for _, kind := range collKinds {
			w.mColl[kind] = r.Histogram("gpushmem.coll." + kind)
		}
	}
	return w
}

// Size reports the number of PEs.
func (w *World) Size() int { return len(w.pes) }

// PE returns processing element r.
func (w *World) PE(r int) *PE { return w.pes[r] }

// Cluster reports the underlying cluster.
func (w *World) Cluster() *gpu.Cluster { return w.cluster }

// PE is one processing element (rank) of the job.
type PE struct {
	w    *World
	rank int
	dev  *gpu.Device

	allocSeq  uint64
	devOpSeq  uint64
	launchSeq uint64
	splitSeq  uint64

	// NBI tracking for Quiet.
	issued    *sim.Counter
	completed *sim.Counter
}

// Rank reports the PE id (nvshmem_my_pe).
func (pe *PE) Rank() int { return pe.rank }

// Size reports the PE count (nvshmem_n_pes).
func (pe *PE) Size() int { return len(pe.w.pes) }

// Device reports the PE's device.
func (pe *PE) Device() *gpu.Device { return pe.dev }

func (pe *PE) model() *machine.Model { return pe.w.cluster.Model }

// allocRec is one symmetric allocation: the same logical object on every
// PE's heap.
type allocRec struct {
	id    uint64
	bufs  []gpu.View // per PE, whole-buffer views
	sigs  [][]*sim.Counter
	typed any // the *Sym[T] that owns the storage
}

// Sym is a typed symmetric allocation handle.
type Sym[T gpu.Elem] struct {
	rec  *allocRec
	bufs []*gpu.Buffer[T]
}

// Malloc allocates n elements of symmetric memory. Like nvshmem_malloc it
// is a collective: every PE must call it in the same order, and the
// allocation ids are matched by call sequence. The caller's handle is
// shared: the first PE to call creates the storage for all PEs.
func Malloc[T gpu.Elem](pe *PE, n int) *Sym[T] {
	pe.allocSeq++
	id := pe.allocSeq
	rec := pe.w.allocs[id]
	if rec == nil {
		npes := pe.Size()
		s := &Sym[T]{bufs: make([]*gpu.Buffer[T], npes)}
		rec = &allocRec{id: id, bufs: make([]gpu.View, npes)}
		for r := 0; r < npes; r++ {
			s.bufs[r] = gpu.AllocBuffer[T](pe.w.cluster.Devices[r], n)
			rec.bufs[r] = s.bufs[r].Whole()
		}
		rec.sigs = make([][]*sim.Counter, npes)
		s.rec = rec
		rec.typed = s
		pe.w.allocs[id] = rec
		return s
	}
	s, ok := rec.typed.(*Sym[T])
	if !ok || s.bufs[0].Len() != n {
		panic("gpushmem: mismatched collective Malloc across PEs")
	}
	return s
}

// Local returns the PE-local buffer of the symmetric allocation.
func (s *Sym[T]) Local(rank int) *gpu.Buffer[T] { return s.bufs[rank] }

// Ref takes a type-erased symmetric reference covering [off, off+n).
func (s *Sym[T]) Ref(off, n int) SymRef { return SymRef{rec: s.rec, off: off, n: n} }

// WholeRef references the full allocation.
func (s *Sym[T]) WholeRef() SymRef { return s.Ref(0, s.bufs[0].Len()) }

// SymRef is a type-erased window into a symmetric allocation: the same
// (offset, length) resolved on any PE.
type SymRef struct {
	rec *allocRec
	off int
	n   int
}

// On resolves the reference on one PE.
func (r SymRef) On(rank int) gpu.View { return r.rec.bufs[rank].Slice(r.off, r.n) }

// Len reports the element count.
func (r SymRef) Len() int { return r.n }

// Slice narrows the reference.
func (r SymRef) Slice(off, n int) SymRef {
	return SymRef{rec: r.rec, off: r.off + off, n: n}
}

// Bytes reports the byte size on any PE.
func (r SymRef) Bytes() int64 { return r.On(0).Slice(0, r.n).Bytes() }

// SigRef names one signal word: element idx of a symmetric uint64
// allocation.
type SigRef struct {
	rec *allocRec
	idx int
}

// SigRef derives a signal-word reference from a symmetric uint64 allocation.
func (s *Sym[T]) SigRef(idx int) SigRef {
	if s.bufs[0].Whole().ElemSize() != 8 {
		panic("gpushmem: signal words must be 64-bit")
	}
	return SigRef{rec: s.rec, idx: idx}
}

// counter returns the simulation-side condition variable backing the signal
// word on one PE, creating it on first use.
func (sr SigRef) counter(rank int) *sim.Counter {
	rec := sr.rec
	if rec.sigs[rank] == nil {
		rec.sigs[rank] = make([]*sim.Counter, rec.bufs[rank].Len())
	}
	if rec.sigs[rank][sr.idx] == nil {
		rec.sigs[rank][sr.idx] = sim.NewCounter(
			fmt.Sprintf("sig[%d]@pe%d", sr.idx, rank), 0)
	}
	return rec.sigs[rank][sr.idx]
}

// apply performs the signal update on the target PE.
func (sr SigRef) apply(eng *sim.Engine, rank int, op SignalOp, val uint64) {
	c := sr.counter(rank)
	switch op {
	case SignalSet:
		c.Set(eng, val)
	case SignalAdd:
		c.Add(eng, val)
	default:
		panic("gpushmem: unknown signal op")
	}
}

// Read returns the current value of the signal word on one PE
// (nvshmem_signal_fetch).
func (sr SigRef) Read(rank int) uint64 { return sr.counter(rank).Value() }
