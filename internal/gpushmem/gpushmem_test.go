package gpushmem

import (
	"fmt"
	"testing"

	"repro/internal/gpu"
	"repro/internal/machine"
	"repro/internal/sim"
)

// launch builds a world of n PEs and runs body once per PE in its own
// process.
func launch(t *testing.T, model *machine.Model, n int, body func(p *sim.Proc, pe *PE)) {
	t.Helper()
	eng := sim.NewEngine()
	defer eng.Close()
	cl := gpu.NewCluster(eng, model, n)
	w := NewWorld(cl)
	for r := 0; r < n; r++ {
		pe := w.PE(r)
		eng.Spawn(fmt.Sprintf("pe%d", r), func(p *sim.Proc) { body(p, pe) })
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestNoGPUSHMEMOnLUMI(t *testing.T) {
	eng := sim.NewEngine()
	defer eng.Close()
	cl := gpu.NewCluster(eng, machine.LUMI(), 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: LUMI has no GPUSHMEM")
		}
	}()
	NewWorld(cl)
}

func TestSymmetricMallocMatches(t *testing.T) {
	launch(t, machine.Perlmutter(), 3, func(p *sim.Proc, pe *PE) {
		a := Malloc[float64](pe, 10)
		b := Malloc[uint64](pe, 4)
		// Every PE sees the same storage objects for the same allocation.
		if a.Local(0) == nil || b.Local(2) == nil {
			t.Error("missing local buffers")
		}
		if a.Local(pe.Rank()).Len() != 10 {
			t.Errorf("len = %d", a.Local(pe.Rank()).Len())
		}
		if a.WholeRef().On(1).Len() != 10 {
			t.Errorf("ref len = %d", a.WholeRef().On(1).Len())
		}
	})
}

func TestHostPutSignalAndWait(t *testing.T) {
	launch(t, machine.Perlmutter(), 2, func(p *sim.Proc, pe *PE) {
		data := Malloc[float64](pe, 8)
		sig := Malloc[uint64](pe, 1)
		s := pe.Device().DefaultStream()
		if pe.Rank() == 0 {
			local := gpu.AllocBuffer[float64](pe.Device(), 8)
			for i := range local.Data() {
				local.Data()[i] = float64(i) + 0.25
			}
			pe.PutSignalOnStream(p, s, data.WholeRef(), local.Whole(), 8,
				sig.SigRef(0), 1, SignalSet, 1)
			s.Synchronize(p)
		} else {
			pe.SignalWaitOnStream(p, s, sig.SigRef(0), CmpEQ, 1)
			s.Synchronize(p)
			got := data.Local(1).Data()
			if got[3] != 3.25 {
				t.Errorf("put data = %v", got)
			}
		}
	})
}

func TestDevicePutSignalJacobiPattern(t *testing.T) {
	// The Fig. 1 Listing 3 pattern: device-side put_signal + wait inside
	// kernels launched with CollectiveLaunch.
	const n = 4
	const iters = 3
	launch(t, machine.Perlmutter(), n, func(p *sim.Proc, pe *PE) {
		buf := Malloc[float64](pe, 2)
		sig := Malloc[uint64](pe, 2)
		me := pe.Rank()
		right := (me + 1) % n
		s := pe.Device().DefaultStream()
		for iter := 1; iter <= iters; iter++ {
			iter := iter
			k := &gpu.Kernel{Name: "exchange", Body: func(kc *gpu.KernelCtx) {
				local := gpu.AllocBuffer[float64](pe.Device(), 1)
				local.Data()[0] = float64(100*me + iter)
				// Send my value to the right neighbour's slot 0.
				pe.DevPutSignalNBI(kc, Block, buf.Ref(0, 1), local.Whole(), 1,
					sig.SigRef(0), uint64(iter), SignalSet, right)
				// Wait for my left neighbour's value.
				pe.DevSignalWaitUntil(kc, sig.SigRef(0), CmpEQ, uint64(iter))
			}}
			pe.CollectiveLaunch(p, s, k, nil)
			s.Synchronize(p)
			left := (me - 1 + n) % n
			if got := buf.Local(me).Data()[0]; got != float64(100*left+iter) {
				t.Errorf("iter %d pe %d got %v, want %v", iter, me, got, float64(100*left+iter))
			}
		}
	})
}

func TestDevPutBlockingAndGet(t *testing.T) {
	launch(t, machine.MareNostrum5(), 2, func(p *sim.Proc, pe *PE) {
		sym := Malloc[int64](pe, 4)
		s := pe.Device().DefaultStream()
		if pe.Rank() == 0 {
			k := &gpu.Kernel{Name: "putget", Body: func(kc *gpu.KernelCtx) {
				local := gpu.AllocBuffer[int64](pe.Device(), 4)
				for i := range local.Data() {
					local.Data()[i] = int64(7 * (i + 1))
				}
				pe.DevPut(kc, Block, sym.WholeRef(), local.Whole(), 4, 1)
				// Read it back with a get.
				back := gpu.AllocBuffer[int64](pe.Device(), 4)
				pe.DevGet(kc, Warp, back.Whole(), sym.WholeRef(), 4, 1)
				if back.Data()[2] != 21 {
					t.Errorf("get back = %v", back.Data())
				}
			}}
			pe.CollectiveLaunch(p, s, k, nil)
		} else {
			pe.CollectiveLaunch(p, s, &gpu.Kernel{Name: "idle"}, nil)
		}
		s.Synchronize(p)
	})
}

func TestQuietWaitsForNBI(t *testing.T) {
	launch(t, machine.Perlmutter(), 2, func(p *sim.Proc, pe *PE) {
		sym := Malloc[float64](pe, 1<<16)
		s := pe.Device().DefaultStream()
		if pe.Rank() == 0 {
			var afterPut, afterQuiet sim.Time
			k := &gpu.Kernel{Name: "nbi", Body: func(kc *gpu.KernelCtx) {
				local := gpu.AllocBuffer[float64](pe.Device(), 1<<16)
				pe.DevPutNBI(kc, Block, sym.WholeRef(), local.Whole(), 1<<16, 1)
				afterPut = kc.P.Now()
				pe.DevQuiet(kc)
				afterQuiet = kc.P.Now()
			}}
			pe.CollectiveLaunch(p, s, k, nil)
			s.Synchronize(p)
			if afterQuiet.Sub(afterPut) <= 0 {
				t.Errorf("quiet returned immediately (put %v, quiet %v)", afterPut, afterQuiet)
			}
		} else {
			pe.CollectiveLaunch(p, s, &gpu.Kernel{Name: "idle"}, nil)
			s.Synchronize(p)
		}
	})
}

func TestGranularityAffectsBandwidth(t *testing.T) {
	// A BLOCK put must complete faster than a THREAD put of the same size.
	elapsed := func(g ThreadGroup) sim.Duration {
		var d sim.Duration
		eng := sim.NewEngine()
		defer eng.Close()
		cl := gpu.NewCluster(eng, machine.Perlmutter(), 2)
		w := NewWorld(cl)
		for r := 0; r < 2; r++ {
			pe := w.PE(r)
			eng.Spawn(fmt.Sprintf("pe%d", r), func(p *sim.Proc) {
				sym := Malloc[float64](pe, 1<<18)
				s := pe.Device().DefaultStream()
				if pe.Rank() == 0 {
					k := &gpu.Kernel{Name: "put", Body: func(kc *gpu.KernelCtx) {
						local := gpu.AllocBuffer[float64](pe.Device(), 1<<18)
						start := kc.P.Now()
						pe.DevPut(kc, g, sym.WholeRef(), local.Whole(), 1<<18, 1)
						d = kc.P.Now().Sub(start)
					}}
					pe.CollectiveLaunch(p, s, k, nil)
				} else {
					pe.CollectiveLaunch(p, s, &gpu.Kernel{Name: "idle"}, nil)
				}
				s.Synchronize(p)
			})
		}
		if err := eng.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return d
	}
	blk, thr := elapsed(Block), elapsed(Thread)
	if thr < 5*blk {
		t.Fatalf("thread put (%v) should be much slower than block put (%v)", thr, blk)
	}
}

func TestDeviceAllReduceAndBarrier(t *testing.T) {
	const n = 4
	launch(t, machine.Perlmutter(), n, func(p *sim.Proc, pe *PE) {
		send := Malloc[float64](pe, 4)
		recv := Malloc[float64](pe, 4)
		s := pe.Device().DefaultStream()
		k := &gpu.Kernel{Name: "reduce", Body: func(kc *gpu.KernelCtx) {
			local := send.Local(pe.Rank())
			for i := range local.Data() {
				local.Data()[i] = float64(pe.Rank() + i)
			}
			pe.DevBarrierAll(kc)
			pe.DevAllReduce(kc, local.Whole(), recv.Local(pe.Rank()).Whole(), gpu.ReduceSum)
		}}
		pe.CollectiveLaunch(p, s, k, nil)
		s.Synchronize(p)
		for i := 0; i < 4; i++ {
			want := 0.0
			for r := 0; r < n; r++ {
				want += float64(r + i)
			}
			if got := recv.Local(pe.Rank()).Data()[i]; got != want {
				t.Errorf("pe %d recv[%d] = %v want %v", pe.Rank(), i, got, want)
			}
		}
	})
}

func TestHostAllReduceOnStream(t *testing.T) {
	const n = 3
	launch(t, machine.MareNostrum5(), n, func(p *sim.Proc, pe *PE) {
		b := gpu.AllocBuffer[float64](pe.Device(), 2)
		b.Data()[0] = float64(pe.Rank())
		b.Data()[1] = 1
		s := pe.Device().DefaultStream()
		pe.AllReduceOnStream(p, s, b.Whole(), b.Whole(), gpu.ReduceSum)
		s.Synchronize(p)
		if b.Data()[0] != 3 || b.Data()[1] != 3 {
			t.Errorf("pe %d allreduce = %v", pe.Rank(), b.Data())
		}
	})
}

func TestAllGathervEmulation(t *testing.T) {
	const n = 4
	launch(t, machine.Perlmutter(), n, func(p *sim.Proc, pe *PE) {
		counts := []int{1, 2, 3, 4}
		displs := []int{0, 1, 3, 6}
		total := 10
		me := pe.Rank()
		send := gpu.AllocBuffer[float64](pe.Device(), counts[me])
		for i := range send.Data() {
			send.Data()[i] = float64(10*me + i)
		}
		recv := Malloc[float64](pe, total)
		s := pe.Device().DefaultStream()
		pe.AllGathervOnStream(p, s, send.Whole(), recv.Local(me).Whole(), counts, displs)
		s.Synchronize(p)
		for r := 0; r < n; r++ {
			for i := 0; i < counts[r]; i++ {
				if got := recv.Local(me).Data()[displs[r]+i]; got != float64(10*r+i) {
					t.Errorf("pe %d recv[%d] = %v", me, displs[r]+i, got)
				}
			}
		}
	})
}

func TestBroadcastHost(t *testing.T) {
	const n = 4
	launch(t, machine.Perlmutter(), n, func(p *sim.Proc, pe *PE) {
		b := gpu.AllocBuffer[float64](pe.Device(), 8)
		if pe.Rank() == 1 {
			for i := range b.Data() {
				b.Data()[i] = float64(i * i)
			}
		}
		s := pe.Device().DefaultStream()
		pe.BroadcastOnStream(p, s, b.Whole(), 1)
		s.Synchronize(p)
		for i, v := range b.Data() {
			if v != float64(i*i) {
				t.Errorf("pe %d b[%d] = %v", pe.Rank(), i, v)
			}
		}
	})
}

func TestSignalAddAccumulates(t *testing.T) {
	launch(t, machine.Perlmutter(), 3, func(p *sim.Proc, pe *PE) {
		data := Malloc[float64](pe, 2)
		sig := Malloc[uint64](pe, 1)
		s := pe.Device().DefaultStream()
		if pe.Rank() != 0 {
			local := gpu.AllocBuffer[float64](pe.Device(), 1)
			local.Data()[0] = float64(pe.Rank())
			pe.PutSignalOnStream(p, s, data.Ref(pe.Rank()-1, 1), local.Whole(), 1,
				sig.SigRef(0), 1, SignalAdd, 0)
			s.Synchronize(p)
		} else {
			pe.SignalWaitOnStream(p, s, sig.SigRef(0), CmpGE, 2)
			s.Synchronize(p)
			d := data.Local(0).Data()
			if d[0] != 1 || d[1] != 2 {
				t.Errorf("accumulated data = %v", d)
			}
			if got := sig.SigRef(0).Read(0); got != 2 {
				t.Errorf("signal value = %d", got)
			}
		}
	})
}

func TestDeviceLatencyBelowHost(t *testing.T) {
	// Device-initiated put of a tiny message should beat the host path's
	// launch overhead (the paper's core motivation for device APIs).
	oneWay := func(dev bool) sim.Duration {
		var d sim.Duration
		eng := sim.NewEngine()
		defer eng.Close()
		cl := gpu.NewCluster(eng, machine.Perlmutter(), 2)
		w := NewWorld(cl)
		for r := 0; r < 2; r++ {
			pe := w.PE(r)
			eng.Spawn(fmt.Sprintf("pe%d", r), func(p *sim.Proc) {
				sym := Malloc[float64](pe, 1)
				sig := Malloc[uint64](pe, 1)
				s := pe.Device().DefaultStream()
				local := gpu.AllocBuffer[float64](pe.Device(), 1)
				if pe.Rank() == 0 {
					start := p.Now()
					if dev {
						k := &gpu.Kernel{Name: "put", Body: func(kc *gpu.KernelCtx) {
							pe.DevPutSignalNBI(kc, Block, sym.WholeRef(), local.Whole(), 1,
								sig.SigRef(0), 1, SignalSet, 1)
							pe.DevQuiet(kc)
						}}
						pe.CollectiveLaunch(p, s, k, nil)
					} else {
						pe.PutSignalOnStream(p, s, sym.WholeRef(), local.Whole(), 1,
							sig.SigRef(0), 1, SignalSet, 1)
					}
					s.Synchronize(p)
					d = p.Now().Sub(start)
				} else if dev {
					pe.CollectiveLaunch(p, s, &gpu.Kernel{Name: "idle"}, nil)
					s.Synchronize(p)
				}
			})
		}
		if err := eng.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return d
	}
	// Compare the communication part: host pays LaunchOverhead per op; the
	// device path pays one kernel launch for the whole (fused) kernel, which
	// in real codes is amortized across the computation. Here we check the
	// host path is at least as expensive.
	h, dv := oneWay(false), oneWay(true)
	if h <= 0 || dv <= 0 {
		t.Fatalf("h=%v dv=%v", h, dv)
	}
}
