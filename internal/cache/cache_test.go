package cache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/metrics"
)

func TestGetPutRoundTrip(t *testing.T) {
	c := New(Options{})
	if _, ok := c.Get("k"); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put("k", []byte("value"))
	got, ok := c.Get("k")
	if !ok || !bytes.Equal(got, []byte("value")) {
		t.Fatalf("Get = %q, %v; want value, true", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 5 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 1 entry, 5 bytes", st)
	}
}

// TestGetReturnsPrivateCopies pins the aliasing contract: neither the
// caller's Put slice nor a returned Get slice can mutate the stored bytes.
func TestGetReturnsPrivateCopies(t *testing.T) {
	c := New(Options{})
	src := []byte("original")
	c.Put("k", src)
	src[0] = 'X' // caller scribbles on its slice after Put

	first, _ := c.Get("k")
	first[0] = 'Y' // and on the returned copy

	got, _ := c.Get("k")
	if string(got) != "original" {
		t.Fatalf("stored value was aliased: got %q, want original", got)
	}
}

func TestEntryCapEvictsLRU(t *testing.T) {
	c := New(Options{MaxEntries: 3})
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	c.Get("k0") // refresh k0: k1 is now the LRU
	c.Put("k3", []byte{3})
	if _, ok := c.Get("k1"); ok {
		t.Error("k1 should have been evicted as LRU")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s should have survived", k)
		}
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 3 {
		t.Errorf("stats = %+v, want 1 eviction, 3 entries", st)
	}
}

func TestByteCapEvicts(t *testing.T) {
	c := New(Options{MaxBytes: 100})
	c.Put("a", make([]byte, 60))
	c.Put("b", make([]byte, 60)) // 120 > 100: evicts a
	if _, ok := c.Get("a"); ok {
		t.Error("a should have been evicted by the byte cap")
	}
	if _, ok := c.Get("b"); !ok {
		t.Error("b should be resident")
	}
	if st := c.Stats(); st.Bytes != 60 {
		t.Errorf("bytes = %d, want 60", st.Bytes)
	}
}

// TestOversizedValueStays: a single value above MaxBytes is stored anyway —
// the cache evicts down to one entry but never refuses a Put.
func TestOversizedValueStays(t *testing.T) {
	c := New(Options{MaxBytes: 10})
	c.Put("big", make([]byte, 1000))
	if _, ok := c.Get("big"); !ok {
		t.Fatal("oversized value should be stored alone")
	}
	c.Put("big2", make([]byte, 2000))
	if _, ok := c.Get("big2"); !ok {
		t.Fatal("second oversized value should replace the first")
	}
	if _, ok := c.Get("big"); ok {
		t.Fatal("first oversized value should have been evicted")
	}
}

func TestRePutRefreshesAndReplaces(t *testing.T) {
	c := New(Options{MaxEntries: 2})
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	c.Put("a", []byte("333")) // refresh: b becomes LRU
	c.Put("c", []byte("4"))
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted after a's refresh")
	}
	got, _ := c.Get("a")
	if string(got) != "333" {
		t.Errorf("a = %q, want the replaced value 333", got)
	}
}

func TestDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	c1 := New(Options{Dir: dir})
	c1.Put("deadbeef", []byte("persisted"))

	// A fresh cache over the same directory — as after a process restart —
	// misses memory, hits disk, and promotes the entry.
	c2 := New(Options{Dir: dir})
	got, ok := c2.Get("deadbeef")
	if !ok || string(got) != "persisted" {
		t.Fatalf("disk read = %q, %v; want persisted, true", got, ok)
	}
	st := c2.Stats()
	if st.DiskHits != 1 || st.Hits != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 disk hit promoted into memory", st)
	}
	// Second read is a pure memory hit.
	if _, ok := c2.Get("deadbeef"); !ok {
		t.Fatal("promoted entry should hit in memory")
	}
	if st := c2.Stats(); st.DiskHits != 1 || st.Hits != 2 {
		t.Fatalf("stats = %+v, want the second hit served from memory", st)
	}
}

func TestDiskCorruptionIsAMiss(t *testing.T) {
	dir := t.TempDir()
	c := New(Options{Dir: dir})
	if err := os.WriteFile(filepath.Join(dir, "empty"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("empty"); ok {
		t.Error("an empty persisted file must read as a miss")
	}
	if _, ok := c.Get("absent"); ok {
		t.Error("a missing file must read as a miss")
	}
}

func TestMetricsCounters(t *testing.T) {
	c := New(Options{MaxEntries: 2})
	r := metrics.New()
	c.SetMetrics(r)
	c.Get("a") // miss
	c.Put("a", []byte("1"))
	c.Get("a") // hit
	c.Put("b", []byte("2"))
	c.Put("c", []byte("3")) // evicts a
	snap := r.Snapshot()
	got := make(map[string]int64)
	for _, cv := range snap.Counters {
		got[cv.Name] = cv.Value
	}
	want := map[string]int64{
		"cache.results.hits":      1,
		"cache.results.misses":    1,
		"cache.results.evictions": 1,
		"cache.results.disk_hits": 0,
	}
	for name, val := range want {
		if got[name] != val {
			t.Errorf("%s = %d, want %d", name, got[name], val)
		}
	}
}

func TestNilCacheIsSafe(t *testing.T) {
	var c *Cache
	if _, ok := c.Get("k"); ok {
		t.Error("nil cache Get should miss")
	}
	c.Put("k", []byte("v")) // must not panic
	if st := c.Stats(); st != (Stats{}) {
		t.Errorf("nil cache stats = %+v, want zero", st)
	}
}

// TestConcurrentAccess exercises the lock paths under -race.
func TestConcurrentAccess(t *testing.T) {
	c := New(Options{MaxEntries: 64, MaxBytes: 1 << 14})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g*7+i)%100)
				if val, ok := c.Get(key); ok {
					if string(val) != key {
						t.Errorf("corrupted value for %s: %q", key, val)
						return
					}
				} else {
					c.Put(key, []byte(key))
				}
			}
		}(g)
	}
	wg.Wait()
}
