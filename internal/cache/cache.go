// Package cache is the content-addressed result cache of the cross-run
// performance layer: encoded simulation results keyed by their spec's
// content hash (internal/spec.Spec.Hash), so a cell that has been simulated
// once — in this process, in an earlier sweep, or (with disk persistence) in
// an earlier CLI invocation — is never simulated again.
//
// Correctness rests on two facts: the simulator is bit-deterministic for a
// given spec (DESIGN.md §8/§12), and the cache stores the *encoded bytes* of
// the result, returning them verbatim. A hit is therefore byte-identical to
// what a fresh run would have produced — the property the -race workers-1-
// vs-8 tests in internal/bench pin — and the cache can never be a source of
// nondeterminism, only of skipped work.
//
// The in-memory tier is a strict LRU bounded by both entry count and total
// value bytes. The optional disk tier (Options.Dir) writes each entry to
// <dir>/<hash> with an atomic rename and reads it back on a memory miss;
// hashes are hex SHA-256, so keys are filename-safe by construction and a
// corrupt or truncated file is indistinguishable from a miss at worst.
package cache

import (
	"container/list"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/metrics"
)

// Default capacity bounds: generous for a long-running serve process (a
// typical encoded result is a few KiB; 64 MiB holds tens of thousands),
// small enough to never matter for a CLI sweep.
const (
	DefaultMaxEntries = 16384
	DefaultMaxBytes   = 64 << 20
)

// Options configures a cache.
type Options struct {
	// MaxEntries bounds the number of in-memory entries (<= 0 selects
	// DefaultMaxEntries).
	MaxEntries int
	// MaxBytes bounds the summed value sizes held in memory (<= 0 selects
	// DefaultMaxBytes). A single value larger than the bound is stored
	// alone (the cache never refuses a Put; it evicts instead).
	MaxBytes int64
	// Dir, when non-empty, persists entries to this directory (created on
	// first use) and consults it on memory misses, making results survive
	// process restarts.
	Dir string
}

// Stats is a point-in-time snapshot of the cache's counters and occupancy.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	DiskHits  int64 `json:"disk_hits"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
}

// Cache is a content-addressed []byte store, safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	opts    Options
	ll      *list.List // front = most recently used
	entries map[string]*list.Element
	bytes   int64

	hits, misses, evictions, diskHits int64

	// Optional live instruments (SetMetrics); the int64 counters above are
	// the source of truth for Stats and exist even with metrics disabled.
	mHits, mMisses, mEvictions, mDiskHits *metrics.Counter
}

type entry struct {
	key string
	val []byte
}

// New creates a cache with the given options.
func New(opts Options) *Cache {
	if opts.MaxEntries <= 0 {
		opts.MaxEntries = DefaultMaxEntries
	}
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = DefaultMaxBytes
	}
	return &Cache{
		opts:    opts,
		ll:      list.New(),
		entries: make(map[string]*list.Element),
	}
}

// SetMetrics installs hit/miss/eviction/disk-hit counters from the registry;
// nil disables collection (the default).
func (c *Cache) SetMetrics(r *metrics.Registry) {
	c.mHits = r.Counter("cache.results.hits")
	c.mMisses = r.Counter("cache.results.misses")
	c.mEvictions = r.Counter("cache.results.evictions")
	c.mDiskHits = r.Counter("cache.results.disk_hits")
}

// Get returns a copy of the value stored under key. A memory miss consults
// the disk tier (when configured) and promotes a found entry into memory.
// The returned slice is the caller's to keep; it is byte-identical to what
// Put stored.
func (c *Cache) Get(key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		val := append([]byte(nil), el.Value.(*entry).val...)
		c.hits++
		c.mu.Unlock()
		c.mHits.Inc()
		return val, true
	}
	c.mu.Unlock()
	if c.opts.Dir != "" {
		if val, err := os.ReadFile(c.diskPath(key)); err == nil && len(val) > 0 {
			c.mu.Lock()
			c.insert(key, val)
			c.hits++
			c.diskHits++
			c.mu.Unlock()
			c.mHits.Inc()
			c.mDiskHits.Inc()
			return append([]byte(nil), val...), true
		}
	}
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	c.mMisses.Inc()
	return nil, false
}

// Put stores a private copy of val under key and, when a disk tier is
// configured, persists it with an atomic rename. Re-putting an existing key
// refreshes its recency and replaces the value.
func (c *Cache) Put(key string, val []byte) {
	if c == nil || len(val) == 0 {
		return
	}
	stored := append([]byte(nil), val...)
	c.mu.Lock()
	c.insert(key, stored)
	c.mu.Unlock()
	if c.opts.Dir != "" {
		c.persist(key, stored)
	}
}

// insert adds or refreshes an entry and evicts LRU overflow. Called with
// the mutex held.
func (c *Cache) insert(key string, val []byte) {
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*entry)
		c.bytes += int64(len(val)) - int64(len(e.val))
		e.val = val
		c.ll.MoveToFront(el)
	} else {
		c.entries[key] = c.ll.PushFront(&entry{key: key, val: val})
		c.bytes += int64(len(val))
	}
	for (c.ll.Len() > c.opts.MaxEntries || c.bytes > c.opts.MaxBytes) && c.ll.Len() > 1 {
		c.evictOldest()
	}
}

// evictOldest drops the least-recently-used entry. Called with the mutex
// held; never called on the last entry (an oversized single value stays).
func (c *Cache) evictOldest() {
	el := c.ll.Back()
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.entries, e.key)
	c.bytes -= int64(len(e.val))
	c.evictions++
	c.mEvictions.Inc()
}

// Stats snapshots the counters and occupancy.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		DiskHits: c.diskHits, Entries: c.ll.Len(), Bytes: c.bytes,
	}
}

// diskPath maps a key to its persisted file.
func (c *Cache) diskPath(key string) string {
	return filepath.Join(c.opts.Dir, key)
}

// persist writes the value with a temp-file + rename so readers never see a
// partial entry. Persistence is best-effort: a full disk degrades the cache
// to memory-only, it never fails the simulation that produced the result.
func (c *Cache) persist(key string, val []byte) {
	if err := os.MkdirAll(c.opts.Dir, 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(c.opts.Dir, key+".tmp*")
	if err != nil {
		return
	}
	name := tmp.Name()
	if _, err := tmp.Write(val); err != nil {
		tmp.Close()
		os.Remove(name)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, c.diskPath(key)); err != nil {
		os.Remove(name)
	}
}
