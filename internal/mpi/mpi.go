// Package mpi implements a GPU-aware MPI substrate on the simulated
// cluster: two-sided point-to-point messaging with eager and rendezvous
// protocols, tag matching with wildcards, non-blocking operations, derived
// communicators, and the standard collective set.
//
// Like real GPU-aware MPI (and unlike GPUCCL/GPUSHMEM), this library has no
// notion of GPU streams: all calls are host-initiated and the application is
// responsible for synchronizing streams before communicating out of device
// buffers (the exact property UNICONN's Coordinator has to paper over).
package mpi

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/gpu"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Wildcards for Recv matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// maxUserTag is the upper bound (exclusive) for application tags; tags at or
// above it are reserved for internal collective rounds.
const maxUserTag = 1 << 20

// World is the MPI job: one endpoint per rank on the simulated cluster.
type World struct {
	cluster *gpu.Cluster
	eps     []*Endpoint
	worlds  []*Comm
	wins    *winShared

	// Protocol metrics, resolved once from the cluster's registry at
	// construction (nil instruments — no-ops — when metrics are disabled).
	mEager      *metrics.Counter // sends taking the eager protocol
	mRendezvous *metrics.Counter // sends taking the rendezvous protocol
	mRetries    *metrics.Counter // rendezvous transfers re-issued after a stall
	mMatchDepth *metrics.Gauge   // high-water tag-match queue depth (posted+unexpected)

	// prof is the host-MPI cost profile, resolved once at construction: the
	// point-to-point hot path consults it on every call and the underlying
	// model map never changes.
	prof machine.LibProfile

	// Per-collective virtual-time histograms ("mpi.coll.<kind>", in ns).
	// Vector variants share their base collective's histogram.
	mColl struct {
		barrier, bcast, reduce, allreduce *metrics.Histogram
		gather, scatter, allgather        *metrics.Histogram
		alltoall                          *metrics.Histogram
	}
}

// timeColl starts timing one collective call; invoke the returned func at
// exit (via defer). Disabled metrics return a shared no-op, so the
// instrumented call sites cost one nil check and an empty defer.
func timeColl(p *sim.Proc, h *metrics.Histogram) func() {
	if h == nil {
		return nopEnd
	}
	start := p.Now()
	return func() { h.Observe(int64(p.Now().Sub(start))) }
}

var nopEnd = func() {}

// NewWorld creates an MPI world with one rank per device of the cluster.
// Install the metrics registry (gpu.Cluster.SetMetrics) before calling:
// instruments are resolved here.
func NewWorld(cluster *gpu.Cluster) *World {
	w := &World{cluster: cluster}
	w.prof = cluster.Model.Profile(machine.LibMPI, machine.APIHost)
	r := cluster.Metrics
	w.mEager = r.Counter("mpi.sends.eager")
	w.mRendezvous = r.Counter("mpi.sends.rendezvous")
	w.mRetries = r.Counter("mpi.rendezvous.retries")
	w.mMatchDepth = r.Gauge("mpi.matchq.depth")
	w.mColl.barrier = r.Histogram("mpi.coll.barrier")
	w.mColl.bcast = r.Histogram("mpi.coll.bcast")
	w.mColl.reduce = r.Histogram("mpi.coll.reduce")
	w.mColl.allreduce = r.Histogram("mpi.coll.allreduce")
	w.mColl.gather = r.Histogram("mpi.coll.gather")
	w.mColl.scatter = r.Histogram("mpi.coll.scatter")
	w.mColl.allgather = r.Histogram("mpi.coll.allgather")
	w.mColl.alltoall = r.Histogram("mpi.coll.alltoall")
	group := make([]int, len(cluster.Devices))
	for i, dev := range cluster.Devices {
		w.eps = append(w.eps, &Endpoint{
			world:    w,
			rank:     i,
			dev:      dev,
			pairs:    map[pairKey]*pairState{},
			sendSeqs: map[pairKey]uint64{},
		})
		group[i] = i
	}
	for i := range w.eps {
		w.worlds = append(w.worlds, &Comm{ep: w.eps[i], ctx: 0, group: group, rank: i})
	}
	return w
}

// Size reports the number of ranks.
func (w *World) Size() int { return len(w.eps) }

// Cluster reports the underlying simulated cluster.
func (w *World) Cluster() *gpu.Cluster { return w.cluster }

// CommWorld returns the world communicator handle of one rank. The handle
// is cached: repeated calls return the same instance, so the internal
// collective sequence advances consistently.
func (w *World) CommWorld(rank int) *Comm { return w.worlds[rank] }

// Endpoint is the per-rank library state.
type Endpoint struct {
	world *World
	rank  int
	dev   *gpu.Device

	posted     []*postedRecv
	unexpected []*header
	pairs      map[pairKey]*pairState
	// sendSeqs assigns the per-(destination, context) send sequence numbers
	// this endpoint stamps on outgoing headers. It lives on the sender (not
	// in the destination's pairState) so a send touches only sender-side
	// state — under sharding (gpu.Cluster.Conduit) the destination endpoint
	// may belong to another shard, and only the conduit may cross shards.
	// The numbering is identical either way: monotonically increasing from
	// zero per (src, dst, ctx).
	sendSeqs map[pairKey]uint64
	winSeq   uint64
}

// pairKey orders headers per (source rank, context) pair so that matching
// preserves MPI's non-overtaking guarantee. The sender's sendSeqs map reuses
// the type with src holding the destination rank.
type pairKey struct {
	src int
	ctx int
}

type pairState struct {
	nextRecv uint64             // next sequence to admit into matching
	held     map[uint64]*header // lazily allocated: only out-of-order arrivals need it
}

// sendSeq returns and advances the next send sequence number for messages
// from this endpoint to world rank dst in context ctx.
func (ep *Endpoint) sendSeq(dst, ctx int) uint64 {
	k := pairKey{src: dst, ctx: ctx}
	s := ep.sendSeqs[k]
	ep.sendSeqs[k] = s + 1
	return s
}

// Status describes a completed receive.
type Status struct {
	Source int
	Tag    int
	Count  int
}

// Request is a handle for a non-blocking operation.
type Request struct {
	done   *sim.Gate
	status *Status
}

// Done reports whether the operation has completed.
func (r *Request) Done() bool { return r.done.Fired() }

// Wait blocks until the operation completes and returns the receive status
// (zero Status for sends).
func (r *Request) Wait(p *sim.Proc) Status {
	r.done.Wait(p)
	if r.status != nil {
		return *r.status
	}
	return Status{}
}

// WaitAll waits for every request.
func WaitAll(p *sim.Proc, reqs ...*Request) {
	for _, r := range reqs {
		if r != nil {
			r.Wait(p)
		}
	}
}

// header is the matching envelope of an in-flight message. For eager
// messages the payload has been staged and travels with the envelope; for
// rendezvous the envelope is the RTS and the payload moves after the CTS.
type header struct {
	src, dst int // world ranks
	ctx, tag int
	seq      uint64
	count    int
	elemSize int

	eager  bool
	staged gpu.View // eager: payload snapshot taken at send time
	srcBuf gpu.View // rendezvous: live sender buffer
	// sGate completes the send. Embedded by value (the Gate zero value is a
	// valid unfired gate) so the envelope is a single allocation.
	sGate sim.Gate
}

type postedRecv struct {
	buf      gpu.View
	count    int
	src, tag int
	ctx      int
	// done and status are embedded for the same single-allocation reason as
	// header.sGate; Request points into the envelope.
	done   sim.Gate
	status Status
}

func (pr *postedRecv) matches(h *header) bool {
	if pr.ctx != h.ctx {
		return false
	}
	if pr.src != AnySource && pr.src != h.src {
		return false
	}
	if pr.tag != AnyTag && pr.tag != h.tag {
		return false
	}
	return true
}

// Comm is a communicator handle owned by one rank, analogous to an
// MPI_Comm value.
type Comm struct {
	ep    *Endpoint
	ctx   int
	group []int // world ranks of the members, ordered by comm rank
	rank  int   // this rank within the communicator

	// coll is the per-handle collective sequence number, used to build
	// reserved tags. It requires every rank to use a single handle per
	// communicator (CommWorld and Split hand out exactly one).
	coll uint64

	// hier caches the node-block layout detection (hierLayout); the group
	// is immutable after construction so it never invalidates.
	hier *hierLayout
}

// Rank reports the calling rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size reports the communicator size.
func (c *Comm) Size() int { return len(c.group) }

// WorldRank translates a communicator rank to a world rank.
func (c *Comm) WorldRank(r int) int { return c.group[r] }

// Device reports the calling rank's device.
func (c *Comm) Device() *gpu.Device { return c.ep.dev }

func (c *Comm) model() *machine.Model { return c.ep.world.cluster.Model }

func (c *Comm) profile() machine.LibProfile { return c.ep.world.prof }

// Isend starts a non-blocking standard-mode send of buf to dst (comm rank)
// with the given tag.
func (c *Comm) Isend(p *sim.Proc, buf gpu.View, dst, tag int) *Request {
	if dst < 0 || dst >= len(c.group) {
		panic(fmt.Sprintf("mpi: Isend to invalid rank %d (size %d)", dst, len(c.group)))
	}
	prof := c.profile()
	p.Advance(prof.CallOverhead)

	w := c.ep.world
	eng := p.Engine()
	srcWorld, dstWorld := c.group[c.rank], c.group[dst]
	dstEp := w.eps[dstWorld]

	h := &header{
		src: srcWorld, dst: dstWorld, ctx: c.ctx, tag: tag,
		seq:   c.ep.sendSeq(dstWorld, c.ctx),
		count: buf.Len(), elemSize: buf.ElemSize(),
	}
	h.sGate.SetLabel("gate send")
	bytes := buf.Bytes()
	fab := w.cluster.Fabric
	path := fab.PathBetween(srcWorld, dstWorld)
	cost := w.cluster.Cost(machine.LibMPI, machine.APIHost, path, bytes)
	// Inter-node messages of a sharded run cross shards through the
	// conduit; everything else (and every serial run) stays on the direct
	// same-engine path. Same-node traffic always shares a shard, so only
	// PathInter can cross.
	cd := w.cluster.Conduit
	sharded := cd != nil && path == fabric.PathInter

	if bytes <= prof.EagerMax {
		// Eager: snapshot the payload, inject, and complete locally once
		// the data has left the send buffer.
		w.mEager.Inc()
		h.eager = true
		h.staged = buf.Clone()
		if sharded {
			// Split booking: the source shard books its NIC egress now;
			// the destination shard books ingress when the conduit
			// delivers the envelope one wire latency after departure.
			depart, booked := fab.SendInter(p.Now(), srcWorld, dstWorld, bytes, cost)
			cd.Post(fab.Node(srcWorld), fab.Node(dstWorld), depart.Add(booked.Latency), func(dstEng *sim.Engine) {
				arrive := fab.RecvInter(dstEng.Now(), srcWorld, dstWorld, bytes, booked)
				dstEng.After(arrive.Sub(dstEng.Now()), func() { dstEp.admit(h) })
			})
		} else {
			arrive := fab.Transfer(p.Now(), srcWorld, dstWorld, bytes, cost)
			eng.After(arrive.Sub(eng.Now()), func() { dstEp.admit(h) })
		}
		h.sGate.Fire(eng) // send buffer reusable immediately after staging
		return &Request{done: &h.sGate}
	}

	// Rendezvous: ship the RTS envelope; the payload moves once the
	// receiver matches and returns a CTS. The handshake costs the
	// profile's rendezvous overhead split across RTS and CTS, plus — on a
	// switched topology — the minimal-route switch latency, which keeps
	// cross-shard envelope posts past the enlarged lookahead window.
	w.mRendezvous.Inc()
	h.srcBuf = buf
	half := prof.RendezvousOverhead / 2
	rtsWire := half + cost.Latency + fab.InterExtraLatency(srcWorld, dstWorld)
	if sharded {
		cd.Post(fab.Node(srcWorld), fab.Node(dstWorld), p.Now().Add(rtsWire),
			func(*sim.Engine) { dstEp.admit(h) })
	} else {
		eng.After(rtsWire, func() { dstEp.admit(h) })
	}
	return &Request{done: &h.sGate}
}

// Irecv starts a non-blocking receive into buf from src (comm rank or
// AnySource) with the given tag (or AnyTag).
func (c *Comm) Irecv(p *sim.Proc, buf gpu.View, src, tag int) *Request {
	prof := c.profile()
	p.Advance(prof.CallOverhead)

	srcWorld := src
	if src != AnySource {
		if src < 0 || src >= len(c.group) {
			panic(fmt.Sprintf("mpi: Irecv from invalid rank %d (size %d)", src, len(c.group)))
		}
		srcWorld = c.group[src]
	}
	pr := &postedRecv{
		buf: buf, count: buf.Len(), src: srcWorld, tag: tag, ctx: c.ctx,
	}
	pr.done.SetLabel("gate recv")
	// Try the unexpected queue first (arrival order), then post.
	ep := c.ep
	for i, h := range ep.unexpected {
		if pr.matches(h) {
			ep.unexpected = append(ep.unexpected[:i], ep.unexpected[i+1:]...)
			ep.deliver(h, pr)
			return &Request{done: &pr.done, status: &pr.status}
		}
	}
	ep.posted = append(ep.posted, pr)
	ep.noteQueueDepth()
	return &Request{done: &pr.done, status: &pr.status}
}

// Send is the blocking standard-mode send.
func (c *Comm) Send(p *sim.Proc, buf gpu.View, dst, tag int) {
	c.Isend(p, buf, dst, tag).Wait(p)
}

// Recv is the blocking receive; it returns the matched message's status.
func (c *Comm) Recv(p *sim.Proc, buf gpu.View, src, tag int) Status {
	return c.Irecv(p, buf, src, tag).Wait(p)
}

// Sendrecv performs a simultaneous send and receive (deadlock-free pairwise
// exchange).
func (c *Comm) Sendrecv(p *sim.Proc, sendBuf gpu.View, dst, sendTag int, recvBuf gpu.View, src, recvTag int) Status {
	rr := c.Irecv(p, recvBuf, src, recvTag)
	sr := c.Isend(p, sendBuf, dst, sendTag)
	st := rr.Wait(p)
	sr.Wait(p)
	return st
}

func (ep *Endpoint) pair(pk pairKey) *pairState {
	ps := ep.pairs[pk]
	if ps == nil {
		ps = &pairState{}
		ep.pairs[pk] = ps
	}
	return ps
}

// admit enforces per-pair arrival ordering: headers enter matching strictly
// in sequence order, preserving MPI's non-overtaking guarantee even if the
// fabric delivered them out of order. In-order arrival with nothing buffered
// — the overwhelmingly common case on a healthy fabric — bypasses the held
// map entirely.
func (ep *Endpoint) admit(h *header) {
	ps := ep.pair(pairKey{src: h.src, ctx: h.ctx})
	if h.seq == ps.nextRecv && len(ps.held) == 0 {
		ps.nextRecv++
		ep.match(h)
		return
	}
	if ps.held == nil {
		ps.held = map[uint64]*header{}
	}
	ps.held[h.seq] = h
	for {
		next, ok := ps.held[ps.nextRecv]
		if !ok {
			return
		}
		delete(ps.held, ps.nextRecv)
		ps.nextRecv++
		ep.match(next)
	}
}

// match pairs one admitted header against the posted-receive queue.
func (ep *Endpoint) match(h *header) {
	for i, pr := range ep.posted {
		if pr.matches(h) {
			ep.posted = append(ep.posted[:i], ep.posted[i+1:]...)
			ep.deliver(h, pr)
			return
		}
	}
	ep.unexpected = append(ep.unexpected, h)
	ep.noteQueueDepth()
}

// noteQueueDepth records the tag-matching queue high-water mark (posted
// plus unexpected messages of one endpoint).
func (ep *Endpoint) noteQueueDepth() {
	ep.world.mMatchDepth.Max(float64(len(ep.posted) + len(ep.unexpected)))
}

// deliver completes a matched (header, receive) pair.
func (ep *Endpoint) deliver(h *header, pr *postedRecv) {
	if h.count > pr.count {
		panic(fmt.Sprintf("mpi: message truncation: %d elements into %d (src %d tag %d)",
			h.count, pr.count, h.src, h.tag))
	}
	w := ep.world
	eng := ep.dev.Engine()
	pr.status = Status{Source: h.src, Tag: h.tag, Count: h.count}

	if h.eager {
		// Payload already arrived with the envelope: unpack, hand the
		// staging buffer back to the arena, and complete.
		gpu.Copy(pr.buf, h.staged, h.count)
		h.staged.Release()
		pr.done.Fire(eng)
		return
	}

	// Rendezvous: CTS back to the sender, then the bulk transfer. If a
	// stall window (fault injection) rejects the transfer, the handshake is
	// retried with exponential backoff — as a real rendezvous protocol
	// re-issues the RTS/CTS exchange when the NIC reports the port down.
	half := w.prof.RendezvousOverhead / 2
	bytes := h.srcBuf.Bytes()
	path := w.cluster.Fabric.PathBetween(h.src, h.dst)
	cost := w.cluster.Cost(machine.LibMPI, machine.APIHost, path, bytes)
	if cd := w.cluster.Conduit; cd != nil && path == fabric.PathInter {
		ep.deliverRendezvousSharded(h, pr, cd, cost, bytes, half)
		return
	}
	var attempt func(backoff sim.Duration)
	attempt = func(backoff sim.Duration) {
		arrive, stall := w.cluster.Fabric.TryTransfer(eng.Now(), h.src, h.dst, bytes, cost)
		if stall != nil {
			w.mRetries.Inc()
			// Wait out the stall (or at least the backoff), then re-run
			// the handshake with the backoff doubled.
			wait := backoff
			if d := stall.Until.Sub(eng.Now()); d > wait {
				wait = d
			}
			next := backoff * 2
			if next > rendezvousBackoffMax {
				next = rendezvousBackoffMax
			}
			eng.After(wait, func() { attempt(next) })
			return
		}
		eng.After(arrive.Sub(eng.Now()), func() {
			gpu.Copy(pr.buf, h.srcBuf, h.count)
			pr.done.Fire(eng)
			h.sGate.Fire(eng)
		})
	}
	eng.After(sim.Duration(half), func() { attempt(rendezvousBackoffBase) })
}

// deliverRendezvousSharded is the rendezvous payload path of a sharded run:
// src and dst live on different shards, so every leg crosses through the
// conduit. The CTS travels back to the source node (paying the other half
// of the handshake overhead plus one wire latency — the serial protocol
// folds the CTS wire time into the coupled transfer, so sharded rendezvous
// timings differ from serial ones; they are identical across shard counts,
// which is what the 1-vs-N byte-compares pin). At the source the payload is
// booked with the stall/backoff retry loop against the local NIC egress,
// snapshotted when it departs, and shipped; the destination books ingress
// on its own shard and completes the receive.
func (ep *Endpoint) deliverRendezvousSharded(h *header, pr *postedRecv, cd *sim.Conduit, cost fabric.LinkCost, bytes int64, half sim.Duration) {
	w := ep.world
	fab := w.cluster.Fabric
	srcNode, dstNode := fab.Node(h.src), fab.Node(h.dst)
	ctsWire := half + cost.Latency + fab.InterExtraLatency(h.dst, h.src)
	cd.Post(dstNode, srcNode, ep.dev.Engine().Now().Add(ctsWire), func(srcEng *sim.Engine) {
		var attempt func(backoff sim.Duration)
		attempt = func(backoff sim.Duration) {
			depart, booked, stall := fab.TrySendInter(srcEng.Now(), h.src, h.dst, bytes, cost)
			if stall != nil {
				w.mRetries.Inc()
				wait := backoff
				if d := stall.Until.Sub(srcEng.Now()); d > wait {
					wait = d
				}
				next := backoff * 2
				if next > rendezvousBackoffMax {
					next = rendezvousBackoffMax
				}
				srcEng.After(wait, func() { attempt(next) })
				return
			}
			// Snapshot the payload as it leaves the send buffer: the source
			// completes at departure, so the application may reuse the
			// buffer before the bytes reach the destination.
			staged := h.srcBuf.Clone()
			srcEng.After(depart.Sub(srcEng.Now()), func() { h.sGate.Fire(srcEng) })
			cd.Post(srcNode, dstNode, depart.Add(booked.Latency), func(dstEng *sim.Engine) {
				arrive := fab.RecvInter(dstEng.Now(), h.src, h.dst, bytes, booked)
				dstEng.After(arrive.Sub(dstEng.Now()), func() {
					gpu.Copy(pr.buf, staged, h.count)
					staged.Release()
					pr.done.Fire(dstEng)
				})
			})
		}
		attempt(rendezvousBackoffBase)
	})
}

// Rendezvous retry backoff bounds: the first retry after a rejected
// transfer waits at least the base; subsequent retries double up to the cap.
const (
	rendezvousBackoffBase = sim.Microsecond
	rendezvousBackoffMax  = 100 * sim.Microsecond
)
