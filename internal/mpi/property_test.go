package mpi

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gpu"
	"repro/internal/machine"
	"repro/internal/sim"
)

func TestP2PContentIntegrityAcrossProtocolsProperty(t *testing.T) {
	// Property: for any message size (straddling the eager/rendezvous
	// threshold), the receiver observes exactly the sent bytes, and the
	// sender's buffer is reusable immediately after a completed Send.
	f := func(seed int64, sizeSel uint32) bool {
		// Bias sizes around the 8 KiB threshold.
		sizes := []int{1, 7, 1023, 1024, 1025, 8191/8 + 1, 8192 / 8, 8193/8 + 1, 1 << 14, 1 << 16}
		n := sizes[int(sizeSel)%len(sizes)]
		rng := rand.New(rand.NewSource(seed))
		payload := make([]float64, n)
		for i := range payload {
			payload[i] = rng.Float64()
		}
		eng := sim.NewEngine()
		defer eng.Close()
		cl := gpu.NewCluster(eng, machine.Perlmutter(), 2)
		w := NewWorld(cl)
		ok := true
		for r := 0; r < 2; r++ {
			c := w.CommWorld(r)
			eng.Spawn(fmt.Sprintf("rank%d", r), func(p *sim.Proc) {
				buf := gpu.AllocBuffer[float64](c.Device(), n)
				if c.Rank() == 0 {
					copy(buf.Data(), payload)
					c.Send(p, buf.Whole(), 1, 42)
					for i := range buf.Data() {
						buf.Data()[i] = -1 // reuse after completion
					}
				} else {
					c.Recv(p, buf.Whole(), 0, 42)
					for i := range buf.Data() {
						if buf.Data()[i] != payload[i] {
							ok = false
							return
						}
					}
				}
			})
		}
		if err := eng.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTruncationPanics(t *testing.T) {
	eng := sim.NewEngine()
	defer eng.Close()
	cl := gpu.NewCluster(eng, machine.Perlmutter(), 2)
	w := NewWorld(cl)
	for r := 0; r < 2; r++ {
		c := w.CommWorld(r)
		eng.Spawn(fmt.Sprintf("rank%d", r), func(p *sim.Proc) {
			if c.Rank() == 0 {
				big := gpu.AllocBuffer[float64](c.Device(), 8)
				c.Send(p, big.Whole(), 1, 0)
			} else {
				small := gpu.AllocBuffer[float64](c.Device(), 4)
				c.Recv(p, small.Whole(), 0, 0) // 8 into 4: error
			}
		})
	}
	err := eng.Run()
	if _, ok := err.(*sim.PanicError); !ok {
		t.Fatalf("expected PanicError on truncation, got %v", err)
	}
}

func TestRequestDoneAndStatus(t *testing.T) {
	runRanks(t, machine.Perlmutter(), 2, func(p *sim.Proc, c *Comm) {
		if c.Rank() == 0 {
			b := fbuf(c, 1, 2)
			req := c.Isend(p, b.Whole(), 1, 5)
			req.Wait(p)
			if !req.Done() {
				t.Error("send request not done after Wait")
			}
		} else {
			b := gpu.AllocBuffer[float64](c.Device(), 2)
			req := c.Irecv(p, b.Whole(), 0, 5)
			st := req.Wait(p)
			if st.Source != 0 || st.Tag != 5 || st.Count != 2 {
				t.Errorf("status %+v", st)
			}
			if !req.Done() {
				t.Error("recv request not done")
			}
		}
	})
}

func TestCommDup(t *testing.T) {
	runRanks(t, machine.Perlmutter(), 3, func(p *sim.Proc, c *Comm) {
		dup := c.Dup(p)
		if dup.Size() != c.Size() || dup.Rank() != c.Rank() {
			t.Errorf("dup shape %d/%d", dup.Rank(), dup.Size())
		}
		// Traffic on the dup does not interfere with the parent: matching
		// is per context.
		b := fbuf(c, float64(c.Rank()))
		r := gpu.AllocBuffer[float64](c.Device(), 1)
		dup.Allreduce(p, b.Whole(), r.Whole(), gpu.ReduceSum)
		if r.Data()[0] != 3 {
			t.Errorf("dup allreduce = %v", r.Data()[0])
		}
	})
}

func TestCollectivesPropertyAgainstSerial(t *testing.T) {
	// Property: Bcast-then-Reduce(sum) over random vectors equals n * the
	// broadcast payload.
	f := func(seed int64, ranks uint8, count uint8) bool {
		n := int(ranks)%6 + 2
		cnt := int(count)%17 + 1
		rng := rand.New(rand.NewSource(seed))
		payload := make([]float64, cnt)
		for i := range payload {
			payload[i] = float64(rng.Intn(100))
		}
		root := rng.Intn(n)
		ok := true
		eng := sim.NewEngine()
		defer eng.Close()
		cl := gpu.NewCluster(eng, machine.Perlmutter(), n)
		w := NewWorld(cl)
		for r := 0; r < n; r++ {
			c := w.CommWorld(r)
			eng.Spawn(fmt.Sprintf("rank%d", r), func(p *sim.Proc) {
				b := gpu.AllocBuffer[float64](c.Device(), cnt)
				if c.Rank() == root {
					copy(b.Data(), payload)
				}
				c.Bcast(p, b.Whole(), root)
				out := gpu.AllocBuffer[float64](c.Device(), cnt)
				c.Reduce(p, b.Whole(), out.Whole(), gpu.ReduceSum, root)
				if c.Rank() == root {
					for i := range payload {
						if out.Data()[i] != payload[i]*float64(n) {
							ok = false
						}
					}
				}
			})
		}
		if err := eng.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
