package mpi

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gpu"
	"repro/internal/machine"
	"repro/internal/sim"
)

// runRanks spawns one process per rank and runs the simulation to
// completion, failing the test on deadlock or panic.
func runRanks(t *testing.T, model *machine.Model, n int, body func(p *sim.Proc, c *Comm)) {
	t.Helper()
	eng := sim.NewEngine()
	defer eng.Close()
	cl := gpu.NewCluster(eng, model, n)
	w := NewWorld(cl)
	for r := 0; r < n; r++ {
		c := w.CommWorld(r)
		eng.Spawn(fmt.Sprintf("rank%d", r), func(p *sim.Proc) { body(p, c) })
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func fbuf(c *Comm, vals ...float64) *gpu.Buffer[float64] {
	b := gpu.AllocBuffer[float64](c.Device(), len(vals))
	copy(b.Data(), vals)
	return b
}

func TestSendRecvEager(t *testing.T) {
	runRanks(t, machine.Perlmutter(), 2, func(p *sim.Proc, c *Comm) {
		if c.Rank() == 0 {
			b := fbuf(c, 1, 2, 3)
			c.Send(p, b.Whole(), 1, 7)
			// Eager: the send buffer is reusable immediately.
			b.Data()[0] = 99
		} else {
			b := gpu.AllocBuffer[float64](c.Device(), 3)
			st := c.Recv(p, b.Whole(), 0, 7)
			if st.Source != 0 || st.Tag != 7 || st.Count != 3 {
				t.Errorf("status = %+v", st)
			}
			if b.Data()[0] != 1 || b.Data()[2] != 3 {
				t.Errorf("recv data = %v", b.Data())
			}
		}
	})
}

func TestSendRecvRendezvous(t *testing.T) {
	const n = 1 << 16 // 512 KiB of float64 > eager threshold
	runRanks(t, machine.Perlmutter(), 2, func(p *sim.Proc, c *Comm) {
		if c.Rank() == 0 {
			b := gpu.AllocBuffer[float64](c.Device(), n)
			for i := range b.Data() {
				b.Data()[i] = float64(i)
			}
			c.Send(p, b.Whole(), 1, 0)
		} else {
			b := gpu.AllocBuffer[float64](c.Device(), n)
			c.Recv(p, b.Whole(), 0, 0)
			for _, i := range []int{0, 1, n/2 + 3, n - 1} {
				if b.Data()[i] != float64(i) {
					t.Errorf("b[%d] = %v", i, b.Data()[i])
				}
			}
		}
	})
}

func TestRendezvousSlowerThanEagerPerByte(t *testing.T) {
	// Latency just below vs just above the eager threshold should jump by
	// roughly the rendezvous overhead.
	lat := func(bytes int) sim.Duration {
		var d sim.Duration
		runRanks(t, machine.Perlmutter(), 2, func(p *sim.Proc, c *Comm) {
			n := bytes / 8
			b := gpu.AllocBuffer[float64](c.Device(), n)
			if c.Rank() == 0 {
				start := p.Now()
				c.Send(p, b.Whole(), 1, 0)
				c.Recv(p, b.Whole(), 1, 1)
				d = p.Now().Sub(start)
			} else {
				c.Recv(p, b.Whole(), 0, 0)
				c.Send(p, b.Whole(), 0, 1)
			}
		})
		return d
	}
	below := lat(8 << 10)
	above := lat((8 << 10) + 8)
	rdv := machine.Perlmutter().Profile(machine.LibMPI, machine.APIHost).RendezvousOverhead
	if above-below < sim.Duration(float64(rdv)*1.5) { // both directions pay it
		t.Fatalf("rendezvous knee too small: below=%v above=%v", below, above)
	}
}

func TestUnexpectedMessageQueue(t *testing.T) {
	runRanks(t, machine.Perlmutter(), 2, func(p *sim.Proc, c *Comm) {
		if c.Rank() == 0 {
			b := fbuf(c, 42)
			c.Send(p, b.Whole(), 1, 5)
		} else {
			// Delay posting so the message lands unexpected.
			p.Advance(sim.Second)
			b := gpu.AllocBuffer[float64](c.Device(), 1)
			st := c.Recv(p, b.Whole(), 0, 5)
			if b.Data()[0] != 42 || st.Count != 1 {
				t.Errorf("data=%v status=%+v", b.Data(), st)
			}
		}
	})
}

func TestAnySourceAnyTag(t *testing.T) {
	runRanks(t, machine.Perlmutter(), 3, func(p *sim.Proc, c *Comm) {
		switch c.Rank() {
		case 1, 2:
			b := fbuf(c, float64(c.Rank()))
			c.Send(p, b.Whole(), 0, 10+c.Rank())
		case 0:
			got := map[int]bool{}
			for i := 0; i < 2; i++ {
				b := gpu.AllocBuffer[float64](c.Device(), 1)
				st := c.Recv(p, b.Whole(), AnySource, AnyTag)
				if int(b.Data()[0]) != st.Source {
					t.Errorf("payload %v from %d", b.Data()[0], st.Source)
				}
				if st.Tag != 10+st.Source {
					t.Errorf("tag %d from %d", st.Tag, st.Source)
				}
				got[st.Source] = true
			}
			if !got[1] || !got[2] {
				t.Errorf("sources seen: %v", got)
			}
		}
	})
}

func TestNonOvertakingSameSourceTag(t *testing.T) {
	// Two same-tag messages must match posted receives in send order.
	runRanks(t, machine.Perlmutter(), 2, func(p *sim.Proc, c *Comm) {
		if c.Rank() == 0 {
			a := fbuf(c, 1)
			b := fbuf(c, 2)
			c.Send(p, a.Whole(), 1, 3)
			c.Send(p, b.Whole(), 1, 3)
		} else {
			first := gpu.AllocBuffer[float64](c.Device(), 1)
			second := gpu.AllocBuffer[float64](c.Device(), 1)
			r1 := c.Irecv(p, first.Whole(), 0, 3)
			r2 := c.Irecv(p, second.Whole(), 0, 3)
			WaitAll(p, r1, r2)
			if first.Data()[0] != 1 || second.Data()[0] != 2 {
				t.Errorf("order: first=%v second=%v", first.Data()[0], second.Data()[0])
			}
		}
	})
}

func TestSendrecvNoDeadlock(t *testing.T) {
	runRanks(t, machine.Perlmutter(), 4, func(p *sim.Proc, c *Comm) {
		n := c.Size()
		right, left := (c.Rank()+1)%n, (c.Rank()-1+n)%n
		s := fbuf(c, float64(c.Rank()))
		r := gpu.AllocBuffer[float64](c.Device(), 1)
		c.Sendrecv(p, s.Whole(), right, 0, r.Whole(), left, 0)
		if int(r.Data()[0]) != left {
			t.Errorf("rank %d got %v, want %d", c.Rank(), r.Data()[0], left)
		}
	})
}

func TestBarrierSynchronizes(t *testing.T) {
	var exitTimes [5]sim.Time
	runRanks(t, machine.Perlmutter(), 5, func(p *sim.Proc, c *Comm) {
		p.Advance(sim.Duration(c.Rank()) * 100 * sim.Microsecond)
		c.Barrier(p)
		exitTimes[c.Rank()] = p.Now()
	})
	slowestEntry := sim.Time(4 * 100 * sim.Microsecond)
	for r, ts := range exitTimes {
		if ts < slowestEntry {
			t.Errorf("rank %d left barrier at %v, before slowest entry %v", r, ts, slowestEntry)
		}
	}
}

func TestBcastAllRootsAllSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8} {
		for root := 0; root < n; root++ {
			n, root := n, root
			t.Run(fmt.Sprintf("n%d_root%d", n, root), func(t *testing.T) {
				runRanks(t, machine.Perlmutter(), n, func(p *sim.Proc, c *Comm) {
					b := gpu.AllocBuffer[float64](c.Device(), 4)
					if c.Rank() == root {
						for i := range b.Data() {
							b.Data()[i] = float64(100*root + i)
						}
					}
					c.Bcast(p, b.Whole(), root)
					for i, v := range b.Data() {
						if v != float64(100*root+i) {
							t.Errorf("rank %d: b[%d]=%v", c.Rank(), i, v)
						}
					}
				})
			})
		}
	}
}

func TestReduceSum(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7} {
		n := n
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			runRanks(t, machine.LUMI(), n, func(p *sim.Proc, c *Comm) {
				s := fbuf(c, float64(c.Rank()+1), float64(10*(c.Rank()+1)))
				r := gpu.AllocBuffer[float64](c.Device(), 2)
				c.Reduce(p, s.Whole(), r.Whole(), gpu.ReduceSum, 0)
				if c.Rank() == 0 {
					wantA := float64(n*(n+1)) / 2
					if r.Data()[0] != wantA || r.Data()[1] != 10*wantA {
						t.Errorf("reduce = %v, want [%v %v]", r.Data(), wantA, 10*wantA)
					}
				}
			})
		})
	}
}

func TestAllreduceSmallAndLarge(t *testing.T) {
	for _, count := range []int{3, 1 << 14} { // recursive doubling vs ring
		for _, n := range []int{2, 3, 4, 6, 8} {
			count, n := count, n
			t.Run(fmt.Sprintf("count%d_n%d", count, n), func(t *testing.T) {
				runRanks(t, machine.Perlmutter(), n, func(p *sim.Proc, c *Comm) {
					s := gpu.AllocBuffer[float64](c.Device(), count)
					r := gpu.AllocBuffer[float64](c.Device(), count)
					for i := range s.Data() {
						s.Data()[i] = float64(c.Rank()*count + i)
					}
					c.Allreduce(p, s.Whole(), r.Whole(), gpu.ReduceSum)
					for _, i := range []int{0, count / 2, count - 1} {
						want := 0.0
						for rk := 0; rk < n; rk++ {
							want += float64(rk*count + i)
						}
						if r.Data()[i] != want {
							t.Errorf("rank %d: r[%d]=%v want %v", c.Rank(), i, r.Data()[i], want)
						}
					}
				})
			})
		}
	}
}

func TestAllreduceMinMaxInPlace(t *testing.T) {
	runRanks(t, machine.Perlmutter(), 4, func(p *sim.Proc, c *Comm) {
		b := fbuf(c, float64(c.Rank()), float64(-c.Rank()))
		c.Allreduce(p, b.Whole(), b.Whole(), gpu.ReduceMax)
		if b.Data()[0] != 3 || b.Data()[1] != 0 {
			t.Errorf("max in place = %v", b.Data())
		}
		b2 := fbuf(c, float64(c.Rank()))
		c.Allreduce(p, b2.Whole(), b2.Whole(), gpu.ReduceMin)
		if b2.Data()[0] != 0 {
			t.Errorf("min in place = %v", b2.Data())
		}
	})
}

func TestGatherScatter(t *testing.T) {
	const n = 4
	runRanks(t, machine.Perlmutter(), n, func(p *sim.Proc, c *Comm) {
		send := fbuf(c, float64(c.Rank()), float64(c.Rank())+0.5)
		var recv *gpu.Buffer[float64]
		if c.Rank() == 2 {
			recv = gpu.AllocBuffer[float64](c.Device(), 2*n)
		} else {
			recv = gpu.AllocBuffer[float64](c.Device(), 2*n) // unused
		}
		c.Gather(p, send.Whole(), recv.Whole(), 2)
		if c.Rank() == 2 {
			for r := 0; r < n; r++ {
				if recv.Data()[2*r] != float64(r) || recv.Data()[2*r+1] != float64(r)+0.5 {
					t.Errorf("gather[%d] = %v", r, recv.Data()[2*r:2*r+2])
				}
			}
		}
		// Scatter back from rank 1.
		src := gpu.AllocBuffer[float64](c.Device(), 2*n)
		if c.Rank() == 1 {
			for i := range src.Data() {
				src.Data()[i] = float64(1000 + i)
			}
		}
		dst := gpu.AllocBuffer[float64](c.Device(), 2)
		c.Scatter(p, src.Whole(), dst.Whole(), 1)
		if dst.Data()[0] != float64(1000+2*c.Rank()) {
			t.Errorf("scatter rank %d = %v", c.Rank(), dst.Data())
		}
	})
}

func TestAllgatherv(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		n := n
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			runRanks(t, machine.LUMI(), n, func(p *sim.Proc, c *Comm) {
				counts := make([]int, n)
				total := 0
				for r := range counts {
					counts[r] = r + 1 // variable sizes
					total += counts[r]
				}
				displs := prefixSums(counts)
				mine := counts[c.Rank()]
				send := gpu.AllocBuffer[float64](c.Device(), mine)
				for i := range send.Data() {
					send.Data()[i] = float64(100*c.Rank() + i)
				}
				recv := gpu.AllocBuffer[float64](c.Device(), total)
				c.Allgatherv(p, send.Whole(), recv.Whole(), counts, displs)
				for r := 0; r < n; r++ {
					for i := 0; i < counts[r]; i++ {
						if got := recv.Data()[displs[r]+i]; got != float64(100*r+i) {
							t.Errorf("rank %d: recv[%d+%d]=%v", c.Rank(), displs[r], i, got)
						}
					}
				}
			})
		})
	}
}

func TestAlltoall(t *testing.T) {
	const n, count = 4, 3
	runRanks(t, machine.Perlmutter(), n, func(p *sim.Proc, c *Comm) {
		send := gpu.AllocBuffer[float64](c.Device(), n*count)
		recv := gpu.AllocBuffer[float64](c.Device(), n*count)
		for dst := 0; dst < n; dst++ {
			for i := 0; i < count; i++ {
				send.Data()[dst*count+i] = float64(100*c.Rank() + 10*dst + i)
			}
		}
		c.Alltoall(p, send.Whole(), recv.Whole(), count)
		for src := 0; src < n; src++ {
			for i := 0; i < count; i++ {
				want := float64(100*src + 10*c.Rank() + i)
				if got := recv.Data()[src*count+i]; got != want {
					t.Errorf("rank %d: recv[%d]=%v want %v", c.Rank(), src*count+i, got, want)
				}
			}
		}
	})
}

func TestCommSplit(t *testing.T) {
	runRanks(t, machine.Perlmutter(), 6, func(p *sim.Proc, c *Comm) {
		color := c.Rank() % 2
		sub := c.Split(p, color, -c.Rank()) // reverse order by key
		if sub.Size() != 3 {
			t.Errorf("sub size = %d", sub.Size())
		}
		// Keys are descending with world rank, so comm rank 0 is the
		// highest world rank of the color class.
		wantRank := (5 - c.Rank() + (1 - color)) / 2
		_ = wantRank
		// Check communication stays within the split: sum world ranks.
		s := fbuf(c, float64(c.Rank()))
		r := gpu.AllocBuffer[float64](c.Device(), 1)
		sub.Allreduce(p, s.Whole(), r.Whole(), gpu.ReduceSum)
		want := 0.0
		for wr := color; wr < 6; wr += 2 {
			want += float64(wr)
		}
		if r.Data()[0] != want {
			t.Errorf("split allreduce = %v, want %v", r.Data()[0], want)
		}
	})
}

func TestAllreducePropertyRandomVectors(t *testing.T) {
	f := func(seed int64, nRanks uint8, count uint8) bool {
		n := int(nRanks)%7 + 1
		cnt := int(count)%33 + 1
		rng := rand.New(rand.NewSource(seed))
		inputs := make([][]float64, n)
		want := make([]float64, cnt)
		for r := range inputs {
			inputs[r] = make([]float64, cnt)
			for i := range inputs[r] {
				inputs[r][i] = float64(rng.Intn(1000))
				want[i] += inputs[r][i]
			}
		}
		ok := true
		eng := sim.NewEngine()
		defer eng.Close()
		cl := gpu.NewCluster(eng, machine.Perlmutter(), n)
		w := NewWorld(cl)
		for r := 0; r < n; r++ {
			c := w.CommWorld(r)
			eng.Spawn(fmt.Sprintf("rank%d", r), func(p *sim.Proc) {
				b := gpu.AllocBuffer[float64](c.Device(), cnt)
				copy(b.Data(), inputs[c.Rank()])
				c.Allreduce(p, b.Whole(), b.Whole(), gpu.ReduceSum)
				for i := range want {
					if b.Data()[i] != want[i] {
						ok = false
					}
				}
			})
		}
		if err := eng.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMessageLatencyIntraVsInter(t *testing.T) {
	// Inter-node roundtrip must be slower than intra-node on the same model.
	rt := func(nGPUs, peer int) sim.Duration {
		var d sim.Duration
		eng := sim.NewEngine()
		defer eng.Close()
		cl := gpu.NewCluster(eng, machine.Perlmutter(), nGPUs)
		w := NewWorld(cl)
		for r := 0; r < nGPUs; r++ {
			r := r
			c := w.CommWorld(r)
			eng.Spawn(fmt.Sprintf("rank%d", r), func(p *sim.Proc) {
				b := gpu.AllocBuffer[float64](c.Device(), 16)
				switch r {
				case 0:
					start := p.Now()
					c.Send(p, b.Whole(), peer, 0)
					c.Recv(p, b.Whole(), peer, 1)
					d = p.Now().Sub(start)
				case peer:
					c.Recv(p, b.Whole(), 0, 0)
					c.Send(p, b.Whole(), 0, 1)
				}
			})
		}
		if err := eng.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return d
	}
	intra := rt(2, 1)
	inter := rt(5, 4) // GPU 4 is on node 1
	if inter <= intra {
		t.Fatalf("inter (%v) should exceed intra (%v)", inter, intra)
	}
}

func TestCollTagWraparoundAndBounds(t *testing.T) {
	eng := sim.NewEngine()
	defer eng.Close()
	w := NewWorld(gpu.NewCluster(eng, machine.Perlmutter(), 1))
	c := w.CommWorld(0)

	// The collective sequence is folded modulo collWindow, so a handle that
	// has issued collWindow collectives reuses the first window's tags
	// instead of overflowing int.
	c.coll = 5
	base := c.collTag(3)
	c.coll = 5 + collWindow
	if got := c.collTag(3); got != base {
		t.Fatalf("wrapped tag = %d, want %d", got, base)
	}
	// The worst-case reserved tag stays a positive 32-bit int.
	c.coll = collWindow - 1
	if tag := c.collTag(collRounds - 1); tag <= maxUserTag || tag >= 1<<31 {
		t.Fatalf("worst-case tag %d outside (maxUserTag, 2^31)", tag)
	}
	// Adjacent collectives never share a tag within the window.
	c.coll = 7
	last := c.collTag(collRounds - 1)
	c.coll = 8
	if first := c.collTag(0); first == last {
		t.Fatalf("tag collision between consecutive collectives: %d", first)
	}
	// Rounds outside the reserved field are a programming error.
	for _, round := range []int{-1, collRounds} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("collTag(%d) did not panic", round)
				}
			}()
			c.collTag(round)
		}()
	}
}

// runStalledRendezvous sends one rendezvous-size message across nodes with
// an optional NIC stall on the sender's node and reports the receive time.
func runStalledRendezvous(t *testing.T, stallEnd sim.Time) sim.Time {
	t.Helper()
	m := *machine.Perlmutter()
	m.GPUsPerNode = 1
	m.NICsPerNode = 1
	eng := sim.NewEngine()
	defer eng.Close()
	cl := gpu.NewCluster(eng, &m, 2)
	if stallEnd > 0 {
		cl.Fabric.StallNIC(0, 0, 0, stallEnd)
	}
	w := NewWorld(cl)
	const n = 1 << 16 // 512 KiB of float64: rendezvous protocol
	var done sim.Time
	for r := 0; r < 2; r++ {
		c := w.CommWorld(r)
		eng.Spawn(fmt.Sprintf("rank%d", r), func(p *sim.Proc) {
			b := gpu.AllocBuffer[float64](c.Device(), n)
			if c.Rank() == 0 {
				c.Send(p, b.Whole(), 1, 1)
			} else {
				st := c.Recv(p, b.Whole(), 0, 1)
				if st.Count != n {
					t.Errorf("recv count = %d", st.Count)
				}
				done = p.Now()
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return done
}

func TestRendezvousRetriesThroughNICStall(t *testing.T) {
	healthy := runStalledRendezvous(t, 0)
	stallEnd := sim.Time(5 * sim.Millisecond)
	if healthy >= stallEnd {
		t.Fatalf("baseline rendezvous too slow (%v) for the stall window", healthy)
	}
	// With the sender's NIC stalled, the rendezvous handshake backs off and
	// retries instead of deadlocking, completing after the window ends.
	stalled := runStalledRendezvous(t, stallEnd)
	if stalled < stallEnd {
		t.Fatalf("stalled rendezvous finished at %v, inside the window ending %v", stalled, stallEnd)
	}
	// The retry loop is deterministic: a rerun lands on the same nanosecond.
	if again := runStalledRendezvous(t, stallEnd); again != stalled {
		t.Fatalf("stalled rendezvous nondeterministic: %v vs %v", again, stalled)
	}
}

// TestEagerStagingReusesArena pins the zero-copy staging path: after the
// first eager send warms the size class, every further eager snapshot must
// be served from the cluster's arena (a pool hit) and every delivery must
// hand the staging buffer back (puts track gets). A regression here means
// each message allocates its payload again.
func TestEagerStagingReusesArena(t *testing.T) {
	eng := sim.NewEngine()
	defer eng.Close()
	cl := gpu.NewCluster(eng, machine.Perlmutter(), 2)
	w := NewWorld(cl)
	const rounds = 50
	for r := 0; r < 2; r++ {
		c := w.CommWorld(r)
		eng.Spawn(fmt.Sprintf("rank%d", r), func(p *sim.Proc) {
			b := gpu.AllocBuffer[float64](c.Device(), 64)
			// Ping-pong, so exactly one staging buffer is in flight at a
			// time and rounds 2..N must all be arena hits.
			for i := 0; i < rounds; i++ {
				if c.Rank() == 0 {
					c.Send(p, b.Whole(), 1, 7)
					c.Recv(p, b.Whole(), 1, 8)
				} else {
					c.Recv(p, b.Whole(), 0, 7)
					c.Send(p, b.Whole(), 0, 8)
				}
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := gpu.PoolStats[float64](cl)
	if st.Gets != 2*rounds {
		t.Fatalf("expected %d staging gets, got %+v", 2*rounds, st)
	}
	if st.Hits < 2*rounds-2 {
		t.Errorf("expected at least %d arena hits (all but the first per direction), got %+v", 2*rounds-2, st)
	}
	if st.Puts != 2*rounds {
		t.Errorf("expected every delivery to release its staging buffer, got %+v", st)
	}
}
