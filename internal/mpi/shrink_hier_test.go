package mpi

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/gpu"
	"repro/internal/machine"
	"repro/internal/sim"
)

// TestShrinkRebuildsHierLayout pins the interaction between ShrinkExcluding
// and the hierarchical allreduce's cached node-block layout: the shrunk
// communicator is a fresh handle whose layout is recomputed lazily, so a
// survivor set straddling a node boundary disables the hierarchical
// algorithm (auto falls back to ring/recursive doubling) while removing a
// whole node block keeps it enabled with one block fewer. A stale cache
// would reduce over a dead rank's node map — exactly the bug this pins out.
func TestShrinkRebuildsHierLayout(t *testing.T) {
	const n = 16 // Perlmutter: 4 GPUs per node -> 4 node blocks of 4
	const elems = 8 << 10
	var mu sync.Mutex
	layouts := map[string]hierLayout{}

	runRanks(t, machine.Perlmutter(), n, func(p *sim.Proc, c *Comm) {
		if hl := c.hierLayout(); !hl.ok || hl.local != 4 || hl.nodes != 4 {
			t.Errorf("world layout = %+v, want ok local=4 nodes=4", hl)
		}

		// Straddling survivors: drop world rank 1, leaving node 0 with three
		// ranks and every other node with four.
		if c.Rank() != 1 {
			straddle := c.ShrinkExcluding(p, map[int]bool{1: true}, 1)
			if c.Rank() == 0 {
				mu.Lock()
				layouts["straddle"] = straddle.hierLayout()
				mu.Unlock()
			}
			// The 64 KiB auto-selected allreduce must still reduce correctly
			// over the survivors — re-checking the algorithm thresholds on
			// the new layout instead of reusing the parent's cache.
			b := gpu.AllocBuffer[float64](c.Device(), elems)
			for i := range b.Data() {
				b.Data()[i] = float64(c.Rank() + i%5)
			}
			straddle.Allreduce(p, b.Whole(), b.Whole(), gpu.ReduceSum)
			sum := 0.0 // world ranks 0,2..15
			for r := 0; r < n; r++ {
				if r != 1 {
					sum += float64(r)
				}
			}
			for _, i := range []int{0, 1, elems / 2, elems - 1} {
				want := sum + float64((n-1)*(i%5))
				if got := b.Data()[i]; got != want {
					t.Errorf("straddle allreduce elem %d = %v, want %v", i, got, want)
					break
				}
			}
		}

		// Node-aligned survivors: drop all of node 1 (world ranks 4-7); the
		// block structure survives with one node fewer.
		dead := map[int]bool{4: true, 5: true, 6: true, 7: true}
		if !dead[c.Rank()] {
			aligned := c.ShrinkExcluding(p, dead, 2)
			if c.Rank() == 0 {
				mu.Lock()
				layouts["aligned"] = aligned.hierLayout()
				mu.Unlock()
			}
			b := fbuf(c, float64(c.Rank()))
			aligned.Allreduce(p, b.Whole(), b.Whole(), gpu.ReduceSum)
			want := 0.0
			for r := 0; r < n; r++ {
				if !dead[r] {
					want += float64(r)
				}
			}
			if b.Data()[0] != want {
				t.Errorf("aligned allreduce = %v, want %v", b.Data()[0], want)
			}
		}
	})

	if hl := layouts["straddle"]; hl.ok {
		t.Errorf("straddling survivor set kept a node-block layout: %+v", hl)
	}
	if hl := layouts["aligned"]; !hl.ok || hl.local != 4 || hl.nodes != 3 {
		t.Errorf("node-aligned shrink layout = %+v, want ok local=4 nodes=3", hl)
	}
}

// TestShrinkForcedHierarchicalPanicsOnBrokenLayout documents the explicit-
// algorithm contract after a shrink: forcing AlgHierarchical on a shrunk
// communicator without a regular node-block layout panics instead of
// silently reducing with a stale layout.
func TestShrinkForcedHierarchicalPanicsOnBrokenLayout(t *testing.T) {
	const n = 8 // two node blocks of 4
	runRanks(t, machine.Perlmutter(), n, func(p *sim.Proc, c *Comm) {
		if c.Rank() == 1 {
			return
		}
		sub := c.ShrinkExcluding(p, map[int]bool{1: true}, 1)
		b := gpu.AllocBuffer[float64](c.Device(), 64)
		defer func() {
			if recover() == nil {
				t.Errorf("rank %d: forced hierarchical on a straddling shrink did not panic", c.Rank())
			}
		}()
		sub.AllreduceAlg(p, b.Whole(), b.Whole(), gpu.ReduceSum, AlgHierarchical)
		panic(fmt.Sprintf("unreachable: rank %d completed the forced hierarchical allreduce", c.Rank()))
	})
}
