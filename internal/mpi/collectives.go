package mpi

import (
	"fmt"
	"sort"

	"repro/internal/gpu"
	"repro/internal/sim"
)

// Collective algorithms built on the point-to-point layer, following the
// classic MPICH selection: binomial trees for short broadcast/reduce,
// recursive doubling for short allreduce, ring algorithms for long vectors,
// dissemination for barrier, and pairwise exchange for all-to-all.
//
// Every rank of a communicator must call the same collectives in the same
// order, each from its own simulated process.

// collRoundBits is the width of the per-collective round field in reserved
// tags; collWindow bounds how much of the collective sequence is folded in.
// The sequence is reduced modulo collWindow so tags never overflow (the old
// unbounded shift wrapped after 2^55 collectives on 64-bit int, far sooner
// on 32-bit): the largest reserved tag is
// maxUserTag + (collWindow-1)<<collRoundBits + collRounds-1 < 2^31, which
// fits a 32-bit int. Reusing a tag 2^20 collectives later is safe because
// per-pair sequence admission keeps matching FIFO and far fewer collectives
// are ever concurrently outstanding.
const (
	collRoundBits = 10
	collRounds    = 1 << collRoundBits
	collWindow    = 1 << 20
)

// collTag returns a reserved tag for one round of one collective call.
func (c *Comm) collTag(round int) int {
	if round < 0 || round >= collRounds {
		panic(fmt.Sprintf("mpi: collective round %d outside [0, %d)", round, collRounds))
	}
	return maxUserTag + int(c.coll%collWindow)<<collRoundBits + round
}

// stagingPenalty charges the host-bounce-buffer cost of the MPI
// implementation's vector collectives on device buffers (down and up once
// each at the staging bandwidth).
func (c *Comm) stagingPenalty(p *sim.Proc, vectorBytes int64) {
	bw := c.profile().CollStagingBW
	if bw <= 0 || vectorBytes <= 0 {
		return
	}
	p.Advance(sim.Duration(2 * float64(vectorBytes) / bw * float64(sim.Second)))
}

// enterColl advances the per-handle collective sequence and returns the
// sequence valid for this call.
func (c *Comm) enterColl() {
	c.coll++
}

// Barrier blocks until every rank of the communicator has entered it
// (dissemination algorithm: ceil(log2 n) zero-byte rounds).
func (c *Comm) Barrier(p *sim.Proc) {
	defer timeColl(p, c.ep.world.mColl.barrier)()
	c.enterColl()
	n := c.Size()
	if n == 1 {
		return
	}
	me := c.rank
	for round, dist := 0, 1; dist < n; round, dist = round+1, dist*2 {
		dst := (me + dist) % n
		src := (me - dist + n) % n
		c.Sendrecv(p, gpu.View{}, dst, c.collTag(round), gpu.View{}, src, c.collTag(round))
	}
}

// Bcast broadcasts root's buf to every rank (binomial tree).
func (c *Comm) Bcast(p *sim.Proc, buf gpu.View, root int) {
	defer timeColl(p, c.ep.world.mColl.bcast)()
	c.enterColl()
	n := c.Size()
	if n == 1 {
		return
	}
	// Re-index so the root is virtual rank 0.
	vrank := (c.rank - root + n) % n
	mask := 1
	for mask < n {
		mask <<= 1
	}
	// Receive once from the parent, then forward down the tree.
	recvMask := 1
	for vrank != 0 && vrank&recvMask == 0 {
		recvMask <<= 1
	}
	if vrank != 0 {
		parent := ((vrank &^ recvMask) + root) % n
		c.Recv(p, buf, parent, c.collTag(0))
	}
	childMask := recvMask >> 1
	if vrank == 0 {
		childMask = mask >> 1
	}
	for ; childMask > 0; childMask >>= 1 {
		child := vrank | childMask
		if child < n && child != vrank {
			c.Send(p, buf, (child+root)%n, c.collTag(0))
		}
	}
}

// Reduce combines sendBuf from all ranks into recvBuf on root (binomial
// tree). recvBuf may be the zero view on non-root ranks. sendBuf and
// recvBuf must not alias.
func (c *Comm) Reduce(p *sim.Proc, sendBuf, recvBuf gpu.View, op gpu.ReduceOp, root int) {
	defer timeColl(p, c.ep.world.mColl.reduce)()
	c.enterColl()
	n := c.Size()
	count := sendBuf.Len()
	acc := sendBuf.Clone()
	if n > 1 {
		vrank := (c.rank - root + n) % n
		mask := 1
		for mask < n {
			if vrank&mask != 0 {
				parent := ((vrank &^ mask) + root) % n
				c.Send(p, acc, parent, c.collTag(bitsOf(mask)))
				break
			}
			peer := vrank | mask
			if peer < n {
				tmp := acc.Clone()
				c.Recv(p, tmp, (peer+root)%n, c.collTag(bitsOf(mask)))
				gpu.Reduce(acc, tmp, count, op)
				tmp.Release()
			}
			mask <<= 1
		}
	}
	if c.rank == root {
		gpu.Copy(recvBuf, acc, count)
	}
	acc.Release()
}

func bitsOf(mask int) int {
	b := 0
	for mask > 1 {
		mask >>= 1
		b++
	}
	return b
}

// allreduceRingMin is the vector byte size above which Allreduce switches
// from recursive doubling to the ring algorithm.
const allreduceRingMin = 64 << 10

// allreduceHierMin is the vector byte size above which Allreduce prefers
// the hierarchical (SMP-aware) algorithm on multi-node communicators with a
// regular node-block layout — the MPICH-style crossover: below it the
// latency-bound recursive doubling wins, above it locality does.
const allreduceHierMin = 32 << 10

// AllreduceAlg forces one allreduce implementation (AllreduceAlg method).
type AllreduceAlg int

const (
	// AlgAuto applies the size/layout-based selection of Allreduce.
	AlgAuto AllreduceAlg = iota
	// AlgRecursiveDoubling forces recursive doubling (any count, any n).
	AlgRecursiveDoubling
	// AlgRing forces ring reduce-scatter + allgather (needs count >= n).
	AlgRing
	// AlgHierarchical forces the SMP-aware algorithm: intra-node ring
	// reduce-scatter, inter-node binomial-tree allreduce per chunk,
	// intra-node ring allgather. Needs a regular node-block layout
	// (hierLayout) and count >= ranks-per-node.
	AlgHierarchical
)

func (a AllreduceAlg) String() string {
	switch a {
	case AlgAuto:
		return "auto"
	case AlgRecursiveDoubling:
		return "rd"
	case AlgRing:
		return "ring"
	case AlgHierarchical:
		return "hierarchical"
	default:
		return fmt.Sprintf("AllreduceAlg(%d)", int(a))
	}
}

// Allreduce combines sendBuf from all ranks elementwise into recvBuf on all
// ranks. In-place operation is allowed (sendBuf == recvBuf).
func (c *Comm) Allreduce(p *sim.Proc, sendBuf, recvBuf gpu.View, op gpu.ReduceOp) {
	c.AllreduceAlg(p, sendBuf, recvBuf, op, AlgAuto)
}

// AllreduceAlg is Allreduce with an explicit algorithm selection; AlgAuto
// reproduces Allreduce. Forcing an algorithm whose preconditions the call
// does not meet (ring without count >= n, hierarchical without a regular
// node layout) panics: the caller asked for something that cannot run.
func (c *Comm) AllreduceAlg(p *sim.Proc, sendBuf, recvBuf gpu.View, op gpu.ReduceOp, alg AllreduceAlg) {
	defer timeColl(p, c.ep.world.mColl.allreduce)()
	c.enterColl()
	n := c.Size()
	count := sendBuf.Len()
	if !sendBuf.SameBuffer(recvBuf) || sendBuf.Offset() != recvBuf.Offset() {
		gpu.Copy(recvBuf, sendBuf, count)
	}
	if n == 1 {
		return
	}
	switch alg {
	case AlgRecursiveDoubling:
		c.allreduceRecursiveDoubling(p, recvBuf, op)
		return
	case AlgRing:
		if count < n {
			panic(fmt.Sprintf("mpi: ring allreduce needs count >= size (%d < %d)", count, n))
		}
		c.allreduceRing(p, recvBuf, op)
		return
	case AlgHierarchical:
		hl := c.hierLayout()
		if !hl.ok {
			panic("mpi: hierarchical allreduce requires a regular node-block layout (equal-size contiguous node blocks)")
		}
		if count < hl.local {
			panic(fmt.Sprintf("mpi: hierarchical allreduce needs count >= ranks per node (%d < %d)", count, hl.local))
		}
		c.allreduceHierarchical(p, recvBuf, op, hl)
		return
	}
	// AlgAuto, MPICH-style: the SMP-aware hierarchical algorithm for large
	// vectors on multi-node communicators whose ranks pack regularly onto
	// nodes (it needs real node locality to exploit: one rank per node
	// degenerates to a plain tree, which the ring beats at these sizes),
	// then ring for large vectors, recursive doubling for the rest.
	if sendBuf.Bytes() >= allreduceHierMin {
		if hl := c.hierLayout(); hl.ok && hl.local > 1 && count >= hl.local {
			c.allreduceHierarchical(p, recvBuf, op, hl)
			return
		}
	}
	if sendBuf.Bytes() >= allreduceRingMin && count >= n {
		c.allreduceRing(p, recvBuf, op)
		return
	}
	c.allreduceRecursiveDoubling(p, recvBuf, op)
}

// allreduceRecursiveDoubling handles any rank count by folding the ranks
// beyond the largest power of two into their lower partners first.
func (c *Comm) allreduceRecursiveDoubling(p *sim.Proc, buf gpu.View, op gpu.ReduceOp) {
	n := c.Size()
	count := buf.Len()
	pof2 := 1
	for pof2*2 <= n {
		pof2 *= 2
	}
	rem := n - pof2
	me := c.rank
	tmp := buf.Clone()

	// Fold phase: ranks >= pof2 send to (rank - rem) and sit out.
	newRank := -1
	switch {
	case me < rem*2 && me%2 != 0: // odd ranks in the doubled region send
		c.Send(p, buf, me-1, c.collTag(200))
	case me < rem*2: // even ranks in the doubled region absorb
		c.Recv(p, tmp, me+1, c.collTag(200))
		gpu.Reduce(buf, tmp, count, op)
		newRank = me / 2
	default:
		newRank = me - rem
	}

	if newRank >= 0 {
		for round, mask := 0, 1; mask < pof2; round, mask = round+1, mask*2 {
			peerNew := newRank ^ mask
			var peer int
			if peerNew < rem {
				peer = peerNew * 2
			} else {
				peer = peerNew + rem
			}
			c.Sendrecv(p, buf, peer, c.collTag(round),
				tmp, peer, c.collTag(round))
			gpu.Reduce(buf, tmp, count, op)
		}
	}

	// Unfold: results back to the odd ranks that sat out.
	if me < rem*2 {
		if me%2 == 0 {
			c.Send(p, buf, me+1, c.collTag(201))
		} else {
			c.Recv(p, buf, me-1, c.collTag(201))
		}
	}
	tmp.Release()
}

// allreduceRing implements reduce-scatter + allgather over a ring; it needs
// count >= n.
func (c *Comm) allreduceRing(p *sim.Proc, buf gpu.View, op gpu.ReduceOp) {
	n := c.Size()
	count := buf.Len()
	me := c.rank
	right := (me + 1) % n
	left := (me - 1 + n) % n

	// Chunk boundaries: chunk i is [starts[i], starts[i+1]).
	starts := make([]int, n+1)
	for i := 0; i <= n; i++ {
		starts[i] = i * count / n
	}
	chunk := func(i int) gpu.View {
		i = (i%n + n) % n
		return buf.Slice(starts[i], starts[i+1]-starts[i])
	}
	tmp := buf.Clone()

	// One tag per phase, not per step: each neighbour pair exchanges
	// exactly one message per step and per-pair sequence admission keeps
	// matching FIFO, so step-distinct tags add nothing — and per-step tags
	// (the old scheme) overflowed the collRounds=1024 round space past 924
	// ranks.
	//
	// Reduce-scatter: after n-1 steps rank r holds the full reduction of
	// chunk (r+1) mod n.
	for step := 0; step < n-1; step++ {
		sendIdx := me - step
		recvIdx := me - step - 1
		rv := chunk(recvIdx)
		tmpChunk := tmpSlice(tmp, buf, rv)
		c.Sendrecv(p, chunk(sendIdx), right, c.collTag(0),
			tmpChunk, left, c.collTag(0))
		gpu.Reduce(rv, tmpChunk, rv.Len(), op)
	}
	// Allgather: circulate the finished chunks.
	for step := 0; step < n-1; step++ {
		sendIdx := me + 1 - step
		recvIdx := me - step
		c.Sendrecv(p, chunk(sendIdx), right, c.collTag(1),
			chunk(recvIdx), left, c.collTag(1))
	}
	tmp.Release()
}

// tmpSlice returns the window of tmp that corresponds to the window rv of
// buf (tmp is a clone of buf, so offsets align relative to the view starts).
func tmpSlice(tmp, buf, rv gpu.View) gpu.View {
	return tmp.Slice(rv.Offset()-buf.Offset(), rv.Len())
}

// hierMaxLocal caps the detected ranks-per-node block size so the intra-node
// ring tag ranges (300+step, 700+step) stay inside the reserved round space.
const hierMaxLocal = 128

// hierLayout describes a communicator whose ranks form equal-size contiguous
// single-node blocks: ranks [b*local, (b+1)*local) all live on one node, for
// nodes >= 2 blocks. This is the layout packed GPU assignment produces, and
// the precondition of the hierarchical allreduce.
type hierLayout struct {
	ok    bool
	local int // ranks per node block (L)
	nodes int // number of node blocks (N)
}

// hierLayout detects (and caches per handle) the node-block structure of the
// communicator. Detection is O(size) once; the group never changes after
// construction, so the cache never invalidates.
func (c *Comm) hierLayout() hierLayout {
	if c.hier != nil {
		return *c.hier
	}
	hl := c.computeHierLayout()
	c.hier = &hl
	return hl
}

func (c *Comm) computeHierLayout() hierLayout {
	n := c.Size()
	fab := c.ep.world.cluster.Fabric
	node := func(r int) int { return fab.Node(c.group[r]) }
	local := 1
	for local < n && node(local) == node(0) {
		local++
	}
	if local > hierMaxLocal || n%local != 0 || n/local < 2 {
		return hierLayout{}
	}
	for b := 1; b < n/local; b++ {
		nb := node(b * local)
		for i := 1; i < local; i++ {
			if node(b*local+i) != nb {
				return hierLayout{}
			}
		}
	}
	return hierLayout{ok: true, local: local, nodes: n / local}
}

// allreduceHierarchical is the SMP-aware allreduce for hierLayout
// communicators: an intra-node ring reduce-scatter concentrates each node's
// reduction into per-rank chunks, an inter-node binomial tree (reduce to
// block 0, then broadcast) finishes each chunk across nodes — every local
// rank drives its own chunk's tree concurrently, so the expensive inter-node
// wire carries count/L elements per rank instead of count — and an
// intra-node ring allgather redistributes the result. Wire traffic per rank:
// 2*(L-1)/L vectors intra-node + 2*log2(N)/L vectors inter-node, versus the
// flat ring's 2*(n-1)/n vectors all crossing node boundaries.
//
// Tag layout (all < collRounds=1024): reduce-scatter 300+step (L <= 128),
// tree reduce 600+level, tree broadcast 680, allgather 700+step.
func (c *Comm) allreduceHierarchical(p *sim.Proc, buf gpu.View, op gpu.ReduceOp, hl hierLayout) {
	count := buf.Len()
	L, N := hl.local, hl.nodes
	l := c.rank % L       // local index within the node block
	b := c.rank / L       // node block index
	base := b * L         // comm rank of the block's first member
	right := base + (l+1)%L
	left := base + (l-1+L)%L

	// Chunk boundaries over the local block: chunk i is [starts[i], starts[i+1]).
	starts := make([]int, L+1)
	for i := 0; i <= L; i++ {
		starts[i] = i * count / L
	}
	chunk := func(i int) gpu.View {
		i = (i%L + L) % L
		return buf.Slice(starts[i], starts[i+1]-starts[i])
	}
	tmp := buf.Clone()

	// Phase 1 — intra-node ring reduce-scatter: after L-1 steps local rank l
	// holds the node-local reduction of chunk (l+1) mod L.
	for step := 0; step < L-1; step++ {
		sendIdx := l - step
		recvIdx := l - step - 1
		rv := chunk(recvIdx)
		tmpChunk := tmpSlice(tmp, buf, rv)
		c.Sendrecv(p, chunk(sendIdx), right, c.collTag(300+step),
			tmpChunk, left, c.collTag(300+step))
		gpu.Reduce(rv, tmpChunk, rv.Len(), op)
	}

	// Phase 2 — inter-node binomial tree per chunk, among the N co-local
	// peers {b'*L + l}: reduce toward block 0, then broadcast back down.
	cv := chunk(l + 1)
	mask := 1
	for mask < N {
		if b&mask != 0 {
			parent := (b&^mask)*L + l
			c.Send(p, cv, parent, c.collTag(600+bitsOf(mask)))
			break
		}
		peer := b | mask
		if peer < N {
			tmpChunk := tmpSlice(tmp, buf, cv)
			c.Recv(p, tmpChunk, peer*L+l, c.collTag(600+bitsOf(mask)))
			gpu.Reduce(cv, tmpChunk, cv.Len(), op)
		}
		mask <<= 1
	}
	top := 1
	for top < N {
		top <<= 1
	}
	recvMask := 1
	for b != 0 && b&recvMask == 0 {
		recvMask <<= 1
	}
	if b != 0 {
		c.Recv(p, cv, (b&^recvMask)*L+l, c.collTag(680))
	}
	childMask := recvMask >> 1
	if b == 0 {
		childMask = top >> 1
	}
	for ; childMask > 0; childMask >>= 1 {
		child := b | childMask
		if child < N && child != b {
			c.Send(p, cv, child*L+l, c.collTag(680))
		}
	}

	// Phase 3 — intra-node ring allgather: circulate the finished chunks
	// (rank l starts owning chunk (l+1) mod L, mirroring allreduceRing).
	for step := 0; step < L-1; step++ {
		sendIdx := l + 1 - step
		recvIdx := l - step
		c.Sendrecv(p, chunk(sendIdx), right, c.collTag(700+step),
			chunk(recvIdx), left, c.collTag(700+step))
	}
	tmp.Release()
}

// Gather collects equal-size contributions into recvBuf on root (recvBuf
// holds Size()*sendBuf.Len() elements there; ignored elsewhere).
func (c *Comm) Gather(p *sim.Proc, sendBuf, recvBuf gpu.View, root int) {
	counts := make([]int, c.Size())
	for i := range counts {
		counts[i] = sendBuf.Len()
	}
	c.Gatherv(p, sendBuf, recvBuf, counts, prefixSums(counts), root)
}

// Gatherv collects variable-size contributions into recvBuf on root at the
// given displacements (linear algorithm, as used for moderate sizes). Like
// Allgatherv it pays the device-buffer staging penalty at the root.
func (c *Comm) Gatherv(p *sim.Proc, sendBuf, recvBuf gpu.View, counts, displs []int, root int) {
	defer timeColl(p, c.ep.world.mColl.gather)()
	c.enterColl()
	if c.rank == root {
		c.stagingPenalty(p, recvBuf.Bytes())
	}
	n := c.Size()
	if c.rank == root {
		reqs := make([]*Request, 0, n-1)
		for r := 0; r < n; r++ {
			if r == root {
				gpu.Copy(recvBuf.Slice(displs[r], counts[r]), sendBuf, counts[r])
				continue
			}
			reqs = append(reqs, c.Irecv(p, recvBuf.Slice(displs[r], counts[r]), r, c.collTag(0)))
		}
		WaitAll(p, reqs...)
		return
	}
	c.Send(p, sendBuf, root, c.collTag(0))
}

// Scatter distributes equal-size chunks of sendBuf (significant at root)
// into each rank's recvBuf.
func (c *Comm) Scatter(p *sim.Proc, sendBuf, recvBuf gpu.View, root int) {
	counts := make([]int, c.Size())
	for i := range counts {
		counts[i] = recvBuf.Len()
	}
	c.Scatterv(p, sendBuf, recvBuf, counts, prefixSums(counts), root)
}

// Scatterv distributes variable-size chunks from root.
func (c *Comm) Scatterv(p *sim.Proc, sendBuf, recvBuf gpu.View, counts, displs []int, root int) {
	defer timeColl(p, c.ep.world.mColl.scatter)()
	c.enterColl()
	n := c.Size()
	if c.rank == root {
		reqs := make([]*Request, 0, n-1)
		for r := 0; r < n; r++ {
			if r == root {
				gpu.Copy(recvBuf, sendBuf.Slice(displs[r], counts[r]), counts[r])
				continue
			}
			reqs = append(reqs, c.Isend(p, sendBuf.Slice(displs[r], counts[r]), r, c.collTag(0)))
		}
		WaitAll(p, reqs...)
		return
	}
	c.Recv(p, recvBuf, root, c.collTag(0))
}

// Allgather concatenates equal-size contributions on every rank.
func (c *Comm) Allgather(p *sim.Proc, sendBuf, recvBuf gpu.View) {
	counts := make([]int, c.Size())
	for i := range counts {
		counts[i] = sendBuf.Len()
	}
	c.Allgatherv(p, sendBuf, recvBuf, counts, prefixSums(counts))
}

// Allgatherv concatenates variable-size contributions on every rank (ring
// algorithm: n-1 neighbour exchanges).
//
// Vector collectives on device buffers additionally pay the host-staging
// cost of the MPI implementation (LibProfile.CollStagingBW): the full
// result vector is bounced through pinned host memory. This reproduces the
// pathology the paper isolates in §VI-D, where the Allgatherv dominated the
// MPI CG runtime on both test systems.
func (c *Comm) Allgatherv(p *sim.Proc, sendBuf, recvBuf gpu.View, counts, displs []int) {
	defer timeColl(p, c.ep.world.mColl.allgather)()
	c.enterColl()
	c.stagingPenalty(p, recvBuf.Bytes())
	n := c.Size()
	me := c.rank
	gpu.Copy(recvBuf.Slice(displs[me], counts[me]), sendBuf, counts[me])
	if n == 1 {
		return
	}
	right := (me + 1) % n
	left := (me - 1 + n) % n
	// One tag for the whole ring: per-pair FIFO admission orders the steps
	// (per-step tags overflowed the round space past 1024 ranks).
	for step := 0; step < n-1; step++ {
		sendIdx := (me - step + n) % n
		recvIdx := (me - step - 1 + n) % n
		c.Sendrecv(p,
			recvBuf.Slice(displs[sendIdx], counts[sendIdx]), right, c.collTag(0),
			recvBuf.Slice(displs[recvIdx], counts[recvIdx]), left, c.collTag(0))
	}
}

// Alltoall exchanges equal-size chunks between every rank pair (pairwise
// exchange, n-1 rounds).
func (c *Comm) Alltoall(p *sim.Proc, sendBuf, recvBuf gpu.View, count int) {
	defer timeColl(p, c.ep.world.mColl.alltoall)()
	c.enterColl()
	n := c.Size()
	me := c.rank
	gpu.Copy(recvBuf.Slice(me*count, count), sendBuf.Slice(me*count, count), count)
	// One tag for every round: each ordered rank pair exchanges exactly one
	// message per Alltoall, so round-distinct tags added nothing and
	// overflowed the round space past 1024 ranks.
	for round := 1; round < n; round++ {
		dst := (me + round) % n
		src := (me - round + n) % n
		c.Sendrecv(p,
			sendBuf.Slice(dst*count, count), dst, c.collTag(0),
			recvBuf.Slice(src*count, count), src, c.collTag(0))
	}
}

// Alltoallv exchanges variable-size chunks between every rank pair
// (pairwise exchange). Like the other vector collectives it pays the
// device-buffer staging penalty.
func (c *Comm) Alltoallv(p *sim.Proc, sendBuf, recvBuf gpu.View, sendCounts, sendDispls, recvCounts, recvDispls []int) {
	defer timeColl(p, c.ep.world.mColl.alltoall)()
	c.enterColl()
	c.stagingPenalty(p, recvBuf.Bytes())
	n := c.Size()
	me := c.rank
	gpu.Copy(recvBuf.Slice(recvDispls[me], recvCounts[me]),
		sendBuf.Slice(sendDispls[me], sendCounts[me]), sendCounts[me])
	for round := 1; round < n; round++ {
		dst := (me + round) % n
		src := (me - round + n) % n
		c.Sendrecv(p,
			sendBuf.Slice(sendDispls[dst], sendCounts[dst]), dst, c.collTag(0),
			recvBuf.Slice(recvDispls[src], recvCounts[src]), src, c.collTag(0))
	}
}

func prefixSums(counts []int) []int {
	d := make([]int, len(counts))
	sum := 0
	for i, c := range counts {
		d[i] = sum
		sum += c
	}
	return d
}

// splitEntry is exchanged during Split.
type splitEntry struct {
	color, key, rank int
}

// Split partitions the communicator by color, ordering each new group by
// (key, old rank), like MPI_Comm_split. Every member must call it. A
// negative color returns nil (the rank joins no new communicator).
//
// Implementation note: ranks agree on the new groups via an Allgather of
// (color, key); the new context id is derived deterministically from the
// parent context and the per-handle collective sequence, which is identical
// on all ranks.
func (c *Comm) Split(p *sim.Proc, color, key int) *Comm {
	n := c.Size()
	entries := make([]splitEntry, n)
	// Exchange the (color, key) pairs through int64 buffers.
	send := gpu.AllocBuffer[int64](c.ep.dev, 2)
	send.Data()[0], send.Data()[1] = int64(color), int64(key)
	recv := gpu.AllocBuffer[int64](c.ep.dev, 2*n)
	c.Allgather(p, send.Whole(), recv.Whole())
	for r := 0; r < n; r++ {
		entries[r] = splitEntry{
			color: int(recv.Data()[2*r]),
			key:   int(recv.Data()[2*r+1]),
			rank:  r,
		}
	}
	newCtx := c.ctx*4096 + int(c.coll) + 1
	if color < 0 {
		return nil
	}
	var members []splitEntry
	for _, e := range entries {
		if e.color == color {
			members = append(members, e)
		}
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].key != members[j].key {
			return members[i].key < members[j].key
		}
		return members[i].rank < members[j].rank
	})
	group := make([]int, len(members))
	myNew := -1
	for i, e := range members {
		group[i] = c.group[e.rank]
		if e.rank == c.rank {
			myNew = i
		}
	}
	if myNew < 0 {
		panic(fmt.Sprintf("mpi: split lost rank %d", c.rank))
	}
	return &Comm{ep: c.ep, ctx: newCtx, group: group, rank: myNew}
}

// Dup duplicates the communicator with a fresh context id.
func (c *Comm) Dup(p *sim.Proc) *Comm {
	return c.Split(p, 0, c.rank)
}
